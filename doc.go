// Package unstencil reproduces "A Scalable, Efficient Scheme for Evaluation
// of Stencil Computations over Unstructured Meshes" (King & Kirby, SC '13):
// per-point and per-element evaluation of stencil computations over
// unstructured triangular meshes, demonstrated as SIAC post-processing of
// discontinuous Galerkin solutions, with overlapped tiling for scalable
// concurrent execution.
//
// The root package carries only the module documentation and the
// paper-reproduction benchmarks (bench_test.go, one testing.B per table and
// figure). The implementation lives under internal/ — see README.md for the
// package map, DESIGN.md for the experiment index, and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package unstencil
