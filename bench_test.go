// Package unstencil's root benchmarks regenerate every table and figure of
// the paper's evaluation at reduced scale (one benchmark per experiment;
// see DESIGN.md §3 for the index). Run:
//
//	go test -bench=. -benchmem
//
// Full paper-scale sweeps are driven by cmd/paperbench (-paper flag).
// Each benchmark reports the experiment's headline quantity as a custom
// metric so `go test -bench` output carries the reproduced series.
package unstencil_test

import (
	"strconv"
	"testing"

	"unstencil/internal/bench"
	"unstencil/internal/core"
	"unstencil/internal/device"
)

// benchSession builds a session at bench scale. Mesh/field/sweep caches are
// per-session, so each benchmark constructs its own.
func benchSession(b *testing.B, sizes ...int) *bench.Session {
	b.Helper()
	cfg := bench.DefaultConfig()
	cfg.Sizes = sizes
	s, err := bench.NewSession(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func parseFloat(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// BenchmarkTable1 regenerates the intersection-test counts (paper Table 1)
// on 4k and 16k low-variance meshes.
func BenchmarkTable1(b *testing.B) {
	s := benchSession(b, 4000, 16000)
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		ratio = parseFloat(b, t.Rows[0][3])
	}
	b.ReportMetric(ratio, "pp/pe-tests")
}

// BenchmarkFig8 regenerates the tiling memory-overhead curve (paper
// Fig. 8).
func BenchmarkFig8(b *testing.B) {
	s := benchSession(b, 4000, 16000)
	var overhead float64
	for i := 0; i < b.N; i++ {
		t, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		overhead = parseFloat(b, t.Rows[len(t.Rows)-1][2])
	}
	b.ReportMetric(overhead, "overhead")
}

// BenchmarkFig11 regenerates the low-variance GFLOP/s sweep (paper
// Fig. 11) at reduced scale: 1k/4k meshes, P ∈ {1,2}.
func BenchmarkFig11(b *testing.B) {
	s := benchSession(b, 1000, 4000)
	s.Cfg.Orders = []int{1, 2}
	var gflops float64
	for i := 0; i < b.N; i++ {
		t, _, err := s.FlopSweep(bench.LowVariance)
		if err != nil {
			b.Fatal(err)
		}
		gflops = parseFloat(b, t.Rows[len(t.Rows)-1][1])
	}
	b.ReportMetric(gflops, "GF/s-per-elem-P1")
}

// BenchmarkFig12 regenerates the high-variance GFLOP/s sweep (paper
// Fig. 12).
func BenchmarkFig12(b *testing.B) {
	s := benchSession(b, 1000, 4000)
	s.Cfg.Orders = []int{1, 2}
	var gflops float64
	for i := 0; i < b.N; i++ {
		t, _, err := s.FlopSweep(bench.HighVariance)
		if err != nil {
			b.Fatal(err)
		}
		gflops = parseFloat(b, t.Rows[len(t.Rows)-1][1])
	}
	b.ReportMetric(gflops, "GF/s-per-elem-P1")
}

// BenchmarkFig13 regenerates the relative-speedup figure (paper Fig. 13):
// per-element over per-point on LV and HV meshes.
func BenchmarkFig13(b *testing.B) {
	s := benchSession(b, 4000)
	s.Cfg.Orders = []int{1}
	var lvSpeedup float64
	for i := 0; i < b.N; i++ {
		t, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		lvSpeedup = parseFloat(b, t.Rows[0][1])
	}
	b.ReportMetric(lvSpeedup, "speedup-LV-P1")
}

// BenchmarkFig14 regenerates the multi-device scaling study (paper
// Fig. 14) on 1/2/4/8 simulated devices.
func BenchmarkFig14(b *testing.B) {
	s := benchSession(b, 4000)
	var scaling float64
	for i := 0; i < b.N; i++ {
		t, err := s.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		scaling = parseFloat(b, t.Rows[0][len(t.Rows[0])-1])
	}
	b.ReportMetric(scaling, "speedup-8dev")
}

// BenchmarkPerPointScheme times the per-point scheme end to end (wall
// clock) on a 1k LV mesh — the paper's baseline.
func BenchmarkPerPointScheme(b *testing.B) {
	s := benchSession(b, 1000)
	f, err := s.Field(bench.LowVariance, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewEvaluator(f, core.Options{P: 1, GridDegree: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RunPerPoint(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerElementScheme times the per-element scheme end to end (wall
// clock) on the same mesh — the paper's proposed scheme.
func BenchmarkPerElementScheme(b *testing.B) {
	s := benchSession(b, 1000)
	f, err := s.Field(bench.LowVariance, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewEvaluator(f, core.Options{P: 1, GridDegree: -1})
	if err != nil {
		b.Fatal(err)
	}
	tl := ev.NewTiling(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RunPerElement(tl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceSim measures the simulator itself: scheduling 128 blocks
// on an 8-device cluster.
func BenchmarkDeviceSim(b *testing.B) {
	costs := make([]float64, 128)
	for i := range costs {
		costs[i] = float64(1000 + i)
	}
	sim := device.NewSim(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(costs, 5000)
	}
}
