// Command meshgen generates the unstructured triangular meshes used by the
// experiments (structured, low-variance, high-variance; see paper Figs. 9
// and 10), prints their statistics, and optionally writes them as JSON.
//
// Usage:
//
//	meshgen -kind lv -tris 16000 -o mesh.json
//	meshgen -kind hv -tris 4000 -grading 16
//	meshgen -kind structured -n 64
package main

import (
	"flag"
	"fmt"
	"os"

	"unstencil/internal/mesh"
)

func main() {
	var (
		kind    = flag.String("kind", "lv", "mesh kind: structured, lv (low variance), hv (high variance)")
		tris    = flag.Int("tris", 4000, "approximate triangle count (lv/hv)")
		n       = flag.Int("n", 16, "lattice side (structured)")
		grading = flag.Float64("grading", 16, "element size grading factor (hv)")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", "", "output file (JSON); omit to print stats only")
	)
	flag.Parse()

	var m *mesh.Mesh
	var err error
	switch *kind {
	case "structured":
		m = mesh.Structured(*n)
	case "lv":
		m, err = mesh.SizedLowVariance(*tris, *seed)
	case "hv":
		m, err = mesh.SizedHighVariance(*tris, *grading, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if err := m.Validate(); err != nil {
		fatal(fmt.Errorf("generated mesh failed validation: %w", err))
	}

	s := m.Stats()
	fmt.Printf("kind:          %s\n", *kind)
	fmt.Printf("triangles:     %d\n", s.NumTris)
	fmt.Printf("vertices:      %d\n", s.NumVerts)
	fmt.Printf("total area:    %.9f\n", s.TotalArea)
	fmt.Printf("edge length:   min %.5g  max %.5g  mean %.5g\n", s.MinEdge, s.MaxEdge, s.MeanEdge)
	fmt.Printf("edge CV:       %.3f\n", s.CV)
	fmt.Printf("area ratio:    %.2f (max/min)\n", s.AreaRatio)
	fmt.Printf("min angle:     %.2f deg\n", s.MinAngleDeg)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := mesh.Encode(f, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshgen:", err)
	os.Exit(1)
}
