// Command postprocess runs the full SIAC pipeline end to end: generate (or
// load) a mesh, project an analytic field — or solve a linear advection
// problem with the built-in dG solver — and post-process with the chosen
// scheme, reporting before/after errors against the exact solution.
//
// Usage:
//
//	postprocess -tris 4000 -p 2 -scheme per-element
//	postprocess -mesh mesh.json -p 1 -scheme per-point
//	postprocess -advect -T 0.25 -p 1     # dG advection solve, then SIAC
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func main() {
	var (
		meshFile = flag.String("mesh", "", "mesh JSON file (omit to generate)")
		tris     = flag.Int("tris", 4000, "generated mesh size")
		kind     = flag.String("kind", "lv", "generated mesh kind: lv, hv, structured")
		p        = flag.Int("p", 1, "polynomial order (1-3)")
		scheme   = flag.String("scheme", "per-element", "evaluation scheme: per-point or per-element")
		patches  = flag.Int("patches", 16, "tiles for the per-element scheme")
		advect   = flag.Bool("advect", false, "produce the input field with the dG advection solver")
		tEnd     = flag.Float64("T", 0.25, "advection end time")
		seed     = flag.Int64("seed", 1, "mesh seed")
	)
	flag.Parse()

	m, err := loadMesh(*meshFile, *kind, *tris, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mesh: %d triangles, edge CV %.3f\n", m.NumTris(), m.Stats().CV)

	// The test field and, if advecting, its exact translate.
	u0 := func(pt geom.Point) float64 {
		return math.Sin(2*math.Pi*pt.X) * math.Cos(2*math.Pi*pt.Y)
	}
	exact := u0
	var field *dg.Field
	if *advect {
		beta := geom.Pt(1, 0.5)
		solver, err := dg.NewAdvection(m, *p, beta, u0)
		if err != nil {
			fatal(err)
		}
		steps := solver.Run(*tEnd, 0.3)
		field = solver.Field
		exact = func(pt geom.Point) float64 {
			return u0(geom.Pt(pt.X-beta.X**tEnd, pt.Y-beta.Y**tEnd))
		}
		fmt.Printf("advected to T=%.3f in %d RK3 steps\n", *tEnd, steps)
	} else {
		field = dg.Project(m, *p, u0, 4)
	}

	ev, err := core.NewEvaluator(field, core.Options{P: *p})
	if err != nil {
		fatal(err)
	}

	var sch core.Scheme
	switch *scheme {
	case "per-point":
		sch = core.PerPoint
	case "per-element":
		sch = core.PerElement
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	res, err := ev.Run(sch, *patches)
	if err != nil {
		fatal(err)
	}

	var errBefore, errAfter float64
	for i, gp := range ev.Points {
		want := exact(gp.Pos)
		if d := math.Abs(field.EvalIn(int(gp.Elem), gp.Pos) - want); d > errBefore {
			errBefore = d
		}
		if d := math.Abs(res.Solution[i] - want); d > errAfter {
			errAfter = d
		}
	}
	fmt.Printf("scheme:            %v\n", res.Scheme)
	fmt.Printf("grid points:       %d\n", ev.NumPoints())
	fmt.Printf("wall time:         %v\n", res.Wall)
	fmt.Printf("intersection tests: %d (%d hits, %d regions)\n",
		res.Total.IntersectionTests, res.Total.TruePositives, res.Total.Regions)
	fmt.Printf("memory overhead:   %.3f\n", res.MemoryOverhead)
	fmt.Printf("max error before:  %.3e\n", errBefore)
	fmt.Printf("max error after:   %.3e\n", errAfter)
	if errAfter < errBefore {
		fmt.Printf("post-processing reduced the max grid-point error by %.1fx\n",
			errBefore/errAfter)
	}
}

func loadMesh(file, kind string, tris int, seed int64) (*mesh.Mesh, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mesh.Decode(f)
	}
	switch kind {
	case "lv":
		return mesh.SizedLowVariance(tris, seed)
	case "hv":
		return mesh.SizedHighVariance(tris, 16, seed)
	case "structured":
		n := int(math.Round(math.Sqrt(float64(tris) / 2)))
		if n < 2 {
			n = 2
		}
		return mesh.Structured(n), nil
	default:
		return nil, fmt.Errorf("unknown mesh kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "postprocess:", err)
	os.Exit(1)
}
