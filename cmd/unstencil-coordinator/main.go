// Command unstencil-coordinator fronts a cluster of unstencild shards: it
// fans uploaded meshes out to every shard, routes queries and jobs by
// consistent hash, distributes per-element jobs as patch ranges of the
// deterministic tiling, and merges the shards' partial solutions in
// ascending patch order — bit-identical to a single-process run at full
// coverage. When a shard stays down past the retry and failover budget,
// allow_partial jobs complete degraded with honest coverage accounting;
// jobs without it fail with a typed shard-failure error.
//
// Usage:
//
//	unstencild -addr :9091 -state-dir /var/lib/unstencil/s1 &
//	unstencild -addr :9092 -state-dir /var/lib/unstencil/s2 &
//	unstencil-coordinator -addr :8080 \
//	    -shards http://localhost:9091,http://localhost:9092
//
// The coordinator serves the same public API as a single unstencild
// (meshes, jobs, queries, health, metrics), so clients need not know they
// are talking to a cluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unstencil/internal/cluster"
	"unstencil/internal/fault"
	"unstencil/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shardsFlag      = flag.String("shards", "", "comma-separated shard base URLs (required), e.g. http://h1:9090,http://h2:9090")
		vnodes          = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the consistent-hash ring")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-shard HTTP request cap")
		hedgeDelay      = flag.Duration("hedge-delay", 0, "hedged-read delay for /v1/query; 0 disables hedging")
		retryN          = flag.Int("retry-attempts", 3, "tries per shard request for transient failures (1 = no retry)")
		retryBase       = flag.Duration("retry-base", 25*time.Millisecond, "backoff before the first retry (doubles per retry)")
		retryMax        = flag.Duration("retry-max", 1*time.Second, "backoff cap; a shard's Retry-After overrides the backoff")
		failover        = flag.Int("failover-attempts", 1, "ring successors a failed patch range or job may move to; negative disables failover (degraded-mode drills)")
		healthInterval  = flag.Duration("health-interval", time.Second, "shard /readyz polling period")
		healthThreshold = flag.Int("health-threshold", 3, "consecutive probe failures before a shard is marked down")
		blocks          = flag.Int("blocks", 16, "default blocks/patches for jobs that omit it")
		jobTimeout      = flag.Duration("job-timeout", 5*time.Minute, "distributed-job end-to-end cap")
		jobConcurrency  = flag.Int("job-concurrency", 4, "concurrently executing distributed jobs")
		maxBodyMB       = flag.Int64("max-body-mb", 32, "request body limit in MiB")
		faultSpec       = flag.String("fault-spec", "", "enable deterministic fault injection, e.g. seed=42,mode=error,sites=cluster.route:0.05 (testing only)")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *shardsFlag == "" {
		fmt.Fprintln(os.Stderr, "unstencil-coordinator: -shards is required")
		os.Exit(2)
	}
	var shards []string
	for _, s := range strings.Split(*shardsFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, strings.TrimRight(s, "/"))
		}
	}
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unstencil-coordinator: -fault-spec:", err)
			os.Exit(2)
		}
		if err := fault.Enable(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "unstencil-coordinator: -fault-spec:", err)
			os.Exit(2)
		}
		log.Warn("fault injection enabled; this build is intentionally unreliable", "spec", *faultSpec)
	}

	co, err := cluster.New(cluster.Config{
		Shards:         shards,
		VNodes:         *vnodes,
		RequestTimeout: *requestTimeout,
		HedgeDelay:     *hedgeDelay,
		Retry: server.RetryPolicy{
			Attempts: *retryN,
			Base:     *retryBase,
			Max:      *retryMax,
		},
		FailoverAttempts: *failover,
		HealthInterval:   *healthInterval,
		HealthThreshold:  *healthThreshold,
		DefaultBlocks:    *blocks,
		JobTimeout:       *jobTimeout,
		JobConcurrency:   *jobConcurrency,
		MaxBodyBytes:     *maxBodyMB << 20,
		Log:              log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unstencil-coordinator:", err)
		os.Exit(1)
	}
	co.Start()
	defer co.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           co,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Info("unstencil-coordinator listening", "addr", *addr, "shards", shards)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Info("shutting down", "signal", sig.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "unstencil-coordinator:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
}
