// Command paperbench regenerates the tables and figures of King & Kirby
// (SC '13) with this library. Each experiment prints the rows/series the
// paper reports; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	paperbench                      # default (reduced) sweep, all experiments
//	paperbench -exp table1,fig8     # selected experiments
//	paperbench -paper               # the paper's full 4k..1024k sweep
//	paperbench -sizes 4k,16k,64k    # custom sizes
//	paperbench -grid full           # full-density evaluation grid
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unstencil/internal/bench"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiments: table1,fig8,fig11,fig12,fig13,fig14,cellsweep,tiling,patches,spatial or 'all'")
		paperFlag = flag.Bool("paper", false, "use the paper's full configuration (4k..1024k, full grid)")
		sizesFlag = flag.String("sizes", "", "override mesh sizes, e.g. '4k,16k,64k'")
		ordersStr = flag.String("orders", "", "override polynomial orders, e.g. '1,2,3'")
		gridFlag  = flag.String("grid", "", "evaluation grid density: 'sparse' (one point per element) or 'full' (paper's quadrature grid)")
		seedFlag  = flag.Int64("seed", 1, "mesh generation seed")
		gradeFlag = flag.Float64("grading", 16, "high-variance mesh grading factor")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *paperFlag {
		cfg = bench.PaperConfig()
	}
	if *sizesFlag != "" {
		sizes, err := bench.ParseSizes(*sizesFlag)
		if err != nil {
			fatal(err)
		}
		cfg.Sizes = sizes
	}
	if *ordersStr != "" {
		orders, err := bench.ParseInts(*ordersStr)
		if err != nil {
			fatal(err)
		}
		cfg.Orders = orders
	}
	switch *gridFlag {
	case "":
	case "sparse":
		cfg.GridDegree = -1
	case "full":
		cfg.GridDegree = 0
	default:
		fatal(fmt.Errorf("unknown -grid %q (want sparse or full)", *gridFlag))
	}
	cfg.Seed = *seedFlag
	cfg.Grading = *gradeFlag
	if !*quiet {
		cfg.Log = os.Stderr
	}

	s, err := bench.NewSession(cfg)
	if err != nil {
		fatal(err)
	}

	type runner func() (*bench.Table, error)
	runners := map[string]runner{
		"table1": s.Table1,
		"fig8":   s.Fig8,
		"fig11": func() (*bench.Table, error) {
			t, _, err := s.FlopSweep(bench.LowVariance)
			return t, err
		},
		"fig12": func() (*bench.Table, error) {
			t, _, err := s.FlopSweep(bench.HighVariance)
			return t, err
		},
		"fig13":     s.Fig13,
		"fig14":     s.Fig14,
		"cellsweep": s.CellSweep,
		"tiling":    s.TilingComparison,
		"patches":   s.PatchSweep,
		"spatial":   s.SpatialSweep,
	}
	order := []string{"table1", "fig8", "fig11", "fig12", "fig13", "fig14",
		"cellsweep", "tiling", "patches", "spatial"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			e = strings.TrimSpace(e)
			if _, ok := runners[e]; !ok {
				fatal(fmt.Errorf("unknown experiment %q", e))
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		tb, err := runners[e]()
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", e, err))
		}
		tb.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
