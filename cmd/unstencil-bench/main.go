// Command unstencil-bench runs the fixed-seed hot-path benchmark suite and
// records the results in a JSON trajectory file (BENCH_PR3.json at the repo
// root) so performance work is provable and regressions are visible across
// commits.
//
// Usage:
//
//	unstencil-bench -label after -out BENCH_PR3.json
//	unstencil-bench -out BENCH_PR3.json -compare before,after
//	unstencil-bench -scaling -scaling-out BENCH_PR4.json
//	unstencil-bench -operator -operator-out BENCH_PR5.json
//	unstencil-bench -artifact -artifact-out BENCH_PR6.json
//	unstencil-bench -spmm -spmm-out BENCH_PR8.json -spmm-gha BENCH_PR8.gha.json
//	unstencil-bench -assemble -assemble-out BENCH_PR9.json -assemble-gha BENCH_PR9.gha.json
//	unstencil-bench -bsr -bsr-out BENCH_PR10.json -bsr-gha BENCH_PR10.gha.json
//
// Each invocation merges its results into the output file under -label,
// preserving runs recorded under other labels; -compare prints a
// benchstat-like base-vs-head table from the stored runs without
// re-benchmarking. -scaling runs the strong-scaling sweep instead: every
// scheme at every worker count, recording wall-clock and modeled speedups
// plus the bit-identity check against the serial run. -operator runs the
// assembled-operator sweep: assembly cost, apply-vs-direct throughput, CSR
// shape, and the break-even field count at which assembly pays for itself.
// -artifact runs the cold-start sweep: re-assembly cost vs loading the
// persisted operator artifact (mapped and portable), encoded bytes per
// artifact, and the identity check on the loaded operator's output.
// -assemble runs the congruence-first assembly sweep: naive vs
// template-aware wall time, congruence-class structure, verification and
// demotion outcomes, and the bitwise identity check against the naive
// operator. -bsr runs the block-sparse layout sweep: scalar CSR vs blocked
// apply throughput per order and batch width, resident sizes per layout,
// and the bitwise identity check between the two kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"unstencil/internal/bench"
)

func main() {
	var (
		out            = flag.String("out", "BENCH_PR3.json", "trajectory file to merge results into")
		label          = flag.String("label", "head", "label to record this run under (e.g. before, after)")
		size           = flag.Int("size", 0, "override benchmark mesh size (0 = suite default)")
		workers        = flag.Int("workers", 0, "override evaluation worker count (0 = GOMAXPROCS)")
		compare        = flag.String("compare", "", "compare two stored labels, e.g. before,after (skips benchmarking)")
		threshold      = flag.Float64("warn-below", 0, "with -compare: exit 1 when geomean speedup falls below this")
		scaling        = flag.Bool("scaling", false, "run the strong-scaling sweep instead of the hot-path suite")
		scalingOut     = flag.String("scaling-out", "BENCH_PR4.json", "with -scaling: report file to write")
		scalingWorkers = flag.String("scaling-workers", "", "with -scaling: comma-separated worker sweep, e.g. 1,2,4,8")
		operator       = flag.Bool("operator", false, "run the assembled-operator sweep instead of the hot-path suite")
		operatorOut    = flag.String("operator-out", "BENCH_PR5.json", "with -operator: report file to write")
		artifactSweep  = flag.Bool("artifact", false, "run the artifact cold-start sweep instead of the hot-path suite")
		artifactOut    = flag.String("artifact-out", "BENCH_PR6.json", "with -artifact: report file to write")
		artifactDir    = flag.String("artifact-dir", "", "with -artifact: store scratch directory (default: temp dir)")
		spmm           = flag.Bool("spmm", false, "run the batched-apply (SpMM) sweep instead of the hot-path suite")
		spmmOut        = flag.String("spmm-out", "BENCH_PR8.json", "with -spmm: report file to write")
		spmmGHA        = flag.String("spmm-gha", "", "with -spmm: also write the github-action-benchmark JSON array here")
		spmmFields     = flag.String("spmm-fields", "", "with -spmm: comma-separated batch widths, e.g. 1,2,4,8,16")
		assemble       = flag.Bool("assemble", false, "run the congruence-first assembly sweep instead of the hot-path suite")
		assembleOut    = flag.String("assemble-out", "BENCH_PR9.json", "with -assemble: report file to write")
		assembleGHA    = flag.String("assemble-gha", "", "with -assemble: also write the github-action-benchmark JSON array here")
		assembleMD     = flag.String("assemble-md", "", "with -assemble: also write the README markdown table here")
		assembleReps   = flag.Int("assemble-reps", 0, "with -assemble: assemblies per variant, minimum reported (0 = default)")
		bsr            = flag.Bool("bsr", false, "run the block-sparse layout sweep instead of the hot-path suite")
		bsrOut         = flag.String("bsr-out", "BENCH_PR10.json", "with -bsr: report file to write")
		bsrGHA         = flag.String("bsr-gha", "", "with -bsr: also write the github-action-benchmark JSON array here")
		bsrMD          = flag.String("bsr-md", "", "with -bsr: also write the README markdown table here")
		bsrFields      = flag.String("bsr-fields", "", "with -bsr: comma-separated batch widths, e.g. 1,8")
	)
	flag.Parse()

	if *bsr {
		bcfg := bench.DefaultBSRConfig()
		if *size > 0 {
			bcfg.Size = *size
		}
		if *workers > 0 {
			bcfg.Workers = *workers
		}
		if *bsrFields != "" {
			fs, err := parseWorkerList(*bsrFields)
			if err != nil {
				fatal(err)
			}
			bcfg.Fields = fs
		}
		fmt.Fprintf(os.Stderr, "running block-sparse layout sweep (size=%d, orders=%v, fields=%v)...\n",
			bcfg.Size, bcfg.Orders, bcfg.Fields)
		rep, err := bench.RunBSR(bcfg)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*bsrOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *bsrOut)
		if *bsrGHA != "" {
			if err := rep.SaveGHA(*bsrGHA); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *bsrGHA)
		}
		if *bsrMD != "" {
			if err := os.WriteFile(*bsrMD, []byte(rep.Markdown()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *bsrMD)
		}
		return
	}

	if *assemble {
		bcfg := bench.DefaultAssembleConfig()
		if *size > 0 {
			bcfg.Size = *size
		}
		if *workers > 0 {
			bcfg.Workers = *workers
		}
		if *assembleReps > 0 {
			bcfg.Reps = *assembleReps
		}
		fmt.Fprintf(os.Stderr, "running congruence-first assembly sweep (size=%d, orders=%v, jitters=%v)...\n",
			bcfg.Size, bcfg.Orders, bcfg.Jitters)
		rep, err := bench.RunAssemble(bcfg)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*assembleOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *assembleOut)
		if *assembleGHA != "" {
			if err := rep.SaveGHA(*assembleGHA); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *assembleGHA)
		}
		if *assembleMD != "" {
			if err := os.WriteFile(*assembleMD, []byte(rep.Markdown()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *assembleMD)
		}
		return
	}

	if *spmm {
		mcfg := bench.DefaultSpMMConfig()
		if *size > 0 {
			mcfg.Size = *size
		}
		if *workers > 0 {
			mcfg.Workers = *workers
		}
		if *spmmFields != "" {
			fs, err := parseWorkerList(*spmmFields)
			if err != nil {
				fatal(err)
			}
			mcfg.Fields = fs
		}
		fmt.Fprintf(os.Stderr, "running batched-apply sweep (size=%d, orders=%v, fields=%v)...\n",
			mcfg.Size, mcfg.Orders, mcfg.Fields)
		rep, err := bench.RunSpMM(mcfg)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*spmmOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *spmmOut)
		if *spmmGHA != "" {
			if err := rep.SaveGHA(*spmmGHA); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *spmmGHA)
		}
		return
	}

	if *artifactSweep {
		acfg := bench.DefaultArtifactConfig()
		if *size > 0 {
			acfg.Size = *size
		}
		if *workers > 0 {
			acfg.Workers = *workers
		}
		fmt.Fprintf(os.Stderr, "running artifact cold-start sweep (size=%d, orders=%v)...\n", acfg.Size, acfg.Orders)
		rep, err := bench.RunArtifact(acfg, *artifactDir)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*artifactOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *artifactOut)
		return
	}

	if *operator {
		ocfg := bench.DefaultOperatorConfig()
		if *size > 0 {
			ocfg.Size = *size
		}
		if *workers > 0 {
			ocfg.Workers = *workers
		}
		fmt.Fprintf(os.Stderr, "running assembled-operator sweep (size=%d, orders=%v)...\n", ocfg.Size, ocfg.Orders)
		rep, err := bench.RunOperator(ocfg)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*operatorOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *operatorOut)
		return
	}

	if *scaling {
		scfg := bench.DefaultScalingConfig()
		if *size > 0 {
			scfg.Size = *size
		}
		if *scalingWorkers != "" {
			ws, err := parseWorkerList(*scalingWorkers)
			if err != nil {
				fatal(err)
			}
			scfg.Workers = ws
		}
		fmt.Fprintf(os.Stderr, "running strong-scaling sweep (size=%d, workers=%v)...\n", scfg.Size, scfg.Workers)
		rep, err := bench.RunScaling(scfg)
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if err := rep.Save(*scalingOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *scalingOut)
		return
	}

	cfg := bench.DefaultHotPathConfig()
	if *size > 0 {
		cfg.Size = *size
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	rep, err := bench.LoadHotPathReport(*out, cfg)
	if err != nil {
		fatal(err)
	}

	if *compare != "" {
		parts := strings.SplitN(*compare, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-compare wants base,head; got %q", *compare))
		}
		gm := rep.FprintComparison(os.Stdout, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		if *threshold > 0 && gm < *threshold {
			fmt.Fprintf(os.Stderr, "unstencil-bench: geomean speedup %.2fx below threshold %.2fx\n", gm, *threshold)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "running hot-path suite (size=%d, label=%q)...\n", cfg.Size, *label)
	results, err := bench.RunHotPath(cfg)
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-34s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.ModelGFLOPs > 0 {
			fmt.Printf(" %8.3f model-GF/s", r.ModelGFLOPs)
		}
		fmt.Println()
	}
	rep.Runs[*label] = results
	if err := rep.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func parseWorkerList(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scaling-workers entry %q", part)
		}
		ws = append(ws, n)
	}
	return ws, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unstencil-bench:", err)
	os.Exit(1)
}
