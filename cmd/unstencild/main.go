// Command unstencild runs the resident SIAC post-processing service: an
// HTTP/JSON API over the paper's per-point and per-element evaluation
// schemes with a bounded job queue, a worker pool, and an LRU artifact
// cache that keeps meshes, projected dG fields, SIAC kernel tables and
// tilings warm across requests.
//
// Usage:
//
//	unstencild -addr :8080 -workers 4 -queue 128 -cache-mb 256
//
// Example session:
//
//	curl -sX POST --data-binary @mesh.json localhost:8080/v1/meshes
//	curl -sX POST -d '{"mesh_id":"<id>","scheme":"per-element","p":2}' localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-00000001
//	curl -s localhost:8080/v1/jobs/job-00000001/result
//	curl -s localhost:8080/debug/metrics
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener stops accepting,
// queued and running jobs drain (up to -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unstencil/internal/fault"
	"unstencil/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "job worker pool size")
		queue        = flag.Int("queue", 64, "bounded job queue capacity")
		cacheMB      = flag.Int64("cache-mb", 256, "artifact cache budget in MiB")
		maxBodyMB    = flag.Int64("max-body-mb", 32, "request body limit in MiB")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-job evaluation cap")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain window")
		blocks       = flag.Int("blocks", 16, "default blocks/patches for jobs that omit it")
		evalWorkers  = flag.Int("eval-workers", 0, "per-evaluation concurrency (0 = GOMAXPROCS)")
		stateDir     = flag.String("state-dir", "", "directory for the job journal; empty disables crash recovery")
		storeDir     = flag.String("store-dir", "", "directory for the persistent artifact store (meshes, assembled operators); defaults to <state-dir>/store when -state-dir is set, so journal replay re-uses disk-resident artifacts; set alone it enables persistence without journaling")
		retryN       = flag.Int("retry-attempts", 1, "tries per tile and per job for transient failures (1 = no retry)")
		retryBase    = flag.Duration("retry-base", 10*time.Millisecond, "backoff before the first retry (doubles per retry)")
		retryMax     = flag.Duration("retry-max", 500*time.Millisecond, "backoff cap")
		stageTimeout = flag.Duration("stage-timeout", 0, "per-stage (artifact build, evaluation) cap; 0 = job timeout")
		faultSpec    = flag.String("fault-spec", "", "enable deterministic fault injection, e.g. seed=42,mode=mixed,sites=core.tile:0.01 (testing only)")
		debugAddr    = flag.String("debug-addr", "", "separate listen address for net/http/pprof and expvar (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unstencild: -fault-spec:", err)
			os.Exit(2)
		}
		if err := fault.Enable(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "unstencild: -fault-spec:", err)
			os.Exit(2)
		}
		log.Warn("fault injection enabled; this build is intentionally unreliable", "spec", *faultSpec)
	}
	srv, err := server.New(server.Config{
		Workers:       *workers,
		QueueSize:     *queue,
		CacheBytes:    *cacheMB << 20,
		MaxBodyBytes:  *maxBodyMB << 20,
		JobTimeout:    *jobTimeout,
		StageTimeout:  *stageTimeout,
		DefaultBlocks: *blocks,
		EvalWorkers:   *evalWorkers,
		StateDir:      *stateDir,
		StoreDir:      *storeDir,
		Retry: server.RetryPolicy{
			Attempts: *retryN,
			Base:     *retryBase,
			Max:      *retryMax,
		},
		Log: log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unstencild:", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling/introspection stays off the service listener so production
	// traffic policies (auth, body limits) never apply to it and it can be
	// bound to loopback only.
	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Info("debug listener (pprof, expvar)", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Warn("debug listener", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("unstencild listening", "addr", *addr, "workers", *workers, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		log.Info("shutting down", "signal", sig.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "unstencild:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Warn("debug shutdown", "err", err)
		}
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Manager().Shutdown(ctx); err != nil {
		log.Warn("job drain incomplete; in-flight jobs cancelled", "err", err)
		os.Exit(1)
	}
	log.Info("drained cleanly")
}
