// Command unstencil-artifact packs, inspects, and verifies unstencil's
// persistent binary artifacts offline — the same files unstencild's store
// reads and writes, so operators packed here are picked up by a cold-started
// server without any assembly.
//
// Usage:
//
//	unstencil-artifact pack -mesh mesh.json -store /var/lib/unstencil/store [-p 2] [-boundary periodic] [-field sincos]
//	unstencil-artifact inspect /var/lib/unstencil/store/op-<hash>.art
//	unstencil-artifact verify /var/lib/unstencil/store/*.art
//
// pack decodes a mesh, projects the requested field, assembles the operator
// for (mesh, P, grid, boundary), and writes all three artifacts into the
// store directory under the exact logical keys unstencild uses — a deploy
// can pre-warm a store before the service ever starts. inspect prints one
// artifact's header, sections, and metadata. verify re-reads every section
// of each file and checks its CRC, exiting non-zero on the first failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"unstencil/internal/artifact"
	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "pack":
		pack(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  unstencil-artifact pack -mesh <mesh.json> -store <dir> [-p N] [-grid-degree N] [-boundary periodic|one-sided] [-field name|none]
  unstencil-artifact inspect <file.art>
  unstencil-artifact verify <file.art> [...]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unstencil-artifact:", err)
	os.Exit(1)
}

// pack pre-computes a store entry set for one mesh: the mesh itself, the
// projected field, and the assembled operator, all under the keys the
// server's tiered lookup resolves.
func pack(args []string) {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	meshPath := fs.String("mesh", "", "mesh JSON file (required)")
	storeDir := fs.String("store", "", "artifact store directory (required)")
	p := fs.Int("p", 2, "dG polynomial order")
	gridDegree := fs.Int("grid-degree", 0, "evaluation-grid quadrature degree (0 = 2P, negative = one-point)")
	boundaryName := fs.String("boundary", "periodic", "boundary handling: periodic or one-sided")
	fieldName := fs.String("field", "sincos", "analytic field to project and persist (none to skip)")
	workers := fs.Int("workers", 0, "assembly concurrency (0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	if *meshPath == "" || *storeDir == "" {
		fs.Usage()
		os.Exit(2)
	}

	var boundary core.Boundary
	switch *boundaryName {
	case "periodic":
		boundary = core.Periodic
	case "one-sided":
		boundary = core.OneSided
	default:
		fatal(fmt.Errorf("bad -boundary %q (want periodic or one-sided)", *boundaryName))
	}
	fn, ok := server.FieldFuncs[*fieldName]
	if !ok && *fieldName != "none" {
		fatal(fmt.Errorf("unknown -field %q (have %v, or none)", *fieldName, server.FieldNames()))
	}

	f, err := os.Open(*meshPath)
	if err != nil {
		fatal(err)
	}
	m, err := mesh.Decode(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("decode %s: %w", *meshPath, err))
	}
	store, err := artifact.NewStore(*storeDir, nil)
	if err != nil {
		fatal(err)
	}
	meshID, err := store.SaveMesh(m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mesh     %s\n         -> %s\n", meshID, store.Path("mesh:"+meshID))

	if *fieldName == "none" {
		return
	}
	field := dg.Project(m, *p, fn, 4)
	fieldKey := fmt.Sprintf("field:%s/p%d/%s", meshID, *p, *fieldName)
	if err := store.SaveField(fieldKey, field); err != nil {
		fatal(err)
	}
	fmt.Printf("field    %s\n         -> %s\n", fieldKey, store.Path(fieldKey))

	ev, err := core.NewEvaluator(field, core.Options{
		P: *p, GridDegree: *gridDegree, Boundary: boundary, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}
	op, err := ev.AssembleOperator(core.AssembleOpts{Congruence: core.CongruenceTemplate})
	if err != nil {
		fatal(err)
	}
	// The evaluator's normalized grid degree, so the key matches what a
	// running unstencild computes for the same job parameters.
	opKey := server.OpKey(meshID, *p, ev.Opt.GridDegree, boundary)
	if err := store.SaveOperator(opKey, op); err != nil {
		fatal(err)
	}
	st := op.Stats()
	fmt.Printf("operator %s\n         -> %s (%d x %d, %d nnz, %s wall)\n",
		opKey, store.Path(opKey), st.Rows, st.Cols, st.NNZ, op.AssemblyWall)
	if cs := op.Congruence; cs != nil {
		fmt.Printf("         congruence: %d classes, %d/%d rows stamped, %d demoted\n",
			cs.Classes, cs.RowsStamped, cs.Rows, cs.RowsDemoted)
	}
}

func openContainer(path string) (*artifact.Container, *os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	c, err := artifact.Parse(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return c, f, fi.Size(), nil
}

// inspect prints one artifact's structure without requiring its key.
func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	c, f, size, err := openContainer(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	key, err := c.Key()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n  kind     %s (format v%d)\n  size     %d bytes\n  key      %s\n  sections %d\n",
		args[0], artifact.KindName(c.Kind), artifact.Version, size, key, len(c.Sections))
	for _, s := range c.Sections {
		fmt.Printf("    type %-3d crc %08x  [%8d, +%d)\n", s.Type, s.CRC, s.Offset, s.Length)
	}
	switch c.Kind {
	case artifact.KindMesh:
		if m, err := c.DecodeMesh(""); err == nil {
			fmt.Printf("  mesh     %d verts, %d tris, hash %s\n", m.NumVerts(), m.NumTris(), m.ContentHash())
		}
	case artifact.KindField:
		if meta, coeffs, err := c.DecodeField(""); err == nil {
			fmt.Printf("  field    P%d, %d elems x %d modes (%d coeffs), mesh %s\n",
				meta.P, meta.NumElems, meta.BasisN, len(coeffs), meta.MeshHash)
		}
	case artifact.KindOperator:
		if op, err := c.DecodeOperator(""); err == nil {
			st := op.Stats()
			fmt.Printf("  operator %d x %d, %d nnz (%.1f/row), basis %d, scheme %s, assembled in %s\n",
				st.Rows, st.Cols, st.NNZ, st.NNZPerRow, op.BasisN, op.AssemblyScheme, op.AssemblyWall)
		}
	}
}

// verify CRC-checks every section of every named file.
func verify(args []string) {
	if len(args) == 0 {
		usage()
	}
	failed := false
	for _, path := range args {
		c, f, _, err := openContainer(path)
		if err == nil {
			err = c.VerifyAll()
			f.Close()
		}
		if err != nil {
			failed = true
			fmt.Printf("%-60s FAIL  %v\n", path, err)
			continue
		}
		fmt.Printf("%-60s OK    %s, %d sections\n", path, artifact.KindName(c.Kind), len(c.Sections))
	}
	if failed {
		os.Exit(1)
	}
}
