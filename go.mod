module unstencil

go 1.22
