// Streamlines: integrate particle traces through a velocity field stored as
// a discontinuous Galerkin solution. Discontinuities at element interfaces
// degrade streamline accuracy; SIAC filtering was introduced for exactly
// this use case (Steffen et al., IEEE TVCG 2008; Walfisch et al., JSC
// 2009 — both cited by the paper). The example traces the same particle
// through (a) the analytic field, (b) the raw dG field, and (c) the SIAC
// post-processed field via core.Evaluator.EvalAt, and reports the end-point
// errors.
package main

import (
	"fmt"
	"log"
	"math"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// The steady divergence-free test field: a Taylor–Green vortex array with
// period 1 in both directions, matching the post-processor's periodic
// domain.
func velocity(p geom.Point) geom.Point {
	return geom.Pt(
		-math.Sin(2*math.Pi*p.X)*math.Cos(2*math.Pi*p.Y),
		math.Cos(2*math.Pi*p.X)*math.Sin(2*math.Pi*p.Y),
	)
}

// field2 samples a velocity field from any source.
type field2 func(geom.Point) (geom.Point, error)

// rk4 traces a streamline with classic RK4 and periodic wrapping, returning
// the end position.
func rk4(v field2, start geom.Point, dt float64, steps int) (geom.Point, error) {
	p := start
	wrap := func(q geom.Point) geom.Point {
		return geom.Pt(q.X-math.Floor(q.X), q.Y-math.Floor(q.Y))
	}
	for s := 0; s < steps; s++ {
		k1, err := v(wrap(p))
		if err != nil {
			return p, err
		}
		k2, err := v(wrap(p.Add(k1.Scale(dt / 2))))
		if err != nil {
			return p, err
		}
		k3, err := v(wrap(p.Add(k2.Scale(dt / 2))))
		if err != nil {
			return p, err
		}
		k4, err := v(wrap(p.Add(k3.Scale(dt))))
		if err != nil {
			return p, err
		}
		p = p.Add(k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(dt / 6))
	}
	return p, nil
}

func main() {
	m, err := mesh.SizedLowVariance(800, 11)
	if err != nil {
		log.Fatal(err)
	}
	const p = 1
	// Project each velocity component onto the dG space.
	fu := dg.Project(m, p, func(q geom.Point) float64 { return velocity(q).X }, 4)
	fv := dg.Project(m, p, func(q geom.Point) float64 { return velocity(q).Y }, 4)
	evU, err := core.NewEvaluator(fu, core.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}
	evV, err := core.NewEvaluator(fv, core.Options{P: p})
	if err != nil {
		log.Fatal(err)
	}

	analytic := func(q geom.Point) (geom.Point, error) { return velocity(q), nil }
	rawDG := func(q geom.Point) (geom.Point, error) {
		// Locate the element and evaluate the broken polynomial directly —
		// values jump across interfaces.
		ux, err := fu.Eval(q)
		if err != nil {
			return geom.Point{}, err
		}
		uy, err := fv.Eval(q)
		if err != nil {
			return geom.Point{}, err
		}
		return geom.Pt(ux, uy), nil
	}
	siac := func(q geom.Point) (geom.Point, error) {
		ux, err := evU.EvalAt(q)
		if err != nil {
			return geom.Point{}, err
		}
		uy, err := evV.EvalAt(q)
		if err != nil {
			return geom.Point{}, err
		}
		return geom.Pt(ux, uy), nil
	}

	start := geom.Pt(0.30, 0.40)
	const dt, steps = 0.01, 120
	ref, err := rk4(analytic, start, dt/4, steps*4) // fine reference trace
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamline from %v, T = %.2f, mesh %d triangles, P=%d\n",
		start, dt*steps, m.NumTris(), p)

	endDG, err := rk4(rawDG, start, dt, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw dG field:   end %v, deviation %.3e\n", endDG, endDG.Dist(ref))

	endSIAC, err := rk4(siac, start, dt, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIAC filtered:  end %v, deviation %.3e\n", endSIAC, endSIAC.Dist(ref))

	// The filter's headline property for streamlines is *smoothness*: the
	// velocity seen by the integrator jumps across every element interface
	// in the raw dG field but is continuous after filtering. Compare the
	// two-sided limits at interior edge midpoints: for the raw field via
	// the owning elements' polynomials, for the filtered field by sampling
	// a hair to each side of the edge.
	adj, err := dg.BuildAdjacency(m, false)
	if err != nil {
		log.Fatal(err)
	}
	var maxJumpDG, maxJumpSIAC float64
	checked := 0
	for e := 0; e < m.NumTris() && checked < 60; e++ {
		tri := m.Triangle(e)
		vs := [3]geom.Point{tri.A, tri.B, tri.C}
		for le := 0; le < 3 && checked < 60; le++ {
			nb := adj.Neighbors[e][le]
			if nb.Elem < 0 || nb.Elem < int32(e) {
				continue
			}
			mid := vs[le].Add(vs[(le+1)%3]).Scale(0.5)
			if mid.X < 0.1 || mid.X > 0.9 || mid.Y < 0.1 || mid.Y > 0.9 {
				continue
			}
			checked++
			du := math.Abs(fu.EvalIn(e, mid) - fu.EvalIn(int(nb.Elem), mid))
			dv := math.Abs(fv.EvalIn(e, mid) - fv.EvalIn(int(nb.Elem), mid))
			if j := math.Hypot(du, dv); j > maxJumpDG {
				maxJumpDG = j
			}
			edge := vs[(le+1)%3].Sub(vs[le])
			n := geom.Pt(edge.Y, -edge.X).Scale(1e-7 / edge.Norm())
			s0, err0 := siac(mid.Add(n))
			s1, err1 := siac(mid.Sub(n))
			if err0 == nil && err1 == nil {
				if j := s0.Dist(s1); j > maxJumpSIAC {
					maxJumpSIAC = j
				}
			}
		}
	}
	fmt.Printf("largest interface velocity jump (%d edges): raw dG %.3e, SIAC %.3e\n",
		checked, maxJumpDG, maxJumpSIAC)
	fmt.Println("\nPointwise the filtered field is more accurate and, crucially for")
	fmt.Println("ODE integrators, continuous across element interfaces — the reason")
	fmt.Println("SIAC filtering was introduced for streamline integration.")
}
