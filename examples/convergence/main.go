// Convergence study: demonstrates the accuracy-conserving (indeed
// accuracy-*raising*) property of SIAC post-processing. dG projections of a
// smooth field converge at O(h^{P+1}); the post-processed solution
// superconverges at O(h^{2P+1}) at interior points. The example prints the
// error tables and observed rates for a sequence of refined meshes.
package main

import (
	"fmt"
	"log"
	"math"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func main() {
	u := func(p geom.Point) float64 {
		return math.Sin(2 * math.Pi * (p.X + p.Y))
	}
	const p = 1
	fmt.Printf("SIAC convergence study, P=%d (expect rates %d and %d)\n\n", p, p+1, 2*p+1)
	fmt.Printf("%-8s  %-12s  %-6s  %-12s  %-6s\n", "mesh", "dG error", "rate", "SIAC error", "rate")

	var prevBefore, prevAfter float64
	for _, n := range []int{8, 16, 32} {
		m := mesh.Structured(n)
		field := dg.Project(m, p, u, 6)
		ev, err := core.NewEvaluator(field, core.Options{P: p})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ev.Run(core.PerElement, 16)
		if err != nil {
			log.Fatal(err)
		}
		// Max error over interior grid points (stencil fully inside the
		// domain), where the symmetric-kernel theory applies.
		half := ev.W / 2
		var before, after float64
		for i, gp := range ev.Points {
			if gp.Pos.X < half || gp.Pos.X > 1-half || gp.Pos.Y < half || gp.Pos.Y > 1-half {
				continue
			}
			want := u(gp.Pos)
			if d := math.Abs(field.EvalIn(int(gp.Elem), gp.Pos) - want); d > before {
				before = d
			}
			if d := math.Abs(res.Solution[i] - want); d > after {
				after = d
			}
		}
		rb, ra := "-", "-"
		if prevBefore > 0 {
			rb = fmt.Sprintf("%.2f", math.Log2(prevBefore/before))
			ra = fmt.Sprintf("%.2f", math.Log2(prevAfter/after))
		}
		fmt.Printf("%-8s  %-12.3e  %-6s  %-12.3e  %-6s\n",
			fmt.Sprintf("%dx%dx2", n, n), before, rb, after, ra)
		prevBefore, prevAfter = before, after
	}
	fmt.Println("\nThe SIAC rate exceeding the dG rate is the paper's §2.2 motivation.")
}
