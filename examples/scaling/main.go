// Scaling: demonstrates the overlapped tiling scheme and the multi-device
// decomposition of paper §4. The post-processing workload is split into
// NGPU x NSM workload-balanced patches; each simulated device executes its
// patches on goroutine-SMs, and the deterministic cost model reports the
// modeled strong-scaling curve (paper Fig. 14) alongside measured wall
// times.
package main

import (
	"fmt"
	"log"
	"math"

	"unstencil/internal/core"
	"unstencil/internal/device"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func main() {
	m, err := mesh.SizedLowVariance(4000, 3)
	if err != nil {
		log.Fatal(err)
	}
	u := func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) }
	field := dg.Project(m, 1, u, 2)
	ev, err := core.NewEvaluator(field, core.Options{P: 1, GridDegree: -1})
	if err != nil {
		log.Fatal(err)
	}

	const smsPerDevice = 16
	fmt.Printf("per-element overlapped tiling on %d triangles\n\n", m.NumTris())
	fmt.Printf("%-8s  %-8s  %-10s  %-12s  %-10s\n",
		"devices", "patches", "overhead", "modeled ms", "speedup")

	var base float64
	for _, devs := range []int{1, 2, 4, 8} {
		k := devs * smsPerDevice
		tl := ev.NewTiling(k)
		res, err := ev.RunPerElement(tl)
		if err != nil {
			log.Fatal(err)
		}
		sim := device.Sim{Devices: devs, SMs: smsPerDevice}
		tm := sim.RunCounters(res.Blocks, float64(tl.PartialValues())*2)
		ms := device.Seconds(tm.Total) * 1e3
		if devs == 1 {
			base = ms
		}
		fmt.Printf("%-8d  %-8d  %-10.3f  %-12.3f  %-10.2f\n",
			devs, k, tl.Overhead(), ms, base/ms)
	}
	fmt.Println("\nNear-linear speedup with low, shrinking memory overhead is the")
	fmt.Println("scalability claim of paper §5.2 / Fig. 14.")
}
