// Quickstart: project a smooth field onto a dG space over an unstructured
// mesh, post-process it with the per-element SIAC scheme, and print the
// before/after errors. This is the minimal end-to-end use of the library's
// public pipeline: mesh -> dg.Field -> core.Evaluator -> Result.
package main

import (
	"fmt"
	"log"
	"math"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func main() {
	// 1. An unstructured triangular mesh of the unit square (~2000
	//    triangles, roughly uniform element sizes).
	m, err := mesh.SizedLowVariance(2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d triangles, longest edge %.4f\n", m.NumTris(), m.LongestEdge())

	// 2. A discontinuous Galerkin field: the L2 projection of a smooth
	//    periodic function onto piecewise-linear polynomials.
	u := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
	}
	field := dg.Project(m, 1, u, 4)

	// 3. A SIAC post-processor. Options{P: 1} selects the kernel built from
	//    quadratic B-splines with a 4h-wide stencil; everything else
	//    defaults to the paper's configuration (periodic domain, hash-grid
	//    cell sizes cp = s and ce = s/2).
	ev, err := core.NewEvaluator(field, core.Options{P: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run the per-element scheme with 16 overlapped tiles.
	res, err := ev.Run(core.PerElement, 16)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare accuracy at the evaluation grid points.
	var before, after float64
	for i, gp := range ev.Points {
		want := u(gp.Pos)
		if d := math.Abs(field.EvalIn(int(gp.Elem), gp.Pos) - want); d > before {
			before = d
		}
		if d := math.Abs(res.Solution[i] - want); d > after {
			after = d
		}
	}
	fmt.Printf("evaluated %d grid points in %v\n", ev.NumPoints(), res.Wall)
	fmt.Printf("intersection tests: %d, integrated regions: %d\n",
		res.Total.IntersectionTests, res.Total.Regions)
	fmt.Printf("max error before post-processing: %.3e\n", before)
	fmt.Printf("max error after  post-processing: %.3e (%.1fx better)\n",
		after, before/after)
}
