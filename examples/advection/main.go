// Advection: the full simulate-then-post-process pipeline the paper's
// application domain is about. A linear advection equation is solved with
// the built-in upwind dG solver on an unstructured periodic mesh, producing
// a genuinely discontinuous piecewise-polynomial solution; SIAC
// post-processing then smooths it and recovers accuracy lost to the
// element-interface jumps.
package main

import (
	"fmt"
	"log"
	"math"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func main() {
	m, err := mesh.SizedLowVariance(1500, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Advect a smooth profile with velocity beta for time T; the exact
	// solution is the translated initial condition.
	beta := geom.Pt(1, 0.5)
	const T = 0.2
	u0 := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Sin(2*math.Pi*p.Y)
	}
	exact := func(p geom.Point) float64 {
		return u0(geom.Pt(p.X-beta.X*T, p.Y-beta.Y*T))
	}

	solver, err := dg.NewAdvection(m, 1, beta, u0)
	if err != nil {
		log.Fatal(err)
	}
	steps := solver.Run(T, 0.3)
	fmt.Printf("dG advection: %d triangles, %d RK3 steps to T=%g\n",
		m.NumTris(), steps, T)
	fmt.Printf("L2 error of the dG solution: %.3e\n", solver.Field.L2Error(exact, 4))

	// Measure the interface jumps before post-processing: sample each
	// interior edge midpoint from both sides.
	adjJump := meanInterfaceJump(solver.Field)
	fmt.Printf("mean interface jump before post-processing: %.3e\n", adjJump)

	// SIAC post-process the advected solution.
	ev, err := core.NewEvaluator(solver.Field, core.Options{P: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ev.Run(core.PerElement, 16)
	if err != nil {
		log.Fatal(err)
	}

	var before, after float64
	for i, gp := range ev.Points {
		want := exact(gp.Pos)
		if d := math.Abs(solver.Field.EvalIn(int(gp.Elem), gp.Pos) - want); d > before {
			before = d
		}
		if d := math.Abs(res.Solution[i] - want); d > after {
			after = d
		}
	}
	fmt.Printf("max grid-point error: dG %.3e -> SIAC %.3e\n", before, after)
	fmt.Printf("post-processing wall time: %v (%v scheme, overhead %.2f)\n",
		res.Wall, res.Scheme, res.MemoryOverhead)
}

// meanInterfaceJump samples each interior edge at its midpoint from both
// sides and averages |u⁻ − u⁺| — a direct measure of the discontinuity the
// SIAC filter exists to remove.
func meanInterfaceJump(f *dg.Field) float64 {
	adj, err := dg.BuildAdjacency(f.Mesh, false)
	if err != nil {
		log.Fatal(err)
	}
	sum, n := 0.0, 0
	for e := 0; e < f.Mesh.NumTris(); e++ {
		tri := f.Mesh.Triangle(e)
		vs := [3]geom.Point{tri.A, tri.B, tri.C}
		for le := 0; le < 3; le++ {
			nb := adj.Neighbors[e][le]
			if nb.Elem < 0 || nb.Elem < int32(e) {
				continue // boundary, or already counted from the other side
			}
			mid := vs[le].Add(vs[(le+1)%3]).Scale(0.5)
			sum += math.Abs(f.EvalIn(e, mid) - f.EvalIn(int(nb.Elem), mid))
			n++
		}
	}
	return sum / float64(n)
}
