package siac1d

import (
	"math"
	"testing"
)

func TestMesh1DBasics(t *testing.T) {
	m := Uniform(4)
	if m.NumElems() != 4 || m.H(0) != 0.25 || m.MaxH() != 0.25 {
		t.Fatalf("uniform mesh wrong: %+v", m)
	}
	j := Jittered(10, 0.3, 1)
	if j.NumElems() != 10 {
		t.Fatal("jittered elems")
	}
	if j.Nodes[0] != 0 || j.Nodes[10] != 1 {
		t.Fatal("jittered endpoints moved")
	}
	for i := 1; i <= 10; i++ {
		if j.Nodes[i] <= j.Nodes[i-1] {
			t.Fatal("nodes not increasing")
		}
	}
}

func TestLocate(t *testing.T) {
	m := Uniform(4)
	cases := map[float64]int{0: 0, 0.1: 0, 0.25: 1, 0.6: 2, 0.99: 3}
	for x, want := range cases {
		if got := m.locate(x); got != want {
			t.Errorf("locate(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestProjectionExactForPolynomials(t *testing.T) {
	m := Jittered(7, 0.3, 2)
	for p := 1; p <= 3; p++ {
		fn := func(x float64) float64 { return math.Pow(x, float64(p)) - 2*x + 1 }
		f := Project1D(m, p, fn)
		for _, x := range []float64{0.05, 0.33, 0.71, 0.97} {
			if d := math.Abs(f.Eval(x) - fn(x)); d > 1e-12 {
				t.Errorf("P=%d at %v: error %v", p, x, d)
			}
		}
	}
}

func TestPostProcessorErrors(t *testing.T) {
	f := Project1D(Uniform(4), 0, func(x float64) float64 { return 1 })
	if _, err := NewPostProcessor(f); err == nil {
		t.Error("P=0 should fail")
	}
}

func TestConstantReproduced(t *testing.T) {
	f := Project1D(Jittered(9, 0.3, 3), 1, func(float64) float64 { return 4.2 })
	pp, err := NewPostProcessor(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.01, 0.3, 0.77, 0.99} {
		u, err := pp.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(u-4.2) > 1e-11 {
			t.Errorf("constant at %v: %v", x, u)
		}
	}
}

// Degree <= P polynomials survive projection exactly and are then
// reproduced by the kernel at interior points.
func TestPolynomialReproductionInterior(t *testing.T) {
	for p := 1; p <= 3; p++ {
		fn := func(x float64) float64 { return 3*math.Pow(x, float64(p)) + x - 1 }
		f := Project1D(Uniform(30), p, fn)
		pp, err := NewPostProcessor(f)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := pp.Kernel.Support()
		for _, x := range []float64{0.4, 0.5, 0.6} {
			if x+pp.H*lo < 0 || x+pp.H*hi > 1 {
				continue
			}
			u, err := pp.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(u - fn(x)); d > 1e-9 {
				t.Errorf("P=%d at %v: error %v", p, x, d)
			}
		}
	}
}

// One-sided kernels reproduce degree <= P polynomials at EVERY point,
// including the boundaries.
func TestOneSidedReproductionEverywhere(t *testing.T) {
	for p := 1; p <= 2; p++ {
		fn := func(x float64) float64 { return math.Pow(x, float64(p)) - 0.5 }
		f := Project1D(Uniform(24), p, fn)
		pp, err := NewPostProcessor(f)
		if err != nil {
			t.Fatal(err)
		}
		pp.OneSided = true
		for _, x := range []float64{0.003, 0.05, 0.5, 0.95, 0.997} {
			u, err := pp.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(u - fn(x)); d > 1e-8 {
				t.Errorf("P=%d one-sided at %v: error %v", p, x, d)
			}
		}
	}
}

// The headline 1D result: post-processing lifts dG accuracy from O(h^{P+1})
// to O(h^{2P+1}) for smooth periodic data. With P=2 the rates separate
// decisively (3 vs 5).
func TestSuperconvergence1D(t *testing.T) {
	fn := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	for p := 1; p <= 2; p++ {
		rates := make([]float64, 0, 2)
		var prevProj, prevPost float64
		for _, n := range []int{8, 16, 32} {
			f := Project1D(Uniform(n), p, fn)
			pp, err := NewPostProcessor(f)
			if err != nil {
				t.Fatal(err)
			}
			var projErr, postErr float64
			for e := 0; e < n; e++ {
				x := (float64(e) + 0.37) / float64(n)
				if d := math.Abs(f.Eval(x) - fn(x)); d > projErr {
					projErr = d
				}
				u, err := pp.Eval(x)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(u - fn(x)); d > postErr {
					postErr = d
				}
			}
			if prevPost > 0 {
				rates = append(rates, math.Log2(prevPost/postErr))
			}
			prevProj, prevPost = projErr, postErr
			_ = prevProj
		}
		last := rates[len(rates)-1]
		t.Logf("P=%d post-processed rates: %v (want ≈ %d)", p, rates, 2*p+1)
		if last < float64(2*p+1)-0.7 {
			t.Errorf("P=%d: final rate %.2f below 2P+1 = %d", p, last, 2*p+1)
		}
	}
}

// Post-processing on a nonuniform mesh with h = max element width keeps the
// accuracy benefit (the paper's unstructured setting, one dimension down).
func TestNonuniformImprovesError(t *testing.T) {
	fn := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	f := Project1D(Jittered(32, 0.4, 5), 1, fn)
	pp, err := NewPostProcessor(f)
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	for i := 0; i < 64; i++ {
		x := (float64(i) + 0.5) / 64
		if d := math.Abs(f.Eval(x) - fn(x)); d > before {
			before = d
		}
		u, err := pp.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(u - fn(x)); d > after {
			after = d
		}
	}
	t.Logf("nonuniform: before %.3e after %.3e", before, after)
	if after >= before {
		t.Errorf("post-processing did not improve: %v -> %v", before, after)
	}
}

func TestEvalGrid(t *testing.T) {
	f := Project1D(Uniform(5), 1, func(x float64) float64 { return x })
	pp, err := NewPostProcessor(f)
	if err != nil {
		t.Fatal(err)
	}
	xs, us, err := pp.EvalGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 15 || len(us) != 15 {
		t.Fatalf("grid sizes %d/%d", len(xs), len(us))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("grid not increasing")
		}
	}
}

func BenchmarkEval1DP2(b *testing.B) {
	f := Project1D(Uniform(64), 2, func(x float64) float64 { return math.Sin(2 * math.Pi * x) })
	pp, err := NewPostProcessor(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.Eval(0.5); err != nil {
			b.Fatal(err)
		}
	}
}
