// Package siac1d is a one-dimensional reference implementation of SIAC
// post-processing, following the paper's §2.2 formulation directly:
//
//	u*(x) = (1/h) ∫ K^{r+1,k+1}((y−x)/h) u(y) dy
//
// over a 1D mesh of line-segment elements. In one dimension the convolution
// can be evaluated exactly and cheaply at any order, which makes this
// package the numerical ground truth for the kernel machinery shared with
// the 2D post-processor: superconvergence at O(h^{2k+1}) is directly
// observable here for k = 1..3.
package siac1d

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"unstencil/internal/bspline"
	"unstencil/internal/dg"
	"unstencil/internal/quadrature"
)

// Mesh1D is a partition 0 = x_0 < x_1 < ... < x_N = 1 of the unit interval.
type Mesh1D struct {
	Nodes []float64
}

// Uniform returns the uniform n-element mesh.
func Uniform(n int) *Mesh1D {
	if n < 1 {
		panic(fmt.Sprintf("siac1d: need n >= 1, got %d", n))
	}
	m := &Mesh1D{Nodes: make([]float64, n+1)}
	for i := range m.Nodes {
		m.Nodes[i] = float64(i) / float64(n)
	}
	return m
}

// Jittered returns a non-uniform n-element mesh with interior nodes
// perturbed by up to jitter/n.
func Jittered(n int, jitter float64, seed int64) *Mesh1D {
	m := Uniform(n)
	rng := rand.New(rand.NewSource(seed))
	h := 1 / float64(n)
	for i := 1; i < n; i++ {
		m.Nodes[i] += (rng.Float64()*2 - 1) * jitter * h
	}
	sort.Float64s(m.Nodes)
	return m
}

// NumElems returns the element count.
func (m *Mesh1D) NumElems() int { return len(m.Nodes) - 1 }

// H returns the width of element e.
func (m *Mesh1D) H(e int) float64 { return m.Nodes[e+1] - m.Nodes[e] }

// MaxH returns the largest element width (the kernel scale h).
func (m *Mesh1D) MaxH() float64 {
	worst := 0.0
	for e := 0; e < m.NumElems(); e++ {
		if h := m.H(e); h > worst {
			worst = h
		}
	}
	return worst
}

// locate returns the element containing x ∈ [0, 1).
func (m *Mesh1D) locate(x float64) int {
	i := sort.SearchFloat64s(m.Nodes, x)
	// SearchFloat64s returns the first index with Nodes[i] >= x.
	if i > 0 && (i >= len(m.Nodes) || m.Nodes[i] != x) {
		i--
	}
	if i >= m.NumElems() {
		i = m.NumElems() - 1
	}
	return i
}

// Field1D is a broken polynomial of degree P on a 1D mesh, stored as
// orthonormal (scaled Legendre) modal coefficients per element.
type Field1D struct {
	Mesh   *Mesh1D
	P      int
	Coeffs []float64 // NumElems × (P+1)
}

// basis evaluates the orthonormal Legendre mode m on the reference interval
// [0, 1]: sqrt(2m+1)·P_m(2t−1).
func basis(m int, t float64) float64 {
	return math.Sqrt(2*float64(m)+1) * dg.Legendre(m, 2*t-1)
}

// Project1D computes the elementwise L2 projection of fn onto the broken
// degree-p space.
func Project1D(m *Mesh1D, p int, fn func(float64) float64) *Field1D {
	f := &Field1D{Mesh: m, P: p, Coeffs: make([]float64, m.NumElems()*(p+1))}
	rule := quadrature.GaussLegendre(p+3).Interval(0, 1)
	for e := 0; e < m.NumElems(); e++ {
		a := m.Nodes[e]
		h := m.H(e)
		ce := f.Coeffs[e*(p+1) : (e+1)*(p+1)]
		for mi := 0; mi <= p; mi++ {
			s := 0.0
			for q, t := range rule.Nodes {
				s += rule.Weights[q] * fn(a+h*t) * basis(mi, t)
			}
			ce[mi] = s
		}
	}
	return f
}

// EvalIn evaluates the field at x inside element e.
func (f *Field1D) EvalIn(e int, x float64) float64 {
	t := (x - f.Mesh.Nodes[e]) / f.Mesh.H(e)
	ce := f.Coeffs[e*(f.P+1) : (e+1)*(f.P+1)]
	v := 0.0
	for mi, c := range ce {
		v += c * basis(mi, t)
	}
	return v
}

// Eval evaluates the field at x ∈ [0, 1).
func (f *Field1D) Eval(x float64) float64 {
	return f.EvalIn(f.Mesh.locate(x), x)
}

// evalPeriodic evaluates the periodic extension of the field at any y.
func (f *Field1D) evalPeriodic(y float64) float64 {
	y -= math.Floor(y)
	return f.Eval(y)
}

// PostProcessor1D convolves a 1D dG field with the SIAC kernel.
type PostProcessor1D struct {
	Field  *Field1D
	Kernel *bspline.Kernel
	H      float64
	// OneSided switches boundary handling from periodic wrapping to
	// position-shifted one-sided kernels.
	OneSided bool
}

// NewPostProcessor builds a post-processor with the symmetric kernel of
// smoothness k = field degree and scale h = the largest element width.
func NewPostProcessor(f *Field1D) (*PostProcessor1D, error) {
	if f.P < 1 {
		return nil, errors.New("siac1d: post-processing needs P >= 1")
	}
	ker, err := bspline.NewSymmetric(f.P)
	if err != nil {
		return nil, err
	}
	return &PostProcessor1D{Field: f, Kernel: ker, H: f.Mesh.MaxH()}, nil
}

// kernelAt returns the kernel used for the point x.
func (pp *PostProcessor1D) kernelAt(x float64) (*bspline.Kernel, error) {
	if !pp.OneSided {
		return pp.Kernel, nil
	}
	lo, hi := pp.Kernel.Support()
	shift := 0.0
	if x+pp.H*lo < 0 {
		shift = -(x/pp.H + lo)
	} else if x+pp.H*hi > 1 {
		shift = (1-x)/pp.H - hi
	}
	if shift == 0 {
		return pp.Kernel, nil
	}
	return bspline.NewOneSided(pp.Field.P, shift)
}

// Eval computes the post-processed solution u*(x). The convolution integral
// is split at every kernel break and every element boundary inside the
// support, so each Gauss panel integrates a single polynomial exactly.
func (pp *PostProcessor1D) Eval(x float64) (float64, error) {
	ker, err := pp.kernelAt(x)
	if err != nil {
		return 0, err
	}
	lo, hi := ker.Support()
	a := x + pp.H*lo
	b := x + pp.H*hi

	// Collect breakpoints: kernel breaks (scaled) plus element boundaries
	// of the periodic mesh images covering [a, b].
	cuts := make([]float64, 0, 64)
	for _, br := range ker.Breaks {
		cuts = append(cuts, x+pp.H*br)
	}
	mesh := pp.Field.Mesh
	for img := int(math.Floor(a)); img <= int(math.Floor(b))+1; img++ {
		for _, node := range mesh.Nodes {
			y := node + float64(img)
			if y > a && y < b {
				cuts = append(cuts, y)
			}
		}
	}
	sort.Float64s(cuts)

	deg := pp.Field.P + ker.K
	gl := quadrature.GaussLegendre((deg + 2) / 2)
	total := 0.0
	for i := 0; i+1 < len(cuts); i++ {
		c0, c1 := cuts[i], cuts[i+1]
		if c1-c0 < 1e-14 {
			continue
		}
		mid := (c0 + c1) / 2
		half := (c1 - c0) / 2
		for q, t := range gl.Nodes {
			y := mid + half*t
			total += gl.Weights[q] * half *
				ker.Eval((y-x)/pp.H) * pp.Field.evalPeriodic(y)
		}
	}
	return total / pp.H, nil
}

// EvalGrid post-processes nPer points per element (equally spaced interior
// points) and returns positions and values.
func (pp *PostProcessor1D) EvalGrid(nPer int) (xs, us []float64, err error) {
	m := pp.Field.Mesh
	for e := 0; e < m.NumElems(); e++ {
		for q := 0; q < nPer; q++ {
			x := m.Nodes[e] + m.H(e)*(float64(q)+0.5)/float64(nPer)
			u, err := pp.Eval(x)
			if err != nil {
				return nil, nil, err
			}
			xs = append(xs, x)
			us = append(us, u)
		}
	}
	return xs, us, nil
}
