//go:build race

package operator

const raceEnabled = true
