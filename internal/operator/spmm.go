package operator

import (
	"fmt"
	"sync"
	"sync/atomic"

	"unstencil/internal/dg"
	"unstencil/internal/metrics"
)

// ApplyInto post-processes field through the assembled operator into a
// caller-supplied output slice of length Rows, in point order. It is
// Apply without the per-call allocation: the hot server paths pair it
// with GetVec/PutVec so steady-state applies allocate nothing.
func (op *Operator) ApplyInto(f *dg.Field, out []float64) error {
	if f.Basis.N != op.BasisN {
		return fmt.Errorf("operator: field has %d modes per element, operator expects %d",
			f.Basis.N, op.BasisN)
	}
	return op.ApplyVec(f.Coeffs, out, op.Workers)
}

// vecPool recycles output vectors across applies. Buffers are pooled by
// whatever capacity they were allocated with; GetVec reslices when the
// pooled capacity suffices and falls back to a fresh allocation otherwise,
// so a server cycling between operators of different sizes converges on
// buffers of the largest size in steady state.
var vecPool = sync.Pool{New: func() any { return new([]float64) }}

// GetVec returns a length-n float64 slice, reusing pooled memory when
// possible. Contents are unspecified: every ApplyVec/ApplyBlock writes all
// Rows slots, so callers applying into it need not clear it first.
func GetVec(n int) []float64 {
	p := vecPool.Get().(*[]float64)
	if cap(*p) >= n {
		v := (*p)[:n]
		*p = nil
		vecPool.Put(p)
		return v
	}
	*p = nil
	vecPool.Put(p)
	return make([]float64, n)
}

// PutVec returns a slice obtained from GetVec to the pool. The caller must
// not retain any alias into v afterwards.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	p := vecPool.Get().(*[]float64)
	*p = v[:0]
	vecPool.Put(p)
}

// fieldBlock is the field-tile width of the SpMM: operator entries are
// multiplied against up to fieldBlock fields per CSR stream, with one
// Neumaier (sum, comp) register pair per field. 8 fields × 2 × 8 bytes =
// 128 B of accumulator state — comfortably register/L1-resident — while
// cutting operator-stream traffic 8× versus per-field SpMV.
const fieldBlock = 8

// packPool recycles the packed coefficient block ApplyBlock builds per
// field tile.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPacked(n int) []float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) >= n {
		v := (*p)[:n]
		*p = nil
		packPool.Put(p)
		return v
	}
	*p = nil
	packPool.Put(p)
	return make([]float64, n)
}

func putPacked(v []float64) {
	if cap(v) == 0 {
		return
	}
	p := packPool.Get().(*[]float64)
	*p = v[:0]
	packPool.Put(p)
}

// ApplyBlock computes the CSR × dense block product
//
//	out[f][pt] = Σ_col W[pt][col] · coeffs[f][col]   for every field f
//
// cache-blocked over rows and fields. Fields are processed in tiles of
// fieldBlock; within a tile the coefficients are packed row-major
// (packed[col·F + f] = coeffs[f][col]) so the innermost loop over fields
// reads one contiguous F-wide block per operator entry, and each CSR entry
// is streamed from memory once per tile instead of once per field.
//
// Per (row, field) the floating-point operation sequence — term order and
// Neumaier compensation — is exactly ApplyVec's, so results are
// bit-identical to F independent ApplyVec calls, at every worker count.
// workers <= 1 runs serially; each storage row is summed by exactly one
// worker and written to its own output slots.
func (op *Operator) ApplyBlock(coeffs [][]float64, out [][]float64, workers int) error {
	nf := len(coeffs)
	if nf == 0 {
		return fmt.Errorf("operator: ApplyBlock needs at least one field")
	}
	if len(out) != nf {
		return fmt.Errorf("operator: ApplyBlock has %d coefficient vectors but %d outputs", nf, len(out))
	}
	for f := range coeffs {
		if len(coeffs[f]) != op.Cols {
			return fmt.Errorf("operator: field %d coefficient vector has length %d, operator expects %d",
				f, len(coeffs[f]), op.Cols)
		}
		if len(out[f]) != op.Rows {
			return fmt.Errorf("operator: field %d output has length %d, operator expects %d",
				f, len(out[f]), op.Rows)
		}
	}
	packed := getPacked(op.Cols * min(nf, fieldBlock))
	defer putPacked(packed)

	nBlocks := (op.Rows + applyBlock - 1) / applyBlock
	if workers > nBlocks {
		workers = nBlocks
	}
	for f0 := 0; f0 < nf; f0 += fieldBlock {
		fb := min(fieldBlock, nf-f0)
		tile := packed[:op.Cols*fb]
		for f := 0; f < fb; f++ {
			cf := coeffs[f0+f]
			for c := 0; c < op.Cols; c++ {
				tile[c*fb+f] = cf[c]
			}
		}
		outs := out[f0 : f0+fb]
		if workers <= 1 {
			op.applyRowsBlockAny(tile, fb, outs, 0, op.Rows)
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b := int(next.Add(1)) - 1
					if b >= nBlocks {
						return
					}
					lo := b * applyBlock
					hi := min(lo+applyBlock, op.Rows)
					op.applyRowsBlockAny(tile, fb, outs, lo, hi)
				}
			}()
		}
		wg.Wait()
	}
	return nil
}

// ApplyBlockCounters models the cost of one ApplyBlock over nf fields:
// flops scale with the field count, but the CSR streams (values, columns,
// row pointers) are read once per field tile of width fieldBlock rather
// than once per field — the data-reuse the SpMM buys over nf independent
// SpMVs. Coefficient gathers still happen once per (entry, field).
func (op *Operator) ApplyBlockCounters(nf int) metrics.Counters {
	nnz := uint64(op.NNZ())
	idxBytes := nnz * 4
	if op.BSR != nil {
		idxBytes = nnz * 4 / uint64(op.BasisN)
	}
	tiles := uint64((nf + fieldBlock - 1) / fieldBlock)
	return metrics.Counters{
		Flops:     2 * nnz * uint64(nf),
		BytesRead: tiles*(nnz*8+idxBytes+uint64(len(op.RowPtr))*8) + nnz*8*uint64(nf),
	}
}

// applyRowsBlockAny dispatches a row range to the tile kernel matching the
// operator's layout. A plain branch (not a method value) keeps the apply
// paths allocation-free.
func (op *Operator) applyRowsBlockAny(packed []float64, fb int, out [][]float64, lo, hi int) {
	if op.BSR != nil {
		op.applyRowsBlockBSR(packed, fb, out, lo, hi)
	} else {
		op.applyRowsBlock(packed, fb, out, lo, hi)
	}
}

// applyRowsBlock computes storage rows [lo, hi) for one field tile. packed
// holds the tile's coefficients at packed[col·fb + f]; out holds the fb
// per-field output vectors. The per-field arithmetic mirrors applyRows
// exactly: independent Neumaier (sum, comp) state per field, terms in CSR
// entry order.
func (op *Operator) applyRowsBlock(packed []float64, fb int, out [][]float64, lo, hi int) {
	var sum, comp [fieldBlock]float64
	for r := lo; r < hi; r++ {
		vals, cols, base := op.rowSpan(r)
		for f := 0; f < fb; f++ {
			sum[f], comp[f] = 0, 0
		}
		for i := range vals {
			v := vals[i]
			off := (int(base) + int(cols[i])) * fb
			blk := packed[off : off+fb]
			for f := 0; f < fb; f++ {
				term := v * blk[f]
				t := sum[f] + term
				if abs(sum[f]) >= abs(term) {
					comp[f] += (sum[f] - t) + term
				} else {
					comp[f] += (term - t) + sum[f]
				}
				sum[f] = t
			}
		}
		pt := r
		if op.Perm != nil {
			pt = int(op.Perm[r])
		}
		for f := 0; f < fb; f++ {
			out[f][pt] = sum[f] + comp[f]
		}
	}
}
