package operator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"unstencil/internal/metrics"
)

// buildCongruent builds an operator where most rows are exact column
// translates of a few stencil patterns — the synthetic analogue of
// interior points on a structured mesh — with a sprinkling of unique
// boundary-like rows and empty rows.
func buildCongruent(rows, elems, basisN int, seed int64, permuted bool) *Operator {
	rng := rand.New(rand.NewSource(seed))
	cols := elems * basisN
	// Three shared stencil patterns of different lengths.
	patterns := make([][]float64, 3)
	spans := []int{4, 6, 3} // elements per pattern
	for p := range patterns {
		vals := make([]float64, spans[p]*basisN)
		for i := range vals {
			mag := math.Ldexp(rng.Float64(), rng.Intn(20)-10)
			if i%2 == 0 {
				mag = -mag
			}
			vals[i] = mag
		}
		patterns[p] = vals
	}
	b := NewBuilder(rows, cols, basisN)
	maxSpan := 6
	for r := 0; r < rows; r++ {
		switch {
		case rng.Intn(19) == 0:
			// empty row
		case rng.Intn(5) == 0:
			// unique row (boundary-like): random values, never congruent
			e0 := rng.Intn(elems - maxSpan)
			ci := make([]int32, 2*basisN)
			v := make([]float64, 2*basisN)
			for i := range ci {
				ci[i] = int32(e0*basisN + i)
				v[i] = math.Ldexp(rng.Float64(), rng.Intn(20)-10)
			}
			b.SetRow(r, ci, v)
		default:
			p := rng.Intn(len(patterns))
			e0 := rng.Intn(elems - maxSpan)
			n := len(patterns[p])
			ci := make([]int32, n)
			for i := range ci {
				ci[i] = int32(e0*basisN + i)
			}
			b.SetRow(r, ci, patterns[p])
		}
	}
	var perm []int32
	if permuted {
		perm = randPerm32(rng, rows)
	}
	return b.Finish(perm, 2, "per-point", time.Millisecond, metrics.Counters{})
}

func sameRowsBitwise(t *testing.T, a, b *Operator) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.BasisN != b.BasisN {
		t.Fatalf("shape mismatch: %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		av, ac, ab := a.rowSpan(r)
		bv, bc, bb := b.rowSpan(r)
		if len(av) != len(bv) {
			t.Fatalf("row %d: %d vs %d entries", r, len(av), len(bv))
		}
		for i := range av {
			if ab+ac[i] != bb+bc[i] {
				t.Fatalf("row %d entry %d: col %d vs %d", r, i, ab+ac[i], bb+bc[i])
			}
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				t.Fatalf("row %d entry %d: val %v vs %v", r, i, av[i], bv[i])
			}
		}
	}
}

// Templatize must fire on a congruent operator, shrink it, and round-trip
// through Expand bitwise.
func TestTemplatizeRoundTrip(t *testing.T) {
	for _, permuted := range []bool{false, true} {
		op := buildCongruent(800, 200, 3, 7, permuted)
		topl := op.Templatize()
		if topl.Tpl == nil {
			t.Fatal("congruent operator did not templatize")
		}
		if err := topl.ValidateTemplates(); err != nil {
			t.Fatal(err)
		}
		if topl.Bytes() >= op.Bytes() {
			t.Fatalf("templating grew the operator: %d -> %d bytes", op.Bytes(), topl.Bytes())
		}
		if topl.NNZ() != op.NNZ() {
			t.Fatalf("logical nnz changed: %d -> %d", op.NNZ(), topl.NNZ())
		}
		if topl.StoredNNZ() >= op.NNZ() {
			t.Fatalf("stored nnz did not shrink: %d vs %d", topl.StoredNNZ(), op.NNZ())
		}
		st := topl.Stats()
		if st.Templates == 0 || st.TemplatedRows == 0 {
			t.Fatalf("stats missing template shape: %+v", st)
		}
		sameRowsBitwise(t, op, topl)
		back := topl.Expand()
		if back.Tpl != nil {
			t.Fatal("Expand left templates in place")
		}
		sameRowsBitwise(t, op, back)

		// Applies through the templated operator are bitwise identical.
		coeffs := randFields(op.Cols, 1, 3)[0]
		want := make([]float64, op.Rows)
		got := make([]float64, op.Rows)
		if err := op.ApplyVec(coeffs, want, 1); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			if err := topl.ApplyVec(coeffs, got, workers); err != nil {
				t.Fatal(err)
			}
			for r := range want {
				if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
					t.Fatalf("workers=%d row %d: %v != %v", workers, r, got[r], want[r])
				}
			}
		}
	}
}

// A fully random operator has no congruent rows; Templatize must return
// the receiver unchanged — the transparent fallback.
func TestTemplatizeFallback(t *testing.T) {
	op := buildRandomPerm(400, 100, 3, 11, false)
	if got := op.Templatize(); got != op {
		t.Fatalf("random operator templatized: %d templates", got.Tpl.NumTemplates())
	}
	// Idempotence: templatizing a templated operator is a no-op.
	cong := buildCongruent(400, 100, 3, 11, false).Templatize()
	if cong.Templatize() != cong {
		t.Fatal("re-templatizing was not a no-op")
	}
}

// Values that agree to quantisation but differ in low bits must NOT share
// a template: the quantised hash is a prefilter, bitwise equality gates.
func TestTemplatizeExactBitsGate(t *testing.T) {
	const half = 20
	b := NewBuilder(2*half, 2*half*2, 1)
	v := 0.12345678901234567
	vPerturbed := math.Nextafter(v, 1) // differs in the last mantissa bit
	for r := 0; r < half; r++ {
		b.SetRow(r, []int32{int32(2 * r), int32(2*r + 1)}, []float64{v, -v})
		b.SetRow(half+r, []int32{int32(2 * (half + r)), int32(2*(half+r) + 1)}, []float64{vPerturbed, -v})
	}
	op := b.Finish(nil, 1, "per-point", 0, metrics.Counters{})
	topl := op.Templatize()
	if topl.Tpl == nil {
		t.Fatal("exact duplicates did not templatize")
	}
	// The v rows share one template, the vPerturbed rows another — never
	// across the one-ulp divide.
	ts := topl.Tpl
	if ts.RowTpl[0] != ts.RowTpl[1] || ts.RowTpl[half] != ts.RowTpl[half+1] {
		t.Fatalf("exact translates not shared: %v", ts.RowTpl)
	}
	if ts.RowTpl[0] == ts.RowTpl[half] {
		t.Fatal("rows differing in one ulp shared a template")
	}
	sameRowsBitwise(t, op, topl)
}

// ValidateTemplates must reject structurally broken template sets.
func TestValidateTemplatesRejects(t *testing.T) {
	op := buildCongruent(200, 60, 2, 3, false).Templatize()
	if op.Tpl == nil {
		t.Skip("no templates formed")
	}
	check := func(name string, mutate func(o *Operator)) {
		clone := *op
		ts := *op.Tpl
		ts.TplPtr = append([]int64(nil), op.Tpl.TplPtr...)
		ts.TplDelta = append([]int32(nil), op.Tpl.TplDelta...)
		ts.TplVal = append([]float64(nil), op.Tpl.TplVal...)
		ts.RowTpl = append([]int32(nil), op.Tpl.RowTpl...)
		ts.RowBase = append([]int32(nil), op.Tpl.RowBase...)
		clone.Tpl = &ts
		mutate(&clone)
		if err := clone.ValidateTemplates(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	check("dangling template id", func(o *Operator) {
		for r := range o.Tpl.RowTpl {
			if o.Tpl.RowTpl[r] >= 0 {
				o.Tpl.RowTpl[r] = int32(o.Tpl.NumTemplates())
				return
			}
		}
	})
	check("column out of range", func(o *Operator) {
		for r := range o.Tpl.RowTpl {
			if o.Tpl.RowTpl[r] >= 0 {
				o.Tpl.RowBase[r] = int32(o.Cols)
				return
			}
		}
	})
	check("ragged arrays", func(o *Operator) {
		o.Tpl.TplVal = o.Tpl.TplVal[:len(o.Tpl.TplVal)-1]
	})
	check("row table wrong length", func(o *Operator) {
		o.Tpl.RowTpl = o.Tpl.RowTpl[:len(o.Tpl.RowTpl)-1]
	})
}
