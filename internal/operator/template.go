// Row-congruence stencil templates.
//
// Interior grid points of a (near-)structured mesh see translated copies
// of the same local geometry, and the assembly path computes every weight
// in stencil-local coordinates (see core.integrateWeights), so two rows
// whose inputs are exact translates come out bitwise identical up to a
// constant column shift. Templatize detects such rows and stores the
// shared (column-offset, value) pattern once: a templated row keeps only
// a template id and a base column, cutting the resident CSR bytes by the
// duplication factor while leaving non-congruent rows as plain CSR.
//
// Detection is a two-stage comparison. A quantised value hash (low
// mantissa bits masked) buckets candidate rows cheaply; actual sharing is
// then gated by an exact match — identical column deltas AND bitwise
// identical values. The quantisation therefore only affects how many
// exact comparisons run, never the stored weights: template compression
// is lossless by construction, and every apply through a templated
// operator is bit-identical to the plain CSR apply.
package operator

import (
	"fmt"
	"math"
)

// TemplateSet is the shared-stencil side table of a templated operator.
// All arrays are fixed-width records so the artifact container can mmap
// them zero-copy exactly like the CSR arrays.
type TemplateSet struct {
	// TplPtr/TplDelta/TplVal form a CSR-like store of the unique
	// templates: template t's entries are [TplPtr[t], TplPtr[t+1]), each a
	// (column delta from the row's base column, weight) pair. Deltas are
	// ascending within a template; delta 0 is the first entry.
	TplPtr   []int64
	TplDelta []int32
	TplVal   []float64

	// RowTpl maps each storage row to its template id, or -1 for rows kept
	// as plain CSR. RowBase holds the templated row's base column (its
	// first column index); 0 for plain rows.
	RowTpl  []int32
	RowBase []int32
}

// NumTemplates returns the number of unique shared templates.
func (ts *TemplateSet) NumTemplates() int {
	if ts == nil || len(ts.TplPtr) == 0 {
		return 0
	}
	return len(ts.TplPtr) - 1
}

// TemplatedRows counts rows resolved through a template.
func (ts *TemplateSet) TemplatedRows() int {
	if ts == nil {
		return 0
	}
	n := 0
	for _, t := range ts.RowTpl {
		if t >= 0 {
			n++
		}
	}
	return n
}

// Bytes returns the resident size of the template arrays.
func (ts *TemplateSet) Bytes() int64 {
	if ts == nil {
		return 0
	}
	return int64(len(ts.TplPtr))*8 + int64(len(ts.TplDelta))*4 + int64(len(ts.TplVal))*8 +
		int64(len(ts.RowTpl))*4 + int64(len(ts.RowBase))*4
}

// rowSpan returns storage row r's entries as (values, columns, base): the
// row's terms are vals[i] · coeffs[base+cols[i]]. Plain rows return their
// CSR slices with base 0; templated rows return the shared template with
// the row's base column. Both apply kernels consume rows through this one
// accessor, so templated and plain rows follow the identical arithmetic
// path.
func (op *Operator) rowSpan(r int) (vals []float64, cols []int32, base int32) {
	if op.Tpl != nil {
		if t := op.Tpl.RowTpl[r]; t >= 0 {
			lo, hi := op.Tpl.TplPtr[t], op.Tpl.TplPtr[t+1]
			return op.Tpl.TplVal[lo:hi], op.Tpl.TplDelta[lo:hi], op.Tpl.RowBase[r]
		}
	}
	lo, hi := op.RowPtr[r], op.RowPtr[r+1]
	return op.Val[lo:hi], op.ColInd[lo:hi], 0
}

// quantMask zeroes the low 16 mantissa bits for the candidate hash:
// rows that agree to ~5e-12 relative land in the same bucket and get the
// exact comparison; rows that differ more never meet. The mask affects
// bucketing only — sharing still requires bitwise equality.
const quantMask = ^uint64(0xFFFF)

// rowHash buckets storage row r by its quantised (delta, value) pattern.
func (op *Operator) rowHash(r int) uint64 {
	lo, hi := op.RowPtr[r], op.RowPtr[r+1]
	base := op.ColInd[lo]
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := lo; i < hi; i++ {
		h = (h ^ uint64(uint32(op.ColInd[i]-base))) * prime64
		h = (h ^ (math.Float64bits(op.Val[i]) & quantMask)) * prime64
	}
	return h
}

// rowsCongruent reports whether storage rows a and b are exact translates:
// same length, identical column deltas, bitwise identical values.
func (op *Operator) rowsCongruent(a, b int) bool {
	alo, ahi := op.RowPtr[a], op.RowPtr[a+1]
	blo, bhi := op.RowPtr[b], op.RowPtr[b+1]
	if ahi-alo != bhi-blo {
		return false
	}
	da, db := op.ColInd[alo], op.ColInd[blo]
	for i := int64(0); i < ahi-alo; i++ {
		if op.ColInd[alo+i]-da != op.ColInd[blo+i]-db {
			return false
		}
		if math.Float64bits(op.Val[alo+i]) != math.Float64bits(op.Val[blo+i]) {
			return false
		}
	}
	return true
}

// Templatize detects row congruence and returns an operator with duplicate
// rows compressed into shared templates. The receiver is not modified. If
// templating would not shrink the operator (too few congruent rows to pay
// for the per-row side table), the receiver is returned unchanged — the
// transparent fallback for unstructured meshes. The returned operator's
// applies are bit-identical to the receiver's.
//
// Operators built by the template-aware assembly path (TemplateAware) are
// returned unchanged without the FNV rescan: congruence was already
// detected before integration, so every cache admission would otherwise
// pay a full pass over the CSR arrays for nothing.
func (op *Operator) Templatize() *Operator {
	if op.Tpl != nil || op.TemplateAware || op.BSR != nil || op.Rows == 0 {
		return op
	}
	// Pass 1: bucket rows by quantised hash, gate with exact congruence.
	// heads[i] is the storage row that founded candidate template i.
	buckets := make(map[uint64][]int32)
	heads := []int32{}
	rowHead := make([]int32, op.Rows) // candidate template id per row, -1 = empty row
	for r := 0; r < op.Rows; r++ {
		if op.RowPtr[r] == op.RowPtr[r+1] {
			rowHead[r] = -1
			continue
		}
		h := op.rowHash(r)
		found := int32(-1)
		for _, cand := range buckets[h] {
			if op.rowsCongruent(int(heads[cand]), r) {
				found = cand
				break
			}
		}
		if found < 0 {
			found = int32(len(heads))
			heads = append(heads, int32(r))
			buckets[h] = append(buckets[h], found)
		}
		rowHead[r] = found
	}
	// Pass 2: keep only candidates shared by >= 2 rows; single-use rows
	// stay plain (a one-row template saves nothing and adds indirection).
	uses := make([]int32, len(heads))
	for r := 0; r < op.Rows; r++ {
		if rowHead[r] >= 0 {
			uses[rowHead[r]]++
		}
	}
	tplID := make([]int32, len(heads))
	nTpl, tplNNZ, savedNNZ := 0, int64(0), int64(0)
	for i := range heads {
		if uses[i] < 2 {
			tplID[i] = -1
			continue
		}
		tplID[i] = int32(nTpl)
		nTpl++
		ln := op.RowPtr[heads[i]+1] - op.RowPtr[heads[i]]
		tplNNZ += ln
		savedNNZ += int64(uses[i]) * ln
	}
	if nTpl == 0 {
		return op
	}
	// Net byte change: templated rows' CSR entries (12 B each) are
	// replaced by one template copy plus the Rows-wide side table.
	saved := (savedNNZ-tplNNZ)*12 - int64(op.Rows)*8 - int64(nTpl+1)*8
	if saved <= 0 {
		return op
	}
	// Pass 3: build the template store and the compressed CSR (templated
	// rows become empty; plain rows keep their entries verbatim).
	ts := &TemplateSet{
		TplPtr:   make([]int64, 1, nTpl+1),
		TplDelta: make([]int32, 0, tplNNZ),
		TplVal:   make([]float64, 0, tplNNZ),
		RowTpl:   make([]int32, op.Rows),
		RowBase:  make([]int32, op.Rows),
	}
	for i, head := range heads {
		if tplID[i] < 0 {
			continue
		}
		lo, hi := op.RowPtr[head], op.RowPtr[head+1]
		base := op.ColInd[lo]
		for k := lo; k < hi; k++ {
			ts.TplDelta = append(ts.TplDelta, op.ColInd[k]-base)
			ts.TplVal = append(ts.TplVal, op.Val[k])
		}
		ts.TplPtr = append(ts.TplPtr, int64(len(ts.TplVal)))
	}
	keptNNZ := int64(op.NNZ()) - savedNNZ
	out := &Operator{
		Rows:             op.Rows,
		Cols:             op.Cols,
		BasisN:           op.BasisN,
		RowPtr:           make([]int64, op.Rows+1),
		ColInd:           make([]int32, 0, keptNNZ),
		Val:              make([]float64, 0, keptNNZ),
		Perm:             op.Perm,
		Workers:          op.Workers,
		Backing:          op.Backing,
		Tpl:              ts,
		AssemblyScheme:   op.AssemblyScheme,
		AssemblyWall:     op.AssemblyWall,
		AssemblyCounters: op.AssemblyCounters,
	}
	for r := 0; r < op.Rows; r++ {
		if h := rowHead[r]; h >= 0 && tplID[h] >= 0 {
			ts.RowTpl[r] = tplID[h]
			ts.RowBase[r] = op.ColInd[op.RowPtr[r]]
		} else {
			ts.RowTpl[r] = -1
			lo, hi := op.RowPtr[r], op.RowPtr[r+1]
			out.ColInd = append(out.ColInd, op.ColInd[lo:hi]...)
			out.Val = append(out.Val, op.Val[lo:hi]...)
		}
		out.RowPtr[r+1] = int64(len(out.Val))
	}
	return out
}

// Expand returns the plain-CSR equivalent of a templated operator,
// materialising every templated row's entries. Expanding a plain operator
// returns it unchanged. Expand(Templatize(op)) reproduces op's rows
// bitwise — the round-trip property the tests pin.
func (op *Operator) Expand() *Operator {
	if op.BSR != nil {
		return op.ToCSR().Expand()
	}
	if op.Tpl == nil {
		return op
	}
	nnz := op.NNZ()
	out := &Operator{
		Rows:             op.Rows,
		Cols:             op.Cols,
		BasisN:           op.BasisN,
		RowPtr:           make([]int64, op.Rows+1),
		ColInd:           make([]int32, 0, nnz),
		Val:              make([]float64, 0, nnz),
		Perm:             op.Perm,
		Workers:          op.Workers,
		AssemblyScheme:   op.AssemblyScheme,
		AssemblyWall:     op.AssemblyWall,
		AssemblyCounters: op.AssemblyCounters,
	}
	for r := 0; r < op.Rows; r++ {
		vals, cols, base := op.rowSpan(r)
		for i := range vals {
			out.ColInd = append(out.ColInd, base+cols[i])
			out.Val = append(out.Val, vals[i])
		}
		out.RowPtr[r+1] = int64(len(out.Val))
	}
	return out
}

// ValidateTemplates checks a template set's structural invariants against
// the operator shape — the artifact decode path runs this so a corrupted
// or hostile container cannot drive rowSpan out of bounds.
func (op *Operator) ValidateTemplates() error {
	ts := op.Tpl
	if ts == nil {
		return nil
	}
	nt := ts.NumTemplates()
	if len(ts.TplPtr) == 0 || ts.TplPtr[0] != 0 {
		return fmt.Errorf("operator: template pointer array must start at 0")
	}
	if op.BSR != nil {
		// Blocked operators carry TplBlockDelta instead of TplDelta: one
		// element-id delta per basisN-wide block, with every template span
		// (and row base, below) block-aligned.
		if ts.TplDelta != nil {
			return fmt.Errorf("operator: blocked operator still carries %d scalar template deltas", len(ts.TplDelta))
		}
		if op.BasisN < 1 {
			return fmt.Errorf("operator: templated blocked operator with basisN %d", op.BasisN)
		}
		if int64(len(op.BSR.TplBlockDelta))*int64(op.BasisN) != ts.TplPtr[nt] ||
			int64(len(ts.TplVal)) != ts.TplPtr[nt] {
			return fmt.Errorf("operator: template arrays disagree: ptr end %d, %d block deltas × basisN %d, %d values",
				ts.TplPtr[nt], len(op.BSR.TplBlockDelta), op.BasisN, len(ts.TplVal))
		}
	} else if int64(len(ts.TplDelta)) != ts.TplPtr[nt] || len(ts.TplVal) != len(ts.TplDelta) {
		return fmt.Errorf("operator: template arrays disagree: ptr end %d, %d deltas, %d values",
			ts.TplPtr[nt], len(ts.TplDelta), len(ts.TplVal))
	}
	for t := 0; t < nt; t++ {
		if ts.TplPtr[t] > ts.TplPtr[t+1] {
			return fmt.Errorf("operator: template %d has negative length", t)
		}
		if op.BSR != nil && ts.TplPtr[t]%int64(op.BasisN) != 0 {
			return fmt.Errorf("operator: template %d starts at %d, not a multiple of basisN %d",
				t, ts.TplPtr[t], op.BasisN)
		}
	}
	if len(ts.RowTpl) != op.Rows || len(ts.RowBase) != op.Rows {
		return fmt.Errorf("operator: template row tables have %d/%d entries, operator has %d rows",
			len(ts.RowTpl), len(ts.RowBase), op.Rows)
	}
	for r := 0; r < op.Rows; r++ {
		t := ts.RowTpl[r]
		if t < 0 {
			continue
		}
		if int(t) >= nt {
			return fmt.Errorf("operator: row %d references template %d of %d", r, t, nt)
		}
		if op.RowPtr[r] != op.RowPtr[r+1] {
			return fmt.Errorf("operator: templated row %d still has CSR entries", r)
		}
		base := int64(ts.RowBase[r])
		lo, hi := ts.TplPtr[t], ts.TplPtr[t+1]
		if op.BSR != nil {
			if base%int64(op.BasisN) != 0 {
				return fmt.Errorf("operator: blocked row %d base column %d not a multiple of basisN %d",
					r, base, op.BasisN)
			}
			baseElem := base / int64(op.BasisN)
			nElems := int64(op.Cols / op.BasisN)
			for i := lo / int64(op.BasisN); i < hi/int64(op.BasisN); i++ {
				e := baseElem + int64(op.BSR.TplBlockDelta[i])
				if e < 0 || e >= nElems {
					return fmt.Errorf("operator: row %d template element %d out of range [0,%d)", r, e, nElems)
				}
			}
			continue
		}
		for i := lo; i < hi; i++ {
			c := base + int64(ts.TplDelta[i])
			if c < 0 || c >= int64(op.Cols) {
				return fmt.Errorf("operator: row %d template column %d out of range [0,%d)", r, c, op.Cols)
			}
		}
	}
	return nil
}
