// Package operator holds the SIAC post-processing step assembled as a
// sparse linear map from dG modal coefficient vectors to post-processed
// point values.
//
// The post-processed value at a point is linear in the modal coefficients
// (Eq. (2) contracts quadrature samples of the kernel against u's basis
// expansion), and none of the expensive geometry — candidate finding,
// Sutherland–Hodgman clipping, fan triangulation, kernel Horner
// evaluation — depends on the coefficients. Assembling the per-basis
// weights
//
//	W[pt][e][m] = (1/h²) Σ_q w_q · jac · K_x · K_y · φ_m(r_q, s_q)
//
// once therefore amortises all of that geometry across every field
// post-processed on the same (mesh, grid, kernel, h) tuple: each further
// field costs one sparse matrix–vector product. This inverts the trade-off
// of matrix-free dG operator work (Kronbichler & Kormann): there assembly
// loses because the operator is memory-bound; here the per-entry geometry
// is so expensive that the assembled form wins after a handful of fields.
//
// The matrix is stored in CSR with rows = evaluation points and columns =
// element × basisN + mode, so one row's entries group the modes of each
// contributing element contiguously and Apply's inner loop reads each
// element's coefficient block with unit stride. Rows may be permuted into
// a spatial (Morton/quadtree) order at assembly time for cache-friendly
// column access; Perm maps storage rows back to point indices so Apply's
// output is always in point order.
package operator

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unstencil/internal/dg"
	"unstencil/internal/metrics"
)

// Operator is the assembled post-processing map in CSR form. It is
// immutable after Finish and safe for concurrent Apply calls.
type Operator struct {
	Rows   int // evaluation points
	Cols   int // mesh elements × BasisN
	BasisN int // modes per element (column block size)

	RowPtr []int64   // len Rows+1; entries of storage row r are [RowPtr[r], RowPtr[r+1])
	ColInd []int32   // column index = elem·BasisN + mode, ascending within a row
	Val    []float64 // weight per entry

	// BSR is the blocked column index when the operator is stored in the
	// block-sparse layout (see bsr.go): one element id per BasisN-wide
	// block instead of BasisN scalar column indices. Nil for scalar CSR
	// operators. A blocked operator carries no scalar indices — ColInd is
	// nil and, when templated, Tpl.TplDelta is nil — and both apply paths
	// dispatch to the blocked kernels, which are bit-identical to the CSR
	// kernels.
	BSR *BSRIndex

	// Perm maps storage row r to the evaluation-point index it computes;
	// nil means identity. Assembly in Morton order stores spatially
	// neighbouring points in adjacent rows, so consecutive rows gather
	// nearby (often identical) coefficient blocks.
	Perm []int32

	// Tpl holds the row-congruence stencil templates when the operator has
	// been compressed by Templatize; nil for plain CSR operators. Rows
	// with Tpl.RowTpl[r] >= 0 store no CSR entries — rowSpan resolves them
	// through the shared template — so len(Val) undercounts the logical
	// nnz for templated operators (see NNZ vs StoredNNZ).
	Tpl *TemplateSet

	// TemplateAware marks operators whose assembly already ran congruence
	// detection (core's template-aware path): every congruent row the
	// signature scheme could prove has been templated at assembly time, so
	// Templatize skips its full FNV rescan on such operators. Not
	// persisted; disk-loaded operators carry whatever templates were saved.
	TemplateAware bool

	// Congruence records the congruence-first assembly outcome (nil unless
	// the template-aware assembly path built this operator).
	Congruence *CongruenceStats

	// Workers is the default Apply concurrency, stamped at assembly time;
	// <= 1 applies serially.
	Workers int

	// Backing pins whatever memory the CSR slices alias when they do not
	// own it — an mmap'd artifact file, for operators loaded zero-copy
	// from disk. Holding the reference here ties the mapping's lifetime
	// to the operator's reachability, so the garbage collector can only
	// release the mapping once no caller can touch the slices. Nil for
	// ordinary heap-assembled operators.
	Backing any

	// AssemblyScheme records which scheme built the weights ("per-point"
	// or "per-element"), AssemblyWall how long assembly took, and
	// AssemblyCounters the exact geometry work it performed — the
	// amortised cost the break-even analysis divides by per-field savings.
	AssemblyScheme   string
	AssemblyWall     time.Duration
	AssemblyCounters metrics.Counters
}

// NNZ returns the logical number of entries — the terms one apply
// multiplies — counting each templated row's shared entries once per row.
// For plain operators this is len(Val).
func (op *Operator) NNZ() int {
	n := len(op.Val)
	if op.Tpl != nil {
		for _, t := range op.Tpl.RowTpl {
			if t >= 0 {
				n += int(op.Tpl.TplPtr[t+1] - op.Tpl.TplPtr[t])
			}
		}
	}
	return n
}

// StoredNNZ returns the number of physically stored (column, value) pairs:
// the plain CSR entries plus one copy of each template. Equal to NNZ for
// plain operators; the templated/plain ratio is the dedup factor.
func (op *Operator) StoredNNZ() int { return len(op.Val) + len(op.TplVals()) }

// TplVals returns the template value array (nil for plain operators).
func (op *Operator) TplVals() []float64 {
	if op.Tpl == nil {
		return nil
	}
	return op.Tpl.TplVal
}

// Bytes returns the resident size of the CSR (or BSR) and template arrays.
func (op *Operator) Bytes() int64 {
	return int64(len(op.Val))*8 + int64(len(op.ColInd))*4 +
		int64(len(op.RowPtr))*8 + int64(len(op.Perm))*4 + op.Tpl.Bytes() + op.BSR.Bytes()
}

// BytesSaved returns how many resident bytes template dedup is saving
// against the equivalent plain CSR encoding (0 for plain operators; never
// negative, since Templatize only keeps a net-saving compression).
func (op *Operator) BytesSaved() int64 {
	if op.Tpl == nil {
		return 0
	}
	plain := int64(op.NNZ())*12 + int64(len(op.RowPtr))*8 + int64(len(op.Perm))*4
	return max(plain-op.Bytes(), 0)
}

// Stats is the shape summary the bench harness reports.
type Stats struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	NNZ         int     `json:"nnz"`
	Bytes       int64   `json:"bytes"`
	NNZPerRow   float64 `json:"nnz_per_row"`
	BytesPerRow float64 `json:"bytes_per_row"`

	// Template compression shape; zero for plain operators.
	StoredNNZ     int `json:"stored_nnz,omitempty"`
	Templates     int `json:"templates,omitempty"`
	TemplatedRows int `json:"templated_rows,omitempty"`

	// Layout is "bsr" for block-sparse operators, "csr" otherwise;
	// IndexBytesSaved is the blocked layout's index-byte saving vs the
	// scalar encoding (0 for CSR).
	Layout          string `json:"layout"`
	IndexBytesSaved int64  `json:"index_bytes_saved,omitempty"`
}

// Stats summarises the operator's shape.
func (op *Operator) Stats() Stats {
	s := Stats{Rows: op.Rows, Cols: op.Cols, NNZ: op.NNZ(), Bytes: op.Bytes(), Layout: "csr"}
	if op.BSR != nil {
		s.Layout = "bsr"
		s.IndexBytesSaved = op.IndexBytesSaved()
	}
	if op.Rows > 0 {
		s.NNZPerRow = float64(s.NNZ) / float64(op.Rows)
		s.BytesPerRow = float64(s.Bytes) / float64(op.Rows)
	}
	if op.Tpl != nil {
		s.StoredNNZ = op.StoredNNZ()
		s.Templates = op.Tpl.NumTemplates()
		s.TemplatedRows = op.Tpl.TemplatedRows()
	}
	return s
}

// applyBlock is the row-block granularity of the parallel SpMV: large
// enough that claim cost (one fetch-add) is noise, small enough that the
// last blocks still balance across workers.
const applyBlock = 256

// Apply post-processes field through the assembled operator, returning the
// value at every evaluation point in point order. The field must live on
// the mesh the operator was assembled for (dimension-checked).
func (op *Operator) Apply(f *dg.Field) ([]float64, error) {
	if f.Basis.N != op.BasisN {
		return nil, fmt.Errorf("operator: field has %d modes per element, operator expects %d",
			f.Basis.N, op.BasisN)
	}
	out := make([]float64, op.Rows)
	if err := op.ApplyVec(f.Coeffs, out, op.Workers); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyVec computes out[pt] = Σ_col W[pt][col]·coeffs[col] as a parallel
// row-blocked SpMV. Each storage row is summed in fixed CSR order by
// exactly one worker and written to its own output slot, so results are
// bit-identical for every worker count. workers <= 1 runs serially.
func (op *Operator) ApplyVec(coeffs []float64, out []float64, workers int) error {
	if len(coeffs) != op.Cols {
		return fmt.Errorf("operator: coefficient vector has length %d, operator expects %d",
			len(coeffs), op.Cols)
	}
	if len(out) != op.Rows {
		return fmt.Errorf("operator: output has length %d, operator expects %d", len(out), op.Rows)
	}
	nBlocks := (op.Rows + applyBlock - 1) / applyBlock
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		op.applyRowsAny(coeffs, out, 0, op.Rows)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * applyBlock
				hi := min(lo+applyBlock, op.Rows)
				op.applyRowsAny(coeffs, out, lo, hi)
			}
		}()
	}
	wg.Wait()
	return nil
}

// applyRowsAny dispatches a row range to the kernel matching the
// operator's layout. A plain branch (not a method value) keeps the apply
// paths allocation-free.
func (op *Operator) applyRowsAny(coeffs, out []float64, lo, hi int) {
	if op.BSR != nil {
		op.applyRowsBSR(coeffs, out, lo, hi)
	} else {
		op.applyRows(coeffs, out, lo, hi)
	}
}

// applyRows computes storage rows [lo, hi). Row sums are Neumaier-
// compensated: SIAC kernel weights alternate sign (the B-spline lobes), so
// a row's terms cancel heavily and a naive sum would carry the full
// condition number of the cancellation into the result. Compensation costs
// three extra adds per entry — noise in a memory-bound SpMV — and keeps
// the apply path's rounding below the direct schemes' own noise floor.
func (op *Operator) applyRows(coeffs, out []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		vals, cols, base := op.rowSpan(r)
		sum, comp := 0.0, 0.0
		for i := range vals {
			term := vals[i] * coeffs[int(base)+int(cols[i])]
			t := sum + term
			if abs(sum) >= abs(term) {
				comp += (sum - t) + term
			} else {
				comp += (term - t) + sum
			}
			sum = t
		}
		if op.Perm != nil {
			out[op.Perm[r]] = sum + comp
		} else {
			out[r] = sum + comp
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ApplyCounters models the cost of one Apply in the repo's counter
// vocabulary: a multiply-add per entry, streaming reads of the CSR arrays
// plus the gathered coefficient blocks. Spatially ordered rows make the
// coefficient gathers mostly cache-resident, so nothing is charged as
// scattered; the contrast with direct evaluation's ScatteredLoads is the
// point of the assembled path.
func (op *Operator) ApplyCounters() metrics.Counters {
	nnz := uint64(op.NNZ())
	idxBytes := nnz * 4
	if op.BSR != nil {
		// One element id per basisN-wide block instead of one column per
		// entry — the index-stream cut is the blocked layout's point.
		idxBytes = nnz * 4 / uint64(op.BasisN)
	}
	return metrics.Counters{
		Flops:     2 * nnz,
		BytesRead: nnz*(8+8) + idxBytes + uint64(len(op.RowPtr))*8,
	}
}

// CongruenceStats records what the congruence-first assembly path did:
// how much quadrature it skipped (stamped rows), how much it spent proving
// the skips sound (verified rows), and where it fell back (demoted rows).
type CongruenceStats struct {
	// Rows is the operator's storage row count, Classes the number of
	// multi-member signature classes the prefilter found.
	Rows    int `json:"rows"`
	Classes int `json:"classes"`
	// RowsIntegrated counts rows that ran full quadrature: class
	// representatives, signature singletons, and verified/demoted members.
	RowsIntegrated int `json:"rows_integrated"`
	// RowsStamped counts rows whose weights were copied from their class
	// representative without quadrature — the compute the path saves.
	// Stamping requires bit-identical stencil-local geometry, so stamped
	// rows equal their naively assembled twins bitwise.
	RowsStamped int `json:"rows_stamped"`
	// RowsVerified counts quantised-match members that were fully
	// integrated and found bitwise equal to the representative's stamp:
	// no quadrature saved, but the row still shares the class template.
	RowsVerified int `json:"rows_verified"`
	// RowsDemoted counts members whose verification failed (or whose
	// candidate shape diverged from the representative): they keep their
	// own integrated weights as plain CSR rows.
	RowsDemoted int `json:"rows_demoted"`
	// ClassesVerified / ClassesDemoted count classes containing at least
	// one verified / demoted member.
	ClassesVerified int `json:"classes_verified"`
	ClassesDemoted  int `json:"classes_demoted"`
	// SignatureWall is the time spent in the signature prefilter (hash
	// pass + grouping), the overhead the demotion acceptance bound caps.
	SignatureWall time.Duration `json:"signature_wall_ns"`
	// ProbeRows counts the sample rows the adaptive congruence probe
	// actually hashed before deciding (0 = the operator was small enough
	// to skip the probe). The probe escalates through stages, exiting
	// early when repetition is obvious or provably absent, so structured
	// meshes commit after the first stage and jittered meshes pay for
	// the smallest stage only. ProbeCongruent reports whether the
	// congruence path was taken: false means the sample showed almost
	// no repeated signatures and assembly fell back to the naive
	// schedule, paying only the probe.
	ProbeRows      int  `json:"probe_rows"`
	ProbeCongruent bool `json:"probe_congruent"`
	// SigCacheLookups / SigCacheHits count row-signature canonicalisation
	// requests answered by a caller-provided SignatureCache. A hit skips
	// the stencil walk + canonicalisation for that row during the hash
	// pass; correctness never depends on the cache because quantised
	// matches are still certified bitwise downstream.
	SigCacheLookups int64 `json:"sig_cache_lookups,omitempty"`
	SigCacheHits    int64 `json:"sig_cache_hits,omitempty"`
}

// Builder accumulates rows during parallel assembly and freezes them into
// CSR. Each row is set exactly once by exactly one goroutine (rows are the
// assembly's unit of output), so no synchronisation is needed beyond the
// caller's dispatch barrier.
//
// A builder in template mode (MarkTemplateAware) additionally accepts
// shared stencil templates: AddTemplate registers a pattern once and
// SetRowTemplated resolves a row through it, producing the TemplateSet
// directly instead of leaving dedup to a post-hoc Templatize rescan.
type Builder struct {
	rows   int
	cols   int
	basisN int
	// Rows are held in block form when their columns decompose into
	// aligned basisN-wide element runs (belems[r]: one element id per
	// block) and in scalar form otherwise (cinds[r]); vals[r] always
	// carries the full entry-width values. Any scalar row sets the scalar
	// flag, which forces FinishLayout's CSR fallback.
	belems [][]int32
	cinds  [][]int32
	vals   [][]float64
	scalar bool

	// Template mode (nil/false outside it). Each registered template is
	// held in block form (tplElems[t]: element-id deltas) when its columns
	// decompose into aligned runs, and in scalar form (tplDelta[t]: column
	// deltas) always-or-instead; at most one of the two is nil. rowTpl/
	// rowBase map rows onto templates exactly as in TemplateSet (rowBase
	// in column units).
	aware    bool
	tplElems [][]int32
	tplDelta [][]int32
	tplVal   [][]float64
	rowTpl   []int32
	rowBase  []int32
}

// NewBuilder sizes a builder for a rows × cols operator with basisN modes
// per element.
func NewBuilder(rows, cols, basisN int) *Builder {
	return &Builder{
		rows:   rows,
		cols:   cols,
		basisN: basisN,
		belems: make([][]int32, rows),
		cinds:  make([][]int32, rows),
		vals:   make([][]float64, rows),
	}
}

// SetRow stores storage row r. cols must be ascending; both slices are
// copied. Unset rows freeze as empty (a point no element contributes to).
// Rows whose columns decompose into aligned element blocks are converted
// to block form on the way in, so hand-built block-shaped operators still
// qualify for the blocked layout under FinishLayout.
func (b *Builder) SetRow(r int, cols []int32, vals []float64) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("operator: row %d has %d columns but %d values", r, len(cols), len(vals)))
	}
	if ids, ok := blockIDs(cols, b.basisN, nil); ok {
		b.belems[r] = ids
	} else {
		b.cinds[r] = append([]int32(nil), cols...)
		b.scalar = true
	}
	b.vals[r] = append([]float64(nil), vals...)
}

// SetRowBlocks stores storage row r in block form: one element id per
// basisN-wide block (ascending) and len(elems)·basisN values in block-
// major, mode-ascending order — exactly the scalar row whose columns are
// elems[k]·basisN+m. Both slices are copied.
func (b *Builder) SetRowBlocks(r int, elems []int32, vals []float64) {
	if len(vals) != len(elems)*b.basisN {
		panic(fmt.Sprintf("operator: row %d has %d blocks × basisN %d but %d values",
			r, len(elems), b.basisN, len(vals)))
	}
	b.belems[r] = append([]int32(nil), elems...)
	b.vals[r] = append([]float64(nil), vals...)
}

// MarkTemplateAware switches the builder into template mode: the finished
// operator carries TemplateAware (so Templatize skips its rescan) and may
// resolve rows through templates registered with AddTemplate. Call before
// any SetRowTemplated.
func (b *Builder) MarkTemplateAware() {
	if b.aware {
		return
	}
	b.aware = true
	b.rowTpl = make([]int32, b.rows)
	for i := range b.rowTpl {
		b.rowTpl[i] = -1
	}
	b.rowBase = make([]int32, b.rows)
}

// AddTemplate registers a shared stencil pattern and returns its id. cols
// are ascending absolute column indices of the representative row; they are
// stored as deltas from cols[0], so rows at any base column can resolve
// through the pattern. Must not be called concurrently with itself (the
// assembly's serial stamping phase registers templates).
func (b *Builder) AddTemplate(cols []int32, vals []float64) int32 {
	if !b.aware {
		panic("operator: AddTemplate on a builder not in template mode")
	}
	if len(cols) == 0 || len(cols) != len(vals) {
		panic(fmt.Sprintf("operator: template with %d columns, %d values", len(cols), len(vals)))
	}
	deltas := make([]int32, len(cols))
	for i, c := range cols {
		deltas[i] = c - cols[0]
	}
	var elemDeltas []int32
	if cols[0]%int32(b.basisN) == 0 {
		if ids, ok := blockIDs(cols, b.basisN, nil); ok {
			e0 := ids[0]
			for i := range ids {
				ids[i] -= e0
			}
			elemDeltas = ids
		}
	}
	b.tplElems = append(b.tplElems, elemDeltas)
	b.tplDelta = append(b.tplDelta, deltas)
	b.tplVal = append(b.tplVal, append([]float64(nil), vals...))
	return int32(len(b.tplVal) - 1)
}

// AddTemplateBlocks registers a shared stencil pattern given in block
// form: one element id per basisN-wide block of the representative row
// (ascending) and len(elems)·basisN values. Stored as element-id deltas
// from elems[0], so rows at any block-aligned base column resolve through
// the pattern. Same serial-registration contract as AddTemplate.
func (b *Builder) AddTemplateBlocks(elems []int32, vals []float64) int32 {
	if !b.aware {
		panic("operator: AddTemplateBlocks on a builder not in template mode")
	}
	if len(elems) == 0 || len(vals) != len(elems)*b.basisN {
		panic(fmt.Sprintf("operator: template with %d blocks × basisN %d, %d values",
			len(elems), b.basisN, len(vals)))
	}
	ed := make([]int32, len(elems))
	for i, e := range elems {
		ed[i] = e - elems[0]
	}
	b.tplElems = append(b.tplElems, ed)
	b.tplDelta = append(b.tplDelta, nil)
	b.tplVal = append(b.tplVal, append([]float64(nil), vals...))
	return int32(len(b.tplVal) - 1)
}

// scalarDeltas returns template t's column-delta form, materialising it
// from the block form when the template was registered with
// AddTemplateBlocks.
func (b *Builder) scalarDeltas(t int32) []int32 {
	if d := b.tplDelta[t]; d != nil {
		return d
	}
	ed := b.tplElems[t]
	out := make([]int32, 0, len(ed)*b.basisN)
	for _, e := range ed {
		d0 := e * int32(b.basisN)
		for m := int32(0); m < int32(b.basisN); m++ {
			out = append(out, d0+m)
		}
	}
	b.tplDelta[t] = out
	return out
}

// SetRowTemplated resolves storage row r through template tpl at the given
// base column (the row's first column index). The row stores no CSR
// entries of its own.
func (b *Builder) SetRowTemplated(r int, tpl, base int32) {
	if !b.aware {
		panic("operator: SetRowTemplated on a builder not in template mode")
	}
	if tpl < 0 || int(tpl) >= len(b.tplDelta) {
		panic(fmt.Sprintf("operator: row %d references template %d of %d", r, tpl, len(b.tplDelta)))
	}
	b.rowTpl[r] = tpl
	b.rowBase[r] = base
}

// appendRowCols appends storage row r's scalar column indices to dst,
// expanding block-form rows on the fly.
func (b *Builder) appendRowCols(dst []int32, r int) []int32 {
	if e := b.belems[r]; e != nil {
		for _, id := range e {
			c0 := id * int32(b.basisN)
			for m := int32(0); m < int32(b.basisN); m++ {
				dst = append(dst, c0+m)
			}
		}
		return dst
	}
	return append(dst, b.cinds[r]...)
}

// Finish flattens the accumulated rows into an immutable CSR Operator. In
// template mode the registered templates become the operator's TemplateSet
// when they save net bytes (the same guard Templatize applies); otherwise
// templated rows are materialised as plain CSR, so the caller never ends up
// with an indirection that costs more than it saves. Use FinishLayout to
// freeze into the blocked layout instead.
func (b *Builder) Finish(perm []int32, workers int, scheme string, wall time.Duration, counters metrics.Counters) *Operator {
	nnz := 0
	for _, v := range b.vals {
		nnz += len(v)
	}
	op := &Operator{
		Rows:             b.rows,
		Cols:             b.cols,
		BasisN:           b.basisN,
		RowPtr:           make([]int64, b.rows+1),
		ColInd:           make([]int32, 0, nnz),
		Val:              make([]float64, 0, nnz),
		Perm:             perm,
		Workers:          workers,
		TemplateAware:    b.aware,
		AssemblyScheme:   scheme,
		AssemblyWall:     wall,
		AssemblyCounters: counters,
	}
	if b.aware && len(b.tplVal) > 0 && b.templatesSaveBytes() {
		ts := &TemplateSet{
			TplPtr:  make([]int64, 1, len(b.tplVal)+1),
			RowTpl:  b.rowTpl,
			RowBase: b.rowBase,
		}
		for t := range b.tplVal {
			ts.TplDelta = append(ts.TplDelta, b.scalarDeltas(int32(t))...)
			ts.TplVal = append(ts.TplVal, b.tplVal[t]...)
			ts.TplPtr = append(ts.TplPtr, int64(len(ts.TplVal)))
		}
		op.Tpl = ts
		for r := 0; r < b.rows; r++ {
			if ts.RowTpl[r] < 0 {
				op.ColInd = b.appendRowCols(op.ColInd, r)
				op.Val = append(op.Val, b.vals[r]...)
			}
			op.RowPtr[r+1] = int64(len(op.Val))
		}
		return op
	}
	for r := 0; r < b.rows; r++ {
		if b.aware && b.rowTpl[r] >= 0 {
			// Template mode without a net saving: materialise the row.
			t := b.rowTpl[r]
			for i, d := range b.scalarDeltas(t) {
				op.ColInd = append(op.ColInd, b.rowBase[r]+d)
				op.Val = append(op.Val, b.tplVal[t][i])
			}
		} else {
			op.ColInd = b.appendRowCols(op.ColInd, r)
			op.Val = append(op.Val, b.vals[r]...)
		}
		op.RowPtr[r+1] = int64(len(op.Val))
	}
	return op
}

// Layout selects the storage layout FinishLayout freezes into. The zero
// value is LayoutBSR — blocked when the accumulated rows allow it, with a
// transparent CSR fallback — so callers that don't care get the compact
// layout by default.
type Layout int

const (
	// LayoutBSR freezes into the block-sparse layout when every row and
	// template decomposes into aligned basisN-wide element blocks (and
	// basisN > 1); otherwise it falls back to CSR.
	LayoutBSR Layout = iota
	// LayoutCSR always freezes into scalar CSR.
	LayoutCSR
)

// blockable reports whether the accumulated rows and templates can freeze
// into the blocked layout: no scalar row, basisN wide enough to save index
// bytes, every registered template in block form, and every templated
// row's base column block-aligned.
func (b *Builder) blockable() bool {
	if b.scalar || b.basisN <= 1 {
		return false
	}
	for t := range b.tplVal {
		if b.tplElems[t] == nil {
			return false
		}
	}
	if b.aware {
		for r := 0; r < b.rows; r++ {
			if b.rowTpl[r] >= 0 && b.rowBase[r]%int32(b.basisN) != 0 {
				return false
			}
		}
	}
	return true
}

// FinishLayout freezes the accumulated rows like Finish but into the
// requested layout. LayoutBSR emits the blocked index directly — no
// ToBSR re-scan — when the rows qualify (see blockable); unqualified
// builders fall back to Finish's CSR output, mirroring ToBSR's transparent
// fallback. The frozen operator's applies are bit-identical across both
// layouts.
func (b *Builder) FinishLayout(layout Layout, perm []int32, workers int, scheme string, wall time.Duration, counters metrics.Counters) *Operator {
	nnz := 0
	for _, v := range b.vals {
		nnz += len(v)
	}
	useTpl := b.aware && len(b.tplVal) > 0 && b.templatesSaveBytes()
	if layout != LayoutBSR || !b.blockable() || (nnz == 0 && !useTpl) {
		return b.Finish(perm, workers, scheme, wall, counters)
	}
	op := &Operator{
		Rows:             b.rows,
		Cols:             b.cols,
		BasisN:           b.basisN,
		RowPtr:           make([]int64, b.rows+1),
		Val:              make([]float64, 0, nnz),
		BSR:              &BSRIndex{BlockID: make([]int32, 0, nnz/b.basisN)},
		Perm:             perm,
		Workers:          workers,
		TemplateAware:    b.aware,
		AssemblyScheme:   scheme,
		AssemblyWall:     wall,
		AssemblyCounters: counters,
	}
	if useTpl {
		ts := &TemplateSet{
			TplPtr:  make([]int64, 1, len(b.tplVal)+1),
			RowTpl:  b.rowTpl,
			RowBase: b.rowBase,
		}
		for t := range b.tplVal {
			op.BSR.TplBlockDelta = append(op.BSR.TplBlockDelta, b.tplElems[t]...)
			ts.TplVal = append(ts.TplVal, b.tplVal[t]...)
			ts.TplPtr = append(ts.TplPtr, int64(len(ts.TplVal)))
		}
		op.Tpl = ts
		for r := 0; r < b.rows; r++ {
			if ts.RowTpl[r] < 0 {
				op.BSR.BlockID = append(op.BSR.BlockID, b.belems[r]...)
				op.Val = append(op.Val, b.vals[r]...)
			}
			op.RowPtr[r+1] = int64(len(op.Val))
		}
		return op
	}
	for r := 0; r < b.rows; r++ {
		if b.aware && b.rowTpl[r] >= 0 {
			// Template mode without a net saving: materialise the row.
			t := b.rowTpl[r]
			baseElem := b.rowBase[r] / int32(b.basisN)
			for _, d := range b.tplElems[t] {
				op.BSR.BlockID = append(op.BSR.BlockID, baseElem+d)
			}
			op.Val = append(op.Val, b.tplVal[t]...)
		} else {
			op.BSR.BlockID = append(op.BSR.BlockID, b.belems[r]...)
			op.Val = append(op.Val, b.vals[r]...)
		}
		op.RowPtr[r+1] = int64(len(op.Val))
	}
	return op
}

// templatesSaveBytes applies Templatize's net-byte guard to the builder's
// registered templates: templated rows' would-be CSR entries (12 B each)
// must outweigh one stored copy of each template plus the Rows-wide side
// table.
func (b *Builder) templatesSaveBytes() bool {
	var tplNNZ, savedNNZ int64
	for _, v := range b.tplVal {
		tplNNZ += int64(len(v))
	}
	for r := 0; r < b.rows; r++ {
		if t := b.rowTpl[r]; t >= 0 {
			savedNNZ += int64(len(b.tplVal[t]))
		}
	}
	return (savedNNZ-tplNNZ)*12-int64(b.rows)*8-int64(len(b.tplVal)+1)*8 > 0
}
