package operator

import (
	"math"
	"testing"
	"time"

	"unstencil/internal/metrics"
)

// bsrVariants returns the layout pair (CSR original, BSR conversion) for
// each combination of permutation and templating the identity tests sweep.
func bsrVariants(t *testing.T) map[string][2]*Operator {
	t.Helper()
	out := map[string][2]*Operator{}
	for _, permuted := range []bool{false, true} {
		for _, templated := range []bool{false, true} {
			var csr *Operator
			if templated {
				csr = buildCongruent(600, 150, 3, 77, permuted).Templatize()
				if csr.Tpl == nil {
					t.Fatal("congruent fixture did not templatize")
				}
			} else {
				csr = buildRandomPerm(600, 150, 3, 77, permuted)
			}
			bsr := csr.ToBSR()
			if bsr.BSR == nil {
				t.Fatalf("block-aligned operator (permuted=%v templated=%v) did not convert", permuted, templated)
			}
			if bsr.ColInd != nil {
				t.Fatal("blocked operator still carries scalar column indices")
			}
			if templated && bsr.Tpl.TplDelta != nil {
				t.Fatal("blocked templated operator still carries scalar template deltas")
			}
			name := map[bool]string{false: "plain", true: "templated"}[templated] +
				"/" + map[bool]string{false: "identity", true: "permuted"}[permuted]
			out[name] = [2]*Operator{csr, bsr}
		}
	}
	return out
}

// TestToBSRRoundTrip pins the lossless conversion: ToCSR(ToBSR(op))
// reproduces every CSR array bitwise.
func TestToBSRRoundTrip(t *testing.T) {
	for name, pair := range bsrVariants(t) {
		csr, bsr := pair[0], pair[1]
		back := bsr.ToCSR()
		if back.BSR != nil {
			t.Fatalf("%s: ToCSR left the blocked index in place", name)
		}
		if len(back.ColInd) != len(csr.ColInd) {
			t.Fatalf("%s: round trip has %d columns, original %d", name, len(back.ColInd), len(csr.ColInd))
		}
		for i := range csr.ColInd {
			if back.ColInd[i] != csr.ColInd[i] {
				t.Fatalf("%s: column %d: %d vs %d", name, i, back.ColInd[i], csr.ColInd[i])
			}
		}
		for i := range csr.Val {
			if math.Float64bits(back.Val[i]) != math.Float64bits(csr.Val[i]) {
				t.Fatalf("%s: value %d differs bitwise", name, i)
			}
		}
		for r := range csr.RowPtr {
			if back.RowPtr[r] != csr.RowPtr[r] {
				t.Fatalf("%s: rowptr %d: %d vs %d", name, r, back.RowPtr[r], csr.RowPtr[r])
			}
		}
		if csr.Tpl != nil {
			for i := range csr.Tpl.TplDelta {
				if back.Tpl.TplDelta[i] != csr.Tpl.TplDelta[i] {
					t.Fatalf("%s: template delta %d: %d vs %d", name, i, back.Tpl.TplDelta[i], csr.Tpl.TplDelta[i])
				}
			}
		}
		sameRowsBitwise(t, csr, back)
	}
}

// TestBSRApplyVecBitIdentical is the tentpole property for the vector
// kernel: the blocked apply equals the CSR apply bitwise at every worker
// count, for plain and templated operators, permuted and identity orders.
func TestBSRApplyVecBitIdentical(t *testing.T) {
	for name, pair := range bsrVariants(t) {
		csr, bsr := pair[0], pair[1]
		coeffs := randFields(csr.Cols, 1, 4242)[0]
		want := make([]float64, csr.Rows)
		if err := csr.ApplyVec(coeffs, want, 1); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7} {
			got := make([]float64, bsr.Rows)
			if err := bsr.ApplyVec(coeffs, got, workers); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s workers=%d: point %d: %x vs %x",
						name, workers, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestBSRApplyBlockBitIdentical is the tentpole property for the SpMM
// kernel: blocked ApplyBlock equals CSR ApplyBlock bitwise across field
// widths (under, at, and over the fieldBlock tile) and worker counts.
func TestBSRApplyBlockBitIdentical(t *testing.T) {
	for name, pair := range bsrVariants(t) {
		csr, bsr := pair[0], pair[1]
		for _, nf := range []int{1, 2, 3, 8, 9, 16} {
			coeffs := randFields(csr.Cols, nf, 99)
			want := make([][]float64, nf)
			got := make([][]float64, nf)
			for f := 0; f < nf; f++ {
				want[f] = make([]float64, csr.Rows)
				got[f] = make([]float64, csr.Rows)
			}
			if err := csr.ApplyBlock(coeffs, want, 1); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 7} {
				for f := range got {
					clear(got[f])
				}
				if err := bsr.ApplyBlock(coeffs, got, workers); err != nil {
					t.Fatal(err)
				}
				for f := range want {
					for i := range want[f] {
						if math.Float64bits(got[f][i]) != math.Float64bits(want[f][i]) {
							t.Fatalf("%s nf=%d workers=%d: field %d point %d differs bitwise",
								name, nf, workers, f, i)
						}
					}
				}
			}
		}
	}
}

// TestToBSRFallback pins the transparent-fallback contract: operators that
// cannot save index bytes come back unchanged.
func TestToBSRFallback(t *testing.T) {
	// basisN == 1: a block index would be the column index — nothing saved.
	b := NewBuilder(3, 5, 1)
	b.SetRow(0, []int32{0, 2}, []float64{1, 2})
	b.SetRow(2, []int32{1, 3, 4}, []float64{3, 4, 5})
	op := b.Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if got := op.ToBSR(); got != op {
		t.Fatal("basisN=1 operator should be returned unchanged")
	}

	// Misaligned columns: a row that starts mid-block.
	b = NewBuilder(2, 9, 3)
	b.SetRow(0, []int32{1, 2, 3}, []float64{1, 2, 3})
	op = b.Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if got := op.ToBSR(); got != op {
		t.Fatal("misaligned operator should be returned unchanged")
	}

	// Partial block: row length not a multiple of basisN.
	b = NewBuilder(2, 9, 3)
	b.SetRow(0, []int32{0, 1}, []float64{1, 2})
	op = b.Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if got := op.ToBSR(); got != op {
		t.Fatal("partial-block operator should be returned unchanged")
	}

	// Empty operator: nothing stored, nothing to save.
	b = NewBuilder(4, 9, 3)
	op = b.Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if got := op.ToBSR(); got != op {
		t.Fatal("empty operator should be returned unchanged")
	}

	// Already blocked: idempotent.
	blocked := buildRandomPerm(40, 12, 3, 5, false).ToBSR()
	if blocked.BSR == nil {
		t.Fatal("fixture did not convert")
	}
	if got := blocked.ToBSR(); got != blocked {
		t.Fatal("ToBSR on a blocked operator should be a no-op")
	}
}

// TestFinishLayoutBSR checks that the builder emits the blocked index
// directly — structurally identical to converting the CSR freeze — for
// both block-form and scalar-form input rows, and that LayoutCSR and
// non-blockable builders fall back to plain CSR.
func TestFinishLayoutBSR(t *testing.T) {
	build := func(blocks bool) *Builder {
		b := NewBuilder(4, 12, 3)
		rows := [][]int32{{0, 2}, {1}, {2, 3}} // element ids per row
		vals := [][]float64{
			{1, 2, 3, 4, 5, 6},
			{7, 8, 9},
			{10, 11, 12, 13, 14, 15},
		}
		for r := range rows {
			if blocks {
				b.SetRowBlocks(r, rows[r], vals[r])
			} else {
				var ci []int32
				for _, e := range rows[r] {
					for m := int32(0); m < 3; m++ {
						ci = append(ci, e*3+m)
					}
				}
				b.SetRow(r, ci, vals[r])
			}
		}
		return b
	}
	for _, blocks := range []bool{false, true} {
		bsr := build(blocks).FinishLayout(LayoutBSR, nil, 1, "per-point", time.Millisecond, metrics.Counters{})
		if bsr.BSR == nil {
			t.Fatalf("blocks=%v: FinishLayout(LayoutBSR) did not emit the blocked index", blocks)
		}
		want := []int32{0, 2, 1, 2, 3}
		if len(bsr.BSR.BlockID) != len(want) {
			t.Fatalf("blocks=%v: %d block ids, want %d", blocks, len(bsr.BSR.BlockID), len(want))
		}
		for i, e := range want {
			if bsr.BSR.BlockID[i] != e {
				t.Fatalf("blocks=%v: block %d = %d, want %d", blocks, i, bsr.BSR.BlockID[i], e)
			}
		}
		csr := build(blocks).FinishLayout(LayoutCSR, nil, 1, "per-point", time.Millisecond, metrics.Counters{})
		if csr.BSR != nil {
			t.Fatalf("blocks=%v: FinishLayout(LayoutCSR) emitted a blocked index", blocks)
		}
		sameRowsBitwise(t, csr, bsr.ToCSR())
	}

	// A scalar (unaligned) row forces the CSR fallback even under LayoutBSR.
	b := NewBuilder(2, 12, 3)
	b.SetRow(0, []int32{1, 2, 3}, []float64{1, 2, 3})
	op := b.FinishLayout(LayoutBSR, nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if op.BSR != nil {
		t.Fatal("unaligned builder should fall back to CSR")
	}
}

// TestFinishLayoutTemplatedBSR drives the template path end to end in
// block form: AddTemplateBlocks + SetRowTemplated must freeze into a
// blocked TemplateSet whose applies match the CSR freeze bitwise.
func TestFinishLayoutTemplatedBSR(t *testing.T) {
	const rows, elems, basisN = 64, 40, 3
	mk := func() *Builder {
		b := NewBuilder(rows, elems*basisN, basisN)
		b.MarkTemplateAware()
		telems := []int32{2, 3, 5}
		tvals := []float64{1, -2, 3, -4, 5, -6, 7, -8, 9}
		tpl := b.AddTemplateBlocks(telems, tvals)
		for r := 0; r < rows; r++ {
			if r%5 == 0 {
				b.SetRowBlocks(r, []int32{int32(r % elems)}, []float64{1, 2, 3})
				continue
			}
			base := int32(r%20) * basisN // block-aligned column base
			b.SetRowTemplated(r, tpl, base)
		}
		return b
	}
	bsr := mk().FinishLayout(LayoutBSR, nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	if bsr.BSR == nil || bsr.Tpl == nil {
		t.Fatal("templated block builder did not freeze into blocked templates")
	}
	if bsr.Tpl.TplDelta != nil || len(bsr.BSR.TplBlockDelta) != 3 {
		t.Fatalf("blocked template store malformed: delta=%v blockDelta=%v",
			bsr.Tpl.TplDelta, bsr.BSR.TplBlockDelta)
	}
	csr := mk().Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
	coeffs := randFields(csr.Cols, 1, 7)[0]
	want := make([]float64, rows)
	got := make([]float64, rows)
	if err := csr.ApplyVec(coeffs, want, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		if err := bsr.ApplyVec(coeffs, got, workers); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: point %d differs bitwise", workers, i)
			}
		}
	}
	sameRowsBitwise(t, csr.Expand(), bsr.Expand())

	// A misaligned templated base forces the CSR fallback.
	b := mk()
	b.SetRowTemplated(1, 0, 1) // base 1 is mid-block
	if op := b.FinishLayout(LayoutBSR, nil, 1, "per-point", time.Millisecond, metrics.Counters{}); op.BSR != nil {
		t.Fatal("misaligned template base should fall back to CSR")
	}
}

// TestBSRBytes pins the byte accounting: the blocked layout must report
// fewer resident bytes than its CSR twin, with the gap equal to
// IndexBytesSaved, and Stats must carry the layout tag.
func TestBSRBytes(t *testing.T) {
	for name, pair := range bsrVariants(t) {
		csr, bsr := pair[0], pair[1]
		saved := bsr.IndexBytesSaved()
		if saved <= 0 {
			t.Fatalf("%s: blocked layout saved %d bytes", name, saved)
		}
		if csr.Bytes()-bsr.Bytes() != saved {
			t.Fatalf("%s: byte gap %d, IndexBytesSaved %d", name, csr.Bytes()-bsr.Bytes(), saved)
		}
		if s := bsr.Stats(); s.Layout != "bsr" || s.IndexBytesSaved != saved {
			t.Fatalf("%s: stats %+v", name, s)
		}
		if s := csr.Stats(); s.Layout != "csr" || s.IndexBytesSaved != 0 {
			t.Fatalf("%s: CSR stats %+v", name, s)
		}
		if csr.NNZ() != bsr.NNZ() || csr.StoredNNZ() != bsr.StoredNNZ() {
			t.Fatalf("%s: nnz accounting changed across layouts", name)
		}
	}
}

// TestValidateBSR exercises the decode-path guards.
func TestValidateBSR(t *testing.T) {
	fresh := func() *Operator { return buildRandomPerm(60, 20, 3, 9, false).ToBSR() }
	if op := fresh(); op.ValidateBSR() != nil {
		t.Fatal("valid blocked operator rejected")
	}
	if op := (&Operator{}); op.ValidateBSR() != nil {
		t.Fatal("CSR operator should validate trivially")
	}
	op := fresh()
	op.BSR.BlockID[0] = int32(op.Cols / op.BasisN) // out of range
	if op.ValidateBSR() == nil {
		t.Fatal("out-of-range block id accepted")
	}
	op = fresh()
	op.BSR.BlockID = op.BSR.BlockID[:len(op.BSR.BlockID)-1]
	if op.ValidateBSR() == nil {
		t.Fatal("short block index accepted")
	}
	op = fresh()
	op.RowPtr[1]++ // mid-block row boundary
	if op.ValidateBSR() == nil {
		t.Fatal("misaligned row pointer accepted")
	}
	op = fresh()
	op.Cols++ // no longer a multiple of basisN
	if op.ValidateBSR() == nil {
		t.Fatal("ragged column count accepted")
	}
}

// TestBSRApplyAllocFree pins the zero-allocation property of the blocked
// hot paths, matching TestApplyAllocFree for the CSR kernels.
func TestBSRApplyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	op := buildRandomPerm(600, 150, 3, 11, true).ToBSR()
	if op.BSR == nil {
		t.Fatal("fixture did not convert")
	}
	coeffs := randFields(op.Cols, 2, 3)
	out := [][]float64{make([]float64, op.Rows), make([]float64, op.Rows)}
	if n := testing.AllocsPerRun(20, func() {
		if err := op.ApplyVec(coeffs[0], out[0], 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("blocked ApplyVec allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := op.ApplyBlock(coeffs, out, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("blocked ApplyBlock allocates %v per run", n)
	}
}
