package operator

import (
	"math"
	"testing"
	"time"

	"unstencil/internal/metrics"
)

// buildTemplateAware constructs a builder in template mode with `users` rows
// resolved through one shared 4-entry template at staggered bases, plus one
// plain row. Enough users make the template a net byte saving; few make
// Finish materialise everything as plain CSR.
func buildTemplateAware(users int) *Operator {
	rows := users + 1
	b := NewBuilder(rows, int32ToInt(int32(4*rows+8)), 2)
	b.MarkTemplateAware()
	tcols := []int32{0, 1, 4, 5}
	tvals := []float64{0.5, -0.25, 0.125, 2}
	tpl := b.AddTemplate(tcols, tvals)
	for r := 0; r < users; r++ {
		b.SetRowTemplated(r, tpl, int32(4*r))
	}
	b.SetRow(users, []int32{2, 3}, []float64{7, -3})
	return b.Finish(nil, 1, "per-point", time.Millisecond, metrics.Counters{})
}

func int32ToInt(v int32) int { return int(v) }

// TestTemplateAwareFinishEmitsTemplateSet: with enough rows sharing the
// pattern, Finish produces the TemplateSet directly — no Templatize rescan
// — and the expanded CSR equals what plain SetRow calls would have stored,
// bit for bit.
func TestTemplateAwareFinishEmitsTemplateSet(t *testing.T) {
	op := buildTemplateAware(50)
	if !op.TemplateAware {
		t.Fatal("operator not marked template-aware")
	}
	if op.Tpl == nil {
		t.Fatal("Finish did not emit a TemplateSet despite a net byte saving")
	}
	if err := op.ValidateTemplates(); err != nil {
		t.Fatalf("emitted TemplateSet invalid: %v", err)
	}
	if got := op.Tpl.NumTemplates(); got != 1 {
		t.Fatalf("templates = %d, want 1", got)
	}
	if got := op.Tpl.TemplatedRows(); got != 50 {
		t.Fatalf("templated rows = %d, want 50", got)
	}
	if op.Templatize() != op {
		t.Error("Templatize re-scanned a template-aware operator")
	}

	ex := op.Expand()
	if ex.NNZ() != 50*4+2 {
		t.Fatalf("expanded nnz = %d", ex.NNZ())
	}
	for r := 0; r < 50; r++ {
		lo, hi := ex.RowPtr[r], ex.RowPtr[r+1]
		if hi-lo != 4 {
			t.Fatalf("row %d has %d entries", r, hi-lo)
		}
		for i, d := range []int32{0, 1, 4, 5} {
			if ex.ColInd[lo+int64(i)] != int32(4*r)+d {
				t.Fatalf("row %d col[%d] = %d", r, i, ex.ColInd[lo+int64(i)])
			}
		}
		for i, v := range []float64{0.5, -0.25, 0.125, 2} {
			if math.Float64bits(ex.Val[lo+int64(i)]) != math.Float64bits(v) {
				t.Fatalf("row %d val[%d] = %v", r, i, ex.Val[lo+int64(i)])
			}
		}
	}
}

// TestTemplateAwareFinishMaterialisesWhenNotSaving: a single user of a
// 4-entry template saves nothing over storing the row outright, so Finish
// falls back to plain CSR — same numbers, no indirection — while the
// operator stays marked template-aware so Templatize still skips it.
func TestTemplateAwareFinishMaterialisesWhenNotSaving(t *testing.T) {
	op := buildTemplateAware(1)
	if op.Tpl != nil {
		t.Fatal("Finish emitted a TemplateSet that costs more than it saves")
	}
	if !op.TemplateAware {
		t.Fatal("fallback dropped the template-aware mark")
	}
	if op.NNZ() != 4+2 {
		t.Fatalf("materialised nnz = %d", op.NNZ())
	}
	lo := op.RowPtr[0]
	if op.ColInd[lo] != 0 || op.Val[lo] != 0.5 {
		t.Fatalf("row 0 materialised wrong: col %d val %v", op.ColInd[lo], op.Val[lo])
	}
}

// TestTemplateAwareBuilderPanics: template-mode calls outside template mode,
// and out-of-range template references, are programming errors.
func TestTemplateAwareBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	b := NewBuilder(2, 8, 2)
	expectPanic("AddTemplate unaware", func() { b.AddTemplate([]int32{0, 1}, []float64{1, 2}) })
	expectPanic("SetRowTemplated unaware", func() { b.SetRowTemplated(0, 0, 0) })
	b.MarkTemplateAware()
	expectPanic("empty template", func() { b.AddTemplate(nil, nil) })
	expectPanic("bad template id", func() { b.SetRowTemplated(0, 3, 0) })
}
