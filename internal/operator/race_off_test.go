//go:build !race

package operator

// raceEnabled mirrors the runtime's race-detector flag for tests: the
// race build of sync.Pool randomly drops Puts (poolRaceHack), so
// allocation guards only hold in non-race builds.
const raceEnabled = false
