package operator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"unstencil/internal/metrics"
)

func randPerm32(rng *rand.Rand, n int) []int32 {
	p := rng.Perm(n)
	out := make([]int32, n)
	for i, v := range p {
		out[i] = int32(v)
	}
	return out
}

func randFields(cols, nf int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	fs := make([][]float64, nf)
	for f := range fs {
		fs[f] = make([]float64, cols)
		for c := range fs[f] {
			fs[f][c] = math.Ldexp(rng.Float64()-0.5, rng.Intn(20)-10)
		}
	}
	return fs
}

// TestApplyBlockBitIdentical is the tentpole property: ApplyBlock equals F
// independent ApplyVec calls bitwise, across field counts, worker counts,
// permuted and identity row orders, and templated operators.
func TestApplyBlockBitIdentical(t *testing.T) {
	for _, permuted := range []bool{false, true} {
		for _, templated := range []bool{false, true} {
			op := buildRandomPerm(600, 150, 3, 42, permuted)
			if templated {
				// Congruent rows so Templatize actually compresses.
				op = buildCongruent(600, 150, 3, 42, permuted)
			}
			o := op
			if templated {
				o = op.Templatize()
				if o.Tpl == nil {
					t.Fatal("congruent operator did not templatize")
				}
			}
			for _, nf := range []int{1, 2, 3, 8, 9, 16} {
				coeffs := randFields(o.Cols, nf, int64(nf)*7+1)
				want := make([][]float64, nf)
				for f := 0; f < nf; f++ {
					want[f] = make([]float64, o.Rows)
					if err := op.ApplyVec(coeffs[f], want[f], 1); err != nil {
						t.Fatal(err)
					}
				}
				for _, workers := range []int{1, 2, 3, 7} {
					got := make([][]float64, nf)
					for f := range got {
						got[f] = make([]float64, o.Rows)
					}
					if err := o.ApplyBlock(coeffs, got, workers); err != nil {
						t.Fatal(err)
					}
					for f := 0; f < nf; f++ {
						for r := 0; r < o.Rows; r++ {
							if math.Float64bits(got[f][r]) != math.Float64bits(want[f][r]) {
								t.Fatalf("permuted=%v templated=%v nf=%d workers=%d: field %d row %d: %v != %v",
									permuted, templated, nf, workers, f, r, got[f][r], want[f][r])
							}
						}
					}
				}
			}
		}
	}
}

func buildRandomPerm(rows, elems, basisN int, seed int64, permuted bool) *Operator {
	rng := rand.New(rand.NewSource(seed))
	cols := elems * basisN
	b := NewBuilder(rows, cols, basisN)
	for r := 0; r < rows; r++ {
		if rng.Intn(17) == 0 {
			continue
		}
		ne := 1 + rng.Intn(6)
		e0 := rng.Intn(max(1, elems-ne))
		var ci []int32
		var v []float64
		for e := e0; e < e0+ne; e++ {
			for m := 0; m < basisN; m++ {
				ci = append(ci, int32(e*basisN+m))
				mag := math.Ldexp(rng.Float64(), rng.Intn(30)-15)
				if rng.Intn(2) == 0 {
					mag = -mag
				}
				v = append(v, mag)
			}
		}
		b.SetRow(r, ci, v)
	}
	var perm []int32
	if permuted {
		perm = randPerm32(rng, rows)
	}
	return b.Finish(perm, 2, "per-point", time.Millisecond, metrics.Counters{})
}

func TestApplyBlockDimensionChecks(t *testing.T) {
	op := buildRandomPerm(40, 10, 2, 1, false)
	mk := func(n, ln int) [][]float64 {
		v := make([][]float64, n)
		for i := range v {
			v[i] = make([]float64, ln)
		}
		return v
	}
	if err := op.ApplyBlock(nil, nil, 1); err == nil {
		t.Error("zero fields accepted")
	}
	if err := op.ApplyBlock(mk(2, op.Cols), mk(1, op.Rows), 1); err == nil {
		t.Error("output count mismatch accepted")
	}
	if err := op.ApplyBlock(mk(2, op.Cols-1), mk(2, op.Rows), 1); err == nil {
		t.Error("short coefficients accepted")
	}
	if err := op.ApplyBlock(mk(2, op.Cols), mk(2, op.Rows-1), 1); err == nil {
		t.Error("short output accepted")
	}
}

// The serial apply paths must not allocate in steady state: the packed
// tile and output vectors are pooled, the accumulators are stack arrays.
func TestApplyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector")
	}
	op := buildRandomPerm(512, 128, 3, 9, true)
	topl := op.Templatize()
	coeffs := randFields(op.Cols, 8, 5)
	out := make([][]float64, 8)
	for f := range out {
		out[f] = make([]float64, op.Rows)
	}
	// Warm the pools.
	if err := op.ApplyBlock(coeffs, out, 1); err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"ApplyVec":           func() { _ = op.ApplyVec(coeffs[0], out[0], 1) },
		"ApplyBlock":         func() { _ = op.ApplyBlock(coeffs, out, 1) },
		"ApplyBlockTemplate": func() { _ = topl.ApplyBlock(coeffs, out, 1) },
		"GetPutVec":          func() { PutVec(GetVec(op.Rows)) },
	} {
		if n := testing.AllocsPerRun(20, fn); n != 0 {
			t.Errorf("%s allocates %v per run", name, n)
		}
	}
}

func TestGetVecReuse(t *testing.T) {
	v := GetVec(100)
	if len(v) != 100 {
		t.Fatalf("len = %d", len(v))
	}
	v[0] = 42
	PutVec(v)
	w := GetVec(50)
	if len(w) != 50 {
		t.Fatalf("len = %d", len(w))
	}
	PutVec(w)
	if big := GetVec(1000); len(big) != 1000 {
		t.Fatalf("len = %d", len(big))
	} else {
		PutVec(big)
	}
	PutVec(nil) // must not panic
}
