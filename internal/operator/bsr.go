// Block compressed sparse row (BSR) layout.
//
// Every assembled row is a sequence of full basisN-wide element blocks —
// the columns of one contributing element's modes are contiguous and start
// at a multiple of basisN (see core's rowAccum, which emits exactly
// e·basisN+m) — so storing one 32-bit column index per *entry* repeats the
// same element id basisN times. The BSR layout stores one element id per
// block instead: at P2 (basisN = 10) the index stream shrinks 10×, and the
// inner mode loop becomes unit-stride over both the operator values and
// the gathered coefficient block, with bounds checks hoisted per block.
//
// The conversion is lossless and purely structural: Val keeps the exact
// CSR entry order (block-major, modes ascending within a block), RowPtr is
// shared verbatim (entry units; block spans are RowPtr[r]/basisN), and the
// blocked kernels reconstruct every coefficient index as
//
//	(baseElem + id)·basisN + m  ==  base + col
//
// — the identical address in the identical sequence, fed through the
// identical Neumaier recurrence. BSR applies are therefore bit-identical
// to the CSR kernels at every worker count, which the property tests pin.
//
// ToBSR mirrors Templatize's contract: operators whose rows do not decompose
// into aligned blocks (hand-built, basisN == 1, degenerate) are returned
// unchanged — the transparent CSR fallback — and the conversion must save
// net bytes (it always does for basisN > 1 with any stored entries).
package operator

import (
	"fmt"
	"math"
)

// BSRIndex is the blocked column index of a BSR-form operator. An operator
// with BSR != nil stores no scalar column indices: ColInd is nil and, when
// templated, Tpl.TplDelta is nil — BlockID and TplBlockDelta carry the
// same information at one entry per basisN-wide block.
type BSRIndex struct {
	// BlockID holds one element id per stored block: block k of storage
	// row r (covering Val[RowPtr[r]+k·basisN : RowPtr[r]+(k+1)·basisN])
	// multiplies the coefficients of element BlockID[RowPtr[r]/basisN + k].
	// Ascending within a row, exactly like the CSR columns it replaces.
	BlockID []int32
	// TplBlockDelta is the blocked twin of TemplateSet.TplDelta: one
	// element-id delta per template block, relative to the templated row's
	// base element (RowBase[r]/basisN). Nil for untemplated operators.
	TplBlockDelta []int32
}

// Bytes returns the resident size of the blocked index arrays.
func (bi *BSRIndex) Bytes() int64 {
	if bi == nil {
		return 0
	}
	return int64(len(bi.BlockID))*4 + int64(len(bi.TplBlockDelta))*4
}

// rowBlocks is rowSpan's blocked twin: storage row r's terms are
//
//	vals[b·basisN+m] · coeffs[(baseElem+ids[b])·basisN + m]
//
// Plain rows return their Val span with the row's BlockID slice and base
// element 0; templated rows return the shared template values with the
// blocked deltas and the row's base element. Both blocked kernels consume
// rows through this one accessor, exactly as the CSR kernels do through
// rowSpan, so templated and plain rows follow the identical arithmetic.
func (op *Operator) rowBlocks(r int) (vals []float64, ids []int32, baseElem int32) {
	bn := int64(op.BasisN)
	if op.Tpl != nil {
		if t := op.Tpl.RowTpl[r]; t >= 0 {
			lo, hi := op.Tpl.TplPtr[t], op.Tpl.TplPtr[t+1]
			return op.Tpl.TplVal[lo:hi], op.BSR.TplBlockDelta[lo/bn : hi/bn], op.Tpl.RowBase[r] / int32(bn)
		}
	}
	lo, hi := op.RowPtr[r], op.RowPtr[r+1]
	return op.Val[lo:hi], op.BSR.BlockID[lo/bn : hi/bn], 0
}

// applyRowsBSR is applyRows on the blocked layout: same Neumaier recurrence
// over the same term sequence, with the column reconstructed per block and
// the mode loop unit-stride over an aliased coefficient block.
//
// The compensation update differs from the scalar kernel only in form, not
// value: both error expressions are computed and the predicate selects one
// (branch-prediction friendly; math.Abs is a bit-mask intrinsic where the
// local abs branches). math.Abs(−0.0) is +0.0 where abs keeps −0.0, but
// −0.0 and +0.0 compare equal, so the predicate — and therefore the term
// sequence and every output bit — is identical to the CSR kernel's.
func (op *Operator) applyRowsBSR(coeffs, out []float64, lo, hi int) {
	basisN := op.BasisN
	for r := lo; r < hi; r++ {
		vals, ids, base := op.rowBlocks(r)
		sum, comp := 0.0, 0.0
		for b := range ids {
			cb := coeffs[(int(base)+int(ids[b]))*basisN:][:basisN]
			vb := vals[b*basisN:][:basisN]
			for m := 0; m < basisN; m++ {
				term := vb[m] * cb[m]
				t := sum + term
				e := (term - t) + sum
				if math.Abs(sum) >= math.Abs(term) {
					e = (sum - t) + term
				}
				comp += e
				sum = t
			}
		}
		if op.Perm != nil {
			out[op.Perm[r]] = sum + comp
		} else {
			out[r] = sum + comp
		}
	}
}

// applyRowsBlockBSR is applyRowsBlock on the blocked layout, with the
// inner loops swapped field-major: within one element block, each field
// walks the whole basisN-long mode run with its Neumaier pair held in
// registers, instead of spilling all fieldBlock accumulator pairs to the
// stack on every entry the way the scalar kernel must (scalar CSR has no
// mode runs — consecutive entries land on unrelated columns). Fields are
// independent accumulators and each field still consumes its terms in
// exactly the CSR entry order (modes ascending within a block, blocks
// ascending within the row), so the swap cannot perturb a bit of any
// field's sum — the identity the property tests pin. The block's packed
// tile (basisN·fb floats) is re-read once per field, but it was just
// written or read and stays cache-resident.
func (op *Operator) applyRowsBlockBSR(packed []float64, fb int, out [][]float64, lo, hi int) {
	var sum, comp [fieldBlock]float64
	basisN := op.BasisN
	for r := lo; r < hi; r++ {
		vals, ids, base := op.rowBlocks(r)
		for f := 0; f < fb; f++ {
			sum[f], comp[f] = 0, 0
		}
		for b := range ids {
			vb := vals[b*basisN:][:basisN]
			blk := packed[(int(base)+int(ids[b]))*basisN*fb:][:basisN*fb]
			for f := 0; f < fb; f++ {
				s, c := sum[f], comp[f]
				o := f
				for m := 0; m < basisN; m++ {
					term := vb[m] * blk[o]
					o += fb
					t := s + term
					// Same select-form compensation as applyRowsBSR: both
					// error expressions, predicate picks one — value-identical
					// to the scalar kernel's branch.
					e := (term - t) + s
					if math.Abs(s) >= math.Abs(term) {
						e = (s - t) + term
					}
					c += e
					s = t
				}
				sum[f], comp[f] = s, c
			}
		}
		pt := r
		if op.Perm != nil {
			pt = int(op.Perm[r])
		}
		for f := 0; f < fb; f++ {
			out[f][pt] = sum[f] + comp[f]
		}
	}
}

// blockIDs converts one row's (or template's) scalar column sequence into
// element ids, reporting whether the sequence decomposes into full aligned
// blocks: length a multiple of basisN, each group starting at a column
// divisible by basisN and running c0, c0+1, …, c0+basisN−1.
func blockIDs(cols []int32, basisN int, ids []int32) ([]int32, bool) {
	if basisN <= 0 || len(cols)%basisN != 0 {
		return ids, false
	}
	for k := 0; k < len(cols); k += basisN {
		c0 := cols[k]
		if c0 < 0 || c0%int32(basisN) != 0 {
			return ids, false
		}
		for m := 1; m < basisN; m++ {
			if cols[k+m] != c0+int32(m) {
				return ids, false
			}
		}
		ids = append(ids, c0/int32(basisN))
	}
	return ids, true
}

// ToBSR returns the blocked-layout equivalent of a CSR operator, sharing
// Val, RowPtr, Perm and the template value arrays verbatim (an mmap-backed
// operator keeps its Backing; only the small blocked index is heap-built).
// If the operator is already blocked, has basisN 1 (no index bytes to
// save), or any row or template does not decompose into aligned element
// blocks, the receiver is returned unchanged — the transparent fallback
// mirroring Templatize's contract. Applies through the returned operator
// are bit-identical to the receiver's.
func (op *Operator) ToBSR() *Operator {
	if op.BSR != nil || op.BasisN <= 1 {
		return op
	}
	if len(op.Val) == 0 && (op.Tpl == nil || len(op.Tpl.TplVal) == 0) {
		return op // nothing stored: no bytes to save
	}
	// Every row boundary must fall on a block boundary, or the shared
	// RowPtr could not double as a block-span table.
	for _, p := range op.RowPtr {
		if p%int64(op.BasisN) != 0 {
			return op
		}
	}
	blockID := make([]int32, 0, len(op.ColInd)/op.BasisN)
	for r := 0; r < op.Rows; r++ {
		lo, hi := op.RowPtr[r], op.RowPtr[r+1]
		ids, ok := blockIDs(op.ColInd[lo:hi], op.BasisN, blockID)
		if !ok {
			return op
		}
		blockID = ids
	}
	bi := &BSRIndex{BlockID: blockID}
	out := *op
	out.ColInd = nil
	out.BSR = bi
	if ts := op.Tpl; ts != nil {
		nt := ts.NumTemplates()
		for _, p := range ts.TplPtr {
			if p%int64(op.BasisN) != 0 {
				return op
			}
		}
		tbd := make([]int32, 0, len(ts.TplDelta)/op.BasisN)
		for t := 0; t < nt; t++ {
			lo, hi := ts.TplPtr[t], ts.TplPtr[t+1]
			ids, ok := blockIDs(ts.TplDelta[lo:hi], op.BasisN, tbd)
			if !ok {
				return op
			}
			tbd = ids
		}
		for r, t := range ts.RowTpl {
			if t >= 0 && ts.RowBase[r]%int32(op.BasisN) != 0 {
				return op
			}
		}
		bi.TplBlockDelta = tbd
		tpl := *ts
		tpl.TplDelta = nil
		out.Tpl = &tpl
	}
	return &out
}

// ToCSR materialises the scalar column indices of a blocked operator,
// returning the plain CSR (or templated-CSR) equivalent. ToCSR(ToBSR(op))
// reproduces op's arrays bitwise — the round-trip property the tests pin.
// A CSR operator is returned unchanged.
func (op *Operator) ToCSR() *Operator {
	if op.BSR == nil {
		return op
	}
	bn := int32(op.BasisN)
	colInd := make([]int32, len(op.Val))
	for k, e := range op.BSR.BlockID {
		c0 := e * bn
		for m := int32(0); m < bn; m++ {
			colInd[k*op.BasisN+int(m)] = c0 + m
		}
	}
	out := *op
	out.ColInd = colInd
	out.BSR = nil
	if ts := op.Tpl; ts != nil {
		tplDelta := make([]int32, len(ts.TplVal))
		for k, d := range op.BSR.TplBlockDelta {
			d0 := d * bn
			for m := int32(0); m < bn; m++ {
				tplDelta[k*op.BasisN+int(m)] = d0 + m
			}
		}
		tpl := *ts
		tpl.TplDelta = tplDelta
		out.Tpl = &tpl
	}
	return &out
}

// IndexBytesSaved returns how many resident index bytes the blocked layout
// is saving against the scalar CSR encoding of the same operator: 4 B per
// stored entry collapses to 4 B per block, for both the row index and the
// template deltas. 0 for CSR operators.
func (op *Operator) IndexBytesSaved() int64 {
	if op.BSR == nil {
		return 0
	}
	saved := 4 * (int64(len(op.Val)) - int64(len(op.BSR.BlockID)))
	if op.Tpl != nil {
		saved += 4 * (int64(len(op.Tpl.TplVal)) - int64(len(op.BSR.TplBlockDelta)))
	}
	return saved
}

// ValidateBSR checks the blocked index's structural invariants against the
// operator shape — the artifact decode path runs this (before any apply)
// so a corrupted or hostile v3 container cannot drive rowBlocks out of
// bounds. Template invariants are checked by ValidateTemplates, which is
// BSR-aware.
func (op *Operator) ValidateBSR() error {
	bi := op.BSR
	if bi == nil {
		return nil
	}
	if op.BasisN < 1 {
		return fmt.Errorf("operator: blocked layout with basisN %d", op.BasisN)
	}
	if op.Cols%op.BasisN != 0 {
		return fmt.Errorf("operator: %d columns not a multiple of basisN %d", op.Cols, op.BasisN)
	}
	if op.ColInd != nil {
		return fmt.Errorf("operator: blocked operator still carries %d scalar column indices", len(op.ColInd))
	}
	for r, p := range op.RowPtr {
		if p%int64(op.BasisN) != 0 {
			return fmt.Errorf("operator: rowptr[%d]=%d not a multiple of basisN %d", r, p, op.BasisN)
		}
	}
	if int64(len(bi.BlockID))*int64(op.BasisN) != int64(len(op.Val)) {
		return fmt.Errorf("operator: %d blocks × basisN %d disagree with %d values",
			len(bi.BlockID), op.BasisN, len(op.Val))
	}
	nElems := int32(op.Cols / op.BasisN)
	for k, e := range bi.BlockID {
		if e < 0 || e >= nElems {
			return fmt.Errorf("operator: block %d element id %d outside [0, %d)", k, e, nElems)
		}
	}
	return nil
}
