package operator

import (
	"testing"
	"time"

	"unstencil/internal/metrics"
)

// A tiny hand-built 3×4 operator (basisN 2, two elements) exercises the
// CSR layout, the permutation plumbing, and the dimension checks without
// any mesh machinery.
func buildTiny(perm []int32) *Operator {
	b := NewBuilder(3, 4, 2)
	b.SetRow(0, []int32{0, 1}, []float64{1, 2})
	b.SetRow(1, []int32{2, 3}, []float64{3, -1})
	// row 2 left unset: a point no element contributes to.
	return b.Finish(perm, 2, "per-point", time.Millisecond, metrics.Counters{Regions: 7})
}

func TestBuilderFinishLayout(t *testing.T) {
	op := buildTiny(nil)
	if op.NNZ() != 4 {
		t.Fatalf("nnz = %d", op.NNZ())
	}
	wantPtr := []int64{0, 2, 4, 4}
	for i, p := range op.RowPtr {
		if p != wantPtr[i] {
			t.Fatalf("rowptr = %v", op.RowPtr)
		}
	}
	out := make([]float64, 3)
	coeffs := []float64{1, 1, 1, 1}
	if err := op.ApplyVec(coeffs, out, 1); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 2 || out[2] != 0 {
		t.Fatalf("out = %v", out)
	}
	if op.AssemblyCounters.Regions != 7 || op.AssemblyScheme != "per-point" {
		t.Error("assembly provenance lost")
	}
	st := op.Stats()
	if st.NNZPerRow <= 1.33 || st.NNZPerRow >= 1.34 {
		t.Errorf("nnz/row = %v", st.NNZPerRow)
	}
}

func TestPermRoutesOutput(t *testing.T) {
	// Storage row 0 computes point 2, row 1 point 0, row 2 point 1.
	op := buildTiny([]int32{2, 0, 1})
	out := make([]float64, 3)
	if err := op.ApplyVec([]float64{1, 1, 1, 1}, out, 1); err != nil {
		t.Fatal(err)
	}
	if out[2] != 3 || out[0] != 2 || out[1] != 0 {
		t.Fatalf("permuted out = %v", out)
	}
}

func TestApplyVecDimensionChecks(t *testing.T) {
	op := buildTiny(nil)
	if err := op.ApplyVec(make([]float64, 3), make([]float64, 3), 1); err == nil {
		t.Error("short coefficients accepted")
	}
	if err := op.ApplyVec(make([]float64, 4), make([]float64, 2), 1); err == nil {
		t.Error("short output accepted")
	}
}

func TestSetRowLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched SetRow did not panic")
		}
	}()
	NewBuilder(1, 2, 1).SetRow(0, []int32{0, 1}, []float64{1})
}

// Compensated row summation must recover sums a naive loop loses to
// cancellation: (big + 1) − big == 1 exactly.
func TestApplyRowsCompensated(t *testing.T) {
	b := NewBuilder(1, 3, 3)
	big := 1e16
	b.SetRow(0, []int32{0, 1, 2}, []float64{big, 1, -big})
	op := b.Finish(nil, 1, "per-point", 0, metrics.Counters{})
	out := make([]float64, 1)
	if err := op.ApplyVec([]float64{1, 1, 1}, out, 1); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("compensated sum = %v, want 1", out[0])
	}
}
