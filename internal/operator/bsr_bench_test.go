package operator

import (
	"math/rand"
	"testing"
	"time"

	"unstencil/internal/metrics"
)

// benchBSRPair builds a synthetic operator shaped like the P2 16×16
// structured-mesh SIAC operator (the BENCH_PR10 sweep's memory-bound
// case): every row a sorted set of full element blocks, in both layouts.
func benchBSRPair(b *testing.B, rows, elems, basisN, blocksPerRow int) (csr, bsr *Operator) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	bld := NewBuilder(rows, elems*basisN, basisN)
	ids := make([]int32, 0, blocksPerRow)
	vals := make([]float64, blocksPerRow*basisN)
	for r := 0; r < rows; r++ {
		ids = ids[:0]
		start := rng.Intn(elems)
		for k := 0; k < blocksPerRow; k++ {
			ids = append(ids, int32((start+k*2)%elems))
		}
		// SetRowBlocks wants ascending element ids.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		dedup := ids[:1]
		for _, e := range ids[1:] {
			if e != dedup[len(dedup)-1] {
				dedup = append(dedup, e)
			}
		}
		v := vals[:len(dedup)*basisN]
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		bld.SetRowBlocks(r, dedup, v)
	}
	csr = bld.Finish(nil, 1, "bench", time.Duration(0), metrics.Counters{})
	bsr = csr.ToBSR()
	if bsr.BSR == nil {
		b.Fatal("synthetic operator did not convert to BSR")
	}
	return csr, bsr
}

func benchApplyVec(b *testing.B, op *Operator) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	coeffs := make([]float64, op.Cols)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	out := make([]float64, op.Rows)
	b.SetBytes(int64(len(op.Val)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.ApplyVec(coeffs, out, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchApplyBlock(b *testing.B, op *Operator, nf int) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	coeffs := make([][]float64, nf)
	out := make([][]float64, nf)
	for f := range coeffs {
		coeffs[f] = make([]float64, op.Cols)
		for i := range coeffs[f] {
			coeffs[f][i] = rng.NormFloat64()
		}
		out[f] = make([]float64, op.Rows)
	}
	b.SetBytes(int64(len(op.Val)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.ApplyBlock(coeffs, out, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// P2-like shape: 4608 rows × 512 elements, basisN 6, ~237 blocks per row
// (≈ 78 MB of values — out of cache, the regime the layout targets).
func BenchmarkApplyVecCSRP2(b *testing.B) {
	csr, _ := benchBSRPair(b, 4608, 512, 6, 237)
	benchApplyVec(b, csr)
}

func BenchmarkApplyVecBSRP2(b *testing.B) {
	_, bsr := benchBSRPair(b, 4608, 512, 6, 237)
	benchApplyVec(b, bsr)
}

func BenchmarkApplyBlockCSRP2(b *testing.B) {
	csr, _ := benchBSRPair(b, 4608, 512, 6, 237)
	benchApplyBlock(b, csr, 8)
}

func BenchmarkApplyBlockBSRP2(b *testing.B) {
	_, bsr := benchBSRPair(b, 4608, 512, 6, 237)
	benchApplyBlock(b, bsr, 8)
}

// P1-like shape: 2048 rows × 512 elements, basisN 3, ~164 blocks per row.
func BenchmarkApplyVecCSRP1(b *testing.B) {
	csr, _ := benchBSRPair(b, 2048, 512, 3, 164)
	benchApplyVec(b, csr)
}

func BenchmarkApplyVecBSRP1(b *testing.B) {
	_, bsr := benchBSRPair(b, 2048, 512, 3, 164)
	benchApplyVec(b, bsr)
}

func BenchmarkApplyBlockCSRP1(b *testing.B) {
	csr, _ := benchBSRPair(b, 2048, 512, 3, 164)
	benchApplyBlock(b, csr, 8)
}

func BenchmarkApplyBlockBSRP1(b *testing.B) {
	_, bsr := benchBSRPair(b, 2048, 512, 3, 164)
	benchApplyBlock(b, bsr, 8)
}
