package bspline

import (
	"math"
	"math/rand"
	"testing"

	"unstencil/internal/quadrature"
)

func TestBSplineHat(t *testing.T) {
	// Order 2 is the hat function.
	cases := []struct{ x, want float64 }{
		{0, 1}, {0.5, 0.5}, {-0.5, 0.5}, {1, 0}, {-1, 0}, {2, 0}, {0.25, 0.75},
	}
	for _, c := range cases {
		if got := BSpline(2, c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("M2(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBSplineQuadratic(t *testing.T) {
	// Order 3: M3(0) = 3/4, M3(±0.5) = 1/2... actually M3(0.5) = 0.5? The
	// quadratic B-spline on knots {-1.5,-0.5,0.5,1.5}: M3(0) = 3/4,
	// M3(±1) = 1/8, M3(±1.5) = 0.
	cases := []struct{ x, want float64 }{
		{0, 0.75}, {1, 0.125}, {-1, 0.125}, {1.5, 0}, {-1.5, 0},
	}
	for _, c := range cases {
		if got := BSpline(3, c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("M3(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBSplineSupportAndPositivity(t *testing.T) {
	for n := 1; n <= 6; n++ {
		h := float64(n) / 2
		if BSpline(n, h+1e-9) != 0 || BSpline(n, -h-1e-9) != 0 {
			t.Errorf("order %d: nonzero outside support", n)
		}
		for x := -h + 0.01; x < h; x += 0.1 {
			if BSpline(n, x) < 0 {
				t.Errorf("order %d: negative at %v", n, x)
			}
		}
	}
}

func TestBSplineIntegratesToOne(t *testing.T) {
	for n := 1; n <= 6; n++ {
		if got := BSplineMoment(n, 0); math.Abs(got-1) > 1e-13 {
			t.Errorf("order %d: ∫ψ = %v", n, got)
		}
	}
}

func TestBSplinePartitionOfUnity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 50; trial++ {
			x := r.Float64()*10 - 5
			sum := 0.0
			for i := -10; i <= 10; i++ {
				sum += BSpline(n, x-float64(i))
			}
			if math.Abs(sum-1) > 1e-13 {
				t.Errorf("order %d: partition of unity at %v = %v", n, x, sum)
			}
		}
	}
}

func TestBSplineSymmetry(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for x := 0.05; x < float64(n)/2; x += 0.17 {
			if math.Abs(BSpline(n, x)-BSpline(n, -x)) > 1e-15 {
				t.Errorf("order %d not symmetric at %v", n, x)
			}
		}
	}
}

func TestBSplineOddMomentsVanish(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for m := 1; m <= 5; m += 2 {
			if got := BSplineMoment(n, m); got != 0 {
				t.Errorf("order %d moment %d = %v, want 0", n, m, got)
			}
		}
	}
}

func TestBSplineSecondMoment(t *testing.T) {
	// Var of sum of n independent U(-1/2,1/2) = n/12.
	for n := 1; n <= 6; n++ {
		want := float64(n) / 12
		if got := BSplineMoment(n, 2); math.Abs(got-want) > 1e-13 {
			t.Errorf("order %d second moment = %v, want %v", n, got, want)
		}
	}
}

func TestSymmetricKernelStructure(t *testing.T) {
	for k := 1; k <= 3; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ker.Nodes) != 2*k+1 {
			t.Errorf("k=%d: %d nodes, want %d", k, len(ker.Nodes), 2*k+1)
		}
		lo, hi := ker.Support()
		if math.Abs((hi-lo)-float64(3*k+1)) > 1e-12 {
			t.Errorf("k=%d: support width %v, want %d", k, hi-lo, 3*k+1)
		}
		if ker.NumPieces() != 3*k+1 {
			t.Errorf("k=%d: %d pieces, want %d", k, ker.NumPieces(), 3*k+1)
		}
		if math.Abs(lo+hi) > 1e-12 {
			t.Errorf("k=%d: support not centred: [%v, %v]", k, lo, hi)
		}
	}
}

func TestSymmetricKernelMoments(t *testing.T) {
	for k := 1; k <= 3; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := ker.Moment(0); math.Abs(got-1) > 1e-11 {
			t.Errorf("k=%d: ∫K = %v, want 1", k, got)
		}
		for m := 1; m <= 2*k; m++ {
			if got := ker.Moment(m); math.Abs(got) > 1e-10 {
				t.Errorf("k=%d: moment %d = %v, want 0", k, m, got)
			}
		}
	}
}

func TestKernelSymmetryEven(t *testing.T) {
	ker, err := NewSymmetric(2)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric nodes and even B-splines: K(x) = K(−x), and coefficients
	// are palindromic.
	for g := range ker.Coeffs {
		if math.Abs(ker.Coeffs[g]-ker.Coeffs[len(ker.Coeffs)-1-g]) > 1e-10 {
			t.Errorf("coefficients not palindromic: %v", ker.Coeffs)
		}
	}
	for x := 0.1; x < 3.5; x += 0.3 {
		if math.Abs(ker.Eval(x)-ker.Eval(-x)) > 1e-11 {
			t.Errorf("K(%v) != K(−%v): %v vs %v", x, x, ker.Eval(x), ker.Eval(-x))
		}
	}
}

func TestKernelPiecewiseMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for k := 1; k <= 3; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := ker.Support()
		for trial := 0; trial < 300; trial++ {
			x := lo + r.Float64()*(hi-lo)
			direct := ker.evalDirect(x)
			fast := ker.Eval(x)
			if math.Abs(direct-fast) > 1e-10 {
				t.Errorf("k=%d x=%v: direct %v piecewise %v", k, x, direct, fast)
			}
		}
		// Outside the support both are zero.
		if ker.Eval(lo-0.5) != 0 || ker.Eval(hi+0.5) != 0 {
			t.Errorf("k=%d: nonzero outside support", k)
		}
	}
}

// The defining property: convolution with the kernel reproduces polynomials
// of degree up to r = 2k. ∫ K(y)·(x−y)^m dy = x^m for all x.
func TestKernelPolynomialReproduction(t *testing.T) {
	for k := 1; k <= 3; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m <= 2*k; m++ {
			for _, x := range []float64{0, 0.3, -1.7, 2.5} {
				got := 0.0
				pts := (ker.K + m + 2) / 2
				if pts < 2 {
					pts = 2
				}
				for i := range ker.Breaks[:len(ker.Breaks)-1] {
					a := ker.Breaks[i]
					got += quadrature.Integrate1D(func(y float64) float64 {
						return ker.Eval(y) * math.Pow(x-y, float64(m))
					}, a, a+1, pts)
				}
				want := math.Pow(x, float64(m))
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Errorf("k=%d m=%d x=%v: got %v want %v", k, m, x, got, want)
				}
			}
		}
	}
}

func TestOneSidedKernel(t *testing.T) {
	// A shifted kernel still satisfies the moment conditions.
	ker, err := NewOneSided(2, -1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := ker.Moment(0); math.Abs(got-1) > 1e-10 {
		t.Errorf("∫K = %v", got)
	}
	for m := 1; m <= 4; m++ {
		if got := ker.Moment(m); math.Abs(got) > 1e-9 {
			t.Errorf("moment %d = %v", m, got)
		}
	}
	// Zero shift equals the symmetric kernel.
	sym, _ := NewSymmetric(2)
	zero, _ := NewOneSided(2, 0)
	for x := -3.4; x < 3.5; x += 0.23 {
		if math.Abs(sym.Eval(x)-zero.Eval(x)) > 1e-10 {
			t.Errorf("shift-0 one-sided differs from symmetric at %v", x)
		}
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := NewSymmetric(0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewOneSided(0, 1); err == nil {
		t.Error("k=0 one-sided should error")
	}
}

func TestPieceIndex(t *testing.T) {
	ker, _ := NewSymmetric(1)
	lo, hi := ker.Support() // [-2, 2]
	if ker.PieceIndex(lo-1) != -1 || ker.PieceIndex(hi+1) != -1 {
		t.Error("outside support should be -1")
	}
	if got := ker.PieceIndex(lo + 0.5); got != 0 {
		t.Errorf("first piece index = %d", got)
	}
	if got := ker.PieceIndex(hi - 0.5); got != ker.NumPieces()-1 {
		t.Errorf("last piece index = %d", got)
	}
}

func TestKernelBreaksUnitSpaced(t *testing.T) {
	for k := 1; k <= 4; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ker.Breaks); i++ {
			if math.Abs(ker.Breaks[i]-ker.Breaks[i-1]-1) > 1e-13 {
				t.Errorf("k=%d: break spacing %v at %d", k, ker.Breaks[i]-ker.Breaks[i-1], i)
			}
		}
	}
}

func TestNewtonToMonomial(t *testing.T) {
	// Interpolate x² + 2x + 3 exactly.
	xs := []float64{0.1, 0.5, 0.9}
	ys := make([]float64, 3)
	for i, x := range xs {
		ys[i] = x*x + 2*x + 3
	}
	c := newtonToMonomial(xs, ys)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("coef = %v, want %v", c, want)
		}
	}
}

func BenchmarkKernelEval(b *testing.B) {
	ker, _ := NewSymmetric(2)
	b.ReportAllocs()
	x := 0.0
	for i := 0; i < b.N; i++ {
		x += 0.001
		if x > 3 {
			x = -3
		}
		ker.Eval(x)
	}
}

func BenchmarkNewSymmetric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSymmetric(3); err != nil {
			b.Fatal(err)
		}
	}
}

// EvalPiece must agree with the floor-based Eval at every piece and offset:
// the hot path relies on piece index == stencil cell index being exact.
func TestEvalPieceMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 1; k <= 4; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ker.NumPieces(); i++ {
			for trial := 0; trial < 50; trial++ {
				tt := rng.Float64() // local offset in [0, 1)
				x := ker.Breaks[i] + tt
				got := ker.EvalPiece(i, tt)
				want := ker.Eval(x)
				if math.Abs(got-want) > 1e-13 {
					t.Fatalf("k=%d piece %d t=%v: EvalPiece %v, Eval %v", k, i, tt, got, want)
				}
			}
			// Endpoint: t = 0 lands exactly on the break.
			if got, want := ker.EvalPiece(i, 0), ker.Eval(ker.Breaks[i]); math.Abs(got-want) > 1e-13 {
				t.Fatalf("k=%d piece %d t=0: EvalPiece %v, Eval %v", k, i, got, want)
			}
		}
	}
}

// One-sided kernels must satisfy the same piece identity (their break
// lattice is shifted but still unit-spaced).
func TestEvalPieceMatchesEvalOneSided(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shift := range []float64{-1.25, -0.5, 0.375, 1.5} {
		ker, err := NewOneSided(2, shift)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ker.NumPieces(); i++ {
			for trial := 0; trial < 25; trial++ {
				tt := rng.Float64()
				got := ker.EvalPiece(i, tt)
				want := ker.Eval(ker.Breaks[i] + tt)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("shift=%v piece %d: EvalPiece %v, Eval %v", shift, i, got, want)
				}
			}
		}
	}
}

// Piece must expose the same polynomial EvalPiece evaluates.
func TestPieceCoefficients(t *testing.T) {
	ker, err := NewSymmetric(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ker.NumPieces(); i++ {
		p := ker.Piece(i)
		if len(p) != ker.K+1 {
			t.Fatalf("piece %d has %d coefficients, want %d", i, len(p), ker.K+1)
		}
		tt := 0.625
		horner := p[len(p)-1]
		for d := len(p) - 2; d >= 0; d-- {
			horner = horner*tt + p[d]
		}
		if got := ker.EvalPiece(i, tt); math.Abs(got-horner) > 1e-15 {
			t.Fatalf("piece %d: Piece-based Horner %v != EvalPiece %v", i, horner, got)
		}
	}
}

// The incremental-power Moment must match the former math.Pow formulation,
// i.e. the moment conditions themselves.
func TestMomentMatchesConditions(t *testing.T) {
	for k := 1; k <= 3; k++ {
		ker, err := NewSymmetric(k)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(ker.Moment(0) - 1); d > 1e-10 {
			t.Errorf("k=%d: moment 0 off by %v", k, d)
		}
		for m := 1; m <= ker.R; m++ {
			if d := math.Abs(ker.Moment(m)); d > 1e-9 {
				t.Errorf("k=%d: moment %d = %v, want 0", k, m, d)
			}
		}
	}
}
