package bspline_test

import (
	"fmt"

	"unstencil/internal/bspline"
)

// The symmetric SIAC kernel for linear dG solutions (k = 1): three
// quadratic B-splines, support width 3k+1 = 4, unit mass and a vanishing
// second moment — the properties that make post-processing
// accuracy-conserving.
func ExampleNewSymmetric() {
	ker, err := bspline.NewSymmetric(1)
	if err != nil {
		panic(err)
	}
	lo, hi := ker.Support()
	fmt.Printf("nodes: %d, support: [%g, %g]\n", len(ker.Nodes), lo, hi)
	fmt.Printf("mass: %.6f\n", ker.Moment(0))
	fmt.Printf("second moment: %.6f\n", ker.Moment(2))
	// Output:
	// nodes: 3, support: [-2, 2]
	// mass: 1.000000
	// second moment: 0.000000
}

func ExampleBSpline() {
	// The order-2 central B-spline is the hat function.
	fmt.Printf("%.2f %.2f %.2f\n",
		bspline.BSpline(2, -1), bspline.BSpline(2, 0), bspline.BSpline(2, 0.5))
	// Output:
	// 0.00 1.00 0.50
}
