// Package bspline implements central B-splines and the
// Smoothness-Increasing Accuracy-Conserving (SIAC) convolution kernels built
// from them:
//
//	K^{r+1,k+1}(x) = Σ_{γ=0..r} c_γ ψ^{(k+1)}(x − x_γ)
//
// where ψ^{(k+1)} is the central B-spline of order k+1 (degree k) and the
// stencil nodes x_γ are unit-spaced (x_γ = −r/2 + γ for the symmetric
// kernel, r = 2k). The coefficients c_γ are chosen so convolution with K
// reproduces polynomials up to degree r, which is equivalent to the moment
// conditions ∫K = 1 and ∫K(y)·y^m dy = 0 for m = 1..r.
//
// Kernels are stored as exact piecewise polynomials on their unit-spaced
// break lattice, which is what makes the stencil decomposition into "an
// array of squares" (paper §3.1, Fig. 5) exact: within one square the kernel
// is a single polynomial.
package bspline

import (
	"fmt"
	"math"

	"unstencil/internal/linalg"
	"unstencil/internal/quadrature"
)

// BSpline evaluates the central B-spline of order n (degree n−1) at x. Its
// support is [−n/2, n/2] and it integrates to 1. The recurrence used is the
// standard uniform-knot Cox–de Boor recursion specialised to central
// splines:
//
//	M_n(x) = ((x + n/2)·M_{n−1}(x + ½) + (n/2 − x)·M_{n−1}(x − ½)) / (n−1)
func BSpline(n int, x float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("bspline: order must be >= 1, got %d", n))
	}
	if n == 1 {
		if x >= -0.5 && x < 0.5 {
			return 1
		}
		return 0
	}
	h := float64(n) / 2
	if x <= -h || x >= h {
		return 0
	}
	return ((x+h)*BSpline(n-1, x+0.5) + (h-x)*BSpline(n-1, x-0.5)) / float64(n-1)
}

// BSplineMoment returns μ_m = ∫ ψ^{(n)}(t)·t^m dt, computed exactly by
// per-knot-span Gauss quadrature (the integrand is polynomial of degree
// n−1+m on each span).
func BSplineMoment(n, m int) float64 {
	if m < 0 {
		panic("bspline: negative moment")
	}
	// Odd moments of the (even) central B-spline vanish identically.
	if m%2 == 1 {
		return 0
	}
	pts := (n + m + 2) / 2 // exact for degree n-1+m
	if pts < 1 {
		pts = 1
	}
	lo := -float64(n) / 2
	total := 0.0
	for span := 0; span < n; span++ {
		a := lo + float64(span)
		total += quadrature.Integrate1D(func(t float64) float64 {
			return BSpline(n, t) * powi(t, m)
		}, a, a+1, pts)
	}
	return total
}

// Kernel is a SIAC convolution kernel in normalized coordinates (element
// size h = 1). Scale by h at evaluation time: the physical kernel is
// (1/h)·K(x/h).
type Kernel struct {
	// K is the number of vanishing-moment "degrees": B-splines have order
	// K+1, the kernel reproduces polynomials up to degree R = 2K.
	K int
	// R is the reproduction degree (2K for the kernels built here).
	R int
	// Nodes are the unit-spaced stencil node positions x_γ.
	Nodes []float64
	// Coeffs are the solved kernel coefficients c_γ.
	Coeffs []float64
	// Breaks are the R+K+2 break positions of the piecewise-polynomial
	// kernel, spaced exactly 1 apart. Support is [Breaks[0], Breaks[last]].
	Breaks []float64
	// pieces[i] holds monomial coefficients (ascending powers) of the
	// kernel on [Breaks[i], Breaks[i]+1] in the local variable
	// t = x − Breaks[i]. Each piece has degree K.
	pieces [][]float64
}

// NewSymmetric constructs the symmetric SIAC kernel K^{(2k+1), (k+1)} with
// nodes x_γ = −k + γ, γ = 0..2k. k must be >= 1 (k is the dG polynomial
// order P in the post-processing application). Its support has width 3k+1,
// matching the paper's stencil extent (3k+1)h.
func NewSymmetric(k int) (*Kernel, error) {
	if k < 1 {
		return nil, fmt.Errorf("bspline: NewSymmetric needs k >= 1, got %d", k)
	}
	r := 2 * k
	nodes := make([]float64, r+1)
	for g := range nodes {
		nodes[g] = -float64(r)/2 + float64(g)
	}
	return newKernel(k, nodes)
}

// NewOneSided constructs a one-sided SIAC kernel whose node lattice is
// shifted by the given amount (in units of h). shift = 0 reproduces the
// symmetric kernel; a kernel for a point at distance d < support/2 from the
// right domain boundary uses a negative shift so the support stays inside
// the domain (Ryan & Shu 2003). The same moment conditions are solved, so
// polynomial reproduction up to degree 2k is retained.
func NewOneSided(k int, shift float64) (*Kernel, error) {
	if k < 1 {
		return nil, fmt.Errorf("bspline: NewOneSided needs k >= 1, got %d", k)
	}
	r := 2 * k
	nodes := make([]float64, r+1)
	for g := range nodes {
		nodes[g] = -float64(r)/2 + float64(g) + shift
	}
	return newKernel(k, nodes)
}

func newKernel(k int, nodes []float64) (*Kernel, error) {
	r := len(nodes) - 1
	n := k + 1 // B-spline order
	// Moment conditions: Σ_γ c_γ ∫ψ(y−x_γ) y^m dy = δ_{m0}, m = 0..r.
	// With y = t + x_γ: ∫ψ(y−x_γ)y^m dy = Σ_j C(m,j)·μ_j·x_γ^{m−j}.
	mu := make([]float64, r+1)
	for j := 0; j <= r; j++ {
		mu[j] = BSplineMoment(n, j)
	}
	// pow[g][j] = nodes[g]^j, built incrementally once per node.
	pow := make([][]float64, r+1)
	for g := range pow {
		pow[g] = make([]float64, r+1)
		pow[g][0] = 1
		for j := 1; j <= r; j++ {
			pow[g][j] = pow[g][j-1] * nodes[g]
		}
	}
	a := linalg.NewMatrix(r+1, r+1)
	for m := 0; m <= r; m++ {
		for g := 0; g <= r; g++ {
			s := 0.0
			c := 1.0 // binomial C(m, j), updated incrementally
			for j := 0; j <= m; j++ {
				if j > 0 {
					c = c * float64(m-j+1) / float64(j)
				}
				s += c * mu[j] * pow[g][m-j]
			}
			a.Set(m, g, s)
		}
	}
	rhs := make([]float64, r+1)
	rhs[0] = 1
	coeffs, err := linalg.Solve(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("bspline: kernel coefficient system: %w", err)
	}
	ker := &Kernel{K: k, R: r, Nodes: nodes, Coeffs: coeffs}
	ker.buildPieces()
	return ker, nil
}

// evalDirect sums the shifted B-splines; used to build and verify the
// piecewise representation.
func (ker *Kernel) evalDirect(x float64) float64 {
	n := ker.K + 1
	s := 0.0
	for g, xg := range ker.Nodes {
		s += ker.Coeffs[g] * BSpline(n, x-xg)
	}
	return s
}

// buildPieces interpolates the kernel exactly on each unit break interval.
// Within an interval the kernel is a single polynomial of degree K, so
// interpolation at K+1 distinct points is exact.
func (ker *Kernel) buildPieces() {
	n := ker.K + 1
	lo := ker.Nodes[0] - float64(n)/2
	count := ker.R + n // number of unit intervals spanning the support
	ker.Breaks = make([]float64, count+1)
	for i := range ker.Breaks {
		ker.Breaks[i] = lo + float64(i)
	}
	ker.pieces = make([][]float64, count)
	deg := ker.K
	for i := range ker.pieces {
		a := ker.Breaks[i]
		// Sample at deg+1 Chebyshev-ish points in local coords (0, 1),
		// avoiding the endpoints where the half-open indicator in the
		// Cox–de Boor base case could pick the wrong side.
		xs := make([]float64, deg+1)
		ys := make([]float64, deg+1)
		for j := range xs {
			t := (float64(j) + 0.5) / float64(deg+1)
			xs[j] = t
			ys[j] = ker.evalDirect(a + t)
		}
		ker.pieces[i] = newtonToMonomial(xs, ys)
	}
}

// newtonToMonomial interpolates (xs, ys) with Newton divided differences and
// expands the result to monomial coefficients (ascending powers).
func newtonToMonomial(xs, ys []float64) []float64 {
	n := len(xs)
	// Divided differences in place.
	dd := make([]float64, n)
	copy(dd, ys)
	for level := 1; level < n; level++ {
		for i := n - 1; i >= level; i-- {
			dd[i] = (dd[i] - dd[i-1]) / (xs[i] - xs[i-level])
		}
	}
	// Expand Newton form Σ dd[i] Π_{j<i}(x − xs[j]) to monomials by Horner:
	// p(x) = dd[n−1]; for i = n−2..0: p = p·(x − xs[i]) + dd[i].
	coef := make([]float64, n)
	coef[0] = dd[n-1]
	degree := 0
	for i := n - 2; i >= 0; i-- {
		// Multiply current poly by (x − xs[i]).
		for d := degree + 1; d >= 1; d-- {
			coef[d] = coef[d-1] - xs[i]*coef[d]
		}
		coef[0] = -xs[i] * coef[0]
		degree++
		coef[0] += dd[i]
	}
	return coef
}

// Support returns the support interval [lo, hi] of the kernel in normalized
// coordinates; hi − lo = 3K+1 for the kernels built by this package.
func (ker *Kernel) Support() (lo, hi float64) {
	return ker.Breaks[0], ker.Breaks[len(ker.Breaks)-1]
}

// Eval evaluates the kernel at x in normalized coordinates using the exact
// piecewise-polynomial representation (Horner on the containing interval).
func (ker *Kernel) Eval(x float64) float64 {
	i := int(math.Floor(x - ker.Breaks[0]))
	if i < 0 || i >= len(ker.pieces) {
		return 0
	}
	t := x - ker.Breaks[i]
	p := ker.pieces[i]
	s := p[len(p)-1]
	for d := len(p) - 2; d >= 0; d-- {
		s = s*t + p[d]
	}
	return s
}

// EvalPiece evaluates kernel piece i at the local coordinate t = x −
// Breaks[i], t ∈ [0, 1]. It is the hot-path form of Eval: the caller already
// knows which break interval it is integrating over (stencil squares are
// exactly the break lattice), so the floor and bounds search are skipped and
// the piece polynomial is evaluated directly by Horner. i must be in
// [0, NumPieces()).
func (ker *Kernel) EvalPiece(i int, t float64) float64 {
	p := ker.pieces[i]
	s := p[len(p)-1]
	for d := len(p) - 2; d >= 0; d-- {
		s = s*t + p[d]
	}
	return s
}

// Piece returns the monomial coefficients (ascending powers of the local
// coordinate t = x − Breaks[i]) of kernel piece i. Hot loops hoist the
// slice out of their innermost pass; callers must not modify it.
func (ker *Kernel) Piece(i int) []float64 { return ker.pieces[i] }

// PieceIndex returns the break interval containing x, or -1 outside the
// support. The post-processor uses this to align stencil squares with kernel
// polynomial pieces.
func (ker *Kernel) PieceIndex(x float64) int {
	i := int(math.Floor(x - ker.Breaks[0]))
	if i < 0 || i >= len(ker.pieces) {
		return -1
	}
	return i
}

// NumPieces returns the number of unit break intervals (3K+1).
func (ker *Kernel) NumPieces() int { return len(ker.pieces) }

// Moment returns ∫ K(y)·y^m dy computed from the piecewise representation
// with exact quadrature; used by tests and diagnostics. Each break interval
// uses the known piece polynomial directly (EvalPiece) and builds y^m by
// repeated multiplication rather than math.Pow per abscissa.
func (ker *Kernel) Moment(m int) float64 {
	pts := (ker.K + m + 2) / 2
	if pts < 1 {
		pts = 1
	}
	g := quadrature.GaussLegendre(pts)
	total := 0.0
	for i := range ker.pieces {
		a := ker.Breaks[i]
		for q, x := range g.Nodes {
			t := (x + 1) / 2 // map [-1,1] → local piece coordinate [0,1]
			total += 0.5 * g.Weights[q] * ker.EvalPiece(i, t) * powi(a+t, m)
		}
	}
	return total
}

// powi returns y^m for small non-negative integer m by repeated
// multiplication.
func powi(y float64, m int) float64 {
	p := 1.0
	for ; m > 0; m-- {
		p *= y
	}
	return p
}
