// Package linalg provides the small dense linear-algebra kernels the library
// needs: matrices in row-major storage, LU factorisation with partial
// pivoting, linear solves, and a few vector helpers. The systems solved here
// are tiny (kernel-coefficient systems are (r+1)x(r+1) with r = 2k), so
// clarity is preferred over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation or solve meets a pivot that
// is exactly zero (or too small to trust).
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = m·x. x must have length m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d by %d",
			m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d by %dx%d",
			m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mr := m.Row(i)
		or := out.Row(i)
		for k, mv := range mr {
			if mv == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += mv * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// LU is an LU factorisation with partial pivoting: P·A = L·U, where L has a
// unit diagonal and is stored together with U in lu.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorisation of the square matrix a. The input is
// not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs a square matrix, got %dx%d",
			a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for col := 0; col < n; col++ {
		// Find pivot.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp, rc := lu.Row(p), lu.Row(col)
			for j := range rp {
				rp[j], rc[j] = rc[j], rp[j]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		// Eliminate below.
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := lu.At(r, col) * inv
			lu.Set(r, col, m)
			if m == 0 {
				continue
			}
			rr := lu.Row(r)
			rc := lu.Row(col)
			for j := col + 1; j < n; j++ {
				rr[j] -= m * rc[j]
			}
		}
	}
	return f, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for x using the factorisation. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation: x = P·b.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Solve factors a and solves a·x = b in one call. For repeated solves with
// the same matrix, use Factor once and call LU.Solve.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
