package linalg_test

import (
	"fmt"

	"unstencil/internal/linalg"
)

func ExampleSolve() {
	a := linalg.NewMatrix(2, 2)
	copy(a.Data, []float64{2, 1, 1, 3})
	x, err := linalg.Solve(a, []float64{5, 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f %.2f\n", x[0], x[1])
	// Output:
	// 1.00 3.00
}
