package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (testing/quick): for random diagonally-dominant 3x3 systems,
// Factor+Solve returns a solution whose residual is tiny, and Det matches
// the cofactor expansion.
func TestQuickSolve3x3(t *testing.T) {
	f := func(a0, a1, a2, a3, a4, a5, a6, a7, a8, b0, b1, b2 float64) bool {
		vals := []float64{a0, a1, a2, a3, a4, a5, a6, a7, a8, b0, b1, b2}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			vals[i] = math.Mod(v, 100)
		}
		m := NewMatrix(3, 3)
		copy(m.Data, vals[:9])
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < 3; i++ {
			m.Set(i, i, m.At(i, i)+500)
		}
		rhs := vals[9:12]
		x, err := Solve(m, rhs)
		if err != nil {
			return false
		}
		res := m.MulVec(x)
		AXPY(-1, rhs, res)
		if Norm2(res) > 1e-8*(1+Norm2(rhs)) {
			return false
		}
		// Determinant cross-check via cofactor expansion.
		det := m.At(0, 0)*(m.At(1, 1)*m.At(2, 2)-m.At(1, 2)*m.At(2, 1)) -
			m.At(0, 1)*(m.At(1, 0)*m.At(2, 2)-m.At(1, 2)*m.At(2, 0)) +
			m.At(0, 2)*(m.At(1, 0)*m.At(2, 1)-m.At(1, 1)*m.At(2, 0))
		fac, err := Factor(m)
		if err != nil {
			return false
		}
		return math.Abs(fac.Det()-det) <= 1e-6*(1+math.Abs(det))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
