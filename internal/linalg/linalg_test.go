package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At wrong")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should be a mutable view")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone should be deep")
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(3)
	x := []float64{1, 2, 3}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I*x != x: %v", y)
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Error("transpose values wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSolveRhsLengthMismatch(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{3, 1, 4, 2}) // det = 2
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", f.Det())
	}
	fi, _ := Factor(Identity(5))
	if fi.Det() != 1 {
		t.Fatalf("Det(I) = %v", fi.Det())
	}
}

// Property: for random well-conditioned systems, Solve residual is tiny and
// reconstruction A*x ≈ b holds.
func TestPropSolveResidual(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Boost the diagonal to keep conditioning reasonable.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := a.MulVec(x)
		AXPY(-1, b, res)
		if Norm2(res) > 1e-9*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %v too large", trial, Norm2(res))
		}
		diff := make([]float64, n)
		copy(diff, x)
		AXPY(-1, xTrue, diff)
		if Norm2(diff) > 1e-8*(1+Norm2(xTrue)) {
			t.Fatalf("trial %d: solution error %v too large", trial, Norm2(diff))
		}
	}
}

// Property: P·A = L·U determinant sign bookkeeping — det of a permuted
// identity is ±1 and solving with it permutes the rhs.
func TestPermutationMatrixSolve(t *testing.T) {
	p := NewMatrix(3, 3)
	p.Set(0, 2, 1)
	p.Set(1, 0, 1)
	p.Set(2, 1, 1)
	x, err := Solve(p, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	// p*x = b => x = pᵀ*b = (20, 30, 10).
	want := []float64{20, 30, 10}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-14 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	f, _ := Factor(p)
	if math.Abs(math.Abs(f.Det())-1) > 1e-14 {
		t.Fatalf("permutation det = %v", f.Det())
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Error("AXPY wrong")
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Identity(2).MulVec([]float64{1, 2, 3})
}

func TestHilbertSolveSmall(t *testing.T) {
	// Hilbert 6x6 is ill-conditioned but still solvable to a few digits;
	// this guards against gross pivoting errors.
	n := 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 1
	}
	b := a.MulVec(xTrue)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Fatalf("Hilbert solve x[%d] = %v", i, x[i])
		}
	}
}

func BenchmarkSolve8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 8
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
