// Package metrics defines the instrumentation the experiments report: exact
// algorithmic counts (intersection tests, true-positive clips, integrated
// sub-regions, quadrature evaluations) and a deterministic cost model that
// converts those counts into modeled FLOPs and memory traffic.
//
// The counts are exact properties of the algorithm — the same quantities the
// paper measures (Table 1 counts intersection tests directly). The FLOP
// model is a documented approximation used to report GFLOP/s-shaped curves
// (Figs. 11–12): each quadrature evaluation costs two kernel Horner
// evaluations, one affine inverse map, and one modal-basis dot product. The
// absolute constants do not matter for the paper's claims; the *ratios*
// between schemes, polynomial orders and mesh sizes do, and those come from
// the exact counts.
package metrics

import "fmt"

// Counters accumulates exact event counts. Use one Counters value per
// worker goroutine and merge with Add; none of the methods are
// synchronised.
type Counters struct {
	// IntersectionTests counts candidate (stencil, element) pairs examined,
	// the paper's Table 1 metric.
	IntersectionTests uint64 `json:"intersection_tests"`
	// TruePositives counts candidate pairs whose geometric intersection was
	// non-empty.
	TruePositives uint64 `json:"true_positives"`
	// Regions counts triangulated integration sub-regions (τ_n in Eq. (2)).
	Regions uint64 `json:"regions"`
	// QuadEvals counts quadrature-point evaluations of the integrand.
	QuadEvals uint64 `json:"quad_evals"`
	// Flops accumulates modeled floating-point operations.
	Flops uint64 `json:"flops"`
	// BytesRead accumulates modeled memory traffic.
	BytesRead uint64 `json:"bytes_read"`
	// BytesUncoalesced is the subset of BytesRead modeled as uncoalesced
	// (scattered element-data reads in the per-point scheme).
	BytesUncoalesced uint64 `json:"bytes_uncoalesced"`
	// ScatteredLoads counts latency-bound scattered load transactions:
	// dependent global-memory fetches that cannot be coalesced with
	// neighbouring lanes (candidate element geometry and modal-coefficient
	// loads in the per-point scheme; one element-data load per element in
	// the per-element scheme). On streaming architectures these cost
	// hundreds of cycles each regardless of size, which is the effect the
	// paper's data-reuse argument targets.
	ScatteredLoads uint64 `json:"scattered_loads"`
}

// Add merges o into c.
func (c *Counters) Add(o *Counters) {
	c.IntersectionTests += o.IntersectionTests
	c.TruePositives += o.TruePositives
	c.Regions += o.Regions
	c.QuadEvals += o.QuadEvals
	c.Flops += o.Flops
	c.BytesRead += o.BytesRead
	c.BytesUncoalesced += o.BytesUncoalesced
	c.ScatteredLoads += o.ScatteredLoads
}

// Reset zeroes all counts.
func (c *Counters) Reset() { *c = Counters{} }

// String summarises the counters.
func (c *Counters) String() string {
	return fmt.Sprintf(
		"tests=%d hits=%d regions=%d quadEvals=%d flops=%d bytes=%d (uncoalesced %d) scatteredLoads=%d",
		c.IntersectionTests, c.TruePositives, c.Regions, c.QuadEvals,
		c.Flops, c.BytesRead, c.BytesUncoalesced, c.ScatteredLoads)
}

// Cost-model constants (modeled FLOPs per event). See the package comment
// for the modeling rationale.
const (
	// FlopsPerTest models the bounding-box overlap test of one candidate
	// pair: four interval comparisons plus index arithmetic.
	FlopsPerTest = 8
	// FlopsPerClipVertex models one Sutherland–Hodgman half-plane pass
	// vertex step (orientation test + possible segment intersection).
	FlopsPerClipVertex = 22
	// FlopsPerRegion models per-sub-region setup (fan triangulation entry,
	// affine map assembly, Jacobian).
	FlopsPerRegion = 24
)

// NumModes mirrors dg.NumModes to keep this package dependency-free.
func NumModes(p int) int { return (p + 1) * (p + 2) / 2 }

// FlopsPerQuadEval models one integrand evaluation at polynomial order p
// with SIAC kernel smoothness k: two kernel Horner evaluations (2k each,
// multiply-add pairs), the affine inverse map (8), the Dubiner basis
// evaluation (≈6 ops per mode) and the modal dot product (2 per mode), plus
// the final triple product and accumulation (4).
func FlopsPerQuadEval(p, k int) uint64 {
	return uint64(2*(2*k) + 8 + 8*NumModes(p) + 4)
}

// Memory-traffic model (paper §3.3–§3.4): the per-point scheme reads the
// element data, (P+1)(P+2)/2 + 3 float64 values, for every integration; the
// per-element scheme reads it once per element and only the two grid-point
// coordinates per integration.

// ElementDataBytes returns the modeled element-data payload in bytes.
func ElementDataBytes(p int) uint64 {
	return uint64(NumModes(p)+3) * 8
}

// PointDataBytes returns the modeled per-candidate read of the per-element
// scheme (the grid point's spatial offset: two float64s, contiguous by hash
// cell and therefore coalesced).
func PointDataBytes() uint64 { return 16 }

// ElementGeometryBytes is the modeled per-candidate read of the per-point
// scheme: fetching a candidate element's bounding geometry (four float64s)
// from a scattered location before the overlap test.
const ElementGeometryBytes = 32
