package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// OperatorCounters tracks the assembled-operator apply traffic and the
// row-congruence template compression the server is getting out of it.
// All fields are atomics: applies run concurrently on job workers and
// query goroutines.
type OperatorCounters struct {
	// SingleApplies counts one-field applies (ApplyVec/ApplyInto paths).
	SingleApplies atomic.Uint64
	// BlockApplies counts batched multi-field applies (ApplyBlock paths).
	BlockApplies atomic.Uint64
	// FieldsApplied counts total fields post-processed across both paths;
	// FieldsApplied / (SingleApplies + BlockApplies) is the mean batch
	// width the SpMM is amortising the operator stream over.
	FieldsApplied atomic.Uint64

	// RowsTemplated / RowsTotal accumulate, per operator admitted to the
	// cache, how many storage rows were deduplicated into shared stencil
	// templates; their ratio is the template hit-rate.
	RowsTemplated atomic.Uint64
	RowsTotal     atomic.Uint64
	// BytesSaved accumulates resident bytes saved by template dedup
	// (plain CSR size minus compressed size) across admitted operators.
	BytesSaved atomic.Uint64

	// OpsBSR / OpsCSR count operators admitted to the cache per layout
	// (blocked vs scalar index); IndexBytesSaved accumulates the resident
	// index bytes the blocked layout is saving versus scalar CSR across
	// admitted operators.
	OpsBSR          atomic.Uint64
	OpsCSR          atomic.Uint64
	IndexBytesSaved atomic.Uint64

	// SigCacheLookups / SigCacheHits accumulate the cross-assembly
	// signature-cache traffic of congruence-first assemblies: a hit skips
	// one row's canonicalisation when a variant operator (different grid
	// degree or boundary) re-hashes the same mesh.
	SigCacheLookups atomic.Uint64
	SigCacheHits    atomic.Uint64

	// Congruence-first assembly outcomes, accumulated per assembled
	// operator: rows that ran quadrature vs rows stamped from a class
	// representative, and classes whose members needed the verification
	// integration vs classes that demoted members to plain rows.
	RowsAssembled   atomic.Uint64
	RowsStamped     atomic.Uint64
	ClassesVerified atomic.Uint64
	ClassesDemoted  atomic.Uint64
	// AssemblyWallEWMA holds an exponentially weighted moving average of
	// assembly wall time in milliseconds, as float64 bits (CAS-updated:
	// assemblies can finish concurrently on job workers).
	AssemblyWallEWMA atomic.Uint64
}

// assemblyWallAlpha weights the newest assembly at 1/4 — smooth enough to
// ride out cache-admission bursts, fresh enough to track a mesh change.
const assemblyWallAlpha = 0.25

// RecordAssembly folds one congruence-first assembly outcome into the
// counters.
func (o *OperatorCounters) RecordAssembly(rowsAssembled, rowsStamped, classesVerified, classesDemoted int, wall time.Duration) {
	o.RowsAssembled.Add(uint64(rowsAssembled))
	o.RowsStamped.Add(uint64(rowsStamped))
	o.ClassesVerified.Add(uint64(classesVerified))
	o.ClassesDemoted.Add(uint64(classesDemoted))
	ms := float64(wall) / float64(time.Millisecond)
	for {
		old := o.AssemblyWallEWMA.Load()
		prev := math.Float64frombits(old)
		next := ms
		if old != 0 {
			next = prev + assemblyWallAlpha*(ms-prev)
		}
		if o.AssemblyWallEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RecordApply folds one apply of nf fields into the counters.
func (o *OperatorCounters) RecordApply(nf int) {
	if nf <= 1 {
		o.SingleApplies.Add(1)
	} else {
		o.BlockApplies.Add(1)
	}
	o.FieldsApplied.Add(uint64(nf))
}

// RecordLayout folds one operator admission's layout into the counters.
func (o *OperatorCounters) RecordLayout(blocked bool, indexBytesSaved int64) {
	if blocked {
		o.OpsBSR.Add(1)
		if indexBytesSaved > 0 {
			o.IndexBytesSaved.Add(uint64(indexBytesSaved))
		}
	} else {
		o.OpsCSR.Add(1)
	}
}

// RecordSigCache folds one assembly's signature-cache traffic into the
// counters.
func (o *OperatorCounters) RecordSigCache(lookups, hits int64) {
	if lookups > 0 {
		o.SigCacheLookups.Add(uint64(lookups))
	}
	if hits > 0 {
		o.SigCacheHits.Add(uint64(hits))
	}
}

// RecordTemplates folds one operator's compression outcome into the
// counters: total storage rows, rows resolved through a template, and the
// byte delta against the plain CSR form (0 for untemplated operators).
func (o *OperatorCounters) RecordTemplates(rowsTotal, rowsTemplated int, bytesSaved int64) {
	o.RowsTotal.Add(uint64(rowsTotal))
	o.RowsTemplated.Add(uint64(rowsTemplated))
	if bytesSaved > 0 {
		o.BytesSaved.Add(uint64(bytesSaved))
	}
}

// OperatorSnapshot is the JSON view of OperatorCounters.
type OperatorSnapshot struct {
	SingleApplies   uint64  `json:"single_applies"`
	BlockApplies    uint64  `json:"block_applies"`
	FieldsApplied   uint64  `json:"fields_applied"`
	RowsTemplated   uint64  `json:"rows_templated"`
	RowsTotal       uint64  `json:"rows_total"`
	TemplateHitRate float64 `json:"template_hit_rate"`
	BytesSaved      uint64  `json:"bytes_saved"`

	OpsBSR          uint64 `json:"ops_bsr"`
	OpsCSR          uint64 `json:"ops_csr"`
	IndexBytesSaved uint64 `json:"index_bytes_saved"`

	SigCacheLookups uint64  `json:"sig_cache_lookups"`
	SigCacheHits    uint64  `json:"sig_cache_hits"`
	SigCacheHitRate float64 `json:"sig_cache_hit_rate"`

	RowsAssembled      uint64  `json:"rows_assembled"`
	RowsStamped        uint64  `json:"rows_stamped"`
	StampRate          float64 `json:"stamp_rate"`
	ClassesVerified    uint64  `json:"classes_verified"`
	ClassesDemoted     uint64  `json:"classes_demoted"`
	AssemblyWallEWMAMs float64 `json:"assembly_wall_ewma_ms"`
}

// Snapshot reads all counters at one (non-atomic across fields) instant.
func (o *OperatorCounters) Snapshot() OperatorSnapshot {
	s := OperatorSnapshot{
		SingleApplies:      o.SingleApplies.Load(),
		BlockApplies:       o.BlockApplies.Load(),
		FieldsApplied:      o.FieldsApplied.Load(),
		RowsTemplated:      o.RowsTemplated.Load(),
		RowsTotal:          o.RowsTotal.Load(),
		BytesSaved:         o.BytesSaved.Load(),
		OpsBSR:             o.OpsBSR.Load(),
		OpsCSR:             o.OpsCSR.Load(),
		IndexBytesSaved:    o.IndexBytesSaved.Load(),
		SigCacheLookups:    o.SigCacheLookups.Load(),
		SigCacheHits:       o.SigCacheHits.Load(),
		RowsAssembled:      o.RowsAssembled.Load(),
		RowsStamped:        o.RowsStamped.Load(),
		ClassesVerified:    o.ClassesVerified.Load(),
		ClassesDemoted:     o.ClassesDemoted.Load(),
		AssemblyWallEWMAMs: math.Float64frombits(o.AssemblyWallEWMA.Load()),
	}
	if s.RowsTotal > 0 {
		s.TemplateHitRate = float64(s.RowsTemplated) / float64(s.RowsTotal)
	}
	if total := s.RowsAssembled + s.RowsStamped; total > 0 {
		s.StampRate = float64(s.RowsStamped) / float64(total)
	}
	if s.SigCacheLookups > 0 {
		s.SigCacheHitRate = float64(s.SigCacheHits) / float64(s.SigCacheLookups)
	}
	return s
}
