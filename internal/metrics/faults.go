package metrics

import "sync/atomic"

// FaultCounters tracks the fault-tolerance layer's recovery activity:
// panics converted to errors, retries at tile and job granularity, tiles
// that exhausted their retry budget, jobs completed degraded, and jobs
// re-enqueued from the crash-recovery journal. All fields are atomic so the
// evaluation workers, the job manager and the HTTP layer can share one
// instance without locking.
type FaultCounters struct {
	// PanicsRecovered counts panics caught by a recovery layer (per-tile,
	// per-block, job worker, or HTTP middleware) and converted into errors.
	PanicsRecovered atomic.Uint64
	// TileRetries counts per-tile / per-block attempt repeats inside one
	// evaluation.
	TileRetries atomic.Uint64
	// JobRetries counts whole-job attempt repeats by the job manager.
	JobRetries atomic.Uint64
	// TilesFailed counts tiles/blocks that exhausted their retry budget.
	TilesFailed atomic.Uint64
	// DegradedJobs counts jobs completed with partial coverage.
	DegradedJobs atomic.Uint64
	// JobsReplayed counts jobs re-enqueued from the journal after a restart.
	JobsReplayed atomic.Uint64
}

// FaultSnapshot is the JSON view of FaultCounters.
type FaultSnapshot struct {
	PanicsRecovered uint64 `json:"panics_recovered"`
	TileRetries     uint64 `json:"tile_retries"`
	JobRetries      uint64 `json:"job_retries"`
	TilesFailed     uint64 `json:"tiles_failed"`
	DegradedJobs    uint64 `json:"degraded_jobs"`
	JobsReplayed    uint64 `json:"jobs_replayed"`
}

// Snapshot reads all counters at one (non-atomic across fields) instant.
func (f *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		PanicsRecovered: f.PanicsRecovered.Load(),
		TileRetries:     f.TileRetries.Load(),
		JobRetries:      f.JobRetries.Load(),
		TilesFailed:     f.TilesFailed.Load(),
		DegradedJobs:    f.DegradedJobs.Load(),
		JobsReplayed:    f.JobsReplayed.Load(),
	}
}
