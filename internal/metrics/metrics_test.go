package metrics

import (
	"strings"
	"testing"
)

func TestAdd(t *testing.T) {
	a := Counters{IntersectionTests: 1, TruePositives: 2, Regions: 3,
		QuadEvals: 4, Flops: 5, BytesRead: 6, BytesUncoalesced: 7}
	b := Counters{IntersectionTests: 10, TruePositives: 20, Regions: 30,
		QuadEvals: 40, Flops: 50, BytesRead: 60, BytesUncoalesced: 70}
	a.Add(&b)
	want := Counters{IntersectionTests: 11, TruePositives: 22, Regions: 33,
		QuadEvals: 44, Flops: 55, BytesRead: 66, BytesUncoalesced: 77}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestReset(t *testing.T) {
	a := Counters{Flops: 5}
	a.Reset()
	if a != (Counters{}) {
		t.Fatal("Reset did not zero")
	}
}

func TestString(t *testing.T) {
	a := Counters{IntersectionTests: 42}
	if !strings.Contains(a.String(), "tests=42") {
		t.Errorf("String = %q", a.String())
	}
}

func TestNumModes(t *testing.T) {
	for p, want := range map[int]int{1: 3, 2: 6, 3: 10} {
		if NumModes(p) != want {
			t.Errorf("NumModes(%d) = %d, want %d", p, NumModes(p), want)
		}
	}
}

func TestFlopsPerQuadEvalGrowsWithOrder(t *testing.T) {
	prev := uint64(0)
	for p := 1; p <= 4; p++ {
		f := FlopsPerQuadEval(p, p)
		if f <= prev {
			t.Errorf("FlopsPerQuadEval(%d) = %d not increasing", p, f)
		}
		prev = f
	}
}

func TestElementDataBytes(t *testing.T) {
	// Paper §3.3: (P+1)(P+2)/2 + 3 values per integration. For P=1: 6
	// values = 48 bytes.
	if got := ElementDataBytes(1); got != 48 {
		t.Errorf("ElementDataBytes(1) = %d, want 48", got)
	}
	if got := ElementDataBytes(3); got != (10+3)*8 {
		t.Errorf("ElementDataBytes(3) = %d", got)
	}
	if PointDataBytes() != 16 {
		t.Error("PointDataBytes should be two float64s")
	}
}
