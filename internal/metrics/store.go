package metrics

import "sync/atomic"

// StoreCounters is the telemetry of the persistent artifact store: the
// disk tier under the in-memory LRU. DiskHits are cache misses answered
// from disk instead of recomputation — the warm-cold-start effect the
// store exists for.
type StoreCounters struct {
	// DiskHits counts loads served from a stored artifact.
	DiskHits atomic.Uint64
	// DiskMisses counts loads where no (valid) artifact was on disk and
	// the artifact had to be recomputed.
	DiskMisses atomic.Uint64
	// CorruptRejected counts stored artifacts refused at load time (CRC,
	// key, or hash mismatch) and deleted.
	CorruptRejected atomic.Uint64
	// Writes counts artifacts persisted.
	Writes atomic.Uint64
	// WriteErrors counts failed persists (the artifact stays resident;
	// only durability degrades).
	WriteErrors atomic.Uint64
	// BytesWritten accumulates encoded artifact bytes written.
	BytesWritten atomic.Uint64
	// TornFilesGCd counts files removed by startup GC (interrupted
	// writes, undecodable headers).
	TornFilesGCd atomic.Uint64
}

// StoreSnapshot is the JSON view of StoreCounters.
type StoreSnapshot struct {
	DiskHits        uint64 `json:"disk_hits"`
	DiskMisses      uint64 `json:"disk_misses"`
	CorruptRejected uint64 `json:"corrupt_rejected"`
	Writes          uint64 `json:"writes"`
	WriteErrors     uint64 `json:"write_errors"`
	BytesWritten    uint64 `json:"bytes_written"`
	TornFilesGCd    uint64 `json:"torn_files_gcd"`
}

// Snapshot returns current values.
func (s *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		DiskHits:        s.DiskHits.Load(),
		DiskMisses:      s.DiskMisses.Load(),
		CorruptRejected: s.CorruptRejected.Load(),
		Writes:          s.Writes.Load(),
		WriteErrors:     s.WriteErrors.Load(),
		BytesWritten:    s.BytesWritten.Load(),
		TornFilesGCd:    s.TornFilesGCd.Load(),
	}
}
