package metrics

import "sync/atomic"

// ClusterCounters tracks the coordinator's routing and robustness activity:
// traffic routed to shards, retries and Retry-After waits against
// individual shards, hedged reads and which ones won, failovers to
// alternate shards, mesh re-seeds of amnesiac shards, coverage probes, and
// jobs completed degraded because a shard stayed down past its budget. All
// fields are atomic so the request handlers, the distributed-job workers
// and the health checker share one instance without locking.
type ClusterCounters struct {
	// MeshFanouts counts mesh uploads fanned out to the shard set.
	MeshFanouts atomic.Uint64
	// MeshReseeds counts meshes re-uploaded to a shard that answered
	// "mesh not resident" (a restarted shard without a persistent store).
	MeshReseeds atomic.Uint64
	// QueriesRouted counts /v1/query requests forwarded to a shard.
	QueriesRouted atomic.Uint64
	// JobsRouted counts whole jobs forwarded to a single shard
	// (per-point and operator schemes).
	JobsRouted atomic.Uint64
	// JobsDistributed counts per-element jobs fanned out as patch sets.
	JobsDistributed atomic.Uint64
	// ShardRequests counts every HTTP request sent to a shard.
	ShardRequests atomic.Uint64
	// Retries counts re-attempts of a shard request after a transient
	// failure (transport error or 5xx).
	Retries atomic.Uint64
	// RetryAfterWaits counts retries that honored a server-provided
	// Retry-After delay instead of the default backoff.
	RetryAfterWaits atomic.Uint64
	// Hedges counts hedged duplicate reads launched after the hedge delay.
	Hedges atomic.Uint64
	// HedgeWins counts hedged reads that finished before the primary.
	HedgeWins atomic.Uint64
	// Failovers counts work moved to an alternate shard after the primary
	// exhausted its retry budget.
	Failovers atomic.Uint64
	// ShardFailures counts shard interactions that exhausted retries.
	ShardFailures atomic.Uint64
	// CoverageProbes counts shard queries for the uncovered-point set of
	// failed patches (the degraded-merge bookkeeping).
	CoverageProbes atomic.Uint64
	// DegradedJobs counts cluster jobs completed with partial coverage.
	DegradedJobs atomic.Uint64
}

// ClusterSnapshot is the JSON view of ClusterCounters.
type ClusterSnapshot struct {
	MeshFanouts     uint64 `json:"mesh_fanouts"`
	MeshReseeds     uint64 `json:"mesh_reseeds"`
	QueriesRouted   uint64 `json:"queries_routed"`
	JobsRouted      uint64 `json:"jobs_routed"`
	JobsDistributed uint64 `json:"jobs_distributed"`
	ShardRequests   uint64 `json:"shard_requests"`
	Retries         uint64 `json:"retries"`
	RetryAfterWaits uint64 `json:"retry_after_waits"`
	Hedges          uint64 `json:"hedges"`
	HedgeWins       uint64 `json:"hedge_wins"`
	Failovers       uint64 `json:"failovers"`
	ShardFailures   uint64 `json:"shard_failures"`
	CoverageProbes  uint64 `json:"coverage_probes"`
	DegradedJobs    uint64 `json:"degraded_jobs"`
}

// Snapshot reads all counters at one (non-atomic across fields) instant.
func (c *ClusterCounters) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		MeshFanouts:     c.MeshFanouts.Load(),
		MeshReseeds:     c.MeshReseeds.Load(),
		QueriesRouted:   c.QueriesRouted.Load(),
		JobsRouted:      c.JobsRouted.Load(),
		JobsDistributed: c.JobsDistributed.Load(),
		ShardRequests:   c.ShardRequests.Load(),
		Retries:         c.Retries.Load(),
		RetryAfterWaits: c.RetryAfterWaits.Load(),
		Hedges:          c.Hedges.Load(),
		HedgeWins:       c.HedgeWins.Load(),
		Failovers:       c.Failovers.Load(),
		ShardFailures:   c.ShardFailures.Load(),
		CoverageProbes:  c.CoverageProbes.Load(),
		DegradedJobs:    c.DegradedJobs.Load(),
	}
}
