package metrics

import "sync"

// TotalSnapshot is one keyed aggregate in a Totals snapshot.
type TotalSnapshot struct {
	// Runs is how many times Record was called for the key.
	Runs uint64 `json:"runs"`
	// Counters is the element-wise sum of every recorded Counters value.
	Counters Counters `json:"counters"`
}

// Totals aggregates Counters by an arbitrary string key (scheme name, mesh
// id, endpoint, ...) from concurrently executing recorders, and produces
// consistent point-in-time snapshots. It is the bridge between the
// per-run Counters this package has always provided and a long-running
// process that must report cumulative per-scheme totals over its lifetime
// (e.g. the unstencild /debug/metrics endpoint). The zero value is NOT
// ready; use NewTotals.
type Totals struct {
	mu    sync.Mutex
	byKey map[string]*TotalSnapshot
}

// NewTotals returns an empty collector.
func NewTotals() *Totals {
	return &Totals{byKey: make(map[string]*TotalSnapshot)}
}

// Record merges c into the aggregate for key. Safe for concurrent use; c is
// not retained.
func (t *Totals) Record(key string, c *Counters) {
	t.mu.Lock()
	agg := t.byKey[key]
	if agg == nil {
		agg = &TotalSnapshot{}
		t.byKey[key] = agg
	}
	agg.Runs++
	agg.Counters.Add(c)
	t.mu.Unlock()
}

// Snapshot returns a copy of every keyed aggregate, consistent with respect
// to concurrent Record calls (each recorded Counters value is either fully
// present or fully absent).
func (t *Totals) Snapshot() map[string]TotalSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TotalSnapshot, len(t.byKey))
	for k, v := range t.byKey {
		out[k] = *v
	}
	return out
}

// Reset discards all aggregates.
func (t *Totals) Reset() {
	t.mu.Lock()
	t.byKey = make(map[string]*TotalSnapshot)
	t.mu.Unlock()
}
