package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestTotalsRecordAndSnapshot(t *testing.T) {
	tot := NewTotals()
	tot.Record("per-point", &Counters{IntersectionTests: 3, Flops: 10})
	tot.Record("per-point", &Counters{IntersectionTests: 2, Flops: 5})
	tot.Record("per-element", &Counters{Regions: 7})

	snap := tot.Snapshot()
	pp := snap["per-point"]
	if pp.Runs != 2 || pp.Counters.IntersectionTests != 5 || pp.Counters.Flops != 15 {
		t.Errorf("per-point aggregate wrong: %+v", pp)
	}
	if pe := snap["per-element"]; pe.Runs != 1 || pe.Counters.Regions != 7 {
		t.Errorf("per-element aggregate wrong: %+v", pe)
	}

	// Snapshots are copies: mutating the snapshot must not leak back.
	pp.Counters.Flops = 999
	if tot.Snapshot()["per-point"].Counters.Flops != 15 {
		t.Error("snapshot aliases internal state")
	}

	tot.Reset()
	if len(tot.Snapshot()) != 0 {
		t.Error("Reset left aggregates behind")
	}
}

func TestTotalsConcurrent(t *testing.T) {
	tot := NewTotals()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tot.Record("k", &Counters{QuadEvals: 1})
				_ = tot.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := tot.Snapshot()["k"]; got.Runs != workers*per || got.Counters.QuadEvals != workers*per {
		t.Errorf("lost updates: %+v", got)
	}
}

func TestCountersJSONTags(t *testing.T) {
	b, err := json.Marshal(Counters{IntersectionTests: 1, ScatteredLoads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"intersection_tests", "true_positives", "regions", "quad_evals",
		"flops", "bytes_read", "bytes_uncoalesced", "scattered_loads",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled Counters missing %q: %s", key, b)
		}
	}
}

func TestFaultCountersSnapshot(t *testing.T) {
	var f FaultCounters
	f.PanicsRecovered.Add(2)
	f.TileRetries.Add(3)
	f.JobRetries.Add(1)
	f.TilesFailed.Add(4)
	f.DegradedJobs.Add(5)
	f.JobsReplayed.Add(6)
	got := f.Snapshot()
	want := FaultSnapshot{PanicsRecovered: 2, TileRetries: 3, JobRetries: 1,
		TilesFailed: 4, DegradedJobs: 5, JobsReplayed: 6}
	if got != want {
		t.Fatalf("snapshot %+v, want %+v", got, want)
	}
}
