package bench

import (
	"testing"
)

// TestArtifactColdStartSmoke is the CI gate on the persistent-store trade:
// assemble an operator on the fixed-seed mesh, persist it, load it back
// (assembly → persist → cold load → apply), and require the loaded
// operator's output to agree with the original's at 1e-12 — in practice it
// is bit-identical, since the stored arrays are the in-memory bytes — and
// the encoded-size accounting to be populated for the trajectory file.
func TestArtifactColdStartSmoke(t *testing.T) {
	cfg := ArtifactConfig{Size: 200, Orders: []int{1}, Seed: 1}
	rep, err := RunArtifact(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("%d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.MaxDiff > 1e-12 {
		t.Errorf("loaded operator diverges from the assembled one by %.3e", r.MaxDiff)
	}
	if r.MeshBytes <= 0 || r.FieldBytes <= 0 || r.OperatorBytes <= 0 {
		t.Errorf("encoded sizes not recorded: mesh=%d field=%d operator=%d",
			r.MeshBytes, r.FieldBytes, r.OperatorBytes)
	}
	if r.NNZ <= 0 || r.BytesPerNNZ <= 0 {
		t.Errorf("nnz accounting not recorded: nnz=%d bytes/nnz=%.2f", r.NNZ, r.BytesPerNNZ)
	}
	if r.LoadMappedMS <= 0 || r.AssembleMS <= 0 {
		t.Errorf("timings not recorded: assemble=%.3f load=%.3f", r.AssembleMS, r.LoadMappedMS)
	}
	// The acceptance bar is 10×; CI runners are noisy, so gate the smoke at
	// a conservative 2× and leave the real number to the trajectory file.
	if r.LoadSpeedup < 2 {
		t.Errorf("disk load only %.1fx faster than re-assembly", r.LoadSpeedup)
	}
}
