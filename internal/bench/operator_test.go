package bench

import (
	"math"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
)

// TestOperatorSmoke is the CI smoke the bench job runs under -race: assemble
// on the benchmark's 1k-element mesh and assert the sparse apply agrees with
// direct per-point evaluation at 1e-12.
func TestOperatorSmoke(t *testing.T) {
	cfg := DefaultOperatorConfig()
	m, err := mesh.SizedLowVariance(cfg.Size, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	f := dg.Project(m, 1, testField, 2)
	ev, err := core.NewEvaluator(f, core.Options{P: 1, GridDegree: -1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.RunPerPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.PerPoint, core.PerElement} {
		op, err := ev.AssembleOperator(core.AssembleOpts{Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		got, err := op.Apply(ev.Field)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range got {
			if d := math.Abs(got[i] - direct.Solution[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-12 {
			t.Errorf("%v assembly: apply vs direct max diff %.3e > 1e-12", scheme, worst)
		}
		if op.NNZ() == 0 {
			t.Errorf("%v assembly produced an empty operator", scheme)
		}
	}
}
