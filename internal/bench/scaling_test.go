package bench

import (
	"math"
	"path/filepath"
	"testing"

	"unstencil/internal/device"
)

// TestScalingAgreement is the CI scaling smoke: a small sweep at workers
// {1, 2} across all three schemes must report parallel solutions
// bit-identical to serial (the acceptance gate the full BENCH_PR4.json run
// enforces at every worker count).
func TestScalingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep under -short")
	}
	cfg := ScalingConfig{
		Size:    240,
		Orders:  []int{1},
		Seed:    1,
		Patches: 8,
		Workers: []int{1, 2},
	}
	rep, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * len(cfg.Workers) // three schemes
	if len(rep.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), wantRows)
	}
	for _, r := range rep.Rows {
		if !r.BitIdentical || r.MaxAbsDiffVsSerial != 0 {
			t.Errorf("%s/P%d workers=%d: diverged from serial by %g",
				r.Scheme, r.P, r.Workers, r.MaxAbsDiffVsSerial)
		}
		if r.MaxAbsDiffVsSerial > 1e-12 {
			t.Errorf("%s/P%d workers=%d: divergence %g above 1e-12",
				r.Scheme, r.P, r.Workers, r.MaxAbsDiffVsSerial)
		}
		if r.ModelUnits <= 0 || r.WallNsPerOp <= 0 {
			t.Errorf("%s/P%d workers=%d: empty timing row %+v", r.Scheme, r.P, r.Workers, r)
		}
		if r.Workers == 1 && math.Abs(r.ModelSpeedup-1) > 1e-9 {
			t.Errorf("%s/P%d: serial model speedup = %v, want 1", r.Scheme, r.P, r.ModelSpeedup)
		}
		// Pipelined colour waves can be fully serial on tiny meshes (every
		// patch conflicts -> one patch per wave), so only the overlapped
		// schemes must model real scaling here.
		if r.Workers > 1 && r.Scheme != "pipelined" && r.ModelSpeedup <= 1 {
			t.Errorf("%s/P%d workers=%d: model speedup %v, want > 1",
				r.Scheme, r.P, r.Workers, r.ModelSpeedup)
		}
		if r.Workers > 1 && r.ModelSpeedup < 1 {
			t.Errorf("%s/P%d workers=%d: model speedup %v below serial",
				r.Scheme, r.P, r.Workers, r.ModelSpeedup)
		}
	}
	if rep.SpeedupBasis == "" || rep.NumCPU < 1 {
		t.Errorf("report metadata incomplete: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "scaling.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestLPTMakespan pins the pool model's scheduler on hand-checkable inputs.
func TestLPTMakespan(t *testing.T) {
	costs := []float64{7, 5, 4, 3, 1}
	if got := device.LPTMakespan(costs, 1); got != 20 {
		t.Errorf("serial makespan = %v, want 20", got)
	}
	// Two workers, LPT: 7+3=10 vs 5+4+1=10.
	if got := device.LPTMakespan(costs, 2); got != 10 {
		t.Errorf("2-worker makespan = %v, want 10", got)
	}
	// More workers than units: bound by the largest unit.
	if got := device.LPTMakespan(costs, 16); got != 7 {
		t.Errorf("16-worker makespan = %v, want 7", got)
	}
	if got := device.LPTMakespan(nil, 4); got != 0 {
		t.Errorf("empty makespan = %v, want 0", got)
	}
}

// TestPoolReduction checks the two-stage reduction charge scales down with
// workers while keeping the per-worker merge term.
func TestPoolReduction(t *testing.T) {
	tm := device.Pool{Workers: 4}.Run([]float64{10, 10, 10, 10}, 100)
	wantRed := 100.0/4 + 4*device.CoalescedWordCost
	if tm.Reduction != wantRed {
		t.Errorf("reduction = %v, want %v", tm.Reduction, wantRed)
	}
	if tm.Compute != 10 {
		t.Errorf("compute = %v, want 10", tm.Compute)
	}
	if tm.Total != tm.Compute+tm.Reduction {
		t.Errorf("total = %v, want compute+reduction", tm.Total)
	}
}
