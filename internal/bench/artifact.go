package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"unstencil/internal/artifact"
	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
)

// ArtifactConfig parameterises the cold-start sweep cmd/unstencil-bench runs
// with -artifact and CI records as BENCH_PR6.json. It measures the trade the
// persistent store makes: paying one encoded file per operator to turn every
// later cold start's re-assembly into a disk load.
type ArtifactConfig struct {
	// Size is the approximate triangle count of the fixed-seed mesh.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Seed fixes the mesh generator so runs compare across commits.
	Seed int64
	// Workers bounds assembly concurrency; 0 follows GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// DefaultArtifactConfig mirrors the operator sweep's mesh so BENCH_PR5 and
// BENCH_PR6 describe the same workload from the two ends of a restart.
func DefaultArtifactConfig() ArtifactConfig {
	return ArtifactConfig{Size: 1000, Orders: []int{1, 2}, Seed: 1}
}

// ArtifactResult is one order's measurements: what re-assembly costs next to
// loading the persisted operator (the cold-start question), the encoded
// artifact sizes (the tinygpkg-style bytes-per-artifact trajectory), and the
// proof that the loaded operator produces identical output.
type ArtifactResult struct {
	P int `json:"p"`

	// Cold-start alternatives for one operator: re-assemble, or load the
	// artifact (mapped where the platform allows, and the portable decode).
	AssembleMS     float64 `json:"assemble_ms"`
	LoadMappedMS   float64 `json:"load_mapped_ms"`
	LoadPortableMS float64 `json:"load_portable_ms"`
	// LoadSpeedup is AssembleMS / LoadMappedMS: how much faster a warm
	// restart answers the first operator job.
	LoadSpeedup float64 `json:"load_speedup"`
	// Mapped reports whether the mapped load actually used mmap here.
	Mapped bool `json:"mapped"`

	// Encoded artifact sizes.
	MeshBytes     int64   `json:"mesh_bytes"`
	FieldBytes    int64   `json:"field_bytes"`
	OperatorBytes int64   `json:"operator_bytes"`
	NNZ           int     `json:"nnz"`
	BytesPerNNZ   float64 `json:"bytes_per_nnz"`

	// MaxDiff is the worst |loaded apply − original apply| across the grid;
	// anything above zero would mean the store changed the numbers.
	MaxDiff float64 `json:"max_diff"`
}

// ArtifactReport is the BENCH_PR6.json document.
type ArtifactReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Config     ArtifactConfig   `json:"config"`
	Results    []ArtifactResult `json:"results"`
}

// RunArtifact executes the cold-start sweep in dir (a scratch directory the
// caller owns; pass "" for a temp dir).
func RunArtifact(cfg ArtifactConfig, dir string) (*ArtifactReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultArtifactConfig()
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "unstencil-artifact-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := artifact.NewStore(dir, nil)
	if err != nil {
		return nil, err
	}
	rep := &ArtifactReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	m, err := mesh.SizedLowVariance(cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	meshID, err := store.SaveMesh(m)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(store.Path("mesh:" + meshID)); err == nil {
		for range cfg.Orders {
			rep.Results = append(rep.Results, ArtifactResult{MeshBytes: fi.Size()})
		}
	} else {
		return nil, err
	}

	for i, p := range cfg.Orders {
		res := &rep.Results[i]
		res.P = p
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, GridDegree: -1, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}

		fieldKey := fmt.Sprintf("field:%s/p%d/bench", meshID, p)
		if err := store.SaveField(fieldKey, f); err != nil {
			return nil, err
		}
		if fi, err := os.Stat(store.Path(fieldKey)); err == nil {
			res.FieldBytes = fi.Size()
		}

		// The cold-start contenders. Assembly is a one-off per restart, so
		// one timed run (not a b.N loop) is the honest measurement.
		opKey := fmt.Sprintf("op:%s/p%d/g%d/bench", meshID, p, ev.Opt.GridDegree)
		start := time.Now()
		op, err := ev.AssembleOperator(core.AssembleOpts{})
		if err != nil {
			return nil, err
		}
		res.AssembleMS = float64(time.Since(start)) / float64(time.Millisecond)
		if err := store.SaveOperator(opKey, op); err != nil {
			return nil, err
		}
		if fi, err := os.Stat(store.Path(opKey)); err == nil {
			res.OperatorBytes = fi.Size()
		}
		res.NNZ = op.NNZ()
		if res.NNZ > 0 {
			res.BytesPerNNZ = float64(res.OperatorBytes) / float64(res.NNZ)
		}

		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lop, mapped, err := store.LoadOperator(opKey, true)
				if err != nil {
					b.Fatal(err)
				}
				res.Mapped = mapped
				_ = lop
			}
		})
		res.LoadMappedMS = float64(br.T.Nanoseconds()) / float64(br.N) / float64(time.Millisecond)
		br = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := store.LoadOperator(opKey, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.LoadPortableMS = float64(br.T.Nanoseconds()) / float64(br.N) / float64(time.Millisecond)
		if res.LoadMappedMS > 0 {
			res.LoadSpeedup = res.AssembleMS / res.LoadMappedMS
		}

		// Identity proof: the loaded operator's apply vs the original's.
		lop, _, err := store.LoadOperator(opKey, true)
		if err != nil {
			return nil, err
		}
		want, err := op.Apply(ev.Field)
		if err != nil {
			return nil, err
		}
		got, err := lop.Apply(ev.Field)
		if err != nil {
			return nil, err
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > res.MaxDiff {
				res.MaxDiff = d
			}
		}
	}
	return rep, nil
}

// Fprint renders the sweep as a table.
func (rep *ArtifactReport) Fprint(w *os.File) {
	fmt.Fprintf(w, "%-4s %12s %12s %12s %9s %7s %12s %10s %10s\n",
		"P", "assemble ms", "load ms", "portable ms", "speedup", "mmap", "op bytes", "B/nnz", "max diff")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "P%-3d %12.1f %12.3f %12.3f %8.0fx %7v %12d %10.2f %10.2e\n",
			r.P, r.AssembleMS, r.LoadMappedMS, r.LoadPortableMS,
			r.LoadSpeedup, r.Mapped, r.OperatorBytes, r.BytesPerNNZ, r.MaxDiff)
	}
}

// Save writes the report as stable, indented JSON.
func (rep *ArtifactReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
