package bench

import "testing"

// A reduced sweep proving the harness end to end: both layouts assemble,
// every measurement carries a bitwise max_diff of exactly 0, and the
// blocked layout saves index bytes at every order.
func TestBSRSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs real benchmarks")
	}
	rep, err := RunBSR(BSRConfig{Size: 6, Orders: []int{1, 2}, Fields: []int{1, 4}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shapes) != 2 {
		t.Fatalf("shapes: %+v", rep.Shapes)
	}
	for _, s := range rep.Shapes {
		if s.BytesBSR >= s.BytesCSR || s.IndexBytesSaved <= 0 {
			t.Errorf("P%d: blocked layout did not shrink (%d vs %d, saved %d)",
				s.P, s.BytesBSR, s.BytesCSR, s.IndexBytesSaved)
		}
		if s.BytesCSR-s.BytesBSR != s.IndexBytesSaved {
			t.Errorf("P%d: byte gap %d disagrees with IndexBytesSaved %d",
				s.P, s.BytesCSR-s.BytesBSR, s.IndexBytesSaved)
		}
	}
	// 2 orders × 2 widths × {plain, templated} (structured meshes templatize
	// at both orders).
	if len(rep.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.MaxDiff != 0 {
			t.Errorf("P%d f%d templated=%v: max diff %g, want bitwise identity",
				r.P, r.Fields, r.Templated, r.MaxDiff)
		}
		if r.NsCSR <= 0 || r.NsBSR <= 0 || r.Speedup <= 0 {
			t.Errorf("P%d f%d: degenerate timings %+v", r.P, r.Fields, r)
		}
	}
	if gha := rep.GHA(); len(gha) != len(rep.Results)+len(rep.Shapes) {
		t.Errorf("GHA entries %d, want %d", len(gha), len(rep.Results)+len(rep.Shapes))
	}
	if md := rep.Markdown(); len(md) == 0 {
		t.Error("empty markdown table")
	}
}
