package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps unit tests fast: one small size, low orders, sparse grid.
func tinyConfig() Config {
	return Config{
		Sizes:      []int{300},
		Orders:     []int{1},
		Patches:    4,
		Devices:    []int{1, 2},
		Seed:       1,
		Grading:    8,
		GridDegree: -1,
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	s, err := NewSession(Config{Sizes: []int{100}, Orders: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Patches != 16 || len(s.Cfg.Devices) != 4 || s.Cfg.Grading != 16 {
		t.Errorf("defaults not applied: %+v", s.Cfg)
	}
}

func TestMeshCaching(t *testing.T) {
	s, err := NewSession(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Mesh(LowVariance, 300)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Mesh(LowVariance, 300)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("mesh should be cached")
	}
	hv, err := s.Mesh(HighVariance, 300)
	if err != nil {
		t.Fatal(err)
	}
	if hv == m1 {
		t.Error("kinds must be cached separately")
	}
	if hv.Stats().CV <= m1.Stats().CV {
		t.Error("HV mesh should have higher edge-length variance")
	}
}

func TestSizeLabel(t *testing.T) {
	if sizeLabel(4000) != "4k" || sizeLabel(1024000) != "1024k" || sizeLabel(512) != "512" {
		t.Error("sizeLabel wrong")
	}
}

func TestTableFprint(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Header: []string{"A", "BB"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "A", "BB", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	pp := parseCell(t, tb.Rows[0][1])
	pe := parseCell(t, tb.Rows[0][2])
	if pp <= pe {
		t.Errorf("per-point tests (%v) must exceed per-element (%v)", pp, pe)
	}
	// The paper's ratio is ~1.9x; ours should land in a broad band around
	// that.
	ratio := pp / pe
	if ratio < 1.2 || ratio > 5 {
		t.Errorf("test ratio %.2f outside plausible band", ratio)
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{300, 2000}
	s, _ := NewSession(cfg)
	tb, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	small := parseCell(t, tb.Rows[0][2])
	large := parseCell(t, tb.Rows[1][2])
	if small <= 1 || large <= 1 {
		t.Errorf("overheads must exceed 1: %v, %v", small, large)
	}
	if large >= small {
		t.Errorf("overhead should decrease with size: %v -> %v", small, large)
	}
}

func TestFlopSweepAndFig13(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	g, sp, err := s.FlopSweep(LowVariance)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 1 || len(sp.Rows) != 1 {
		t.Fatalf("unexpected row counts %d, %d", len(g.Rows), len(sp.Rows))
	}
	pe := parseCell(t, g.Rows[0][1])
	pp := parseCell(t, g.Rows[0][2])
	if pe <= pp {
		t.Errorf("per-element GFLOP/s (%v) should exceed per-point (%v)", pe, pp)
	}
	speedup := parseCell(t, sp.Rows[0][1])
	if speedup <= 1 {
		t.Errorf("per-element speedup %v should exceed 1", speedup)
	}
	f13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if parseCell(t, f13.Rows[0][1]) != speedup {
		t.Error("fig13 LV column should reuse the sweep result")
	}
	// HV speedup should be at least comparable to LV (paper: larger).
	hv := parseCell(t, f13.Rows[0][2])
	if hv <= 0.8 {
		t.Errorf("HV speedup %v implausibly low", hv)
	}
}

func TestFig14Scaling(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	t1 := parseCell(t, tb.Rows[0][1])
	t2 := parseCell(t, tb.Rows[0][2])
	if t2 >= t1 {
		t.Errorf("2 devices (%v ms) should beat 1 device (%v ms)", t2, t1)
	}
	sp := parseCell(t, tb.Rows[0][len(tb.Rows[0])-1])
	if sp < 1.5 {
		t.Errorf("scaling speedup %v too low", sp)
	}
}

func TestCellSweep(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.CellSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Larger per-point cells examine more candidates.
	cp1 := parseCell(t, tb.Rows[0][1])
	cp3 := parseCell(t, tb.Rows[3][1])
	if cp3 <= cp1 {
		t.Errorf("cp=3s tests (%v) should exceed cp=s (%v)", cp3, cp1)
	}
}

func TestTilingComparison(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.TilingComparison()
	if err != nil {
		t.Fatal(err)
	}
	over := parseCell(t, tb.Rows[0][1])
	pipe := parseCell(t, tb.Rows[0][2])
	if pipe < over {
		t.Errorf("pipelined (%v ms) should not beat overlapped (%v ms)", pipe, over)
	}
}

func TestPatchSweep(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.PatchSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	o4 := parseCell(t, tb.Rows[0][1])
	o64 := parseCell(t, tb.Rows[4][1])
	if o64 <= o4 {
		t.Errorf("overhead should grow with patches: %v -> %v", o4, o64)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, _ := NewSession(tinyConfig())
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "fig8", "fig11", "fig12", "fig13", "fig14",
		"cellsweep", "tiling", "patches", "spatial"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("got %d tables", len(tables))
	}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Errorf("table %d id %q, want %q", i, tb.ID, wantIDs[i])
		}
		if len(tb.Rows) == 0 {
			t.Errorf("table %s empty", tb.ID)
		}
	}
}

func TestSpatialSweep(t *testing.T) {
	s, _ := NewSession(tinyConfig())
	tb, err := s.SpatialSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Exact structures (rows 1-3) must agree with each other on candidate
	// counts, and the hash grid (row 0) must return at least as many.
	kd := parseCell(t, tb.Rows[1][3])
	qt := parseCell(t, tb.Rows[2][3])
	bv := parseCell(t, tb.Rows[3][3])
	if kd != qt || qt != bv {
		t.Errorf("exact index counts disagree: %v %v %v", kd, qt, bv)
	}
	hg := parseCell(t, tb.Rows[0][3])
	if hg < kd {
		t.Errorf("hash grid candidates %v below exact count %v", hg, kd)
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("4k, 16000,1024k")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4000, 16000, 1024000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseSizes = %v", got)
		}
	}
	for _, bad := range []string{"", "x", "-4", "0", "4k,"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) should fail", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("ParseInts = %v", got)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("bad int should fail")
	}
}
