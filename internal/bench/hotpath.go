package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// HotPathConfig parameterises the fixed-seed hot-path benchmark suite that
// cmd/unstencil-bench runs and CI regresses against. The defaults are sized
// so the whole suite finishes in well under a minute on one core.
type HotPathConfig struct {
	// Size is the approximate triangle count of the benchmark mesh.
	Size int
	// Orders are the dG polynomial orders swept by the scheme benchmarks.
	Orders []int
	// Seed fixes the mesh generator so runs are comparable across commits.
	Seed int64
	// Patches is the per-element tiling patch count.
	Patches int
	// OneSidedN is the structured-mesh resolution of the one-sided sweep
	// (kernel-construction bound, so it stays small).
	OneSidedN int
	// Workers bounds the evaluators' execution concurrency; 0 follows
	// GOMAXPROCS. The effective value is recorded per result, so trajectory
	// files from hosts with different core counts compare honestly.
	Workers int `json:"workers,omitempty"`
}

// EffectiveWorkers resolves the configured worker count against GOMAXPROCS.
func (c HotPathConfig) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultHotPathConfig returns the suite configuration used by CI and by
// the committed BENCH_PR3.json trajectory file.
func DefaultHotPathConfig() HotPathConfig {
	return HotPathConfig{
		Size:      1000,
		Orders:    []int{1, 2},
		Seed:      1,
		Patches:   16,
		OneSidedN: 8,
	}
}

// HotPathResult is one benchmark case of the suite. NsPerOp is wall-clock;
// the modeled GFLOP/s comes from the evaluator's exact counter-based FLOP
// model divided by measured wall time, mirroring how the paper's
// figures are produced.
type HotPathResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ModelGFLOPs is modeled FLOPs / wall-clock in GFLOP/s for scheme
	// runs; 0 for micro cases without a counter model.
	ModelGFLOPs float64 `json:"model_gflops,omitempty"`
	// Workers is the evaluation worker count this case actually ran with.
	// The seed harness omitted it and always stamped the report's
	// gomaxprocs, which misrepresented runs forced to other widths.
	Workers int `json:"workers,omitempty"`
}

// HotPathReport is the JSON document cmd/unstencil-bench writes: one result
// list per label (typically "before" and "after" a hot-path change), plus
// environment metadata needed to compare runs honestly.
type HotPathReport struct {
	GoVersion  string                     `json:"go_version"`
	GOMAXPROCS int                        `json:"gomaxprocs"`
	NumCPU     int                        `json:"num_cpu"`
	Config     HotPathConfig              `json:"config"`
	Runs       map[string][]HotPathResult `json:"runs"`
}

// RunHotPath executes the fixed-seed suite and returns one result per case.
func RunHotPath(cfg HotPathConfig) ([]HotPathResult, error) {
	if cfg.Size <= 0 {
		cfg = DefaultHotPathConfig()
	}
	var out []HotPathResult
	var flops uint64

	m, err := mesh.SizedLowVariance(cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, p := range cfg.Orders {
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, GridDegree: -1, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}

		r := runCase(fmt.Sprintf("per-point/%s/P%d", sizeLabel(cfg.Size), p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ev.RunPerPoint(cfg.Patches)
				if err != nil {
					b.Fatal(err)
				}
				flops = res.Total.Flops
			}
		})
		r.ModelGFLOPs = gflops(flops, r.NsPerOp)
		out = append(out, r)

		tl := ev.NewTiling(cfg.Patches)
		r = runCase(fmt.Sprintf("per-element/%s/P%d", sizeLabel(cfg.Size), p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ev.RunPerElement(tl)
				if err != nil {
					b.Fatal(err)
				}
				flops = res.Total.Flops
			}
		})
		r.ModelGFLOPs = gflops(flops, r.NsPerOp)
		out = append(out, r)
	}

	// Evaluator construction (grid generation, bounds, hash grids) and
	// tiling build, the phases NewEvaluator/NewTiling parallelise.
	fb := dg.Project(m, 1, testField, 2)
	out = append(out, runCase(fmt.Sprintf("new-evaluator/%s/P1", sizeLabel(cfg.Size)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewEvaluator(fb, core.Options{P: 1, GridDegree: -1, Workers: cfg.Workers}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	evb, err := core.NewEvaluator(fb, core.Options{P: 1, GridDegree: -1, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	out = append(out, runCase(fmt.Sprintf("new-tiling/%s/P1", sizeLabel(cfg.Size)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evb.NewTiling(cfg.Patches)
		}
	}))

	// EvalAt: scattered single-point queries (streamline-style workload).
	pts := haltonPoints(256)
	out = append(out, runCase(fmt.Sprintf("evalat/%s/P1", sizeLabel(cfg.Size)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evb.EvalAt(pts[i%len(pts)]); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One-sided sweep: kernel construction per boundary-adjacent candidate
	// dominates without a cache; this is the case the kernel cache targets.
	ms := mesh.Structured(cfg.OneSidedN)
	fs := dg.Project(ms, 1, testField, 2)
	evs, err := core.NewEvaluator(fs, core.Options{P: 1, Boundary: core.OneSided, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	tls := evs.NewTiling(4)
	r := runCase(fmt.Sprintf("onesided-per-element/s%d/P1", cfg.OneSidedN), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := evs.RunPerElement(tls)
			if err != nil {
				b.Fatal(err)
			}
			flops = res.Total.Flops
		}
	})
	r.ModelGFLOPs = gflops(flops, r.NsPerOp)
	out = append(out, r)

	for i := range out {
		out[i].Workers = cfg.EffectiveWorkers()
	}
	return out, nil
}

func gflops(flops uint64, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(flops) / nsPerOp
}

func runCase(name string, fn func(b *testing.B)) HotPathResult {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return HotPathResult{
		Name:        name,
		N:           res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// haltonPoints returns a deterministic low-discrepancy point set in the
// open unit square, kept away from the boundary so periodic evaluators
// exercise interior and wrap-around stencils alike.
func haltonPoints(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(
			0.02+0.96*halton(i+1, 2),
			0.02+0.96*halton(i+1, 3),
		)
	}
	return out
}

func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// LoadHotPathReport reads path, returning an empty report (never nil maps)
// if the file does not exist.
func LoadHotPathReport(path string, cfg HotPathConfig) (*HotPathReport, error) {
	rep := &HotPathReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
		Runs:       map[string][]HotPathResult{},
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Runs == nil {
		rep.Runs = map[string][]HotPathResult{}
	}
	// Environment metadata always reflects the latest writer.
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.Config = cfg
	return rep, nil
}

// Save writes the report as stable, indented JSON.
func (rep *HotPathReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Speedups returns name → ns/op ratio between two labelled runs (base over
// head, so > 1 means head is faster). Names present in only one run are
// skipped.
func (rep *HotPathReport) Speedups(base, head string) map[string]float64 {
	b := rep.Runs[base]
	h := rep.Runs[head]
	if b == nil || h == nil {
		return nil
	}
	byName := map[string]float64{}
	for _, r := range b {
		byName[r.Name] = r.NsPerOp
	}
	out := map[string]float64{}
	for _, r := range h {
		if bns, ok := byName[r.Name]; ok && r.NsPerOp > 0 {
			out[r.Name] = bns / r.NsPerOp
		}
	}
	return out
}

// FprintComparison renders a base-vs-head table to w in a benchstat-like
// layout; it returns the geometric-mean speedup (0 when no common cases).
func (rep *HotPathReport) FprintComparison(w *os.File, base, head string) float64 {
	sp := rep.Speedups(base, head)
	if len(sp) == 0 {
		fmt.Fprintf(w, "no common cases between %q and %q\n", base, head)
		return 0
	}
	names := make([]string, 0, len(sp))
	for n := range sp {
		names = append(names, n)
	}
	sort.Strings(names)
	baseNs := map[string]HotPathResult{}
	for _, r := range rep.Runs[base] {
		baseNs[r.Name] = r
	}
	headNs := map[string]HotPathResult{}
	for _, r := range rep.Runs[head] {
		headNs[r.Name] = r
	}
	fmt.Fprintf(w, "%-34s %14s %14s %9s\n", "case", base+" ns/op", head+" ns/op", "speedup")
	logSum := 0.0
	for _, n := range names {
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %8.2fx\n",
			n, baseNs[n].NsPerOp, headNs[n].NsPerOp, sp[n])
		logSum += math.Log(sp[n])
	}
	gm := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(w, "%-34s %14s %14s %8.2fx\n", "geomean", "", "", gm)
	return gm
}
