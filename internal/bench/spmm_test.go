package bench

import (
	"math"
	"testing"

	"unstencil/internal/artifact"
	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// TestSpMMSmoke is the CI bit-identity gate the spmm-smoke job runs under
// -race: assemble on a dyadic structured mesh, batch 8 synthetic fields
// through ApplyBlock on the plain, templated, and mmap-loaded forms of the
// operator, and require (a) every form bit-identical to per-field plain
// ApplyVec, and (b) the first field within 1e-12 of direct per-point
// evaluation.
func TestSpMMSmoke(t *testing.T) {
	m := mesh.Structured(8)
	f := dg.Project(m, 1, testField, 2)
	ev, err := core.NewEvaluator(f, core.Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ev.AssembleOperator(core.AssembleOpts{Layout: operator.LayoutCSR})
	if err != nil {
		t.Fatal(err)
	}
	topl := plain.Templatize()
	if topl.Tpl == nil {
		t.Fatal("dyadic structured mesh did not templatize")
	}

	// mmap leg: round-trip the templated operator through the store.
	store, err := artifact.NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const key = "op:spmm-smoke"
	if err := store.SaveOperator(key, topl); err != nil {
		t.Fatal(err)
	}
	mop, _, err := store.LoadOperator(key, true)
	if err != nil {
		t.Fatal(err)
	}

	const nf = 8
	coeffs := syntheticFields(ev.Field.Coeffs, nf)
	want := make([][]float64, nf)
	for i := range want {
		want[i] = make([]float64, plain.Rows)
		if err := plain.ApplyVec(coeffs[i], want[i], 1); err != nil {
			t.Fatal(err)
		}
	}

	for name, op := range map[string]*operator.Operator{"plain": plain, "templated": topl, "mmap": mop} {
		outs := make([][]float64, nf)
		for i := range outs {
			outs[i] = make([]float64, op.Rows)
		}
		if err := op.ApplyBlock(coeffs, outs, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range outs {
			for j := range outs[i] {
				if math.Float64bits(outs[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("%s: field %d point %d: %v != per-field %v",
						name, i, j, outs[i][j], want[i][j])
				}
			}
		}
	}

	direct, err := ev.RunPerPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range want[0] {
		if d := math.Abs(want[0][i] - direct.Solution[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		t.Errorf("apply vs direct max diff %.3e > 1e-12", worst)
	}
}
