package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/device"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/tile"
)

// ScalingConfig parameterises the strong-scaling sweep: the fixed-seed
// benchmark suite executed at every worker count in Workers, for every
// scheme, with the serial run as the scaling baseline.
type ScalingConfig struct {
	// Size is the approximate triangle count of the benchmark mesh.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Seed fixes the mesh generator.
	Seed int64
	// Patches is the per-element tiling patch count (also the per-point
	// block count), the unit granularity the schedulers balance.
	Patches int
	// Workers is the worker-count sweep; 1 must be present (it is the
	// baseline and is prepended if missing).
	Workers []int
}

// DefaultScalingConfig mirrors the hot-path suite's fixed seed and sizes the
// sweep in powers of two up to at least 8 logical workers — the scheduler
// sweep is meaningful even when this host cannot run them simultaneously,
// because the modeled columns come from the deterministic cost model.
func DefaultScalingConfig() ScalingConfig {
	ws := []int{1, 2, 4, 8}
	for n := 16; n <= runtime.NumCPU(); n *= 2 {
		ws = append(ws, n)
	}
	return ScalingConfig{
		Size:    1000,
		Orders:  []int{1, 2},
		Seed:    1,
		Patches: 16,
		Workers: ws,
	}
}

// ScalingRow is one (scheme, order, workers) cell of the sweep.
type ScalingRow struct {
	Scheme  string `json:"scheme"`
	P       int    `json:"p"`
	Workers int    `json:"workers"`
	// GOMAXPROCS at run time: wall columns cannot exceed it no matter how
	// many workers are requested.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Wall columns are measured on this host.
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	WallSpeedup    float64 `json:"wall_speedup"`
	WallEfficiency float64 `json:"wall_efficiency"`
	// Model columns come from the deterministic per-block cost model
	// (internal/device): exact counters -> block costs -> LPT makespan of
	// the dynamic worker pool plus the two-stage reduction.
	ModelUnits      float64 `json:"model_units"`
	ModelSpeedup    float64 `json:"model_speedup"`
	ModelEfficiency float64 `json:"model_efficiency"`
	// MaxAbsDiffVsSerial compares this run's solution against the workers=1
	// solution; BitIdentical is the determinism acceptance gate.
	MaxAbsDiffVsSerial float64 `json:"max_abs_diff_vs_serial"`
	BitIdentical       bool    `json:"bit_identical_vs_serial"`
}

// ScalingReport is the JSON document the -scaling mode writes
// (BENCH_PR4.json at the repo root).
type ScalingReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// SpeedupBasis documents which columns carry the scaling claim on this
	// host; wall columns are honest but bounded by NumCPU.
	SpeedupBasis string        `json:"speedup_basis"`
	Config       ScalingConfig `json:"config"`
	Rows         []ScalingRow  `json:"rows"`
}

const speedupBasis = "model_speedup: deterministic per-block cost model " +
	"(internal/device, exact counters -> LPT makespan of the dynamic worker " +
	"pool + two-stage reduction); wall_speedup: measured on this host and " +
	"bounded by gomaxprocs"

// schemeRun abstracts one scheme so the sweep treats all three uniformly.
type schemeRun struct {
	name string
	// run executes the scheme at the evaluator's current worker count.
	run func() (*core.Result, error)
	// model converts the serial run's per-block counters into the modeled
	// pool time at w workers.
	model func(res *core.Result, w int) float64
}

func schemeRuns(ev *core.Evaluator, tl *tile.Tiling, patches int) []schemeRun {
	perPatchCosts := func(res *core.Result) []float64 {
		costs := make([]float64, len(res.Blocks))
		for i := range res.Blocks {
			costs[i] = device.Cost(&res.Blocks[i])
		}
		return costs
	}
	return []schemeRun{
		{
			name: "per-point",
			run:  func() (*core.Result, error) { return ev.RunPerPoint(patches) },
			// Gather scheme: no partial solutions, no reduction stage.
			model: func(res *core.Result, w int) float64 {
				return device.Pool{Workers: w}.Run(perPatchCosts(res), 0).Total
			},
		},
		{
			name: "per-element",
			run:  func() (*core.Result, error) { return ev.RunPerElement(tl) },
			// Scatter scheme: patch compute plus the two-stage owned-point
			// reduction over every partial value (one coalesced word each).
			model: func(res *core.Result, w int) float64 {
				red := float64(tl.PartialValues()) * device.CoalescedWordCost
				return device.Pool{Workers: w}.Run(perPatchCosts(res), red).Total
			},
		},
		{
			name: "pipelined",
			run:  func() (*core.Result, error) { return ev.RunPerElementPipelined(tl) },
			// Colour waves are barriers: the modeled time is the sum of
			// per-wave pool makespans, which is exactly the synchronisation
			// penalty the paper charges this variant.
			model: func(res *core.Result, w int) float64 {
				costs := perPatchCosts(res)
				colors := tl.Colors()
				numColors := 0
				for _, c := range colors {
					if c+1 > numColors {
						numColors = c + 1
					}
				}
				waves := make([][]float64, numColors)
				for p, c := range colors {
					waves[c] = append(waves[c], costs[p])
				}
				total := 0.0
				for _, wave := range waves {
					total += device.Pool{Workers: w}.Run(wave, 0).Total
				}
				return total
			},
		},
	}
}

// RunScaling executes the sweep and returns the report. For each (scheme,
// order): one serial run provides the baseline solution, the exact per-block
// counters (deterministic, so valid at every worker count), and the modeled
// serial time; each worker count is then benchmarked for wall time and its
// solution compared bit-for-bit against the serial baseline.
func RunScaling(cfg ScalingConfig) (*ScalingReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultScalingConfig()
	}
	if len(cfg.Workers) == 0 || cfg.Workers[0] != 1 {
		cfg.Workers = append([]int{1}, cfg.Workers...)
	}
	rep := &ScalingReport{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		SpeedupBasis: speedupBasis,
		Config:       cfg,
	}
	m, err := mesh.SizedLowVariance(cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, p := range cfg.Orders {
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, GridDegree: -1, Workers: 1})
		if err != nil {
			return nil, err
		}
		tl := ev.NewTiling(cfg.Patches)
		for _, sr := range schemeRuns(ev, tl, cfg.Patches) {
			ev.Opt.Workers = 1
			serial, err := sr.run()
			if err != nil {
				return nil, fmt.Errorf("%s/P%d serial: %w", sr.name, p, err)
			}
			model1 := sr.model(serial, 1)
			var wall1 float64
			for _, w := range cfg.Workers {
				ev.Opt.Workers = w
				var res *core.Result
				bres := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r, err := sr.run()
						if err != nil {
							b.Fatal(err)
						}
						res = r
					}
				})
				wallNs := float64(bres.T.Nanoseconds()) / float64(bres.N)
				if w == 1 {
					wall1 = wallNs
				}
				maxDiff, identical := 0.0, true
				for i := range res.Solution {
					d := res.Solution[i] - serial.Solution[i]
					if d != 0 {
						identical = false
						if d < 0 {
							d = -d
						}
						if d > maxDiff {
							maxDiff = d
						}
					}
				}
				modelW := sr.model(serial, w)
				row := ScalingRow{
					Scheme:             sr.name,
					P:                  p,
					Workers:            w,
					GOMAXPROCS:         runtime.GOMAXPROCS(0),
					WallNsPerOp:        wallNs,
					ModelUnits:         modelW,
					MaxAbsDiffVsSerial: maxDiff,
					BitIdentical:       identical,
				}
				if wallNs > 0 {
					row.WallSpeedup = wall1 / wallNs
					row.WallEfficiency = row.WallSpeedup / float64(w)
				}
				if modelW > 0 {
					row.ModelSpeedup = model1 / modelW
					row.ModelEfficiency = row.ModelSpeedup / float64(w)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// Save writes the report as stable, indented JSON.
func (rep *ScalingReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fprint renders the sweep as a fixed-width table grouped by scheme/order.
func (rep *ScalingReport) Fprint(w *os.File) {
	fmt.Fprintf(w, "%-12s %2s %3s %14s %8s %8s %8s %8s %5s\n",
		"scheme", "P", "w", "wall ns/op", "wall-sp", "model-sp", "mod-eff", "maxdiff", "bit")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-12s %2d %3d %14.0f %7.2fx %7.2fx %8.2f %8.1e %5v\n",
			r.Scheme, r.P, r.Workers, r.WallNsPerOp,
			r.WallSpeedup, r.ModelSpeedup, r.ModelEfficiency,
			r.MaxAbsDiffVsSerial, r.BitIdentical)
	}
}
