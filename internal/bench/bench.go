// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation section (§5):
//
//	Table 1  — intersection-test counts, per-point vs per-element
//	Fig. 8   — tiling memory overhead vs mesh size (16 patches, P=1)
//	Fig. 11  — modeled GFLOP/s on low-variance meshes, P ∈ {1,2,3}
//	Fig. 12  — modeled GFLOP/s on high-variance meshes, P ∈ {1,2,3}
//	Fig. 13  — per-element speedup over per-point, LV and HV, P ∈ {1,2,3}
//	Fig. 14  — multi-device scaling of the per-element scheme, P=1
//
// plus three ablations for the design choices DESIGN.md calls out (hash-grid
// cell sizes, overlapped vs pipelined tiling, patch-count sweep).
//
// Each experiment returns a Table whose rows mirror the series the paper
// plots. Absolute numbers differ from the paper's GPU testbed (see the
// substitution notes in DESIGN.md); the shapes — who wins, by what factor,
// and the trends over mesh size — are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// Kind selects the mesh family of an experiment.
type Kind int

const (
	// LowVariance meshes have roughly uniform element sizes (paper Fig. 9).
	LowVariance Kind = iota
	// HighVariance meshes have strongly graded element sizes (paper
	// Fig. 10).
	HighVariance
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == HighVariance {
		return "HV"
	}
	return "LV"
}

// Config parameterises the harness. The zero value is not valid; use
// DefaultConfig (bench-test scale) or PaperConfig (full paper scale).
type Config struct {
	Sizes   []int // triangle counts, e.g. 4k..1024k
	Orders  []int // polynomial orders, paper uses 1, 2, 3
	Patches int   // tiles per device (paper: NSM = 16)
	Devices []int // device counts for the scaling study
	Seed    int64
	Grading float64 // high-variance mesh grading factor
	Workers int     // evaluation goroutines (0 = GOMAXPROCS)
	// GridDegree is forwarded to core.Options.GridDegree. The paper
	// evaluates at the full quadrature grid (0 → degree 2P); the default
	// harness uses the sparse one-point grid (-1) so sweeps fit a
	// single-core budget. Counting experiments (Table 1) always use the
	// full grid.
	GridDegree int
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// DefaultConfig returns a configuration sized for `go test -bench` on one
// core: reduced mesh sizes and the sparse evaluation grid.
func DefaultConfig() Config {
	return Config{
		Sizes:      []int{1000, 4000, 16000},
		Orders:     []int{1, 2, 3},
		Patches:    16,
		Devices:    []int{1, 2, 4, 8},
		Seed:       1,
		Grading:    16,
		GridDegree: -1,
	}
}

// PaperConfig returns the paper's full sweep (4k–1024k triangles, full
// evaluation grid). Counting experiments finish in minutes; the full
// integration sweeps at 256k+ take hours on one core — use the -sizes flag
// of cmd/paperbench to trim.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Sizes = []int{4000, 16000, 64000, 256000, 1024000}
	c.GridDegree = 0
	return c
}

// Table is one regenerated table or figure: rows of formatted cells with a
// header, mirroring the series the paper reports.
type Table struct {
	ID     string // experiment id, e.g. "table1", "fig13"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for i, wd := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", wd))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		printRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Session caches meshes and projected fields across experiments so a full
// harness run builds each mesh once.
type Session struct {
	Cfg    Config
	meshes map[string]*mesh.Mesh
	fields map[string]*dg.Field
	sweeps map[string]sweepResult
}

// NewSession validates the config and returns an empty cache.
func NewSession(cfg Config) (*Session, error) {
	if len(cfg.Sizes) == 0 || len(cfg.Orders) == 0 {
		return nil, fmt.Errorf("bench: config needs sizes and orders")
	}
	if cfg.Patches <= 0 {
		cfg.Patches = 16
	}
	if cfg.Grading < 1 {
		cfg.Grading = 16
	}
	if len(cfg.Devices) == 0 {
		cfg.Devices = []int{1, 2, 4, 8}
	}
	return &Session{
		Cfg:    cfg,
		meshes: map[string]*mesh.Mesh{},
		fields: map[string]*dg.Field{},
		sweeps: map[string]sweepResult{},
	}, nil
}

func (s *Session) logf(format string, args ...any) {
	if s.Cfg.Log != nil {
		fmt.Fprintf(s.Cfg.Log, format+"\n", args...)
	}
}

// Mesh returns the cached mesh of the given kind and approximate size.
func (s *Session) Mesh(kind Kind, size int) (*mesh.Mesh, error) {
	key := fmt.Sprintf("%v-%d", kind, size)
	if m, ok := s.meshes[key]; ok {
		return m, nil
	}
	var m *mesh.Mesh
	var err error
	switch kind {
	case LowVariance:
		m, err = mesh.SizedLowVariance(size, s.Cfg.Seed)
	case HighVariance:
		m, err = mesh.SizedHighVariance(size, s.Cfg.Grading, s.Cfg.Seed)
	default:
		return nil, fmt.Errorf("bench: unknown mesh kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	s.logf("built %v mesh: %d triangles (CV %.2f)", kind, m.NumTris(), m.Stats().CV)
	s.meshes[key] = m
	return m, nil
}

// testField is the smooth periodic input all experiments post-process, a
// stand-in for a dG simulation solution.
func testField(p geom.Point) float64 {
	return math.Sin(2*math.Pi*p.X)*math.Cos(2*math.Pi*p.Y) +
		0.5*math.Sin(4*math.Pi*(p.X+p.Y))
}

// Field returns the cached degree-p projection of the test field on the
// given mesh.
func (s *Session) Field(kind Kind, size, p int) (*dg.Field, error) {
	key := fmt.Sprintf("%v-%d-%d", kind, size, p)
	if f, ok := s.fields[key]; ok {
		return f, nil
	}
	m, err := s.Mesh(kind, size)
	if err != nil {
		return nil, err
	}
	f := dg.Project(m, p, testField, 2)
	s.fields[key] = f
	return f, nil
}

// sizeLabel formats 4000 as "4k" etc., matching the paper's axis labels.
func sizeLabel(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// ParseSizes parses a comma-separated size list accepting both plain
// integers and the paper's "4k" notation (used by cmd/paperbench).
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		mult := 1
		if strings.HasSuffix(part, "k") {
			mult = 1000
			part = strings.TrimSuffix(part, "k")
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bench: bad size %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("bench: size %q must be positive", part)
		}
		out = append(out, v*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty size list")
	}
	return out, nil
}

// ParseInts parses a comma-separated integer list (polynomial orders).
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bench: bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
