package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
)

// OperatorConfig parameterises the assembled-operator sweep cmd/unstencil-bench
// runs with -operator and CI records as BENCH_PR5.json. The sweep answers the
// question the assembled path exists for: after how many repeated fields does
// paying assembly once beat re-running geometry per field?
type OperatorConfig struct {
	// Size is the approximate triangle count of the fixed-seed mesh.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Seed fixes the mesh generator so runs compare across commits.
	Seed int64
	// Workers bounds assembly and apply concurrency; 0 follows GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// DefaultOperatorConfig mirrors the hot-path suite's mesh so the two
// trajectory files describe the same workload.
func DefaultOperatorConfig() OperatorConfig {
	return OperatorConfig{Size: 1000, Orders: []int{1, 2}, Seed: 1}
}

// EffectiveWorkers resolves the configured worker count against GOMAXPROCS.
func (c OperatorConfig) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// OperatorResult is one order's measurements: what assembly costs, what an
// apply costs next to a direct evaluation of the same points, the operator's
// shape, and the break-even field count — the number of repeated fields after
// which total assembled cost undercuts total direct cost.
type OperatorResult struct {
	P int `json:"p"`

	// Assembly cost, wall-clock, for both assembly schemes.
	AssemblePerPointMS   float64 `json:"assemble_per_point_ms"`
	AssemblePerElementMS float64 `json:"assemble_per_element_ms"`

	// Steady-state per-field cost: one sparse apply vs one direct
	// per-point run over the identical evaluation grid.
	ApplyNsPerOp  float64 `json:"apply_ns_per_op"`
	DirectNsPerOp float64 `json:"direct_ns_per_op"`
	// ApplySpeedup is DirectNsPerOp / ApplyNsPerOp.
	ApplySpeedup float64 `json:"apply_speedup"`

	// BreakEvenFields is assembly wall over per-field savings, rounded up:
	// post-processing at least this many fields on one mesh makes the
	// assembled path the cheaper total. 0 means the apply is not faster.
	BreakEvenFields int `json:"break_even_fields"`

	// Operator shape.
	Rows        int     `json:"rows"`
	NNZ         int     `json:"nnz"`
	NNZPerRow   float64 `json:"nnz_per_row"`
	BytesPerRow float64 `json:"bytes_per_row"`

	// MaxDiff is the worst |apply − direct| disagreement across the grid,
	// recorded so the trajectory file itself proves the speedup is of the
	// same numbers.
	MaxDiff float64 `json:"max_diff"`
}

// OperatorReport is the BENCH_PR5.json document.
type OperatorReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Config     OperatorConfig   `json:"config"`
	Results    []OperatorResult `json:"results"`
}

// RunOperator executes the sweep.
func RunOperator(cfg OperatorConfig) (*OperatorReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultOperatorConfig()
	}
	rep := &OperatorReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	m, err := mesh.SizedLowVariance(cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, p := range cfg.Orders {
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, GridDegree: -1, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		res := OperatorResult{P: p}

		// Assembly cost, each scheme once (assembly is a one-off; median-of-N
		// would just re-measure a path the break-even analysis amortises away).
		start := time.Now()
		op, err := ev.AssembleOperator(core.AssembleOpts{Scheme: core.PerPoint})
		if err != nil {
			return nil, err
		}
		res.AssemblePerPointMS = float64(time.Since(start)) / float64(time.Millisecond)
		start = time.Now()
		if _, err := ev.AssembleOperator(core.AssembleOpts{Scheme: core.PerElement}); err != nil {
			return nil, err
		}
		res.AssemblePerElementMS = float64(time.Since(start)) / float64(time.Millisecond)

		st := op.Stats()
		res.Rows, res.NNZ = st.Rows, st.NNZ
		res.NNZPerRow, res.BytesPerRow = st.NNZPerRow, st.BytesPerRow

		// Steady-state costs over the identical grid.
		direct, err := ev.RunPerPoint(0)
		if err != nil {
			return nil, err
		}
		applied, err := op.Apply(ev.Field)
		if err != nil {
			return nil, err
		}
		for i := range applied {
			if d := math.Abs(applied[i] - direct.Solution[i]); d > res.MaxDiff {
				res.MaxDiff = d
			}
		}

		out := make([]float64, op.Rows)
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op.ApplyVec(ev.Field.Coeffs, out, op.Workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.ApplyNsPerOp = float64(br.T.Nanoseconds()) / float64(br.N)
		br = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.RunPerPoint(0); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.DirectNsPerOp = float64(br.T.Nanoseconds()) / float64(br.N)

		if res.ApplyNsPerOp > 0 {
			res.ApplySpeedup = res.DirectNsPerOp / res.ApplyNsPerOp
		}
		if saved := res.DirectNsPerOp - res.ApplyNsPerOp; saved > 0 {
			assemblyNs := res.AssemblePerPointMS * float64(time.Millisecond)
			res.BreakEvenFields = int(math.Ceil(assemblyNs / saved))
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// Fprint renders the sweep as a table.
func (rep *OperatorReport) Fprint(w *os.File) {
	fmt.Fprintf(w, "%-4s %14s %14s %10s %10s %8s %10s %8s %10s\n",
		"P", "assemble ms", "apply ns/op", "direct ns", "speedup", "nnz/row", "bytes/row", "break-ev", "max diff")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "P%-3d %14.1f %14.0f %10.0f %9.1fx %8.1f %10.1f %8d %10.2e\n",
			r.P, r.AssemblePerPointMS, r.ApplyNsPerOp, r.DirectNsPerOp,
			r.ApplySpeedup, r.NNZPerRow, r.BytesPerRow, r.BreakEvenFields, r.MaxDiff)
	}
}

// Save writes the report as stable, indented JSON.
func (rep *OperatorReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
