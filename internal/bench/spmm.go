package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// SpMMConfig parameterises the batched-apply sweep cmd/unstencil-bench runs
// with -spmm and CI records as BENCH_PR8.json. The sweep answers two
// questions the SpMM path exists for: how much does batching F fields into
// one ApplyBlock save over F independent ApplyVec calls, and what does
// row-congruence template compression cost (or save) at apply time.
type SpMMConfig struct {
	// Size is the structured-mesh resolution (Size×Size quads, two
	// triangles each). A power of two keeps the element spacing dyadic, so
	// element translations are bitwise exact and the assembled rows are
	// template-congruent — the regime the templated variant measures.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Fields are the batch widths swept.
	Fields []int
	// Workers bounds apply concurrency; 0 follows GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// DefaultSpMMConfig: a 16×16 structured mesh already gives a ~79 MB P2
// operator — far out of last-level cache — so the sweep measures the
// memory-bound regime the field-tiling targets at CI-friendly cost.
func DefaultSpMMConfig() SpMMConfig {
	return SpMMConfig{Size: 16, Orders: []int{1, 2}, Fields: []int{1, 2, 4, 8, 16}}
}

// EffectiveWorkers resolves the configured worker count against GOMAXPROCS.
func (c SpMMConfig) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SpMMShape is one order's operator shape, in both storage forms.
type SpMMShape struct {
	P             int   `json:"p"`
	Rows          int   `json:"rows"`
	Cols          int   `json:"cols"`
	NNZ           int   `json:"nnz"`
	BytesPlain    int64 `json:"bytes_plain"`
	BytesTpl      int64 `json:"bytes_templated"`
	BytesSaved    int64 `json:"bytes_saved"`
	Templates     int   `json:"templates"`
	TemplatedRows int   `json:"templated_rows"`
}

// SpMMResult is one (order, batch width, storage form) measurement.
type SpMMResult struct {
	P         int  `json:"p"`
	Fields    int  `json:"fields"`
	Templated bool `json:"templated"`

	// BlockNsPerOp is one ApplyBlock over all Fields fields; PerFieldNsPerOp
	// is the baseline — Fields independent ApplyVec calls on the plain
	// operator. Speedup is their ratio.
	BlockNsPerOp    float64 `json:"block_ns_per_op"`
	PerFieldNsPerOp float64 `json:"per_field_ns_per_op"`
	Speedup         float64 `json:"speedup"`

	// MaxDiff is the worst |batched − per-field| disagreement, computed on
	// the exact bit patterns: the batched and templated paths promise bit
	// identity, so anything other than 0 is a defect the trajectory file
	// records.
	MaxDiff float64 `json:"max_diff"`
}

// SpMMReport is the BENCH_PR8.json document.
type SpMMReport struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Config     SpMMConfig   `json:"config"`
	Shapes     []SpMMShape  `json:"shapes"`
	Results    []SpMMResult `json:"results"`
}

// RunSpMM executes the sweep.
func RunSpMM(cfg SpMMConfig) (*SpMMReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultSpMMConfig()
	}
	rep := &SpMMReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	m := mesh.Structured(cfg.Size)
	workers := cfg.EffectiveWorkers()
	for _, p := range cfg.Orders {
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		// The SpMM sweep contrasts plain CSR against templated CSR, so it
		// pins the legacy layout; the BSR sweep covers the blocked kernels.
		plain, err := ev.AssembleOperator(core.AssembleOpts{Layout: operator.LayoutCSR})
		if err != nil {
			return nil, err
		}
		topl := plain.Templatize()
		if topl.Tpl == nil {
			return nil, fmt.Errorf("p=%d: structured mesh %d did not templatize", p, cfg.Size)
		}
		st := plain.Stats()
		rep.Shapes = append(rep.Shapes, SpMMShape{
			P: p, Rows: st.Rows, Cols: plain.Cols, NNZ: st.NNZ,
			BytesPlain: plain.Bytes(), BytesTpl: topl.Bytes(), BytesSaved: topl.BytesSaved(),
			Templates: topl.Tpl.NumTemplates(), TemplatedRows: topl.Tpl.TemplatedRows(),
		})

		maxF := 0
		for _, nf := range cfg.Fields {
			maxF = max(maxF, nf)
		}
		coeffs := syntheticFields(ev.Field.Coeffs, maxF)
		for _, nf := range cfg.Fields {
			// Baseline: nf independent plain SpMVs, measured once per width.
			want := applyPerField(plain, coeffs[:nf], workers)
			base := benchNs(func() {
				outs := applyPerField(plain, coeffs[:nf], workers)
				putAll(outs)
			})
			for _, variant := range []struct {
				op        *operator.Operator
				templated bool
			}{{plain, false}, {topl, true}} {
				res := SpMMResult{P: p, Fields: nf, Templated: variant.templated, PerFieldNsPerOp: base}
				outs := make([][]float64, nf)
				for i := range outs {
					outs[i] = make([]float64, variant.op.Rows)
				}
				if err := variant.op.ApplyBlock(coeffs[:nf], outs, workers); err != nil {
					return nil, err
				}
				for i := range outs {
					for j := range outs[i] {
						if b := math.Float64bits(outs[i][j]); b != math.Float64bits(want[i][j]) {
							if d := math.Abs(outs[i][j] - want[i][j]); d > res.MaxDiff {
								res.MaxDiff = d
							}
							if res.MaxDiff == 0 { // differing bits of equal value (±0)
								res.MaxDiff = math.SmallestNonzeroFloat64
							}
						}
					}
				}
				res.BlockNsPerOp = benchNs(func() {
					if err := variant.op.ApplyBlock(coeffs[:nf], outs, workers); err != nil {
						panic(err)
					}
				})
				if res.BlockNsPerOp > 0 {
					res.Speedup = base / res.BlockNsPerOp
				}
				rep.Results = append(rep.Results, res)
			}
			putAll(want)
		}
	}
	return rep, nil
}

// syntheticFields derives nf deterministic coefficient vectors from one
// projected field: the first is the field itself, the rest are fixed-seed
// perturbations with the same magnitude profile (what a time series of the
// same physical field looks like to the SpMM).
func syntheticFields(base []float64, nf int) [][]float64 {
	coeffs := make([][]float64, nf)
	coeffs[0] = base
	for i := 1; i < nf; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c := make([]float64, len(base))
		for j := range c {
			c[j] = base[j] * (1 + 0.1*rng.NormFloat64())
		}
		coeffs[i] = c
	}
	return coeffs
}

// applyPerField is the baseline path: one plain SpMV per field, outputs
// drawn from the apply-vector pool.
func applyPerField(op *operator.Operator, coeffs [][]float64, workers int) [][]float64 {
	outs := make([][]float64, len(coeffs))
	for i := range coeffs {
		outs[i] = operator.GetVec(op.Rows)
		if err := op.ApplyVec(coeffs[i], outs[i], workers); err != nil {
			panic(err)
		}
	}
	return outs
}

func putAll(outs [][]float64) {
	for _, o := range outs {
		operator.PutVec(o)
	}
}

func benchNs(fn func()) float64 {
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(br.T.Nanoseconds()) / float64(br.N)
}

// Fprint renders the sweep as a table.
func (rep *SpMMReport) Fprint(w *os.File) {
	for _, s := range rep.Shapes {
		fmt.Fprintf(w, "P%d: %d rows, %d nnz, %d templates cover %d rows, %d B plain -> %d B templated (%d B saved)\n",
			s.P, s.Rows, s.NNZ, s.Templates, s.TemplatedRows, s.BytesPlain, s.BytesTpl, s.BytesSaved)
	}
	fmt.Fprintf(w, "%-4s %7s %10s %14s %14s %9s %10s\n",
		"P", "fields", "storage", "block ns/op", "perfield ns", "speedup", "max diff")
	for _, r := range rep.Results {
		storage := "plain"
		if r.Templated {
			storage = "templated"
		}
		fmt.Fprintf(w, "P%-3d %7d %10s %14.0f %14.0f %8.2fx %10.2e\n",
			r.P, r.Fields, storage, r.BlockNsPerOp, r.PerFieldNsPerOp, r.Speedup, r.MaxDiff)
	}
}

// Save writes the report as stable, indented JSON.
func (rep *SpMMReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GHAEntry is one benchmark point in the JSON array format consumed by the
// github-action-benchmark action's "customSmallerIsBetter" tool (which
// renders it into its windowed data.js trajectory on the gh-pages side).
type GHAEntry struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	Extra string  `json:"extra,omitempty"`
}

// GHA flattens the sweep into github-action-benchmark entries: one ns/op
// point per (order, width, storage) plus the per-order resident byte sizes.
func (rep *SpMMReport) GHA() []GHAEntry {
	var out []GHAEntry
	for _, r := range rep.Results {
		storage := "plain"
		if r.Templated {
			storage = "templated"
		}
		out = append(out, GHAEntry{
			Name:  fmt.Sprintf("spmm/p%d/f%d/%s", r.P, r.Fields, storage),
			Unit:  "ns/op",
			Value: r.BlockNsPerOp,
			Extra: fmt.Sprintf("%.2fx vs per-field", r.Speedup),
		})
	}
	for _, s := range rep.Shapes {
		out = append(out, GHAEntry{
			Name:  fmt.Sprintf("spmm/p%d/resident_bytes_templated", s.P),
			Unit:  "bytes",
			Value: float64(s.BytesTpl),
			Extra: fmt.Sprintf("plain %d B, saved %d B", s.BytesPlain, s.BytesSaved),
		})
	}
	return out
}

// SaveGHA writes the github-action-benchmark JSON array.
func (rep *SpMMReport) SaveGHA(path string) error {
	data, err := json.MarshalIndent(rep.GHA(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
