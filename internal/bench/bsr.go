package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// BSRConfig parameterises the block-sparse layout sweep cmd/unstencil-bench
// runs with -bsr and CI records as BENCH_PR10.json. The sweep answers the
// two questions the blocked layout exists for: how much apply throughput
// does collapsing the scalar column index to one block id per element
// block buy (less index traffic per value in the memory-bound regime), and
// how much smaller is the resident operator.
type BSRConfig struct {
	// Size is the structured-mesh resolution (Size×Size quads, two
	// triangles each); 16 gives a ~79 MB P2 operator, far out of
	// last-level cache, so the sweep measures the streaming regime the
	// layout targets.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Fields are the apply batch widths swept: 1 exercises the blocked
	// SpMV, >1 the blocked SpMM tiles.
	Fields []int
	// Workers bounds apply concurrency; 0 follows GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// DefaultBSRConfig matches the SpMM sweep's mesh so the two trajectories
// describe the same operators.
func DefaultBSRConfig() BSRConfig {
	return BSRConfig{Size: 16, Orders: []int{1, 2}, Fields: []int{1, 8}}
}

// EffectiveWorkers resolves the configured worker count against GOMAXPROCS.
func (c BSRConfig) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BSRShape is one order's operator, sized in both layouts.
type BSRShape struct {
	P      int `json:"p"`
	Rows   int `json:"rows"`
	Cols   int `json:"cols"`
	NNZ    int `json:"nnz"`
	BasisN int `json:"basis_n"`
	// BytesCSR and BytesBSR are the resident operator sizes per layout;
	// IndexBytesSaved is their index-array difference (the value arrays are
	// shared verbatim, so it is also the total difference).
	BytesCSR        int64 `json:"bytes_csr"`
	BytesBSR        int64 `json:"bytes_bsr"`
	IndexBytesSaved int64 `json:"index_bytes_saved"`
}

// BSRResult is one (order, batch width, template form) measurement.
type BSRResult struct {
	P         int  `json:"p"`
	Fields    int  `json:"fields"`
	Templated bool `json:"templated"`

	// NsCSR and NsBSR are one full apply over all Fields fields in each
	// layout (ApplyVec at width 1, ApplyBlock above); Speedup is their
	// ratio.
	NsCSR   float64 `json:"csr_ns_per_op"`
	NsBSR   float64 `json:"bsr_ns_per_op"`
	Speedup float64 `json:"speedup"`

	// MaxDiff is the worst |BSR − CSR| disagreement on the exact bit
	// patterns: the blocked kernels promise bit identity, so anything other
	// than 0 is a defect the trajectory file records.
	MaxDiff float64 `json:"max_diff"`
}

// BSRReport is the BENCH_PR10.json document.
type BSRReport struct {
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Config     BSRConfig   `json:"config"`
	Shapes     []BSRShape  `json:"shapes"`
	Results    []BSRResult `json:"results"`
}

// RunBSR executes the sweep.
func RunBSR(cfg BSRConfig) (*BSRReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultBSRConfig()
	}
	rep := &BSRReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	m := mesh.Structured(cfg.Size)
	workers := cfg.EffectiveWorkers()
	for _, p := range cfg.Orders {
		f := dg.Project(m, p, testField, 2)
		ev, err := core.NewEvaluator(f, core.Options{P: p, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		csr, err := ev.AssembleOperator(core.AssembleOpts{Layout: operator.LayoutCSR})
		if err != nil {
			return nil, err
		}
		bsr := csr.ToBSR()
		if bsr.BSR == nil {
			return nil, fmt.Errorf("p=%d: structured mesh %d did not convert to BSR", p, cfg.Size)
		}
		rep.Shapes = append(rep.Shapes, BSRShape{
			P: p, Rows: csr.Rows, Cols: csr.Cols, NNZ: csr.NNZ(), BasisN: csr.BasisN,
			BytesCSR: csr.Bytes(), BytesBSR: bsr.Bytes(), IndexBytesSaved: bsr.IndexBytesSaved(),
		})

		// The templated pair measures the layout composed with PR 9's row
		// templates — the form the server actually serves.
		csrTpl := csr.Templatize()
		bsrTpl := csrTpl.ToBSR()

		maxF := 0
		for _, nf := range cfg.Fields {
			maxF = max(maxF, nf)
		}
		coeffs := syntheticFields(ev.Field.Coeffs, maxF)
		for _, nf := range cfg.Fields {
			for _, variant := range []struct {
				csr, bsr  *operator.Operator
				templated bool
			}{{csr, bsr, false}, {csrTpl, bsrTpl, true}} {
				if variant.templated && variant.bsr.BSR == nil {
					continue // nothing templatized at this order
				}
				res := BSRResult{P: p, Fields: nf, Templated: variant.templated}
				want, got, err := applyBoth(variant.csr, variant.bsr, coeffs[:nf], workers)
				if err != nil {
					return nil, err
				}
				res.MaxDiff = maxBitDiff(want, got)
				res.NsCSR = benchNs(func() { mustApply(variant.csr, coeffs[:nf], want, workers) })
				res.NsBSR = benchNs(func() { mustApply(variant.bsr, coeffs[:nf], got, workers) })
				if res.NsBSR > 0 {
					res.Speedup = res.NsCSR / res.NsBSR
				}
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep, nil
}

// applyBoth runs one apply in each layout and returns both output sets.
func applyBoth(csr, bsr *operator.Operator, coeffs [][]float64, workers int) (want, got [][]float64, err error) {
	want = make([][]float64, len(coeffs))
	got = make([][]float64, len(coeffs))
	for i := range coeffs {
		want[i] = make([]float64, csr.Rows)
		got[i] = make([]float64, bsr.Rows)
	}
	if err := mustApplyErr(csr, coeffs, want, workers); err != nil {
		return nil, nil, err
	}
	if err := mustApplyErr(bsr, coeffs, got, workers); err != nil {
		return nil, nil, err
	}
	return want, got, nil
}

func mustApplyErr(op *operator.Operator, coeffs, outs [][]float64, workers int) error {
	if len(coeffs) == 1 {
		return op.ApplyVec(coeffs[0], outs[0], workers)
	}
	return op.ApplyBlock(coeffs, outs, workers)
}

func mustApply(op *operator.Operator, coeffs, outs [][]float64, workers int) {
	if err := mustApplyErr(op, coeffs, outs, workers); err != nil {
		panic(err)
	}
}

// maxBitDiff reports the worst absolute disagreement between bitwise
// unequal entries (0 when every bit pattern matches).
func maxBitDiff(want, got [][]float64) float64 {
	var maxDiff float64
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(want[i][j]) != math.Float64bits(got[i][j]) {
				if d := math.Abs(want[i][j] - got[i][j]); d > maxDiff {
					maxDiff = d
				}
				if maxDiff == 0 { // differing bits of equal value (±0)
					maxDiff = math.SmallestNonzeroFloat64
				}
			}
		}
	}
	return maxDiff
}

// Fprint renders the sweep as a table.
func (rep *BSRReport) Fprint(w *os.File) {
	for _, s := range rep.Shapes {
		fmt.Fprintf(w, "P%d: %d rows, %d nnz, basis %d, %d B csr -> %d B bsr (%d B index saved)\n",
			s.P, s.Rows, s.NNZ, s.BasisN, s.BytesCSR, s.BytesBSR, s.IndexBytesSaved)
	}
	fmt.Fprintf(w, "%-4s %7s %10s %14s %14s %9s %10s\n",
		"P", "fields", "form", "csr ns/op", "bsr ns/op", "speedup", "max diff")
	for _, r := range rep.Results {
		form := "plain"
		if r.Templated {
			form = "templated"
		}
		fmt.Fprintf(w, "P%-3d %7d %10s %14.0f %14.0f %8.2fx %10.2e\n",
			r.P, r.Fields, form, r.NsCSR, r.NsBSR, r.Speedup, r.MaxDiff)
	}
}

// Markdown renders the sweep as the README's blocked-layout table.
func (rep *BSRReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| P | fields | form | CSR | BSR | speedup | max diff |\n")
	b.WriteString("|---|--------|------|-----|-----|---------|----------|\n")
	for _, r := range rep.Results {
		form := "plain"
		if r.Templated {
			form = "templated"
		}
		fmt.Fprintf(&b, "| %d | %d | %s | %.1f ms | %.1f ms | **%.2fx** | %.0e |\n",
			r.P, r.Fields, form, r.NsCSR/1e6, r.NsBSR/1e6, r.Speedup, r.MaxDiff)
	}
	return b.String()
}

// Save writes the report as stable, indented JSON.
func (rep *BSRReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GHA flattens the sweep into github-action-benchmark entries: one ns/op
// point per (order, width, form, layout) plus the per-order resident sizes.
func (rep *BSRReport) GHA() []GHAEntry {
	var out []GHAEntry
	for _, r := range rep.Results {
		form := "plain"
		if r.Templated {
			form = "templated"
		}
		out = append(out, GHAEntry{
			Name:  fmt.Sprintf("bsr/p%d/f%d/%s", r.P, r.Fields, form),
			Unit:  "ns/op",
			Value: r.NsBSR,
			Extra: fmt.Sprintf("%.2fx vs csr %.0f ns", r.Speedup, r.NsCSR),
		})
	}
	for _, s := range rep.Shapes {
		out = append(out, GHAEntry{
			Name:  fmt.Sprintf("bsr/p%d/resident_bytes", s.P),
			Unit:  "bytes",
			Value: float64(s.BytesBSR),
			Extra: fmt.Sprintf("csr %d B, index saved %d B", s.BytesCSR, s.IndexBytesSaved),
		})
	}
	return out
}

// SaveGHA writes the github-action-benchmark JSON array.
func (rep *BSRReport) SaveGHA(path string) error {
	data, err := json.MarshalIndent(rep.GHA(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
