package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// AssembleConfig parameterises the congruence-first assembly sweep
// cmd/unstencil-bench runs with -assemble and CI records as BENCH_PR9.json.
// The sweep answers the questions the template-aware assembly path exists
// for: how much wall time does stamping congruent rows save over running
// quadrature per row, how does that margin hold up off the dyadic ideal
// (jittered meshes, where verification demotes rows), and is the output
// still the naive operator bit-for-bit.
type AssembleConfig struct {
	// Size is the structured-mesh resolution (Size×Size quads, two
	// triangles each). Powers of two keep element translations bitwise
	// exact — the regime where congruence classes are large.
	Size int
	// Orders are the dG polynomial orders swept.
	Orders []int
	// Jitters are the vertex-jitter amplitudes swept; 0 is the dyadic
	// structured mesh, positive values break translation congruence and
	// exercise the verification/demotion tier.
	Jitters []float64
	// Reps is how many times each assembly is run; the minimum wall time
	// is reported. Assembly is seconds-long, so classic b.N iteration
	// would multiply the sweep cost for no extra signal.
	Reps int
	// Workers bounds assembly concurrency; 0 follows GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// DefaultAssembleConfig: 16×16 is the smallest structured mesh where P2
// support stays narrower than the domain, so interior rows form large
// congruence classes rather than all wrapping identically.
func DefaultAssembleConfig() AssembleConfig {
	return AssembleConfig{Size: 16, Orders: []int{1, 2}, Jitters: []float64{0, 0.3}, Reps: 2}
}

// EffectiveWorkers resolves the configured worker count against GOMAXPROCS.
func (c AssembleConfig) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AssembleResult is one (order, jitter) measurement: naive vs congruent
// assembly wall time, the class structure the signature pass found, how
// the verification tier resolved, and both identity checks.
type AssembleResult struct {
	P      int     `json:"p"`
	Jitter float64 `json:"jitter"`

	NaiveMS     float64 `json:"naive_ms"`
	CongruentMS float64 `json:"congruent_ms"`
	// Speedup is NaiveMS / CongruentMS — the acceptance metric.
	Speedup float64 `json:"speedup"`

	// Class structure and member outcomes, from CongruenceStats.
	Rows            int     `json:"rows"`
	Classes         int     `json:"classes"`
	RowsIntegrated  int     `json:"rows_integrated"`
	RowsStamped     int     `json:"rows_stamped"`
	RowsVerified    int     `json:"rows_verified"`
	RowsDemoted     int     `json:"rows_demoted"`
	ClassesVerified int     `json:"classes_verified"`
	ClassesDemoted  int     `json:"classes_demoted"`
	SignatureWallMS float64 `json:"signature_wall_ms"`
	// ProbeCongruent is false when the strided congruence probe found no
	// repeated signatures and assembly fell back to the naive schedule.
	ProbeCongruent bool `json:"probe_congruent"`

	// MaxDiff is the worst congruent-vs-naive CSR disagreement on exact
	// bit patterns: stamping promises bit identity, so anything other
	// than 0 is a defect the trajectory file records.
	MaxDiff float64 `json:"max_diff"`
	// DirectDiff is the worst |apply − direct per-point| disagreement,
	// the end-to-end floor the demotion tolerance is specified against.
	DirectDiff float64 `json:"direct_diff"`
}

// AssembleReport is the BENCH_PR9.json document.
type AssembleReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Config     AssembleConfig   `json:"config"`
	Results    []AssembleResult `json:"results"`
}

// RunAssemble executes the sweep.
func RunAssemble(cfg AssembleConfig) (*AssembleReport, error) {
	if cfg.Size <= 0 {
		cfg = DefaultAssembleConfig()
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 2
	}
	rep := &AssembleReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	for _, jitter := range cfg.Jitters {
		var m *mesh.Mesh
		if jitter == 0 {
			m = mesh.Structured(cfg.Size)
		} else {
			m = mesh.JitteredStructured(cfg.Size, jitter, 1)
		}
		for _, p := range cfg.Orders {
			f := dg.Project(m, p, testField, 2)
			ev, err := core.NewEvaluator(f, core.Options{P: p, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			res := AssembleResult{P: p, Jitter: jitter}

			var naive, cong *operator.Operator
			res.NaiveMS, naive, err = assembleMS(ev, core.AssembleOpts{}, cfg.Reps)
			if err != nil {
				return nil, err
			}
			res.CongruentMS, cong, err = assembleMS(ev, core.AssembleOpts{Congruence: core.CongruenceTemplate}, cfg.Reps)
			if err != nil {
				return nil, err
			}
			if res.CongruentMS > 0 {
				res.Speedup = res.NaiveMS / res.CongruentMS
			}

			cs := cong.Congruence
			if cs == nil {
				return nil, fmt.Errorf("p=%d jitter=%g: congruent assembly recorded no stats", p, jitter)
			}
			res.Rows, res.Classes = cs.Rows, cs.Classes
			res.RowsIntegrated, res.RowsStamped = cs.RowsIntegrated, cs.RowsStamped
			res.RowsVerified, res.RowsDemoted = cs.RowsVerified, cs.RowsDemoted
			res.ClassesVerified, res.ClassesDemoted = cs.ClassesVerified, cs.ClassesDemoted
			res.SignatureWallMS = float64(cs.SignatureWall) / float64(time.Millisecond)
			res.ProbeCongruent = cs.ProbeCongruent

			res.MaxDiff = expandedMaxDiff(cong, naive)
			direct, err := ev.RunPerPoint(0)
			if err != nil {
				return nil, err
			}
			applied, err := cong.Apply(ev.Field)
			if err != nil {
				return nil, err
			}
			for i := range applied {
				if d := math.Abs(applied[i] - direct.Solution[i]); d > res.DirectDiff {
					res.DirectDiff = d
				}
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// assembleMS runs one assembly variant reps times and returns the minimum
// wall time in milliseconds plus the last assembled operator.
func assembleMS(ev *core.Evaluator, opts core.AssembleOpts, reps int) (float64, *operator.Operator, error) {
	best := math.Inf(1)
	var op *operator.Operator
	for i := 0; i < reps; i++ {
		start := time.Now()
		o, err := ev.AssembleOperator(opts)
		if err != nil {
			return 0, nil, err
		}
		if ms := float64(time.Since(start)) / float64(time.Millisecond); ms < best {
			best = ms
		}
		op = o
	}
	return best, op, nil
}

// expandedMaxDiff compares two operators as expanded plain CSR on exact bit
// patterns. Any structural mismatch (shape, permutation, sparsity) reports
// +Inf; value-bit mismatches report the worst absolute difference, with
// denormal-min standing in for differing bits of equal value (±0).
func expandedMaxDiff(got, want *operator.Operator) float64 {
	g, w := got.Expand(), want.Expand()
	if g.Rows != w.Rows || g.Cols != w.Cols || len(g.ColInd) != len(w.ColInd) {
		return math.Inf(1)
	}
	for i := range g.Perm {
		if g.Perm[i] != w.Perm[i] {
			return math.Inf(1)
		}
	}
	for r := 0; r < g.Rows; r++ {
		if g.RowPtr[r+1] != w.RowPtr[r+1] {
			return math.Inf(1)
		}
	}
	var maxDiff float64
	for k := range g.ColInd {
		if g.ColInd[k] != w.ColInd[k] {
			return math.Inf(1)
		}
		if math.Float64bits(g.Val[k]) != math.Float64bits(w.Val[k]) {
			if d := math.Abs(g.Val[k] - w.Val[k]); d > maxDiff {
				maxDiff = d
			}
			if maxDiff == 0 {
				maxDiff = math.SmallestNonzeroFloat64
			}
		}
	}
	return maxDiff
}

// Fprint renders the sweep as a table.
func (rep *AssembleReport) Fprint(w *os.File) {
	fmt.Fprintf(w, "%-4s %7s %10s %12s %8s %8s %9s %9s %8s %10s %10s\n",
		"P", "jitter", "naive ms", "congruent ms", "speedup", "classes", "stamped", "demoted", "sig ms", "max diff", "direct")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "P%-3d %7.2f %10.0f %12.0f %7.2fx %8d %4d/%-4d %9d %8.0f %10.2e %10.2e\n",
			r.P, r.Jitter, r.NaiveMS, r.CongruentMS, r.Speedup, r.Classes,
			r.RowsStamped, r.Rows, r.RowsDemoted, r.SignatureWallMS, r.MaxDiff, r.DirectDiff)
	}
}

// Markdown renders the sweep as the README's assembly table.
func (rep *AssembleReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| P | jitter | naive | congruent | speedup | classes | stamped rows | demoted | max diff |\n")
	b.WriteString("|---|--------|-------|-----------|---------|---------|--------------|---------|----------|\n")
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "| %d | %.2f | %.2f s | %.2f s | **%.2fx** | %d | %d/%d | %d | %.0e |\n",
			r.P, r.Jitter, r.NaiveMS/1000, r.CongruentMS/1000, r.Speedup,
			r.Classes, r.RowsStamped, r.Rows, r.RowsDemoted, r.MaxDiff)
	}
	return b.String()
}

// Save writes the report as stable, indented JSON.
func (rep *AssembleReport) Save(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GHA flattens the sweep into github-action-benchmark entries: congruent
// assembly wall per (order, jitter), with the naive baseline and stamp
// outcome in the hover text.
func (rep *AssembleReport) GHA() []GHAEntry {
	var out []GHAEntry
	for _, r := range rep.Results {
		out = append(out, GHAEntry{
			Name:  fmt.Sprintf("assemble/p%d/jitter%.2f/congruent", r.P, r.Jitter),
			Unit:  "ms",
			Value: r.CongruentMS,
			Extra: fmt.Sprintf("%.2fx vs naive %.0f ms; %d/%d stamped, %d demoted",
				r.Speedup, r.NaiveMS, r.RowsStamped, r.Rows, r.RowsDemoted),
		})
	}
	return out
}

// SaveGHA writes the github-action-benchmark JSON array.
func (rep *AssembleReport) SaveGHA(path string) error {
	data, err := json.MarshalIndent(rep.GHA(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
