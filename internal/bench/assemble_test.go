package bench

import (
	"math"
	"strings"
	"testing"
)

// TestAssembleSweepSmoke is the CI gate on the congruence-first assembly
// trade at reduced size: the dyadic run must stamp rows and stay bitwise
// identical to naive assembly (MaxDiff exactly 0), the jittered run must
// stay within the demotion tolerance end-to-end, and the report renderers
// must carry the numbers through.
func TestAssembleSweepSmoke(t *testing.T) {
	cfg := AssembleConfig{Size: 8, Orders: []int{1}, Jitters: []float64{0, 0.3}, Reps: 1, Workers: 2}
	rep, err := RunAssemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.MaxDiff != 0 {
			t.Errorf("p=%d jitter=%g: congruent CSR diverges from naive by %.3e, want bitwise 0",
				r.P, r.Jitter, r.MaxDiff)
		}
		if r.DirectDiff > 1e-12 {
			t.Errorf("p=%d jitter=%g: apply diverges from direct eval by %.3e", r.P, r.Jitter, r.DirectDiff)
		}
		if r.RowsIntegrated+r.RowsStamped != r.Rows {
			t.Errorf("p=%d jitter=%g: integrated %d + stamped %d != rows %d",
				r.P, r.Jitter, r.RowsIntegrated, r.RowsStamped, r.Rows)
		}
		if r.NaiveMS <= 0 || r.CongruentMS <= 0 || math.IsInf(r.Speedup, 0) {
			t.Errorf("p=%d jitter=%g: timings not recorded: naive=%.3f congruent=%.3f",
				r.P, r.Jitter, r.NaiveMS, r.CongruentMS)
		}
	}
	// The dyadic periodic run stamps most rows; the jittered run may demote
	// everything but must still account for every row.
	if dyadic := rep.Results[0]; dyadic.RowsStamped == 0 {
		t.Errorf("dyadic run stamped no rows: %+v", dyadic)
	}
	if md := rep.Markdown(); !strings.Contains(md, "| 1 | 0.00 |") {
		t.Errorf("markdown table missing dyadic row:\n%s", md)
	}
	if gha := rep.GHA(); len(gha) != 2 || gha[0].Unit != "ms" {
		t.Errorf("GHA entries malformed: %+v", gha)
	}
}
