package bench

import (
	"fmt"

	"time"

	"unstencil/internal/core"
	"unstencil/internal/device"
	"unstencil/internal/geom"
	"unstencil/internal/grid"
	"unstencil/internal/metrics"
	"unstencil/internal/spatial"
	"unstencil/internal/tile"
)

// evaluator builds a core.Evaluator for the session's cached field.
func (s *Session) evaluator(kind Kind, size, p, gridDegree int) (*core.Evaluator, error) {
	f, err := s.Field(kind, size, p)
	if err != nil {
		return nil, err
	}
	return core.NewEvaluator(f, core.Options{
		P:          p,
		GridDegree: gridDegree,
		Workers:    s.Cfg.Workers,
	})
}

// Table1 counts intersection tests for both schemes on low-variance meshes
// with linear polynomials — the paper's Table 1. Counting is exact and runs
// at full scale.
func (s *Session) Table1() (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Number of intersection tests (linear polynomials, LV meshes)",
		Header: []string{"Mesh Size", "# Per-Point Tests", "# Per-Element Tests",
			"Ratio"},
		Notes: []string{
			"paper reports ~1.9x fewer per-element tests at every size",
		},
	}
	for _, size := range s.Cfg.Sizes {
		// Table 1 uses the paper's full evaluation grid regardless of the
		// sweep's grid density.
		ev, err := s.evaluator(LowVariance, size, 1, 0)
		if err != nil {
			return nil, err
		}
		pp := ev.CountIntersectionTests(core.PerPoint)
		pe := ev.CountIntersectionTests(core.PerElement)
		s.logf("table1 %s: per-point %d, per-element %d", sizeLabel(size), pp, pe)
		t.AddRow(sizeLabel(size), fmt.Sprintf("%d", pp), fmt.Sprintf("%d", pe),
			fmt.Sprintf("%.2f", float64(pp)/float64(pe)))
	}
	return t, nil
}

// Fig8 measures the tiling memory overhead of the per-element scheme with
// the paper's 16 patches and linear polynomials, relative to baseline
// solution storage; the per-point scheme is the 1.0 baseline.
func (s *Session) Fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Memory overhead of per-element tiling (16 patches, linear)",
		Header: []string{"Mesh Size", "Per-Point", "Per-Element", "Partial Values", "Grid Points"},
		Notes: []string{
			"overhead = stored partial solutions / grid points; decreases with mesh size",
		},
	}
	for _, size := range s.Cfg.Sizes {
		ev, err := s.evaluator(LowVariance, size, 1, 0)
		if err != nil {
			return nil, err
		}
		partials, overhead := tile.MeasureOverhead(
			ev.Mesh, ev.NumPoints(), s.Cfg.Patches, ev.CandidateMarker())
		s.logf("fig8 %s: overhead %.3f", sizeLabel(size), overhead)
		t.AddRow(sizeLabel(size), "1.000", fmt.Sprintf("%.3f", overhead),
			fmt.Sprintf("%d", partials), fmt.Sprintf("%d", ev.NumPoints()))
	}
	return t, nil
}

// sweepResult holds one (kind, order, size, scheme) measurement.
type sweepResult struct {
	gflops  float64
	seconds float64
	flops   uint64
	tests   uint64
}

// runScheme executes one scheme and converts the per-block counters to a
// modeled single-device time.
func (s *Session) runScheme(ev *core.Evaluator, scheme core.Scheme) (sweepResult, error) {
	sim := device.Sim{Devices: 1, SMs: s.Cfg.Patches}
	var res *core.Result
	var err error
	var reduction float64
	switch scheme {
	case core.PerPoint:
		res, err = ev.RunPerPoint(s.Cfg.Patches)
	case core.PerElement:
		tl := ev.NewTiling(s.Cfg.Patches)
		res, err = ev.RunPerElement(tl)
		if err == nil {
			reduction = float64(tl.PartialValues()) * 2
		}
	}
	if err != nil {
		return sweepResult{}, err
	}
	tm := sim.RunCounters(res.Blocks, reduction)
	secs := device.Seconds(tm.Total) / device.Occupancy(ev.Opt.P)
	return sweepResult{
		gflops:  device.GFlops(res.Total.Flops, secs),
		seconds: secs,
		flops:   res.Total.Flops,
		tests:   res.Total.IntersectionTests,
	}, nil
}

// measure runs (or returns the cached result of) one scheme at one sweep
// configuration, so Fig. 13 reuses the Fig. 11/12 runs.
func (s *Session) measure(kind Kind, size, p int, scheme core.Scheme) (sweepResult, error) {
	key := fmt.Sprintf("%v-%d-%d-%v-%d", kind, size, p, scheme, s.Cfg.GridDegree)
	if r, ok := s.sweeps[key]; ok {
		return r, nil
	}
	ev, err := s.evaluator(kind, size, p, s.Cfg.GridDegree)
	if err != nil {
		return sweepResult{}, err
	}
	r, err := s.runScheme(ev, scheme)
	if err != nil {
		return sweepResult{}, err
	}
	s.sweeps[key] = r
	return r, nil
}

// FlopSweep runs both schemes over all orders and sizes for one mesh kind
// and produces the GFLOP/s figure (Fig. 11 for LV, Fig. 12 for HV) and the
// relative-speedup figure rows for Fig. 13.
func (s *Session) FlopSweep(kind Kind) (gflops, speedup *Table, err error) {
	figID := "fig11"
	if kind == HighVariance {
		figID = "fig12"
	}
	gflops = &Table{
		ID:     figID,
		Title:  fmt.Sprintf("Modeled GFLOP/s, %v meshes", kind),
		Header: []string{"Mesh Size"},
		Notes: []string{
			"modeled single-device throughput; paper peaks at 345 GFLOP/s (linear, per-element)",
			"relative ordering and order-dependence are the reproduction target",
		},
	}
	speedup = &Table{
		ID:     "fig13-" + kind.String(),
		Title:  fmt.Sprintf("Per-element speedup over per-point, %v meshes", kind),
		Header: []string{"Mesh Size"},
		Notes: []string{
			"paper reports 2x-6x, larger on HV meshes, smaller at higher order",
		},
	}
	for _, p := range s.Cfg.Orders {
		gflops.Header = append(gflops.Header,
			fmt.Sprintf("P%d Per-Elem", p), fmt.Sprintf("P%d Per-Point", p))
		speedup.Header = append(speedup.Header, fmt.Sprintf("P%d", p))
	}
	for _, size := range s.Cfg.Sizes {
		grow := []string{sizeLabel(size)}
		srow := []string{sizeLabel(size)}
		for _, p := range s.Cfg.Orders {
			pe, err := s.measure(kind, size, p, core.PerElement)
			if err != nil {
				return nil, nil, err
			}
			pp, err := s.measure(kind, size, p, core.PerPoint)
			if err != nil {
				return nil, nil, err
			}
			s.logf("%s %v %s P%d: per-elem %.1f GF/s, per-point %.1f GF/s, speedup %.2f",
				figID, kind, sizeLabel(size), p, pe.gflops, pp.gflops, pp.seconds/pe.seconds)
			grow = append(grow, fmt.Sprintf("%.1f", pe.gflops), fmt.Sprintf("%.1f", pp.gflops))
			srow = append(srow, fmt.Sprintf("%.2f", pp.seconds/pe.seconds))
		}
		gflops.AddRow(grow...)
		speedup.AddRow(srow...)
	}
	return gflops, speedup, nil
}

// Fig13 combines the LV and HV speedup sweeps into the paper's Fig. 13
// layout (one row group per polynomial order).
func (s *Session) Fig13() (*Table, error) {
	_, lv, err := s.FlopSweep(LowVariance)
	if err != nil {
		return nil, err
	}
	_, hv, err := s.FlopSweep(HighVariance)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "Relative speedup of per-element over per-point (normalized per-point = 1)",
		Header: []string{"Mesh Size"},
		Notes:  lv.Notes,
	}
	for _, p := range s.Cfg.Orders {
		t.Header = append(t.Header,
			fmt.Sprintf("P%d LV", p), fmt.Sprintf("P%d HV", p))
	}
	for i := range lv.Rows {
		row := []string{lv.Rows[i][0]}
		for j := 1; j < len(lv.Rows[i]); j++ {
			row = append(row, lv.Rows[i][j], hv.Rows[i][j])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14 runs the per-element scheme with linear polynomials on 1, 2, 4 and
// 8 simulated devices (NGPU × NSM patches each) and reports modeled times —
// the paper's multi-GPU scaling study.
func (s *Session) Fig14() (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Per-element multi-device scaling (linear polynomials, LV meshes, modeled ms)",
		Header: []string{"Mesh Size"},
		Notes: []string{
			"paper shows near-perfect linear scaling in mesh size and device count",
		},
	}
	for _, d := range s.Cfg.Devices {
		t.Header = append(t.Header, fmt.Sprintf("%dx dev (ms)", d))
	}
	t.Header = append(t.Header, "speedup 1→max")
	for _, size := range s.Cfg.Sizes {
		ev, err := s.evaluator(LowVariance, size, 1, s.Cfg.GridDegree)
		if err != nil {
			return nil, err
		}
		row := []string{sizeLabel(size)}
		var first, last float64
		for i, d := range s.Cfg.Devices {
			k := d * s.Cfg.Patches
			tl := ev.NewTiling(k)
			res, err := ev.RunPerElement(tl)
			if err != nil {
				return nil, err
			}
			sim := device.Sim{Devices: d, SMs: s.Cfg.Patches}
			tm := sim.RunCounters(res.Blocks, float64(tl.PartialValues())*2)
			ms := device.Seconds(tm.Total) * 1e3
			if i == 0 {
				first = ms
			}
			last = ms
			s.logf("fig14 %s %dx: %.2f ms (overhead %.3f)",
				sizeLabel(size), d, ms, res.MemoryOverhead)
			row = append(row, fmt.Sprintf("%.3f", ms))
		}
		row = append(row, fmt.Sprintf("%.2f", first/last))
		t.AddRow(row...)
	}
	return t, nil
}

// CellSweep is ablation A1: how hash-grid cell-size factors change the
// candidate (intersection-test) counts, justifying the paper's cp = s and
// ce = s/2 choices.
func (s *Session) CellSweep() (*Table, error) {
	t := &Table{
		ID:     "cellsweep",
		Title:  "Ablation: hash-grid cell-size factors vs intersection tests",
		Header: []string{"Config", "Tests"},
		Notes: []string{
			"per-point cells below s are rejected (enclosure); larger cells add halo waste",
			"per-element cells around s/2 minimise false candidates",
		},
	}
	size := s.Cfg.Sizes[0]
	f, err := s.Field(LowVariance, size, 1)
	if err != nil {
		return nil, err
	}
	for _, cf := range []float64{1, 1.5, 2, 3} {
		ev, err := core.NewEvaluator(f, core.Options{
			P: 1, Workers: s.Cfg.Workers, CellFactorPoint: cf,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("per-point cp=%.1fs", cf),
			fmt.Sprintf("%d", ev.CountIntersectionTests(core.PerPoint)))
	}
	for _, cf := range []float64{0.25, 0.5, 1, 2} {
		ev, err := core.NewEvaluator(f, core.Options{
			P: 1, Workers: s.Cfg.Workers, CellFactorElem: cf,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("per-element ce=%.2fs", cf),
			fmt.Sprintf("%d", ev.CountIntersectionTests(core.PerElement)))
	}
	return t, nil
}

// TilingComparison is ablation A2: overlapped tiling (scratch-pad partials
// + reduction) vs pipelined tiling (colour waves writing in place). The
// paper reports that pipelining adds no memory overhead but loses overall
// performance to the extra synchronisation.
func (s *Session) TilingComparison() (*Table, error) {
	t := &Table{
		ID:     "tiling",
		Title:  "Ablation: overlapped vs pipelined tiling (per-element, linear)",
		Header: []string{"Mesh Size", "Overlapped (ms)", "Pipelined (ms)", "Colors", "Overlap Overhead"},
	}
	sim := device.Sim{Devices: 1, SMs: s.Cfg.Patches}
	for _, size := range s.Cfg.Sizes {
		ev, err := s.evaluator(LowVariance, size, 1, s.Cfg.GridDegree)
		if err != nil {
			return nil, err
		}
		tl := ev.NewTiling(s.Cfg.Patches)
		res, err := ev.RunPerElement(tl)
		if err != nil {
			return nil, err
		}
		// Overlapped: all patches concurrent + reduction.
		over := sim.RunCounters(res.Blocks, float64(tl.PartialValues())*2)
		// Pipelined: colour waves run back to back; no reduction stage, but
		// each wave waits for the slowest member.
		colors := tl.Colors()
		nc := 0
		for _, c := range colors {
			if c+1 > nc {
				nc = c + 1
			}
		}
		pipe := 0.0
		for c := 0; c < nc; c++ {
			var wave []metrics.Counters
			for p, pc := range colors {
				if pc == c {
					wave = append(wave, res.Blocks[p])
				}
			}
			pipe += sim.RunCounters(wave, 0).Compute
		}
		t.AddRow(sizeLabel(size),
			fmt.Sprintf("%.3f", device.Seconds(over.Total)*1e3),
			fmt.Sprintf("%.3f", device.Seconds(pipe)*1e3),
			fmt.Sprintf("%d", nc),
			fmt.Sprintf("%.3f", tl.Overhead()))
	}
	return t, nil
}

// PatchSweep is ablation A3: the memory-overhead vs parallelism trade as
// the patch count grows (paper §4 discussion).
func (s *Session) PatchSweep() (*Table, error) {
	t := &Table{
		ID:     "patches",
		Title:  "Ablation: patch count vs overhead and modeled time (per-element, linear)",
		Header: []string{"Patches", "Overhead", "Modeled ms (16-SM device)"},
	}
	size := s.Cfg.Sizes[len(s.Cfg.Sizes)-1]
	ev, err := s.evaluator(LowVariance, size, 1, s.Cfg.GridDegree)
	if err != nil {
		return nil, err
	}
	sim := device.Sim{Devices: 1, SMs: s.Cfg.Patches}
	for _, k := range []int{4, 8, 16, 32, 64} {
		tl := ev.NewTiling(k)
		res, err := ev.RunPerElement(tl)
		if err != nil {
			return nil, err
		}
		tm := sim.RunCounters(res.Blocks, float64(tl.PartialValues())*2)
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", tl.Overhead()),
			fmt.Sprintf("%.3f", device.Seconds(tm.Total)*1e3))
	}
	return t, nil
}

// All runs every experiment and returns the tables in paper order.
func (s *Session) All() ([]*Table, error) {
	var out []*Table
	t1, err := s.Table1()
	if err != nil {
		return nil, err
	}
	out = append(out, t1)
	f8, err := s.Fig8()
	if err != nil {
		return nil, err
	}
	out = append(out, f8)
	g11, _, err := s.FlopSweep(LowVariance)
	if err != nil {
		return nil, err
	}
	out = append(out, g11)
	g12, _, err := s.FlopSweep(HighVariance)
	if err != nil {
		return nil, err
	}
	out = append(out, g12)
	f13, err := s.Fig13()
	if err != nil {
		return nil, err
	}
	out = append(out, f13)
	f14, err := s.Fig14()
	if err != nil {
		return nil, err
	}
	out = append(out, f14)
	for _, fn := range []func() (*Table, error){s.CellSweep, s.TilingComparison, s.PatchSweep, s.SpatialSweep} {
		tb, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// SpatialSweep is ablation A4: compare the uniform hash grid against the
// alternative spatial indices the paper lists (§3: k-d trees, quad trees,
// bounding volume hierarchies) on the post-processor's actual query
// workload — square stencil windows over the evaluation grid points. The
// hash grid returns a slight superset of candidates (cell granularity) but
// answers queries in O(cells); the exact tree structures pay traversal
// overhead per query. This quantifies the paper's "a uniform hash grid was
// the most applicable choice".
func (s *Session) SpatialSweep() (*Table, error) {
	t := &Table{
		ID:     "spatial",
		Title:  "Ablation: spatial index choice on the stencil-query workload",
		Header: []string{"Index", "Build (ms)", "10k queries (ms)", "Candidates"},
	}
	size := s.Cfg.Sizes[0]
	ev, err := s.evaluator(LowVariance, size, 1, 0)
	if err != nil {
		return nil, err
	}
	// The workload: the per-point stencil boxes of the first 10k points.
	locs := make([]geom.Point, len(ev.Points))
	for i, gp := range ev.Points {
		locs[i] = gp.Pos
	}
	nq := 10000
	if nq > len(ev.Points) {
		nq = len(ev.Points)
	}
	boxes := make([]geom.AABB, nq)
	half := ev.W / 2
	for i := 0; i < nq; i++ {
		p := ev.Points[i].Pos
		boxes[i] = geom.Box(p.X-half, p.Y-half, p.X+half, p.Y+half)
	}

	type impl struct {
		name  string
		build func() func(geom.AABB) int
	}
	cellSize := ev.Mesh.LongestEdge() / 2
	impls := []impl{
		{"hash grid (paper)", func() func(geom.AABB) int {
			g := grid.New(locs, cellSize)
			return func(b geom.AABB) int { return g.CountInBox(b, 0) }
		}},
		{"k-d tree", func() func(geom.AABB) int {
			k := spatial.NewKDTree(locs)
			return func(b geom.AABB) int { return k.CountInBox(b) }
		}},
		{"quadtree", func() func(geom.AABB) int {
			q := spatial.NewQuadtree(locs)
			return func(b geom.AABB) int { return q.CountInBox(b) }
		}},
		{"bvh", func() func(geom.AABB) int {
			v := spatial.NewBVH(locs)
			return func(b geom.AABB) int { return v.CountInBox(b) }
		}},
	}
	for _, im := range impls {
		start := time.Now()
		query := im.build()
		buildMS := float64(time.Since(start).Microseconds()) / 1e3
		start = time.Now()
		cands := 0
		for _, b := range boxes {
			cands += query(b)
		}
		queryMS := float64(time.Since(start).Microseconds()) / 1e3
		t.AddRow(im.name,
			fmt.Sprintf("%.2f", buildMS),
			fmt.Sprintf("%.2f", queryMS),
			fmt.Sprintf("%d", cands))
	}
	return t, nil
}
