// Package server implements unstencild, a resident SIAC post-processing
// service over the paper's evaluation schemes. It exists because every
// batch entry point rebuilds meshes, dG fields, SIAC kernel tables and
// spatial grids per invocation and exits; a long-running process that keeps
// those artifacts warm across requests amortises exactly the setup the
// paper's data-reuse argument targets, and gives later scaling work
// (sharding, batching, multi-backend) a substrate to build on.
//
// The HTTP/JSON API (stdlib net/http only):
//
//	POST   /v1/meshes          upload + decode a mesh once; returns its
//	                           content-hash id
//	GET    /v1/meshes/{id}     stats of a resident mesh
//	POST   /v1/jobs            submit a post-processing job (JobSpec)
//	GET    /v1/jobs            list retained jobs
//	GET    /v1/jobs/{id}       job status + exact counters
//	GET    /v1/jobs/{id}/result  post-processed solution array
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	POST   /v1/shard/eval      patch-scoped partial evaluation (cluster
//	                           shard mode; see shard.go)
//	POST   /v1/shard/coverage  uncovered-point set of failed patches
//	GET    /healthz            liveness
//	GET    /readyz             readiness: startup work done, queue below
//	                           saturation (what the coordinator polls)
//	GET    /debug/metrics      queue depth, workers busy, cache hit rate,
//	                           cumulative per-scheme counters
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"unstencil/internal/artifact"
	"unstencil/internal/fault"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

// Config sizes the service; zero fields take the documented defaults.
type Config struct {
	// Workers is the job worker pool size (default 2).
	Workers int
	// QueueSize bounds the FIFO job queue (default 64); submissions beyond
	// it receive 503.
	QueueSize int
	// CacheBytes bounds the artifact cache (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes bounds request bodies, mesh uploads included
	// (default 32 MiB).
	MaxBodyBytes int64
	// JobTimeout caps each job's evaluation time (default 5m).
	JobTimeout time.Duration
	// DefaultBlocks is the blocks/patches default for jobs that omit it
	// (default 16).
	DefaultBlocks int
	// EvalWorkers bounds each evaluation's internal concurrency;
	// 0 means GOMAXPROCS.
	EvalWorkers int
	// StateDir, when set, enables crash recovery: accepted jobs are recorded
	// in a fsynced journal and uploaded meshes persisted to disk, and on
	// startup incomplete jobs are re-enqueued. Empty disables durability.
	StateDir string
	// StoreDir roots the persistent artifact store (meshes, assembled
	// operators). Precedence: an explicit StoreDir wins; otherwise, with
	// StateDir set, the store lives at <StateDir>/store so journal replay
	// re-uses disk-resident artifacts; with neither set there is no disk
	// tier. StoreDir alone enables artifact persistence without journaling.
	StoreDir string
	// StageTimeout caps each pipeline stage (artifact build, evaluation)
	// separately; 0 means the job timeout.
	StageTimeout time.Duration
	// Retry shapes unit- and job-level retry of transient failures
	// (zero value: no retry).
	Retry RetryPolicy
	// Log receives structured request and job logs; nil disables logging.
	Log *slog.Logger
}

func (c *Config) defaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultBlocks <= 0 {
		c.DefaultBlocks = 16
	}
}

// Server is the unstencild HTTP handler plus its resident state.
type Server struct {
	cfg      Config
	arts     *Artifacts
	mgr      *Manager
	journal  *Journal
	faults   *metrics.FaultCounters
	storeCtr metrics.StoreCounters
	log      *slog.Logger
	start    time.Time
	handler  http.Handler
	// ready flips once startup work (journal replay, artifact-store GC) has
	// completed; /readyz additionally requires the job queue to be below
	// saturation. Distinct from /healthz liveness, which is true the moment
	// the process serves HTTP.
	ready atomic.Bool
}

// New assembles the artifact cache, job manager and routes. With
// cfg.StateDir set it also opens the durable mesh store and the job journal,
// and re-enqueues jobs that were accepted but unfinished when the previous
// process died.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:    cfg,
		arts:   NewArtifacts(NewCache(cfg.CacheBytes), cfg.EvalWorkers),
		faults: &metrics.FaultCounters{},
		log:    cfg.Log,
		start:  time.Now(),
	}
	s.arts.SetLog(cfg.Log)
	storeDir := cfg.StoreDir
	if storeDir == "" && cfg.StateDir != "" {
		storeDir = filepath.Join(cfg.StateDir, "store")
	}
	if storeDir != "" {
		store, err := artifact.NewStore(storeDir, &s.storeCtr)
		if err != nil {
			return nil, err
		}
		s.arts.SetStore(store)
	}
	var pending []PendingJob
	if cfg.StateDir != "" {
		var err error
		s.journal, pending, err = OpenJournal(cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	s.mgr = NewManager(s.arts, cfg.Log, ManagerConfig{
		Workers:      cfg.Workers,
		QueueSize:    cfg.QueueSize,
		JobTimeout:   cfg.JobTimeout,
		StageTimeout: cfg.StageTimeout,
		DefaultBlock: cfg.DefaultBlocks,
		Retry:        cfg.Retry,
		Journal:      s.journal,
		Faults:       s.faults,
	})
	s.mgr.Replay(pending)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/meshes", s.handleMeshUpload)
	mux.HandleFunc("GET /v1/meshes/{id}", s.handleMeshGet)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /v1/shard/eval", s.handleShardEval)
	mux.HandleFunc("POST /v1/shard/coverage", s.handleShardCoverage)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	s.handler = s.withLogging(s.withRecovery(mux))
	// Startup work — journal replay and artifact-store GC — happens
	// synchronously above, so by this point the process is ready modulo
	// queue saturation, which handleReadyz re-checks per request.
	s.ready.Store(true)
	return s, nil
}

// Close releases durable-state resources (the journal file). It does not
// stop the job manager; call Manager().Shutdown first.
func (s *Server) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// Faults exposes the shared recovery counters (metrics endpoint, tests).
func (s *Server) Faults() *metrics.FaultCounters { return s.faults }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.handler.ServeHTTP(w, r)
}

// Manager exposes the job manager (shutdown, tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Artifacts exposes the artifact cache façade (tests, embedding servers).
func (s *Server) Artifacts() *Artifacts { return s.arts }

// statusRecorder captures the response code for the request log and whether
// the response has started (the recovery middleware can only substitute a
// 500 before the first write).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.wrote = true
		if r.status == 0 {
			r.status = http.StatusOK
		}
	}
	return r.ResponseWriter.Write(b)
}

// withRecovery converts a handler panic into a 500 JSON error instead of
// killing the connection (and, under net/http, only the goroutine — but a
// panicking handler still drops the response on the floor). It sits inside
// withLogging so the request log records the 500. http.ErrAbortHandler is
// re-panicked: it is the sanctioned way to abort a response.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.faults.PanicsRecovered.Add(1)
			if s.log != nil {
				s.log.Error("handler panic recovered",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			}
			// If the handler already started the response we cannot change
			// the status; otherwise surface a JSON 500.
			if !rec.wrote {
				writeError(w, http.StatusInternalServerError, "internal error: %v", v)
			}
		}()
		// The injection site covers the whole request path: in panic mode it
		// exercises this very middleware, in error mode it simulates a
		// handler failing before writing a response.
		if err := fault.Inject(SiteHandler); err != nil {
			panic(err)
		}
		next.ServeHTTP(rec, r)
	})
}

func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.log == nil {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"duration", time.Since(start), "remote", r.RemoteAddr)
	})
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleMeshUpload(w http.ResponseWriter, r *http.Request) {
	m, err := mesh.Decode(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"mesh exceeds the %d-byte upload limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.arts.PutMesh(m)
	if err != nil && s.log != nil {
		// The mesh is resident in memory; losing the durable copy only
		// weakens crash recovery, so serve degraded rather than reject.
		s.log.Warn("mesh not persisted; jobs on it will not survive a restart",
			"mesh", id, "err", err)
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"mesh_id":   id,
		"num_tris":  m.NumTris(),
		"num_verts": m.NumVerts(),
	})
}

func (s *Server) handleMeshGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.arts.Mesh(id)
	if !ok {
		writeError(w, http.StatusNotFound, "mesh %q not resident", id)
		return
	}
	st := m.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"mesh_id":      id,
		"num_tris":     st.NumTris,
		"num_verts":    st.NumVerts,
		"longest_edge": st.MaxEdge,
		"edge_cv":      st.CV,
		"min_angle":    st.MinAngleDeg,
		"total_area":   st.TotalArea,
	})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.Status())
	case errors.Is(err, ErrQueueFull):
		// Retry-After is derived from the observed job service time and the
		// live queue depth, so a saturated server tells clients how long a
		// slot actually takes to free instead of a hardcoded guess.
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrMeshNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.Jobs()})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	res, ok := job.Result()
	if !ok {
		st := job.Status()
		if st.State == StateFailed {
			writeError(w, http.StatusConflict, "job %s failed: %s", job.ID, st.Error)
			return
		}
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", job.ID, st.State)
		return
	}
	body := map[string]any{
		"job_id":          job.ID,
		"scheme":          res.Scheme.String(),
		"num_points":      len(res.Solution),
		"memory_overhead": res.MemoryOverhead,
		"solution":        res.Solution,
	}
	if len(res.Solutions) > 0 {
		// Multi-field batched apply: one solution per requested field, in
		// order; "solution" stays the first field for compatibility.
		body["fields"] = job.Spec.Fields
		body["solutions"] = res.Solutions
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		if _, ok := s.mgr.Job(id); !ok {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job_id": id, "cancelled": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}

// readiness reports whether the service should receive traffic: startup
// work (journal replay, artifact-store GC) done and the job queue below
// saturation. A full queue is honest back-pressure — the coordinator's
// health checker treats it as "alive but do not route new work here".
func readiness(started bool, depth, capacity int) (bool, string) {
	switch {
	case !started:
		return false, "startup (journal replay, store GC) in progress"
	case depth >= capacity:
		return false, fmt.Sprintf("job queue saturated (%d/%d)", depth, capacity)
	default:
		return true, ""
	}
}

// handleReadyz serves GET /readyz, the readiness probe the cluster
// coordinator consumes. Unlike /healthz (liveness: the process answers),
// readiness also demands that replayed state is loaded and the queue can
// absorb a submission; 503 means "up, but route elsewhere for now".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.mgr.QueueDepth(), s.mgr.QueueCapacity()
	ready, reason := readiness(s.ready.Load(), depth, capacity)
	body := map[string]any{
		"ready":          ready,
		"started":        s.ready.Load(),
		"queue_depth":    depth,
		"queue_capacity": capacity,
	}
	if reason != "" {
		body["reason"] = reason
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cache := s.arts.Stats()
	body := map[string]any{
		"uptime_ms":      float64(time.Since(s.start)) / float64(time.Millisecond),
		"queue_depth":    s.mgr.QueueDepth(),
		"queue_capacity": s.mgr.QueueCapacity(),
		"workers":        s.mgr.Workers(),
		"workers_busy":   s.mgr.Busy(),
		"jobs":           s.mgr.StateCounts(),
		"cache":          cache,
		"cache_hit_rate": cache.HitRate(),
		// Per-class residency: the "op"/"qop" rows are the assembled-operator
		// LRU accounting (resident bytes, cumulative evictions).
		"cache_classes": s.arts.cache.StatsByClass(),
		"schemes":       s.mgr.Totals(),
		"faults":        s.faults.Snapshot(),
		// Assembled-operator traffic: batched vs single applies, template
		// dedup hit-rate and resident bytes saved across admitted operators.
		"operator": s.arts.Ops().Snapshot(),
	}
	if st := s.arts.Store(); st != nil {
		body["store"] = st.Counters().Snapshot()
		body["store_dir"] = st.Dir()
	}
	if fault.Enabled() {
		body["fault_injection"] = fault.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}
