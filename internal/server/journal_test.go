package server

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"unstencil/internal/artifact"
	"unstencil/internal/mesh"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending jobs", len(pending))
	}
	specA := JobSpec{MeshID: "aaaa", Scheme: "per-element", P: 2, Blocks: 4}
	specB := JobSpec{MeshID: "bbbb", Scheme: "per-point", P: 1, Blocks: 8}
	if err := j.Accept("job-00000001", specA); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-00000002", specB); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("job-00000001", StateDone); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: only the unfinished job is pending, and compaction rewrote the
	// file to just that accept record.
	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].ID != "job-00000002" {
		t.Fatalf("pending = %+v, want exactly job-00000002", pending)
	}
	if !reflect.DeepEqual(pending[0].Spec, specB) {
		t.Fatalf("replayed spec %+v, want %+v", pending[0].Spec, specB)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; lines != 1 {
		t.Errorf("compacted journal has %d lines, want 1:\n%s", lines, data)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial last line; replay
// must keep everything before it and discard the torn record.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{MeshID: "cccc", Scheme: "per-point", P: 1}
	if err := j.Accept("job-00000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"finish","id":"job-000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn tail broke replay: %v", err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].ID != "job-00000001" {
		t.Fatalf("pending after torn tail = %+v", pending)
	}
}

// TestCrashRecoveryReplaysJobs is the kill-and-restart acceptance test. It
// builds exactly the on-disk state a crashed server leaves behind — a
// persisted mesh plus journal accept records with no finishes — then starts
// a fresh server on the same state directory and requires the jobs to be
// re-enqueued under their original IDs, complete successfully from the
// disk-backed mesh (the in-memory cache starts cold), and leave an empty
// journal for the next incarnation.
func TestCrashRecoveryReplaysJobs(t *testing.T) {
	dir := t.TempDir()
	m := mesh.Structured(4)

	// Persist the mesh exactly where a server with StateDir=dir keeps its
	// artifact store, so replay can reload it after the "crash".
	store, err := artifact.NewStore(filepath.Join(dir, "store"), nil)
	if err != nil {
		t.Fatal(err)
	}
	meshID, err := store.SaveMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-00000001", JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-00000002", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Blocks: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // the crash: no finish records
		t.Fatal(err)
	}

	srv := mustNew(t, Config{Workers: 2, EvalWorkers: 1, StateDir: dir})
	for _, id := range []string{"job-00000001", "job-00000002"} {
		job, ok := srv.Manager().Job(id)
		if !ok {
			t.Fatalf("job %s not replayed from journal", id)
		}
		select {
		case <-job.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("replayed job %s did not finish", id)
		}
		if st := job.Status(); st.State != StateDone {
			t.Fatalf("replayed job %s: state %s err %q", id, st.State, st.Error)
		}
	}
	if got := srv.Faults().Snapshot().JobsReplayed; got != 2 {
		t.Errorf("jobs replayed = %d, want 2", got)
	}

	// New submissions must not collide with replayed IDs.
	job, err := srv.Manager().Submit(JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-00000003" {
		t.Errorf("post-replay submission got ID %s, want job-00000003", job.ID)
	}
	<-job.Done()

	// Clean shutdown journals the finishes: the next incarnation replays
	// nothing.
	shutdownManager(t, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 0 {
		t.Fatalf("journal still pending after clean run: %+v", pending)
	}
}

// TestReplayDropsUnrecoverableJob: a journaled job whose mesh cannot be
// recovered fails immediately (with a journaled finish) instead of being
// replayed forever.
func TestReplayDropsUnrecoverableJob(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-00000001", JobSpec{MeshID: "gone", Scheme: "per-point", P: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	srv := mustNew(t, Config{Workers: 1, StateDir: dir})
	job, ok := srv.Manager().Job("job-00000001")
	if !ok {
		t.Fatal("dropped job not retained for status queries")
	}
	st := job.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "gone") {
		t.Fatalf("unrecoverable job state %s err %q", st.State, st.Error)
	}
	shutdownManager(t, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	j2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 0 {
		t.Fatalf("dropped job still journaled as pending: %+v", pending)
	}
}

// TestMeshStoreIntegrity: a stored mesh round-trips through the artifact
// store; a file substituted with a different mesh's bytes is rejected on
// load rather than silently served for the wrong content hash.
func TestMeshStoreIntegrity(t *testing.T) {
	dir := t.TempDir()
	store, err := artifact.NewStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.Structured(4)
	id, err := store.SaveMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Has("mesh:" + id) {
		t.Fatal("saved mesh not found on disk")
	}
	got, err := store.LoadMesh(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash() != id {
		t.Fatalf("round-trip hash %s != %s", got.ContentHash(), id)
	}
	if _, err := store.LoadMesh("missing"); err == nil {
		t.Error("loading a missing mesh succeeded")
	}

	// Substitute the stored artifact with a different mesh saved under its
	// own key: loading id must refuse (stored key/hash belong to the other
	// mesh), and the bad file must be deleted so a re-upload repairs it.
	other := mesh.Structured(6)
	otherID, err := store.SaveMesh(other)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.Path("mesh:" + otherID))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path("mesh:"+id), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadMesh(id); err == nil {
		t.Fatal("substituted mesh load succeeded, want key mismatch")
	}
	if store.Has("mesh:" + id) {
		t.Error("rejected artifact left on disk")
	}
	if got := store.Counters().Snapshot().CorruptRejected; got != 1 {
		t.Errorf("corrupt_rejected = %d, want 1", got)
	}
}

func shutdownManager(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Manager().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
