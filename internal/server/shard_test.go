package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
)

func postShard(t *testing.T, ts *httptest.Server, path string, req, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestShardEvalBitIdentical drives the shard endpoints the way the
// coordinator does: two disjoint patch-range requests, merged in ascending
// patch order, must reproduce a local per-element run bit for bit.
func TestShardEvalBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, EvalWorkers: 2})
	m := mesh.Structured(6)
	meshID := uploadMesh(t, ts, m)
	const k = 7

	f := dg.Project(m, 1, FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ev.RunPerElement(ev.NewTiling(k))
	if err != nil {
		t.Fatal(err)
	}

	merged := make([]float64, len(ref.Solution))
	var partials []ShardPatchPartial
	for _, patches := range [][]int{{0, 1, 2}, {3, 4, 5, 6}} {
		var resp ShardEvalResponse
		code := postShard(t, ts, "/v1/shard/eval", ShardEvalRequest{
			MeshID: meshID, P: 1, K: k, Patches: patches,
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("shard eval %v: status %d", patches, code)
		}
		if resp.NumPoints != len(ref.Solution) {
			t.Fatalf("num_points %d, want %d", resp.NumPoints, len(ref.Solution))
		}
		if len(resp.Patches) != len(patches) || len(resp.Failed) != 0 {
			t.Fatalf("got %d partials, %d failed; want %d, 0",
				len(resp.Patches), len(resp.Failed), len(patches))
		}
		if resp.Counters.IntersectionTests == 0 {
			t.Error("missing counters")
		}
		partials = append(partials, resp.Patches...)
	}
	for p := 0; p < k; p++ {
		for _, pp := range partials {
			if pp.Patch != p {
				continue
			}
			if len(pp.Points) != len(pp.Values) {
				t.Fatalf("patch %d: %d points, %d values", p, len(pp.Points), len(pp.Values))
			}
			for i, pt := range pp.Points {
				merged[pt] += pp.Values[i]
			}
		}
	}
	for i := range merged {
		if merged[i] != ref.Solution[i] {
			t.Fatalf("point %d: merged %v != local %v (must be bit-identical)",
				i, merged[i], ref.Solution[i])
		}
	}
}

// TestShardCoverageMatchesTiling: the coverage endpoint must agree exactly
// with the deterministic tiling's own uncovered-point accounting — that is
// what lets the coordinator stay honest about a dead shard's patches.
func TestShardCoverageMatchesTiling(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, EvalWorkers: 2})
	m := mesh.Structured(6)
	meshID := uploadMesh(t, ts, m)
	const k = 6

	f := dg.Project(m, 1, FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tl := ev.NewTiling(k)

	failed := []int{2, 5}
	var resp ShardCoverageResponse
	code := postShard(t, ts, "/v1/shard/coverage", ShardCoverageRequest{
		MeshID: meshID, P: 1, K: k, Failed: failed,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("coverage status %d", code)
	}
	wantIDs := tl.UncoveredIDs(failed)
	if resp.TotalPoints != tl.NumPoints {
		t.Errorf("total %d, want %d", resp.TotalPoints, tl.NumPoints)
	}
	if resp.UncoveredPoints != len(wantIDs) || resp.CoveredPoints != tl.NumPoints-len(wantIDs) {
		t.Errorf("uncovered/covered %d/%d, want %d/%d",
			resp.UncoveredPoints, resp.CoveredPoints, len(wantIDs), tl.NumPoints-len(wantIDs))
	}
	if len(resp.UncoveredIDs) != len(wantIDs) {
		t.Fatalf("%d uncovered ids, want %d", len(resp.UncoveredIDs), len(wantIDs))
	}
	for i, pt := range resp.UncoveredIDs {
		if pt != wantIDs[i] {
			t.Fatalf("uncovered id %d: %d != %d", i, pt, wantIDs[i])
		}
	}

	// Empty failed set: trivially fully covered.
	resp = ShardCoverageResponse{}
	if code := postShard(t, ts, "/v1/shard/coverage", ShardCoverageRequest{
		MeshID: meshID, P: 1, K: k,
	}, &resp); code != http.StatusOK {
		t.Fatalf("empty-failed coverage status %d", code)
	}
	if resp.UncoveredPoints != 0 || resp.CoveredPoints != tl.NumPoints {
		t.Errorf("empty failed set: uncovered %d covered %d", resp.UncoveredPoints, resp.CoveredPoints)
	}
}

// TestShardEvalValidation: bad requests are 400s, an unknown mesh is the
// 404 the coordinator's re-seed protocol keys on.
func TestShardEvalValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := mesh.Structured(4)
	meshID := uploadMesh(t, ts, m)

	cases := []ShardEvalRequest{
		{P: 1, K: 4, Patches: []int{0}},                                    // no mesh id
		{MeshID: meshID, P: 9, K: 4, Patches: []int{0}},                    // bad p
		{MeshID: meshID, P: 1, K: 0, Patches: []int{0}},                    // bad k
		{MeshID: meshID, P: 1, K: 4},                                       // no patches
		{MeshID: meshID, P: 1, K: 4, Patches: []int{4}},                    // patch out of range
		{MeshID: meshID, P: 1, K: 4, Patches: []int{0}, Boundary: "bogus"}, // bad boundary
	}
	for i, req := range cases {
		if code := postShard(t, ts, "/v1/shard/eval", req, nil); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
	code := postShard(t, ts, "/v1/shard/eval", ShardEvalRequest{
		MeshID: "absent", P: 1, K: 4, Patches: []int{0},
	}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown mesh: status %d, want 404", code)
	}
}
