package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/fault"
	"unstencil/internal/mesh"
)

// TestReplayPreservesPartialContract is the crash-recovery half of the
// graceful-degradation contract: a job accepted with allow_partial that
// crashed mid-stage and is replayed from the journal must keep that
// contract on the re-run — if units fail, it completes *degraded with
// coverage metadata*, never silently upgraded to a full-coverage result;
// and a replayed job without allow_partial fails outright under the same
// faults instead of fabricating coverage.
func TestReplayPreservesPartialContract(t *testing.T) {
	dir := t.TempDir()
	// 24x24: patch influence regions are ~40% of the grid, so two failed
	// patches can never blanket it — coverage stays strictly partial and
	// strictly positive, making the honesty assertions meaningful.
	m := mesh.Structured(24)
	const blocks = 8

	// Incarnation 1: persist the mesh, then die with an accepted-but-
	// unfinished allow_partial job in the journal (simulated crash
	// mid-stage: Accept written, no Finish).
	srv1 := mustNew(t, Config{Workers: 1, StateDir: dir})
	meshID := putMesh(t, srv1, m)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Manager().Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	j, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("unexpected pending jobs %v", pending)
	}
	crashed := "job-00000042"
	if err := j.Accept(crashed, JobSpec{
		MeshID: meshID, Scheme: "per-element", P: 1, Blocks: blocks, AllowPartial: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 replays the job while deterministic tile faults fire:
	// two patches exhaust their (single) attempt and must be surfaced as
	// lost coverage.
	enableFaults(t, fault.Config{
		Seed:      11,
		Mode:      fault.ModeError,
		Sites:     map[string]float64{core.SiteTile: 1},
		MaxFaults: 2,
	})
	srv2, ts := newTestServer(t, Config{Workers: 1, StateDir: dir})
	if srv2.Faults().JobsReplayed.Load() != 1 {
		t.Fatalf("jobs replayed = %d, want 1", srv2.Faults().JobsReplayed.Load())
	}
	st := waitJob(t, ts, crashed, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("replayed allow_partial job: state %s err %q", st.State, st.Error)
	}
	if !st.Degraded || st.Coverage == nil {
		t.Fatalf("replayed job silently upgraded to full coverage: degraded=%v coverage=%+v",
			st.Degraded, st.Coverage)
	}
	cov := st.Coverage
	if len(cov.FailedUnits) != 2 || cov.TotalUnits != blocks {
		t.Fatalf("coverage units %v/%d, want 2 failed of %d", cov.FailedUnits, cov.TotalUnits, blocks)
	}
	if cov.CoveredPoints >= cov.TotalPoints || cov.CoveredPoints <= 0 {
		t.Fatalf("coverage points %d/%d not honest", cov.CoveredPoints, cov.TotalPoints)
	}
	// The result endpoint still serves the partial solution.
	var res struct {
		Solution []float64 `json:"solution"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+crashed+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if len(res.Solution) != cov.TotalPoints {
		t.Fatalf("solution %d points, coverage says %d", len(res.Solution), cov.TotalPoints)
	}

	// Contrast: the same faults against a job WITHOUT allow_partial must
	// fail the job, not sneak out a silently-partial answer.
	fault.Disable()
	enableFaults(t, fault.Config{
		Seed:      11,
		Mode:      fault.ModeError,
		Sites:     map[string]float64{core.SiteTile: 1},
		MaxFaults: 1,
	})
	st2, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: blocks})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st2 = waitJob(t, ts, st2.ID, 60*time.Second); st2.State != StateFailed {
		t.Fatalf("non-partial job under faults: state %s (degraded=%v), want failed",
			st2.State, st2.Degraded)
	}
}
