package server

// This file implements shard mode: the endpoints a cluster coordinator
// drives. Any unstencild process can serve them — "shard" is a role, not a
// build flavour. The coordinator partitions a job's tiling patches across
// shards; each shard evaluates its assigned patches against its own
// resident evaluator and returns sparse partial-solution buffers (slot
// lists + values). The tiling is deterministic given (mesh, parameters,
// k), so every shard sees the identical decomposition, and the
// coordinator's ascending-patch-order merge reproduces a single-process
// per-element run bit for bit.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/fault"
	"unstencil/internal/metrics"
	"unstencil/internal/tile"
)

// SiteShardEval fires at the top of each shard patch-evaluation request, so
// a -fault-spec campaign can chaos the coordinator's retry and failover
// paths deterministically (the coordinator sees a 5xx, exactly as it would
// from a genuinely failing shard).
const SiteShardEval = "server.shard-eval"

// MaxUncoveredIDs bounds the uncovered-point id list one coverage response
// carries; the count fields stay exact beyond it.
const MaxUncoveredIDs = 1 << 16

// ShardEvalRequest asks for the partial solutions of a subset of the
// k-patch tiling of a resident mesh.
type ShardEvalRequest struct {
	MeshID     string `json:"mesh_id"`
	P          int    `json:"p"`
	GridDegree int    `json:"grid_degree,omitempty"`
	Boundary   string `json:"boundary,omitempty"`
	Field      string `json:"field,omitempty"`
	// K is the total patch count of the tiling (shared by every shard of
	// the job, whatever subset each one evaluates).
	K int `json:"k"`
	// Patches are the tiling patch ids this shard should evaluate.
	Patches []int `json:"patches"`
	// AllowPartial lets patches that exhaust their retries be dropped and
	// reported in Failed instead of failing the request.
	AllowPartial bool `json:"allow_partial,omitempty"`
	// TimeoutMS caps the evaluation; 0 means the server's job timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

func (q *ShardEvalRequest) normalize() error {
	if q.MeshID == "" {
		return errors.New("mesh_id is required")
	}
	if q.P < 1 || q.P > 4 {
		return fmt.Errorf("p must be in 1..4, got %d", q.P)
	}
	if q.GridDegree > MaxGridDegree {
		return fmt.Errorf("grid_degree must be <= %d, got %d", MaxGridDegree, q.GridDegree)
	}
	if q.Boundary == "" {
		q.Boundary = "periodic"
	}
	if _, err := parseBoundary(q.Boundary); err != nil {
		return err
	}
	if q.Field == "" {
		q.Field = "sincos"
	}
	if _, ok := FieldFuncs[q.Field]; !ok {
		return fmt.Errorf("unknown field %q (have %v)", q.Field, FieldNames())
	}
	if q.K < 1 || q.K > MaxBlocks {
		return fmt.Errorf("k must be in 1..%d, got %d", MaxBlocks, q.K)
	}
	if len(q.Patches) == 0 {
		return errors.New("patches must be non-empty")
	}
	for _, p := range q.Patches {
		if p < 0 || p >= q.K {
			return fmt.Errorf("patch %d outside [0, %d)", p, q.K)
		}
	}
	if q.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", q.TimeoutMS)
	}
	return nil
}

// ShardPatchPartial is one patch's sparse partial-solution buffer on the
// wire: Points[i] is the global grid point receiving Values[i]. Points is
// the patch's slot list, ascending.
type ShardPatchPartial struct {
	Patch  int       `json:"patch"`
	Points []int32   `json:"points"`
	Values []float64 `json:"values"`
}

// ShardEvalResponse carries the requested patches' partials plus the failed
// set (AllowPartial only) and the exact summed counters.
type ShardEvalResponse struct {
	MeshID         string              `json:"mesh_id"`
	K              int                 `json:"k"`
	NumPoints      int                 `json:"num_points"`
	Patches        []ShardPatchPartial `json:"patches"`
	Failed         []int               `json:"failed,omitempty"`
	Counters       metrics.Counters    `json:"counters"`
	MemoryOverhead float64             `json:"memory_overhead"`
	WallMS         float64             `json:"wall_ms"`
}

// handleShardEval serves POST /v1/shard/eval: patch-scoped per-element
// evaluation, synchronous on the request goroutine like /v1/query. The
// coordinator owns job lifecycle, retry across shards and the final merge;
// the shard contributes exact, deterministic partials.
func (s *Server) handleShardEval(w http.ResponseWriter, r *http.Request) {
	if err := fault.Inject(SiteShardEval); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var req ShardEvalRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard eval request: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard eval request: %v", err)
		return
	}
	ev, tiling, status, err := s.shardArtifacts(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	timeout := s.mgr.jobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	rs := &core.Resilience{
		MaxAttempts:  s.mgr.retry.Attempts,
		BaseDelay:    s.mgr.retry.Base,
		MaxDelay:     s.mgr.retry.Max,
		AllowPartial: req.AllowPartial,
		Faults:       s.faults,
	}
	start := time.Now()
	partials, failed, err := ev.EvalPatchesResilientCtx(ctx, tiling, req.Patches, rs)
	if err != nil {
		// Transient failures (injected faults, panics) are retryable by the
		// coordinator; permanent ones (cancellation, deadline) are its cue
		// to give up on this attempt.
		status := http.StatusInternalServerError
		if !core.Transient(err) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, "shard eval: %v", err)
		return
	}
	resp := ShardEvalResponse{
		MeshID:         req.MeshID,
		K:              req.K,
		NumPoints:      tiling.NumPoints,
		Patches:        make([]ShardPatchPartial, 0, len(partials)),
		Failed:         failed,
		MemoryOverhead: tiling.Overhead(),
		WallMS:         float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i := range partials {
		pp := &partials[i]
		resp.Patches = append(resp.Patches, ShardPatchPartial{
			Patch:  pp.Patch,
			Points: tiling.Slots[pp.Patch],
			Values: pp.Values,
		})
		resp.Counters.Add(&pp.Counters)
	}
	s.mgr.totals.Record("shard-eval", &resp.Counters)
	writeJSON(w, http.StatusOK, resp)
}

// ShardCoverageRequest asks for the uncovered-point set of a failed patch
// subset. The tiling is deterministic, so any live shard can answer for
// patches a dead shard owned — which is exactly how the coordinator keeps
// Coverage honest after a shard is lost.
type ShardCoverageRequest struct {
	MeshID     string `json:"mesh_id"`
	P          int    `json:"p"`
	GridDegree int    `json:"grid_degree,omitempty"`
	Boundary   string `json:"boundary,omitempty"`
	Field      string `json:"field,omitempty"`
	K          int    `json:"k"`
	Failed     []int  `json:"failed"`
}

// ShardCoverageResponse reports the exact uncovered-point accounting plus
// up to MaxUncoveredIDs of the ids themselves.
type ShardCoverageResponse struct {
	TotalPoints        int     `json:"total_points"`
	UncoveredPoints    int     `json:"uncovered_points"`
	CoveredPoints      int     `json:"covered_points"`
	UncoveredIDs       []int32 `json:"uncovered_ids,omitempty"`
	UncoveredTruncated bool    `json:"uncovered_truncated,omitempty"`
}

// handleShardCoverage serves POST /v1/shard/coverage.
func (s *Server) handleShardCoverage(w http.ResponseWriter, r *http.Request) {
	var req ShardCoverageRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard coverage request: %v", err)
		return
	}
	ereq := ShardEvalRequest{
		MeshID: req.MeshID, P: req.P, GridDegree: req.GridDegree,
		Boundary: req.Boundary, Field: req.Field, K: req.K,
		Patches: req.Failed,
	}
	if len(req.Failed) == 0 {
		// normalize requires a non-empty patch list; an empty failed set is
		// legal here and trivially fully covered.
		ereq.Patches = []int{0}
	}
	if err := ereq.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard coverage request: %v", err)
		return
	}
	_, tiling, status, err := s.shardArtifacts(&ereq)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	ids := tiling.UncoveredIDs(req.Failed)
	resp := ShardCoverageResponse{
		TotalPoints:     tiling.NumPoints,
		UncoveredPoints: len(ids),
		CoveredPoints:   tiling.NumPoints - len(ids),
	}
	if len(ids) > MaxUncoveredIDs {
		resp.UncoveredIDs = ids[:MaxUncoveredIDs]
		resp.UncoveredTruncated = true
	} else {
		resp.UncoveredIDs = ids
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardArtifacts resolves the evaluator and k-patch tiling for a normalized
// shard request, mapping failures to HTTP statuses (404 for a mesh the
// shard does not hold — the coordinator's cue to re-seed it).
func (s *Server) shardArtifacts(req *ShardEvalRequest) (*core.Evaluator, *tile.Tiling, int, error) {
	m, ok := s.arts.Mesh(req.MeshID)
	if !ok {
		return nil, nil, http.StatusNotFound,
			fmt.Errorf("mesh %q not resident (upload it via POST /v1/meshes)", req.MeshID)
	}
	boundary, _ := parseBoundary(req.Boundary) // validated by normalize
	ev, _, err := s.arts.Evaluator(m, req.MeshID, req.P, req.GridDegree, boundary, req.Field)
	if err != nil {
		return nil, nil, http.StatusUnprocessableEntity, err
	}
	evalKey := EvalKey(req.MeshID, req.P, req.GridDegree, boundary, req.Field)
	tiling, _, err := s.arts.Tiling(ev, evalKey, req.K)
	if err != nil {
		return nil, nil, http.StatusUnprocessableEntity, err
	}
	return ev, tiling, http.StatusOK, nil
}
