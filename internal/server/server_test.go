package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func putMesh(t *testing.T, srv *Server, m *mesh.Mesh) string {
	t.Helper()
	id, err := srv.arts.PutMesh(m)
	if err != nil {
		t.Fatalf("PutMesh: %v", err)
	}
	return id
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Manager().Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
	})
	return srv, ts
}

func encodeMesh(t *testing.T, m *mesh.Mesh) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mesh.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func uploadMesh(t *testing.T, ts *httptest.Server, m *mesh.Mesh) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/meshes", "application/json",
		bytes.NewReader(encodeMesh(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("mesh upload: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		MeshID string `json:"mesh_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MeshID != m.ContentHash() {
		t.Fatalf("mesh id %q != content hash %q", out.MeshID, m.ContentHash())
	}
	return out.MeshID
}

func submitJob(t *testing.T, ts *httptest.Server, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitJob(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) JobStatus {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("job %s status code %d", id, code)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(end) {
			t.Fatalf("job %s still %s after %v", id, st.State, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance scenario: upload a mesh once, run 8
// concurrent jobs across both schemes, verify every solution matches a
// direct core.Evaluator run, and verify a second identical job is served
// from the warm evaluator cache.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueSize: 32, EvalWorkers: 2})
	m := mesh.Structured(6)
	meshID := uploadMesh(t, ts, m)

	// Direct reference runs, same parameters as the jobs below.
	want := map[string][]float64{}
	f := dg.Project(m, 1, FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.PerPoint, core.PerElement} {
		res, err := ev.Run(scheme, 8)
		if err != nil {
			t.Fatal(err)
		}
		want[scheme.String()] = res.Solution
	}

	// Submit 8 jobs concurrently: 4 per scheme.
	ids := make([]string, 0, 8)
	schemes := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		scheme := "per-point"
		if i%2 == 1 {
			scheme = "per-element"
		}
		st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: scheme, P: 1, Blocks: 8})
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		if st.State != StateQueued && st.State != StateRunning {
			t.Fatalf("job %d: initial state %s", i, st.State)
		}
		ids = append(ids, st.ID)
		schemes = append(schemes, scheme)
	}

	for i, id := range ids {
		st := waitJob(t, ts, id, 60*time.Second)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s err %q", id, st.State, st.Error)
		}
		if st.Counters == nil || st.Counters.IntersectionTests == 0 {
			t.Errorf("job %s: missing counters in status", id)
		}
		var res struct {
			Scheme   string    `json:"scheme"`
			Solution []float64 `json:"solution"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
			t.Fatalf("job %s result code %d", id, code)
		}
		if res.Scheme != schemes[i] {
			t.Errorf("job %s: scheme %s, want %s", id, res.Scheme, schemes[i])
		}
		ref := want[schemes[i]]
		if len(res.Solution) != len(ref) {
			t.Fatalf("job %s: %d points, want %d", id, len(res.Solution), len(ref))
		}
		for p := range ref {
			if math.Abs(res.Solution[p]-ref[p]) > 1e-12 {
				t.Fatalf("job %s: solution[%d] = %v, direct run %v", id, p, res.Solution[p], ref[p])
			}
		}
	}

	// A second identical job must find the evaluator (and, per-element,
	// the tiling) already resident.
	st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: 8})
	if code != http.StatusAccepted {
		t.Fatalf("repeat job: status %d", code)
	}
	st = waitJob(t, ts, st.ID, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("repeat job failed: %s", st.Error)
	}
	hits := strings.Join(st.CacheHits, ",")
	if !strings.Contains(hits, "evaluator") || !strings.Contains(hits, "tiling") {
		t.Errorf("repeat job cache hits = %q, want evaluator and tiling", hits)
	}

	// Metrics must reflect the session.
	var metrics struct {
		Cache        CacheStats     `json:"cache"`
		CacheHitRate float64        `json:"cache_hit_rate"`
		Workers      int            `json:"workers"`
		Jobs         map[string]int `json:"jobs"`
		Schemes      map[string]struct {
			Runs uint64 `json:"runs"`
		} `json:"schemes"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics code %d", code)
	}
	if metrics.Cache.Hits == 0 || metrics.CacheHitRate <= 0 {
		t.Errorf("no cache hits recorded: %+v", metrics.Cache)
	}
	if metrics.Schemes["per-point"].Runs < 4 || metrics.Schemes["per-element"].Runs < 5 {
		t.Errorf("per-scheme totals wrong: %+v", metrics.Schemes)
	}
	if metrics.Jobs["done"] != 9 {
		t.Errorf("done jobs = %d, want 9", metrics.Jobs["done"])
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var h struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: code %d status %q", code, h.Status)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := mesh.Structured(4)
	meshID := uploadMesh(t, ts, m)

	cases := []struct {
		name string
		spec JobSpec
		code int
	}{
		{"unknown mesh", JobSpec{MeshID: "deadbeef", Scheme: "per-point", P: 1}, http.StatusNotFound},
		{"bad scheme", JobSpec{MeshID: meshID, Scheme: "quantum", P: 1}, http.StatusBadRequest},
		{"bad order", JobSpec{MeshID: meshID, Scheme: "per-point", P: 9}, http.StatusBadRequest},
		{"bad boundary", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Boundary: "moebius"}, http.StatusBadRequest},
		{"bad field", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Field: "plasma"}, http.StatusBadRequest},
		{"missing mesh id", JobSpec{Scheme: "per-point", P: 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if _, code := submitJob(t, ts, c.spec); code != c.code {
			t.Errorf("%s: status %d, want %d", c.name, code, c.code)
		}
	}

	// Malformed JSON and unknown fields.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"mesh_id":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/job-99999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/meshes/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown mesh: status %d", code)
	}

	// Bad mesh upload.
	resp, err = http.Post(ts.URL+"/v1/meshes", "application/json", strings.NewReader(`{"format":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mesh: status %d", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1024})
	m := mesh.Structured(12) // well over 1 KiB encoded
	resp, err := http.Post(ts.URL+"/v1/meshes", "application/json",
		bytes.NewReader(encodeMesh(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestQueueFullReturns503(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, EvalWorkers: 1})
	m := mesh.Structured(16)
	meshID := uploadMesh(t, ts, m)

	spec := JobSpec{MeshID: meshID, Scheme: "per-point", P: 2, Blocks: 4}
	saw503 := false
	accepted := []string{}
	for i := 0; i < 20 && !saw503; i++ {
		st, code := submitJob(t, ts, spec)
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, st.ID)
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("submit %d: unexpected status %d", i, code)
		}
	}
	if !saw503 {
		t.Error("never observed 503 with a single worker and queue of 1")
	}
	// Cancel leftovers so the cleanup drain is quick.
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, EvalWorkers: 1})
	m := mesh.Structured(32)
	meshID := uploadMesh(t, ts, m)

	st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-point", P: 2, Blocks: 8})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	final := waitJob(t, ts, st.ID, 60*time.Second)
	if final.State != StateFailed {
		t.Fatalf("cancelled job reached %s", final.State)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("cancelled job error = %q", final.Error)
	}
	// Result of a failed job is a conflict.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of failed job: status %d", code)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, EvalWorkers: 1})
	m := mesh.Structured(32)
	meshID := uploadMesh(t, ts, m)
	st, code := submitJob(t, ts, JobSpec{
		MeshID: meshID, Scheme: "per-element", P: 2, Blocks: 8, TimeoutMS: 1,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitJob(t, ts, st.ID, 60*time.Second)
	if final.State != StateFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("timed-out job: state %s err %q", final.State, final.Error)
	}
}

// TestGracefulShutdownDrains verifies the acceptance property: shutdown
// lets a running job finish, and no worker goroutines leak.
func TestGracefulShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := mustNew(t, Config{Workers: 2, EvalWorkers: 1})
	m := mesh.Structured(10)
	id := putMesh(t, srv, m)
	job, err := srv.Manager().Submit(JobSpec{MeshID: id, Scheme: "per-element", P: 1, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Manager().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := job.Status(); st.State != StateDone {
		t.Fatalf("drained job state %s err %q", st.State, st.Error)
	}

	// Submissions after shutdown are refused.
	if _, err := srv.Manager().Submit(JobSpec{MeshID: id, Scheme: "per-point", P: 1}); err == nil {
		t.Error("submit after shutdown succeeded")
	}

	// All worker goroutines must have exited (allow the runtime a moment
	// plus slack for unrelated test goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownDeadlineCancelsInFlight: when the drain window expires, the
// in-flight evaluation is aborted through its context rather than leaking.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, EvalWorkers: 1})
	m := mesh.Structured(32)
	id := putMesh(t, srv, m)
	job, err := srv.Manager().Submit(JobSpec{MeshID: id, Scheme: "per-point", P: 2, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Manager().Shutdown(ctx); err == nil {
		t.Log("job finished inside the drain window; cancellation path not exercised")
		return
	}
	<-job.Done()
	if st := job.Status(); st.State == StateRunning || st.State == StateQueued {
		t.Fatalf("job still %s after forced shutdown", st.State)
	}
}

// TestConcurrentSubmitAndShutdown hammers Submit while Shutdown runs to
// exercise the closing/enqueue race under -race.
func TestConcurrentSubmitAndShutdown(t *testing.T) {
	srv := mustNew(t, Config{Workers: 2, QueueSize: 4, EvalWorkers: 1})
	m := mesh.Structured(4)
	id := putMesh(t, srv, m)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = srv.Manager().Submit(JobSpec{MeshID: id, Scheme: "per-point", P: 1, Blocks: 2})
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Manager().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
}

func TestJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	m := mesh.Structured(4)
	meshID := uploadMesh(t, ts, m)
	for i := 0; i < 3; i++ {
		if _, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Blocks: 2}); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list.Jobs))
	}
	for i := 1; i < len(list.Jobs); i++ {
		if list.Jobs[i-1].ID >= list.Jobs[i].ID {
			t.Errorf("job list not in submission order: %s >= %s", list.Jobs[i-1].ID, list.Jobs[i].ID)
		}
	}
}

func TestMeshGetStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := mesh.Structured(5)
	meshID := uploadMesh(t, ts, m)
	var info struct {
		NumTris     int     `json:"num_tris"`
		LongestEdge float64 `json:"longest_edge"`
	}
	if code := getJSON(t, ts.URL+"/v1/meshes/"+meshID, &info); code != http.StatusOK {
		t.Fatalf("mesh get: %d", code)
	}
	if info.NumTris != m.NumTris() || info.LongestEdge != m.LongestEdge() {
		t.Errorf("mesh stats %+v vs %d/%v", info, m.NumTris(), m.LongestEdge())
	}
}

func TestFieldNamesSorted(t *testing.T) {
	names := FieldNames()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 field kinds, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("FieldNames not sorted: %v", names)
		}
	}
	if _, ok := FieldFuncs["sincos"]; !ok {
		t.Error("default field sincos missing")
	}
}

func ExampleEvalKey() {
	fmt.Println(EvalKey("abc123", 2, 0, core.Periodic, "sincos"))
	// Output: eval:abc123/p2/g0/periodic/sincos
}

// TestOperatorScheme submits "operator" jobs: the first assembles the
// operator, a second job on a *different* field hits the field-independent
// cache entry, and both solutions match their per-point counterparts to
// tight tolerance.
func TestOperatorScheme(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := uploadMesh(t, ts, mesh.Structured(6))

	solution := func(spec JobSpec) []float64 {
		st, code := submitJob(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %+v: status %d", spec, code)
		}
		done := waitJob(t, ts, st.ID, 30*time.Second)
		if done.State != StateDone {
			t.Fatalf("job %s: %s (%s)", st.ID, done.State, done.Error)
		}
		var out struct {
			Solution []float64 `json:"solution"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &out); code != http.StatusOK {
			t.Fatalf("result %s: status %d", st.ID, code)
		}
		return out.Solution
	}
	hitsOf := func(spec JobSpec) []string {
		st, code := submitJob(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
		done := waitJob(t, ts, st.ID, 30*time.Second)
		if done.State != StateDone {
			t.Fatalf("job %s: %s (%s)", st.ID, done.State, done.Error)
		}
		return done.CacheHits
	}

	for _, field := range []string{"sincos", "gauss"} {
		direct := solution(JobSpec{MeshID: id, Scheme: "per-point", P: 2, Field: field})
		viaOp := solution(JobSpec{MeshID: id, Scheme: "operator", P: 2, Field: field})
		if len(direct) != len(viaOp) {
			t.Fatalf("%s: %d operator points vs %d direct", field, len(viaOp), len(direct))
		}
		for i := range direct {
			if d := math.Abs(direct[i] - viaOp[i]); d > 1e-12 {
				t.Fatalf("%s: point %d: operator %v vs per-point %v (diff %.3e)",
					field, i, viaOp[i], direct[i], d)
			}
		}
	}

	// A third field on the warm mesh must be served by the cached,
	// field-independent operator: no geometry re-run.
	hits := hitsOf(JobSpec{MeshID: id, Scheme: "operator", P: 2, Field: "poly"})
	warm := false
	for _, h := range hits {
		if h == "operator" {
			warm = true
		}
	}
	if !warm {
		t.Errorf("operator job on a new field missed the cache: hits=%v", hits)
	}

	// Unknown scheme still rejected.
	if _, code := submitJob(t, ts, JobSpec{MeshID: id, Scheme: "assembled", P: 2}); code != http.StatusBadRequest {
		t.Errorf("bad scheme accepted with status %d", code)
	}
}
