package server

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"

	"unstencil/internal/artifact"
	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
	"unstencil/internal/tile"
)

// Artifacts is the typed façade over the LRU cache. Every derived artifact
// is keyed by the content hash of the mesh it came from plus the parameters
// that shaped it, so identical requests — possibly from different clients —
// share one resident copy:
//
//	mesh:<sha256>                                   decoded *mesh.Mesh
//	field:<sha256>/p<P>/<field>                     projected *dg.Field
//	eval:<sha256>/p<P>/g<G>/<boundary>/<field>      *core.Evaluator (kernel
//	                                                tables, grids, points)
//	tiling:<evalKey>/k<K>                           *tile.Tiling
//	op:<sha256>/p<P>/g<G>/<boundary>                assembled *operator.Operator
//	qop:<sha256>/p<P>/<boundary>/<pts-sha256>       custom-point operator for
//	                                                a repeated query batch
//
// All cached artifacts are immutable after construction and safe to share
// across concurrently running jobs and queries (Evaluator's Run methods and
// EvalBatch draw per-goroutine workers from a pool; single-shot EvalAt,
// which mutates shared scratch state, is not used by the service).
type Artifacts struct {
	cache *Cache
	// evalWorkers is stamped into every built Evaluator's Options. It does
	// not participate in cache keys: worker count affects execution
	// concurrency, never results.
	evalWorkers int
	// store, when non-nil, is the disk tier under the LRU: uploaded meshes
	// and assembled operators are written through, and cache misses fall
	// back to disk before recomputation — so journal-replayed jobs survive
	// a cold cache and operator-scheme jobs skip re-assembly entirely
	// after a restart.
	store *artifact.Store
	// log receives store-degradation warnings (persist failures); nil
	// disables.
	log *slog.Logger
	// ops accumulates operator apply traffic and template-compression
	// outcomes for /debug/metrics.
	ops metrics.OperatorCounters
}

// NewArtifacts wraps cache; evalWorkers <= 0 means GOMAXPROCS.
func NewArtifacts(cache *Cache, evalWorkers int) *Artifacts {
	return &Artifacts{cache: cache, evalWorkers: evalWorkers}
}

// SetStore attaches the durable artifact store. Call before serving
// requests.
func (a *Artifacts) SetStore(st *artifact.Store) { a.store = st }

// SetLog attaches a logger for store-degradation warnings.
func (a *Artifacts) SetLog(log *slog.Logger) { a.log = log }

// Store exposes the disk tier, if attached (metrics, tests).
func (a *Artifacts) Store() *artifact.Store { return a.store }

// Ops exposes the operator apply/compression counters.
func (a *Artifacts) Ops() *metrics.OperatorCounters { return &a.ops }

// FieldFuncs are the analytic input fields a job may request; the service
// projects them onto the mesh's broken polynomial space once per
// (mesh, P, field) and caches the result. "sincos" is the paper's periodic
// test function.
var FieldFuncs = map[string]func(geom.Point) float64{
	"sincos": func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
	},
	"gauss": func(p geom.Point) float64 {
		dx, dy := p.X-0.5, p.Y-0.5
		return math.Exp(-(dx*dx + dy*dy) / 0.02)
	},
	"poly": func(p geom.Point) float64 {
		return p.X*p.X + p.Y*p.Y - p.X*p.Y
	},
}

// FieldNames returns the supported field kinds, sorted.
func FieldNames() []string {
	names := make([]string, 0, len(FieldFuncs))
	for k := range FieldFuncs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// PutMesh stores a decoded mesh and returns its content-hash id. With a
// durable store attached the mesh is also written through to disk; a store
// error is returned alongside the id (the mesh is still resident in memory,
// so the caller can choose to serve degraded rather than reject).
func (a *Artifacts) PutMesh(m *mesh.Mesh) (string, error) {
	id := m.ContentHash()
	a.cache.Put("mesh:"+id, m, meshBytes(m))
	if a.store != nil {
		if _, err := a.store.SaveMesh(m); err != nil {
			return id, err
		}
	}
	return id, nil
}

// Mesh returns the resident mesh with the given content hash, if any. Cache
// misses fall back to the durable store (re-admitting the mesh to the
// cache), so an eviction or a restart does not orphan journaled jobs. A
// false return means the mesh is neither resident nor on disk and must be
// re-uploaded.
func (a *Artifacts) Mesh(id string) (*mesh.Mesh, bool) {
	v, ok := a.cache.Get("mesh:" + id)
	if ok {
		return v.(*mesh.Mesh), true
	}
	if a.store != nil {
		if m, err := a.store.LoadMesh(id); err == nil {
			a.cache.Put("mesh:"+id, m, meshBytes(m))
			return m, true
		}
	}
	return nil, false
}

// Field returns the projected dG field for (mesh, p, fieldKind), building
// and caching it on first use. The boolean reports a cache hit.
func (a *Artifacts) Field(m *mesh.Mesh, meshID string, p int, fieldKind string) (*dg.Field, bool, error) {
	fn, ok := FieldFuncs[fieldKind]
	if !ok {
		return nil, false, fmt.Errorf("unknown field %q (have %v)", fieldKind, FieldNames())
	}
	key := fmt.Sprintf("field:%s/p%d/%s", meshID, p, fieldKind)
	v, hit, err := a.cache.GetOrBuild(key, func() (any, int64, error) {
		f := dg.Project(m, p, fn, 4)
		return f, int64(len(f.Coeffs))*8 + 256, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*dg.Field), hit, nil
}

// EvalKey returns the cache key of the evaluator for the given parameters;
// tilings derive their keys from it.
func EvalKey(meshID string, p, gridDegree int, boundary core.Boundary, fieldKind string) string {
	return fmt.Sprintf("eval:%s/p%d/g%d/%v/%s", meshID, p, gridDegree, boundary, fieldKind)
}

// Evaluator returns the resident core.Evaluator for the given parameters,
// building mesh-derived state (SIAC kernel tables, computation grid, hash
// grids) on first use. The boolean reports a cache hit.
func (a *Artifacts) Evaluator(m *mesh.Mesh, meshID string, p, gridDegree int, boundary core.Boundary, fieldKind string) (*core.Evaluator, bool, error) {
	f, _, err := a.Field(m, meshID, p, fieldKind)
	if err != nil {
		return nil, false, err
	}
	key := EvalKey(meshID, p, gridDegree, boundary, fieldKind)
	v, hit, err := a.cache.GetOrBuild(key, func() (any, int64, error) {
		ev, err := core.NewEvaluator(f, core.Options{
			P:          p,
			GridDegree: gridDegree,
			Boundary:   boundary,
			Workers:    a.evalWorkers,
		})
		if err != nil {
			return nil, 0, err
		}
		return ev, evaluatorBytes(ev), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*core.Evaluator), hit, nil
}

// Tiling returns the resident k-patch tiling for ev, building it on first
// use. The boolean reports a cache hit.
func (a *Artifacts) Tiling(ev *core.Evaluator, evalKey string, k int) (*tile.Tiling, bool, error) {
	key := fmt.Sprintf("tiling:%s/k%d", evalKey, k)
	v, hit, err := a.cache.GetOrBuild(key, func() (any, int64, error) {
		t := ev.NewTiling(k)
		return t, tilingBytes(t), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*tile.Tiling), hit, nil
}

// OpKey returns the cache key of the assembled grid operator. Operators
// are field-independent — the weights depend only on (mesh, grid, kernel,
// h) — so the key deliberately omits the field kind: jobs post-processing
// different fields on a warm mesh share one resident operator. The grid
// degree is the evaluator's normalized value so grid_degree 0 and its
// explicit default hit the same entry.
func OpKey(meshID string, p, gridDegree int, boundary core.Boundary) string {
	return fmt.Sprintf("op:%s/p%d/g%d/%v", meshID, p, gridDegree, boundary)
}

// Operator sources, reported so jobs and queries can say whether the
// geometry bill was paid now, earlier this process, or by a previous
// incarnation whose work was persisted.
const (
	// OpSrcMemory: served warm from the in-process LRU.
	OpSrcMemory = "memory"
	// OpSrcDisk: LRU miss answered by the artifact store — a cold start
	// warmed from disk instead of re-assembling.
	OpSrcDisk = "disk"
	// OpSrcAssembled: built from scratch (and written through to the
	// store when one is attached).
	OpSrcAssembled = "assembled"
)

// Operator returns the assembled post-processing operator for ev's
// (mesh, grid, kernel, h) tuple. Resolution is tiered: the in-process LRU,
// then the disk store (CRC- and key-verified, mmap-backed where the
// platform allows), then assembly — whose result is written through to the
// store so the next restart skips the geometry. The returned source is one
// of OpSrcMemory, OpSrcDisk, OpSrcAssembled.
func (a *Artifacts) Operator(ev *core.Evaluator, meshID string) (*operator.Operator, string, error) {
	key := OpKey(meshID, ev.Opt.P, ev.Opt.GridDegree, ev.Opt.Boundary)
	return a.operatorFor(key, func() (*operator.Operator, error) {
		return ev.AssembleOperator(core.AssembleOpts{
			Congruence: core.CongruenceTemplate,
			SigCache:   a.signatureCache(meshID, ev),
		})
	})
}

// sigCacheKey scopes one cached canonical-signature hash pair to a row: the
// exact position bit patterns plus the quantised one-sided kernel-class
// keys. Everything else the hash depends on — mesh geometry, kernel order,
// h, quantisation step — is fixed by the cache instance's own LRU key.
type sigCacheKey struct {
	xb, yb uint64
	kx, ky int64
}

// sigCache is the server's core.SignatureCache: a mesh-scoped memo of
// canonical row-signature hashes, shared by every operator variant
// (grid degree, boundary treatment) assembled against the same mesh at the
// same kernel, so only the first variant pays per-row canonicalisation.
// Entries are only ever consulted by the congruence prefilter, whose
// groupings are certified bitwise downstream — a stale or colliding entry
// can cost speed, never correctness.
type sigCache struct {
	mu sync.RWMutex
	m  map[sigCacheKey][2]uint64
}

func (c *sigCache) Lookup(xb, yb uint64, kx, ky int64) (exact, quant uint64, ok bool) {
	c.mu.RLock()
	v, ok := c.m[sigCacheKey{xb, yb, kx, ky}]
	c.mu.RUnlock()
	return v[0], v[1], ok
}

func (c *sigCache) Store(xb, yb uint64, kx, ky int64, exact, quant uint64) {
	c.mu.Lock()
	c.m[sigCacheKey{xb, yb, kx, ky}] = [2]uint64{exact, quant}
	c.mu.Unlock()
}

// signatureCache returns the shared signature cache for ev's
// (mesh, kernel order, kernel scale) tuple, creating it on first use. The
// LRU key pins exactly the parameters the cached hashes are a function of
// beyond the per-row key — grid degree and boundary deliberately absent,
// since sharing across those variants is the point. Returns nil (no
// caching) only if the LRU refuses the build.
func (a *Artifacts) signatureCache(meshID string, ev *core.Evaluator) core.SignatureCache {
	key := fmt.Sprintf("sig:%s/p%d/h%x", meshID, ev.Opt.P, math.Float64bits(ev.H))
	// Charge roughly one entry per grid point: 40 B of key+value plus map
	// overhead. The estimate only steers LRU eviction pressure.
	v, _, err := a.cache.GetOrBuild(key, func() (any, int64, error) {
		return &sigCache{m: make(map[sigCacheKey][2]uint64)}, int64(ev.NumPoints())*56 + 1024, nil
	})
	if err != nil {
		return nil
	}
	return v.(*sigCache)
}

// operatorFor resolves one operator cache key through the memory and disk
// tiers, assembling (and persisting) on a full miss.
func (a *Artifacts) operatorFor(key string, assemble func() (*operator.Operator, error)) (*operator.Operator, string, error) {
	src := OpSrcMemory // waiters on an in-flight build also report memory
	v, _, err := a.cache.GetOrBuild(key, func() (any, int64, error) {
		// Disk tier before re-assembly. The LRU charge is the operator's
		// CSR byte size either way: for an mmap-backed operator those are
		// file-backed pages rather than heap, but they bound address
		// space and page-cache pressure just the same.
		if a.store != nil {
			if op, _, err := a.store.LoadOperator(key, true); err == nil {
				// v1/v2 artifacts decode as scalar CSR; block their index on
				// admission (no-op for v3, which is already BSR — the blocked
				// index aliases the mapping, everything else stays zero-copy).
				op = op.ToBSR()
				src = OpSrcDisk
				a.recordOperator(op)
				return op, op.Stats().Bytes + 1024, nil
			}
		}
		op, err := assemble()
		if err != nil {
			return nil, 0, err
		}
		// Compress row-congruent stencils into shared templates before the
		// operator is admitted anywhere: Templatize is lossless (bitwise
		// fallback when rows do not share structure) and the compressed form
		// is what both the LRU and the disk store should hold. For operators
		// built by congruence-first assembly this is a no-op — they emitted
		// their templates at assembly time and skip the rescan. ToBSR then
		// blocks the column index of any operator assembly left in scalar
		// form (assembly emits BSR directly on block-decomposable meshes, so
		// this too is usually a no-op).
		op = op.Templatize().ToBSR()
		a.recordOperator(op)
		src = OpSrcAssembled
		if a.store != nil {
			if err := a.store.SaveOperator(key, op); err != nil && a.log != nil {
				// The operator stays resident; only restart warmth degrades.
				a.log.Warn("operator not persisted; it will be re-assembled after a restart",
					"key", key, "err", err)
			}
		}
		return op, op.Stats().Bytes + 1024, nil
	})
	if err != nil {
		return nil, "", err
	}
	return v.(*operator.Operator), src, nil
}

// recordOperator folds one operator admission (assembled or loaded from
// disk) into the template-compression counters, plus the congruence-first
// assembly outcome when the operator carries one (disk loads do not).
func (a *Artifacts) recordOperator(op *operator.Operator) {
	templated := 0
	if op.Tpl != nil {
		templated = op.Tpl.TemplatedRows()
	}
	a.ops.RecordTemplates(op.Rows, templated, op.BytesSaved())
	a.ops.RecordLayout(op.BSR != nil, op.IndexBytesSaved())
	if cs := op.Congruence; cs != nil {
		a.ops.RecordAssembly(cs.RowsIntegrated, cs.RowsStamped, cs.ClassesVerified, cs.ClassesDemoted, op.AssemblyWall)
		a.ops.RecordSigCache(cs.SigCacheLookups, cs.SigCacheHits)
	}
}

// QueryOperator returns an assembled operator whose rows are the given
// query positions, keyed by the content hash of the position batch. The
// target workload is a client re-evaluating the same positions against new
// fields each time step (streamline resampling): the first query ever pays
// per-point assembly, every later one — including the first after a
// restart, via the disk tier — is a sparse apply. The returned source is
// one of OpSrcMemory, OpSrcDisk, OpSrcAssembled.
func (a *Artifacts) QueryOperator(ev *core.Evaluator, meshID string, pts []geom.Point) (*operator.Operator, string, error) {
	h := sha256.New()
	var buf [16]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Y))
		h.Write(buf[:])
	}
	key := fmt.Sprintf("qop:%s/p%d/%v/%x", meshID, ev.Opt.P, ev.Opt.Boundary, h.Sum(nil))
	return a.operatorFor(key, func() (*operator.Operator, error) {
		return ev.AssembleOperator(core.AssembleOpts{
			Points:     pts,
			Congruence: core.CongruenceTemplate,
			SigCache:   a.signatureCache(meshID, ev),
		})
	})
}

// Stats exposes the underlying cache counters.
func (a *Artifacts) Stats() CacheStats { return a.cache.Stats() }

// Rough per-artifact resident-size estimates driving LRU eviction. They
// only need to be proportional to actual footprint.

func meshBytes(m *mesh.Mesh) int64 {
	return int64(m.NumVerts())*16 + int64(m.NumTris())*12 + 256
}

func evaluatorBytes(ev *core.Evaluator) int64 {
	// Grid points (Elem + Pos), cached element bounds, and two hash grids
	// (one id plus cell bookkeeping per stored item).
	return int64(ev.NumPoints())*32 +
		int64(ev.Mesh.NumTris())*48 +
		4096
}

func tilingBytes(t *tile.Tiling) int64 {
	// Slot lists plus the dense per-patch point->slot index, the dominant
	// term (K × NumPoints int32s).
	return int64(t.PartialValues())*8 +
		int64(t.K)*int64(t.NumPoints)*4 +
		int64(t.NumPoints)*4 + 1024
}
