package server

import (
	"fmt"
	"os"
	"path/filepath"

	"unstencil/internal/mesh"
)

// MeshStore persists uploaded meshes under the service state directory so
// that jobs replayed from the journal after a crash can re-resolve their
// meshes even though the in-memory artifact cache starts cold. Files are
// named by content hash, written via temp-file + rename (a crash mid-write
// never leaves a readable-but-corrupt mesh), and verified against their
// hash on load.
type MeshStore struct {
	dir string
}

// NewMeshStore opens (creating if needed) a mesh store rooted at dir.
func NewMeshStore(dir string) (*MeshStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: mesh store: %w", err)
	}
	return &MeshStore{dir: dir}, nil
}

func (s *MeshStore) path(id string) string {
	return filepath.Join(s.dir, "mesh-"+id+".json")
}

// Save persists m keyed by its content hash and returns the id. Saving the
// same mesh twice is an idempotent overwrite.
func (s *MeshStore) Save(m *mesh.Mesh) (string, error) {
	id := m.ContentHash()
	tmp, err := os.CreateTemp(s.dir, "mesh-*.tmp")
	if err != nil {
		return id, fmt.Errorf("server: mesh store save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := mesh.Encode(tmp, m); err != nil {
		tmp.Close()
		return id, fmt.Errorf("server: mesh store save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return id, fmt.Errorf("server: mesh store save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return id, fmt.Errorf("server: mesh store save: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return id, fmt.Errorf("server: mesh store save: %w", err)
	}
	return id, nil
}

// Load reads the mesh with the given content hash, verifying integrity: a
// stored file whose decoded hash does not match its name (bit rot, manual
// tampering) is an error, never a silently wrong mesh.
func (s *MeshStore) Load(id string) (*mesh.Mesh, error) {
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := mesh.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("server: mesh store load %s: %w", id, err)
	}
	if got := m.ContentHash(); got != id {
		return nil, fmt.Errorf("server: mesh store load %s: content hash mismatch (got %s)", id, got)
	}
	return m, nil
}

// Has reports whether a mesh with the given id is on disk.
func (s *MeshStore) Has(id string) bool {
	_, err := os.Stat(s.path(id))
	return err == nil
}
