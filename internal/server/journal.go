package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"unstencil/internal/fault"
)

// Fault-injection sites in the service layer (see internal/fault and
// DESIGN.md §8).
const (
	// SiteHandler fires at the top of every HTTP request, exercising the
	// recovery middleware.
	SiteHandler = "server.handler"
	// SiteJournal fires on every journal append, exercising the
	// degraded-durability path (journal failures are logged, never fatal).
	SiteJournal = "server.journal"
)

// JournalRecord is one line of the append-only job journal. An "accept"
// record carries the full spec so the job can be re-run after a crash; a
// "finish" record marks it terminal. A job that has an accept but no finish
// when the journal is reopened was lost in flight and is re-enqueued.
type JournalRecord struct {
	Op    string    `json:"op"` // "accept" or "finish"
	ID    string    `json:"id"`
	State JobState  `json:"state,omitempty"` // finish only
	Spec  *JobSpec  `json:"spec,omitempty"`  // accept only
	Time  time.Time `json:"time"`
}

// PendingJob is a journaled job that never reached a terminal state.
type PendingJob struct {
	ID   string
	Spec JobSpec
}

// Journal is the crash-recovery write-ahead log for accepted jobs, stored as
// JSON lines under the service state directory. Accept records are fsynced
// before Submit returns — the durability point of the WAL contract — while
// finish records ride on the OS page cache: losing a finish record merely
// re-runs an idempotent job after a crash. On open, the journal replays the
// existing file, returns the incomplete jobs, and compacts itself so the
// file does not grow without bound across restarts.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// journalFile is the WAL's name inside the state directory.
const journalFile = "jobs.journal"

// OpenJournal opens (creating if needed) the journal in dir, returning the
// jobs that were accepted but never finished, oldest first. A corrupt tail —
// a partial line from a crash mid-write — is tolerated: replay stops at the
// first undecodable record and compaction discards it.
func OpenJournal(dir string) (*Journal, []PendingJob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	pending, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if err := compactJournal(path, pending); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: journal open: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, pending, nil
}

// replayJournal reads the journal and returns accepts lacking a finish.
func replayJournal(path string) ([]PendingJob, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: journal replay: %w", err)
	}
	defer f.Close()

	open := map[string]int{} // id -> index into pending
	var pending []PendingJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var rec JournalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail from a crash mid-append; discard the rest
		}
		switch rec.Op {
		case "accept":
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			open[rec.ID] = len(pending)
			pending = append(pending, PendingJob{ID: rec.ID, Spec: *rec.Spec})
		case "finish":
			if i, ok := open[rec.ID]; ok {
				delete(open, rec.ID)
				pending[i].ID = "" // tombstone
			}
		}
	}
	out := pending[:0]
	for _, p := range pending {
		if p.ID != "" {
			out = append(out, p)
		}
	}
	return out, sc.Err()
}

// compactJournal rewrites the journal to contain only the pending accepts,
// via temp-file + rename so a crash mid-compaction leaves the old journal
// intact.
func compactJournal(path string, pending []PendingJob) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range pending {
		rec := JournalRecord{Op: "accept", ID: pending[i].ID, Spec: &pending[i].Spec, Time: time.Now().UTC()}
		if err := enc.Encode(&rec); err != nil {
			f.Close()
			return fmt.Errorf("server: journal compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	return os.Rename(tmp, path)
}

// Accept journals a newly accepted job and fsyncs: once Accept returns nil,
// the job survives a process crash.
func (j *Journal) Accept(id string, spec JobSpec) error {
	return j.append(JournalRecord{Op: "accept", ID: id, Spec: &spec, Time: time.Now().UTC()}, true)
}

// Finish journals a job's terminal state. Not fsynced: a lost finish record
// only causes an idempotent re-run after a crash.
func (j *Journal) Finish(id string, state JobState) error {
	return j.append(JournalRecord{Op: "finish", ID: id, State: state, Time: time.Now().UTC()}, false)
}

func (j *Journal) append(rec JournalRecord, sync bool) error {
	if err := fault.Inject(SiteJournal); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	if err := json.NewEncoder(j.w).Encode(&rec); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if sync {
		return j.f.Sync()
	}
	return nil
}

// Close flushes and closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
