package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"unstencil/internal/geom"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// MaxQueryPoints bounds one batch query. Requests beyond it are rejected
// with 400 at decode time rather than allowed to monopolise the evaluator.
const MaxQueryPoints = 1 << 16

// QueryRequest is the body of POST /v1/query: a batch of arbitrary
// evaluation positions against a resident evaluator. Unlike jobs, queries
// run synchronously on the request goroutine — the point of the endpoint is
// to amortise one warm evaluator (kernel tables, hash grids, collapsed
// Horner fields) across thousands of point evaluations, streamline-style,
// without a queue round-trip per point.
type QueryRequest struct {
	// MeshID references a mesh previously uploaded via POST /v1/meshes.
	MeshID string `json:"mesh_id"`
	// P is the dG polynomial order (1..4).
	P int `json:"p"`
	// GridDegree selects the evaluator's computation grid; it only matters
	// for sharing the evaluator with job submissions (same cache key).
	// 0 means 2P, negative the one-point rule.
	GridDegree int `json:"grid_degree,omitempty"`
	// Boundary is "periodic" (default) or "one-sided".
	Boundary string `json:"boundary,omitempty"`
	// Field names the analytic input field ("sincos" default).
	Field string `json:"field,omitempty"`
	// Fields names several input fields to evaluate at the same positions
	// in one batched operator apply. Requires use_operator; the response
	// then carries "fields" and a per-field "values" array in the same
	// order. When set, Field defaults to Fields[0].
	Fields []string `json:"fields,omitempty"`
	// Points are the query positions, [x, y] pairs.
	Points [][2]float64 `json:"points"`
	// Workers bounds this query's evaluation concurrency; 0 means the
	// server's evaluator worker budget.
	Workers int `json:"workers,omitempty"`
	// UseOperator routes the batch through an assembled sparse operator
	// keyed by the content hash of the position batch: the first query at
	// these positions pays per-point assembly, every repeat — the same
	// streamline sample set against a new field each time step — is a
	// sparse apply that skips geometry entirely.
	UseOperator bool `json:"use_operator,omitempty"`
}

func (q *QueryRequest) normalize() error {
	if q.MeshID == "" {
		return errors.New("mesh_id is required")
	}
	if q.P < 1 || q.P > 4 {
		return fmt.Errorf("p must be in 1..4, got %d", q.P)
	}
	if q.GridDegree > MaxGridDegree {
		return fmt.Errorf("grid_degree must be <= %d, got %d", MaxGridDegree, q.GridDegree)
	}
	if q.Boundary == "" {
		q.Boundary = "periodic"
	}
	if _, err := parseBoundary(q.Boundary); err != nil {
		return err
	}
	if len(q.Fields) > 0 {
		if !q.UseOperator {
			return errors.New("fields (batched apply) requires use_operator")
		}
		if len(q.Fields) > MaxJobFields {
			return fmt.Errorf("at most %d fields per query, got %d", MaxJobFields, len(q.Fields))
		}
		for i, f := range q.Fields {
			if _, ok := FieldFuncs[f]; !ok {
				return fmt.Errorf("unknown fields[%d] %q (have %v)", i, f, FieldNames())
			}
		}
		if q.Field == "" {
			q.Field = q.Fields[0]
		}
	}
	if q.Field == "" {
		q.Field = "sincos"
	}
	if _, ok := FieldFuncs[q.Field]; !ok {
		return fmt.Errorf("unknown field %q (have %v)", q.Field, FieldNames())
	}
	if len(q.Points) == 0 {
		return errors.New("points must be non-empty")
	}
	if len(q.Points) > MaxQueryPoints {
		return fmt.Errorf("at most %d points per query, got %d", MaxQueryPoints, len(q.Points))
	}
	for i, p := range q.Points {
		if math.IsNaN(p[0]) || math.IsInf(p[0], 0) || math.IsNaN(p[1]) || math.IsInf(p[1], 0) {
			return fmt.Errorf("points[%d] is not finite", i)
		}
	}
	if q.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", q.Workers)
	}
	return nil
}

// handleQuery serves POST /v1/query: it resolves the evaluator through the
// artifact cache (so repeated queries against the same mesh and parameters
// never rebuild kernel tables or grids) and fans the batch across pooled
// evaluation workers via core's concurrency-safe EvalBatch.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	m, ok := s.arts.Mesh(req.MeshID)
	if !ok {
		writeError(w, http.StatusNotFound,
			"mesh %q not resident (upload it via POST /v1/meshes)", req.MeshID)
		return
	}
	boundary, _ := parseBoundary(req.Boundary) // validated by normalize
	ev, hit, err := s.arts.Evaluator(m, req.MeshID, req.P, req.GridDegree, boundary, req.Field)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Pt(p[0], p[1])
	}
	resp := map[string]any{
		"mesh_id":        req.MeshID,
		"evaluator_warm": hit,
	}
	var (
		vals     []float64
		counters metrics.Counters
	)
	start := time.Now()
	if req.UseOperator {
		op, opSrc, err := s.arts.QueryOperator(ev, req.MeshID, pts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "query operator assembly: %v", err)
			return
		}
		// Query outputs are encoded and dropped, so they come from the
		// apply-vector pool: the steady-state repeated-query path (same
		// points, new field each time step) allocates nothing per apply.
		if len(req.Fields) > 0 {
			coeffs := make([][]float64, len(req.Fields))
			for i, name := range req.Fields {
				f, _, err := s.arts.Field(m, req.MeshID, req.P, name)
				if err != nil {
					writeError(w, http.StatusBadRequest, "%v", err)
					return
				}
				coeffs[i] = f.Coeffs
			}
			outs := make([][]float64, len(req.Fields))
			for i := range outs {
				outs[i] = operator.GetVec(op.Rows)
				defer operator.PutVec(outs[i])
			}
			if err := op.ApplyBlock(coeffs, outs, op.Workers); err != nil {
				writeError(w, http.StatusUnprocessableEntity, "query operator apply: %v", err)
				return
			}
			s.arts.Ops().RecordApply(len(req.Fields))
			counters = op.ApplyBlockCounters(len(req.Fields))
			vals = outs[0]
			resp["fields"] = req.Fields
			resp["values"] = outs
		} else {
			vals = operator.GetVec(op.Rows)
			defer operator.PutVec(vals)
			if err := op.ApplyInto(ev.Field, vals); err != nil {
				writeError(w, http.StatusUnprocessableEntity, "query operator apply: %v", err)
				return
			}
			s.arts.Ops().RecordApply(1)
			counters = op.ApplyCounters()
		}
		resp["operator_warm"] = opSrc != OpSrcAssembled
		resp["operator_source"] = opSrc
	} else {
		vals, counters, err = ev.EvalBatch(pts, req.Workers)
		if err != nil {
			// The evaluator and inputs validated; a failure here is a kernel
			// construction error for a position the boundary mode cannot serve
			// (e.g. one-sided support wider than the domain).
			writeError(w, http.StatusUnprocessableEntity, "query evaluation: %v", err)
			return
		}
	}
	wall := time.Since(start)
	s.mgr.RecordQuery(&counters)
	resp["num_points"] = len(vals)
	if _, ok := resp["values"]; !ok {
		resp["values"] = vals
	}
	resp["counters"] = counters
	resp["wall_ms"] = float64(wall) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}
