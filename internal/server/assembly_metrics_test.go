package server

import (
	"net/http"
	"testing"

	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

// Operator-scheme jobs assemble through the congruence-first path, and
// /debug/metrics surfaces the assembly outcome: rows integrated vs
// stamped, verification outcomes, and the assembly wall-time EWMA.
func TestAssemblyMetricsSection(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := uploadMesh(t, ts, mesh.Structured(8))
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Fields: []string{"sincos"}})

	var body struct {
		Operator metrics.OperatorSnapshot `json:"operator"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &body); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	op := body.Operator
	if op.RowsAssembled == 0 {
		t.Errorf("assembly metrics not recorded: %+v", op)
	}
	if op.RowsStamped == 0 {
		t.Errorf("no rows stamped on a structured mesh: %+v", op)
	}
	if op.StampRate <= 0 || op.StampRate >= 1 {
		t.Errorf("stamp rate not derived: %+v", op)
	}
	if op.AssemblyWallEWMAMs <= 0 {
		t.Errorf("assembly wall EWMA not recorded: %+v", op)
	}

	// A second assembly (different degree → different operator key) folds
	// into the same counters; the EWMA stays positive and the row totals
	// accumulate.
	before := op.RowsAssembled + op.RowsStamped
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 2, Fields: []string{"sincos"}})
	snap := srv.Artifacts().Ops().Snapshot()
	if snap.RowsAssembled+snap.RowsStamped <= before {
		t.Errorf("second assembly not accumulated: %+v", snap)
	}
}

// Operators admitted to the cache are blocked by default, and boundary
// variants of the same mesh share one signature cache: the second variant's
// assembly answers row hashes from entries the first one stored.
func TestLayoutAndSigCacheMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := uploadMesh(t, ts, mesh.Structured(8))
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 2, Field: "sincos"})

	snap := srv.Artifacts().Ops().Snapshot()
	if snap.OpsBSR == 0 {
		t.Errorf("no blocked operator admitted: %+v", snap)
	}
	if snap.OpsCSR != 0 {
		t.Errorf("scalar operator admitted on the default path: %+v", snap)
	}
	if snap.IndexBytesSaved == 0 {
		t.Errorf("blocked admission recorded no index-byte saving: %+v", snap)
	}
	if snap.SigCacheLookups == 0 {
		t.Errorf("assembly recorded no signature-cache lookups: %+v", snap)
	}

	// Same mesh and order, different boundary: a distinct operator key, but
	// the per-(mesh, P, h) signature cache carries over — the per-row keys
	// include the kernel class, so only genuinely reusable entries hit.
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 2, Field: "sincos", Boundary: "one-sided"})
	warm := srv.Artifacts().Ops().Snapshot()
	if warm.OpsBSR <= snap.OpsBSR {
		t.Errorf("boundary variant did not admit a second blocked operator: %+v", warm)
	}
	if warm.SigCacheHits == 0 {
		t.Errorf("boundary variant got no signature-cache hits: %+v", warm)
	}
	if warm.SigCacheHitRate <= 0 || warm.SigCacheHitRate > 1 {
		t.Errorf("hit rate not derived: %+v", warm)
	}

	var body struct {
		Operator metrics.OperatorSnapshot `json:"operator"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &body); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if body.Operator.OpsBSR != warm.OpsBSR || body.Operator.SigCacheHits != warm.SigCacheHits {
		t.Errorf("/debug/metrics does not mirror the counters: %+v vs %+v", body.Operator, warm)
	}
}
