package server

import (
	"net/http"
	"testing"

	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

// Operator-scheme jobs assemble through the congruence-first path, and
// /debug/metrics surfaces the assembly outcome: rows integrated vs
// stamped, verification outcomes, and the assembly wall-time EWMA.
func TestAssemblyMetricsSection(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := uploadMesh(t, ts, mesh.Structured(8))
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Fields: []string{"sincos"}})

	var body struct {
		Operator metrics.OperatorSnapshot `json:"operator"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &body); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	op := body.Operator
	if op.RowsAssembled == 0 {
		t.Errorf("assembly metrics not recorded: %+v", op)
	}
	if op.RowsStamped == 0 {
		t.Errorf("no rows stamped on a structured mesh: %+v", op)
	}
	if op.StampRate <= 0 || op.StampRate >= 1 {
		t.Errorf("stamp rate not derived: %+v", op)
	}
	if op.AssemblyWallEWMAMs <= 0 {
		t.Errorf("assembly wall EWMA not recorded: %+v", op)
	}

	// A second assembly (different degree → different operator key) folds
	// into the same counters; the EWMA stays positive and the row totals
	// accumulate.
	before := op.RowsAssembled + op.RowsStamped
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 2, Fields: []string{"sincos"}})
	snap := srv.Artifacts().Ops().Snapshot()
	if snap.RowsAssembled+snap.RowsStamped <= before {
		t.Errorf("second assembly not accumulated: %+v", snap)
	}
}
