package server

import (
	"container/list"
	"fmt"
	"sync"

	"unstencil/internal/artifact"
)

// Cache is a size-bounded LRU keyed by string, with hit/miss/eviction
// counters and duplicate-suppressed builds: concurrent GetOrBuild calls for
// the same missing key run the builder once and share the result. It holds
// the service's warm artifacts — decoded meshes, projected dG fields,
// evaluators (SIAC kernel tables + hash grids), and tilings — so repeated
// jobs against the same inputs skip their dominant setup cost, the data
// reuse the paper's argument is built on.
//
// Sizes are caller-supplied byte estimates; the cache evicts
// least-recently-used entries until the running total fits MaxBytes. A
// single entry larger than MaxBytes is still admitted (alone) so one huge
// mesh cannot wedge the service.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*buildCall

	hits, misses, evictions uint64
	// classes breaks the counters down by key class (the prefix before
	// ':': "mesh", "eval", "op", "qop", ...), so /debug/metrics can answer
	// "how many bytes do assembled operators hold resident, and how often
	// are they evicted" without guessing from totals.
	classes map[string]*ClassStats
}

// ClassStats is the per-key-class slice of the cache counters. Bytes and
// Entries are current residency; Hits/Misses/Evictions are cumulative.
type ClassStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// class returns (creating if needed) the stats bucket for key. Requires
// c.mu.
func (c *Cache) class(key string) *ClassStats {
	name := artifact.KeyClass(key)
	cs, ok := c.classes[name]
	if !ok {
		cs = &ClassStats{}
		c.classes[name] = cs
	}
	return cs
}

type cacheEntry struct {
	key   string
	value any
	size  int64
}

type buildCall struct {
	done  chan struct{}
	value any
	size  int64
	err   error
}

// NewCache returns a cache bounded to maxBytes of estimated artifact size.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		panic(fmt.Sprintf("server: cache size must be positive, got %d", maxBytes))
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*buildCall),
		classes:  make(map[string]*ClassStats),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.class(key).Misses++
		return nil, false
	}
	c.hits++
	c.class(key).Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put inserts or replaces key, then evicts LRU entries over budget.
func (c *Cache) Put(key string, value any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, value, size)
}

// put inserts with c.mu held.
func (c *Cache) put(key string, value any, size int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.curBytes += size - ent.size
		c.class(key).Bytes += size - ent.size
		ent.value, ent.size = value, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, value: value, size: size})
		c.curBytes += size
		cs := c.class(key)
		cs.Entries++
		cs.Bytes += size
	}
	// Evict from the back, but never the entry just touched.
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.curBytes -= ent.size
		c.evictions++
		cs := c.class(ent.key)
		cs.Entries--
		cs.Bytes -= ent.size
		cs.Evictions++
	}
}

// GetOrBuild returns the cached value for key, or runs build to create it.
// The second return reports whether the value came from cache (a hit).
// Concurrent calls for the same missing key block on a single build; build
// errors are returned to every waiter and nothing is cached.
func (c *Cache) GetOrBuild(key string, build func() (value any, size int64, err error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.class(key).Hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).value
		c.mu.Unlock()
		return v, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, call.err
		}
		// The build succeeded but may already have been evicted; a waiter
		// still counts as a shared miss and returns the built value
		// directly.
		return call.value, false, nil
	}
	c.misses++
	c.class(key).Misses++
	call := &buildCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.value, call.size, call.err = build()
	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.put(key, call.value, call.size)
	}
	c.mu.Unlock()
	close(call.done)
	return call.value, false, call.err
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// StatsByClass returns the counters broken down by key class. The "op"
// and "qop" rows are the assembled-operator LRU accounting: resident
// bytes (encoded/Stats sizes, not entry counts) and cumulative evictions.
func (c *Cache) StatsByClass() map[string]ClassStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ClassStats, len(c.classes))
	for name, cs := range c.classes {
		out[name] = *cs
	}
	return out
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.curBytes,
		MaxBytes:  c.maxBytes,
	}
}
