package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"unstencil/internal/mesh"
)

// TestReadinessRule: the pure readiness decision — not started means not
// ready, a saturated queue means not ready, otherwise ready.
func TestReadinessRule(t *testing.T) {
	cases := []struct {
		started         bool
		depth, capacity int
		want            bool
	}{
		{false, 0, 64, false},
		{true, 0, 64, true},
		{true, 63, 64, true},
		{true, 64, 64, false},
		{true, 65, 64, false},
	}
	for i, c := range cases {
		got, reason := readiness(c.started, c.depth, c.capacity)
		if got != c.want {
			t.Errorf("case %d: readiness(%v, %d, %d) = %v, want %v",
				i, c.started, c.depth, c.capacity, got, c.want)
		}
		if !got && reason == "" {
			t.Errorf("case %d: not ready without a reason", i)
		}
	}
}

// TestReadyzEndpoint: a freshly started server (journal replay and store
// GC are synchronous in New) answers 200 with queue stats.
func TestReadyzEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	var body struct {
		Ready         bool `json:"ready"`
		Started       bool `json:"started"`
		QueueDepth    int  `json:"queue_depth"`
		QueueCapacity int  `json:"queue_capacity"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &body); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if !body.Ready || !body.Started || body.QueueCapacity != 4 {
		t.Fatalf("readyz body %+v", body)
	}
}

// TestServiceEWMA: the observed mean folds in at alpha = 0.2, first sample
// taken as-is.
func TestServiceEWMA(t *testing.T) {
	m := &Manager{}
	if m.ServiceEWMA() != 0 {
		t.Fatal("EWMA non-zero before any observation")
	}
	m.observeService(time.Second)
	if got := m.ServiceEWMA(); got != time.Second {
		t.Fatalf("first sample: %v, want 1s", got)
	}
	m.observeService(2 * time.Second)
	want := time.Duration(0.8*1e9 + 0.2*2e9)
	if got := m.ServiceEWMA(); got != want {
		t.Fatalf("second sample: %v, want %v", got, want)
	}
}

// TestRetryAfterDerived: the advertised wait is ceil(svc · ahead / workers),
// clamped to [1, 60], falling back to 1 before any observation.
func TestRetryAfterDerived(t *testing.T) {
	m := &Manager{queue: make(chan *Job, 8), workers: 2}
	if got := m.RetryAfterSeconds(); got != 1 {
		t.Fatalf("no observations: %d, want fallback 1", got)
	}
	m.observeService(3 * time.Second)
	m.queue <- &Job{}
	m.queue <- &Job{}
	// 2 queued, 0 busy, 2 workers: ceil(3 * 2 / 2) = 3.
	if got := m.RetryAfterSeconds(); got != 3 {
		t.Fatalf("derived Retry-After %d, want 3", got)
	}
	m.busy.Add(2)
	// 2 queued + 2 busy over 2 workers: ceil(3 * 4 / 2) = 6.
	if got := m.RetryAfterSeconds(); got != 6 {
		t.Fatalf("derived Retry-After %d, want 6", got)
	}
	m.observeService(10 * time.Minute) // EWMA jumps; clamp must cap at 60
	if got := m.RetryAfterSeconds(); got != 60 {
		t.Fatalf("derived Retry-After %d, want clamp 60", got)
	}
}

// TestQueueFullRetryAfterHeader: a queue-full 503 must carry the derived
// Retry-After, not a hardcoded constant. The manager is swapped for one
// with a stuffed queue and no workers, making saturation deterministic.
func TestQueueFullRetryAfterHeader(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	m := mesh.Structured(4)
	meshID := uploadMesh(t, ts, m)

	full := &Manager{
		arts:      srv.arts,
		queue:     make(chan *Job, 1),
		workers:   2,
		defBlocks: 16,
		jobs:      map[string]*Job{},
		maxJobs:   16,
	}
	full.retry.defaults()
	full.queue <- &Job{} // saturate: no workers will ever drain this
	full.observeService(5 * time.Second)
	srv.mgr = full

	spec := JobSpec{MeshID: meshID, Scheme: "per-element", P: 1}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	// 1 queued + 0 busy over 2 workers at 5s each: ceil(5/2) = 3.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want %q (derived, not hardcoded 1)", got, "3")
	}

	// readyz must also report the saturation as not-ready back-pressure.
	r2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on saturated queue: status %d, want 503", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz missing Retry-After")
	}
}
