package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Get("a") // a is now more recently used than b
	c.Put("c", 3, 40)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should have survived (just inserted)")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestCacheAdmitsOversizedEntryAlone(t *testing.T) {
	c := NewCache(100)
	c.Put("small", 1, 10)
	c.Put("huge", 2, 500)
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized entry must still be admitted")
	}
	if _, ok := c.Get("small"); ok {
		t.Error("small entry should have been evicted to make room")
	}
}

func TestCacheReplaceUpdatesSize(t *testing.T) {
	c := NewCache(100)
	c.Put("a", 1, 90)
	c.Put("a", 2, 10)
	if st := c.Stats(); st.Bytes != 10 || st.Entries != 1 {
		t.Fatalf("stats after replace %+v", st)
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("replace did not update value")
	}
}

func TestGetOrBuildSingleflight(t *testing.T) {
	c := NewCache(1000)
	var builds atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrBuild("k", func() (any, int64, error) {
				builds.Add(1)
				<-gate // hold the build open so every waiter piles up
				return "built", 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builder ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "built" {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	if _, hit, _ := c.GetOrBuild("k", nil); !hit {
		t.Error("subsequent lookup should hit")
	}
}

func TestGetOrBuildErrorNotCached(t *testing.T) {
	c := NewCache(100)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	calls := 0
	v, hit, err := c.GetOrBuild("k", func() (any, int64, error) {
		calls++
		return 42, 8, nil
	})
	if err != nil || hit || v.(int) != 42 || calls != 1 {
		t.Fatalf("retry after error: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
}

func TestCacheConcurrentChurn(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if i%3 == 0 {
					c.Put(key, i, 8)
				} else {
					_, _, _ = c.GetOrBuild(key, func() (any, int64, error) { return i, 8, nil })
				}
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 64 && st.Entries > 1 {
		t.Errorf("cache over budget after churn: %+v", st)
	}
}

// TestGetOrBuildErrorConcurrentWaiters: when a build fails while other
// goroutines wait on the same key, every waiter receives the build error,
// nothing is cached, and the next call re-runs the builder (which may then
// succeed). Run under -race.
func TestGetOrBuildErrorConcurrentWaiters(t *testing.T) {
	c := NewCache(100)
	boom := errors.New("boom")
	const waiters = 16

	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	build := func() (any, int64, error) {
		calls.Add(1)
		close(entered)
		<-release
		return nil, 0, boom
	}

	errs := make(chan error, waiters)
	go func() {
		_, _, err := c.GetOrBuild("k", build)
		errs <- err
	}()
	<-entered // the leader is inside the builder; everyone else must wait

	var wg sync.WaitGroup
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.GetOrBuild("k", func() (any, int64, error) {
				t.Error("waiter ran the builder during an in-flight build")
				return nil, 0, nil
			})
			errs <- err
		}()
	}
	// Give the waiters a moment to park on the in-flight call, then fail it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err = %v, want boom", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("builder ran %d times during the failed round, want 1", got)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed build left a cached value")
	}

	// The failure must not poison the key: a later call rebuilds.
	v, hit, err := c.GetOrBuild("k", func() (any, int64, error) { return 7, 8, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("rebuild after failure: v=%v hit=%v err=%v", v, hit, err)
	}
}
