package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

// postJSON posts v as JSON and decodes the response into out (when non-nil
// and the request succeeded), returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// jobSolution submits spec, waits for completion, and returns the result
// body.
func jobSolution(t *testing.T, ts *httptest.Server, spec JobSpec) (JobStatus, struct {
	Solution  []float64   `json:"solution"`
	Solutions [][]float64 `json:"solutions"`
	Fields    []string    `json:"fields"`
}) {
	t.Helper()
	st, code := submitJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit %+v: status %d", spec, code)
	}
	done := waitJob(t, ts, st.ID, 60*time.Second)
	if done.State != StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, done.State, done.Error)
	}
	var out struct {
		Solution  []float64   `json:"solution"`
		Solutions [][]float64 `json:"solutions"`
		Fields    []string    `json:"fields"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &out); code != http.StatusOK {
		t.Fatalf("result %s: status %d", st.ID, code)
	}
	return done, out
}

// A multi-field operator job must return one solution per field, each
// bit-identical to the corresponding single-field operator job: the SpMM
// batching is a pure amortisation, never a numerical change. (Go's JSON
// encoding of float64 is shortest-round-trip, so bitwise comparison
// survives the wire.)
func TestMultiFieldOperatorJob(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	// Power-of-two resolution: h = 1/8 is dyadic, so element translations
	// are bitwise exact and the assembled rows are template-congruent.
	id := uploadMesh(t, ts, mesh.Structured(8))
	names := []string{"sincos", "gauss", "poly"}

	single := make(map[string][]float64)
	for _, f := range names {
		_, out := jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Field: f})
		single[f] = out.Solution
	}

	done, out := jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Fields: names})
	if done.NumFields != len(names) {
		t.Errorf("num_fields = %d, want %d", done.NumFields, len(names))
	}
	if len(out.Solutions) != len(names) || len(out.Fields) != len(names) {
		t.Fatalf("result has %d solutions / %d fields, want %d", len(out.Solutions), len(out.Fields), len(names))
	}
	for i, f := range names {
		want := single[f]
		got := out.Solutions[i]
		if len(got) != len(want) {
			t.Fatalf("field %s: %d points, want %d", f, len(got), len(want))
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("field %s point %d: batched %v != single %v", f, j, got[j], want[j])
			}
		}
	}
	// "solution" stays the first field for single-field clients.
	for j := range out.Solution {
		if math.Float64bits(out.Solution[j]) != math.Float64bits(out.Solutions[0][j]) {
			t.Fatalf("solution[%d] does not alias solutions[0]", j)
		}
	}

	// The apply and template counters observed the traffic. The structured
	// mesh assembles translation-congruent stencil rows, so the server-side
	// Templatize must have compressed the operator.
	snap := srv.Artifacts().Ops().Snapshot()
	if snap.BlockApplies == 0 || snap.SingleApplies < uint64(len(names)) {
		t.Errorf("apply counters %+v missed the traffic", snap)
	}
	if snap.RowsTotal == 0 || snap.RowsTemplated == 0 || snap.BytesSaved == 0 {
		t.Errorf("structured-mesh operator did not templatize: %+v", snap)
	}
}

// Fields is operator-scheme only.
func TestMultiFieldValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := uploadMesh(t, ts, mesh.Structured(4))
	if _, code := submitJob(t, ts, JobSpec{MeshID: id, Scheme: "per-point", P: 1, Fields: []string{"sincos"}}); code != http.StatusBadRequest {
		t.Errorf("fields on per-point accepted with status %d", code)
	}
	if _, code := submitJob(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Fields: []string{"nope"}}); code != http.StatusBadRequest {
		t.Errorf("unknown batched field accepted with status %d", code)
	}
}

// On a perturbed (jittered) mesh rows are not translation-congruent; the
// operator path must fall back to plain CSR transparently — same results,
// no templates — rather than fail or compress lossily.
func TestOperatorTemplateFallbackJittered(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := uploadMesh(t, ts, mesh.JitteredStructured(6, 0.25, 7))

	_, direct := jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "per-point", P: 1, Field: "gauss"})
	_, viaOp := jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Field: "gauss"})
	if len(direct.Solution) != len(viaOp.Solution) {
		t.Fatalf("%d operator points vs %d direct", len(viaOp.Solution), len(direct.Solution))
	}
	for i := range direct.Solution {
		if d := math.Abs(direct.Solution[i] - viaOp.Solution[i]); d > 1e-12 {
			t.Fatalf("point %d: operator %v vs per-point %v (diff %.3e)",
				i, viaOp.Solution[i], direct.Solution[i], d)
		}
	}
	snap := srv.Artifacts().Ops().Snapshot()
	if snap.RowsTotal == 0 {
		t.Error("operator admission not recorded")
	}
}

// Multi-field queries batch through one operator apply and answer each
// field bit-identically to the equivalent single-field query.
func TestMultiFieldQuery(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	id := uploadMesh(t, ts, mesh.Structured(6))
	pts := [][2]float64{{0.21, 0.34}, {0.5, 0.5}, {0.73, 0.12}, {0.4, 0.81}}
	names := []string{"sincos", "poly"}

	single := make(map[string][]float64)
	for _, f := range names {
		var resp struct {
			Values []float64 `json:"values"`
		}
		code := postJSON(t, ts.URL+"/v1/query", QueryRequest{
			MeshID: id, P: 2, Field: f, Points: pts, UseOperator: true,
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("single-field query %s: status %d", f, code)
		}
		single[f] = resp.Values
	}

	var resp struct {
		Values    [][]float64 `json:"values"`
		Fields    []string    `json:"fields"`
		NumPoints int         `json:"num_points"`
	}
	code := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		MeshID: id, P: 2, Fields: names, Points: pts, UseOperator: true,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("multi-field query: status %d", code)
	}
	if len(resp.Values) != len(names) || resp.NumPoints != len(pts) {
		t.Fatalf("multi-field query shape: %d value arrays, %d points", len(resp.Values), resp.NumPoints)
	}
	for i, f := range names {
		for j := range pts {
			if math.Float64bits(resp.Values[i][j]) != math.Float64bits(single[f][j]) {
				t.Fatalf("field %s point %d: batched %v != single %v", f, j, resp.Values[i][j], single[f][j])
			}
		}
	}

	// fields without use_operator is a client error.
	if code := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		MeshID: id, P: 2, Fields: names, Points: pts,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("fields without use_operator accepted with status %d", code)
	}

	if snap := srv.Artifacts().Ops().Snapshot(); snap.BlockApplies == 0 {
		t.Errorf("query batching not counted: %+v", snap)
	}
}

// /debug/metrics carries the operator section.
func TestMetricsOperatorSection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := uploadMesh(t, ts, mesh.Structured(5))
	jobSolution(t, ts, JobSpec{MeshID: id, Scheme: "operator", P: 1, Fields: []string{"sincos", "gauss"}})

	var body struct {
		Operator metrics.OperatorSnapshot `json:"operator"`
	}
	if code := getJSON(t, ts.URL+"/debug/metrics", &body); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	op := body.Operator
	if op.BlockApplies == 0 || op.FieldsApplied < 2 || op.RowsTotal == 0 {
		t.Errorf("operator metrics section %+v missed the traffic", op)
	}
	if op.RowsTemplated > 0 && op.TemplateHitRate <= 0 {
		t.Errorf("hit rate not derived: %+v", op)
	}
}
