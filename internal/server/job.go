package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/fault"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
	"unstencil/internal/tile"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// JobSpec is the client-facing description of a post-processing job.
type JobSpec struct {
	// MeshID references a mesh previously uploaded via POST /v1/meshes.
	MeshID string `json:"mesh_id"`
	// Scheme is "per-point", "per-element", or "operator" (apply the
	// assembled sparse operator; assembly is cached per mesh/grid/kernel,
	// so repeated fields on a warm mesh skip geometry entirely).
	Scheme string `json:"scheme"`
	// P is the dG polynomial order (1..4).
	P int `json:"p"`
	// GridDegree selects the evaluation-grid quadrature rule; 0 means 2P,
	// negative means the one-point rule (see core.Options.GridDegree).
	GridDegree int `json:"grid_degree,omitempty"`
	// Blocks is the logical block count (per-point) or patch count
	// (per-element); 0 means the server default.
	Blocks int `json:"blocks,omitempty"`
	// Boundary is "periodic" (default) or "one-sided".
	Boundary string `json:"boundary,omitempty"`
	// Field names the analytic input field to project ("sincos" default).
	Field string `json:"field,omitempty"`
	// Fields names several input fields to post-process in one batched
	// operator apply (SpMM): the assembled operator is streamed once per
	// field tile instead of once per field. Only valid with the "operator"
	// scheme; when set, Field defaults to Fields[0] and the result carries
	// one solution per entry, in order.
	Fields []string `json:"fields,omitempty"`
	// TimeoutMS caps this job's run time; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// AllowPartial opts this job into graceful degradation: if some tiles or
	// blocks exhaust their retries, the job completes with their output
	// zeroed and per-tile coverage metadata instead of failing.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// Submission caps. Requests beyond them are rejected with 400 at submission
// time rather than allowed to exhaust memory mid-run.
const (
	// MaxBlocks bounds the blocks/patches a single job may request.
	MaxBlocks = 1 << 16
	// MaxGridDegree bounds the evaluation-grid quadrature degree.
	MaxGridDegree = 32
	// MaxJobFields bounds the fields batched into one operator apply.
	MaxJobFields = 32
)

// Validate checks and defaults the spec in place. The cluster coordinator
// uses it to reject bad submissions at its own front door instead of
// letting them fail asynchronously on a shard.
func (s *JobSpec) Validate(defaultBlocks int) error { return s.normalize(defaultBlocks) }

// normalize validates and defaults the spec.
func (s *JobSpec) normalize(defaultBlocks int) error {
	if s.MeshID == "" {
		return errors.New("mesh_id is required")
	}
	switch s.Scheme {
	case "per-point", "per-element", "operator":
	default:
		return fmt.Errorf("scheme must be %q, %q or %q, got %q", "per-point", "per-element", "operator", s.Scheme)
	}
	if s.P < 1 || s.P > 4 {
		return fmt.Errorf("p must be in 1..4, got %d", s.P)
	}
	if s.Blocks == 0 {
		s.Blocks = defaultBlocks
	}
	if s.Blocks < 1 {
		return fmt.Errorf("blocks must be >= 1, got %d", s.Blocks)
	}
	if s.Blocks > MaxBlocks {
		return fmt.Errorf("blocks must be <= %d, got %d", MaxBlocks, s.Blocks)
	}
	if s.GridDegree > MaxGridDegree {
		return fmt.Errorf("grid_degree must be <= %d, got %d", MaxGridDegree, s.GridDegree)
	}
	if s.Boundary == "" {
		s.Boundary = "periodic"
	}
	if _, err := parseBoundary(s.Boundary); err != nil {
		return err
	}
	if len(s.Fields) > 0 {
		if s.Scheme != "operator" {
			return fmt.Errorf("fields (batched apply) requires the %q scheme, got %q", "operator", s.Scheme)
		}
		if len(s.Fields) > MaxJobFields {
			return fmt.Errorf("at most %d fields per job, got %d", MaxJobFields, len(s.Fields))
		}
		for i, f := range s.Fields {
			if _, ok := FieldFuncs[f]; !ok {
				return fmt.Errorf("unknown fields[%d] %q (have %v)", i, f, FieldNames())
			}
		}
		if s.Field == "" {
			s.Field = s.Fields[0]
		}
	}
	if s.Field == "" {
		s.Field = "sincos"
	}
	if _, ok := FieldFuncs[s.Field]; !ok {
		return fmt.Errorf("unknown field %q (have %v)", s.Field, FieldNames())
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", s.TimeoutMS)
	}
	return nil
}

func parseBoundary(s string) (core.Boundary, error) {
	switch s {
	case "periodic":
		return core.Periodic, nil
	case "one-sided":
		return core.OneSided, nil
	default:
		return 0, fmt.Errorf("boundary must be %q or %q, got %q", "periodic", "one-sided", s)
	}
}

func parseScheme(s string) core.Scheme {
	switch s {
	case "per-point":
		return core.PerPoint
	case "operator":
		return core.Assembled
	default:
		return core.PerElement
	}
}

// Job pipeline stages, used to attribute failures and enforce per-stage
// deadlines.
const (
	StageArtifacts = "artifacts" // mesh → field → evaluator → tiling builds
	StageEvaluate  = "evaluate"  // the core evaluation run
)

// JobError attributes a job failure to a pipeline stage and records how many
// whole-job attempts were spent and whether the final failure was a
// recovered panic.
type JobError struct {
	Stage    string
	Attempts int
	Panicked bool
	Err      error
}

// Error implements error.
func (e *JobError) Error() string {
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	return fmt.Sprintf("job %s in stage %q after %d attempt(s): %v", kind, e.Stage, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Job is one unit of work owned by the Manager.
type Job struct {
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	err       error
	result    *core.Result
	cacheHits []string // artifact kinds served warm ("evaluator", "tiling")
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	canceled  bool
	done      chan struct{}
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string            `json:"id"`
	State      JobState          `json:"state"`
	Spec       JobSpec           `json:"spec"`
	Error      string            `json:"error,omitempty"`
	CacheHits  []string          `json:"cache_hits,omitempty"`
	NumPoints  int               `json:"num_points,omitempty"`
	NumFields  int               `json:"num_fields,omitempty"`
	WallMS     float64           `json:"wall_ms,omitempty"`
	MemOverhd  float64           `json:"memory_overhead,omitempty"`
	Counters   *metrics.Counters `json:"counters,omitempty"`
	Degraded   bool              `json:"degraded,omitempty"`
	Coverage   *core.Coverage    `json:"coverage,omitempty"`
	CreatedAt  time.Time         `json:"created_at"`
	StartedAt  *time.Time        `json:"started_at,omitempty"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		CacheHits: append([]string(nil), j.cacheHits...),
		CreatedAt: j.created,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.result != nil {
		st.NumPoints = len(j.result.Solution)
		st.NumFields = len(j.result.Solutions)
		st.WallMS = float64(j.result.Wall) / float64(time.Millisecond)
		st.MemOverhd = j.result.MemoryOverhead
		c := j.result.Total
		st.Counters = &c
		if j.result.Coverage != nil {
			st.Degraded = true
			st.Coverage = j.result.Coverage
		}
	}
	return st
}

// Result returns the run result once the job is done.
func (j *Job) Result() (*core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Errors returned by Manager.Submit.
var (
	ErrQueueFull    = errors.New("job queue full")
	ErrShuttingDown = errors.New("server shutting down")
)

// Manager owns the bounded FIFO job queue, the worker pool executing jobs,
// and the job registry. Jobs resolve their artifacts through the shared
// Artifacts cache and run core evaluations under a cancellable,
// deadline-capped context.
type Manager struct {
	arts         *Artifacts
	log          *slog.Logger
	queue        chan *Job
	workers      int
	jobTimeout   time.Duration
	stageTimeout time.Duration
	defBlocks    int
	maxJobs      int
	retry        RetryPolicy
	journal      *Journal
	faults       *metrics.FaultCounters

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	busy   atomic.Int64
	totals *metrics.Totals

	// svcEWMA tracks the exponentially weighted moving average of job
	// service time (seconds), feeding the derived Retry-After on queue-full
	// rejections. Stored as float64 bits for lock-free update/read.
	svcEWMA atomic.Uint64

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // insertion order, for bounded retention
	nextID  uint64
	closing bool
}

// RetryPolicy shapes both the per-unit (tile/block) retry inside an
// evaluation and the whole-job retry in the worker: Attempts tries total per
// unit and per job, with capped exponential backoff between tries.
type RetryPolicy struct {
	Attempts int           // total tries (default 1 = no retry)
	Base     time.Duration // backoff before the first retry (default 10ms when retrying)
	Max      time.Duration // backoff cap (default 500ms)
}

func (p *RetryPolicy) defaults() {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 500 * time.Millisecond
	}
}

// ManagerConfig configures NewManager; zero fields take defaults.
type ManagerConfig struct {
	Workers      int           // worker goroutines (default 2)
	QueueSize    int           // bounded FIFO capacity (default 64)
	JobTimeout   time.Duration // per-job cap (default 5m)
	StageTimeout time.Duration // per-stage cap (default: the job timeout)
	DefaultBlock int           // default blocks/patches (default 16)
	MaxJobs      int           // retained job records (default 4096)
	Retry        RetryPolicy   // unit- and job-level retry (default: none)

	// Journal, when non-nil, records accepted and finished jobs for crash
	// recovery; incomplete jobs are re-enqueued via Replay on startup.
	Journal *Journal
	// Faults receives recovery telemetry; nil allocates a private instance.
	Faults *metrics.FaultCounters
}

// NewManager starts the worker pool.
func NewManager(arts *Artifacts, log *slog.Logger, cfg ManagerConfig) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 5 * time.Minute
	}
	if cfg.DefaultBlock <= 0 {
		cfg.DefaultBlock = 16
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.StageTimeout <= 0 {
		cfg.StageTimeout = cfg.JobTimeout
	}
	cfg.Retry.defaults()
	if cfg.Faults == nil {
		cfg.Faults = &metrics.FaultCounters{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		arts:         arts,
		log:          log,
		queue:        make(chan *Job, cfg.QueueSize),
		workers:      cfg.Workers,
		jobTimeout:   cfg.JobTimeout,
		stageTimeout: cfg.StageTimeout,
		defBlocks:    cfg.DefaultBlock,
		maxJobs:      cfg.MaxJobs,
		retry:        cfg.Retry,
		journal:      cfg.Journal,
		faults:       cfg.Faults,
		baseCtx:      ctx,
		baseCancel:   cancel,
		totals:       metrics.NewTotals(),
		jobs:         make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates spec, enqueues a job and returns it. ErrQueueFull means
// the bounded queue is at capacity (the caller should surface 503);
// ErrShuttingDown means graceful shutdown has begun.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.normalize(m.defBlocks); err != nil {
		return nil, err
	}
	if _, ok := m.arts.Mesh(spec.MeshID); !ok {
		return nil, fmt.Errorf("mesh %q not resident (upload it via POST /v1/meshes): %w",
			spec.MeshID, ErrMeshNotFound)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return nil, ErrShuttingDown
	}
	m.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%08d", m.nextID),
		Spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	// The non-blocking send happens under m.mu so it cannot race
	// Shutdown's close(m.queue), which also requires m.mu to flip closing.
	select {
	case m.queue <- job:
	default:
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.evictOldLocked()
	m.journalAccept(job)
	return job, nil
}

// journalAccept records the job in the WAL. Journal failures are logged,
// never fatal: the service degrades to in-memory durability rather than
// refusing work.
func (m *Manager) journalAccept(job *Job) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Accept(job.ID, job.Spec); err != nil && m.log != nil {
		m.log.Warn("job journal accept failed; job will not survive a crash",
			"job", job.ID, "err", err)
	}
}

// journalFinish marks the job terminal in the WAL.
func (m *Manager) journalFinish(id string, state JobState) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Finish(id, state); err != nil && m.log != nil {
		m.log.Warn("job journal finish failed; job may be re-run after a crash",
			"job", id, "err", err)
	}
}

// Replay re-enqueues jobs recovered from the journal, preserving their
// original IDs and advancing the ID counter past them so new submissions
// never collide. Specs are re-validated: a job whose spec no longer passes
// (or whose mesh is gone from both cache and disk) fails immediately with a
// journaled finish, so it is not replayed forever.
func (m *Manager) Replay(pending []PendingJob) {
	for _, p := range pending {
		m.replayOne(p)
	}
}

func (m *Manager) replayOne(p PendingJob) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return
	}
	var n uint64
	if _, err := fmt.Sscanf(p.ID, "job-%d", &n); err == nil && n > m.nextID {
		m.nextID = n
	}
	if _, exists := m.jobs[p.ID]; exists {
		return
	}
	err := p.Spec.normalize(m.defBlocks)
	job := &Job{
		ID:      p.ID,
		Spec:    p.Spec,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if err == nil {
		if _, ok := m.arts.Mesh(p.Spec.MeshID); !ok {
			err = fmt.Errorf("mesh %q not recoverable after restart: %w", p.Spec.MeshID, ErrMeshNotFound)
		}
	}
	if err == nil {
		select {
		case m.queue <- job:
		default:
			err = ErrQueueFull
		}
	}
	if err != nil {
		job.state = StateFailed
		job.err = err
		job.finished = time.Now()
		close(job.done)
		m.journalFinish(job.ID, StateFailed)
		if m.log != nil {
			m.log.Warn("journal replay dropped job", "job", job.ID, "err", err)
		}
	} else {
		m.faults.JobsReplayed.Add(1)
		if m.log != nil {
			m.log.Info("journal replay re-enqueued job", "job", job.ID, "scheme", job.Spec.Scheme)
		}
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.evictOldLocked()
}

// ErrMeshNotFound marks submissions referencing a mesh the cache does not
// hold.
var ErrMeshNotFound = errors.New("mesh not found")

// evictOldLocked drops the oldest terminal job records over the retention
// bound. Requires m.mu.
func (m *Manager) evictOldLocked() {
	for len(m.order) > m.maxJobs {
		id := m.order[0]
		j := m.jobs[id]
		if j != nil {
			j.mu.Lock()
			terminal := j.state == StateDone || j.state == StateFailed
			j.mu.Unlock()
			if !terminal {
				return // oldest record still active; retain everything
			}
			delete(m.jobs, id)
		}
		m.order = m.order[1:]
	}
}

// Job returns the job with the given id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots all retained job statuses, oldest first.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel aborts a queued or running job. Queued jobs fail immediately
// without running; running jobs are interrupted through their context.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("job %q not found", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed:
		return fmt.Errorf("job %q already %s", id, j.state)
	case StateQueued:
		j.canceled = true
		return nil
	default: // running
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
		return nil
	}
}

// QueueDepth returns the number of jobs waiting in the FIFO.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// QueueCapacity returns the FIFO bound.
func (m *Manager) QueueCapacity() int { return cap(m.queue) }

// Workers returns the pool size.
func (m *Manager) Workers() int { return m.workers }

// Busy returns how many workers are currently executing a job.
func (m *Manager) Busy() int { return int(m.busy.Load()) }

// Totals returns cumulative per-scheme counters.
func (m *Manager) Totals() map[string]metrics.TotalSnapshot { return m.totals.Snapshot() }

// RecordQuery folds one batch query's counters into the cumulative totals
// under the "batch-query" series, so /debug/metrics reports query traffic
// alongside scheme runs.
func (m *Manager) RecordQuery(c *metrics.Counters) { m.totals.Record("batch-query", c) }

// observeService folds one finished job's wall time into the service-time
// EWMA (α = 0.2: responsive to workload shifts, stable against one outlier).
func (m *Manager) observeService(wall time.Duration) {
	const alpha = 0.2
	s := wall.Seconds()
	for {
		old := m.svcEWMA.Load()
		prev := math.Float64frombits(old)
		next := s
		if old != 0 {
			next = alpha*s + (1-alpha)*prev
		}
		if m.svcEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ServiceEWMA returns the observed mean job service time (0 before the
// first job completes).
func (m *Manager) ServiceEWMA() time.Duration {
	return time.Duration(math.Float64frombits(m.svcEWMA.Load()) * float64(time.Second))
}

// RetryAfterSeconds estimates how long a rejected client should wait for a
// queue slot: the jobs ahead of it (queued + running) divided across the
// worker pool, each taking the observed mean service time. Clamped to
// [1, 60] seconds; before any job has completed it falls back to 1.
func (m *Manager) RetryAfterSeconds() int {
	svc := math.Float64frombits(m.svcEWMA.Load())
	if svc <= 0 {
		return 1
	}
	ahead := float64(m.QueueDepth() + m.Busy())
	secs := int(math.Ceil(svc * ahead / float64(m.workers)))
	return max(1, min(secs, 60))
}

// StateCounts tallies retained jobs by state.
func (m *Manager) StateCounts() map[JobState]int {
	counts := map[JobState]int{}
	for _, st := range m.Jobs() {
		counts[st.State]++
	}
	return counts
}

// Shutdown stops accepting new jobs and drains the queue: workers finish
// every queued and running job, then exit. If ctx expires first, all
// in-flight jobs are cancelled through their contexts and Shutdown waits
// for the (now promptly aborting) workers before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closing {
		m.closing = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // abort in-flight evaluations
		<-done
		return ctx.Err()
	}
}

// worker executes jobs from the FIFO until the queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob resolves artifacts and executes one job under its context.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.canceled {
		job.state = StateFailed
		job.err = context.Canceled
		job.finished = time.Now()
		job.mu.Unlock()
		close(job.done)
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	timeout := m.jobTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancelTimeout := context.WithTimeout(ctx, timeout)
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()

	m.busy.Add(1)
	res, hits, err := m.executeWithRetry(ctx, job.Spec)
	m.busy.Add(-1)
	cancelTimeout()
	cancel()

	job.mu.Lock()
	job.finished = time.Now()
	job.cacheHits = hits
	if err != nil {
		job.state = StateFailed
		job.err = err
	} else {
		job.state = StateDone
		job.result = res
		m.totals.Record(job.Spec.Scheme, &res.Total)
		if res.Coverage != nil {
			m.faults.DegradedJobs.Add(1)
		}
	}
	state, wall := job.state, job.finished.Sub(job.started)
	job.mu.Unlock()
	close(job.done)
	m.observeService(wall)
	m.journalFinish(job.ID, state)

	if m.log != nil {
		m.log.Info("job finished",
			"job", job.ID, "state", string(state), "scheme", job.Spec.Scheme,
			"wall", wall, "cache_hits", hits, "err", err)
	}
}

// executeWithRetry runs the job pipeline under the manager's retry policy:
// each attempt is panic-isolated, transient failures (including recovered
// panics) retry with capped exponential backoff, and permanent failures
// (cancellation, deadline, validation) return immediately. The final error
// is a *JobError attributing the failure to its pipeline stage.
func (m *Manager) executeWithRetry(ctx context.Context, spec JobSpec) (*core.Result, []string, error) {
	var (
		res      *core.Result
		hits     []string
		err      error
		panicked bool
	)
	for attempt := 1; attempt <= m.retry.Attempts; attempt++ {
		if attempt > 1 {
			m.faults.JobRetries.Add(1)
			if serr := sleepCtx(ctx, jobBackoff(m.retry, attempt-1)); serr != nil {
				break
			}
		}
		res, hits, panicked, err = m.safeExecute(ctx, spec)
		if err == nil || !core.Transient(err) {
			break
		}
	}
	if err == nil {
		return res, hits, nil
	}
	je := &JobError{Stage: StageEvaluate, Err: err, Panicked: panicked}
	var inner *JobError
	if errors.As(err, &inner) {
		je = inner
		je.Panicked = je.Panicked || panicked
	}
	if je.Attempts == 0 {
		je.Attempts = m.retry.Attempts
	}
	return nil, hits, je
}

// safeExecute is one panic-isolated attempt of the job pipeline.
func (m *Manager) safeExecute(ctx context.Context, spec JobSpec) (res *core.Result, hits []string, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.faults.PanicsRecovered.Add(1)
			panicked = true
			err = fmt.Errorf("job pipeline panicked: %v\n%s", r, debug.Stack())
		}
	}()
	res, hits, err = m.execute(ctx, spec)
	return res, hits, false, err
}

// jobBackoff is the pre-retry delay for whole-job retry r (1-based):
// Base·2^(r-1) capped at Max, scaled by a deterministic jitter in [0.5, 1).
func jobBackoff(p RetryPolicy, r int) time.Duration {
	d := p.Base << uint(min(r-1, 16))
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	f := 0.5 + 0.5*float64(fault.Mix64(uint64(r))>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// runStage runs one pipeline stage under its own deadline. The artifact
// builders cannot observe a context mid-build, so the deadline is enforced
// from outside: on expiry the stage's goroutine is abandoned (its result, if
// it ever finishes, still lands in the artifact cache for the next attempt)
// and a stage-attributed error returns promptly.
func (m *Manager) runStage(ctx context.Context, stage string, fn func() error) error {
	ctx, cancel := context.WithTimeout(ctx, m.stageTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			return &JobError{Stage: stage, Err: err}
		}
		return nil
	case <-ctx.Done():
		return &JobError{Stage: stage, Err: fmt.Errorf("stage deadline: %w", ctx.Err())}
	}
}

// execute resolves the artifact chain (mesh → field → evaluator → tiling)
// and runs the evaluation, each stage under its own deadline. It reports
// which expensive artifacts were served warm from the cache. Errors are
// stage-attributed *JobErrors.
func (m *Manager) execute(ctx context.Context, spec JobSpec) (*core.Result, []string, error) {
	mesh, ok := m.arts.Mesh(spec.MeshID)
	if !ok {
		return nil, nil, &JobError{Stage: StageArtifacts,
			Err: fmt.Errorf("mesh %q evicted before the job ran: %w", spec.MeshID, ErrMeshNotFound)}
	}
	boundary, err := parseBoundary(spec.Boundary)
	if err != nil {
		return nil, nil, &JobError{Stage: StageArtifacts, Err: err}
	}

	// Artifact stage: kernel tables, grids, projections, tiling. The builds
	// cannot observe ctx, so runStage bounds them from outside.
	var (
		hits   []string
		ev     *core.Evaluator
		tiling *tile.Tiling
		op     *operator.Operator
		fields []*dg.Field // operator-scheme inputs, one per batched field
	)
	scheme := parseScheme(spec.Scheme)
	if err := m.runStage(ctx, StageArtifacts, func() error {
		var hit bool
		var err error
		ev, hit, err = m.arts.Evaluator(mesh, spec.MeshID, spec.P, spec.GridDegree, boundary, spec.Field)
		if err != nil {
			return err
		}
		if hit {
			hits = append(hits, "evaluator")
		}
		switch scheme {
		case core.PerElement:
			evalKey := EvalKey(spec.MeshID, spec.P, spec.GridDegree, boundary, spec.Field)
			tiling, hit, err = m.arts.Tiling(ev, evalKey, spec.Blocks)
			if err != nil {
				return err
			}
			if hit {
				hits = append(hits, "tiling")
			}
		case core.Assembled:
			// The operator is field-independent, so a job on a new field
			// against a warm mesh hits here and skips all geometry; after a
			// restart the disk tier answers instead and the job reports
			// "operator-disk".
			var src string
			op, src, err = m.arts.Operator(ev, spec.MeshID)
			if err != nil {
				return err
			}
			switch src {
			case OpSrcMemory:
				hits = append(hits, "operator")
			case OpSrcDisk:
				hits = append(hits, "operator-disk")
			}
			// Project every batched input field now, while still under the
			// artifact-stage deadline; the evaluate stage is then pure
			// arithmetic. Single-field jobs reuse the evaluator's field.
			if len(spec.Fields) == 0 {
				fields = []*dg.Field{ev.Field}
				break
			}
			fields = make([]*dg.Field, len(spec.Fields))
			for i, name := range spec.Fields {
				fields[i], _, err = m.arts.Field(mesh, spec.MeshID, spec.P, name)
				if err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, hits, err
	}

	// Assembled scheme: the evaluation is one sparse apply, bounded by the
	// evaluate-stage deadline like the direct runners.
	if scheme == core.Assembled {
		var res *core.Result
		if err := m.runStage(ctx, StageEvaluate, func() error {
			start := time.Now()
			nf := len(fields)
			// One backing allocation for everything the result retains;
			// the apply itself is allocation-free on top of it.
			backing := make([]float64, nf*op.Rows)
			outs := make([][]float64, nf)
			for i := range outs {
				outs[i] = backing[i*op.Rows : (i+1)*op.Rows : (i+1)*op.Rows]
			}
			var err error
			var total metrics.Counters
			if nf == 1 {
				err = op.ApplyInto(fields[0], outs[0])
				total = op.ApplyCounters()
			} else {
				coeffs := make([][]float64, nf)
				for i, f := range fields {
					coeffs[i] = f.Coeffs
				}
				err = op.ApplyBlock(coeffs, outs, op.Workers)
				total = op.ApplyBlockCounters(nf)
			}
			if err != nil {
				return err
			}
			m.arts.Ops().RecordApply(nf)
			res = &core.Result{
				Solution:       outs[0],
				Total:          total,
				Wall:           time.Since(start),
				MemoryOverhead: 1,
				Scheme:         core.Assembled,
			}
			if nf > 1 {
				res.Solutions = outs
			}
			return nil
		}); err != nil {
			return nil, hits, err
		}
		return res, hits, nil
	}

	// Evaluation stage: the resilient runners observe ctx directly, so the
	// stage deadline composes with the job deadline through the context.
	evalCtx, cancel := context.WithTimeout(ctx, m.stageTimeout)
	defer cancel()
	rs := &core.Resilience{
		MaxAttempts:  m.retry.Attempts,
		BaseDelay:    m.retry.Base,
		MaxDelay:     m.retry.Max,
		AllowPartial: spec.AllowPartial,
		Faults:       m.faults,
	}
	var res *core.Result
	if scheme == core.PerElement {
		res, err = ev.RunPerElementResilientCtx(evalCtx, tiling, rs)
	} else {
		res, err = ev.RunPerPointResilientCtx(evalCtx, spec.Blocks, rs)
	}
	if err != nil {
		return nil, hits, &JobError{Stage: StageEvaluate, Err: err}
	}
	return res, hits, nil
}
