package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestQueryMatchesEvalAt checks the endpoint end to end: the returned batch
// values must equal a direct sequential EvalAt sweep on an independently
// built evaluator, bit for bit.
func TestQueryMatchesEvalAt(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := mesh.Structured(6)
	id := uploadMesh(t, ts, m)

	pts := [][2]float64{{0.3, 0.4}, {0.51, 0.52}, {0.12, 0.87}, {0.66, 0.31}}
	body, _ := json.Marshal(map[string]any{
		"mesh_id": id, "p": 1, "points": pts, "workers": 3,
	})
	resp, data := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		NumPoints int       `json:"num_points"`
		Values    []float64 `json:"values"`
		Counters  struct {
			IntersectionTests uint64 `json:"intersection_tests"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode: %v (%s)", err, data)
	}
	if out.NumPoints != len(pts) || len(out.Values) != len(pts) {
		t.Fatalf("got %d values for %d points", len(out.Values), len(pts))
	}
	if out.Counters.IntersectionTests == 0 {
		t.Error("query counters not populated")
	}

	f := dg.Project(m, 1, FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		want, err := ev.EvalAt(geom.Pt(p[0], p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if out.Values[i] != want {
			t.Errorf("point %d: query %v != EvalAt %v", i, out.Values[i], want)
		}
	}
}

// TestQueryWarmEvaluator checks that a repeated query reports the evaluator
// served from cache, and that query traffic lands in /debug/metrics totals.
func TestQueryWarmEvaluator(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := uploadMesh(t, ts, mesh.Structured(4))
	body := fmt.Sprintf(`{"mesh_id":%q,"p":1,"points":[[0.5,0.5]]}`, id)

	resp, data := postQuery(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postQuery(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Warm bool `json:"evaluator_warm"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Warm {
		t.Error("second query did not hit the warm evaluator")
	}

	mresp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metricsOut struct {
		Schemes map[string]json.RawMessage `json:"schemes"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metricsOut); err != nil {
		t.Fatal(err)
	}
	if _, ok := metricsOut.Schemes["batch-query"]; !ok {
		t.Errorf("metrics missing batch-query totals: %v", metricsOut.Schemes)
	}
}

// TestQueryValidation exercises the rejection paths.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := uploadMesh(t, ts, mesh.Structured(4))

	tooMany := make([][]float64, MaxQueryPoints+1)
	for i := range tooMany {
		tooMany[i] = []float64{0.5, 0.5}
	}
	tooManyJSON, _ := json.Marshal(tooMany)

	cases := []struct {
		name, body string
		status     int
	}{
		{"missing mesh", `{"p":1,"points":[[0.5,0.5]]}`, http.StatusBadRequest},
		{"unknown mesh", `{"mesh_id":"nope","p":1,"points":[[0.5,0.5]]}`, http.StatusNotFound},
		{"bad p", fmt.Sprintf(`{"mesh_id":%q,"p":9,"points":[[0.5,0.5]]}`, id), http.StatusBadRequest},
		{"no points", fmt.Sprintf(`{"mesh_id":%q,"p":1,"points":[]}`, id), http.StatusBadRequest},
		{"bad field", fmt.Sprintf(`{"mesh_id":%q,"p":1,"field":"nope","points":[[0.5,0.5]]}`, id), http.StatusBadRequest},
		{"non-finite point", fmt.Sprintf(`{"mesh_id":%q,"p":1,"points":[[1e999,0.5]]}`, id), http.StatusBadRequest},
		{"unknown key", fmt.Sprintf(`{"mesh_id":%q,"p":1,"points":[[0.5,0.5]],"nope":1}`, id), http.StatusBadRequest},
		{"too many points", fmt.Sprintf(`{"mesh_id":%q,"p":1,"points":%s}`, id, tooManyJSON), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postQuery(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.status, bytes.TrimSpace(data))
			}
		})
	}
}

// TestQueryOperatorPath routes the same batch through use_operator: the
// first request assembles (operator_warm false), the repeat hits the cached
// operator, and both agree with the direct EvalBatch path to tight
// tolerance.
func TestQueryOperatorPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := mesh.Structured(6)
	id := uploadMesh(t, ts, m)

	pts := [][2]float64{{0.3, 0.4}, {0.51, 0.52}, {0.12, 0.87}, {0.66, 0.31}, {0.05, 0.93}}
	direct, _ := json.Marshal(map[string]any{"mesh_id": id, "p": 2, "points": pts})
	viaOp, _ := json.Marshal(map[string]any{"mesh_id": id, "p": 2, "points": pts, "use_operator": true})

	resp, data := postQuery(t, ts, string(direct))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct query: status %d: %s", resp.StatusCode, data)
	}
	var want struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	var out struct {
		Values       []float64 `json:"values"`
		OperatorWarm bool      `json:"operator_warm"`
		Counters     struct {
			Flops uint64 `json:"flops"`
		} `json:"counters"`
	}
	resp, data = postQuery(t, ts, string(viaOp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("operator query: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.OperatorWarm {
		t.Error("first operator query reported a warm operator")
	}
	if len(out.Values) != len(pts) {
		t.Fatalf("got %d values for %d points", len(out.Values), len(pts))
	}
	if out.Counters.Flops == 0 {
		t.Error("operator query counters not populated")
	}
	for i := range out.Values {
		if d := math.Abs(out.Values[i] - want.Values[i]); d > 1e-12 {
			t.Errorf("point %d: operator %v vs direct %v (diff %.3e)", i, out.Values[i], want.Values[i], d)
		}
	}

	resp, data = postQuery(t, ts, string(viaOp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat operator query: status %d: %s", resp.StatusCode, data)
	}
	repeat := out
	repeat.OperatorWarm = false
	if err := json.Unmarshal(data, &repeat); err != nil {
		t.Fatal(err)
	}
	if !repeat.OperatorWarm {
		t.Error("repeat query did not hit the cached operator")
	}
	for i := range repeat.Values {
		if repeat.Values[i] != out.Values[i] {
			t.Errorf("point %d: repeat apply differs from first apply", i)
		}
	}
}
