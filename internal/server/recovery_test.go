package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"unstencil/internal/fault"
	"unstencil/internal/mesh"
)

// enableFaults turns on deterministic fault injection for the test and
// guarantees it is off afterwards (the injector is process-global).
func enableFaults(t *testing.T, cfg fault.Config) {
	t.Helper()
	if err := fault.Enable(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

// TestRecoveryMiddleware: a panic inside the handler chain must surface as a
// 500 with the uniform JSON error envelope — never a dropped connection or a
// dead process — and must be counted.
func TestRecoveryMiddleware(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	enableFaults(t, fault.Config{
		Seed:  1,
		Mode:  fault.ModePanic,
		Sites: map[string]float64{SiteHandler: 1},
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("request after handler panic failed at transport level: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %v", err)
	}
	if !strings.Contains(body.Error, "internal error") {
		t.Errorf("error body %q lacks the internal-error marker", body.Error)
	}
	if got := srv.Faults().Snapshot().PanicsRecovered; got == 0 {
		t.Error("recovered panic not counted")
	}

	// Injected errors (non-panic flavor) take the same recovery path.
	enableFaults(t, fault.Config{
		Seed:  2,
		Mode:  fault.ModeError,
		Sites: map[string]float64{SiteHandler: 1},
	})
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error-mode status %d, want 500", resp2.StatusCode)
	}

	// With injection off the server must be fully healthy again.
	fault.Disable()
	var h struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("post-recovery healthz: code %d status %q", code, h.Status)
	}
}

// TestSubmissionCaps: resource-shaped parameters beyond the documented caps
// are rejected with 400 at submission time, before any memory is committed.
func TestSubmissionCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	meshID := uploadMesh(t, ts, mesh.Structured(4))

	cases := []struct {
		name string
		spec JobSpec
		code int
	}{
		{"blocks over cap", JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: MaxBlocks + 1}, http.StatusBadRequest},
		{"negative blocks", JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: -3}, http.StatusBadRequest},
		{"grid degree over cap", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, GridDegree: MaxGridDegree + 1}, http.StatusBadRequest},
		{"kernel order zero", JobSpec{MeshID: meshID, Scheme: "per-point", P: 0}, http.StatusBadRequest},
		{"negative timeout", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, TimeoutMS: -1}, http.StatusBadRequest},
		{"blocks at cap accepted", JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Blocks: MaxBlocks}, http.StatusAccepted},
	}
	for _, c := range cases {
		if _, code := submitJob(t, ts, c.spec); code != c.code {
			t.Errorf("%s: status %d, want %d", c.name, code, c.code)
		}
	}
}
