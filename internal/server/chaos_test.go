package server

import (
	"math"
	"net/http"
	"testing"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/fault"
	"unstencil/internal/mesh"
)

// TestChaosJobsSurviveFaults is the acceptance chaos run: 100 jobs across
// both schemes while deterministic panic and error faults fire inside the
// tile and point-block workers. With a retry budget the process must never
// crash, every job must complete non-degraded, and every solution must match
// the fault-free reference to 1e-12 — the disjoint-write-set containment
// argument, tested end to end. Runs under -race in CI's chaos job.
func TestChaosJobsSurviveFaults(t *testing.T) {
	const (
		jobs   = 100
		blocks = 6
		seed   = 20130707 // fixed: the whole fault sequence is reproducible
	)
	m := mesh.Structured(4)

	// Fault-free references, computed directly against core.
	f := dg.Project(m, 1, FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{}
	for _, scheme := range []core.Scheme{core.PerPoint, core.PerElement} {
		res, err := ev.Run(scheme, blocks)
		if err != nil {
			t.Fatal(err)
		}
		want[scheme.String()] = res.Solution
	}

	srv, ts := newTestServer(t, Config{
		Workers:     4,
		QueueSize:   2 * jobs,
		EvalWorkers: 2,
		Retry: RetryPolicy{
			Attempts: 30,
			Base:     time.Microsecond,
			Max:      50 * time.Microsecond,
		},
	})
	meshID := uploadMesh(t, ts, m)

	// Warm the artifact chain before turning on faults so the chaos run
	// exercises the evaluation pipeline, not the builders.
	st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: blocks})
	if code != http.StatusAccepted {
		t.Fatalf("warmup status %d", code)
	}
	if st = waitJob(t, ts, st.ID, 60*time.Second); st.State != StateDone {
		t.Fatalf("warmup failed: %s", st.Error)
	}

	enableFaults(t, fault.Config{
		Seed: seed,
		Mode: fault.ModeMixed, // both panics and errors, chosen per decision
		Sites: map[string]float64{
			core.SitePointBlock: 0.05,
			core.SiteTile:       0.05,
			core.SiteReduce:     0.02,
		},
	})

	ids := make([]string, 0, jobs)
	schemes := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		scheme := "per-point"
		if i%2 == 1 {
			scheme = "per-element"
		}
		st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: scheme, P: 1, Blocks: blocks})
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		ids = append(ids, st.ID)
		schemes = append(schemes, scheme)
	}

	for i, id := range ids {
		st := waitJob(t, ts, id, 120*time.Second)
		if st.State != StateDone {
			t.Fatalf("job %s (%s) under chaos: state %s err %q", id, schemes[i], st.State, st.Error)
		}
		if st.Degraded || st.Coverage != nil {
			t.Fatalf("job %s completed degraded without opting in: %+v", id, st.Coverage)
		}
		var res struct {
			Solution []float64 `json:"solution"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
			t.Fatalf("job %s result code %d", id, code)
		}
		ref := want[schemes[i]]
		if len(res.Solution) != len(ref) {
			t.Fatalf("job %s: %d points, want %d", id, len(res.Solution), len(ref))
		}
		for p := range ref {
			if math.Abs(res.Solution[p]-ref[p]) > 1e-12 {
				t.Fatalf("job %s: solution[%d] = %v, fault-free %v", id, p, res.Solution[p], ref[p])
			}
		}
	}

	// The run must actually have exercised the recovery machinery.
	snap := srv.Faults().Snapshot()
	if snap.PanicsRecovered == 0 {
		t.Error("chaos run recovered no panics; injection did not bite")
	}
	if snap.TileRetries == 0 {
		t.Error("chaos run performed no retries; injection did not bite")
	}
	if inj := fault.Stats(); len(inj) == 0 {
		t.Error("fault stats empty under enabled injection")
	}
}

// TestChaosDegradedJob: with retry disabled and AllowPartial set, injected
// tile failures must produce a completed-but-degraded job whose coverage
// metadata is visible through the API.
func TestChaosDegradedJob(t *testing.T) {
	m := mesh.Structured(12)
	srv, ts := newTestServer(t, Config{Workers: 1, EvalWorkers: 1})
	meshID := uploadMesh(t, ts, m)

	// Warm artifacts fault-free.
	st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: 8})
	if code != http.StatusAccepted {
		t.Fatalf("warmup status %d", code)
	}
	if st = waitJob(t, ts, st.ID, 60*time.Second); st.State != StateDone {
		t.Fatalf("warmup failed: %s", st.Error)
	}

	enableFaults(t, fault.Config{
		Seed:      7,
		Mode:      fault.ModeError,
		Sites:     map[string]float64{core.SiteTile: 1},
		MaxFaults: 2, // exactly two tiles fail, then the injector goes quiet
	})
	st, code = submitJob(t, ts, JobSpec{
		MeshID: meshID, Scheme: "per-element", P: 1, Blocks: 8, AllowPartial: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("degraded submit status %d", code)
	}
	st = waitJob(t, ts, st.ID, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("degraded job: state %s err %q", st.State, st.Error)
	}
	if !st.Degraded || st.Coverage == nil {
		t.Fatalf("job completed without coverage metadata: %+v", st)
	}
	if n := len(st.Coverage.FailedUnits); n != 2 {
		t.Errorf("failed units = %d, want 2", n)
	}
	if st.Coverage.TotalUnits != 8 {
		t.Errorf("total units = %d, want 8", st.Coverage.TotalUnits)
	}
	if fr := st.Coverage.Fraction(); fr < 0 || fr >= 1 {
		t.Errorf("coverage fraction %v outside [0, 1)", fr)
	}
	if srv.Faults().Snapshot().DegradedJobs == 0 {
		t.Error("degraded completion not counted")
	}
}
