package server

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"unstencil/internal/mesh"
)

// runOperatorJob submits one operator-scheme job, waits for it, and returns
// its cache-hit tags and solution.
func runOperatorJob(t *testing.T, ts *httptest.Server, meshID string) ([]string, []float64) {
	t.Helper()
	st, code := submitJob(t, ts, JobSpec{MeshID: meshID, Scheme: "operator", P: 2, Field: "sincos"})
	if code != 202 {
		t.Fatalf("submit: status %d", code)
	}
	done := waitJob(t, ts, st.ID, 60*time.Second)
	if done.State != StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, done.State, done.Error)
	}
	var res struct {
		Solution []float64 `json:"solution"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &res); code != 200 {
		t.Fatalf("result: status %d", code)
	}
	return done.CacheHits, res.Solution
}

// TestColdStartServesOperatorFromDisk is the restart acceptance scenario:
// incarnation one uploads a mesh and assembles an operator (written through
// to the store); incarnation two, on the same directories with a cold
// cache, must serve the same job from the disk artifact — reporting
// "operator-disk", never re-assembling — with an identical solution.
func TestColdStartServesOperatorFromDisk(t *testing.T) {
	dir := t.TempDir()
	m := mesh.Structured(6)
	cfg := Config{Workers: 2, EvalWorkers: 2, StateDir: dir}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// StateDir alone roots the store at <StateDir>/store.
	if got, want := srv1.arts.Store().Dir(), filepath.Join(dir, "store"); got != want {
		t.Fatalf("store dir = %q, want %q", got, want)
	}
	ts1 := httptest.NewServer(srv1)
	meshID := uploadMesh(t, ts1, m)
	hits, want := runOperatorJob(t, ts1, meshID)
	if slices.Contains(hits, "operator") || slices.Contains(hits, "operator-disk") {
		t.Fatalf("first-ever operator job reported warm hits: %v", hits)
	}
	opKey := OpKey(meshID, 2, 4, 0) // normalized grid degree 2P, periodic
	if !srv1.arts.Store().Has(opKey) {
		t.Fatalf("assembled operator %q not written through to the store", opKey)
	}
	ts1.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Manager().Shutdown(shutdownCtx); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation two: cold cache, same disk state.
	srv2, ts2 := newTestServer(t, cfg)
	hits, got := runOperatorJob(t, ts2, meshID)
	if !slices.Contains(hits, "operator-disk") {
		t.Fatalf("restarted operator job hits = %v, want operator-disk", hits)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points after restart vs %d before", len(got), len(want))
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-12 {
			t.Fatalf("point %d: %v after restart vs %v before (diff %.3e)", i, got[i], want[i], d)
		}
	}
	if hit := srv2.arts.Store().Counters().Snapshot().DiskHits; hit < 1 {
		t.Errorf("disk hits = %d, want >= 1", hit)
	}

	// The metrics endpoint exposes the store and per-class cache accounting.
	var metrics struct {
		Store struct {
			DiskHits uint64 `json:"disk_hits"`
		} `json:"store"`
		CacheClasses map[string]ClassStats `json:"cache_classes"`
	}
	if code := getJSON(t, ts2.URL+"/debug/metrics", &metrics); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.Store.DiskHits < 1 {
		t.Error("metrics store.disk_hits < 1 after a disk-served job")
	}
	op, ok := metrics.CacheClasses["op"]
	if !ok || op.Bytes <= 0 || op.Entries != 1 {
		t.Errorf("cache_classes[op] = %+v, want 1 resident entry with bytes > 0", op)
	}
}

// TestStoreDirWithoutStateDir: -store-dir alone enables artifact
// persistence (warm restarts) without journaling, and an explicit StoreDir
// wins over the StateDir default.
func TestStoreDirWithoutStateDir(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "artifacts")
	cfg := Config{Workers: 1, EvalWorkers: 1, StoreDir: storeDir}

	srv1, ts1 := newTestServer(t, cfg)
	if srv1.journal != nil {
		t.Fatal("StoreDir alone opened a journal")
	}
	if got := srv1.arts.Store().Dir(); got != storeDir {
		t.Fatalf("store dir = %q, want %q", got, storeDir)
	}
	meshID := uploadMesh(t, ts1, mesh.Structured(4))
	_, want := runOperatorJob(t, ts1, meshID)

	srv2, ts2 := newTestServer(t, Config{Workers: 1, EvalWorkers: 1,
		StoreDir: storeDir, StateDir: t.TempDir()})
	// Explicit StoreDir beats the <StateDir>/store default.
	if got := srv2.arts.Store().Dir(); got != storeDir {
		t.Fatalf("store dir = %q, want explicit %q", got, storeDir)
	}
	hits, got := runOperatorJob(t, ts2, meshID)
	if !slices.Contains(hits, "operator-disk") {
		t.Fatalf("hits = %v, want operator-disk", hits)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-12 {
			t.Fatalf("point %d differs by %.3e across incarnations", i, d)
		}
	}
}
