package artifact

import (
	"bytes"
	"testing"

	"unstencil/internal/mesh"
)

// FuzzArtifactDecode feeds arbitrary byte strings through the full decode
// surface — Parse, CRC verification, and all three kind decoders — seeded
// with valid encodes of each artifact kind. The contract under mutation
// (truncation, bit flips, section-table corruption, wrong versions) is:
// an error or a valid artifact, never a panic, and anything an operator
// decoder accepts must still satisfy the CSR invariants ApplyVec indexes
// by (validateCSR runs inside the decoders, so acceptance implies them).
func FuzzArtifactDecode(f *testing.F) {
	m := mesh.Structured(3)
	var buf bytes.Buffer
	if _, err := EncodeMesh(&buf, "mesh:"+m.ContentHash(), m); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))

	buf.Reset()
	if _, err := EncodeField(&buf, "field:seed", projectTestField(m)); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))

	op := testOperator(f, 25, 15, 6, true)
	f.Add(encodeOp(f, "op:seed", op))
	opNoPerm := testOperator(f, 10, 8, 3, false)
	f.Add(encodeOp(f, "op:seed2", opNoPerm))

	// Version 3 seeds: blocked index, plain and templated.
	plainBSR, toplBSR := congruentOperator(f, 60, 20, 3)
	f.Add(encodeOp(f, "op:bsr", plainBSR.ToBSR()))
	f.Add(encodeOp(f, "op:bsr-tpl", toplBSR.ToBSR()))

	// Structural edge cases the mutator should start from: wrong version,
	// wrong magic, bare header, empty input.
	v2 := encodeOp(f, "op:v2", opNoPerm)
	v2[4] = 2
	f.Add(v2)
	f.Add([]byte("UNSA"))
	f.Add([]byte{})
	f.Add([]byte("GPKG not ours at all, padded to header size..."))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Every accepted container must survive the full integrity pass and
		// each decoder without panicking, whatever its kind claims.
		_ = c.VerifyAll()
		_, _ = c.Key()
		if m, err := c.DecodeMesh(""); err == nil {
			if err := m.Validate(); err != nil {
				t.Fatalf("DecodeMesh accepted an invalid mesh: %v", err)
			}
		}
		if meta, coeffs, err := c.DecodeField(""); err == nil {
			if len(coeffs) != meta.NumElems*meta.BasisN {
				t.Fatalf("DecodeField accepted inconsistent shape %+v with %d coeffs", meta, len(coeffs))
			}
		}
		if op, err := c.DecodeOperator(""); err == nil {
			// Acceptance implies the layout validation passed (validateCSR
			// for v1/v2, ValidateBSR for v3); a cheap apply proves the
			// operator really is safe to index.
			in := make([]float64, op.Cols)
			out := make([]float64, op.Rows)
			if err := op.ApplyVec(in, out, 1); err != nil {
				t.Fatalf("accepted operator failed ApplyVec: %v", err)
			}
		}
	})
}
