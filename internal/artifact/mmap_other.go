//go:build !(linux || darwin)

package artifact

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform has the zero-copy load path;
// without it MapOperator transparently falls back to the portable
// sequential decode.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("artifact: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }
