package artifact

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// testOperator builds a deterministic pseudo-random CSR operator through
// the same Builder the assembly path uses, so every structural invariant
// the real pipeline guarantees holds here too.
func testOperator(t testing.TB, rows, cols, basisN int, withPerm bool) *operator.Operator {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	b := operator.NewBuilder(rows, cols, basisN)
	for r := 0; r < rows; r++ {
		nnz := 1 + rng.Intn(6)
		cix := make([]int32, nnz)
		vals := make([]float64, nnz)
		for i := range cix {
			cix[i] = int32(rng.Intn(cols))
			vals[i] = rng.NormFloat64()
		}
		b.SetRow(r, cix, vals)
	}
	var perm []int32
	if withPerm {
		for _, p := range rng.Perm(rows) {
			perm = append(perm, int32(p))
		}
	}
	return b.Finish(perm, 3, "per-point", 123*time.Millisecond, metrics.Counters{
		IntersectionTests: 7, TruePositives: 5, Regions: 11,
		QuadEvals: 13, Flops: 17, BytesRead: 19,
	})
}

// projectTestField is a small P2 field for field round-trip tests.
func projectTestField(m *mesh.Mesh) *dg.Field {
	return dg.Project(m, 2, func(p geom.Point) float64 {
		return math.Sin(p.X) + p.Y*p.Y
	}, 4)
}

func encodeOp(t testing.TB, key string, op *operator.Operator) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := EncodeOperator(&buf, key, op)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodeOperator reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func sameOperator(t *testing.T, got, want *operator.Operator) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.BasisN != want.BasisN {
		t.Fatalf("shape %d×%d basis %d, want %d×%d basis %d",
			got.Rows, got.Cols, got.BasisN, want.Rows, want.Cols, want.BasisN)
	}
	if got.Workers != want.Workers || got.AssemblyScheme != want.AssemblyScheme ||
		got.AssemblyWall != want.AssemblyWall || got.AssemblyCounters != want.AssemblyCounters {
		t.Fatalf("provenance changed: %v/%q/%v vs %v/%q/%v",
			got.Workers, got.AssemblyScheme, got.AssemblyWall,
			want.Workers, want.AssemblyScheme, want.AssemblyWall)
	}
	if len(got.RowPtr) != len(want.RowPtr) || len(got.ColInd) != len(want.ColInd) ||
		len(got.Val) != len(want.Val) || len(got.Perm) != len(want.Perm) {
		t.Fatalf("array lengths changed")
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("rowptr[%d] = %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range want.Val {
		if got.ColInd[i] != want.ColInd[i] ||
			math.Float64bits(got.Val[i]) != math.Float64bits(want.Val[i]) {
			t.Fatalf("entry %d: (%d, %x) vs (%d, %x)", i,
				got.ColInd[i], math.Float64bits(got.Val[i]),
				want.ColInd[i], math.Float64bits(want.Val[i]))
		}
	}
	for i := range want.Perm {
		if got.Perm[i] != want.Perm[i] {
			t.Fatalf("perm[%d] = %d, want %d", i, got.Perm[i], want.Perm[i])
		}
	}
}

// Encode→Decode must reproduce the mesh exactly, content hash included.
func TestMeshRoundTrip(t *testing.T) {
	um, err := mesh.SizedLowVariance(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*mesh.Mesh{
		"structured": mesh.Structured(4), "unstructured": um,
	} {
		var buf bytes.Buffer
		key := "mesh:" + m.ContentHash()
		if _, err := EncodeMesh(&buf, key, m); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMesh(bytes.NewReader(buf.Bytes()), int64(buf.Len()), key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.ContentHash() != m.ContentHash() {
			t.Errorf("%s: round trip changed the content hash", name)
		}
	}
}

// Field coefficients must round-trip bit-identically with the mesh binding
// metadata intact.
func TestFieldRoundTrip(t *testing.T) {
	m := mesh.Structured(3)
	f := dg.Project(m, 2, func(p geom.Point) float64 {
		return math.Sin(p.X) * math.Cos(p.Y)
	}, 4)
	var buf bytes.Buffer
	key := "field:test/p2/sincos"
	if _, err := EncodeField(&buf, key, f); err != nil {
		t.Fatal(err)
	}
	meta, coeffs, err := DecodeField(bytes.NewReader(buf.Bytes()), int64(buf.Len()), key)
	if err != nil {
		t.Fatal(err)
	}
	if meta.P != 2 || meta.BasisN != f.Basis.N || meta.MeshHash != m.ContentHash() {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.NumElems != m.NumTris() {
		t.Fatalf("numElems = %d, want %d", meta.NumElems, m.NumTris())
	}
	if len(coeffs) != len(f.Coeffs) {
		t.Fatalf("%d coefficients, want %d", len(coeffs), len(f.Coeffs))
	}
	for i := range coeffs {
		if math.Float64bits(coeffs[i]) != math.Float64bits(f.Coeffs[i]) {
			t.Fatalf("coeff %d changed: %x vs %x", i,
				math.Float64bits(coeffs[i]), math.Float64bits(f.Coeffs[i]))
		}
	}
}

// Operators must round-trip exactly — every CSR entry, the permutation, and
// the assembly provenance — and EncodedOperatorSize must predict the file
// size byte-for-byte (it is the LRU's accounting).
func TestOperatorRoundTrip(t *testing.T) {
	for _, withPerm := range []bool{false, true} {
		op := testOperator(t, 50, 30, 6, withPerm)
		key := "op:test/p2/g4/periodic"
		data := encodeOp(t, key, op)
		if got := EncodedOperatorSize(key, op); got != int64(len(data)) {
			t.Fatalf("perm=%v: EncodedOperatorSize = %d, file is %d", withPerm, got, len(data))
		}
		got, err := DecodeOperator(bytes.NewReader(data), int64(len(data)), key)
		if err != nil {
			t.Fatal(err)
		}
		sameOperator(t, got, op)
	}
}

// A memory-mapped operator must produce bit-identical ApplyVec output to
// the heap-resident original: the mapped arrays are the same bytes, so the
// Neumaier-compensated accumulation must agree to the last ulp.
func TestMapOperatorBitIdentical(t *testing.T) {
	op := testOperator(t, 80, 36, 6, true)
	key := "op:test/p2/g4/one-sided"
	path := filepath.Join(t.TempDir(), "op.art")
	if err := os.WriteFile(path, encodeOp(t, key, op), 0o644); err != nil {
		t.Fatal(err)
	}
	mop, viaMap, err := MapOperator(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported && hostLittleEndian && !viaMap {
		t.Error("mmap is supported here but MapOperator fell back")
	}
	if viaMap && mop.Backing == nil {
		t.Error("mapped operator has no backing pin")
	}

	rng := rand.New(rand.NewSource(7))
	coeffs := make([]float64, op.Cols)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	want := make([]float64, op.Rows)
	got := make([]float64, op.Rows)
	for _, workers := range []int{1, 3} {
		if err := op.ApplyVec(coeffs, want, workers); err != nil {
			t.Fatal(err)
		}
		if err := mop.ApplyVec(coeffs, got, workers); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d row %d: mapped %x vs in-memory %x",
					workers, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
	if m, ok := mop.Backing.(*Mapping); ok {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A structurally valid artifact requested under the wrong key is refused:
// renaming or cross-copying store files must never serve wrong data.
func TestKeyMismatch(t *testing.T) {
	op := testOperator(t, 10, 8, 3, false)
	data := encodeOp(t, "op:right", op)
	_, err := DecodeOperator(bytes.NewReader(data), int64(len(data)), "op:wrong")
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
	if _, err := DecodeOperator(bytes.NewReader(data), int64(len(data)), ""); err != nil {
		t.Fatalf("key-agnostic decode failed: %v", err)
	}
}

// Version and magic gates: future formats and foreign files are rejected
// with the typed errors, not misparsed.
func TestVersionAndMagicGates(t *testing.T) {
	op := testOperator(t, 10, 8, 3, false)
	data := encodeOp(t, "op:k", op)

	bad := bytes.Clone(data)
	bad[4] = 99 // version low byte
	if _, err := Parse(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
	bad = bytes.Clone(data)
	bad[0] = 'X'
	if _, err := Parse(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
}

// Truncation at every prefix length (sampled) and single-bit flips across
// the payload must produce errors, never panics or silent acceptance.
func TestOperatorDecodeRejectsDamage(t *testing.T) {
	op := testOperator(t, 20, 12, 3, true)
	key := "op:damage"
	data := encodeOp(t, key, op)

	for size := 0; size < len(data); size += 7 {
		trunc := data[:size]
		if _, err := DecodeOperator(bytes.NewReader(trunc), int64(len(trunc)), key); err == nil {
			t.Fatalf("truncation to %d bytes accepted", size)
		}
	}
	// Bit flips in section payloads are caught by CRCs, flips in the
	// header/table structurally. The only bytes a flip may legitimately
	// leave valid are outside any checked region — the reserved header
	// word and inter-section zero padding — and there the decoded operator
	// must be provably unchanged. Sample every 11th byte to keep the test
	// fast.
	for pos := 0; pos < len(data); pos += 11 {
		flipped := bytes.Clone(data)
		flipped[pos] ^= 0x10
		got, err := DecodeOperator(bytes.NewReader(flipped), int64(len(flipped)), key)
		if err == nil {
			sameOperator(t, got, op)
		}
	}
}
