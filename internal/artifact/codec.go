package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// Fixed-width array helpers. Encoding writes the little-endian bit pattern
// of each record; decoding is the single sequential pass the portable
// (non-mmap) load path uses. On little-endian hosts the encoded bytes are
// byte-identical to the in-memory arrays, which is the mmap contract.

func putF64s(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

func putI64s(dst []byte, src []int64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

func putI32s(dst []byte, src []int32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

func decodeF64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float64 section length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func decodeI64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: int64 section length %d not a multiple of 8", ErrCorrupt, len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func decodeI32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: int32 section length %d not a multiple of 4", ErrCorrupt, len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

func encodeF64s(src []float64) []byte {
	b := make([]byte, 8*len(src))
	putF64s(b, src)
	return b
}

// ---- Mesh ----

const meshMetaSize = 16 // numVerts u64 | numTris u64

// EncodeMesh serialises m as a mesh artifact stored under key and writes
// it to w, returning the encoded size.
func EncodeMesh(w io.Writer, key string, m *mesh.Mesh) (int64, error) {
	meta := make([]byte, meshMetaSize)
	binary.LittleEndian.PutUint64(meta[0:8], uint64(m.NumVerts()))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(m.NumTris()))
	verts := make([]byte, 16*m.NumVerts())
	for i, v := range m.Verts {
		binary.LittleEndian.PutUint64(verts[16*i:], math.Float64bits(v.X))
		binary.LittleEndian.PutUint64(verts[16*i+8:], math.Float64bits(v.Y))
	}
	tris := make([]byte, 12*m.NumTris())
	for i, t := range m.Tris {
		putI32s(tris[12*i:12*i+12], t[:])
	}
	buf := encodeContainer(Version, KindMesh, []section{
		{SecMeta, meta},
		{SecKey, []byte(key)},
		{SecVerts, verts},
		{SecTris, tris},
	})
	n, err := w.Write(buf)
	return int64(n), err
}

// DecodeMesh parses and validates a mesh artifact. The decoded mesh passes
// mesh.Validate, so anything this returns is safe for the rest of the
// pipeline.
func DecodeMesh(r io.ReaderAt, size int64, key string) (*mesh.Mesh, error) {
	c, err := Parse(r, size)
	if err != nil {
		return nil, err
	}
	return c.DecodeMesh(key)
}

// DecodeMesh decodes the parsed container as a mesh stored under key
// (key "" skips the key check).
func (c *Container) DecodeMesh(key string) (*mesh.Mesh, error) {
	if c.Kind != KindMesh {
		return nil, fmt.Errorf("%w: kind %s, want mesh", ErrCorrupt, KindName(c.Kind))
	}
	if key != "" {
		if err := c.checkKey(key); err != nil {
			return nil, err
		}
	}
	meta, err := c.ReadSection(SecMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != meshMetaSize {
		return nil, fmt.Errorf("%w: mesh meta is %d bytes, want %d", ErrCorrupt, len(meta), meshMetaSize)
	}
	nv := binary.LittleEndian.Uint64(meta[0:8])
	nt := binary.LittleEndian.Uint64(meta[8:16])
	verts, err := c.ReadSection(SecVerts)
	if err != nil {
		return nil, err
	}
	tris, err := c.ReadSection(SecTris)
	if err != nil {
		return nil, err
	}
	if uint64(len(verts)) != 16*nv || uint64(len(tris)) != 12*nt {
		return nil, fmt.Errorf("%w: mesh sections disagree with meta (%d verts, %d tris)", ErrCorrupt, nv, nt)
	}
	m := &mesh.Mesh{
		Verts: make([]geom.Point, nv),
		Tris:  make([][3]int32, nt),
	}
	for i := range m.Verts {
		m.Verts[i] = geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(verts[16*i:])),
			math.Float64frombits(binary.LittleEndian.Uint64(verts[16*i+8:])))
	}
	for i := range m.Tris {
		for j := 0; j < 3; j++ {
			m.Tris[i][j] = int32(binary.LittleEndian.Uint32(tris[12*i+4*j:]))
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: decoded mesh invalid: %w", err)
	}
	return m, nil
}

// ---- Field ----

const fieldMetaSize = 16 + 64 // p u32 | basisN u32 | numElems u64 | meshHash [64]byte hex

// EncodeField serialises f (a modal coefficient field) as an artifact
// stored under key. The mesh content hash is recorded so a field can never
// be applied to the wrong mesh after a reload.
func EncodeField(w io.Writer, key string, f *dg.Field) (int64, error) {
	meta := make([]byte, fieldMetaSize)
	binary.LittleEndian.PutUint32(meta[0:4], uint32(f.Basis.P))
	binary.LittleEndian.PutUint32(meta[4:8], uint32(f.Basis.N))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(len(f.Coeffs)/f.Basis.N))
	copy(meta[16:80], f.Mesh.ContentHash())
	buf := encodeContainer(Version, KindField, []section{
		{SecMeta, meta},
		{SecKey, []byte(key)},
		{SecCoeffs, encodeF64s(f.Coeffs)},
	})
	n, err := w.Write(buf)
	return int64(n), err
}

// FieldMeta is the decoded field header.
type FieldMeta struct {
	P        int
	BasisN   int
	NumElems int
	MeshHash string
}

// DecodeField parses a field artifact, returning the coefficients and
// metadata; the caller rebinds them to the resident mesh (verified against
// MeshHash).
func DecodeField(r io.ReaderAt, size int64, key string) (FieldMeta, []float64, error) {
	c, err := Parse(r, size)
	if err != nil {
		return FieldMeta{}, nil, err
	}
	return c.DecodeField(key)
}

// DecodeField decodes the parsed container as a field stored under key
// (key "" skips the key check).
func (c *Container) DecodeField(key string) (FieldMeta, []float64, error) {
	if c.Kind != KindField {
		return FieldMeta{}, nil, fmt.Errorf("%w: kind %s, want field", ErrCorrupt, KindName(c.Kind))
	}
	if key != "" {
		if err := c.checkKey(key); err != nil {
			return FieldMeta{}, nil, err
		}
	}
	meta, err := c.ReadSection(SecMeta)
	if err != nil {
		return FieldMeta{}, nil, err
	}
	if len(meta) != fieldMetaSize {
		return FieldMeta{}, nil, fmt.Errorf("%w: field meta is %d bytes, want %d", ErrCorrupt, len(meta), fieldMetaSize)
	}
	fm := FieldMeta{
		P:        int(binary.LittleEndian.Uint32(meta[0:4])),
		BasisN:   int(binary.LittleEndian.Uint32(meta[4:8])),
		NumElems: int(binary.LittleEndian.Uint64(meta[8:16])),
		MeshHash: string(bytes.TrimRight(meta[16:80], "\x00")),
	}
	if fm.P < 0 || fm.P > 64 || fm.BasisN != metrics.NumModes(fm.P) {
		return FieldMeta{}, nil, fmt.Errorf("%w: field meta p=%d basisN=%d inconsistent", ErrCorrupt, fm.P, fm.BasisN)
	}
	raw, err := c.ReadSection(SecCoeffs)
	if err != nil {
		return FieldMeta{}, nil, err
	}
	coeffs, err := decodeF64s(raw)
	if err != nil {
		return FieldMeta{}, nil, err
	}
	if len(coeffs) != fm.NumElems*fm.BasisN {
		return FieldMeta{}, nil, fmt.Errorf("%w: %d coefficients for %d elements × %d modes",
			ErrCorrupt, len(coeffs), fm.NumElems, fm.BasisN)
	}
	return fm, coeffs, nil
}

// ---- Operator ----

// opMetaSize: rows u64 | cols u64 | basisN u32 | workers u32 |
// scheme [16]byte | wallNs u64 | counters 8×u64.
const opMetaSize = 8 + 8 + 4 + 4 + 16 + 8 + 64

// EncodeOperator serialises op as an operator artifact stored under key.
// The CSR (or BSR) arrays are written verbatim (fixed-width
// little-endian), so the payload can later be memory-mapped and applied
// with zero copies. The container version is the lowest that can
// represent the operator: blocked operators are version 3 (SecBlockID
// replaces SecColInd), operators carrying row-congruence templates are
// version 2, and plain CSR stays version 1 for older readers.
func EncodeOperator(w io.Writer, key string, op *operator.Operator) (int64, error) {
	version := uint16(Version)
	switch {
	case op.BSR != nil:
		version = VersionBSR
	case op.Tpl != nil:
		version = VersionTemplated
	}
	buf := encodeContainer(version, KindOperator, operatorSections(key, op))
	n, err := w.Write(buf)
	return int64(n), err
}

// EncodedOperatorSize returns the exact on-disk size of op without
// encoding it: the byte accounting the server LRU and the size-tracking
// benchmark use.
func EncodedOperatorSize(key string, op *operator.Operator) int64 {
	total := align8(uint64(headerSize) + uint64(len(operatorSectionLens(key, op)))*entrySize)
	for _, n := range operatorSectionLens(key, op) {
		total = align8(total + n)
	}
	return int64(total)
}

func operatorSectionLens(key string, op *operator.Operator) []uint64 {
	idxLen := 4 * uint64(len(op.ColInd))
	if op.BSR != nil {
		idxLen = 4 * uint64(len(op.BSR.BlockID))
	}
	lens := []uint64{opMetaSize, uint64(len(key)),
		8 * uint64(len(op.RowPtr)), idxLen, 8 * uint64(len(op.Val))}
	if op.Perm != nil {
		lens = append(lens, 4*uint64(len(op.Perm)))
	}
	if op.Tpl != nil {
		deltaLen := 4 * uint64(len(op.Tpl.TplDelta))
		if op.BSR != nil {
			deltaLen = 4 * uint64(len(op.BSR.TplBlockDelta))
		}
		lens = append(lens,
			8*uint64(len(op.Tpl.TplPtr)), deltaLen, 8*uint64(len(op.Tpl.TplVal)),
			4*uint64(len(op.Tpl.RowTpl)), 4*uint64(len(op.Tpl.RowBase)))
	}
	return lens
}

func operatorSections(key string, op *operator.Operator) []section {
	meta := make([]byte, opMetaSize)
	binary.LittleEndian.PutUint64(meta[0:8], uint64(op.Rows))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(op.Cols))
	binary.LittleEndian.PutUint32(meta[16:20], uint32(op.BasisN))
	binary.LittleEndian.PutUint32(meta[20:24], uint32(op.Workers))
	copy(meta[24:40], op.AssemblyScheme)
	binary.LittleEndian.PutUint64(meta[40:48], uint64(op.AssemblyWall))
	putI64s(meta[48:112], countersToRecord(op.AssemblyCounters))

	rowptr := make([]byte, 8*len(op.RowPtr))
	putI64s(rowptr, op.RowPtr)
	idxType, idxSrc := SecColInd, op.ColInd
	if op.BSR != nil {
		idxType, idxSrc = SecBlockID, op.BSR.BlockID
	}
	colind := make([]byte, 4*len(idxSrc))
	putI32s(colind, idxSrc)
	secs := []section{
		{SecMeta, meta},
		{SecKey, []byte(key)},
		{SecRowPtr, rowptr},
		{idxType, colind},
		{SecVal, encodeF64s(op.Val)},
	}
	if op.Perm != nil {
		perm := make([]byte, 4*len(op.Perm))
		putI32s(perm, op.Perm)
		secs = append(secs, section{SecPerm, perm})
	}
	if ts := op.Tpl; ts != nil {
		tplPtr := make([]byte, 8*len(ts.TplPtr))
		putI64s(tplPtr, ts.TplPtr)
		deltaType, deltaSrc := SecTplDelta, ts.TplDelta
		if op.BSR != nil {
			deltaType, deltaSrc = SecTplBlockDelta, op.BSR.TplBlockDelta
		}
		tplDelta := make([]byte, 4*len(deltaSrc))
		putI32s(tplDelta, deltaSrc)
		rowTpl := make([]byte, 4*len(ts.RowTpl))
		putI32s(rowTpl, ts.RowTpl)
		rowBase := make([]byte, 4*len(ts.RowBase))
		putI32s(rowBase, ts.RowBase)
		secs = append(secs,
			section{SecTplPtr, tplPtr},
			section{deltaType, tplDelta},
			section{SecTplVal, encodeF64s(ts.TplVal)},
			section{SecRowTpl, rowTpl},
			section{SecRowBase, rowBase})
	}
	return secs
}

func countersToRecord(c metrics.Counters) []int64 {
	return []int64{
		int64(c.IntersectionTests), int64(c.TruePositives), int64(c.Regions),
		int64(c.QuadEvals), int64(c.Flops), int64(c.BytesRead),
		int64(c.BytesUncoalesced), int64(c.ScatteredLoads),
	}
}

func recordToCounters(r []int64) metrics.Counters {
	return metrics.Counters{
		IntersectionTests: uint64(r[0]), TruePositives: uint64(r[1]), Regions: uint64(r[2]),
		QuadEvals: uint64(r[3]), Flops: uint64(r[4]), BytesRead: uint64(r[5]),
		BytesUncoalesced: uint64(r[6]), ScatteredLoads: uint64(r[7]),
	}
}

// opShape is the decoded fixed-width operator metadata.
type opShape struct {
	rows, cols, basisN, workers int
	scheme                      string
	wall                        time.Duration
	counters                    metrics.Counters
}

func decodeOpMeta(meta []byte) (opShape, error) {
	if len(meta) != opMetaSize {
		return opShape{}, fmt.Errorf("%w: operator meta is %d bytes, want %d", ErrCorrupt, len(meta), opMetaSize)
	}
	rows := binary.LittleEndian.Uint64(meta[0:8])
	cols := binary.LittleEndian.Uint64(meta[8:16])
	// Reject shapes that cannot index int32 columns or that would imply
	// absurd allocations before any array section is read.
	if rows > 1<<40 || cols > 1<<31 {
		return opShape{}, fmt.Errorf("%w: implausible operator shape %d×%d", ErrCorrupt, rows, cols)
	}
	cnt, _ := decodeI64s(meta[48:112])
	return opShape{
		rows:     int(rows),
		cols:     int(cols),
		basisN:   int(binary.LittleEndian.Uint32(meta[16:20])),
		workers:  int(binary.LittleEndian.Uint32(meta[20:24])),
		scheme:   string(bytes.TrimRight(meta[24:40], "\x00")),
		wall:     time.Duration(binary.LittleEndian.Uint64(meta[40:48])),
		counters: recordToCounters(cnt),
	}, nil
}

// validateRowPtrPerm checks the layout-independent structural invariants:
// monotone row pointers covering exactly the stored entries and a
// permutation inside [0, rows). Both layouts run it; the index arrays are
// checked per layout (validateCSR here, Operator.ValidateBSR for v3).
func validateRowPtrPerm(sh opShape, rowPtr []int64, nnz int, perm []int32) error {
	if len(rowPtr) != sh.rows+1 {
		return fmt.Errorf("%w: rowptr has %d entries for %d rows", ErrCorrupt, len(rowPtr), sh.rows)
	}
	if rowPtr[0] != 0 || rowPtr[sh.rows] != int64(nnz) {
		return fmt.Errorf("%w: rowptr spans [%d, %d], want [0, %d]",
			ErrCorrupt, rowPtr[0], rowPtr[sh.rows], nnz)
	}
	for r := 0; r < sh.rows; r++ {
		if rowPtr[r+1] < rowPtr[r] {
			return fmt.Errorf("%w: rowptr not monotone at row %d", ErrCorrupt, r)
		}
	}
	if perm != nil {
		if len(perm) != sh.rows {
			return fmt.Errorf("%w: perm has %d entries for %d rows", ErrCorrupt, len(perm), sh.rows)
		}
		for i, p := range perm {
			if p < 0 || int(p) >= sh.rows {
				return fmt.Errorf("%w: perm[%d]=%d outside [0, %d)", ErrCorrupt, i, p, sh.rows)
			}
		}
	}
	return nil
}

// validateCSR checks the structural invariants ApplyVec relies on, so a
// decoded (or mapped) operator can never index out of bounds: the shared
// rowptr/perm invariants plus column indices inside [0, cols). It is one
// linear pass over data that is about to be hot anyway.
func validateCSR(sh opShape, rowPtr []int64, colInd []int32, val []float64, perm []int32) error {
	if len(colInd) != len(val) {
		return fmt.Errorf("%w: %d column indices vs %d values", ErrCorrupt, len(colInd), len(val))
	}
	if err := validateRowPtrPerm(sh, rowPtr, len(val), perm); err != nil {
		return err
	}
	for i, cix := range colInd {
		if cix < 0 || int(cix) >= sh.cols {
			return fmt.Errorf("%w: column index %d at entry %d outside [0, %d)", ErrCorrupt, cix, i, sh.cols)
		}
	}
	return nil
}

// tplSectionTypes lists the five template section types for one layout; a
// valid container carries all of them or none. Version 3 containers store
// blocked element deltas in SecTplBlockDelta instead of scalar column
// deltas in SecTplDelta.
func tplSectionTypes(bsr bool) []uint32 {
	if bsr {
		return []uint32{SecTplPtr, SecTplBlockDelta, SecTplVal, SecRowTpl, SecRowBase}
	}
	return []uint32{SecTplPtr, SecTplDelta, SecTplVal, SecRowTpl, SecRowBase}
}

// decodeTemplates reads the optional row-congruence template sections via
// the portable sequential path; all nil when absent. For bsr containers
// the delta array is returned separately as the blocked element deltas
// (the TemplateSet's TplDelta stays nil).
func (c *Container) decodeTemplates(bsr bool) (*operator.TemplateSet, []int32, error) {
	secs := tplSectionTypes(bsr)
	present := 0
	for _, typ := range secs {
		if _, ok := c.Section(typ); ok {
			present++
		}
	}
	if present == 0 {
		return nil, nil, nil
	}
	if present != len(secs) {
		return nil, nil, fmt.Errorf("%w: %d of %d template sections present", ErrCorrupt, present, len(secs))
	}
	read := func(typ uint32) ([]byte, error) { return c.ReadSection(typ) }
	rawPtr, err := read(SecTplPtr)
	if err != nil {
		return nil, nil, err
	}
	tplPtr, err := decodeI64s(rawPtr)
	if err != nil {
		return nil, nil, err
	}
	rawDelta, err := read(secs[1])
	if err != nil {
		return nil, nil, err
	}
	tplDelta, err := decodeI32s(rawDelta)
	if err != nil {
		return nil, nil, err
	}
	rawVal, err := read(SecTplVal)
	if err != nil {
		return nil, nil, err
	}
	tplVal, err := decodeF64s(rawVal)
	if err != nil {
		return nil, nil, err
	}
	rawRowTpl, err := read(SecRowTpl)
	if err != nil {
		return nil, nil, err
	}
	rowTpl, err := decodeI32s(rawRowTpl)
	if err != nil {
		return nil, nil, err
	}
	rawRowBase, err := read(SecRowBase)
	if err != nil {
		return nil, nil, err
	}
	rowBase, err := decodeI32s(rawRowBase)
	if err != nil {
		return nil, nil, err
	}
	ts := &operator.TemplateSet{
		TplPtr: tplPtr, TplVal: tplVal,
		RowTpl: rowTpl, RowBase: rowBase,
	}
	if bsr {
		return ts, tplDelta, nil
	}
	ts.TplDelta = tplDelta
	return ts, nil, nil
}

// DecodeOperator parses an operator artifact into a heap-resident
// operator: the portable load path, one sequential decode pass over the
// fixed-width arrays. For the zero-copy path see MapOperator.
func DecodeOperator(r io.ReaderAt, size int64, key string) (*operator.Operator, error) {
	c, err := Parse(r, size)
	if err != nil {
		return nil, err
	}
	return c.DecodeOperator(key)
}

// DecodeOperator decodes the parsed container as an operator stored under
// key (key "" skips the key check).
func (c *Container) DecodeOperator(key string) (*operator.Operator, error) {
	if c.Kind != KindOperator {
		return nil, fmt.Errorf("%w: kind %s, want operator", ErrCorrupt, KindName(c.Kind))
	}
	if key != "" {
		if err := c.checkKey(key); err != nil {
			return nil, err
		}
	}
	meta, err := c.ReadSection(SecMeta)
	if err != nil {
		return nil, err
	}
	sh, err := decodeOpMeta(meta)
	if err != nil {
		return nil, err
	}
	bsr := c.Version == VersionBSR
	rawPtr, err := c.ReadSection(SecRowPtr)
	if err != nil {
		return nil, err
	}
	rowPtr, err := decodeI64s(rawPtr)
	if err != nil {
		return nil, err
	}
	var colInd, blockID []int32
	if bsr {
		if _, ok := c.Section(SecColInd); ok {
			return nil, fmt.Errorf("%w: v3 container carries scalar column indices", ErrCorrupt)
		}
		rawBlk, err := c.ReadSection(SecBlockID)
		if err != nil {
			return nil, err
		}
		if blockID, err = decodeI32s(rawBlk); err != nil {
			return nil, err
		}
	} else {
		rawCol, err := c.ReadSection(SecColInd)
		if err != nil {
			return nil, err
		}
		if colInd, err = decodeI32s(rawCol); err != nil {
			return nil, err
		}
	}
	rawVal, err := c.ReadSection(SecVal)
	if err != nil {
		return nil, err
	}
	val, err := decodeF64s(rawVal)
	if err != nil {
		return nil, err
	}
	var perm []int32
	if _, ok := c.Section(SecPerm); ok {
		rawPerm, err := c.ReadSection(SecPerm)
		if err != nil {
			return nil, err
		}
		if perm, err = decodeI32s(rawPerm); err != nil {
			return nil, err
		}
	}
	if bsr {
		err = validateRowPtrPerm(sh, rowPtr, len(val), perm)
	} else {
		err = validateCSR(sh, rowPtr, colInd, val, perm)
	}
	if err != nil {
		return nil, err
	}
	tpl, tplBlockDelta, err := c.decodeTemplates(bsr)
	if err != nil {
		return nil, err
	}
	op := &operator.Operator{
		Rows: sh.rows, Cols: sh.cols, BasisN: sh.basisN,
		RowPtr: rowPtr, Val: val, Perm: perm,
		Tpl:            tpl,
		Workers:        sh.workers,
		AssemblyScheme: sh.scheme,
		AssemblyWall:   sh.wall, AssemblyCounters: sh.counters,
	}
	if bsr {
		op.BSR = &operator.BSRIndex{BlockID: blockID, TplBlockDelta: tplBlockDelta}
		if err := op.ValidateBSR(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	} else {
		op.ColInd = colInd
	}
	if err := op.ValidateTemplates(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return op, nil
}
