package artifact

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// Store is the disk tier of the artifact hierarchy: the in-memory LRU
// (internal/server.Cache) spills content-addressed artifacts here, and
// cache misses fall back to disk before recomputation. It generalizes the
// PR 2 mesh store to every artifact kind with the same durability
// contract — atomic write-then-rename (a crash mid-write never leaves a
// readable-but-corrupt file under its final name), hash/CRC-verified
// loads, startup GC of torn files — plus singleflight on loads so a
// thundering herd of identical cold-start misses decodes once.
//
// Files are named <class>-<sha256(key)>.art, where class is the key's
// prefix ("mesh", "op", "qop", "field") and key is the same logical cache
// key the in-memory tier uses; the full key is stored inside the file and
// verified on load, so a renamed or cross-copied artifact is rejected
// rather than served for the wrong key.
type Store struct {
	dir string
	ctr *metrics.StoreCounters

	mu    sync.Mutex
	fills map[string]*fillCall
}

type fillCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewStore opens (creating if needed) a store rooted at dir, garbage-
// collecting leftovers of interrupted writes: stale temp files and .art
// files whose header or section table no longer parses. ctr may be nil.
func NewStore(dir string, ctr *metrics.StoreCounters) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: store: %w", err)
	}
	if ctr == nil {
		ctr = &metrics.StoreCounters{}
	}
	s := &Store{dir: dir, ctr: ctr, fills: make(map[string]*fillCall)}
	s.gc()
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Counters exposes the store telemetry.
func (s *Store) Counters() *metrics.StoreCounters { return s.ctr }

// KeyClass returns the artifact class of a logical key: its prefix up to
// the first ':' ("op", "qop", "mesh", "field").
func KeyClass(key string) string {
	if i := strings.IndexByte(key, ':'); i > 0 {
		return key[:i]
	}
	return "misc"
}

// Path returns the file a key is (or would be) stored at.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, fmt.Sprintf("%s-%x.art", KeyClass(key), sum))
}

// Has reports whether an artifact for key is on disk (existence only; the
// load path still verifies integrity).
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// gc removes leftovers a crash may have stranded: temp files (a rename
// never happened, the content is unfinished by definition) and .art files
// whose header or section table fails to parse (truncated out-of-band,
// e.g. by a full disk or manual tampering). Payload CRCs are deliberately
// not scanned here — that would read every byte of a possibly large store
// on every boot; payload integrity is verified per load instead.
func (s *Store) gc() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		switch {
		case strings.HasSuffix(e.Name(), ".tmp"):
			if os.Remove(path) == nil {
				s.ctr.TornFilesGCd.Add(1)
			}
		case strings.HasSuffix(e.Name(), ".art"):
			if err := quickCheck(path); err != nil {
				if os.Remove(path) == nil {
					s.ctr.TornFilesGCd.Add(1)
				}
			}
		}
	}
}

// quickCheck parses header and section table only.
func quickCheck(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	_, err = Parse(f, fi.Size())
	return err
}

// put writes one artifact atomically: encode to a temp file in the same
// directory, fsync, rename into place. Saving the same key twice is an
// idempotent overwrite.
func (s *Store) put(key string, encode func(io.Writer) (int64, error)) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.ctr.WriteErrors.Add(1)
		return fmt.Errorf("artifact: store put: %w", err)
	}
	defer os.Remove(tmp.Name())
	n, err := encode(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.Path(key))
	}
	if err != nil {
		s.ctr.WriteErrors.Add(1)
		return fmt.Errorf("artifact: store put %s: %w", KeyClass(key), err)
	}
	s.ctr.Writes.Add(1)
	s.ctr.BytesWritten.Add(uint64(n))
	return nil
}

// do deduplicates concurrent loads of the same key: one goroutine decodes,
// the rest share the result. The filled value is not retained — residency
// is the in-memory tier's job.
func (s *Store) do(key string, fn func() (any, error)) (any, error) {
	s.mu.Lock()
	if call, ok := s.fills[key]; ok {
		s.mu.Unlock()
		<-call.done
		return call.val, call.err
	}
	call := &fillCall{done: make(chan struct{})}
	s.fills[key] = call
	s.mu.Unlock()

	call.val, call.err = fn()
	s.mu.Lock()
	delete(s.fills, key)
	s.mu.Unlock()
	close(call.done)
	return call.val, call.err
}

// rejectCorrupt deletes an artifact that failed verification so the next
// miss recomputes instead of re-tripping on the same bad file, and counts
// the rejection. Non-structural errors (missing file, I/O) leave the file
// alone.
func (s *Store) rejectCorrupt(key string, err error) {
	if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrKeyMismatch) ||
		errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) {
		_ = os.Remove(s.Path(key))
		s.ctr.CorruptRejected.Add(1)
	}
}

// meshKey is the logical store key of a mesh with the given content hash.
func meshKey(id string) string { return "mesh:" + id }

// SaveMesh persists m keyed by its content hash and returns the id.
func (s *Store) SaveMesh(m *mesh.Mesh) (string, error) {
	id := m.ContentHash()
	err := s.put(meshKey(id), func(w io.Writer) (int64, error) {
		return EncodeMesh(w, meshKey(id), m)
	})
	return id, err
}

// LoadMesh reads the mesh with the given content hash, verifying CRCs,
// the stored key, and — because meshes are content-addressed — that the
// decoded geometry actually hashes to id: bit rot below CRC granularity or
// manual tampering is an error, never a silently wrong mesh.
func (s *Store) LoadMesh(id string) (*mesh.Mesh, error) {
	v, err := s.do(meshKey(id), func() (any, error) {
		f, err := os.Open(s.Path(meshKey(id)))
		if err != nil {
			s.ctr.DiskMisses.Add(1)
			return nil, err
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		m, err := DecodeMesh(f, fi.Size(), meshKey(id))
		if err != nil {
			s.ctr.DiskMisses.Add(1)
			s.rejectCorrupt(meshKey(id), err)
			return nil, fmt.Errorf("artifact: store load mesh %s: %w", id, err)
		}
		if got := m.ContentHash(); got != id {
			s.ctr.DiskMisses.Add(1)
			s.rejectCorrupt(meshKey(id), fmt.Errorf("%w: content hash", ErrKeyMismatch))
			return nil, fmt.Errorf("artifact: store load mesh %s: content hash mismatch (got %s)", id, got)
		}
		s.ctr.DiskHits.Add(1)
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mesh.Mesh), nil
}

// SaveField persists a modal coefficient field under key.
func (s *Store) SaveField(key string, f *dg.Field) error {
	return s.put(key, func(w io.Writer) (int64, error) {
		return EncodeField(w, key, f)
	})
}

// LoadField reads the field stored under key; the caller rebinds the
// coefficients to the resident mesh after checking FieldMeta.MeshHash.
func (s *Store) LoadField(key string) (FieldMeta, []float64, error) {
	type fr struct {
		meta   FieldMeta
		coeffs []float64
	}
	v, err := s.do(key, func() (any, error) {
		f, err := os.Open(s.Path(key))
		if err != nil {
			s.ctr.DiskMisses.Add(1)
			return nil, err
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		meta, coeffs, err := DecodeField(f, fi.Size(), key)
		if err != nil {
			s.ctr.DiskMisses.Add(1)
			s.rejectCorrupt(key, err)
			return nil, fmt.Errorf("artifact: store load field: %w", err)
		}
		s.ctr.DiskHits.Add(1)
		return &fr{meta, coeffs}, nil
	})
	if err != nil {
		return FieldMeta{}, nil, err
	}
	r := v.(*fr)
	return r.meta, r.coeffs, nil
}

// SaveOperator persists an assembled operator under key (the same logical
// key the in-memory tier uses, e.g. "op:<mesh>/p2/g4/periodic").
func (s *Store) SaveOperator(key string, op *operator.Operator) error {
	return s.put(key, func(w io.Writer) (int64, error) {
		return EncodeOperator(w, key, op)
	})
}

// LoadOperator loads the operator stored under key. With mapped=true the
// CSR arrays alias a read-only memory mapping (zero-copy; falls back to
// the portable decode where mmap is unavailable); the second return
// reports which path was taken. Integrity (CRCs + key) is always verified
// before the operator is returned, and corrupt files are deleted so the
// caller's re-assembly replaces them.
func (s *Store) LoadOperator(key string, mapped bool) (*operator.Operator, bool, error) {
	type or struct {
		op     *operator.Operator
		mapped bool
	}
	v, err := s.do(key, func() (any, error) {
		path := s.Path(key)
		if _, err := os.Stat(path); err != nil {
			s.ctr.DiskMisses.Add(1)
			return nil, err
		}
		var (
			op     *operator.Operator
			viaMap bool
			err    error
		)
		if mapped {
			op, viaMap, err = MapOperator(path, key)
		} else {
			op, err = LoadOperatorFile(path, key)
		}
		if err != nil {
			s.ctr.DiskMisses.Add(1)
			s.rejectCorrupt(key, err)
			return nil, fmt.Errorf("artifact: store load operator: %w", err)
		}
		s.ctr.DiskHits.Add(1)
		return &or{op, viaMap}, nil
	})
	if err != nil {
		return nil, false, err
	}
	r := v.(*or)
	return r.op, r.mapped, nil
}
