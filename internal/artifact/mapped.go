package artifact

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"

	"unstencil/internal/operator"
)

// hostLittleEndian reports whether this machine stores multi-byte integers
// little-endian, i.e. whether the on-disk fixed-width arrays are
// byte-identical to in-memory slices and may be aliased directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Mapping owns one read-only memory-mapped artifact file. Operators loaded
// through MapOperator alias its pages via Operator.Backing; the mapping is
// released either by an explicit Close (offline tools) or by the finalizer
// once the operator itself is unreachable (the server's LRU eviction path,
// which has no unload hook).
type Mapping struct {
	data   []byte
	closed atomic.Bool
}

// Close unmaps the file. The CSR slices of any operator backed by this
// mapping are invalid afterwards; long-lived holders (the server cache)
// never call Close and rely on the finalizer instead.
func (m *Mapping) Close() error {
	if m == nil || m.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	return munmapFile(m.data)
}

// Bytes returns the total mapped size.
func (m *Mapping) Bytes() int64 { return int64(len(m.data)) }

// Aliasing casts: valid only on little-endian hosts over 8-byte-aligned
// payload bytes, both of which MapOperator checks before getting here.

func castF64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castI64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castI32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// alignedSection returns the mapped payload of one section, enforcing the
// element-width divisibility the casts assume.
func (c *Container) alignedSection(data []byte, typ uint32, width uint64) ([]byte, error) {
	s, ok := c.Section(typ)
	if !ok {
		return nil, fmt.Errorf("%w: missing section type %d", ErrCorrupt, typ)
	}
	if s.Length%width != 0 {
		return nil, fmt.Errorf("%w: section %d length %d not a multiple of %d", ErrCorrupt, typ, s.Length, width)
	}
	return data[s.Offset : s.Offset+s.Length], nil
}

// MapOperator opens the operator artifact at path with the CSR arrays
// aliasing a read-only memory mapping: zero deserialization, pages faulted
// in as ApplyVec row-slices them. Every section CRC is verified before the
// operator is returned (the verification pass doubles as page warm-up for
// hot-start use). The boolean reports whether the mapping path was used;
// on platforms without mmap, or big-endian hosts, the call transparently
// falls back to the portable sequential decode and returns false.
//
// key "" skips the logical-key check (offline inspection).
func MapOperator(path, key string) (*operator.Operator, bool, error) {
	if !mmapSupported || !hostLittleEndian {
		op, err := LoadOperatorFile(path, key)
		return op, false, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if fi.Size() == 0 {
		return nil, false, fmt.Errorf("%w: empty file", ErrCorrupt)
	}
	data, err := mmapFile(f, fi.Size())
	if err != nil {
		// mmap itself failing (filesystem without mmap support) is an
		// environment limitation, not corruption: fall back.
		op, lerr := LoadOperatorFile(path, key)
		return op, false, lerr
	}
	m := &Mapping{data: data}
	runtime.SetFinalizer(m, func(m *Mapping) { _ = m.Close() })
	op, err := mapOperator(m, key)
	if err != nil {
		_ = m.Close()
		return nil, false, err
	}
	return op, true, nil
}

func mapOperator(m *Mapping, key string) (*operator.Operator, error) {
	c, err := Parse(bytes.NewReader(m.data), int64(len(m.data)))
	if err != nil {
		return nil, err
	}
	if c.Kind != KindOperator {
		return nil, fmt.Errorf("%w: kind %s, want operator", ErrCorrupt, KindName(c.Kind))
	}
	// Full CRC verification up front: a mapped operator is applied many
	// times without further checks, so integrity is settled once here.
	if err := c.VerifyAll(); err != nil {
		return nil, err
	}
	if key != "" {
		if err := c.checkKey(key); err != nil {
			return nil, err
		}
	}
	meta, err := c.ReadSection(SecMeta)
	if err != nil {
		return nil, err
	}
	sh, err := decodeOpMeta(meta)
	if err != nil {
		return nil, err
	}
	bsr := c.Version == VersionBSR
	rawPtr, err := c.alignedSection(m.data, SecRowPtr, 8)
	if err != nil {
		return nil, err
	}
	var colInd, blockID []int32
	if bsr {
		if _, ok := c.Section(SecColInd); ok {
			return nil, fmt.Errorf("%w: v3 container carries scalar column indices", ErrCorrupt)
		}
		rawBlk, err := c.alignedSection(m.data, SecBlockID, 4)
		if err != nil {
			return nil, err
		}
		blockID = castI32s(rawBlk)
	} else {
		rawCol, err := c.alignedSection(m.data, SecColInd, 4)
		if err != nil {
			return nil, err
		}
		colInd = castI32s(rawCol)
	}
	rawVal, err := c.alignedSection(m.data, SecVal, 8)
	if err != nil {
		return nil, err
	}
	var perm []int32
	if _, ok := c.Section(SecPerm); ok {
		rawPerm, err := c.alignedSection(m.data, SecPerm, 4)
		if err != nil {
			return nil, err
		}
		perm = castI32s(rawPerm)
	}
	rowPtr, val := castI64s(rawPtr), castF64s(rawVal)
	if bsr {
		err = validateRowPtrPerm(sh, rowPtr, len(val), perm)
	} else {
		err = validateCSR(sh, rowPtr, colInd, val, perm)
	}
	if err != nil {
		return nil, err
	}
	tpl, tplBlockDelta, err := c.mapTemplates(m.data, bsr)
	if err != nil {
		return nil, err
	}
	op := &operator.Operator{
		Rows: sh.rows, Cols: sh.cols, BasisN: sh.basisN,
		RowPtr: rowPtr, Val: val, Perm: perm,
		Tpl:            tpl,
		Workers:        sh.workers,
		AssemblyScheme: sh.scheme,
		AssemblyWall:   sh.wall, AssemblyCounters: sh.counters,
		Backing: m,
	}
	if bsr {
		op.BSR = &operator.BSRIndex{BlockID: blockID, TplBlockDelta: tplBlockDelta}
		if err := op.ValidateBSR(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	} else {
		op.ColInd = colInd
	}
	if err := op.ValidateTemplates(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return op, nil
}

// mapTemplates aliases the optional template sections out of the mapping,
// mirroring decodeTemplates for the zero-copy path. For bsr containers the
// aliased delta array is the blocked element deltas, returned separately.
func (c *Container) mapTemplates(data []byte, bsr bool) (*operator.TemplateSet, []int32, error) {
	secs := tplSectionTypes(bsr)
	present := 0
	for _, typ := range secs {
		if _, ok := c.Section(typ); ok {
			present++
		}
	}
	if present == 0 {
		return nil, nil, nil
	}
	if present != len(secs) {
		return nil, nil, fmt.Errorf("%w: %d of %d template sections present", ErrCorrupt, present, len(secs))
	}
	rawPtr, err := c.alignedSection(data, SecTplPtr, 8)
	if err != nil {
		return nil, nil, err
	}
	rawDelta, err := c.alignedSection(data, secs[1], 4)
	if err != nil {
		return nil, nil, err
	}
	rawVal, err := c.alignedSection(data, SecTplVal, 8)
	if err != nil {
		return nil, nil, err
	}
	rawRowTpl, err := c.alignedSection(data, SecRowTpl, 4)
	if err != nil {
		return nil, nil, err
	}
	rawRowBase, err := c.alignedSection(data, SecRowBase, 4)
	if err != nil {
		return nil, nil, err
	}
	ts := &operator.TemplateSet{
		TplPtr: castI64s(rawPtr), TplVal: castF64s(rawVal),
		RowTpl: castI32s(rawRowTpl), RowBase: castI32s(rawRowBase),
	}
	if bsr {
		return ts, castI32s(rawDelta), nil
	}
	ts.TplDelta = castI32s(rawDelta)
	return ts, nil, nil
}

// LoadOperatorFile reads the operator artifact at path into heap-resident
// slices: the portable path, one sequential decode pass.
func LoadOperatorFile(path, key string) (*operator.Operator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return DecodeOperator(f, fi.Size(), key)
}
