package artifact

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"unstencil/internal/mesh"
)

// Save→Load round-trips an operator through the store, mapped and
// portable, and the telemetry records the traffic.
func TestStoreOperatorRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	op := testOperator(t, 40, 24, 6, true)
	key := "op:abc/p2/g4/periodic"
	if st.Has(key) {
		t.Fatal("empty store claims to have the key")
	}
	if err := st.SaveOperator(key, op); err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatal("saved operator not on disk")
	}
	for _, mapped := range []bool{false, true} {
		got, _, err := st.LoadOperator(key, mapped)
		if err != nil {
			t.Fatalf("mapped=%v: %v", mapped, err)
		}
		sameOperator(t, got, op)
	}
	snap := st.Counters().Snapshot()
	if snap.Writes != 1 || snap.DiskHits != 2 || snap.BytesWritten == 0 {
		t.Errorf("counters = %+v", snap)
	}
	if _, _, err := st.LoadOperator("op:missing", true); err == nil {
		t.Error("loading a missing operator succeeded")
	}
}

// Startup GC removes interrupted-write leftovers — temp files and .art
// files whose header no longer parses — and leaves valid artifacts alone.
func TestStoreGCTornFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := testOperator(t, 10, 8, 3, false)
	if err := st.SaveOperator("op:keep", op); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "op-dead.art"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Counters().Snapshot().TornFilesGCd; got != 2 {
		t.Errorf("torn files GC'd = %d, want 2", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "put-123.tmp")); !os.IsNotExist(err) {
		t.Error("temp file survived GC")
	}
	if _, err := os.Stat(filepath.Join(dir, "op-dead.art")); !os.IsNotExist(err) {
		t.Error("undecodable artifact survived GC")
	}
	if !st2.Has("op:keep") {
		t.Error("valid artifact did not survive GC")
	}
	if _, _, err := st2.LoadOperator("op:keep", true); err != nil {
		t.Errorf("valid artifact unreadable after GC: %v", err)
	}
}

// A payload bit flip below GC granularity is caught at load time by the
// section CRC; the bad file is deleted so the next miss recomputes.
func TestStoreCorruptLoadRejected(t *testing.T) {
	st, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	op := testOperator(t, 30, 20, 6, false)
	key := "op:bitrot"
	if err := st.SaveOperator(key, op); err != nil {
		t.Fatal(err)
	}
	path := st.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40 // inside the last payload section
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := st.LoadOperator(key, true); err == nil {
		t.Fatal("corrupt operator load succeeded")
	}
	if st.Has(key) {
		t.Error("corrupt artifact left on disk")
	}
	snap := st.Counters().Snapshot()
	if snap.CorruptRejected != 1 {
		t.Errorf("corrupt_rejected = %d, want 1", snap.CorruptRejected)
	}
	// The rejection cleared the way: re-saving and loading works again.
	if err := st.SaveOperator(key, op); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadOperator(key, true); err != nil {
		t.Fatal(err)
	}
}

// Concurrent loads of one key are safe and deduplicated by the store's
// singleflight; everyone gets a usable operator. (Run under -race.)
func TestStoreConcurrentLoads(t *testing.T) {
	st, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	op := testOperator(t, 60, 30, 6, true)
	key := "op:herd"
	if err := st.SaveOperator(key, op); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := st.LoadOperator(key, true)
			if err == nil && got.Rows != op.Rows {
				err = os.ErrInvalid
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
}

// Meshes and fields round-trip through the store with their binding
// metadata intact.
func TestStoreMeshAndField(t *testing.T) {
	st, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.Structured(3)
	id, err := st.SaveMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadMesh(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash() != id {
		t.Fatal("mesh round trip changed the content hash")
	}

	f := projectTestField(m)
	key := "field:" + id + "/p2/test"
	if err := st.SaveField(key, f); err != nil {
		t.Fatal(err)
	}
	meta, coeffs, err := st.LoadField(key)
	if err != nil {
		t.Fatal(err)
	}
	if meta.MeshHash != id || meta.P != 2 || len(coeffs) != len(f.Coeffs) {
		t.Fatalf("field meta = %+v (%d coeffs)", meta, len(coeffs))
	}
}
