package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"unstencil/internal/operator"
)

// A BSR operator must round-trip through a version 3 container — blocked
// index, templates, and apply results all bitwise — on both the portable
// and the mapped load path, and the container must shrink against the
// scalar CSR encoding of the same operator.
func TestBSROperatorRoundTrip(t *testing.T) {
	plainCSR, toplCSR := congruentOperator(t, 300, 80, 3)
	for name, pair := range map[string][2]*operator.Operator{
		"plain":     {plainCSR, plainCSR.ToBSR()},
		"templated": {toplCSR, toplCSR.ToBSR()},
	} {
		csr, bsr := pair[0], pair[1]
		if bsr.BSR == nil {
			t.Fatalf("%s: congruent operator did not convert to BSR", name)
		}
		key := "op:test/p2/g4/periodic"
		dataCSR := encodeOp(t, key, csr)
		dataBSR := encodeOp(t, key, bsr)

		if v := binary.LittleEndian.Uint16(dataBSR[4:6]); v != VersionBSR {
			t.Fatalf("%s: blocked container has version %d, want %d", name, v, VersionBSR)
		}
		if got := EncodedOperatorSize(key, bsr); got != int64(len(dataBSR)) {
			t.Fatalf("%s: EncodedOperatorSize = %d, file is %d", name, got, len(dataBSR))
		}
		if len(dataBSR) >= len(dataCSR) {
			t.Fatalf("%s: blocked container (%d B) not smaller than scalar (%d B)",
				name, len(dataBSR), len(dataCSR))
		}

		got, err := DecodeOperator(bytes.NewReader(dataBSR), int64(len(dataBSR)), key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.BSR == nil || got.ColInd != nil {
			t.Fatalf("%s: decode did not restore the blocked layout", name)
		}
		sameBlockIndex(t, got, bsr)

		path := filepath.Join(t.TempDir(), "op.art")
		if err := os.WriteFile(path, dataBSR, 0o644); err != nil {
			t.Fatal(err)
		}
		mop, viaMap, err := MapOperator(path, key)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mmapSupported && hostLittleEndian && !viaMap {
			t.Errorf("%s: mmap supported but MapOperator fell back", name)
		}
		if mop.BSR == nil || mop.ColInd != nil {
			t.Fatalf("%s: mapped operator lost the blocked layout", name)
		}
		sameBlockIndex(t, mop, bsr)

		// Apply bitwise identity: CSR original vs decoded-BSR vs mapped-BSR.
		rng := rand.New(rand.NewSource(11))
		coeffs := make([]float64, csr.Cols)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		want := make([]float64, csr.Rows)
		if err := csr.ApplyVec(coeffs, want, 1); err != nil {
			t.Fatal(err)
		}
		for leg, o := range map[string]*operator.Operator{"decoded": got, "mapped": mop} {
			out := make([]float64, csr.Rows)
			if err := o.ApplyVec(coeffs, out, 2); err != nil {
				t.Fatal(err)
			}
			for r := range want {
				if math.Float64bits(out[r]) != math.Float64bits(want[r]) {
					t.Fatalf("%s/%s row %d: %x vs %x", name, leg, r,
						math.Float64bits(out[r]), math.Float64bits(want[r]))
				}
			}
		}
		if m, ok := mop.Backing.(*Mapping); ok {
			_ = m.Close()
		}
	}
}

func sameBlockIndex(t *testing.T, got, want *operator.Operator) {
	t.Helper()
	if len(got.BSR.BlockID) != len(want.BSR.BlockID) ||
		len(got.BSR.TplBlockDelta) != len(want.BSR.TplBlockDelta) {
		t.Fatalf("block index lengths (%d, %d), want (%d, %d)",
			len(got.BSR.BlockID), len(got.BSR.TplBlockDelta),
			len(want.BSR.BlockID), len(want.BSR.TplBlockDelta))
	}
	for i := range want.BSR.BlockID {
		if got.BSR.BlockID[i] != want.BSR.BlockID[i] {
			t.Fatalf("blockid[%d] = %d, want %d", i, got.BSR.BlockID[i], want.BSR.BlockID[i])
		}
	}
	for i := range want.BSR.TplBlockDelta {
		if got.BSR.TplBlockDelta[i] != want.BSR.TplBlockDelta[i] {
			t.Fatalf("tplblockdelta[%d] = %d, want %d", i, got.BSR.TplBlockDelta[i], want.BSR.TplBlockDelta[i])
		}
	}
}

// An out-of-range element id in the blocked index is corruption: the v3
// decoders must reject it (ValidateBSR), never hand back an operator whose
// apply would index outside the coefficient vector.
func TestBSRDecodeRejectsBadBlockID(t *testing.T) {
	plain, _ := congruentOperator(t, 100, 40, 3)
	bsr := plain.ToBSR()
	broken := *bsr
	bi := *bsr.BSR
	bi.BlockID = append([]int32(nil), bsr.BSR.BlockID...)
	bi.BlockID[0] = int32(bsr.Cols) // element id far past Cols/basisN
	broken.BSR = &bi
	data := encodeOp(t, "op:k", &broken)
	if _, err := DecodeOperator(bytes.NewReader(data), int64(len(data)), "op:k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode err = %v, want ErrCorrupt", err)
	}
	path := filepath.Join(t.TempDir(), "op.art")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MapOperator(path, "op:k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("map err = %v, want ErrCorrupt", err)
	}
}

// A v3 container carrying a scalar column-index section is structurally
// contradictory and must be rejected, not silently preferred either way.
func TestBSRRejectsScalarColumnSection(t *testing.T) {
	plain, _ := congruentOperator(t, 100, 40, 3)
	bsr := plain.ToBSR()
	key := "op:k"
	data := encodeOp(t, key, bsr)
	c, err := Parse(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, s := range c.Sections {
		if s.Type == SecBlockID {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no BlockID section in a v3 container")
	}
	// Retype the blocked index as the scalar section: the payload bytes and
	// CRC still match, so only the v3 structural check can catch it.
	bad := bytes.Clone(data)
	binary.LittleEndian.PutUint32(bad[headerSize+idx*entrySize:], SecColInd)
	if _, err := DecodeOperator(bytes.NewReader(bad), int64(len(bad)), key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
