// Package artifact is the persistent binary container for unstencil's
// precomputed artifacts: meshes, modal coefficient fields, and assembled
// CSR post-processing operators.
//
// The service's whole design is precompute-once/apply-many — PR 5's
// assembled operators turn every repeated field into a single SpMV — but
// until now the precomputed data lived only in an in-process LRU, so every
// restart of unstencild re-paid 0.2–1.2 s of assembly per operator. This
// package trades that recomputation for stored operator data (the same
// trade the matrix-free dG literature frames for operator setup): a
// compact, versioned, content-addressed on-disk format plus a tiered
// store, so cold starts warm from disk at I/O speed instead of re-running
// geometry.
//
// # Container layout (format version 1)
//
// Every artifact is one file, little-endian throughout:
//
//	header (16 B): magic "UNSA" | version u16 | kind u16 |
//	               nsections u32 | reserved u32 (zero)
//	section table: nsections × 24 B entries:
//	               type u32 | crc32 u32 (IEEE, payload) |
//	               offset u64 | length u64
//	payload:       sections in table order, each zero-padded to an
//	               8-byte-aligned offset
//
// Payload records are fixed-width arrays (float64, int64, int32 — never a
// varint or a length-prefixed element), which is what makes operators
// memory-mappable: the CSR row pointers, column indices and weights in the
// file are byte-for-byte the in-memory arrays, so a mapped file can be
// row-sliced by ApplyVec with no deserialization at all. On hosts without
// mmap (or big-endian ones) a portable fallback reads the arrays through
// one sequential decode pass instead.
//
// Integrity is layered: per-section CRC32 catches bit rot and truncation,
// the KEY section ties a file to the logical store key it was written
// under (a renamed or cross-copied file is rejected, never silently
// served), and mesh artifacts additionally verify the decoded mesh's
// content hash. Compatibility rule: the format version bumps on any layout
// change; readers reject versions they do not know, and unknown section
// types within a known version are ignored so minor additions stay
// forward-compatible.
//
// # Format version 2 (templated operators)
//
// Version 2 containers are version 1 plus the optional row-congruence
// template sections of a compressed operator (SecTplPtr..SecRowBase, see
// operator.TemplateSet). The sections are load-bearing — dropping them
// would silently lose most of the operator's rows — which is exactly why
// they ride a version bump instead of the ignore-unknown-sections rule:
// a v1-only reader must reject the file, not misread it. Writers emit
// version 1 whenever the operator has no templates, so plain artifacts
// remain readable by v1-era tooling, and every v1 file remains readable
// here. The template arrays are fixed-width (int64/int32/float64) like
// the CSR arrays, so templated operators mmap zero-copy the same way.
//
// # Format version 3 (block-sparse operators)
//
// Version 3 containers persist the BSR layout: the scalar column-index
// section (SecColInd) is replaced by SecBlockID (one int32 element id per
// basisN-wide block) and, when templated, SecTplDelta is replaced by
// SecTplBlockDelta. Values, row pointers, permutation and the remaining
// template sections are unchanged, so a v3 operator mmaps zero-copy
// exactly like v1/v2 — with an index stream basisN× smaller on disk and
// in residency. The substitution is load-bearing (a v1/v2 reader would
// see no column indices at all), hence the version bump; this reader
// accepts v1 through v3, and writers emit the lowest version that can
// represent the operator, so CSR artifacts stay readable by older
// tooling.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies an unstencil artifact file.
const Magic = "UNSA"

// Version is the base container format version. Readers reject files
// with versions they do not know: fixed-width layouts cannot be sniffed
// safely.
const Version = 1

// VersionTemplated marks containers carrying the operator template
// sections. Writers use it only when templates are present, so plain
// artifacts stay version 1.
const VersionTemplated = 2

// VersionBSR marks containers whose operator index is blocked: SecBlockID
// in place of SecColInd (and SecTplBlockDelta in place of SecTplDelta when
// templated). Writers use it only for BSR-form operators.
const VersionBSR = 3

// Artifact kinds (header field).
const (
	KindMesh     uint16 = 1
	KindField    uint16 = 2
	KindOperator uint16 = 3
)

// KindName returns the human-readable name of a kind.
func KindName(kind uint16) string {
	switch kind {
	case KindMesh:
		return "mesh"
	case KindField:
		return "field"
	case KindOperator:
		return "operator"
	default:
		return fmt.Sprintf("kind(%d)", kind)
	}
}

// Section types. Meta and Key are common to all kinds; the rest are
// per-kind payload arrays.
const (
	// SecMeta is the fixed-width metadata record (shape, provenance).
	SecMeta uint32 = 1
	// SecKey is the logical store key the artifact was written under,
	// verified on load so a misplaced file is never served for the wrong
	// key.
	SecKey uint32 = 2

	// Mesh payload.
	SecVerts uint32 = 16 // float64 ×2 per vertex
	SecTris  uint32 = 17 // int32 ×3 per triangle

	// Field payload.
	SecCoeffs uint32 = 32 // float64, element-major modal coefficients

	// Operator payload (CSR arrays, the mmap-able part).
	SecRowPtr uint32 = 48 // int64, rows+1
	SecColInd uint32 = 49 // int32, nnz
	SecVal    uint32 = 50 // float64, nnz
	SecPerm   uint32 = 51 // int32, rows (optional: absent = identity)

	// Row-congruence template payload (version 2 operators only; all five
	// present together or all absent). Same fixed-width mmap contract as
	// the CSR arrays.
	SecTplPtr   uint32 = 52 // int64, numTemplates+1
	SecTplDelta uint32 = 53 // int32, template entries (column deltas)
	SecTplVal   uint32 = 54 // float64, template entries (weights)
	SecRowTpl   uint32 = 55 // int32, rows (template id, -1 = plain row)
	SecRowBase  uint32 = 56 // int32, rows (templated row's base column)

	// Blocked index payload (version 3 operators only): these replace
	// SecColInd / SecTplDelta, storing one int32 per basisN-wide element
	// block instead of one per entry.
	SecBlockID       uint32 = 57 // int32, nnz/basisN (element id per block)
	SecTplBlockDelta uint32 = 58 // int32, template blocks (element deltas)
)

const (
	headerSize = 16
	entrySize  = 24
	// maxSections bounds the table so a corrupt count cannot drive a huge
	// allocation before any CRC is checked.
	maxSections = 64
)

// Decode errors callers may branch on.
var (
	// ErrBadMagic marks a file that is not an unstencil artifact at all.
	ErrBadMagic = errors.New("artifact: bad magic (not an artifact file)")
	// ErrVersion marks a container version this reader does not support.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrCorrupt marks structural damage: truncation, overlapping or
	// out-of-bounds sections, CRC mismatch.
	ErrCorrupt = errors.New("artifact: corrupt container")
	// ErrKeyMismatch marks a structurally valid artifact stored under a
	// different logical key than the one requested.
	ErrKeyMismatch = errors.New("artifact: key mismatch")
)

// SectionInfo is one parsed section-table entry.
type SectionInfo struct {
	Type   uint32
	CRC    uint32
	Offset uint64
	Length uint64
}

// Container is a parsed artifact file: the header and section table,
// validated for bounds and alignment, over a random-access reader. Payload
// bytes are read (and CRC-verified) on demand, so a caller that only needs
// the header — inspect, startup GC — never touches the arrays.
type Container struct {
	Version  uint16
	Kind     uint16
	Sections []SectionInfo

	r    io.ReaderAt
	size int64
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Parse validates the header and section table of an artifact of the given
// total size. It reads only the header region; call ReadSection or
// VerifyAll for payload integrity.
func Parse(r io.ReaderAt, size int64) (*Container, error) {
	var hdr [headerSize]byte
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the header", ErrCorrupt, size)
	}
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("artifact: read header: %w", err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint16(hdr[4:6])
	if v < Version || v > VersionBSR {
		return nil, fmt.Errorf("%w: got v%d, this reader supports v%d-v%d",
			ErrVersion, v, Version, VersionBSR)
	}
	kind := binary.LittleEndian.Uint16(hdr[6:8])
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n == 0 || n > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, n)
	}
	table := make([]byte, int(n)*entrySize)
	if _, err := r.ReadAt(table, headerSize); err != nil {
		return nil, fmt.Errorf("%w: section table truncated", ErrCorrupt)
	}
	c := &Container{Version: v, Kind: kind, Sections: make([]SectionInfo, n), r: r, size: size}
	payloadStart := uint64(headerSize) + uint64(n)*entrySize
	seen := map[uint32]bool{}
	for i := range c.Sections {
		e := table[i*entrySize:]
		s := SectionInfo{
			Type:   binary.LittleEndian.Uint32(e[0:4]),
			CRC:    binary.LittleEndian.Uint32(e[4:8]),
			Offset: binary.LittleEndian.Uint64(e[8:16]),
			Length: binary.LittleEndian.Uint64(e[16:24]),
		}
		if seen[s.Type] {
			return nil, fmt.Errorf("%w: duplicate section type %d", ErrCorrupt, s.Type)
		}
		seen[s.Type] = true
		if s.Offset%8 != 0 {
			return nil, fmt.Errorf("%w: section %d offset %d not 8-byte aligned", ErrCorrupt, s.Type, s.Offset)
		}
		if s.Offset < payloadStart || s.Offset > uint64(size) || s.Length > uint64(size)-s.Offset {
			return nil, fmt.Errorf("%w: section %d [%d, +%d) outside file of %d bytes",
				ErrCorrupt, s.Type, s.Offset, s.Length, size)
		}
		c.Sections[i] = s
	}
	return c, nil
}

// Section returns the table entry for the given type.
func (c *Container) Section(typ uint32) (SectionInfo, bool) {
	for _, s := range c.Sections {
		if s.Type == typ {
			return s, true
		}
	}
	return SectionInfo{}, false
}

// ReadSection reads one section's payload and verifies its CRC32.
func (c *Container) ReadSection(typ uint32) ([]byte, error) {
	s, ok := c.Section(typ)
	if !ok {
		return nil, fmt.Errorf("%w: missing section type %d", ErrCorrupt, typ)
	}
	buf := make([]byte, s.Length)
	if _, err := c.r.ReadAt(buf, int64(s.Offset)); err != nil {
		return nil, fmt.Errorf("%w: section %d truncated", ErrCorrupt, typ)
	}
	if got := crc32.ChecksumIEEE(buf); got != s.CRC {
		return nil, fmt.Errorf("%w: section %d CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, typ, s.CRC, got)
	}
	return buf, nil
}

// VerifyAll checks every section's CRC. It is the integrity pass behind
// `unstencil-artifact verify` and hash-verified store loads.
func (c *Container) VerifyAll() error {
	for _, s := range c.Sections {
		if _, err := c.ReadSection(s.Type); err != nil {
			return err
		}
	}
	return nil
}

// Key returns the logical store key recorded in the artifact, or "" if the
// file predates key stamping (never the case for files this package
// writes).
func (c *Container) Key() (string, error) {
	if _, ok := c.Section(SecKey); !ok {
		return "", nil
	}
	b, err := c.ReadSection(SecKey)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// checkKey verifies the artifact was stored under key.
func (c *Container) checkKey(key string) error {
	got, err := c.Key()
	if err != nil {
		return err
	}
	if got != key {
		return fmt.Errorf("%w: stored under %q, requested %q", ErrKeyMismatch, got, key)
	}
	return nil
}

// section is one pending payload block during encoding.
type section struct {
	typ  uint32
	data []byte
}

// encodeContainer lays out a complete artifact file: header, section
// table, then payloads at 8-byte-aligned offsets with zero padding. The
// whole file is assembled in memory — artifacts are at most tens of MB and
// the caller already holds the arrays being written.
func encodeContainer(version, kind uint16, secs []section) []byte {
	payloadStart := align8(uint64(headerSize) + uint64(len(secs))*entrySize)
	total := payloadStart
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		offsets[i] = total
		total = align8(total + uint64(len(s.data)))
	}
	out := make([]byte, total)
	copy(out[0:4], Magic)
	binary.LittleEndian.PutUint16(out[4:6], version)
	binary.LittleEndian.PutUint16(out[6:8], kind)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(secs)))
	for i, s := range secs {
		e := out[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:4], s.typ)
		binary.LittleEndian.PutUint32(e[4:8], crc32.ChecksumIEEE(s.data))
		binary.LittleEndian.PutUint64(e[8:16], offsets[i])
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.data)))
		copy(out[offsets[i]:], s.data)
	}
	return out
}
