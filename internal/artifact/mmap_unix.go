//go:build linux || darwin

package artifact

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has the zero-copy load path.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared: the pages
// are backed by the file, faulted in on first touch, and reclaimable under
// memory pressure — the property that lets tens-of-MB operators cost only
// the rows actually applied.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
