package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// congruentOperator builds an operator whose rows are exact column
// translates of a few shared stencil patterns, then compresses it — the
// shape a structured mesh produces after Templatize.
func congruentOperator(t testing.TB, rows, elems, basisN int) (plain, templated *operator.Operator) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	patterns := [][]float64{
		make([]float64, 4*basisN), make([]float64, 6*basisN),
	}
	for _, p := range patterns {
		for i := range p {
			p[i] = rng.NormFloat64()
			if i%2 == 1 {
				p[i] = -p[i]
			}
		}
	}
	b := operator.NewBuilder(rows, elems*basisN, basisN)
	for r := 0; r < rows; r++ {
		p := patterns[rng.Intn(len(patterns))]
		e0 := rng.Intn(elems - 6)
		ci := make([]int32, len(p))
		for i := range ci {
			ci[i] = int32(e0*basisN + i)
		}
		b.SetRow(r, ci, p)
	}
	plain = b.Finish(nil, 2, "per-point", time.Millisecond, metrics.Counters{Regions: 3})
	templated = plain.Templatize()
	if templated.Tpl == nil {
		t.Fatal("congruent operator did not templatize")
	}
	return plain, templated
}

// A templated operator must round-trip through a version 2 container —
// templates, side tables, and apply results all bitwise — on both the
// portable and the mapped load path, and the container must shrink
// against the plain encoding.
func TestTemplatedOperatorRoundTrip(t *testing.T) {
	plain, topl := congruentOperator(t, 300, 80, 3)
	key := "op:test/p2/g4/periodic"
	dataPlain := encodeOp(t, key, plain)
	dataTpl := encodeOp(t, key, topl)

	if got := EncodedOperatorSize(key, topl); got != int64(len(dataTpl)) {
		t.Fatalf("EncodedOperatorSize = %d, file is %d", got, len(dataTpl))
	}
	if len(dataTpl) >= len(dataPlain) {
		t.Fatalf("templated container (%d B) not smaller than plain (%d B)", len(dataTpl), len(dataPlain))
	}
	if v := binary.LittleEndian.Uint16(dataTpl[4:6]); v != VersionTemplated {
		t.Fatalf("templated container has version %d, want %d", v, VersionTemplated)
	}
	if v := binary.LittleEndian.Uint16(dataPlain[4:6]); v != Version {
		t.Fatalf("plain container has version %d, want %d", v, Version)
	}

	got, err := DecodeOperator(bytes.NewReader(dataTpl), int64(len(dataTpl)), key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tpl == nil {
		t.Fatal("decode dropped the templates")
	}
	sameTemplates(t, got.Tpl, topl.Tpl)

	path := filepath.Join(t.TempDir(), "op.art")
	if err := os.WriteFile(path, dataTpl, 0o644); err != nil {
		t.Fatal(err)
	}
	mop, viaMap, err := MapOperator(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported && hostLittleEndian && !viaMap {
		t.Error("mmap supported but MapOperator fell back")
	}
	if mop.Tpl == nil {
		t.Fatal("mapped operator dropped the templates")
	}
	sameTemplates(t, mop.Tpl, topl.Tpl)

	// Apply bitwise identity across plain / decoded / mapped.
	rng := rand.New(rand.NewSource(9))
	coeffs := make([]float64, plain.Cols)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	want := make([]float64, plain.Rows)
	if err := plain.ApplyVec(coeffs, want, 1); err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]*operator.Operator{"decoded": got, "mapped": mop} {
		out := make([]float64, plain.Rows)
		if err := o.ApplyVec(coeffs, out, 2); err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if math.Float64bits(out[r]) != math.Float64bits(want[r]) {
				t.Fatalf("%s row %d: %x vs %x", name, r, math.Float64bits(out[r]), math.Float64bits(want[r]))
			}
		}
	}
	if m, ok := mop.Backing.(*Mapping); ok {
		_ = m.Close()
	}
}

func sameTemplates(t *testing.T, got, want *operator.TemplateSet) {
	t.Helper()
	if got.NumTemplates() != want.NumTemplates() {
		t.Fatalf("%d templates, want %d", got.NumTemplates(), want.NumTemplates())
	}
	for i := range want.TplPtr {
		if got.TplPtr[i] != want.TplPtr[i] {
			t.Fatalf("tplptr[%d] = %d, want %d", i, got.TplPtr[i], want.TplPtr[i])
		}
	}
	for i := range want.TplVal {
		if got.TplDelta[i] != want.TplDelta[i] ||
			math.Float64bits(got.TplVal[i]) != math.Float64bits(want.TplVal[i]) {
			t.Fatalf("template entry %d differs", i)
		}
	}
	for i := range want.RowTpl {
		if got.RowTpl[i] != want.RowTpl[i] || got.RowBase[i] != want.RowBase[i] {
			t.Fatalf("row table entry %d differs", i)
		}
	}
}

// Partial template sections are corruption, not a degraded load.
func TestPartialTemplateSectionsRejected(t *testing.T) {
	_, topl := congruentOperator(t, 200, 60, 2)
	key := "op:k"
	data := encodeOp(t, key, topl)
	c, err := Parse(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Retype the RowBase section to an unknown id: now only 4 of 5
	// template sections are present. Patch the table entry in place.
	idx := -1
	for i, s := range c.Sections {
		if s.Type == SecRowBase {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no RowBase section")
	}
	bad := bytes.Clone(data)
	binary.LittleEndian.PutUint32(bad[headerSize+idx*entrySize:], 200) // unknown type
	_, err = DecodeOperator(bytes.NewReader(bad), int64(len(bad)), key)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// A template row table pointing at a template that does not exist must be
// rejected by the decode-time validation.
func TestTemplateValidationAtDecode(t *testing.T) {
	_, topl := congruentOperator(t, 200, 60, 2)
	broken := *topl
	ts := *topl.Tpl
	ts.RowTpl = append([]int32(nil), topl.Tpl.RowTpl...)
	for i := range ts.RowTpl {
		if ts.RowTpl[i] >= 0 {
			ts.RowTpl[i] = int32(ts.NumTemplates()) // dangling id
			break
		}
	}
	broken.Tpl = &ts
	data := encodeOp(t, "op:k", &broken)
	_, err := DecodeOperator(bytes.NewReader(data), int64(len(data)), "op:k")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
