package tile

import (
	"slices"
	"testing"
)

// TestUncoveredIDs: the id list must be exactly the ascending union of the
// failed patches' slot lists, consistent with the UncoveredPoints count,
// and empty for an empty failed set.
func TestUncoveredIDs(t *testing.T) {
	m, pointElem, mark := testSetup(t, 8, 0.1)
	tl := New(m, pointElem, 6, mark)

	if got := tl.UncoveredIDs(nil); got != nil {
		t.Fatalf("UncoveredIDs(nil) = %v, want nil", got)
	}

	for _, failed := range [][]int{{0}, {2, 4}, {5, 1, 3}, {0, 1, 2, 3, 4, 5}} {
		ids := tl.UncoveredIDs(failed)
		if len(ids) != tl.UncoveredPoints(failed) {
			t.Fatalf("failed %v: %d ids, UncoveredPoints says %d",
				failed, len(ids), tl.UncoveredPoints(failed))
		}
		if !slices.IsSorted(ids) {
			t.Fatalf("failed %v: ids not ascending: %v", failed, ids)
		}
		// Reference: union of the failed patches' slot lists.
		want := map[int32]bool{}
		for _, p := range failed {
			for _, pt := range tl.Slots[p] {
				want[pt] = true
			}
		}
		if len(ids) != len(want) {
			t.Fatalf("failed %v: %d ids, want %d", failed, len(ids), len(want))
		}
		for _, pt := range ids {
			if !want[pt] {
				t.Fatalf("failed %v: id %d not in any failed patch's slots", failed, pt)
			}
		}
	}

	// Failing every patch uncovers every marked point but no more than the
	// grid holds.
	all := tl.UncoveredIDs([]int{0, 1, 2, 3, 4, 5})
	if len(all) > tl.NumPoints {
		t.Fatalf("all-failed uncovered %d > NumPoints %d", len(all), tl.NumPoints)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range patch did not panic")
		}
	}()
	tl.UncoveredIDs([]int{99})
}
