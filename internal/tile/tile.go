// Package tile implements the paper's overlapped tiling scheme (§4): the
// mesh is partitioned into k patches by recursive bisection; each
// concurrently executing patch accumulates partial solutions into its own
// scratch-pad buffer, sized to hold exactly the grid points that can receive
// contributions from the patch's elements; a final reduction sums the
// overlapping regions into the global solution.
//
// Because every patch writes only to its own buffer, patches never contend,
// which is what lets all tiles start concurrently without pipelining. The
// price is the memory overhead measured by Overhead: points near patch
// boundaries hold one partial solution per touching patch. The overhead
// shrinks as meshes grow (patch area grows quadratically, boundary length
// linearly) — Fig. 8 of the paper, reproduced by the fig8 experiment.
package tile

import (
	"fmt"
	"sync"
	"sync/atomic"

	"unstencil/internal/mesh"
)

// Tiling is the patch decomposition plus the partial-solution slot
// bookkeeping for one (mesh, computation grid) pair.
type Tiling struct {
	K          int
	ElemPatch  []int     // patch id per mesh element
	PatchElems [][]int32 // elements of each patch
	// Slots lists, per patch, the global point ids that can receive partial
	// solutions from that patch (ascending).
	Slots [][]int32
	// slotIdx maps, per patch, global point id -> local slot (-1 when the
	// point is outside the patch's influence region).
	slotIdx [][]int32
	// owned lists, per patch, the grid points whose owning element lies in
	// the patch (ascending). The owned sets partition the grid, which is
	// what makes the two-stage reduction contention-free: each patch's
	// reducer writes exactly its owned points and nothing else. Precomputed
	// at build time so ReduceOwned walks its list instead of scanning and
	// filtering all NumPoints per call.
	owned [][]int32
	// colors memoises the conflict-graph colouring (Colors): the greedy
	// colouring is O(K²·slots) and the tiling is immutable after build, so
	// repeated pipelined runs share one computation.
	colorsOnce sync.Once
	colors     []int

	NumPoints int
}

// New builds a tiling with k patches. pointElem gives the owning element of
// each grid point. mark must invoke markPt for (a superset of) every grid
// point that element e can contribute a partial solution to — the caller
// supplies the same candidate enumeration the evaluator uses, so coverage
// is identical by construction.
func New(m *mesh.Mesh, pointElem []int32, k int, mark func(e int, markPt func(pt int32))) *Tiling {
	return NewWithPartition(m, pointElem, mesh.Partition(m, k), k, mark)
}

// NewWithPartition is New with a caller-supplied element-to-patch
// assignment (e.g. a workload-weighted bisection); elemPatch must map every
// element to a patch id in [0, k).
func NewWithPartition(m *mesh.Mesh, pointElem []int32, elemPatch []int, k int, mark func(e int, markPt func(pt int32))) *Tiling {
	if k < 1 {
		panic(fmt.Sprintf("tile: k must be >= 1, got %d", k))
	}
	if len(elemPatch) != m.NumTris() {
		panic(fmt.Sprintf("tile: partition covers %d of %d elements", len(elemPatch), m.NumTris()))
	}
	t := &Tiling{
		K:         k,
		ElemPatch: elemPatch,
		NumPoints: len(pointElem),
	}
	t.PatchElems = make([][]int32, k)
	for e, p := range t.ElemPatch {
		t.PatchElems[p] = append(t.PatchElems[p], int32(e))
	}

	// Owned-point lists: one pass over the grid, exact-size allocations.
	// Appending in ascending pt order keeps each list sorted, so the
	// owned-point reduction visits points in the same order the sequential
	// Reduce does.
	ownedCount := make([]int, k)
	for _, e := range pointElem {
		ownedCount[t.ElemPatch[e]]++
	}
	t.owned = make([][]int32, k)
	for p := range t.owned {
		t.owned[p] = make([]int32, 0, ownedCount[p])
	}
	for pt, e := range pointElem {
		p := t.ElemPatch[e]
		t.owned[p] = append(t.owned[p], int32(pt))
	}

	// Mark the influence region of each patch with a bitset, then freeze
	// into slot arrays.
	words := (t.NumPoints + 63) / 64
	bits := make([]uint64, words)
	t.Slots = make([][]int32, k)
	t.slotIdx = make([][]int32, k)
	for p := 0; p < k; p++ {
		for i := range bits {
			bits[i] = 0
		}
		for _, e := range t.PatchElems[p] {
			mark(int(e), func(pt int32) {
				bits[pt>>6] |= 1 << (uint(pt) & 63)
			})
		}
		idx := make([]int32, t.NumPoints)
		for i := range idx {
			idx[i] = -1
		}
		var slots []int32
		for w, word := range bits {
			for word != 0 {
				b := word & (-word)
				bit := trailingZeros(word)
				pt := int32(w*64 + bit)
				idx[pt] = int32(len(slots))
				slots = append(slots, pt)
				word ^= b
			}
		}
		t.Slots[p] = slots
		t.slotIdx[p] = idx
	}
	return t
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Slot returns the local partial-solution slot of global point pt in patch
// p, or -1 when the point is outside the patch's influence region.
func (t *Tiling) Slot(p int, pt int32) int32 { return t.slotIdx[p][pt] }

// NewBuffers allocates one scratch-pad partial-solution buffer per patch.
func (t *Tiling) NewBuffers() [][]float64 {
	bufs := make([][]float64, t.K)
	for p := range bufs {
		bufs[p] = make([]float64, len(t.Slots[p]))
	}
	return bufs
}

// PartialValues returns the total number of stored partial solutions, the
// numerator of the memory-overhead ratio.
func (t *Tiling) PartialValues() int {
	n := 0
	for _, s := range t.Slots {
		n += len(s)
	}
	return n
}

// Overhead returns the tiling memory overhead relative to the baseline
// solution storage: total partial solutions / total grid points. 1.0 means
// no overhead (paper Fig. 8).
func (t *Tiling) Overhead() float64 {
	if t.NumPoints == 0 {
		return 0
	}
	return float64(t.PartialValues()) / float64(t.NumPoints)
}

// Reduce sums the per-patch partial solutions into out (length NumPoints).
// As in the paper, reduction work is divided by the patch that owns each
// grid point (the patch of its owning element), which gives contention-free
// parallel reduction; here patches are reduced sequentially and the
// structure keeps the sum deterministic.
func (t *Tiling) Reduce(bufs [][]float64, out []float64) {
	if len(out) != t.NumPoints {
		panic(fmt.Sprintf("tile: Reduce output length %d, want %d", len(out), t.NumPoints))
	}
	for i := range out {
		out[i] = 0
	}
	for p := 0; p < t.K; p++ {
		buf := bufs[p]
		for local, pt := range t.Slots[p] {
			out[pt] += buf[local]
		}
	}
}

// ReduceOwned computes the owned-point reduction for a single patch: for
// every grid point whose owning element lies in patch p, it gathers the
// partial solutions from all patches into out. Calling it for each patch
// (concurrently if desired — owned point sets are disjoint and partition
// the grid) is equivalent to Reduce. It walks the owned-point list frozen
// at build time, so one call costs O(|owned(p)|·K) instead of the
// O(NumPoints·K) full scan-and-filter it replaced.
func (t *Tiling) ReduceOwned(p int, bufs [][]float64, out []float64) {
	for _, pt := range t.owned[p] {
		s := 0.0
		for q := 0; q < t.K; q++ {
			if sl := t.slotIdx[q][pt]; sl >= 0 {
				s += bufs[q][sl]
			}
		}
		out[pt] = s
	}
}

// OwnedPoints returns the grid points owned by patch p (ascending). The
// returned slice is shared; callers must not modify it.
func (t *Tiling) OwnedPoints(p int) []int32 { return t.owned[p] }

// ReduceParallel is the paper's two-stage reduction (§4) for real: stage
// one fans the owned-point gathers across up to `workers` goroutines — each
// patch's owned points are written by exactly one worker, so there is no
// contention and no synchronisation beyond claiming patches off a shared
// atomic counter — and stage two is implicit because the owned sets
// partition the grid. Every point sums its partial solutions in ascending
// patch order exactly as the sequential Reduce does, so the result is
// bit-identical to Reduce for any worker count (TestReduceParallelMatches
// pins this).
func (t *Tiling) ReduceParallel(bufs [][]float64, out []float64, workers int) {
	if len(out) != t.NumPoints {
		panic(fmt.Sprintf("tile: ReduceParallel output length %d, want %d", len(out), t.NumPoints))
	}
	if workers > t.K {
		workers = t.K
	}
	if workers <= 1 {
		t.Reduce(bufs, out)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= t.K {
					return
				}
				t.ReduceOwned(p, bufs, out)
			}
		}()
	}
	wg.Wait()
}

// uncoveredBits marks the union of the failed patches' influence regions in
// a fresh bitset of NumPoints bits.
func (t *Tiling) uncoveredBits(failed []int) []uint64 {
	words := (t.NumPoints + 63) / 64
	bits := make([]uint64, words)
	for _, p := range failed {
		if p < 0 || p >= t.K {
			panic(fmt.Sprintf("tile: uncovered patch %d outside [0, %d)", p, t.K))
		}
		for _, pt := range t.Slots[p] {
			bits[pt>>6] |= 1 << (uint(pt) & 63)
		}
	}
	return bits
}

// UncoveredPoints returns the number of grid points that lose at least one
// partial contribution when the given patches drop out (the union of their
// influence regions). The fault-tolerant per-element runner uses it to
// report coverage after tiles exhaust their retry budget: because each
// patch writes only its own scratch-pad, dropping a patch affects exactly
// these points and no others.
func (t *Tiling) UncoveredPoints(failed []int) int {
	if len(failed) == 0 {
		return 0
	}
	n := 0
	for _, w := range t.uncoveredBits(failed) {
		n += popcount(w)
	}
	return n
}

// UncoveredIDs returns the ids of the grid points that lose at least one
// partial contribution when the given patches drop out, ascending — the
// exact point set UncoveredPoints counts. The cluster coordinator reports
// these ids in degraded results so a client knows precisely which points
// carry an incomplete sum rather than just how many.
func (t *Tiling) UncoveredIDs(failed []int) []int32 {
	if len(failed) == 0 {
		return nil
	}
	var ids []int32
	for w, word := range t.uncoveredBits(failed) {
		for word != 0 {
			b := word & (-word)
			ids = append(ids, int32(w*64+trailingZeros(word)))
			word ^= b
		}
	}
	return ids
}

// Colors greedily colours the patch-overlap graph: two patches conflict
// when their influence regions share at least one grid point. Patches of
// one colour can execute concurrently writing directly into the global
// solution — the pipelined tiling alternative the paper compares against
// (no memory overhead, extra synchronisation between colour waves). The
// result maps patch id to colour id; colours are 0..max. Computed once per
// tiling and cached (the tiling is immutable); callers must not mutate the
// returned slice.
func (t *Tiling) Colors() []int {
	t.colorsOnce.Do(func() { t.colors = t.computeColors() })
	return t.colors
}

func (t *Tiling) computeColors() []int {
	conflict := make([][]bool, t.K)
	for p := range conflict {
		conflict[p] = make([]bool, t.K)
	}
	// Influence regions are the slot sets; two patches conflict if the
	// sets intersect. Merge-scan over the sorted slot arrays.
	for a := 0; a < t.K; a++ {
		for b := a + 1; b < t.K; b++ {
			if slicesIntersect(t.Slots[a], t.Slots[b]) {
				conflict[a][b] = true
				conflict[b][a] = true
			}
		}
	}
	colors := make([]int, t.K)
	for p := range colors {
		colors[p] = -1
	}
	for p := 0; p < t.K; p++ {
		used := map[int]bool{}
		for q := 0; q < t.K; q++ {
			if conflict[p][q] && colors[q] >= 0 {
				used[colors[q]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[p] = c
	}
	return colors
}

func slicesIntersect(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// MeasureOverhead computes the tiling memory-overhead ratio without
// building any slot indices or buffers, so it runs at full paper scale
// (Fig. 8's 1024k-triangle meshes) using one bitset of numPoints bits. It
// returns the total partial-solution count and the overhead ratio.
func MeasureOverhead(m *mesh.Mesh, numPoints, k int, mark func(e int, markPt func(pt int32))) (partials int, overhead float64) {
	if k < 1 {
		panic(fmt.Sprintf("tile: k must be >= 1, got %d", k))
	}
	elemPatch := mesh.Partition(m, k)
	patchElems := make([][]int32, k)
	for e, p := range elemPatch {
		patchElems[p] = append(patchElems[p], int32(e))
	}
	words := (numPoints + 63) / 64
	bits := make([]uint64, words)
	for p := 0; p < k; p++ {
		for i := range bits {
			bits[i] = 0
		}
		for _, e := range patchElems[p] {
			mark(int(e), func(pt int32) {
				bits[pt>>6] |= 1 << (uint(pt) & 63)
			})
		}
		for _, w := range bits {
			partials += popcount(w)
		}
	}
	if numPoints == 0 {
		return partials, 0
	}
	return partials, float64(partials) / float64(numPoints)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
