package tile

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/grid"
	"unstencil/internal/mesh"
)

// testSetup builds a mesh, a one-point-per-element grid (centroids) and a
// marking function that marks every point within pad of an element's
// bounding box — a miniature of what the evaluator supplies.
func testSetup(t *testing.T, n int, pad float64) (*mesh.Mesh, []int32, func(e int, markPt func(int32))) {
	t.Helper()
	m := mesh.Structured(n)
	pts := make([]geom.Point, m.NumTris())
	pointElem := make([]int32, m.NumTris())
	for i := range pts {
		pts[i] = m.Centroid(i)
		pointElem[i] = int32(i)
	}
	g := grid.New(pts, m.LongestEdge()/2)
	mark := func(e int, markPt func(int32)) {
		box := m.Triangle(e).Bounds().Pad(pad)
		g.ForEachInBox(box, 0, func(id int32) { markPt(id) })
	}
	return m, pointElem, mark
}

func TestNewTilingBasics(t *testing.T) {
	m, pointElem, mark := testSetup(t, 8, 0.1)
	tl := New(m, pointElem, 4, mark)
	if tl.K != 4 {
		t.Fatalf("K = %d", tl.K)
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += len(tl.PatchElems[p])
	}
	if total != m.NumTris() {
		t.Fatalf("patch elements sum to %d, want %d", total, m.NumTris())
	}
	if tl.Overhead() < 1 {
		t.Errorf("overhead %v < 1: every point must be stored at least once", tl.Overhead())
	}
}

func TestSlotsConsistent(t *testing.T) {
	m, pointElem, mark := testSetup(t, 6, 0.15)
	tl := New(m, pointElem, 3, mark)
	for p := 0; p < tl.K; p++ {
		for local, pt := range tl.Slots[p] {
			if got := tl.Slot(p, pt); got != int32(local) {
				t.Fatalf("Slot(%d, %d) = %d, want %d", p, pt, got, local)
			}
		}
		// Unmarked points map to -1.
		seen := map[int32]bool{}
		for _, pt := range tl.Slots[p] {
			seen[pt] = true
		}
		for pt := int32(0); pt < int32(tl.NumPoints); pt++ {
			if !seen[pt] && tl.Slot(p, pt) != -1 {
				t.Fatalf("unmarked point %d has slot %d in patch %d", pt, tl.Slot(p, pt), p)
			}
		}
	}
}

func TestMarkedCoversOwnElements(t *testing.T) {
	// Every grid point must be marked by at least the patch owning its
	// element (the element's own influence region contains its points).
	m, pointElem, mark := testSetup(t, 8, 0.05)
	tl := New(m, pointElem, 5, mark)
	for pt := int32(0); pt < int32(tl.NumPoints); pt++ {
		owner := tl.ElemPatch[pointElem[pt]]
		if tl.Slot(owner, pt) < 0 {
			t.Fatalf("point %d not marked by its owning patch %d", pt, owner)
		}
	}
}

func TestReduceSumsPartials(t *testing.T) {
	m, pointElem, mark := testSetup(t, 6, 0.2)
	tl := New(m, pointElem, 4, mark)
	bufs := tl.NewBuffers()
	// Write patch-dependent values: buf[p][slot(pt)] = 1000*p + pt.
	want := make([]float64, tl.NumPoints)
	for p := 0; p < tl.K; p++ {
		for _, pt := range tl.Slots[p] {
			v := float64(1000*p + int(pt))
			bufs[p][tl.Slot(p, pt)] = v
			want[pt] += v
		}
	}
	out := make([]float64, tl.NumPoints)
	tl.Reduce(bufs, out)
	for pt := range out {
		if math.Abs(out[pt]-want[pt]) > 1e-12 {
			t.Fatalf("Reduce[%d] = %v, want %v", pt, out[pt], want[pt])
		}
	}
	// ReduceOwned patch-by-patch must agree with Reduce.
	out2 := make([]float64, tl.NumPoints)
	for p := 0; p < tl.K; p++ {
		tl.ReduceOwned(p, bufs, out2)
	}
	for pt := range out2 {
		if math.Abs(out2[pt]-want[pt]) > 1e-12 {
			t.Fatalf("ReduceOwned[%d] = %v, want %v", pt, out2[pt], want[pt])
		}
	}
}

func TestReducePanicsOnBadLength(t *testing.T) {
	m, pointElem, mark := testSetup(t, 4, 0.1)
	tl := New(m, pointElem, 2, mark)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tl.Reduce(tl.NewBuffers(), make([]float64, 3))
}

func TestNewPanicsOnBadK(t *testing.T) {
	m, pointElem, mark := testSetup(t, 4, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(m, pointElem, 0, mark)
}

// The paper's Fig. 8 property: for a fixed patch count, the relative memory
// overhead decreases as the mesh grows (boundary-to-area ratio shrinks).
func TestOverheadDecreasesWithMeshSize(t *testing.T) {
	overheadAt := func(n int) float64 {
		m, pointElem, mark := testSetup(t, n, 3.0/float64(n))
		return New(m, pointElem, 16, mark).Overhead()
	}
	small := overheadAt(12)
	large := overheadAt(36)
	t.Logf("overhead: n=12 %.3f, n=36 %.3f", small, large)
	if large >= small {
		t.Errorf("overhead should shrink with mesh size: %v -> %v", small, large)
	}
	if large < 1 {
		t.Errorf("overhead below 1 is impossible: %v", large)
	}
}

// More patches → more boundary → more overhead, but more parallelism.
func TestOverheadGrowsWithPatchCount(t *testing.T) {
	m, pointElem, mark := testSetup(t, 16, 0.12)
	o2 := New(m, pointElem, 2, mark).Overhead()
	o16 := New(m, pointElem, 16, mark).Overhead()
	t.Logf("overhead: k=2 %.3f, k=16 %.3f", o2, o16)
	if o16 <= o2 {
		t.Errorf("overhead should grow with patch count: k=2 %v, k=16 %v", o2, o16)
	}
}

func TestColorsAreProperColoring(t *testing.T) {
	m, pointElem, mark := testSetup(t, 10, 0.15)
	tl := New(m, pointElem, 6, mark)
	colors := tl.Colors()
	if len(colors) != tl.K {
		t.Fatalf("got %d colors", len(colors))
	}
	for a := 0; a < tl.K; a++ {
		for b := a + 1; b < tl.K; b++ {
			if colors[a] != colors[b] {
				continue
			}
			// Same color: influence regions must be disjoint.
			if slicesIntersect(tl.Slots[a], tl.Slots[b]) {
				t.Fatalf("patches %d and %d share color %d but overlap", a, b, colors[a])
			}
		}
	}
}

func TestColorsSinglePatch(t *testing.T) {
	m, pointElem, mark := testSetup(t, 4, 0.1)
	tl := New(m, pointElem, 1, mark)
	if c := tl.Colors(); len(c) != 1 || c[0] != 0 {
		t.Errorf("single patch colors = %v", c)
	}
}

func TestSlicesIntersect(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{[]int32{1, 3, 5}, []int32{2, 4, 6}, false},
		{[]int32{1, 3, 5}, []int32{5, 7}, true},
		{nil, []int32{1}, false},
		{[]int32{2}, []int32{2}, true},
	}
	for _, c := range cases {
		if got := slicesIntersect(c.a, c.b); got != c.want {
			t.Errorf("slicesIntersect(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestPartialValues(t *testing.T) {
	m, pointElem, mark := testSetup(t, 6, 0.1)
	tl := New(m, pointElem, 3, mark)
	n := 0
	for _, s := range tl.Slots {
		n += len(s)
	}
	if tl.PartialValues() != n {
		t.Errorf("PartialValues = %d, want %d", tl.PartialValues(), n)
	}
}

func TestMeasureOverheadMatchesNew(t *testing.T) {
	m, pointElem, mark := testSetup(t, 12, 0.12)
	tl := New(m, pointElem, 8, mark)
	partials, overhead := MeasureOverhead(m, len(pointElem), 8, mark)
	if partials != tl.PartialValues() {
		t.Errorf("MeasureOverhead partials %d != New %d", partials, tl.PartialValues())
	}
	if math.Abs(overhead-tl.Overhead()) > 1e-12 {
		t.Errorf("MeasureOverhead ratio %v != New %v", overhead, tl.Overhead())
	}
}

func TestPopcount(t *testing.T) {
	if popcount(0) != 0 || popcount(0xFF) != 8 || popcount(1<<63) != 1 {
		t.Error("popcount wrong")
	}
}

// k == 1 is the degenerate tiling: one patch covers the whole mesh, every
// grid point is stored exactly once, so the memory overhead must be exactly
// 1.0 — not approximately.
func TestSinglePatchOverheadExactlyOne(t *testing.T) {
	m, pointElem, mark := testSetup(t, 8, 0.2)
	tl := New(m, pointElem, 1, mark)
	if got := tl.Overhead(); got != 1.0 {
		t.Fatalf("k=1 overhead = %v, want exactly 1.0", got)
	}
	if tl.PartialValues() != tl.NumPoints {
		t.Fatalf("k=1 partials = %d, want %d", tl.PartialValues(), tl.NumPoints)
	}
	if len(tl.PatchElems[0]) != m.NumTris() {
		t.Fatalf("k=1 patch holds %d of %d elements", len(tl.PatchElems[0]), m.NumTris())
	}
}

// k greater than the element count: recursive bisection runs out of
// elements, leaving some patches empty. The tiling must still cover every
// element exactly once, tolerate empty patches in every code path
// (buffers, slots, reduce, colouring), and reduce correctly.
func TestMorePatchesThanElements(t *testing.T) {
	m, pointElem, mark := testSetup(t, 2, 0.3) // 8 triangles
	k := m.NumTris() + 5
	tl := New(m, pointElem, k, mark)
	if tl.K != k {
		t.Fatalf("K = %d, want %d", tl.K, k)
	}
	total := 0
	nonEmpty := 0
	for p := 0; p < k; p++ {
		total += len(tl.PatchElems[p])
		if len(tl.PatchElems[p]) > 0 {
			nonEmpty++
		}
	}
	if total != m.NumTris() {
		t.Fatalf("patches cover %d of %d elements", total, m.NumTris())
	}
	if nonEmpty > m.NumTris() {
		t.Fatalf("%d non-empty patches for %d elements", nonEmpty, m.NumTris())
	}

	// Empty patches contribute empty buffers; Reduce must still equal the
	// single-patch reduction of the same per-point values.
	bufs := tl.NewBuffers()
	want := make([]float64, tl.NumPoints)
	for p := 0; p < tl.K; p++ {
		for _, pt := range tl.Slots[p] {
			bufs[p][tl.Slot(p, pt)] = float64(pt + 1)
			want[pt] += float64(pt + 1)
		}
	}
	out := make([]float64, tl.NumPoints)
	tl.Reduce(bufs, out)
	for pt := range out {
		if out[pt] != want[pt] {
			t.Fatalf("Reduce[%d] = %v, want %v", pt, out[pt], want[pt])
		}
	}
	if colors := tl.Colors(); len(colors) != k {
		t.Fatalf("Colors length %d, want %d", len(colors), k)
	}
}

func TestUncoveredPoints(t *testing.T) {
	m, pointElem, mark := testSetup(t, 8, 0.1)
	tl := New(m, pointElem, 4, mark)

	if n := tl.UncoveredPoints(nil); n != 0 {
		t.Fatalf("UncoveredPoints(nil) = %d, want 0", n)
	}
	// A single failed patch uncovers exactly its slot set.
	for p := 0; p < tl.K; p++ {
		if n := tl.UncoveredPoints([]int{p}); n != len(tl.Slots[p]) {
			t.Fatalf("patch %d: uncovered %d, want %d", p, n, len(tl.Slots[p]))
		}
	}
	// All patches failed -> every point uncovered (influence regions cover
	// the grid, since every point is marked by its owning patch).
	all := make([]int, tl.K)
	for p := range all {
		all[p] = p
	}
	if n := tl.UncoveredPoints(all); n != tl.NumPoints {
		t.Fatalf("all patches failed: uncovered %d, want %d", n, tl.NumPoints)
	}
	// The union of two overlapping patches is at most the sum, at least the
	// max, of the individual counts.
	a, b := len(tl.Slots[0]), len(tl.Slots[1])
	u := tl.UncoveredPoints([]int{0, 1})
	if u > a+b || u < max(a, b) {
		t.Fatalf("union %d outside [%d, %d]", u, max(a, b), a+b)
	}

	defer func() {
		if recover() == nil {
			t.Error("out-of-range patch id did not panic")
		}
	}()
	tl.UncoveredPoints([]int{tl.K})
}

// TestOwnedPartitionsGrid checks the precomputed owned-point lists: together
// they partition the grid (every point in exactly one list), each list is
// ascending, and membership agrees with pointElem ownership.
func TestOwnedPartitionsGrid(t *testing.T) {
	m, pointElem, mark := testSetup(t, 7, 0.15)
	tl := New(m, pointElem, 5, mark)
	seen := make([]int, tl.NumPoints)
	for p := 0; p < tl.K; p++ {
		list := tl.OwnedPoints(p)
		for i, pt := range list {
			seen[pt]++
			if i > 0 && list[i-1] >= pt {
				t.Fatalf("patch %d owned list not ascending at %d: %v >= %v",
					p, i, list[i-1], pt)
			}
			if got := tl.ElemPatch[pointElem[pt]]; got != p {
				t.Fatalf("point %d in patch %d's owned list but its element is in patch %d",
					pt, p, got)
			}
		}
	}
	for pt, n := range seen {
		if n != 1 {
			t.Fatalf("point %d appears in %d owned lists, want exactly 1", pt, n)
		}
	}
}

// TestReduceParallelMatches is the property test ReduceParallel's doc
// comment promises: for any (mesh size, patch count, worker count) the
// parallel two-stage reduction is bit-identical to the sequential Reduce.
// Buffers are filled with irregular values (no floats that sum exactly) so
// any reordering of the additions would show up as a bit difference.
func TestReduceParallelMatches(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 3}, {7, 6}, {9, 11}} {
		m, pointElem, mark := testSetup(t, tc.n, 0.2)
		tl := New(m, pointElem, tc.k, mark)
		bufs := tl.NewBuffers()
		for p := range bufs {
			for i := range bufs[p] {
				// Deterministic, irregular, sign-alternating values.
				v := math.Sin(float64(1+p)*12.9898+float64(i)*78.233) * 43758.5453
				bufs[p][i] = v - math.Floor(v) - 0.5
			}
		}
		want := make([]float64, tl.NumPoints)
		tl.Reduce(bufs, want)
		for _, workers := range []int{1, 2, 3, 8, tc.k + 5} {
			got := make([]float64, tl.NumPoints)
			tl.ReduceParallel(bufs, got, workers)
			for pt := range got {
				if got[pt] != want[pt] {
					t.Fatalf("n=%d k=%d workers=%d: out[%d] = %v, Reduce gives %v (diff %g)",
						tc.n, tc.k, workers, pt, got[pt], want[pt], got[pt]-want[pt])
				}
			}
		}
	}
}

// TestReduceParallelPanicsOnBadLength mirrors Reduce's contract.
func TestReduceParallelPanicsOnBadLength(t *testing.T) {
	m, pointElem, mark := testSetup(t, 4, 0.1)
	tl := New(m, pointElem, 2, mark)
	defer func() {
		if recover() == nil {
			t.Error("ReduceParallel with short out did not panic")
		}
	}()
	tl.ReduceParallel(tl.NewBuffers(), make([]float64, tl.NumPoints-1), 2)
}
