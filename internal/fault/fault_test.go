package fault

import (
	"errors"
	"sync"
	"testing"
)

// drive calls Inject n times at site, recovering injected panics, and
// returns (errors, panics) observed.
func drive(inj *Injector, site string, n int) (errs, panics int) {
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*Panic); !ok {
						panic(r) // not ours
					}
					panics++
				}
			}()
			if err := inj.Inject(site); err != nil {
				errs++
			}
		}()
	}
	return
}

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	for i := 0; i < 1000; i++ {
		if err := Inject("core.tile"); err != nil {
			t.Fatalf("disabled Inject returned %v", err)
		}
	}
	if Stats() != nil {
		t.Fatal("Stats() non-nil while disabled")
	}
}

func TestDeterministicSequence(t *testing.T) {
	mk := func() *Injector {
		inj, err := NewInjector(Config{
			Seed: 7, Mode: ModeError,
			Sites: map[string]float64{"s": 0.25},
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	// Same seed, same serial call sequence -> identical fault positions.
	var seqA, seqB []int
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		if a.Inject("s") != nil {
			seqA = append(seqA, i)
		}
		if b.Inject("s") != nil {
			seqB = append(seqB, i)
		}
	}
	if len(seqA) == 0 {
		t.Fatal("no faults at p=0.25 over 2000 calls")
	}
	if len(seqA) != len(seqB) {
		t.Fatalf("fault counts differ: %d vs %d", len(seqA), len(seqB))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("fault position %d differs: %d vs %d", i, seqA[i], seqB[i])
		}
	}
	// Rough rate check: expect ~500, allow wide slack.
	if n := len(seqA); n < 300 || n > 700 {
		t.Errorf("fault count %d far from expectation 500", n)
	}
}

func TestSeedChangesSequence(t *testing.T) {
	posFor := func(seed int64) []int {
		inj, _ := NewInjector(Config{Seed: seed, Sites: map[string]float64{"s": 0.2}})
		var pos []int
		for i := 0; i < 500; i++ {
			if inj.Inject("s") != nil {
				pos = append(pos, i)
			}
		}
		return pos
	}
	a, b := posFor(1), posFor(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestModes(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 3, Mode: ModePanic, Sites: map[string]float64{"s": 1}})
	errs, panics := drive(inj, "s", 50)
	if errs != 0 || panics != 50 {
		t.Fatalf("panic mode: %d errors, %d panics", errs, panics)
	}
	inj, _ = NewInjector(Config{Seed: 3, Mode: ModeError, Sites: map[string]float64{"s": 1}})
	errs, panics = drive(inj, "s", 50)
	if errs != 50 || panics != 0 {
		t.Fatalf("error mode: %d errors, %d panics", errs, panics)
	}
	inj, _ = NewInjector(Config{Seed: 3, Mode: ModeMixed, Sites: map[string]float64{"s": 1}})
	errs, panics = drive(inj, "s", 200)
	if errs == 0 || panics == 0 || errs+panics != 200 {
		t.Fatalf("mixed mode: %d errors, %d panics", errs, panics)
	}
}

func TestErrorIdentity(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 1, Sites: map[string]float64{"s": 1}})
	err := inj.Inject("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) false", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "s" {
		t.Fatalf("errors.As failed: %v", err)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 1, Sites: map[string]float64{"s": 1}, MaxFaults: 5})
	errs, _ := drive(inj, "s", 100)
	if errs != 5 {
		t.Fatalf("cap 5: injected %d", errs)
	}
	if inj.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", inj.Total())
	}
}

func TestUnknownSiteNeverFaults(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 1, Sites: map[string]float64{"s": 1}})
	if err := inj.Inject("other"); err != nil {
		t.Fatalf("unconfigured site faulted: %v", err)
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	if err := Enable(Config{Seed: 9, Mode: ModeError,
		Sites: map[string]float64{"a": 0.5, "b": 0}}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = Inject("a")
				_ = Inject("b")
			}
		}()
	}
	wg.Wait()
	st := Stats()
	if st["a"].Calls != 4000 || st["b"].Calls != 4000 {
		t.Fatalf("calls %+v", st)
	}
	if st["a"].Injected == 0 || st["b"].Injected != 0 {
		t.Fatalf("injected %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewInjector(Config{Sites: map[string]float64{"s": 1.5}}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewInjector(Config{Sites: map[string]float64{"": 0.5}}); err == nil {
		t.Error("empty site accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,mode=mixed,p=0.05,sites=core.tile;server.journal:0.2,max=100")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Mode != ModeMixed || cfg.MaxFaults != 100 {
		t.Fatalf("cfg %+v", cfg)
	}
	if cfg.Sites["core.tile"] != 0.05 || cfg.Sites["server.journal"] != 0.2 {
		t.Fatalf("sites %+v", cfg.Sites)
	}

	for _, bad := range []string{"", "sites=", "seed=x,sites=s", "mode=quantum,sites=s", "bogus"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func BenchmarkInjectDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if err := Inject("core.tile"); err != nil {
			b.Fatal(err)
		}
	}
}
