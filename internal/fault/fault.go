// Package fault implements a deterministic, seed-driven fault injector for
// chaos testing the evaluation pipeline. Core, tile and server code call
// Inject at well-defined sites; when injection is disabled (the default) the
// call is a single atomic load and a nil return, so production hot paths pay
// effectively nothing. When enabled, each site draws a deterministic
// pseudo-random decision from (seed, site, per-site call counter), so a run
// with a fixed seed injects a reproducible fault sequence for a given call
// count per site — exactly what a chaos test under -race needs.
//
// Injected failures come in two flavours matching the two ways real code
// dies: a typed transient error (*Error, matched by errors.Is(err,
// ErrInjected)) and a panic with a *Panic value. Recovery layers convert the
// latter back into errors; both are classified as transient and retried.
//
// Known sites (documented in DESIGN.md §8):
//
//	core.point-block   start of a per-point block attempt
//	core.tile          start of a per-element patch (tile) attempt
//	core.reduce        before the per-element reduction stage
//	server.handler     HTTP request entry (recovery middleware)
//	server.journal     job-journal append
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Mode selects what an injected fault does.
type Mode int

const (
	// ModeError injects transient *Error returns.
	ModeError Mode = iota
	// ModePanic injects panics carrying a *Panic value.
	ModePanic
	// ModeMixed injects a deterministic blend of both.
	ModeMixed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeMixed:
		return "mixed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode inverts Mode.String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "mixed":
		return ModeMixed, nil
	default:
		return 0, fmt.Errorf("fault: unknown mode %q (want error|panic|mixed)", s)
	}
}

// Config describes one injection campaign.
type Config struct {
	// Seed drives every injection decision; two campaigns with the same
	// seed, sites and per-site call counts inject identical fault sequences.
	Seed int64
	// Mode selects error faults, panic faults, or a deterministic mix.
	Mode Mode
	// Sites maps site name -> injection probability in [0, 1]. Sites absent
	// from the map never fault.
	Sites map[string]float64
	// MaxFaults caps the total number of injected faults; 0 means unlimited.
	MaxFaults uint64
}

// Error is an injected transient error.
type Error struct {
	Site string // injection site
	N    uint64 // zero-based call number at the site
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s (call %d)", e.Site, e.N)
}

// ErrInjected is the sentinel matched by errors.Is for every injected
// *Error.
var ErrInjected = errors.New("fault: injected")

// Is lets errors.Is(err, ErrInjected) match.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Panic is the value thrown by panic-mode injections; recovery layers can
// type-assert it to distinguish injected chaos from genuine bugs.
type Panic struct {
	Site string
	N    uint64
}

// String implements fmt.Stringer (panic values are printed with %v).
func (p *Panic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (call %d)", p.Site, p.N)
}

// siteState is the per-site decision state, read-only after Enable except
// for the atomic counters.
type siteState struct {
	name     string
	prob     float64
	calls    atomic.Uint64
	injected atomic.Uint64
}

// Injector is one enabled campaign. The package keeps a single active
// injector; tests may also construct and drive one directly.
type Injector struct {
	seed  uint64
	mode  Mode
	max   uint64
	sites map[string]*siteState
	total atomic.Uint64
}

// NewInjector validates cfg and builds an injector without installing it.
func NewInjector(cfg Config) (*Injector, error) {
	inj := &Injector{
		seed:  uint64(cfg.Seed),
		mode:  cfg.Mode,
		max:   cfg.MaxFaults,
		sites: make(map[string]*siteState, len(cfg.Sites)),
	}
	for site, p := range cfg.Sites {
		if site == "" {
			return nil, errors.New("fault: empty site name")
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: site %s probability %g outside [0, 1]", site, p)
		}
		inj.sites[site] = &siteState{name: site, prob: p}
	}
	return inj, nil
}

// active is the installed injector; nil means injection is off.
var active atomic.Pointer[Injector]

// Enable installs a campaign, replacing any previous one.
func Enable(cfg Config) error {
	inj, err := NewInjector(cfg)
	if err != nil {
		return err
	}
	active.Store(inj)
	return nil
}

// Disable removes the active campaign; Inject returns to its zero-overhead
// disabled path.
func Disable() { active.Store(nil) }

// Enabled reports whether a campaign is installed.
func Enabled() bool { return active.Load() != nil }

// Inject draws a fault decision for site. It returns nil (no fault), returns
// a transient *Error, or panics with a *Panic, per the active campaign.
// Disabled cost: one atomic load.
func Inject(site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.Inject(site)
}

// Inject is the instance form of the package-level Inject.
func (inj *Injector) Inject(site string) error {
	st := inj.sites[site]
	if st == nil {
		return nil
	}
	n := st.calls.Add(1) - 1
	if st.prob == 0 {
		return nil
	}
	h := Mix64(inj.seed ^ hashString(site) ^ Mix64(n))
	if float64(h>>11)/(1<<53) >= st.prob {
		return nil
	}
	if t := inj.total.Add(1); inj.max > 0 && t > inj.max {
		inj.total.Add(^uint64(0)) // undo: the cap was already reached
		return nil
	}
	st.injected.Add(1)
	// A second mix decorrelates the panic/error choice from the fire
	// decision above.
	if inj.mode == ModePanic || (inj.mode == ModeMixed && Mix64(h)&1 == 1) {
		panic(&Panic{Site: site, N: n})
	}
	return &Error{Site: site, N: n}
}

// SiteStats is the per-site observation snapshot.
type SiteStats struct {
	Calls    uint64 `json:"calls"`
	Injected uint64 `json:"injected"`
}

// Stats snapshots the active campaign's per-site counters; nil when
// disabled.
func Stats() map[string]SiteStats {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.Stats()
}

// Stats snapshots per-site counters.
func (inj *Injector) Stats() map[string]SiteStats {
	out := make(map[string]SiteStats, len(inj.sites))
	for name, st := range inj.sites {
		out[name] = SiteStats{Calls: st.calls.Load(), Injected: st.injected.Load()}
	}
	return out
}

// Total returns how many faults the campaign has injected.
func (inj *Injector) Total() uint64 { return inj.total.Load() }

// ParseSpec parses the compact ops-facing campaign syntax used by the
// -fault-spec daemon flag:
//
//	seed=42,mode=mixed,p=0.05,sites=core.tile;server.journal:0.2,max=100
//
// Comma-separated key=value pairs; sites is a semicolon-separated list of
// site[:probability] entries, where sites without an explicit probability
// take the default from p (which itself defaults to 0.01).
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Sites: map[string]float64{}}
	defProb := 0.01
	var bare []string
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "mode":
			cfg.Mode, err = ParseMode(val)
		case "p":
			defProb, err = strconv.ParseFloat(val, 64)
		case "max":
			cfg.MaxFaults, err = strconv.ParseUint(val, 10, 64)
		case "sites":
			for _, ent := range strings.Split(val, ";") {
				ent = strings.TrimSpace(ent)
				if ent == "" {
					continue
				}
				site, prob, hasProb := strings.Cut(ent, ":")
				p := -1.0
				if hasProb {
					if p, err = strconv.ParseFloat(prob, 64); err != nil {
						return Config{}, fmt.Errorf("fault: site %q: %v", ent, err)
					}
				}
				cfg.Sites[site] = p // default-prob entries resolved below
				if p < 0 {
					bare = append(bare, site)
				}
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("fault: spec key %q: %v", key, err)
		}
	}
	for _, site := range bare {
		cfg.Sites[site] = defProb
	}
	if len(cfg.Sites) == 0 {
		return Config{}, errors.New("fault: spec names no sites")
	}
	return cfg, nil
}

// SiteNames returns the configured sites of a campaign, sorted.
func (inj *Injector) SiteNames() []string {
	names := make([]string, 0, len(inj.sites))
	for name := range inj.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Mix64 is the SplitMix64 finalizer: a cheap, high-quality 64-bit mixing
// function. Exported because the retry layers reuse it for deterministic
// backoff jitter.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
