package core

import (
	"math"
	"testing"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// benchEvaluator builds a fixed-seed evaluator for the micro-benchmarks.
func benchEvaluator(b *testing.B, p int, opt Options) *Evaluator {
	b.Helper()
	m, err := mesh.LowVariance(12, 1)
	if err != nil {
		b.Fatal(err)
	}
	fn := func(pt geom.Point) float64 {
		return math.Sin(2*math.Pi*pt.X) * math.Cos(2*math.Pi*pt.Y)
	}
	f := dg.Project(m, p, fn, 2)
	opt.P = p
	ev, err := NewEvaluator(f, opt)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// integrateTarget picks a (center, element) pair with a guaranteed non-empty
// stencil/element intersection so the benchmark exercises the full clip +
// quadrature path.
func integrateTarget(ev *Evaluator) (geom.Point, int32) {
	e := int32(len(ev.elemBounds) / 2)
	return ev.Mesh.Centroid(int(e)), e
}

// BenchmarkIntegrate times the innermost hot function: one element's
// contribution to one stencil (clip, fan, quadrature).
func BenchmarkIntegrate(b *testing.B) {
	for _, p := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "P1", 2: "P2", 3: "P3"}[p], func(b *testing.B) {
			ev := benchEvaluator(b, p, Options{})
			wk := ev.newWorker()
			center, e := integrateTarget(ev)
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += ev.integrate(center, e, wk)
			}
			benchSink = sink
		})
	}
}

// BenchmarkEvalAt times arbitrary-position queries (the streamline
// workload), steady state.
func BenchmarkEvalAt(b *testing.B) {
	ev := benchEvaluator(b, 2, Options{})
	pts := []geom.Point{
		geom.Pt(0.21, 0.34), geom.Pt(0.55, 0.61), geom.Pt(0.83, 0.12), geom.Pt(0.47, 0.90),
	}
	if _, err := ev.EvalAt(pts[0]); err != nil { // warm the scratch worker
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := ev.EvalAt(pts[i%len(pts)])
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	benchSink = sink
}

// BenchmarkOneSidedSweep times a full per-element run with one-sided
// kernels: without a kernel cache every boundary-adjacent candidate pair
// pays an LU moment solve, which is what the kernel cache amortises.
func BenchmarkOneSidedSweep(b *testing.B) {
	m := mesh.Structured(8)
	fn := func(pt geom.Point) float64 { return math.Sin(2 * pt.X * pt.Y) }
	f := dg.Project(m, 1, fn, 2)
	ev, err := NewEvaluator(f, Options{P: 1, Boundary: OneSided})
	if err != nil {
		b.Fatal(err)
	}
	tl := ev.NewTiling(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RunPerElement(tl); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink float64

// integrate must be allocation-free in steady state: the clip buffers, fan
// scratch, and quadrature loop all reuse the worker's storage.
func TestIntegrateZeroAlloc(t *testing.T) {
	m, err := mesh.LowVariance(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(pt geom.Point) float64 {
		return math.Sin(2*math.Pi*pt.X) * math.Cos(2*math.Pi*pt.Y)
	}
	f := dg.Project(m, 2, fn, 2)
	ev, err := NewEvaluator(f, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	wk := ev.newWorker()
	e := int32(len(ev.elemBounds) / 2)
	center := ev.Mesh.Centroid(int(e))
	ev.integrate(center, e, wk) // warm scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		benchSink += ev.integrate(center, e, wk)
	})
	if allocs != 0 {
		t.Fatalf("integrate allocates %v objects per run in steady state, want 0", allocs)
	}
}

// EvalAt must also be allocation-free once its scratch worker is warm.
func TestEvalAtZeroAlloc(t *testing.T) {
	m, err := mesh.LowVariance(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(pt geom.Point) float64 {
		return math.Sin(2*math.Pi*pt.X) * math.Cos(2*math.Pi*pt.Y)
	}
	f := dg.Project(m, 2, fn, 2)
	ev, err := NewEvaluator(f, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{
		geom.Pt(0.21, 0.34), geom.Pt(0.55, 0.61), geom.Pt(0.83, 0.12), geom.Pt(0.47, 0.90),
	}
	for _, p := range pts { // warm scratch + visit both interior code paths
		if _, err := ev.EvalAt(p); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		v, err := ev.EvalAt(pts[i%len(pts)])
		if err != nil {
			t.Fatal(err)
		}
		benchSink += v
		i++
	})
	if allocs != 0 {
		t.Fatalf("EvalAt allocates %v objects per run in steady state, want 0", allocs)
	}
}

// evalPoint and EvalAt share one evaluation core; their modeled cost
// accounting must be identical for the same position.
func TestEvalPointEvalAtCounterParity(t *testing.T) {
	m, err := mesh.LowVariance(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(pt geom.Point) float64 { return math.Sin(3 * pt.X * pt.Y) }
	f := dg.Project(m, 2, fn, 2)
	ev, err := NewEvaluator(f, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	pi := int32(len(ev.Points) / 3)
	wkA := ev.newWorker()
	vA, err := ev.evalPoint(pi, wkA)
	if err != nil {
		t.Fatal(err)
	}
	wkB := ev.newWorker()
	vB, err := ev.evalAt(ev.Points[pi].Pos, wkB)
	if err != nil {
		t.Fatal(err)
	}
	if vA != vB {
		t.Fatalf("values differ: evalPoint %v, evalAt %v", vA, vB)
	}
	if wkA.counters != wkB.counters {
		t.Fatalf("cost counters diverge:\nevalPoint: %+v\nevalAt:    %+v",
			wkA.counters, wkB.counters)
	}
}
