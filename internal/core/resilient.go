package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"unstencil/internal/fault"
	"unstencil/internal/metrics"
	"unstencil/internal/tile"
)

// Fault-injection sites the evaluation pipeline exposes (see internal/fault
// and DESIGN.md §8). Each site sits at the top of a retryable unit, so an
// injected error or panic exercises exactly the recovery path a real
// failure of that unit would take.
const (
	// SitePointBlock fires at the start of each per-point block attempt.
	SitePointBlock = "core.point-block"
	// SiteTile fires at the start of each per-element patch (tile) attempt.
	SiteTile = "core.tile"
	// SiteReduce fires before the per-element reduction stage.
	SiteReduce = "core.reduce"
)

// PanicError wraps a panic recovered from an evaluation unit (a per-point
// block, a per-element tile, or the reduction stage). The paper's tiling
// gives each unit a disjoint write set, which is what makes recovery sound:
// a panicked unit cannot have corrupted any other unit's output.
type PanicError struct {
	Scheme Scheme
	Unit   int // block or patch id; -1 for the reduction stage
	Value  any // the recovered panic value
	Stack  []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: %s unit %d panicked: %v", e.Scheme, e.Unit, e.Value)
}

// Transient reports whether err is worth retrying. Context cancellation and
// deadline expiry are permanent — the caller gave up or ran out of time;
// everything else (including recovered panics and injected faults) is
// assumed transient.
func Transient(err error) bool {
	return err != nil &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// Resilience configures fault handling for the resilient run variants. The
// zero value (and a nil pointer) means: one attempt per unit, no partial
// completion — panics still become errors instead of killing the process.
type Resilience struct {
	// MaxAttempts is the total number of tries per unit (>= 1). 1 disables
	// retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry
	// up to MaxDelay. 0 retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 100ms).
	MaxDelay time.Duration
	// Seed drives the deterministic backoff jitter, so tests with a fixed
	// seed sleep reproducibly.
	Seed int64
	// AllowPartial lets a run complete when some units exhaust their
	// retries: their output is zeroed and reported via Result.Coverage
	// instead of failing the whole run.
	AllowPartial bool
	// Sleep overrides the backoff sleep (tests); nil uses a context-aware
	// timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Faults receives recovery telemetry; nil disables counting.
	Faults *metrics.FaultCounters
}

// Coverage reports partial completion of a degraded run: which units
// (blocks or patches) exhausted their retries, and how many grid points
// still carry a complete value. For the per-element scheme an uncovered
// point holds the partial sum of its surviving patches' contributions; for
// the per-point scheme failed blocks' points are exactly zero.
type Coverage struct {
	FailedUnits   []int `json:"failed_units"`
	TotalUnits    int   `json:"total_units"`
	CoveredPoints int   `json:"covered_points"`
	TotalPoints   int   `json:"total_points"`
}

// Fraction returns CoveredPoints/TotalPoints (1 when the grid is empty).
func (c *Coverage) Fraction() float64 {
	if c.TotalPoints == 0 {
		return 1
	}
	return float64(c.CoveredPoints) / float64(c.TotalPoints)
}

var defaultResilience = Resilience{MaxAttempts: 1}

// withDefaults returns a defensive copy with defaults applied; nil yields
// the no-retry policy.
func (rs *Resilience) withDefaults() *Resilience {
	if rs == nil {
		return &defaultResilience
	}
	out := *rs
	if out.MaxAttempts < 1 {
		out.MaxAttempts = 1
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 100 * time.Millisecond
	}
	return &out
}

// safeCall runs fn, converting a panic into a *PanicError so a failing unit
// is isolated from its siblings and from the process.
func safeCall(scheme Scheme, unit int, fc *metrics.FaultCounters, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fc != nil {
				fc.PanicsRecovered.Add(1)
			}
			err = &PanicError{Scheme: scheme, Unit: unit, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// runUnit executes one unit under the policy: panic isolation on every
// attempt, capped exponential backoff with deterministic jitter between
// attempts, immediate return on permanent (context) errors.
func (rs *Resilience) runUnit(ctx context.Context, scheme Scheme, unit int, fn func() error) error {
	var err error
	for a := 1; a <= rs.MaxAttempts; a++ {
		if a > 1 {
			if rs.Faults != nil {
				rs.Faults.TileRetries.Add(1)
			}
			if serr := rs.sleep(ctx, rs.backoff(unit, a-1)); serr != nil {
				return serr
			}
		}
		err = safeCall(scheme, unit, rs.Faults, fn)
		if err == nil || !Transient(err) {
			return err
		}
	}
	return err
}

// backoff returns the pre-retry delay: BaseDelay·2^(retry-1) capped at
// MaxDelay, scaled by a deterministic jitter factor in [0.5, 1) drawn from
// (Seed, unit, retry).
func (rs *Resilience) backoff(unit, retry int) time.Duration {
	if rs.BaseDelay <= 0 {
		return 0
	}
	d := rs.BaseDelay << uint(min(retry-1, 16))
	if d > rs.MaxDelay || d <= 0 {
		d = rs.MaxDelay
	}
	h := fault.Mix64(uint64(rs.Seed) ^ uint64(unit)<<20 ^ uint64(retry))
	f := 0.5 + 0.5*float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

func (rs *Resilience) sleep(ctx context.Context, d time.Duration) error {
	if rs.Sleep != nil {
		return rs.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// failureSet collects the units that exhausted their retries.
type failureSet struct {
	mu     sync.Mutex
	failed []int
}

func (fs *failureSet) add(unit int, fc *metrics.FaultCounters) {
	if fc != nil {
		fc.TilesFailed.Add(1)
	}
	fs.mu.Lock()
	fs.failed = append(fs.failed, unit)
	fs.mu.Unlock()
}

func (fs *failureSet) sorted() []int {
	sort.Ints(fs.failed)
	return fs.failed
}

// RunPerPointResilientCtx is RunPerPointCtx under a fault-handling policy:
// each logical block runs panic-isolated, transient failures retry with
// capped exponential backoff, and — when rs.AllowPartial — blocks that
// exhaust their retries are zeroed and reported in Result.Coverage instead
// of failing the run. Blocks write disjoint strided slices of the solution,
// so a failed or retried block never corrupts its neighbours, and any
// worker may execute any block: blocks are uniform units, so they are
// dispatched off a shared atomic counter (runDynamic) rather than the
// seed's static stride, keeping every worker busy until the last block.
func (ev *Evaluator) RunPerPointResilientCtx(ctx context.Context, nBlocks int, rs *Resilience) (*Result, error) {
	if nBlocks < 1 {
		nBlocks = 1
	}
	rs = rs.withDefaults()
	res := &Result{
		Solution:       make([]float64, ev.NumPoints()),
		Blocks:         make([]metrics.Counters, nBlocks),
		MemoryOverhead: 1,
		Scheme:         PerPoint,
	}
	start := time.Now()
	var ec errCollector
	var fs failureSet
	workers := min(ev.Opt.Workers, nBlocks)
	wks := ev.getWorkers(max(workers, 1))
	runDynamic(workers, nBlocks, func(w, b int) bool {
		wk := wks[w]
		err := rs.runUnit(ctx, PerPoint, b, func() error {
			wk.counters.Reset()
			if err := fault.Inject(SitePointBlock); err != nil {
				return err
			}
			for p := b; p < len(ev.Points); p += nBlocks {
				if err := ctx.Err(); err != nil {
					return err
				}
				v, err := ev.evalPoint(int32(p), wk)
				if err != nil {
					return err
				}
				res.Solution[p] = v
			}
			return nil
		})
		if err == nil {
			res.Blocks[b] = wk.counters
			return true
		}
		if !Transient(err) || !rs.AllowPartial {
			ec.set(err)
			return false
		}
		// Degrade: this block's strided points are zeroed (an aborted
		// attempt may have written a partial prefix) and the block is
		// reported as uncovered.
		for p := b; p < len(ev.Points); p += nBlocks {
			res.Solution[p] = 0
		}
		fs.add(b, rs.Faults)
		return true
	})
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, ec.err
	}
	res.Wall = time.Since(start)
	for i := range res.Blocks {
		res.Total.Add(&res.Blocks[i])
	}
	if failed := fs.sorted(); len(failed) > 0 {
		covered := len(ev.Points)
		for _, b := range failed {
			covered -= strideCount(len(ev.Points), b, nBlocks)
		}
		res.Coverage = &Coverage{
			FailedUnits:   failed,
			TotalUnits:    nBlocks,
			CoveredPoints: covered,
			TotalPoints:   len(ev.Points),
		}
	}
	return res, nil
}

// strideCount returns |{p : p = b + i·n, p < total}|.
func strideCount(total, b, n int) int {
	if b >= total {
		return 0
	}
	return (total - b + n - 1) / n
}

// RunPerElementResilientCtx is RunPerElementCtx under a fault-handling
// policy. The paper's overlapped tiling is the unit of fault containment:
// every patch accumulates into its own scratch-pad buffer, so a failed
// attempt resets only that buffer and a patch that exhausts its retries is
// dropped (zero contribution) without touching any neighbour. With
// rs.AllowPartial the run then completes carrying per-tile coverage
// metadata; otherwise the first exhausted patch fails the run.
func (ev *Evaluator) RunPerElementResilientCtx(ctx context.Context, t *tile.Tiling, rs *Resilience) (*Result, error) {
	if t == nil {
		t = ev.NewTiling(ev.Opt.Workers)
	}
	rs = rs.withDefaults()
	res := &Result{
		Solution:       make([]float64, ev.NumPoints()),
		Blocks:         make([]metrics.Counters, t.K),
		MemoryOverhead: t.Overhead(),
		Scheme:         PerElement,
	}
	bufs := t.NewBuffers()
	start := time.Now()
	var ec errCollector
	var fs failureSet
	workers := min(ev.Opt.Workers, t.K)
	wks := ev.getWorkers(max(workers, 1))
	// Patches are high-variance units (graded meshes concentrate candidate
	// pairs in a few patches), so they run on work-stealing deques seeded
	// with the paper's stride: a worker drains its own run of patches in
	// order and steals from a neighbour's tail only when idle. A stolen
	// patch still executes exactly once against its own scratch-pad, so the
	// schedule never reaches the numbers.
	runStealing(strideSeed(t.K, workers), func(w, p int) bool {
		wk := wks[w]
		buf := bufs[p]
		err := rs.runUnit(ctx, PerElement, p, func() error {
			// A fresh attempt starts from a clean scratch-pad; the
			// disjoint write set makes this reset local to the tile.
			clear(buf)
			wk.counters.Reset()
			if err := fault.Inject(SiteTile); err != nil {
				return err
			}
			for _, e := range t.PatchElems[p] {
				if err := ctx.Err(); err != nil {
					return err
				}
				var slotErr error
				err := ev.processElement(e, wk, func(pt int32, v float64) {
					sl := t.Slot(p, pt)
					if sl < 0 {
						slotErr = fmt.Errorf("core: patch %d received partial for unmarked point %d", p, pt)
						return
					}
					buf[sl] += v
				})
				if err == nil {
					err = slotErr
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			res.Blocks[p] = wk.counters
			return true
		}
		if !Transient(err) || !rs.AllowPartial {
			ec.set(err)
			return false
		}
		clear(buf) // drop the tile: zero contribution, never garbage
		fs.add(p, rs.Faults)
		return true
	})
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, ec.err
	}
	// Reduction stage, panic-isolated and retryable: the scratch-pads are
	// read-only inputs here and the output is overwritten from scratch, so
	// a second attempt after a recovered panic is sound. The two-stage
	// parallel reduction fans owned-point gathers across the same worker
	// budget, bit-identically to the sequential tile.Reduce.
	if err := rs.runUnit(ctx, PerElement, -1, func() error {
		if err := fault.Inject(SiteReduce); err != nil {
			return err
		}
		t.ReduceParallel(bufs, res.Solution, workers)
		return nil
	}); err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	for i := range res.Blocks {
		res.Total.Add(&res.Blocks[i])
	}
	if failed := fs.sorted(); len(failed) > 0 {
		res.Coverage = &Coverage{
			FailedUnits:   failed,
			TotalUnits:    t.K,
			CoveredPoints: t.NumPoints - t.UncoveredPoints(failed),
			TotalPoints:   t.NumPoints,
		}
	}
	return res, nil
}
