// Package core implements the paper's contribution: efficient evaluation of
// stencil computations over unstructured triangular meshes, demonstrated as
// SIAC post-processing of discontinuous Galerkin solutions.
//
// Two evaluation schemes are provided (paper §3):
//
//   - Per-point (§3.3, Algorithm 2): iterate evaluation grid points; for
//     each point, find all mesh elements whose geometry intersects the
//     B-spline stencil centred at the point via an element hash grid (cell
//     size cp = s, one-cell halo), clip each stencil square against each
//     element with Sutherland–Hodgman, triangulate, integrate, and
//     accumulate into the point's solution.
//
//   - Per-element (§3.4, Algorithm 3): iterate mesh elements; for each
//     element, find all grid points whose stencil intersects the element
//     via a point hash grid (cell size ce = s/2, no halo), reuse the
//     element data across all of them, and scatter partial solutions.
//
// Both schemes compute exactly the same sums in different orders; the
// per-element scheme trades scattered element reads for data reuse and
// fewer intersection tests, which is the paper's headline result.
//
// The domain is the unit square with periodic boundary conditions by
// default: stencils crossing the boundary integrate against integer-shifted
// images of the mesh. A one-sided kernel mode is available for
// non-periodic domains.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"unstencil/internal/bspline"
	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/grid"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/quadrature"
)

// Scheme selects the evaluation strategy.
type Scheme int

const (
	// PerPoint is the paper's baseline gather scheme (Algorithm 2).
	PerPoint Scheme = iota
	// PerElement is the paper's proposed scatter scheme (Algorithm 3).
	PerElement
	// Assembled applies a precomputed sparse operator (AssembleOperator)
	// instead of re-running geometry; valid as a job scheme, not as
	// Options.Scheme for the direct runners.
	Assembled
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case PerPoint:
		return "per-point"
	case PerElement:
		return "per-element"
	case Assembled:
		return "operator"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Boundary selects how stencils interact with the domain boundary.
type Boundary int

const (
	// Periodic wraps stencils around the unit square (the paper's test
	// configuration).
	Periodic Boundary = iota
	// OneSided shifts the kernel node lattice near boundaries so the
	// stencil support stays inside the domain (Ryan & Shu 2003).
	OneSided
)

// String implements fmt.Stringer.
func (b Boundary) String() string {
	switch b {
	case Periodic:
		return "periodic"
	case OneSided:
		return "one-sided"
	default:
		return fmt.Sprintf("Boundary(%d)", int(b))
	}
}

// Options configure an Evaluator.
type Options struct {
	// P is the dG polynomial order; the SIAC kernel uses B-splines of order
	// P+1 and reproduces polynomials of degree 2P. Required, >= 1.
	P int
	// GridDegree selects the per-element quadrature rule whose nodes form
	// the evaluation grid (paper: "grid points correspond to the numerical
	// quadrature points"). 0 means 2P; a negative value selects the
	// one-point (degree-0) rule, which the benchmark harness uses to sweep
	// large meshes at reduced grid density.
	GridDegree int
	// H is the characteristic element length h scaling the kernel. 0 means
	// the mesh's longest edge s, the paper's choice for unstructured
	// meshes.
	H float64
	// Boundary selects periodic wrapping (default) or one-sided kernels.
	Boundary Boundary
	// Workers bounds evaluation concurrency; 0 means GOMAXPROCS.
	Workers int
	// CellFactorPoint scales the per-point hash-grid cell size relative to
	// s (paper: cp = s, factor 1). 0 means 1. Values below 1 violate the
	// enclosure guarantee and are rejected.
	CellFactorPoint float64
	// CellFactorElem scales the per-element hash-grid cell size relative to
	// s (paper: ce = s/2, factor 0.5). 0 means 0.5.
	CellFactorElem float64
}

func (o *Options) normalize(m *mesh.Mesh) error {
	if o.P < 1 {
		return fmt.Errorf("core: polynomial order P must be >= 1, got %d", o.P)
	}
	if o.GridDegree == 0 {
		o.GridDegree = 2 * o.P
	} else if o.GridDegree < 0 {
		o.GridDegree = 0
	}
	if o.H == 0 {
		o.H = m.LongestEdge()
	}
	if o.H <= 0 {
		return fmt.Errorf("core: characteristic length h must be positive, got %g", o.H)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CellFactorPoint == 0 {
		o.CellFactorPoint = 1
	}
	if o.CellFactorPoint < 1 {
		return fmt.Errorf("core: per-point cell factor %g < 1 breaks the enclosure guarantee",
			o.CellFactorPoint)
	}
	if o.CellFactorElem == 0 {
		o.CellFactorElem = 0.5
	}
	if o.CellFactorElem <= 0 {
		return fmt.Errorf("core: per-element cell factor must be positive")
	}
	return nil
}

// GridPoint is one evaluation point of the computation grid.
type GridPoint struct {
	Elem int32
	Pos  geom.Point
}

// Evaluator holds the immutable state shared by both schemes for one
// (mesh, field, options) triple.
type Evaluator struct {
	Mesh  *mesh.Mesh
	Field *dg.Field
	Opt   Options

	Kernel *bspline.Kernel // symmetric kernel (Boundary == Periodic)
	H      float64         // kernel scale
	W      float64         // stencil support width in domain units: h·(3P+1)

	Points     []GridPoint
	PerElem    int // evaluation points per element
	elemGrid   *grid.HashGrid
	pointGrid  *grid.HashGrid
	elemBounds []geom.AABB // cached triangle bounding boxes

	rule quadrature.Rule2D // sub-region integration rule (degree P + 2k)

	// horner holds the field collapsed to per-element monomial coefficients
	// so the quadrature loop evaluates u(r,s) with one bivariate Horner
	// pass. nil when the collapse failed its conditioning check (very high
	// P); integrate then falls back to the modal EvalAll path.
	horner *dg.HornerField

	// osCache memoises one-sided kernels by quantised node shift, turning
	// the per-candidate LU moment solve into an amortised map lookup. nil
	// unless Boundary == OneSided.
	osCache *kernelCache

	// scratch is the lazily created worker used by EvalAt.
	scratch *worker

	// wkPool recycles per-goroutine scratch workers across runs, colour
	// waves and batch queries (see getWorker); a worker's buffers grow to
	// steady state once and are reused instead of reallocated.
	wkPool sync.Pool
}

// UsesHornerFields reports whether the evaluator's hot path runs on the
// collapsed monomial (Horner) field representation. False only when the
// modal→monomial change of basis failed its conditioning check.
func (ev *Evaluator) UsesHornerFields() bool { return ev.horner != nil }

// hornerResidualTol bounds the acceptable |Horner − modal| disagreement,
// relative to the field's largest modal coefficient, before the evaluator
// falls back to the modal path. The Vandermonde collapse conditions
// combinatorially in P; for SIAC-practical orders the residual is ~1e-13.
const hornerResidualTol = 1e-9

// NewEvaluator validates options, builds the SIAC kernel, the computation
// grid and both hash grids.
func NewEvaluator(f *dg.Field, opt Options) (*Evaluator, error) {
	m := f.Mesh
	if err := opt.normalize(m); err != nil {
		return nil, err
	}
	if opt.P != f.P() {
		return nil, fmt.Errorf("core: options P=%d but field has degree %d", opt.P, f.P())
	}
	ker, err := bspline.NewSymmetric(opt.P)
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{
		Mesh:   m,
		Field:  f,
		Opt:    opt,
		Kernel: ker,
		H:      opt.H,
		W:      opt.H * float64(3*opt.P+1),
		rule:   quadrature.TriangleForDegree(3 * opt.P), // degree P + 2k, k = P
	}
	if opt.Boundary == OneSided {
		ev.osCache = newKernelCache(opt.P)
	}

	// Computation grid: the nodes of a per-element quadrature rule.
	// Per-element slots are independent, so generation fans out across
	// Opt.Workers.
	gr := quadrature.TriangleForDegree(opt.GridDegree)
	ev.PerElem = gr.Len()
	ev.Points = make([]GridPoint, m.NumTris()*gr.Len())
	parallelRange(m.NumTris(), opt.Workers, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			tri := m.Triangle(e)
			base := e * ev.PerElem
			for q, rp := range gr.Points {
				ev.Points[base+q] = GridPoint{
					Elem: int32(e),
					Pos:  tri.MapReference(rp.X, rp.Y),
				}
			}
		}
	})

	// Hash grids (paper §3.2). Element grid stores centroids with cell
	// size cp = factor·s; point grid stores the evaluation points with
	// ce = factor·s.
	s := m.LongestEdge()
	cents := make([]geom.Point, m.NumTris())
	ev.elemBounds = make([]geom.AABB, m.NumTris())
	parallelRange(m.NumTris(), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cents[i] = m.Centroid(i)
			ev.elemBounds[i] = m.Triangle(i).Bounds()
		}
	})
	ev.elemGrid = grid.New(cents, opt.CellFactorPoint*s)
	locs := make([]geom.Point, len(ev.Points))
	parallelRange(len(ev.Points), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			locs[i] = ev.Points[i].Pos
		}
	})
	ev.pointGrid = grid.New(locs, opt.CellFactorElem*s)

	ev.buildHornerField()
	return ev, nil
}

// buildHornerField collapses the field into per-element monomial (Horner)
// coefficients and validates the collapse against the modal path on a
// spread of elements at the integration rule's nodes. On excessive residual
// (ill-conditioned change of basis at very high P) the evaluator keeps
// horner == nil and integrate falls back to EvalAll.
func (ev *Evaluator) buildHornerField() {
	hf, err := dg.NewHornerField(ev.Field, ev.Opt.Workers)
	if err != nil {
		return
	}
	probe := make([][2]float64, len(ev.rule.Points))
	for i, p := range ev.rule.Points {
		probe[i] = [2]float64{p.X, p.Y}
	}
	scale := 0.0
	for _, c := range ev.Field.Coeffs {
		if a := math.Abs(c); a > scale {
			scale = a
		}
	}
	if hf.Validate(ev.Field, probe, 32) <= hornerResidualTol*(1+scale) {
		ev.horner = hf
	}
}

// parallelRange splits [0, n) into contiguous chunks executed across up to
// the given number of goroutines; workers <= 1 runs inline.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NumPoints returns the size of the computation grid.
func (ev *Evaluator) NumPoints() int { return len(ev.Points) }

// shiftRange returns the integer lattice shifts d along one axis for which
// the interval [lo, hi] shifted by −d overlaps [0, 1]; equivalently images
// of the periodic domain that the interval touches.
func shiftRange(lo, hi float64) (d0, d1 int) {
	// Need [lo−d, hi−d] ∩ [0,1] ≠ ∅ ⇔ d ∈ [lo−1, hi].
	d0 = int(math.Ceil(lo - 1))
	d1 = int(math.Floor(hi))
	return
}

// forEachShift invokes fn for every periodic image shift (dx, dy) under
// which box b (a stencil support or padded element box) overlaps the unit
// square. With Boundary == OneSided only the identity shift is used.
func (ev *Evaluator) forEachShift(b geom.AABB, fn func(dx, dy int)) {
	if ev.Opt.Boundary == OneSided {
		fn(0, 0)
		return
	}
	x0, x1 := shiftRange(b.Min.X, b.Max.X)
	y0, y1 := shiftRange(b.Min.Y, b.Max.Y)
	for dy := y0; dy <= y1; dy++ {
		for dx := x0; dx <= x1; dx++ {
			fn(dx, dy)
		}
	}
}

// worker holds per-goroutine scratch state so the hot loops allocate
// nothing.
type worker struct {
	clip     geom.Clipper
	tris     []geom.Triangle
	basis    []float64
	counters metrics.Counters
	cand     []int32
	kx, ky   *bspline.Kernel // kernels in effect for the current point
	// wacc receives one (point, element) pair's per-basis-function weights
	// during operator assembly (integrateWeights); unused on the direct
	// evaluation paths.
	wacc []float64
	// edPerRegion is the modeled element-data bytes charged (uncoalesced,
	// one scattered load transaction) for every integrated sub-region. The
	// per-point scheme sets it to the element payload: in a point-block
	// every lane works on a *different* element, so the modal coefficients
	// cannot be staged in shared memory and must be re-fetched from
	// scattered global locations for each integration (paper §3.3: "the
	// element data requires (P+1)(P+2)/2 + 3 values to be read from memory
	// per integration"). The per-element scheme sets it to 0 — the element
	// data is loaded once and stays resident for the whole element pass
	// (§3.4).
	edPerRegion uint64
}

func (ev *Evaluator) newWorker() *worker {
	return &worker{
		basis: make([]float64, ev.Field.Basis.N),
		kx:    ev.Kernel,
		ky:    ev.Kernel,
	}
}

// kernelsFor returns the (x, y) kernels for a point at pos. Periodic
// domains always use the symmetric kernel; one-sided domains shift the node
// lattice near boundaries so the support [lo, hi]·h + pos stays inside
// [0, 1].
func (ev *Evaluator) kernelsFor(pos geom.Point) (kx, ky *bspline.Kernel, err error) {
	if ev.Opt.Boundary == Periodic {
		return ev.Kernel, ev.Kernel, nil
	}
	kx, err = ev.oneSidedFor(pos.X)
	if err != nil {
		return nil, nil, err
	}
	ky, err = ev.oneSidedFor(pos.Y)
	if err != nil {
		return nil, nil, err
	}
	return kx, ky, nil
}

func (ev *Evaluator) oneSidedFor(x float64) (*bspline.Kernel, error) {
	lo, hi := ev.Kernel.Support()
	// Support in domain units: [x + h·lo, x + h·hi].
	shift := 0.0
	if x+ev.H*lo < 0 {
		shift = -(x/ev.H + lo)
	} else if x+ev.H*hi > 1 {
		shift = (1-x)/ev.H - hi
	}
	if shift == 0 {
		return ev.Kernel, nil
	}
	// Amortised O(1): quantised-shift kernels are memoised instead of
	// re-solving the moment system per candidate pair.
	return ev.osCache.get(shift)
}

// integrate computes the contribution of element e to the post-processed
// value at a stencil centred at center, i.e. the inner sums of Eq. (2):
//
//	(1/h²) Σ_{stencil squares} Σ_{τ_n} ∫_{τ_n} K_x((y1−cx)/h)·K_y((y2−cy)/h)·u_e(y) dy
//
// The stencil squares are the kernel's unit break lattice scaled by h, so
// the integrand is a single polynomial on each clipped sub-region and the
// quadrature is exact. Returns the partial solution.
func (ev *Evaluator) integrate(center geom.Point, e int32, w *worker) float64 {
	bb := ev.elemBounds[e]
	tri := ev.Mesh.Triangle(int(e))
	h := ev.H
	kx, ky := w.kx, w.ky
	bxlo, _ := kx.Support()
	bylo, _ := ky.Support()
	np := kx.NumPieces()

	// Kernel-cell index ranges overlapping the element bounding box.
	i0 := int(math.Floor((bb.Min.X-center.X)/h - bxlo))
	i1 := int(math.Floor((bb.Max.X-center.X)/h - bxlo))
	j0 := int(math.Floor((bb.Min.Y-center.Y)/h - bylo))
	j1 := int(math.Floor((bb.Max.Y-center.Y)/h - bylo))
	if i1 < 0 || j1 < 0 || i0 >= np || j0 >= ky.NumPieces() {
		return 0
	}
	i0 = max(i0, 0)
	j0 = max(j0, 0)
	i1 = min(i1, np-1)
	j1 = min(j1, ky.NumPieces()-1)

	// Per-call element state, hoisted out of the cell and quadrature loops:
	// the inverse reference map (one reciprocal determinant instead of a
	// division per quadrature point) and the element's collapsed Horner
	// coefficients.
	invH := 1 / h
	inv := tri.AffineInverse()
	var hc []float64
	if ev.horner != nil {
		hc = ev.horner.ElemCoeffs(int(e))
	}

	minArea := 1e-14 * tri.Area()
	basisN := ev.Field.Basis.N
	coeffs := ev.Field.ElemCoeffs(int(e))
	quadFlops := metrics.FlopsPerQuadEval(ev.Opt.P, ev.Opt.P)

	qpts := ev.rule.Points
	qwts := ev.rule.Weights
	nq := uint64(len(qpts))

	sum := 0.0
	for j := j0; j <= j1; j++ {
		cy0 := center.Y + h*(bylo+float64(j))
		// The cell indices (i, j) are the kernel piece indices (stencil
		// squares are the break lattice), so the piece polynomials are
		// hoisted per cell and evaluated directly — no floor, no bounds
		// search.
		py := ky.Piece(j)
		for i := i0; i <= i1; i++ {
			cx0 := center.X + h*(bxlo+float64(i))
			px := kx.Piece(i)
			cell := geom.Box(cx0, cy0, cx0+h, cy0+h)
			poly := w.clip.ClipTriangleBox(tri, cell)
			w.counters.Flops += uint64((len(poly) + 3) * metrics.FlopsPerClipVertex)
			if len(poly) < 3 {
				continue
			}
			w.tris = geom.SplitFan(geom.Polygon(poly), w.tris[:0], minArea)
			for _, tau := range w.tris {
				w.counters.Regions++
				w.counters.Flops += metrics.FlopsPerRegion
				if w.edPerRegion > 0 {
					w.counters.BytesRead += w.edPerRegion
					w.counters.BytesUncoalesced += w.edPerRegion
					w.counters.ScatteredLoads++
				}
				jac := 2 * tau.Area()
				// Compose tau's reference map with the element's inverse
				// map and the kernel-cell normalisation once per
				// sub-region, so each quadrature point costs four fused
				// affine evaluations instead of a map, an inverse solve
				// and two normalisations.
				bxu, bxv := tau.B.X-tau.A.X, tau.C.X-tau.A.X
				byu, byv := tau.B.Y-tau.A.Y, tau.C.Y-tau.A.Y
				dax, day := tau.A.X-inv.X0, tau.A.Y-inv.Y0
				r0 := (dax*inv.Ys - day*inv.Xs) * inv.InvDet
				ru := (bxu*inv.Ys - byu*inv.Xs) * inv.InvDet
				rv := (bxv*inv.Ys - byv*inv.Xs) * inv.InvDet
				s0 := (day*inv.Xr - dax*inv.Yr) * inv.InvDet
				su := (byu*inv.Xr - bxu*inv.Yr) * inv.InvDet
				sv := (byv*inv.Xr - bxv*inv.Yr) * inv.InvDet
				tx0, txu, txv := (tau.A.X-cx0)*invH, bxu*invH, bxv*invH
				ty0, tyu, tyv := (tau.A.Y-cy0)*invH, byu*invH, byv*invH
				for q, rp := range qpts {
					r := r0 + ru*rp.X + rv*rp.Y
					s := s0 + su*rp.X + sv*rp.Y
					var u float64
					if hc != nil {
						u = ev.horner.EvalCoeffs(hc, r, s)
					} else {
						ev.Field.Basis.EvalAll(r, s, w.basis)
						for mIdx := 0; mIdx < basisN; mIdx++ {
							u += coeffs[mIdx] * w.basis[mIdx]
						}
					}
					tx := tx0 + txu*rp.X + txv*rp.Y
					ty := ty0 + tyu*rp.X + tyv*rp.Y
					kvx := px[len(px)-1]
					for d := len(px) - 2; d >= 0; d-- {
						kvx = kvx*tx + px[d]
					}
					kvy := py[len(py)-1]
					for d := len(py) - 2; d >= 0; d-- {
						kvy = kvy*ty + py[d]
					}
					sum += qwts[q] * jac * kvx * kvy * u
				}
				w.counters.QuadEvals += nq
				w.counters.Flops += quadFlops * nq
			}
		}
	}
	return sum * invH * invH
}
