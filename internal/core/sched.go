package core

import (
	"sync"
	"sync/atomic"
)

// This file holds the dynamic schedulers the run loops execute on. The seed
// repo used the paper's literal strided assignment (block b runs on worker
// b mod W), which is faithful to a GPU's hardware scheduler but pessimal on
// a CPU worker pool: one slow unit serialises its whole stride while other
// workers idle. Two dispatchers replace it:
//
//   - runDynamic: a shared atomic work counter. Right for uniform units
//     (per-point blocks, batch queries, owned-point reduction) where claim
//     cost must be a single fetch-add and any idle worker should take the
//     next unit.
//
//   - runStealing: per-worker deques with work stealing. Right for
//     high-variance units (per-element patches, whose cost varies by orders
//     of magnitude on graded meshes): each worker drains its seeded run of
//     units in order — preserving the locality the seeding encodes — and
//     only when empty steals from the tail of a victim's deque, so steals
//     grab the work its owner would reach last.
//
// Both dispatchers only ever hand a unit to exactly one worker, and neither
// changes what a unit computes — per-unit outputs land in disjoint
// locations (strided solution slices, per-patch scratch-pads, owned-point
// ranges), so scheduling order never reaches the floating-point results and
// parallel runs stay bit-identical to serial ones.

// runDynamic executes units 0..n-1 on up to `workers` goroutines, each
// claiming the next unit from a shared atomic counter. body receives the
// worker index (for per-worker scratch) and the unit; returning false
// aborts the dispatch — in-flight units finish, unclaimed units are
// dropped. workers <= 1 runs inline in unit order.
func runDynamic(workers, n int, body func(w, unit int) bool) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			if !body(0, u) {
				return
			}
		}
		return
	}
	var next, abort atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for abort.Load() == 0 {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				if !body(w, u) {
					abort.Store(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// stealDeque is one worker's unit queue. The owner pops from the front,
// walking its seeded units in order; thieves steal from the back, taking
// the work the owner would reach last. Units are only ever removed, so an
// empty scan of every deque proves termination. A mutex (not a lock-free
// Chase–Lev deque) is deliberate: units here are whole patches costing
// milliseconds, so claim cost is noise and the simple structure is easy to
// verify under the race detector.
type stealDeque struct {
	mu    sync.Mutex
	units []int
}

func (d *stealDeque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.units) == 0 {
		return 0, false
	}
	u := d.units[0]
	d.units = d.units[1:]
	return u, true
}

func (d *stealDeque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.units) == 0 {
		return 0, false
	}
	u := d.units[len(d.units)-1]
	d.units = d.units[:len(d.units)-1]
	return u, true
}

// runStealing executes every unit listed in seed on len(seed) goroutines.
// Worker w owns seed[w] and drains it front to back; when empty it scans
// the other workers round-robin and steals one unit from the first
// non-empty deque's back. Every unit runs exactly once; units never spawn
// units, so a worker that finds every deque empty can exit — work still in
// flight on other workers needs no help. body returning false aborts the
// dispatch (remaining units are dropped).
func runStealing(seed [][]int, body func(w, unit int) bool) {
	workers := len(seed)
	if workers == 0 {
		return
	}
	if workers == 1 {
		for _, u := range seed[0] {
			if !body(0, u) {
				return
			}
		}
		return
	}
	deques := make([]stealDeque, workers)
	for w := range deques {
		deques[w].units = seed[w]
	}
	var abort atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for abort.Load() == 0 {
				u, ok := deques[w].popFront()
				if !ok {
					u, ok = steal(deques, w)
				}
				if !ok {
					return
				}
				if !body(w, u) {
					abort.Store(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// steal scans the other workers' deques starting after w and takes one unit
// from the back of the first non-empty one.
func steal(deques []stealDeque, w int) (int, bool) {
	n := len(deques)
	for i := 1; i < n; i++ {
		if u, ok := deques[(w+i)%n].popBack(); ok {
			return u, true
		}
	}
	return 0, false
}

// strideSeed builds the work-stealing seed with the paper's strided
// assignment (worker w owns units w, w+workers, ...): the static schedule
// becomes the starting point and stealing repairs its imbalance.
func strideSeed(n, workers int) [][]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	seed := make([][]int, workers)
	for w := range seed {
		seed[w] = make([]int, 0, (n-w+workers-1)/workers)
		for u := w; u < n; u += workers {
			seed[w] = append(seed[w], u)
		}
	}
	return seed
}

// getWorker returns a scratch worker from the evaluator's pool (counters
// reset, kernels restored to the symmetric default), allocating on first
// use. Pooling matters for the pipelined executor and the batch-query path,
// which previously allocated fresh workers — basis buffer, clipper scratch,
// candidate slices — per colour wave or per request.
func (ev *Evaluator) getWorker() *worker {
	if w, _ := ev.wkPool.Get().(*worker); w != nil {
		w.counters.Reset()
		w.kx, w.ky = ev.Kernel, ev.Kernel
		w.edPerRegion = 0
		return w
	}
	return ev.newWorker()
}

// putWorker returns a worker to the pool once no goroutine references it.
func (ev *Evaluator) putWorker(w *worker) { ev.wkPool.Put(w) }

// getWorkers acquires n pooled workers (index by the dispatcher's worker id).
func (ev *Evaluator) getWorkers(n int) []*worker {
	wks := make([]*worker, n)
	for i := range wks {
		wks[i] = ev.getWorker()
	}
	return wks
}

// putWorkers returns every worker acquired by getWorkers.
func (ev *Evaluator) putWorkers(wks []*worker) {
	for _, w := range wks {
		ev.putWorker(w)
	}
}
