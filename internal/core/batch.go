package core

import (
	"unstencil/internal/geom"
	"unstencil/internal/metrics"
)

// EvalBatch post-processes the field at many arbitrary physical positions
// concurrently — the batched form of EvalAt for streamline-style query
// workloads, where an ODE integrator (or a remote client, via the service's
// POST /v1/query endpoint) produces thousands of positions against one
// resident evaluator. Unlike EvalAt it is safe for concurrent use: each
// dispatcher worker evaluates on its own pooled scratch worker, positions
// are claimed off a shared atomic counter (queries are uniform units), and
// every result lands in its own output slot.
//
// Values are bit-identical to calling EvalAt per position — a query reads
// only immutable evaluator state, so the schedule cannot reach the numbers
// — and the returned counters equal the sum of the per-call counters a
// sequential sweep would report. workers <= 0 uses Opt.Workers.
func (ev *Evaluator) EvalBatch(positions []geom.Point, workers int) ([]float64, metrics.Counters, error) {
	out := make([]float64, len(positions))
	var total metrics.Counters
	if len(positions) == 0 {
		return out, total, nil
	}
	if workers <= 0 {
		workers = ev.Opt.Workers
	}
	workers = min(workers, len(positions))
	wks := ev.getWorkers(max(workers, 1))
	var ec errCollector
	runDynamic(workers, len(positions), func(w, i int) bool {
		v, err := ev.evalAt(positions[i], wks[w])
		if err != nil {
			ec.set(err)
			return false
		}
		out[i] = v
		return true
	})
	for _, wk := range wks {
		total.Add(&wk.counters)
	}
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, metrics.Counters{}, ec.err
	}
	return out, total, nil
}
