package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunDynamicRunsEveryUnitOnce dispatches n units over varying worker
// counts and checks each unit executes exactly once, including the inline
// workers<=1 path and workers > n clamping.
func TestRunDynamicRunsEveryUnitOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 17}, {2, 17}, {4, 17}, {8, 3}, {3, 0}, {4, 1},
	} {
		ran := make([]atomic.Int64, max(tc.n, 1))
		runDynamic(tc.workers, tc.n, func(w, u int) bool {
			ran[u].Add(1)
			return true
		})
		for u := 0; u < tc.n; u++ {
			if got := ran[u].Load(); got != 1 {
				t.Errorf("workers=%d n=%d: unit %d ran %d times, want 1",
					tc.workers, tc.n, u, got)
			}
		}
	}
}

// TestRunDynamicAbort checks that a false return stops the dispatch: with a
// single inline worker, units after the failing one must not run.
func TestRunDynamicAbort(t *testing.T) {
	var ran int
	runDynamic(1, 10, func(w, u int) bool {
		ran++
		return u != 3
	})
	if ran != 4 {
		t.Errorf("inline abort at unit 3: ran %d units, want 4", ran)
	}
	// Parallel: the abort flag stops workers from claiming more units. We
	// can only assert no unit runs twice and the call terminates.
	seen := make([]atomic.Int64, 100)
	runDynamic(4, 100, func(w, u int) bool {
		seen[u].Add(1)
		return u < 10
	})
	for u := range seen {
		if got := seen[u].Load(); got > 1 {
			t.Errorf("unit %d ran %d times after abort, want <= 1", u, got)
		}
	}
}

// TestStrideSeed checks the seed reproduces the paper's strided assignment
// and covers every unit exactly once.
func TestStrideSeed(t *testing.T) {
	seed := strideSeed(10, 3)
	if len(seed) != 3 {
		t.Fatalf("len(seed) = %d, want 3", len(seed))
	}
	seen := make(map[int]int)
	for w, units := range seed {
		for _, u := range units {
			if u%3 != w {
				t.Errorf("unit %d seeded to worker %d, want worker %d", u, w, u%3)
			}
			seen[u]++
		}
	}
	for u := 0; u < 10; u++ {
		if seen[u] != 1 {
			t.Errorf("unit %d seeded %d times, want 1", u, seen[u])
		}
	}
	// More workers than units clamps.
	if got := len(strideSeed(2, 8)); got != 2 {
		t.Errorf("strideSeed(2, 8) made %d deques, want 2", got)
	}
}

// TestRunStealingAdversarialImbalance is the fairness/termination test for
// the work-stealing dispatcher under the race detector. Every unit is seeded
// to worker 0 — the most imbalanced schedule possible — and worker 0 blocks
// on the first unit it claims until all other units have finished. Worker 0
// cannot help, so the other workers MUST steal the stranded units for the
// dispatch to terminate at all; the test then checks every unit ran exactly
// once and that the thieves did essentially all the work.
func TestRunStealingAdversarialImbalance(t *testing.T) {
	const n, workers = 32, 4
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	seed := make([][]int, workers)
	seed[0] = all
	for w := 1; w < workers; w++ {
		seed[w] = nil
	}

	// Worker 0 blocks on whichever unit it claims first; the gate opens once
	// the thieves have executed n-1 units (everything except the one worker 0
	// is holding — or, if the thieves outran worker 0 entirely, all but one).
	var remaining atomic.Int64
	remaining.Store(n - 1)
	gate := make(chan struct{})
	ran := make([]atomic.Int64, n)
	var byOwner, byThieves atomic.Int64

	runStealing(seed, func(w, u int) bool {
		ran[u].Add(1)
		if w == 0 {
			byOwner.Add(1)
			<-gate
			return true
		}
		byThieves.Add(1)
		if remaining.Add(-1) == 0 {
			close(gate)
		}
		return true
	})

	for u := 0; u < n; u++ {
		if got := ran[u].Load(); got != 1 {
			t.Errorf("unit %d ran %d times, want 1", u, got)
		}
	}
	// Worker 0 can claim at most one unit before blocking, and by the time
	// the gate opens no unclaimed units remain — so the thieves must have
	// stolen at least n-1 of the units seeded to worker 0.
	if o := byOwner.Load(); o > 1 {
		t.Errorf("blocked owner executed %d units, want <= 1", o)
	}
	if s := byThieves.Load(); s < n-1 {
		t.Errorf("thieves executed %d of %d stranded units, want >= %d", s, n, n-1)
	}
}

// TestRunStealingSingleWorker covers the inline path and in-order draining.
func TestRunStealingSingleWorker(t *testing.T) {
	var order []int
	runStealing([][]int{{4, 2, 7}}, func(w, u int) bool {
		order = append(order, u)
		return true
	})
	if len(order) != 3 || order[0] != 4 || order[1] != 2 || order[2] != 7 {
		t.Errorf("single worker ran %v, want seeded order [4 2 7]", order)
	}
	// Abort drops the rest.
	order = order[:0]
	runStealing([][]int{{1, 2, 3}}, func(w, u int) bool {
		order = append(order, u)
		return false
	})
	if len(order) != 1 {
		t.Errorf("abort after first unit: ran %v", order)
	}
}

// TestRunStealingNoDoubleClaim hammers the deques with many tiny units to
// give the race detector claim/steal interleavings to chew on.
func TestRunStealingNoDoubleClaim(t *testing.T) {
	const n, workers = 512, 8
	ran := make([]atomic.Int64, n)
	var mu sync.Mutex
	perWorker := make(map[int]int)
	runStealing(strideSeed(n, workers), func(w, u int) bool {
		ran[u].Add(1)
		mu.Lock()
		perWorker[w]++
		mu.Unlock()
		return true
	})
	total := 0
	for u := 0; u < n; u++ {
		if got := ran[u].Load(); got != 1 {
			t.Fatalf("unit %d ran %d times, want 1", u, got)
		}
		total++
	}
	sum := 0
	for _, c := range perWorker {
		sum += c
	}
	if total != n || sum != n {
		t.Errorf("ran %d units across workers summing %d, want %d", total, sum, n)
	}
}
