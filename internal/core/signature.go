package core

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"unstencil/internal/geom"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
)

// Congruence-first assembly: detect row congruence *before* integrating, so
// each shared stencil row pays the quadrature bill once.
//
// integrateWeights computes every weight in stencil-local coordinates, so a
// row's weight block is a deterministic function of
//
//	(multiset of stencil-local element geometry, which candidates share an
//	 element (periodic images), the order those images accumulate in,
//	 kernel class, h, quadrature rule, basis)
//
// — nothing else. Element *ids* only name the columns. Two rows whose
// candidate walks produce bitwise-identical local geometry, partitioned
// identically into elements, therefore assemble bitwise-identical weight
// blocks; the member's columns follow from mapping each of the
// representative's contributing elements to the member element holding the
// same local geometry. When that mapping is one uniform id shift D the row
// is exactly one row of a PR 8 stencil template (shared deltas + values,
// base column shifted by D·basisN); when it is not — periodic wrap makes
// spatial translates id-discontinuous — the member still skips quadrature
// and receives a plain CSR row stamped through the mapping. That second
// case is what extends congruence beyond the dyadic interior: on a
// periodic mesh *every* translated row is geometrically congruent, wrapped
// or not.
//
// On large operators a strided congruence probe runs first: it hashes a
// small sample of rows and, when the sample is almost all singletons (no
// congruence to exploit — jittered or unstructured meshes), falls back to
// the naive parallel schedule so the path's overhead degrades to the probe
// alone. Past the probe, the path runs in three stages:
//
//  1. Signature prefilter. Every row canonicalises its candidate walk —
//     entries sorted by quantised local geometry, each carrying a
//     partition label (first-occurrence ordinal of its element id in
//     canonical order) — and hashes it together with the kernel class
//     keys. Equal hashes are candidates for congruence, nothing more:
//     quantisation deliberately buckets near-congruent rows (jittered or
//     non-dyadic meshes) together with exact translates.
//  2. Exact certification. Per class the representative's canonical
//     signature (full-precision coordinate bit patterns, not quantised) is
//     materialised; every other member canonicalises its own walk and
//     compares. Bitwise-equal geometry with identical partition labels
//     certifies stamping — lossless by the determinism argument above,
//     with no integration needed. This is what makes collision-induced
//     false sharing from the quantiser impossible: the quantiser only
//     chooses who gets compared, never who gets stamped.
//  3. Verification / demotion. A member whose partition labels match (so a
//     stamp is at least well-formed) but whose geometry is not bitwise
//     identical is fully integrated and compared bitwise against the
//     would-be stamp: equal rows are kept as verified stamps (bytes or
//     uniformity knowledge gained, no compute saved), unequal rows keep
//     their own weights as plain CSR — the transparent per-row fallback.
//     Members whose partition structure diverges are demoted directly.
//     Congruence-first and naive assembly are therefore bitwise identical
//     on every mesh; the tests pin exactly that.

// CongruenceMode selects whether AssembleOperator detects row congruence
// before integrating.
type CongruenceMode int

const (
	// CongruenceNone (the default) assembles every row independently.
	CongruenceNone CongruenceMode = iota
	// CongruenceTemplate groups rows by geometric signature, integrates
	// one representative per class, stamps provably congruent rows, and
	// emits the operator's TemplateSet directly at assembly time.
	CongruenceTemplate
)

// String implements fmt.Stringer.
func (c CongruenceMode) String() string {
	switch c {
	case CongruenceNone:
		return "none"
	case CongruenceTemplate:
		return "template"
	default:
		return fmt.Sprintf("CongruenceMode(%d)", int(c))
	}
}

// sigQuantumDefault is the signature quantisation step in units of h. Fine
// enough that genuinely different stencil geometries land in different
// prefilter buckets (a jittered mesh's rows stay singletons and skip the
// exact-compare pass), coarse enough to absorb sub-quantum rounding noise
// so near-congruent rows at least reach verification. Correctness never
// depends on this value.
const sigQuantumDefault = 1.0 / (1 << 30)

// sigEntry is one candidate pair of a row's canonical signature. lab is
// the partition label — the first-occurrence ordinal of the entry's
// element id in canonical order — which encodes *which entries share an
// element* without naming the element. b holds the bit patterns of the
// element's stencil-local vertices; key is a hash of their quantised
// values, the entry's contribution to the prefilter bucket.
type sigEntry struct {
	lab int32
	key uint64
	b   [6]uint64
}

// Per-member outcomes of class resolution.
const (
	memberStampedTpl    uint8 = iota + 1 // exact match, uniform id shift: templated, no quadrature
	memberStampedPlain                   // exact match, wrapped ids: plain stamped row, no quadrature
	memberVerifiedTpl                    // integrated, bitwise equal to the stamp, uniform shift
	memberVerifiedPlain                  // integrated, bitwise equal to the stamp, wrapped ids
	memberDemoted                        // integrated, kept its own weights as a plain row
)

// congClass is one prefilter bucket: rows sharing the quantised signature
// hash, resolved against members[0] (the representative).
type congClass struct {
	members  []int32    // ascending storage rows
	n        int        // candidate entry count
	kx, ky   int64      // representative's kernel class keys
	sig      []sigEntry // canonical signature (full-precision bits)
	repIDs   []int32    // label → representative element id
	slotLab  []int32    // contributing slot → label (slots = len(repElems))
	repElems []int32    // representative row in block form: ascending element ids
	repVals  []float64  // slot-major weight blocks (len = slots·basisN)
	status   []uint8    // per member (status[0] unused — the representative)
	shiftD   []int32    // per templated member: uniform element id shift vs the representative
}

// kernelClass returns the quantised one-sided shift keys identifying the
// kernel pair a stencil at pos receives — the same keys the kernel cache
// memoises on, so equal keys mean the bitwise-same kernel coefficients.
// (0, 0) for periodic domains (every point uses the symmetric kernel).
func (ev *Evaluator) kernelClass(pos geom.Point) (kxKey, kyKey int64) {
	if ev.Opt.Boundary == Periodic {
		return 0, 0
	}
	return ev.oneSidedKey(pos.X), ev.oneSidedKey(pos.Y)
}

// oneSidedKey mirrors oneSidedFor's shift computation but returns only the
// quantised cache key (0 = symmetric kernel; quantiseShift never returns
// bucket 0 for a non-zero shift, so the encoding is unambiguous).
func (ev *Evaluator) oneSidedKey(x float64) int64 {
	lo, hi := ev.Kernel.Support()
	shift := 0.0
	if x+ev.H*lo < 0 {
		shift = -(x/ev.H + lo)
	} else if x+ev.H*hi > 1 {
		shift = (1-x)/ev.H - hi
	}
	if shift == 0 {
		return 0
	}
	_, key := quantiseShift(shift)
	return key
}

const fnvOffset64, fnvPrime64 = 14695981039346656037, 1099511628211

// The congruence probe hashes a small low-discrepancy sample of rows
// before committing to the full signature pass, escalating through
// probeStages until the observed sharing rate decides the schedule:
// at least 1/probeMinShareInv of the sampled rows must share a quantised
// signature with another sampled row to proceed (checked after every
// stage, so heavily congruent meshes commit at probeMinSample rows), and
// a stage with *zero* sharing bails to the naive schedule immediately —
// on jittered and unstructured meshes every sampled row is a singleton,
// so the fallback decision costs probeMinSample hashes instead of the
// full probeSampleRows. The probe only gates *cost*: both outcomes
// produce the bitwise-identical operator.
const (
	probeSampleRows  = 256 // final escalation stage
	probeMinSample   = 64  // first stage: smallest decisive sample
	probeMinShareInv = 8
)

// probeStages are the cumulative sample sizes the adaptive probe
// escalates through.
var probeStages = [...]int{probeMinSample, 2 * probeMinSample, probeSampleRows}

// probeRowAt maps probe sample index i to a storage row of an n-row
// operator via the bit-reversal (van der Corput) enumeration of
// [0, probeSampleRows): every prefix of the sequence is a near-uniform
// low-discrepancy sample of the rows, so escalating a stage extends the
// rows already hashed instead of resampling from scratch.
func probeRowAt(i, n int) int {
	return int(bits.Reverse8(uint8(i))) * n / probeSampleRows
}

// SignatureCache caches canonical signature hashes across operator
// assemblies, keyed by the row's position bit patterns and kernel-class
// keys. The congruence prefilter's hash for a row is a pure function of
// (mesh geometry, position, kernel class, h, quantisation step): rows
// sharing all five walk identical candidate enumerations and canonicalise
// to identical signatures. A cache must therefore be scoped to one
// (mesh, kernel order, h, quantum) tuple by its owner; the key carries
// the rest. Across boundary-condition variants on that tuple the scoping
// is still sound: a row whose kernel class keys are (0,0) under a
// one-sided boundary has its support strictly inside the domain — so the
// periodic variant of the same row walks the identical candidates — and
// every near-boundary row differs in (kx, ky) between variants, giving
// it distinct cache keys. A stale or colliding entry can only misgroup
// rows, never corrupt weights: stamping is gated by exact certification
// downstream, so cache bugs degrade speed, not output.
//
// Implementations must be safe for concurrent use; assembly calls Lookup
// and Store from many workers.
type SignatureCache interface {
	Lookup(xb, yb uint64, kx, ky int64) (exact, quant uint64, ok bool)
	Store(xb, yb uint64, kx, ky int64, exact, quant uint64)
}

// collectSignature walks the row's candidate enumeration and appends one
// entry per (image, element) pair: the *element id* temporarily parked in
// lab (canonicalizeSignature replaces it with the partition label), the
// local vertex bit patterns, and their quantised values. No clipping and
// no quadrature run here — the walk is the cheap per-row cost of the
// congruence path.
func (ev *Evaluator) collectSignature(pos geom.Point, wk *worker, buf []sigEntry, invQ float64) ([]sigEntry, error) {
	buf = buf[:0]
	err := ev.forEachRowCandidate(pos, wk, func(e int32, center geom.Point) {
		tri := ev.Mesh.Triangle(int(e)).Translate(geom.Pt(-center.X, -center.Y))
		s := sigEntry{lab: e, key: fnvOffset64}
		for i, c := range [6]float64{tri.A.X, tri.A.Y, tri.B.X, tri.B.Y, tri.C.X, tri.C.Y} {
			s.b[i] = math.Float64bits(c)
			s.key = (s.key ^ uint64(int64(math.Round(c*invQ)))) * fnvPrime64
		}
		buf = append(buf, s)
	})
	return buf, err
}

// canonicalizeSignature sorts entries into an order independent of the
// spatial-hash walk (whose bin order is *not* translation invariant):
// primarily by quantised local geometry — so near-congruent rows
// canonicalise alike and can bucket together — with exact bit patterns and
// finally the element id as tie-breaks to keep the order total. It then
// rewrites each entry's element id into its partition label and returns
// ids (label → element id), using labs as scratch. Entries sharing an
// element keep their relative walk order under the (stable) sort only if
// their geometry ties, which cannot happen for periodic images — distinct
// images of one element differ by whole domain shifts — so the canonical
// order of same-element images is ascending shift order: exactly the
// translation-invariant order forEachShift accumulates them in, which
// fixes the floating-point sum order of the shared row slot and is
// therefore part of the congruence certificate.
func canonicalizeSignature(ents []sigEntry, ids []int32, labs map[int32]int32) ([]sigEntry, []int32) {
	slices.SortStableFunc(ents, func(a, b sigEntry) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		for k := 0; k < 6; k++ {
			if a.b[k] != b.b[k] {
				if a.b[k] < b.b[k] {
					return -1
				}
				return 1
			}
		}
		return int(a.lab) - int(b.lab)
	})
	ids = ids[:0]
	clear(labs)
	for i := range ents {
		e := ents[i].lab
		l, ok := labs[e]
		if !ok {
			l = int32(len(ids))
			labs[e] = l
			ids = append(ids, e)
		}
		ents[i].lab = l
	}
	return ents, ids
}

// signatureHashes folds the kernel class and the canonicalised entry
// sequence into two FNV-1a hashes: the exact hash over full-precision bit
// patterns plus labels — rows sharing it are bitwise congruent up to FNV
// collision, which certification still re-checks — and the quantised hash
// over entry keys plus labels, the coarser bucket that groups
// near-congruent rows with exact translates for the verification tier.
func signatureHashes(kxKey, kyKey int64, ents []sigEntry) (exact, quantised uint64) {
	he, hq := uint64(fnvOffset64), uint64(fnvOffset64)
	he = (he ^ uint64(kxKey)) * fnvPrime64
	he = (he ^ uint64(kyKey)) * fnvPrime64
	hq = (hq ^ uint64(kxKey)) * fnvPrime64
	hq = (hq ^ uint64(kyKey)) * fnvPrime64
	he = (he ^ uint64(len(ents))) * fnvPrime64
	hq = (hq ^ uint64(len(ents))) * fnvPrime64
	for i := range ents {
		s := &ents[i]
		he = (he ^ uint64(uint32(s.lab))) * fnvPrime64
		hq = (hq ^ uint64(uint32(s.lab))) * fnvPrime64
		hq = (hq ^ s.key) * fnvPrime64
		for _, b := range s.b {
			he = (he ^ b) * fnvPrime64
		}
	}
	return he, hq
}

// compareRowSignature canonicalises a member row's own walk and compares
// it against the class signature. shape reports whether the partition
// labels and kernel class correspond — the precondition for a stamp to
// even be well-formed (the member has a distinct element for each of the
// representative's, with matching image structure); exact additionally
// requires every local vertex coordinate to be bitwise identical (the
// precondition for stamping without verification). ids maps label → the
// member's element id; buf and ids are returned for scratch reuse.
func (ev *Evaluator) compareRowSignature(pos geom.Point, wk *worker, cls *congClass, buf []sigEntry, ids []int32, labs map[int32]int32, invQ float64) (shape, exact bool, _ []sigEntry, _ []int32, err error) {
	kx, ky := ev.kernelClass(pos)
	buf, err = ev.collectSignature(pos, wk, buf, invQ)
	if err != nil {
		return false, false, buf, ids, err
	}
	if kx != cls.kx || ky != cls.ky || len(buf) != cls.n {
		return false, false, buf, ids, nil
	}
	buf, ids = canonicalizeSignature(buf, ids, labs)
	exact = true
	for k := range buf {
		if buf[k].lab != cls.sig[k].lab {
			return false, false, buf, ids, nil
		}
		exact = exact && buf[k].b == cls.sig[k].b
	}
	return true, exact, buf, ids, nil
}

// materializeSignature fills cls with the representative row's canonical
// signature, kernel class keys, and label → element id table.
func (ev *Evaluator) materializeSignature(pos geom.Point, wk *worker, cls *congClass, labs map[int32]int32, invQ float64) error {
	cls.kx, cls.ky = ev.kernelClass(pos)
	sig, err := ev.collectSignature(pos, wk, cls.sig[:0], invQ)
	if err != nil {
		return err
	}
	cls.sig, cls.repIDs = canonicalizeSignature(sig, cls.repIDs[:0], labs)
	cls.n = len(cls.sig)
	return nil
}

// buildStamp writes the member row implied by mapping each contributing
// slot of the representative through label → member element id, into the
// provided scratch (returned grown), in block form: one element id per
// basisN-wide weight block, exactly what SetRowBlocks takes. Slots are
// re-sorted by the member's element ids so the row is ascending exactly
// as flattenBlocks would emit it; ord is slot-index scratch.
func buildStamp(cls *congClass, memIDs []int32, basisN int, ord []int32, elems []int32, vals []float64) ([]int32, []int32, []float64) {
	slots := len(cls.slotLab)
	ord = ord[:0]
	for s := 0; s < slots; s++ {
		ord = append(ord, int32(s))
	}
	sort.Slice(ord, func(i, j int) bool {
		return memIDs[cls.slotLab[ord[i]]] < memIDs[cls.slotLab[ord[j]]]
	})
	elems, vals = elems[:0], vals[:0]
	for _, s := range ord {
		elems = append(elems, memIDs[cls.slotLab[s]])
		vals = append(vals, cls.repVals[int(s)*basisN:(int(s)+1)*basisN]...)
	}
	return ord, elems, vals
}

// uniformShift reports whether the member's slot mapping is one constant
// element id shift vs the representative — the case a PR 8 template row
// can express (shared deltas, base column shifted by d·basisN).
func uniformShift(cls *congClass, memIDs []int32) (int32, bool) {
	if len(cls.slotLab) == 0 {
		return 0, true
	}
	d := memIDs[cls.slotLab[0]] - cls.repElems[0]
	for s, lab := range cls.slotLab {
		if memIDs[lab]-cls.repElems[s] != d {
			return 0, false
		}
	}
	return d, true
}

// rowsEqualBits compares two block-form rows: identical element ids and
// bitwise identical weight blocks.
func rowsEqualBits(elems []int32, vals []float64, elems2 []int32, vals2 []float64) bool {
	if len(elems) != len(elems2) || len(vals) != len(vals2) {
		return false
	}
	for i := range elems {
		if elems[i] != elems2[i] {
			return false
		}
	}
	for i := range vals {
		if math.Float64bits(vals[i]) != math.Float64bits(vals2[i]) {
			return false
		}
	}
	return true
}

// assemblePerPointCongruent is assemblePerPoint with the congruence-first
// schedule: signature prefilter, per-class exact certification, stamped /
// verified / demoted member resolution, and direct template emission. The
// result is bitwise identical to assemblePerPoint for every mesh and every
// worker count; on meshes where rows repeat (structured grids, wrapped or
// not) most rows never run quadrature.
func (ev *Evaluator) assemblePerPointCongruent(positions []geom.Point, perm []int32, workers, basisN, cols int, quantum float64, cache SignatureCache) (*operator.Builder, metrics.Counters, *operator.CongruenceStats, error) {
	if quantum < 0 {
		return nil, metrics.Counters{}, nil, fmt.Errorf("core: signature quantum must be >= 0, got %g", quantum)
	}
	if quantum == 0 {
		quantum = sigQuantumDefault
	}
	invQ := 1 / (ev.H * quantum)

	n := len(positions)
	bld := operator.NewBuilder(n, cols, basisN)
	bld.MarkTemplateAware()
	stats := &operator.CongruenceStats{Rows: n}

	rowPos := func(r int) geom.Point {
		if perm != nil {
			return positions[perm[r]]
		}
		return positions[r]
	}

	dispatch := max(min(workers, n), 1)
	wks := ev.getWorkers(dispatch)
	type rowScratch struct {
		acc   *rowAccum
		cols  []int32
		vals  []float64
		sig   []sigEntry
		ids   []int32
		labs  map[int32]int32
		ord   []int32
		scols []int32
		svals []float64
	}
	scr := make([]rowScratch, dispatch)
	for i := range scr {
		scr[i].acc = newRowAccum(basisN)
		scr[i].labs = make(map[int32]int32)
	}
	var ec errCollector
	var cacheLookups, cacheHits atomic.Int64

	// hashRow computes one row's (exact, quantised) signature hashes,
	// consulting the cross-assembly cache first: the hash pair is a pure
	// function of the cache key on a fixed (mesh, kernel order, h, quantum)
	// tuple (see SignatureCache), so a hit skips the candidate walk and
	// canonicalisation — the entire per-row cost of the prefilter.
	hashRow := func(w int, pos geom.Point) (exact, quant uint64, err error) {
		kx, ky := ev.kernelClass(pos)
		xb, yb := math.Float64bits(pos.X), math.Float64bits(pos.Y)
		if cache != nil {
			cacheLookups.Add(1)
			if he, hq, ok := cache.Lookup(xb, yb, kx, ky); ok {
				cacheHits.Add(1)
				return he, hq, nil
			}
		}
		s := &scr[w]
		sig, err := ev.collectSignature(pos, wks[w], s.sig, invQ)
		if err != nil {
			s.sig = sig
			return 0, 0, err
		}
		sig, s.ids = canonicalizeSignature(sig, s.ids, s.labs)
		s.sig = sig
		he, hq := signatureHashes(kx, ky, sig)
		if cache != nil {
			cache.Store(xb, yb, kx, ky, he, hq)
		}
		return he, hq, nil
	}

	// Congruence probe: on meshes with no repeated rows (jittered,
	// unstructured) the full signature pass is pure overhead, so before
	// paying it, hash a low-discrepancy sample and look for repeated
	// quantised signatures (exact equality implies quantised equality, so
	// one count covers both tiers). The sample escalates adaptively: each
	// stage's rows extend the previous stage's (bit-reversal ordering), a
	// sharing rate already past the proceed threshold commits early, and a
	// stage with zero sharing bails to the naive schedule at once — a
	// jittered mesh pays probeMinSample hashes, not probeSampleRows. A
	// sample that stays almost all singletons means the class machinery
	// cannot win: fall back to the naive parallel schedule and the
	// congruence path costs only the probe — the graceful-degradation
	// bound on non-congruent meshes. Operators small enough that the
	// sample would be most of the rows skip the probe and keep the full
	// prefilter (which then *is* the probe).
	sigStart := time.Now()
	if n > 2*probeSampleRows {
		probeHash := make([]uint64, 0, probeSampleRows)
		counts := make(map[uint64]int, probeSampleRows)
		congruent := false
		for _, stage := range probeStages {
			lo := len(probeHash)
			probeHash = probeHash[:stage]
			runDynamic(min(dispatch, stage-lo), stage-lo, func(w, i int) bool {
				_, hq, err := hashRow(w, rowPos(probeRowAt(lo+i, n)))
				if err != nil {
					ec.set(err)
					return false
				}
				probeHash[lo+i] = hq
				return true
			})
			if ec.err != nil {
				ev.putWorkers(wks)
				return nil, metrics.Counters{}, nil, ec.err
			}
			for _, h := range probeHash[lo:] {
				counts[h]++
			}
			shared := 0
			for _, h := range probeHash {
				if counts[h] >= 2 {
					shared++
				}
			}
			if shared*probeMinShareInv >= stage {
				congruent = true
				break
			}
			if shared == 0 {
				break
			}
		}
		stats.ProbeRows = len(probeHash)
		if !congruent {
			stats.SignatureWall = time.Since(sigStart)
			runDynamic(min(dispatch, n), n, func(w, r int) bool {
				wk, s := wks[w], &scr[w]
				if err := ev.assembleRow(rowPos(r), wk, s.acc); err != nil {
					ec.set(err)
					return false
				}
				s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
				bld.SetRowBlocks(r, s.cols, s.vals)
				return true
			})
			var total metrics.Counters
			for _, wk := range wks {
				total.Add(&wk.counters)
			}
			ev.putWorkers(wks)
			if ec.err != nil {
				return nil, total, nil, ec.err
			}
			stats.RowsIntegrated = n
			stats.SigCacheLookups = cacheLookups.Load()
			stats.SigCacheHits = cacheHits.Load()
			return bld, total, stats, nil
		}
	}
	stats.ProbeCongruent = true

	// Stage 1: signature prefilter. Each row gets two hashes. The exact
	// hash (full-precision bits + labels) is the primary grouping: its
	// classes are bitwise congruent up to FNV collision, so stamping
	// inside one is expected to certify. The quantised hash is the second
	// layer: exact-singletons sharing a quantised bucket with an earlier
	// class attach to it as verification-tier members — near-congruent
	// rows (jitter, wrap-boundary rounding) that may still share the
	// integrated weights even though their geometry bits differ. Grouping
	// runs serially in ascending row order, so class membership — and
	// therefore the output — is deterministic for every worker count.
	exactHashes := make([]uint64, n)
	quantHashes := make([]uint64, n)
	runDynamic(min(dispatch, n), n, func(w, r int) bool {
		he, hq, err := hashRow(w, rowPos(r))
		if err != nil {
			ec.set(err)
			return false
		}
		exactHashes[r], quantHashes[r] = he, hq
		return true
	})
	if ec.err != nil {
		ev.putWorkers(wks)
		return nil, metrics.Counters{}, nil, ec.err
	}
	type protoClass struct {
		members []int32
		qh      uint64
	}
	classOf := make(map[uint64]int, n)
	var protos []*protoClass
	for r := 0; r < n; r++ {
		if i, ok := classOf[exactHashes[r]]; ok {
			protos[i].members = append(protos[i].members, int32(r))
			continue
		}
		classOf[exactHashes[r]] = len(protos)
		protos = append(protos, &protoClass{members: []int32{int32(r)}, qh: quantHashes[r]})
	}
	qPrimary := make(map[uint64]int, len(protos))
	qCount := make(map[uint64]int, len(protos))
	for i, pc := range protos {
		if _, ok := qPrimary[pc.qh]; !ok {
			qPrimary[pc.qh] = i
		}
		qCount[pc.qh]++
	}
	var classes []*congClass
	var singles []int32
	classIdx := make(map[int]int, len(protos))
	for i, pc := range protos {
		if len(pc.members) >= 2 || (qCount[pc.qh] >= 2 && qPrimary[pc.qh] == i) {
			classIdx[i] = len(classes)
			classes = append(classes, &congClass{members: pc.members})
			continue
		}
		if len(pc.members) == 1 && qCount[pc.qh] >= 2 {
			p := classIdx[qPrimary[pc.qh]]
			classes[p].members = append(classes[p].members, pc.members[0])
			continue
		}
		singles = append(singles, pc.members[0])
	}
	for _, cls := range classes {
		cls.status = make([]uint8, len(cls.members))
		cls.shiftD = make([]int32, len(cls.members))
	}
	stats.Classes = len(classes)
	stats.SignatureWall = time.Since(sigStart)

	// Stage 2: per class, materialise the representative's canonical
	// signature and integrate its row — the one quadrature bill the whole
	// class shares — then label the contributing slots for stamping.
	runDynamic(min(dispatch, len(classes)), len(classes), func(w, c int) bool {
		wk, s, cls := wks[w], &scr[w], classes[c]
		rep := int(cls.members[0])
		if err := ev.materializeSignature(rowPos(rep), wk, cls, s.labs, invQ); err != nil {
			ec.set(err)
			return false
		}
		if err := ev.assembleRow(rowPos(rep), wk, s.acc); err != nil {
			ec.set(err)
			return false
		}
		s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
		cls.repElems = append([]int32(nil), s.cols...)
		cls.repVals = append([]float64(nil), s.vals...)
		// s.labs still holds the representative's id → label table.
		cls.slotLab = make([]int32, len(cls.repElems))
		for slot := range cls.slotLab {
			cls.slotLab[slot] = s.labs[cls.repElems[slot]]
		}
		return true
	})

	// Stage 3: resolve members. Work units are fixed-size member chunks,
	// not classes — one interior class can cover most of a structured
	// mesh, and per-member cost spans two orders of magnitude (an exact
	// stamp is a walk, a demotion a full integration), exactly the
	// imbalance the stealing scheduler exists for. Exact members are
	// stamped with no quadrature (uniform-shift stamps become template
	// rows in stage 5, wrapped ones plain rows here); shape-only members
	// integrate and verify bitwise against the stamp; the rest demote to
	// their own plain rows.
	type memberChunk struct {
		cls    *congClass
		lo, hi int
	}
	const chunkMembers = 16
	var chunks []memberChunk
	for _, cls := range classes {
		for lo := 1; lo < len(cls.members); lo += chunkMembers {
			chunks = append(chunks, memberChunk{cls, lo, min(lo+chunkMembers, len(cls.members))})
		}
	}
	if ec.err == nil {
		runStealing(strideSeed(len(chunks), min(dispatch, len(chunks))), func(w, u int) bool {
			wk, s := wks[w], &scr[w]
			ck := chunks[u]
			cls := ck.cls
			for i := ck.lo; i < ck.hi; i++ {
				r := int(cls.members[i])
				pos := rowPos(r)
				shape, exact, sig, ids, err := ev.compareRowSignature(pos, wk, cls, s.sig, s.ids, s.labs, invQ)
				s.sig, s.ids = sig, ids
				if err != nil {
					ec.set(err)
					return false
				}
				if exact {
					if d, ok := uniformShift(cls, ids); ok {
						cls.status[i], cls.shiftD[i] = memberStampedTpl, d
						continue
					}
					s.ord, s.scols, s.svals = buildStamp(cls, ids, basisN, s.ord, s.scols, s.svals)
					bld.SetRowBlocks(r, s.scols, s.svals)
					cls.status[i] = memberStampedPlain
					continue
				}
				if !shape {
					if err := ev.assembleRow(pos, wk, s.acc); err != nil {
						ec.set(err)
						return false
					}
					s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
					cls.status[i] = memberDemoted
					bld.SetRowBlocks(r, s.cols, s.vals)
					continue
				}
				if err := ev.assembleRow(pos, wk, s.acc); err != nil {
					ec.set(err)
					return false
				}
				s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
				s.ord, s.scols, s.svals = buildStamp(cls, ids, basisN, s.ord, s.scols, s.svals)
				if rowsEqualBits(s.cols, s.vals, s.scols, s.svals) {
					if d, ok := uniformShift(cls, ids); ok {
						cls.status[i], cls.shiftD[i] = memberVerifiedTpl, d
						continue
					}
					cls.status[i] = memberVerifiedPlain
				} else {
					cls.status[i] = memberDemoted
				}
				bld.SetRowBlocks(r, s.cols, s.vals)
			}
			return true
		})
	}

	// Stage 4: signature singletons assemble exactly as the naive path.
	if ec.err == nil {
		runDynamic(min(dispatch, len(singles)), len(singles), func(w, u int) bool {
			wk, s := wks[w], &scr[w]
			r := int(singles[u])
			if err := ev.assembleRow(rowPos(r), wk, s.acc); err != nil {
				ec.set(err)
				return false
			}
			s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
			bld.SetRowBlocks(r, s.cols, s.vals)
			return true
		})
	}

	var total metrics.Counters
	for _, wk := range wks {
		total.Add(&wk.counters)
	}
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, total, nil, ec.err
	}

	// Stage 5 (serial): emit templates and stamp uniform-shift rows. A
	// class becomes a template when at least two rows resolve through it
	// with a uniform shift and the pattern is non-empty; otherwise
	// surviving template candidates get shifted plain copies (only
	// reachable for empty rows — any non-empty stamped/verified member
	// implies a template).
	stamped := make([]int32, 0, 16)
	for _, cls := range classes {
		users := 1
		for i := 1; i < len(cls.members); i++ {
			switch cls.status[i] {
			case memberStampedTpl, memberVerifiedTpl:
				users++
			}
			switch cls.status[i] {
			case memberStampedTpl, memberStampedPlain:
				stats.RowsStamped++
			case memberVerifiedTpl, memberVerifiedPlain:
				stats.RowsVerified++
			case memberDemoted:
				stats.RowsDemoted++
			}
		}
		if cls.hasStatus(memberVerifiedTpl) || cls.hasStatus(memberVerifiedPlain) {
			stats.ClassesVerified++
		}
		if cls.hasStatus(memberDemoted) {
			stats.ClassesDemoted++
		}
		rep := int(cls.members[0])
		if users >= 2 && len(cls.repElems) > 0 {
			t := bld.AddTemplateBlocks(cls.repElems, cls.repVals)
			bld.SetRowTemplated(rep, t, cls.repElems[0]*int32(basisN))
			for i := 1; i < len(cls.members); i++ {
				if cls.status[i] == memberStampedTpl || cls.status[i] == memberVerifiedTpl {
					bld.SetRowTemplated(int(cls.members[i]), t, (cls.repElems[0]+cls.shiftD[i])*int32(basisN))
				}
			}
			continue
		}
		bld.SetRowBlocks(rep, cls.repElems, cls.repVals)
		for i := 1; i < len(cls.members); i++ {
			if cls.status[i] == memberStampedTpl || cls.status[i] == memberVerifiedTpl {
				stamped = stamped[:0]
				for _, e := range cls.repElems {
					stamped = append(stamped, e+cls.shiftD[i])
				}
				bld.SetRowBlocks(int(cls.members[i]), stamped, cls.repVals)
			}
		}
	}
	stats.RowsIntegrated = n - stats.RowsStamped
	stats.SigCacheLookups = cacheLookups.Load()
	stats.SigCacheHits = cacheHits.Load()
	return bld, total, stats, nil
}

func (cls *congClass) hasStatus(st uint8) bool {
	for i := 1; i < len(cls.members); i++ {
		if cls.status[i] == st {
			return true
		}
	}
	return false
}
