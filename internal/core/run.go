package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/tile"
)

// Result is the outcome of one post-processing run.
type Result struct {
	// Solution holds the post-processed value u* at every grid point, in
	// Evaluator.Points order. For multi-field (batched operator) runs it is
	// the first field's solution.
	Solution []float64
	// Solutions holds the per-field solutions of a multi-field batched
	// operator apply, in the job's field order; nil for single-field runs.
	// Solutions[0] aliases Solution.
	Solutions [][]float64
	// Blocks holds the exact per-logical-block counters under the paper's
	// strided block schedule (per-point) or block-per-patch schedule
	// (per-element). The device simulator turns these into modeled times.
	Blocks []metrics.Counters
	// Total is the sum over Blocks.
	Total metrics.Counters
	// Wall is the measured wall-clock duration of the evaluation phase.
	Wall time.Duration
	// MemoryOverhead is the tiling partial-solution overhead relative to
	// baseline solution storage (1.0 for the per-point scheme).
	MemoryOverhead float64
	// Scheme records which scheme produced the result.
	Scheme Scheme
	// Coverage is non-nil only for degraded runs (resilient variants with
	// AllowPartial) where some blocks or tiles exhausted their retries; it
	// records which units failed and how many points remain fully covered.
	Coverage *Coverage
}

// errCollector records the first error seen across workers.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (ec *errCollector) set(err error) {
	if err == nil {
		return
	}
	ec.mu.Lock()
	if ec.err == nil {
		ec.err = err
	}
	ec.mu.Unlock()
}

// RunPerPoint executes the per-point scheme (Algorithm 2) with nBlocks
// logical blocks iterating grid points in the paper's strided fashion
// (block b handles points b, b+NB, ...). Blocks are executed by
// Opt.Workers goroutines, each playing the role of a streaming
// multiprocessor executing its strided share of blocks.
func (ev *Evaluator) RunPerPoint(nBlocks int) (*Result, error) {
	return ev.RunPerPointCtx(context.Background(), nBlocks)
}

// RunPerPointCtx is RunPerPoint with cancellation: when ctx is cancelled or
// its deadline passes, in-flight workers stop at the next grid point and the
// run returns ctx's error. Long-running evaluations submitted to a resident
// service abort promptly rather than running to completion. Block panics
// are isolated and surface as *PanicError; retry and graceful degradation
// are available through RunPerPointResilientCtx.
func (ev *Evaluator) RunPerPointCtx(ctx context.Context, nBlocks int) (*Result, error) {
	return ev.RunPerPointResilientCtx(ctx, nBlocks, nil)
}

// evalPoint computes the post-processed solution at grid point pi,
// accumulating contributions from every (element, periodic image) pair
// whose geometry intersects the stencil. It is the grid-indexed form of
// evalAt, so scheme runs and EvalAt report identical cost models.
func (ev *Evaluator) evalPoint(pi int32, wk *worker) (float64, error) {
	return ev.evalAt(ev.Points[pi].Pos, wk)
}

// CandidateMarker returns a marking function for tile.New and
// tile.MeasureOverhead that enumerates, for an element, exactly the
// candidate grid points processElement queries — so tiling slot coverage is
// identical to the evaluation by construction. The returned closure owns a
// scratch buffer and is not safe for concurrent use.
func (ev *Evaluator) CandidateMarker() func(e int, markPt func(pt int32)) {
	var cand []int32
	return func(e int, markPt func(pt int32)) {
		box := ev.elemBounds[e].Pad(ev.influencePad())
		ev.forEachShift(box, func(dx, dy int) {
			s := geom.Pt(float64(-dx), float64(-dy))
			cand = ev.pointGrid.AppendInBox(cand[:0], box.Translate(s), 0)
			for _, pt := range cand {
				markPt(pt)
			}
		})
	}
}

// PointElems returns the owning element of every grid point.
func (ev *Evaluator) PointElems() []int32 {
	pointElem := make([]int32, len(ev.Points))
	for i, gp := range ev.Points {
		pointElem[i] = gp.Elem
	}
	return pointElem
}

// NewTiling builds the overlapped tiling for the per-element scheme with k
// patches, marking each patch's influence region with exactly the candidate
// enumeration processElement uses. Patches are balanced by estimated
// workload (candidate-point counts per element), which keeps block-per-
// patch execution balanced even on high-variance meshes where per-element
// cost varies by orders of magnitude.
func (ev *Evaluator) NewTiling(k int) *tile.Tiling {
	weights := make([]float64, ev.Mesh.NumTris())
	ruleLen := float64(ev.rule.Len())
	// The candidate-count sweep only reads the point grid and element
	// bounds, so it fans out across Opt.Workers.
	parallelRange(ev.Mesh.NumTris(), ev.Opt.Workers, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			bb := ev.elemBounds[e]
			box := bb.Pad(ev.influencePad())
			n := 0
			ev.forEachShift(box, func(dx, dy int) {
				qbox := box.Translate(geom.Pt(float64(-dx), float64(-dy)))
				n += ev.pointGrid.CountInBox(qbox, 0)
			})
			// Each candidate pair clips the element against the kernel
			// cells its bounding box overlaps and integrates the clipped
			// regions, so the per-pair cost scales with cell count ×
			// quadrature size. An extent of w overlaps up to
			// floor(w/h)+2 cells along an axis once it straddles a cell
			// boundary (only an extent aligned to the lattice touches
			// floor(w/h)+1), so the pessimistic count keeps small
			// elements from being under-weighted in the partition.
			cx := math.Floor(bb.Width()/ev.H) + 2
			cy := math.Floor(bb.Height()/ev.H) + 2
			weights[e] = 1 + float64(n)*(1+cx*cy*ruleLen)
		}
	})
	part := mesh.PartitionWeighted(ev.Mesh, k, weights)
	return tile.NewWithPartition(ev.Mesh, ev.PointElems(), part, k, ev.CandidateMarker())
}

// influencePad returns how far an element's influence extends beyond its
// bounding box. Periodic kernels are symmetric (half the support width);
// one-sided kernels can be shifted by up to half a support width, so the
// full width bounds them.
func (ev *Evaluator) influencePad() float64 {
	if ev.Opt.Boundary == OneSided {
		return ev.W
	}
	return ev.W / 2
}

// RunPerElement executes the per-element scheme (Algorithm 3) under the
// overlapped tiling: one logical block per patch, each accumulating partial
// solutions into its own scratch-pad, followed by the reduction stage. A
// nil tiling builds one with k patches equal to Opt.Workers.
func (ev *Evaluator) RunPerElement(t *tile.Tiling) (*Result, error) {
	return ev.RunPerElementCtx(context.Background(), t)
}

// RunPerElementCtx is RunPerElement with cancellation: workers observe ctx
// between elements and the run returns ctx's error once cancelled. Tile
// panics are isolated and surface as *PanicError; retry and graceful
// degradation are available through RunPerElementResilientCtx.
func (ev *Evaluator) RunPerElementCtx(ctx context.Context, t *tile.Tiling) (*Result, error) {
	return ev.RunPerElementResilientCtx(ctx, t, nil)
}

// processElement computes every partial solution contributed by element e
// and hands it to add. The element data (coefficients, bounds, triangle) is
// loaded once and reused across all candidate points — the data-reuse
// property the per-element scheme exists for.
func (ev *Evaluator) processElement(e int32, wk *worker, add func(pt int32, v float64)) error {
	bb := ev.elemBounds[e]
	box := bb.Pad(ev.influencePad())
	// Element data is read once per element and kept resident (shared
	// memory in the paper's GPU terms), so integrations charge nothing
	// further.
	wk.counters.BytesRead += metrics.ElementDataBytes(ev.Opt.P)
	wk.counters.ScatteredLoads++
	wk.edPerRegion = 0
	var firstErr error
	ev.forEachShift(box, func(dx, dy int) {
		if firstErr != nil {
			return
		}
		s := geom.Pt(float64(-dx), float64(-dy))
		qbox := box.Translate(s)
		wk.cand = ev.pointGrid.AppendInBox(wk.cand[:0], qbox, 0)
		for _, pt := range wk.cand {
			wk.counters.IntersectionTests++
			wk.counters.Flops += metrics.FlopsPerTest
			// Paper §3.4: only the grid point's spatial offset (two
			// values) is read per candidate, and point storage is
			// contiguous by cell, so the read coalesces.
			wk.counters.BytesRead += metrics.PointDataBytes()
			pos := ev.Points[pt].Pos
			kx, ky, err := ev.kernelsFor(pos)
			if err != nil {
				firstErr = err
				return
			}
			wk.kx, wk.ky = kx, ky
			center := pos.Sub(s)
			xlo, xhi := kx.Support()
			ylo, yhi := ky.Support()
			supp := geom.Box(
				center.X+ev.H*xlo, center.Y+ev.H*ylo,
				center.X+ev.H*xhi, center.Y+ev.H*yhi,
			)
			if !supp.Intersects(bb) {
				continue
			}
			before := wk.counters.Regions
			v := ev.integrate(center, e, wk)
			if wk.counters.Regions > before {
				wk.counters.TruePositives++
			}
			if v != 0 {
				add(pt, v)
			}
		}
	})
	return firstErr
}

// Run dispatches on the scheme: PerPoint uses nBlocks logical blocks,
// PerElement uses a fresh tiling with nBlocks patches.
func (ev *Evaluator) Run(scheme Scheme, nBlocks int) (*Result, error) {
	return ev.RunCtx(context.Background(), scheme, nBlocks)
}

// RunCtx is Run with cancellation; see RunPerPointCtx and RunPerElementCtx.
func (ev *Evaluator) RunCtx(ctx context.Context, scheme Scheme, nBlocks int) (*Result, error) {
	switch scheme {
	case PerPoint:
		return ev.RunPerPointCtx(ctx, nBlocks)
	case PerElement:
		return ev.RunPerElementCtx(ctx, ev.NewTiling(nBlocks))
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", scheme)
	}
}

// Reference computes the post-processed solution by brute force: every
// (point, element, periodic image) triple is integrated directly with no
// spatial acceleration. It exists to validate both optimised schemes on
// small meshes.
func (ev *Evaluator) Reference() ([]float64, error) {
	out := make([]float64, ev.NumPoints())
	wk := ev.newWorker()
	for pi := range ev.Points {
		gp := ev.Points[pi]
		kx, ky, err := ev.kernelsFor(gp.Pos)
		if err != nil {
			return nil, err
		}
		wk.kx, wk.ky = kx, ky
		xlo, xhi := kx.Support()
		ylo, yhi := ky.Support()
		supp := geom.Box(
			gp.Pos.X+ev.H*xlo, gp.Pos.Y+ev.H*ylo,
			gp.Pos.X+ev.H*xhi, gp.Pos.Y+ev.H*yhi,
		)
		total := 0.0
		ev.forEachShift(supp, func(dx, dy int) {
			center := gp.Pos.Sub(geom.Pt(float64(dx), float64(dy)))
			for e := 0; e < ev.Mesh.NumTris(); e++ {
				total += ev.integrate(center, int32(e), wk)
			}
		})
		out[pi] = total
	}
	return out, nil
}

// EvalAt post-processes the field at an arbitrary physical position (not
// necessarily one of the evaluation grid points), using the per-point
// gather. This is the entry point for applications such as streamline
// integration through discontinuous fields (Steffen et al. 2008; Walfisch
// et al. 2009), where query positions are produced on the fly by an ODE
// integrator. Not safe for concurrent use with itself; use EvalBatch for
// concurrent or bulk queries, or create one Evaluator per goroutine.
func (ev *Evaluator) EvalAt(pos geom.Point) (float64, error) {
	if ev.scratch == nil {
		ev.scratch = ev.newWorker()
	}
	return ev.evalAt(pos, ev.scratch)
}

// evalAt is the position-parameterised per-point gather shared by evalPoint
// and EvalAt. It charges the full paper cost model (§3.3): every candidate
// test fetches the candidate element's geometry from a non-contiguous
// location, and every integration re-reads the element data (scattered) —
// so arbitrary-position queries and scheme runs report identical counters.
func (ev *Evaluator) evalAt(pos geom.Point, wk *worker) (float64, error) {
	kx, ky, err := ev.kernelsFor(pos)
	if err != nil {
		return 0, err
	}
	wk.kx, wk.ky = kx, ky
	xlo, xhi := kx.Support()
	ylo, yhi := ky.Support()
	supp := geom.Box(
		pos.X+ev.H*xlo, pos.Y+ev.H*ylo,
		pos.X+ev.H*xhi, pos.Y+ev.H*yhi,
	)
	wk.edPerRegion = metrics.ElementDataBytes(ev.Opt.P)
	total := 0.0
	ev.forEachShift(supp, func(dx, dy int) {
		shift := geom.Pt(float64(dx), float64(dy))
		box := supp.Translate(shift.Scale(-1))
		center := pos.Sub(shift)
		wk.cand = ev.elemGrid.AppendInBox(wk.cand[:0], box, 1)
		for _, e := range wk.cand {
			wk.counters.IntersectionTests++
			wk.counters.Flops += metrics.FlopsPerTest
			wk.counters.BytesRead += metrics.ElementGeometryBytes
			wk.counters.BytesUncoalesced += metrics.ElementGeometryBytes
			wk.counters.ScatteredLoads++
			if !ev.elemBounds[e].Intersects(box) {
				continue
			}
			before := wk.counters.Regions
			total += ev.integrate(center, e, wk)
			if wk.counters.Regions > before {
				wk.counters.TruePositives++
			}
		}
	})
	return total, nil
}

// RunPerElementPipelined executes the per-element scheme with the paper's
// pipelined tiling alternative (§4): patches are greedily coloured so that
// patches of one colour have disjoint influence regions, then executed
// wave by wave writing directly into the global solution — no
// partial-solution memory overhead, but a synchronisation barrier between
// waves and no reduction stage. The paper reports this trades away overall
// performance; the tiling ablation quantifies it.
func (ev *Evaluator) RunPerElementPipelined(t *tile.Tiling) (*Result, error) {
	return ev.RunPerElementPipelinedCtx(context.Background(), t)
}

// RunPerElementPipelinedCtx is RunPerElementPipelined with cancellation:
// workers observe ctx between elements and the run returns ctx's error once
// cancelled (colour waves already in flight finish their current element).
func (ev *Evaluator) RunPerElementPipelinedCtx(ctx context.Context, t *tile.Tiling) (*Result, error) {
	if t == nil {
		t = ev.NewTiling(ev.Opt.Workers)
	}
	res := &Result{
		Solution:       make([]float64, ev.NumPoints()),
		Blocks:         make([]metrics.Counters, t.K),
		MemoryOverhead: 1,
		Scheme:         PerElement,
	}
	// Colour waves are bucketed in one pass over the colouring (the seed
	// version re-scanned all patches once per colour, allocating a fresh
	// wave slice each time), and the scratch workers are acquired from the
	// evaluator's pool once for the whole run instead of reallocated per
	// colour — the pipelined executor's allocation count is guarded by
	// TestPipelinedAllocs.
	colors := t.Colors()
	numColors := 0
	for _, c := range colors {
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	waves := make([][]int, numColors)
	counts := make([]int, numColors)
	for _, c := range colors {
		counts[c]++
	}
	for c, n := range counts {
		waves[c] = make([]int, 0, n)
	}
	for p, c := range colors {
		waves[c] = append(waves[c], p)
	}
	start := time.Now()
	var ec errCollector
	wks := ev.getWorkers(max(min(ev.Opt.Workers, t.K), 1))
	for _, wave := range waves {
		// Within a wave, patches are dispatched off a shared atomic counter:
		// the barrier between waves is the synchronisation cost the paper
		// charges this variant, so the wave itself should at least fill all
		// workers until its last patch.
		runDynamic(min(len(wks), len(wave)), len(wave), func(w, i int) bool {
			p := wave[i]
			wk := wks[w]
			// Panic-isolated: a dying patch fails the run with a
			// typed error instead of killing the process. No retry
			// here — pipelined patches write the shared solution in
			// place, so an aborted attempt cannot be replayed.
			err := safeCall(PerElement, p, nil, func() error {
				for _, e := range t.PatchElems[p] {
					if err := ctx.Err(); err != nil {
						return err
					}
					err := ev.processElement(e, wk, func(pt int32, v float64) {
						// In-place accumulation: safe because same-colour
						// patches have disjoint influence regions.
						res.Solution[pt] += v
					})
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				ec.set(err)
				return false
			}
			res.Blocks[p].Add(&wk.counters)
			wk.counters.Reset()
			return true
		})
		// Barrier between colour waves: runDynamic returns only once the
		// wave's in-flight patches have finished.
		if ec.err != nil {
			ev.putWorkers(wks)
			return nil, ec.err
		}
	}
	ev.putWorkers(wks)
	res.Wall = time.Since(start)
	for i := range res.Blocks {
		res.Total.Add(&res.Blocks[i])
	}
	return res, nil
}
