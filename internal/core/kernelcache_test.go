package core

import (
	"math"
	"sync"
	"testing"
)

// Quantisation must round away from zero so the quantised support never
// crosses the domain boundary the exact shift was computed to avoid.
func TestQuantiseShiftAwayFromZero(t *testing.T) {
	for _, shift := range []float64{0.1, 0.5003, 1.999999, -0.1, -0.5003, -1.999999} {
		qs, _ := quantiseShift(shift)
		if math.Abs(qs) < math.Abs(shift) {
			t.Errorf("shift %v quantised toward zero: %v", shift, qs)
		}
		if math.Abs(qs-shift) > shiftQuantum {
			t.Errorf("shift %v quantised too far: %v (quantum %v)", shift, qs, shiftQuantum)
		}
		if qs*shift < 0 {
			t.Errorf("shift %v changed sign: %v", shift, qs)
		}
	}
}

// Shifts in the same bucket must share one key; distinct buckets must not.
func TestQuantiseShiftBuckets(t *testing.T) {
	_, k1 := quantiseShift(0.50001)
	_, k2 := quantiseShift(0.50002)
	if k1 != k2 {
		t.Fatalf("near-identical shifts got distinct keys %d, %d", k1, k2)
	}
	_, k3 := quantiseShift(0.75)
	if k1 == k3 {
		t.Fatalf("distant shifts share key %d", k1)
	}
}

// Repeated gets for the same bucket must return one canonical kernel and
// grow the cache by exactly one entry.
func TestKernelCacheMemoises(t *testing.T) {
	c := newKernelCache(2)
	a, err := c.get(0.6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get(0.6 + shiftQuantum/8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-bucket gets returned distinct kernels")
	}
	if got := c.size(); got != 1 {
		t.Fatalf("cache size %d after one bucket, want 1", got)
	}
	if _, err := c.get(-0.6); err != nil {
		t.Fatal(err)
	}
	if got := c.size(); got != 2 {
		t.Fatalf("cache size %d after two buckets, want 2", got)
	}
}

// The cached kernel must be a valid one-sided kernel for the quantised
// shift: unit mass and vanishing higher moments.
func TestKernelCacheKernelsSatisfyMoments(t *testing.T) {
	c := newKernelCache(1)
	ker, err := c.get(0.87)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ker.Moment(0) - 1); d > 1e-9 {
		t.Errorf("moment 0 off by %v", d)
	}
	for m := 1; m <= ker.R; m++ {
		if d := math.Abs(ker.Moment(m)); d > 1e-8 {
			t.Errorf("moment %d = %v, want 0", m, d)
		}
	}
}

// Concurrent gets must be race-free and still converge on one canonical
// kernel per bucket (run under -race in CI).
func TestKernelCacheConcurrent(t *testing.T) {
	c := newKernelCache(2)
	var wg sync.WaitGroup
	kers := make([]interface{}, 16)
	for i := range kers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ker, err := c.get(1.25)
			if err != nil {
				t.Error(err)
				return
			}
			kers[i] = ker
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(kers); i++ {
		if kers[i] != kers[0] {
			t.Fatal("concurrent gets produced non-canonical kernels")
		}
	}
	if got := c.size(); got != 1 {
		t.Fatalf("cache size %d, want 1", got)
	}
}
