package core

import (
	"math"
	"sync"
	"testing"

	"unstencil/internal/bspline"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// Quantisation must round away from zero so the quantised support never
// crosses the domain boundary the exact shift was computed to avoid.
func TestQuantiseShiftAwayFromZero(t *testing.T) {
	for _, shift := range []float64{0.1, 0.5003, 1.999999, -0.1, -0.5003, -1.999999} {
		qs, _ := quantiseShift(shift)
		if math.Abs(qs) < math.Abs(shift) {
			t.Errorf("shift %v quantised toward zero: %v", shift, qs)
		}
		if math.Abs(qs-shift) > shiftQuantum {
			t.Errorf("shift %v quantised too far: %v (quantum %v)", shift, qs, shiftQuantum)
		}
		if qs*shift < 0 {
			t.Errorf("shift %v changed sign: %v", shift, qs)
		}
	}
}

// Shifts in the same bucket must share one key; distinct buckets must not.
func TestQuantiseShiftBuckets(t *testing.T) {
	_, k1 := quantiseShift(0.50001)
	_, k2 := quantiseShift(0.50002)
	if k1 != k2 {
		t.Fatalf("near-identical shifts got distinct keys %d, %d", k1, k2)
	}
	_, k3 := quantiseShift(0.75)
	if k1 == k3 {
		t.Fatalf("distant shifts share key %d", k1)
	}
}

// Repeated gets for the same bucket must return one canonical kernel and
// grow the cache by exactly one entry.
func TestKernelCacheMemoises(t *testing.T) {
	c := newKernelCache(2)
	a, err := c.get(0.6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get(0.6 + shiftQuantum/8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-bucket gets returned distinct kernels")
	}
	if got := c.size(); got != 1 {
		t.Fatalf("cache size %d after one bucket, want 1", got)
	}
	if _, err := c.get(-0.6); err != nil {
		t.Fatal(err)
	}
	if got := c.size(); got != 2 {
		t.Fatalf("cache size %d after two buckets, want 2", got)
	}
}

// The cached kernel must be a valid one-sided kernel for the quantised
// shift: unit mass and vanishing higher moments.
func TestKernelCacheKernelsSatisfyMoments(t *testing.T) {
	c := newKernelCache(1)
	ker, err := c.get(0.87)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ker.Moment(0) - 1); d > 1e-9 {
		t.Errorf("moment 0 off by %v", d)
	}
	for m := 1; m <= ker.R; m++ {
		if d := math.Abs(ker.Moment(m)); d > 1e-8 {
			t.Errorf("moment %d = %v, want 0", m, d)
		}
	}
}

// Concurrent gets must be race-free and still converge on one canonical
// kernel per bucket (run under -race in CI).
func TestKernelCacheConcurrent(t *testing.T) {
	c := newKernelCache(2)
	var wg sync.WaitGroup
	kers := make([]interface{}, 16)
	for i := range kers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ker, err := c.get(1.25)
			if err != nil {
				t.Error(err)
				return
			}
			kers[i] = ker
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(kers); i++ {
		if kers[i] != kers[0] {
			t.Fatal("concurrent gets produced non-canonical kernels")
		}
	}
	if got := c.size(); got != 1 {
		t.Fatalf("cache size %d, want 1", got)
	}
}

// Churn past the cache capacity: more distinct quantised shifts than
// kernelCacheCap must stay bounded in memory, never error, and keep
// returning kernels that agree with freshly built ones after eviction.
func TestKernelCacheChurnBounded(t *testing.T) {
	m := mesh.Structured(2)
	ev := buildEvaluator(t, m, 2, func(p geom.Point) float64 { return p.X }, Options{Boundary: OneSided})
	lo, _ := ev.Kernel.Support()
	// Positive shifts live in (0, −lo); −lo·4096 ≈ 14336 buckets for P=2,
	// comfortably past the 8192 cap from the lower boundary alone.
	n := kernelCacheCap + kernelCacheCap/8
	if maxBuckets := int(-lo / shiftQuantum); n >= maxBuckets {
		t.Fatalf("sweep of %d buckets exceeds the %d reachable ones; enlarge the kernel", n, maxBuckets)
	}
	for i := 1; i <= n; i++ {
		s := (float64(i) - 0.5) * shiftQuantum // quantises (away from zero) to bucket i
		x := ev.H * (-lo - s)                  // support deficit at x is exactly s·h
		ker, err := ev.oneSidedFor(x)
		if err != nil {
			t.Fatalf("bucket %d: %v", i, err)
		}
		if ker == ev.Kernel {
			t.Fatalf("bucket %d: interior kernel returned for boundary point", i)
		}
		if sz := ev.osCache.size(); sz > kernelCacheCap {
			t.Fatalf("bucket %d: cache grew to %d > cap %d", i, sz, kernelCacheCap)
		}
		// Spot-check value agreement with a freshly built kernel — in
		// particular for late buckets served after the eviction sweep.
		if i%1024 == 0 || i == n {
			fresh, err := bspline.NewOneSided(ev.Opt.P, float64(i)*shiftQuantum)
			if err != nil {
				t.Fatal(err)
			}
			flo, fhi := fresh.Support()
			if clo, chi := ker.Support(); clo != flo || chi != fhi {
				t.Fatalf("bucket %d: support (%v,%v) != fresh (%v,%v)", i, clo, chi, flo, fhi)
			}
			for j := 0; j <= 8; j++ {
				at := flo + (fhi-flo)*float64(j)/8
				if d := math.Abs(ker.Eval(at) - fresh.Eval(at)); d > 1e-12 {
					t.Fatalf("bucket %d: cached kernel disagrees with fresh by %v at %v", i, d, at)
				}
			}
		}
	}
	if sz := ev.osCache.size(); sz > kernelCacheCap {
		t.Fatalf("final cache size %d > cap %d", sz, kernelCacheCap)
	}
}
