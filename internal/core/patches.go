package core

import (
	"context"
	"fmt"

	"unstencil/internal/fault"
	"unstencil/internal/metrics"
	"unstencil/internal/tile"
)

// PatchPartial is the outcome of evaluating one tile patch in isolation:
// the patch's scratch-pad partial-solution buffer (indexed by its slot
// list, t.Slots[Patch]) plus the exact counters the patch accrued. It is
// the unit of work a cluster shard returns to the coordinator: because a
// patch's buffer is accumulated element-by-element in PatchElems order
// regardless of which process runs it, merging buffers in ascending patch
// order reproduces tile.Reduce — and therefore a single-process
// RunPerElement — bit for bit.
type PatchPartial struct {
	Patch    int
	Values   []float64
	Counters metrics.Counters
}

// EvalPatchesResilientCtx evaluates only the given patches of tiling t,
// each under the resilience policy (panic isolation, capped-backoff retry),
// and returns their partial-solution buffers without performing the
// reduction. It is the shard half of the distributed per-element scheme:
// the coordinator assigns disjoint patch sets to shards, gathers the
// partials, and merges them in ascending patch order.
//
// With rs.AllowPartial, patches that exhaust their retries are dropped and
// reported in the second return value (sorted); without it the first
// permanent patch failure fails the call. Patch ids must be unique and in
// [0, t.K).
func (ev *Evaluator) EvalPatchesResilientCtx(ctx context.Context, t *tile.Tiling, patches []int, rs *Resilience) ([]PatchPartial, []int, error) {
	if len(patches) == 0 {
		return nil, nil, nil
	}
	seen := make(map[int]bool, len(patches))
	for _, p := range patches {
		if p < 0 || p >= t.K {
			return nil, nil, fmt.Errorf("core: patch %d outside [0, %d)", p, t.K)
		}
		if seen[p] {
			return nil, nil, fmt.Errorf("core: duplicate patch %d", p)
		}
		seen[p] = true
	}
	rs = rs.withDefaults()
	out := make([]PatchPartial, len(patches))
	var ec errCollector
	var fs failureSet
	workers := min(ev.Opt.Workers, len(patches))
	wks := ev.getWorkers(max(workers, 1))
	runDynamic(workers, len(patches), func(w, i int) bool {
		wk := wks[w]
		p := patches[i]
		buf := make([]float64, len(t.Slots[p]))
		err := rs.runUnit(ctx, PerElement, p, func() error {
			clear(buf)
			wk.counters.Reset()
			if err := fault.Inject(SiteTile); err != nil {
				return err
			}
			for _, e := range t.PatchElems[p] {
				if err := ctx.Err(); err != nil {
					return err
				}
				var slotErr error
				err := ev.processElement(e, wk, func(pt int32, v float64) {
					sl := t.Slot(p, pt)
					if sl < 0 {
						slotErr = fmt.Errorf("core: patch %d received partial for unmarked point %d", p, pt)
						return
					}
					buf[sl] += v
				})
				if err == nil {
					err = slotErr
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			out[i] = PatchPartial{Patch: p, Values: buf, Counters: wk.counters}
			return true
		}
		if !Transient(err) || !rs.AllowPartial {
			ec.set(err)
			return false
		}
		fs.add(p, rs.Faults)
		return true
	})
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, nil, ec.err
	}
	failed := fs.sorted()
	if len(failed) == 0 {
		return out, nil, nil
	}
	kept := out[:0]
	for _, pp := range out {
		if pp.Values != nil {
			kept = append(kept, pp)
		}
	}
	return kept, failed, nil
}
