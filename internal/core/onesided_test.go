package core

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// One-sided kernels must reproduce polynomials of degree <= P at EVERY grid
// point, including next to the boundary, because the shifted node lattice
// keeps the support inside the domain while preserving the moment
// conditions (Ryan & Shu 2003).
func TestOneSidedPolynomialReproductionEverywhere(t *testing.T) {
	m := mesh.Structured(10)
	fn := func(p geom.Point) float64 { return 2 + 3*p.X - p.Y }
	ev := buildEvaluator(t, m, 1, fn, Options{Boundary: OneSided})
	res, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, gp := range ev.Points {
		want := fn(gp.Pos)
		if math.Abs(res.Solution[i]-want) > 1e-8 {
			t.Fatalf("point %d at %v: got %v, want %v",
				i, gp.Pos, res.Solution[i], want)
		}
	}
}

// The one-sided stencil support must stay inside the unit square: no
// contribution may come from (nonexistent) periodic images, which the
// scheme verifies by agreeing with a brute-force non-periodic reference.
func TestOneSidedSchemesAgree(t *testing.T) {
	lv, err := mesh.LowVariance(6, 17)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geom.Point) float64 { return math.Sin(2 * p.X * p.Y) }
	ev := buildEvaluator(t, lv, 1, fn, Options{Boundary: OneSided})
	pp, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ev.RunPerElement(ev.NewTiling(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(pp.Solution, pe.Solution); d > 1e-10 {
		t.Errorf("one-sided schemes disagree by %v", d)
	}
	ref, err := ev.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(ref, pp.Solution); d > 1e-10 {
		t.Errorf("one-sided per-point vs reference: %v", d)
	}
}

// Interior points far from the boundary use the symmetric kernel, so
// one-sided and periodic modes agree there.
func TestOneSidedMatchesPeriodicInInterior(t *testing.T) {
	m := mesh.Structured(12)
	fn := func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) }
	evP := buildEvaluator(t, m, 1, fn, Options{})
	evO := buildEvaluator(t, m, 1, fn, Options{Boundary: OneSided})
	rp, err := evP.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := evO.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	half := evP.W / 2
	checked := 0
	for i, gp := range evP.Points {
		if gp.Pos.X < half || gp.Pos.X > 1-half || gp.Pos.Y < half || gp.Pos.Y > 1-half {
			continue
		}
		checked++
		if math.Abs(rp.Solution[i]-ro.Solution[i]) > 1e-10 {
			t.Fatalf("interior point %d differs: periodic %v, one-sided %v",
				i, rp.Solution[i], ro.Solution[i])
		}
	}
	if checked == 0 {
		t.Fatal("no interior points")
	}
}

// The kernel construction must adapt near each boundary: verify the
// per-point kernel selection shifts supports inside the domain.
func TestOneSidedKernelSupportsInsideDomain(t *testing.T) {
	m := mesh.Structured(8)
	fn := func(p geom.Point) float64 { return 1 }
	ev := buildEvaluator(t, m, 1, fn, Options{Boundary: OneSided})
	for _, gp := range ev.Points {
		kx, ky, err := ev.kernelsFor(gp.Pos)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := kx.Support()
		if gp.Pos.X+ev.H*lo < -1e-9 || gp.Pos.X+ev.H*hi > 1+1e-9 {
			t.Fatalf("x-support [%v, %v] escapes domain for point %v",
				gp.Pos.X+ev.H*lo, gp.Pos.X+ev.H*hi, gp.Pos)
		}
		lo, hi = ky.Support()
		if gp.Pos.Y+ev.H*lo < -1e-9 || gp.Pos.Y+ev.H*hi > 1+1e-9 {
			t.Fatalf("y-support [%v, %v] escapes domain for point %v",
				gp.Pos.Y+ev.H*lo, gp.Pos.Y+ev.H*hi, gp.Pos)
		}
	}
}
