package core

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// expectBitwiseEqual fails unless two operators are bitwise identical as
// expanded CSR: same permutation, same row spans, same column indices,
// and value-for-value identical float bit patterns (no tolerance).
func expectBitwiseEqual(t *testing.T, label string, got, want *operator.Operator) {
	t.Helper()
	g, w := got.Expand(), want.Expand()
	if g.Rows != w.Rows || g.Cols != w.Cols || g.BasisN != w.BasisN {
		t.Fatalf("%s: shape (%d,%d,%d) != (%d,%d,%d)", label, g.Rows, g.Cols, g.BasisN, w.Rows, w.Cols, w.BasisN)
	}
	if len(g.Perm) != len(w.Perm) {
		t.Fatalf("%s: perm len %d != %d", label, len(g.Perm), len(w.Perm))
	}
	for i := range g.Perm {
		if g.Perm[i] != w.Perm[i] {
			t.Fatalf("%s: perm[%d] = %d != %d", label, i, g.Perm[i], w.Perm[i])
		}
	}
	for r := 0; r < g.Rows; r++ {
		if g.RowPtr[r] != w.RowPtr[r] || g.RowPtr[r+1] != w.RowPtr[r+1] {
			t.Fatalf("%s: row %d span [%d,%d) != [%d,%d)", label, r, g.RowPtr[r], g.RowPtr[r+1], w.RowPtr[r], w.RowPtr[r+1])
		}
		for k := g.RowPtr[r]; k < g.RowPtr[r+1]; k++ {
			if g.ColInd[k] != w.ColInd[k] {
				t.Fatalf("%s: row %d entry %d col %d != %d", label, r, k-g.RowPtr[r], g.ColInd[k], w.ColInd[k])
			}
			if math.Float64bits(g.Val[k]) != math.Float64bits(w.Val[k]) {
				t.Fatalf("%s: row %d entry %d val %x != %x (%.17g vs %.17g)",
					label, r, k-g.RowPtr[r], math.Float64bits(g.Val[k]), math.Float64bits(w.Val[k]), g.Val[k], w.Val[k])
			}
		}
	}
}

func checkCongruenceStats(t *testing.T, label string, op *operator.Operator) *operator.CongruenceStats {
	t.Helper()
	cs := op.Congruence
	if cs == nil {
		t.Fatalf("%s: congruent assembly did not record CongruenceStats", label)
	}
	if !op.TemplateAware {
		t.Fatalf("%s: congruent assembly did not mark the operator template-aware", label)
	}
	if cs.RowsIntegrated+cs.RowsStamped != cs.Rows {
		t.Fatalf("%s: integrated %d + stamped %d != rows %d", label, cs.RowsIntegrated, cs.RowsStamped, cs.Rows)
	}
	if cs.Rows != op.Rows {
		t.Fatalf("%s: stats rows %d != operator rows %d", label, cs.Rows, op.Rows)
	}
	return cs
}

// The tentpole property: template-aware assembly is bitwise identical to
// naive assembly on dyadic structured meshes — at every order, boundary
// treatment, and worker count — while stamping most rows without
// quadrature.
func TestCongruentMatchesNaiveBitwiseDyadic(t *testing.T) {
	m := mesh.Structured(4)
	for _, boundary := range []Boundary{Periodic, OneSided} {
		for p := 1; p <= 3; p++ {
			ev := buildEvaluator(t, m, p, assembleTestField, Options{Boundary: boundary, Workers: 4})
			naive, err := ev.AssembleOperator(AssembleOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				label := boundaryLabel(boundary) + "/P" + string(rune('0'+p)) + "/w" + string(rune('0'+workers))
				cong, err := ev.AssembleOperator(AssembleOpts{Workers: workers, Congruence: CongruenceTemplate})
				if err != nil {
					t.Fatalf("%s: congruent assemble: %v", label, err)
				}
				expectBitwiseEqual(t, label, cong, naive)
				cs := checkCongruenceStats(t, label, cong)
				// Periodic structured meshes are fully translation
				// invariant, so exact classes must form and stamp. On
				// one-sided boundaries every point of this small mesh gets
				// its own kernel shift, so rows may legitimately stay
				// singletons; demotions are the verification tier
				// rejecting near-congruent (ulp-rounded) attachments and
				// are fine — bitwise identity above is the contract.
				if boundary == Periodic && cs.RowsStamped == 0 {
					t.Errorf("%s: no rows stamped on a periodic structured mesh", label)
				}
			}
		}
	}
}

func boundaryLabel(b Boundary) string {
	if b == Periodic {
		return "periodic"
	}
	return "one-sided"
}

// On a periodic structured mesh the interior is fully translation
// invariant: the stamp rate should be high (the acceptance target assumes
// >60% shared rows at P2), and the emitted operator should carry an
// assembly-time TemplateSet without any Templatize rescan.
func TestCongruentStampRateStructured(t *testing.T) {
	m := mesh.Structured(16)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	op, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate})
	if err != nil {
		t.Fatal(err)
	}
	cs := checkCongruenceStats(t, "structured-16/P2", op)
	if rate := float64(cs.RowsStamped) / float64(cs.Rows); rate < 0.6 {
		t.Errorf("stamp rate %.2f < 0.60 on periodic structured 16x16 (stamped %d of %d)", rate, cs.RowsStamped, cs.Rows)
	}
	if cs.ProbeRows == 0 || !cs.ProbeCongruent {
		t.Errorf("probe should detect congruence on a structured mesh: %+v", cs)
	}
	if op.Tpl == nil {
		t.Error("congruent assembly on a structured mesh emitted no TemplateSet")
	}
	if err := op.ValidateTemplates(); err != nil {
		t.Errorf("assembly-emitted templates invalid: %v", err)
	}
	// Satellite: Templatize must be a no-op on template-aware operators —
	// same object back, no rescan.
	if op.Templatize() != op {
		t.Error("Templatize re-scanned a template-aware operator")
	}
}

// Jittered meshes break exact congruence: the quantised prefilter may
// still group rows, but verification must catch every non-congruent
// member and demote it, keeping the result bitwise equal to naive
// assembly and within 1e-12 of direct per-point evaluation.
func TestCongruentJitteredDemotes(t *testing.T) {
	m := mesh.JitteredStructured(6, 0.3, 1)
	for _, boundary := range []Boundary{Periodic, OneSided} {
		ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: boundary, Workers: 4})
		naive, err := ev.AssembleOperator(AssembleOpts{})
		if err != nil {
			t.Fatal(err)
		}
		cong, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate})
		if err != nil {
			t.Fatal(err)
		}
		label := "jittered/" + boundaryLabel(boundary)
		expectBitwiseEqual(t, label, cong, naive)
		checkCongruenceStats(t, label, cong)

		direct, err := ev.RunPerPoint(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cong.Apply(ev.Field)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, direct.Solution); d > 1e-12 {
			t.Errorf("%s: congruent operator vs direct eval: max diff %.3e", label, d)
		}
	}
}

// On a large jittered mesh the congruence probe must detect that the
// sample has no repeated signatures and fall back to the naive schedule —
// zero classes, every row integrated, bitwise-identical output — so the
// congruence path's overhead on non-congruent meshes is the probe alone.
func TestCongruentProbeFallsBackJittered(t *testing.T) {
	m := mesh.JitteredStructured(12, 0.3, 2)
	ev := buildEvaluator(t, m, 1, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	naive, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cong, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate})
	if err != nil {
		t.Fatal(err)
	}
	expectBitwiseEqual(t, "probe-fallback", cong, naive)
	cs := checkCongruenceStats(t, "probe-fallback", cong)
	if cs.ProbeRows == 0 {
		t.Fatalf("probe did not run on %d rows", cs.Rows)
	}
	if cs.ProbeCongruent {
		t.Errorf("probe claimed congruence on a heavily jittered mesh: %+v", cs)
	}
	if cs.Classes != 0 || cs.RowsStamped != 0 || cs.RowsIntegrated != cs.Rows {
		t.Errorf("fallback should integrate every row: %+v", cs)
	}
}

// A deliberately catastrophic quantum collapses every row of a jittered
// mesh into a handful of prefilter buckets — maximal collision pressure.
// False sharing must still be impossible: every stamped or verified row
// is gated by a bitwise check, so the output stays identical to naive
// assembly no matter how bad the prefilter is.
func TestCongruentCoarseQuantumNoFalseSharing(t *testing.T) {
	m := mesh.JitteredStructured(5, 0.25, 7)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	naive, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, quantum := range []float64{1e-3, 1.0, 1e6} {
		cong, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigQuantum: quantum})
		if err != nil {
			t.Fatal(err)
		}
		expectBitwiseEqual(t, "coarse-quantum", cong, naive)
		checkCongruenceStats(t, "coarse-quantum", cong)
	}
}

// Custom query points (non-grid positions) run through the same path.
func TestCongruentCustomPoints(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	pts := make([]geom.Point, 0, 48)
	for i := 0; i < 48; i++ {
		pts = append(pts, geom.Pt(
			math.Mod(0.17+0.61803398875*float64(i), 1),
			math.Mod(0.31+0.7548776662*float64(i), 1),
		))
	}
	naive, err := ev.AssembleOperator(AssembleOpts{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	cong, err := ev.AssembleOperator(AssembleOpts{Points: pts, Congruence: CongruenceTemplate})
	if err != nil {
		t.Fatal(err)
	}
	expectBitwiseEqual(t, "custom-points", cong, naive)
}

// Congruence detection needs the per-point schedule; per-element assembly
// interleaves rows and cannot stamp them.
func TestCongruentRejectsPerElement(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, assembleTestField, Options{Workers: 2})
	if _, err := ev.AssembleOperator(AssembleOpts{Scheme: PerElement, Congruence: CongruenceTemplate}); err == nil {
		t.Error("per-element + congruence should be rejected")
	}
	if _, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigQuantum: -1}); err == nil {
		t.Error("negative signature quantum should be rejected")
	}
}

// Fuzz the signature quantiser: whatever bucket geometry the quantum
// induces — collapsing everything together or splitting everything apart —
// verification must keep template-aware assembly bitwise identical to
// naive assembly. Seeds cover the default, coarse collision-heavy, and
// absurd quanta on both structured and jittered meshes.
func FuzzSignatureQuantum(f *testing.F) {
	f.Add(0.0, 0.0, int64(1))
	f.Add(1.0/(1<<30), 0.2, int64(2))
	f.Add(0.5, 0.3, int64(3))
	f.Add(1e9, 0.1, int64(4))
	f.Add(1e-12, 0.25, int64(5))

	type cached struct {
		ev    *Evaluator
		naive *operator.Operator
	}
	cache := map[int64]*cached{}

	f.Fuzz(func(t *testing.T, quantum, jitter float64, seed int64) {
		if math.IsNaN(quantum) || math.IsInf(quantum, 0) || quantum < 0 {
			t.Skip()
		}
		if math.IsNaN(jitter) || jitter < 0 || jitter > 0.4 {
			jitter = math.Mod(math.Abs(jitter), 0.4)
			if math.IsNaN(jitter) {
				jitter = 0
			}
		}
		key := seed%4 + int64(jitter*1e6)%97*4
		c := cache[key]
		if c == nil {
			m := mesh.JitteredStructured(4, jitter, seed)
			ev := buildFuzzEvaluator(t, m)
			naive, err := ev.AssembleOperator(AssembleOpts{})
			if err != nil {
				t.Fatal(err)
			}
			c = &cached{ev: ev, naive: naive}
			cache[key] = c
		}
		cong, err := c.ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigQuantum: quantum})
		if err != nil {
			t.Fatal(err)
		}
		expectBitwiseEqual(t, "fuzz", cong, c.naive)
	})
}

func buildFuzzEvaluator(t *testing.T, m *mesh.Mesh) *Evaluator {
	t.Helper()
	return buildEvaluator(t, m, 1, assembleTestField, Options{Boundary: Periodic, Workers: 2})
}
