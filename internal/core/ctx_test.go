package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func ctxTestEvaluator(t *testing.T, n int) *Evaluator {
	t.Helper()
	m := mesh.Structured(n)
	f := dg.Project(m, 1, func(p geom.Point) float64 {
		return math.Sin(2 * math.Pi * p.X)
	}, 4)
	ev, err := NewEvaluator(f, Options{P: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	ev := ctxTestEvaluator(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sch := range []Scheme{PerPoint, PerElement} {
		if _, err := ev.RunCtx(ctx, sch, 4); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: RunCtx on cancelled ctx = %v, want context.Canceled", sch, err)
		}
	}
	if _, err := ev.RunPerElementPipelinedCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pipelined: RunCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestRunCtxCancelMidFlight(t *testing.T) {
	ev := ctxTestEvaluator(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from a goroutine as soon as the run starts making progress.
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	close(started)
	_, err := ev.RunCtx(ctx, PerPoint, 64)
	// Either the run beat the cancel (nil) or it observed it; never a
	// different error.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight cancel: err = %v", err)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	ev := ctxTestEvaluator(t, 6)
	direct, err := ev.Run(PerElement, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := ev.RunCtx(context.Background(), PerElement, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Solution {
		if direct.Solution[i] != viaCtx.Solution[i] {
			t.Fatalf("solution[%d] differs: %v vs %v", i, direct.Solution[i], viaCtx.Solution[i])
		}
	}
}

// Tiling edge cases: the degenerate single-patch tiling (overhead exactly
// 1.0) and more patches than elements (empty patches) must both reproduce
// the untiled per-point solution through the scatter + reduce path.
func TestPerElementTilingEdgesMatchPerPoint(t *testing.T) {
	ev := ctxTestEvaluator(t, 4)
	ref, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, ev.Mesh.NumTris() + 7} {
		tl := ev.NewTiling(k)
		if k == 1 && tl.Overhead() != 1.0 {
			t.Fatalf("k=1 tiling overhead = %v, want exactly 1.0", tl.Overhead())
		}
		res, err := ev.RunPerElement(tl)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := range ref.Solution {
			if d := math.Abs(res.Solution[i] - ref.Solution[i]); d > 1e-10 {
				t.Fatalf("k=%d: solution[%d] differs from untiled by %g", k, i, d)
			}
		}
	}
}
