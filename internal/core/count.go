package core

import "unstencil/internal/geom"

// CountIntersectionTests counts the candidate (stencil, element) pairs each
// scheme examines — the paper's Table 1 metric — without performing any
// clipping or integration, so it runs at full paper scale (1024k triangles)
// in seconds. The count equals what Result.Total.IntersectionTests reports
// after a full run of the same scheme.
func (ev *Evaluator) CountIntersectionTests(scheme Scheme) uint64 {
	switch scheme {
	case PerPoint:
		return ev.countPerPointTests()
	case PerElement:
		return ev.countPerElementTests()
	default:
		return 0
	}
}

func (ev *Evaluator) countPerPointTests() uint64 {
	lo, hi := ev.Kernel.Support()
	var total uint64
	for i := range ev.Points {
		pos := ev.Points[i].Pos
		supp := geom.Box(pos.X+ev.H*lo, pos.Y+ev.H*lo, pos.X+ev.H*hi, pos.Y+ev.H*hi)
		ev.forEachShift(supp, func(dx, dy int) {
			box := supp.Translate(geom.Pt(float64(-dx), float64(-dy)))
			total += uint64(ev.elemGrid.CountInBox(box, 1))
		})
	}
	return total
}

func (ev *Evaluator) countPerElementTests() uint64 {
	var total uint64
	for e := range ev.elemBounds {
		box := ev.elemBounds[e].Pad(ev.influencePad())
		ev.forEachShift(box, func(dx, dy int) {
			qbox := box.Translate(geom.Pt(float64(-dx), float64(-dy)))
			total += uint64(ev.pointGrid.CountInBox(qbox, 0))
		})
	}
	return total
}
