package core

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

func parallelTestField(p geom.Point) float64 {
	return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
}

// parallelTestPositions returns a deterministic spread of query positions
// well inside the unit domain.
func parallelTestPositions(n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		// Low-discrepancy-ish lattice: golden-ratio rotations.
		x = math.Mod(x+0.6180339887498949, 1)
		y = math.Mod(y+0.7548776662466927, 1)
		pts[i] = geom.Pt(0.05+0.9*x, 0.05+0.9*y)
	}
	return pts
}

// TestEvalBatchMatchesEvalAt pins EvalBatch's contract: values bit-identical
// to a sequential EvalAt sweep, and returned counters equal to the sum the
// sequential sweep accumulates.
func TestEvalBatchMatchesEvalAt(t *testing.T) {
	m := mesh.Structured(8)
	ev := buildEvaluator(t, m, 2, parallelTestField, Options{Workers: 4})
	pts := parallelTestPositions(57)

	got, counters, err := ev.EvalBatch(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("EvalBatch returned %d values for %d positions", len(got), len(pts))
	}

	// Independent evaluator for the sequential sweep; its scratch worker
	// accumulates counters across calls, giving the sequential sum.
	ref := buildEvaluator(t, m, 2, parallelTestField, Options{Workers: 1})
	for i, pos := range pts {
		want, err := ref.EvalAt(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("position %d: EvalBatch %v != EvalAt %v (diff %g)",
				i, got[i], want, got[i]-want)
		}
	}
	if counters != ref.scratch.counters {
		t.Errorf("EvalBatch counters = %+v, want sequential sum %+v",
			counters, ref.scratch.counters)
	}
	if counters.IntersectionTests == 0 || counters.Regions == 0 {
		t.Errorf("EvalBatch counters implausibly empty: %+v", counters)
	}
}

// TestEvalBatchWorkerSweep checks the batch is schedule-independent: any
// worker count gives bit-identical values and counters.
func TestEvalBatchWorkerSweep(t *testing.T) {
	ev := buildEvaluator(t, mesh.Structured(6), 1, parallelTestField, Options{Workers: 1})
	pts := parallelTestPositions(23)
	base, baseCtr, err := ev.EvalBatch(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		got, ctr, err := ev.EvalBatch(pts, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Errorf("workers=%d position %d: %v != %v", w, i, got[i], base[i])
			}
		}
		if ctr != baseCtr {
			t.Errorf("workers=%d counters %+v != workers=1 %+v", w, ctr, baseCtr)
		}
	}
}

// TestEvalBatchEmpty covers the trivial input.
func TestEvalBatchEmpty(t *testing.T) {
	ev := buildEvaluator(t, mesh.Structured(4), 1, parallelTestField, Options{Workers: 2})
	out, ctr, err := ev.EvalBatch(nil, 4)
	if err != nil || len(out) != 0 || ctr.IntersectionTests != 0 {
		t.Errorf("EvalBatch(nil) = (%v, %+v, %v), want empty", out, ctr, err)
	}
}

// TestParallelRunsBitIdentical is the PR's determinism pin: every scheme's
// parallel execution must produce solutions bit-identical to the
// single-worker run, because per-unit outputs land in disjoint locations and
// within-unit summation order is fixed. Runs under -race in CI with
// workers=2.
func TestParallelRunsBitIdentical(t *testing.T) {
	m := mesh.Structured(10)
	ev := buildEvaluator(t, m, 2, parallelTestField, Options{Workers: 1})
	tl := ev.NewTiling(8)

	serialPoint, err := ev.RunPerPoint(8)
	if err != nil {
		t.Fatal(err)
	}
	serialElem, err := ev.RunPerElement(tl)
	if err != nil {
		t.Fatal(err)
	}
	serialPipe, err := ev.RunPerElementPipelined(tl)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4} {
		ev.Opt.Workers = workers
		for _, tc := range []struct {
			name   string
			serial *Result
			run    func() (*Result, error)
		}{
			{"per-point", serialPoint, func() (*Result, error) { return ev.RunPerPoint(8) }},
			{"per-element", serialElem, func() (*Result, error) { return ev.RunPerElement(tl) }},
			{"pipelined", serialPipe, func() (*Result, error) { return ev.RunPerElementPipelined(tl) }},
		} {
			res, err := tc.run()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			for i := range res.Solution {
				if res.Solution[i] != tc.serial.Solution[i] {
					t.Fatalf("%s workers=%d: solution[%d] = %v, serial %v (diff %g)",
						tc.name, workers, i, res.Solution[i], tc.serial.Solution[i],
						res.Solution[i]-tc.serial.Solution[i])
				}
			}
			if res.Total != tc.serial.Total {
				t.Errorf("%s workers=%d: total counters %+v != serial %+v",
					tc.name, workers, res.Total, tc.serial.Total)
			}
		}
	}
}

// TestPipelinedAllocs guards the pipelined executor's allocation churn: with
// a warm evaluator and tiling, a run may allocate the Result (solution +
// per-block counters), the wave buckets, and the dispatch goroutines — but
// not fresh scratch workers per colour wave, which is what the worker pool
// exists to prevent. The bound is deliberately loose (goroutine spawns and
// map-based colouring bookkeeping vary) yet far below the cost of one
// worker's basis/clipper scratch per wave.
func TestPipelinedAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	ev := buildEvaluator(t, mesh.Structured(8), 1, parallelTestField, Options{Workers: 2})
	tl := ev.NewTiling(6)
	// Warm: colouring memoised, worker pool populated.
	if _, err := ev.RunPerElementPipelined(tl); err != nil {
		t.Fatal(err)
	}
	colors := tl.Colors()
	numColors := 0
	for _, c := range colors {
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ev.RunPerElementPipelined(tl); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: result + solution + blocks + wave buckets + per-wave dispatch
	// (waitgroup-driven goroutines, 2 workers each).
	budget := float64(16 + numColors*8)
	if allocs > budget {
		t.Errorf("pipelined run allocated %.0f objects, budget %.0f (numColors=%d)",
			allocs, budget, numColors)
	}
}

// Argument normalization: workers <= 0 falls back to Opt.Workers and the
// values are unchanged by the fallback.
func TestEvalBatchWorkersNormalized(t *testing.T) {
	ev := buildEvaluator(t, mesh.Structured(4), 1, parallelTestField, Options{Workers: 3})
	pts := parallelTestPositions(17)
	want, wantCtr, err := ev.EvalBatch(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, -5} {
		got, ctr, err := ev.EvalBatch(pts, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: position %d differs from workers=1", w, i)
			}
		}
		if ctr != wantCtr {
			t.Errorf("workers=%d: counters %+v != sequential %+v", w, ctr, wantCtr)
		}
	}
}

// An empty (but non-nil) position slice returns an empty result without
// touching the worker pool, for any workers argument.
func TestEvalBatchEmptyNonNil(t *testing.T) {
	ev := buildEvaluator(t, mesh.Structured(4), 1, parallelTestField, Options{Workers: 2})
	for _, w := range []int{-1, 0, 1, 8} {
		out, ctr, err := ev.EvalBatch([]geom.Point{}, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != 0 {
			t.Fatalf("workers=%d: got %d values for empty input", w, len(out))
		}
		if ctr != (metrics.Counters{}) {
			t.Errorf("workers=%d: empty batch reported work: %+v", w, ctr)
		}
	}
}

// Positions outside the unit square: the periodic evaluator wraps them
// (agreeing with EvalAt on the same out-of-range position), and a batch
// mixing interior and exterior points must behave exactly like the
// sequential sweep — including whether it errors — under both boundary
// treatments.
func TestEvalBatchOutsideMesh(t *testing.T) {
	m := mesh.Structured(4)
	outside := []geom.Point{
		geom.Pt(1.3, 0.5),
		geom.Pt(-0.2, 0.7),
		geom.Pt(0.4, 2.1),
		geom.Pt(-1.6, -0.9),
	}
	mixed := append(parallelTestPositions(9), outside...)

	for _, boundary := range []Boundary{Periodic, OneSided} {
		ev := buildEvaluator(t, m, 1, parallelTestField, Options{Boundary: boundary, Workers: 4})
		var wantVals []float64
		var wantErr error
		for _, p := range mixed {
			v, err := ev.EvalAt(p)
			if err != nil {
				wantErr = err
				break
			}
			wantVals = append(wantVals, v)
		}
		got, _, err := ev.EvalBatch(mixed, 4)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("%v: sequential sweep errors (%v) but batch succeeded", boundary, wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%v: %v", boundary, err)
		}
		for i := range got {
			if got[i] != wantVals[i] {
				t.Fatalf("%v: position %d (%v): batch %v != EvalAt %v",
					boundary, i, mixed[i], got[i], wantVals[i])
			}
		}
		if boundary == Periodic {
			// Wrapping: the out-of-range tail must equal the wrapped
			// in-range evaluations.
			for i, p := range outside {
				wrapped := geom.Pt(math.Mod(math.Mod(p.X, 1)+1, 1), math.Mod(math.Mod(p.Y, 1)+1, 1))
				wv, err := ev.EvalAt(wrapped)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(got[len(mixed)-len(outside)+i] - wv); d > 1e-11 {
					t.Errorf("periodic: %v vs wrapped %v differ by %v", p, wrapped, d)
				}
			}
		}
	}
}
