package core

import (
	"sync"
	"testing"

	"unstencil/internal/mesh"
	"unstencil/internal/operator"
)

// Assembly emits the blocked layout by default — rowAccum always produces
// full aligned element blocks — and the blocked operator is bitwise equal
// to an explicit scalar-CSR assembly of the same evaluator, templates and
// all, on both congruence modes.
func TestAssembleDefaultLayoutBSR(t *testing.T) {
	for name, m := range map[string]*mesh.Mesh{
		"structured": mesh.Structured(6),
		"jittered":   mesh.JitteredStructured(5, 0.2, 3),
	} {
		for _, cong := range []CongruenceMode{CongruenceNone, CongruenceTemplate} {
			ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
			bsr, err := ev.AssembleOperator(AssembleOpts{Congruence: cong})
			if err != nil {
				t.Fatal(err)
			}
			csr, err := ev.AssembleOperator(AssembleOpts{Congruence: cong, Layout: operator.LayoutCSR})
			if err != nil {
				t.Fatal(err)
			}
			label := name + "/" + string(rune('0'+int(cong)))
			if bsr.BSR == nil {
				t.Fatalf("%s: default assembly did not emit the blocked layout", label)
			}
			if csr.BSR != nil {
				t.Fatalf("%s: LayoutCSR assembly emitted a blocked index", label)
			}
			if bsr.Stats().Layout != "bsr" || csr.Stats().Layout != "csr" {
				t.Fatalf("%s: stats layouts %q/%q", label, bsr.Stats().Layout, csr.Stats().Layout)
			}
			if bsr.IndexBytesSaved() <= 0 {
				t.Fatalf("%s: blocked layout saved %d index bytes", label, bsr.IndexBytesSaved())
			}
			expectBitwiseEqual(t, label, bsr, csr)
		}
	}
}

// The adaptive probe commits after its first stage on a structured mesh
// (sharing is everywhere in the sample) and never pays more than the final
// stage on a jittered one — the escalation is what bounds the congruence
// path's overhead on non-congruent meshes.
func TestAdaptiveProbeStages(t *testing.T) {
	ev := buildEvaluator(t, mesh.Structured(16), 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	op, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate})
	if err != nil {
		t.Fatal(err)
	}
	cs := checkCongruenceStats(t, "structured", op)
	if !cs.ProbeCongruent {
		t.Fatalf("structured mesh probe did not detect congruence: %+v", cs)
	}
	if cs.ProbeRows != probeMinSample {
		t.Errorf("structured mesh probe hashed %d rows, want early commit at %d", cs.ProbeRows, probeMinSample)
	}

	jev := buildEvaluator(t, mesh.JitteredStructured(12, 0.3, 2), 1, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	jop, err := jev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate})
	if err != nil {
		t.Fatal(err)
	}
	jcs := checkCongruenceStats(t, "jittered", jop)
	if jcs.ProbeCongruent {
		t.Fatalf("jittered mesh probe claimed congruence: %+v", jcs)
	}
	if jcs.ProbeRows < probeMinSample || jcs.ProbeRows > probeSampleRows {
		t.Errorf("jittered mesh probe hashed %d rows, want within [%d, %d]",
			jcs.ProbeRows, probeMinSample, probeSampleRows)
	}
}

// memSigCache is a test double for the server's signature cache: a plain
// locked map satisfying core.SignatureCache.
type memSigCache struct {
	mu sync.Mutex
	m  map[[4]uint64][2]uint64
}

func newMemSigCache() *memSigCache {
	return &memSigCache{m: make(map[[4]uint64][2]uint64)}
}

func (c *memSigCache) key(xb, yb uint64, kx, ky int64) [4]uint64 {
	return [4]uint64{xb, yb, uint64(kx), uint64(ky)}
}

func (c *memSigCache) Lookup(xb, yb uint64, kx, ky int64) (uint64, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[c.key(xb, yb, kx, ky)]
	return v[0], v[1], ok
}

func (c *memSigCache) Store(xb, yb uint64, kx, ky int64, exact, quant uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[c.key(xb, yb, kx, ky)] = [2]uint64{exact, quant}
}

// A shared signature cache removes the canonicalisation cost of repeat
// assemblies — the second identical assembly answers every hash from the
// cache — without perturbing a single bit of the output, including across
// boundary variants sharing one cache (distinct kernel-class keys keep
// their entries apart).
func TestSignatureCacheSharing(t *testing.T) {
	m := mesh.Structured(8)
	cache := newMemSigCache()
	for _, boundary := range []Boundary{Periodic, OneSided} {
		ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: boundary, Workers: 4})
		naive, err := ev.AssembleOperator(AssembleOpts{})
		if err != nil {
			t.Fatal(err)
		}
		label := boundaryLabel(boundary)
		first, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		cs := checkCongruenceStats(t, label+"/cold", first)
		if cs.SigCacheLookups == 0 {
			t.Fatalf("%s: assembly with a cache recorded no lookups", label)
		}
		expectBitwiseEqual(t, label+"/cold", first, naive)

		second, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		wcs := checkCongruenceStats(t, label+"/warm", second)
		if wcs.SigCacheHits != wcs.SigCacheLookups {
			t.Errorf("%s: warm assembly hit %d of %d lookups, want all",
				label, wcs.SigCacheHits, wcs.SigCacheLookups)
		}
		if wcs.SigCacheHits == 0 {
			t.Errorf("%s: warm assembly recorded no cache hits", label)
		}
		expectBitwiseEqual(t, label+"/warm", second, naive)
	}
}

// A cache poisoned with colliding hashes must never corrupt the output:
// wrong hash pairs can only misgroup rows, and the bitwise certification
// tier demotes every bad grouping.
func TestSignatureCachePoisonedStaysBitwise(t *testing.T) {
	m := mesh.JitteredStructured(5, 0.25, 9)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: Periodic, Workers: 4})
	naive, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	poisoned := &poisonSigCache{}
	cong, err := ev.AssembleOperator(AssembleOpts{Congruence: CongruenceTemplate, SigCache: poisoned})
	if err != nil {
		t.Fatal(err)
	}
	expectBitwiseEqual(t, "poisoned-cache", cong, naive)
}

// poisonSigCache answers every lookup with the same colliding hash pair —
// the worst possible cache.
type poisonSigCache struct{}

func (poisonSigCache) Lookup(_, _ uint64, _, _ int64) (uint64, uint64, bool) {
	return 0xdeadbeef, 0xdeadbeef, true
}

func (poisonSigCache) Store(_, _ uint64, _, _ int64, _, _ uint64) {}
