package core

import (
	"math"
	"sync"

	"unstencil/internal/bspline"
)

// One-sided kernel construction solves a (2k+1)×(2k+1) LU moment system, so
// building a fresh kernel per candidate (element, point) pair — as the
// per-element scheme's inner loop would otherwise do — turns a cheap sweep
// into a superlinear kernel-construction workload. kernelCache bounds that
// cost to amortised O(1): node-lattice shifts are quantised onto a fixed
// lattice and the resulting kernels memoised.
//
// Quantisation is sound because a one-sided SIAC kernel satisfies the same
// moment conditions — and therefore reproduces polynomials up to degree
// 2k — for *any* node shift; the shift only positions the support. Rounding
// is always away from zero (toward the interior), so the quantised support
// never crosses the boundary the exact shift was computed to avoid; the far
// end moves inward by at most shiftQuantum·h, which is harmless while the
// support fits in the domain at all.

const (
	// shiftQuantum is the node-lattice shift granularity in units of h.
	// Kernel coefficients vary smoothly with shift, so neighbouring
	// evaluation points quantised to the same bucket receive kernels that
	// are exactly valid for a support at most one quantum away from the
	// minimal one.
	shiftQuantum = 1.0 / 4096
	// kernelCacheCap bounds the cache. Shifts live in
	// (−(3k+1)/2, (3k+1)/2), so at most (3k+1)·4096 buckets exist per
	// axis-direction pair; the cap keeps pathological sweeps bounded
	// anyway.
	kernelCacheCap = 8192
)

// kernelCache is a bounded, shift-quantised memo of one-sided kernels for a
// fixed polynomial order. Safe for concurrent use.
type kernelCache struct {
	k  int
	mu sync.RWMutex
	m  map[int64]*bspline.Kernel
}

func newKernelCache(k int) *kernelCache {
	return &kernelCache{k: k, m: make(map[int64]*bspline.Kernel)}
}

// quantiseShift rounds shift away from zero onto the quantum lattice and
// returns the quantised value with its integer bucket key. shift must be
// non-zero (zero-shift callers use the symmetric kernel directly).
func quantiseShift(shift float64) (float64, int64) {
	var q float64
	if shift > 0 {
		q = math.Ceil(shift / shiftQuantum)
	} else {
		q = math.Floor(shift / shiftQuantum)
	}
	return q * shiftQuantum, int64(q)
}

// get returns the kernel for the quantised shift, building and memoising it
// on first use.
func (c *kernelCache) get(shift float64) (*bspline.Kernel, error) {
	qs, key := quantiseShift(shift)
	c.mu.RLock()
	ker := c.m[key]
	c.mu.RUnlock()
	if ker != nil {
		return ker, nil
	}
	ker, err := bspline.NewOneSided(c.k, qs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if existing, ok := c.m[key]; ok {
		ker = existing // another worker won the race; keep one canonical kernel
	} else {
		if len(c.m) >= kernelCacheCap {
			// Bounded eviction: drop everything. Refills are rare (the
			// reachable key space is small) and cost one LU solve each,
			// which is exactly the uncached behaviour this cache removes.
			clear(c.m)
		}
		c.m[key] = ker
	}
	c.mu.Unlock()
	return ker, nil
}

// size reports the number of memoised kernels (for tests and diagnostics).
func (c *kernelCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
