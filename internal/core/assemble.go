package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"unstencil/internal/geom"
	"unstencil/internal/metrics"
	"unstencil/internal/operator"
	"unstencil/internal/spatial"
)

// This file assembles the SIAC post-processing step as a sparse operator
// (internal/operator): instead of contracting quadrature samples with the
// field's modal coefficients, integrateWeights accumulates the per-basis-
// function weights W[pt][e][m] of Eq. (2), which depend only on
// (mesh, grid, kernel, h) — never on the coefficients. Applying the frozen
// CSR to a coefficient vector reproduces RunPerPoint/RunPerElement to
// rounding, so for workloads that post-process many fields on one mesh
// (every time step of the dg/advect solver, or a resident service's warm
// mesh) all candidate finding, clipping, fan triangulation and kernel
// Horner evaluation is paid once and amortised.

// RowOrder selects how assembled CSR rows are laid out in memory.
type RowOrder int

const (
	// RowMorton (the default) stores rows in quadtree depth-first
	// (Z-order) sequence of their point positions, so consecutive rows of
	// the SpMV gather coefficient blocks of spatially nearby elements —
	// the cache-friendly layout internal/spatial's quadtree provides.
	RowMorton RowOrder = iota
	// RowNatural stores rows in point-index order.
	RowNatural
)

// AssembleOpts configure AssembleOperator. The zero value assembles the
// evaluation grid with the per-point scheme, Morton row order, and the
// evaluator's worker budget.
type AssembleOpts struct {
	// Scheme selects the assembly iteration order: PerPoint builds rows
	// independently (gather); PerElement walks elements under the
	// overlapped tiling with a two-stage reduction, so tiles stay the
	// unit of concurrency exactly as in the evaluation schemes.
	Scheme Scheme
	// Blocks is the patch count for per-element assembly (0 = Workers).
	// Per-point assembly dispatches rows directly and ignores it.
	Blocks int
	// Workers bounds assembly and the operator's default Apply
	// concurrency; 0 means the evaluator's Opt.Workers.
	Workers int
	// Points supplies custom row positions (e.g. a query batch) instead
	// of the evaluation grid. Custom rows require the per-point scheme:
	// the tiling's candidate structures only cover the grid.
	Points []geom.Point
	// RowOrder selects the CSR row layout (default RowMorton).
	RowOrder RowOrder
	// Congruence selects congruence-first assembly (per-point scheme
	// only): rows are grouped by geometric signature before any quadrature
	// runs, one representative per class is integrated, and provably
	// congruent rows are stamped from it (see signature.go). The default
	// assembles every row independently.
	Congruence CongruenceMode
	// SigQuantum overrides the signature quantisation step, in units of h
	// (0 = the sigQuantum default). Coarser quanta put more near-congruent
	// rows into shared prefilter buckets; correctness never depends on the
	// value — the fuzz tests sweep it. Negative is rejected.
	SigQuantum float64
	// Layout selects the frozen operator's storage layout. The zero value
	// is operator.LayoutBSR: assembly emits element-block runs directly and
	// the operator freezes into the blocked index (scalar CSR fallback when
	// basisN is 1). operator.LayoutCSR forces the scalar layout.
	Layout operator.Layout
	// SigCache, when non-nil, caches canonical signature hashes across
	// assemblies on the same mesh (congruence-first path only): rows whose
	// (position, kernel class) pair was hashed by an earlier assembly skip
	// the candidate walk and re-canonicalisation entirely. See
	// SignatureCache for the soundness contract.
	SigCache SignatureCache
}

// AssembleOperator builds the assembled post-processing operator for this
// evaluator's (mesh, grid, kernel, h) tuple. The operator is independent
// of the evaluator's field: any field of the same degree on the same mesh
// may be applied. Row weights are accumulated by the same candidate
// enumeration, clipping and exact sub-region quadrature the direct schemes
// use, so Apply agrees with RunPerPoint to rounding for symmetric and
// one-sided boundary configurations alike.
func (ev *Evaluator) AssembleOperator(opts AssembleOpts) (*operator.Operator, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = ev.Opt.Workers
	}
	basisN := ev.Field.Basis.N
	cols := ev.Mesh.NumTris() * basisN
	if int64(ev.Mesh.NumTris())*int64(basisN) > math.MaxInt32 {
		return nil, fmt.Errorf("core: operator column space %d×%d exceeds int32 indexing",
			ev.Mesh.NumTris(), basisN)
	}

	positions := opts.Points
	custom := positions != nil
	if !custom {
		positions = make([]geom.Point, len(ev.Points))
		for i, gp := range ev.Points {
			positions[i] = gp.Pos
		}
	}

	// Row-ordering pass: quadtree depth-first order is the Z curve, so
	// storage neighbours are spatial neighbours (see spatial.Quadtree.Order).
	var perm []int32
	if opts.RowOrder == RowMorton && len(positions) > 1 {
		perm = spatial.NewQuadtree(positions).Order()
	}

	start := time.Now()
	var (
		bld *operator.Builder
		ctr metrics.Counters
		err error
	)
	var stats *operator.CongruenceStats
	switch opts.Scheme {
	case PerPoint:
		if opts.Congruence == CongruenceTemplate {
			bld, ctr, stats, err = ev.assemblePerPointCongruent(positions, perm, workers, basisN, cols, opts.SigQuantum, opts.SigCache)
		} else {
			bld, ctr, err = ev.assemblePerPoint(positions, perm, workers, basisN, cols)
		}
	case PerElement:
		if custom {
			return nil, fmt.Errorf("core: per-element assembly requires the evaluation grid (custom points need PerPoint)")
		}
		if opts.Congruence != CongruenceNone {
			return nil, fmt.Errorf("core: congruence-first assembly requires the per-point scheme")
		}
		bld, ctr, err = ev.assemblePerElement(opts.Blocks, perm, workers, basisN, cols)
	default:
		return nil, fmt.Errorf("core: cannot assemble with scheme %v", opts.Scheme)
	}
	if err != nil {
		return nil, err
	}
	op := bld.FinishLayout(opts.Layout, perm, workers, opts.Scheme.String(), time.Since(start), ctr)
	op.Congruence = stats
	return op, nil
}

// rowAccum merges one row's (element → weights) contributions across
// periodic images and candidate visits. Per-goroutine scratch.
type rowAccum struct {
	basisN int
	elems  []int32
	idx    map[int32]int32
	w      []float64
}

func newRowAccum(basisN int) *rowAccum {
	return &rowAccum{basisN: basisN, idx: make(map[int32]int32)}
}

func (a *rowAccum) reset() {
	a.elems = a.elems[:0]
	a.w = a.w[:0]
	clear(a.idx)
}

// row returns the weight block of element e, creating a zeroed block on
// first touch.
func (a *rowAccum) row(e int32) []float64 {
	if i, ok := a.idx[e]; ok {
		return a.w[int(i)*a.basisN : (int(i)+1)*a.basisN]
	}
	i := int32(len(a.elems))
	a.idx[e] = i
	a.elems = append(a.elems, e)
	for j := 0; j < a.basisN; j++ {
		a.w = append(a.w, 0)
	}
	return a.w[int(i)*a.basisN : (int(i)+1)*a.basisN]
}

// add accumulates src into element e's block.
func (a *rowAccum) add(e int32, src []float64) {
	dst := a.row(e)
	for m := range dst {
		dst[m] += src[m]
	}
}

// flatten emits the accumulated row as ascending CSR columns. The sort is
// over the handful of contributing elements, so it is noise next to the
// quadrature that produced the weights.
func (a *rowAccum) flatten(cols []int32, vals []float64) ([]int32, []float64) {
	order := make([]int32, len(a.elems))
	copy(order, a.elems)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	cols, vals = cols[:0], vals[:0]
	for _, e := range order {
		blk := a.w[int(a.idx[e])*a.basisN : (int(a.idx[e])+1)*a.basisN]
		for m, v := range blk {
			cols = append(cols, e*int32(a.basisN)+int32(m))
			vals = append(vals, v)
		}
	}
	return cols, vals
}

// flattenBlocks emits the accumulated row in block form — one ascending
// element id per basisN-wide weight block, exactly the (elems, vals) pair
// Builder.SetRowBlocks takes. The values are appended in the identical
// order flatten would emit them, so the frozen row is the same under
// either layout.
func (a *rowAccum) flattenBlocks(elems []int32, vals []float64) ([]int32, []float64) {
	elems = append(elems[:0], a.elems...)
	sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
	vals = vals[:0]
	for _, e := range elems {
		vals = append(vals, a.w[int(a.idx[e])*a.basisN:(int(a.idx[e])+1)*a.basisN]...)
	}
	return elems, vals
}

// assemblePerPoint builds rows independently: each row enumerates its
// candidate elements exactly as evalAt does and accumulates weights.
// Rows are uniform units with disjoint outputs, so they are dispatched
// off a shared atomic counter (runDynamic) with pooled workers, and the
// result is bit-identical for every worker count.
func (ev *Evaluator) assemblePerPoint(positions []geom.Point, perm []int32, workers, basisN, cols int) (*operator.Builder, metrics.Counters, error) {
	n := len(positions)
	bld := operator.NewBuilder(n, cols, basisN)
	wks := ev.getWorkers(max(min(workers, n), 1))
	type rowScratch struct {
		acc  *rowAccum
		cols []int32
		vals []float64
	}
	scr := make([]rowScratch, len(wks))
	for i := range scr {
		scr[i].acc = newRowAccum(basisN)
	}
	var ec errCollector
	runDynamic(min(workers, n), n, func(w, r int) bool {
		wk, s := wks[w], &scr[w]
		pt := r
		if perm != nil {
			pt = int(perm[r])
		}
		if err := ev.assembleRow(positions[pt], wk, s.acc); err != nil {
			ec.set(err)
			return false
		}
		s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
		bld.SetRowBlocks(r, s.cols, s.vals)
		return true
	})
	var total metrics.Counters
	for _, wk := range wks {
		total.Add(&wk.counters)
	}
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, total, ec.err
	}
	return bld, total, nil
}

// assembleRow accumulates every candidate element's weight block for a
// stencil centred at pos, mirroring evalAt's enumeration (periodic images,
// hash-grid candidates, bounding-box rejection).
func (ev *Evaluator) assembleRow(pos geom.Point, wk *worker, acc *rowAccum) error {
	acc.reset()
	return ev.forEachRowCandidate(pos, wk, func(e int32, center geom.Point) {
		if ev.integrateWeights(center, e, wk) {
			wk.counters.TruePositives++
			acc.add(e, wk.wacc)
		}
	})
}

// forEachRowCandidate enumerates, in the deterministic order the assembly
// integrates them, every bounding-box-passing (periodic image, element)
// candidate pair of a stencil centred at pos. Both the integration pass
// (assembleRow) and the congruence signature pass walk candidates through
// this one enumerator, so a signature match certifies that the integration
// pass would visit translate-identical pairs in the identical sequence —
// the property row stamping relies on.
func (ev *Evaluator) forEachRowCandidate(pos geom.Point, wk *worker, visit func(e int32, center geom.Point)) error {
	kx, ky, err := ev.kernelsFor(pos)
	if err != nil {
		return err
	}
	wk.kx, wk.ky = kx, ky
	xlo, xhi := kx.Support()
	ylo, yhi := ky.Support()
	supp := geom.Box(
		pos.X+ev.H*xlo, pos.Y+ev.H*ylo,
		pos.X+ev.H*xhi, pos.Y+ev.H*yhi,
	)
	ev.forEachShift(supp, func(dx, dy int) {
		shift := geom.Pt(float64(dx), float64(dy))
		box := supp.Translate(shift.Scale(-1))
		center := pos.Sub(shift)
		wk.cand = ev.elemGrid.AppendInBox(wk.cand[:0], box, 1)
		for _, e := range wk.cand {
			wk.counters.IntersectionTests++
			wk.counters.Flops += metrics.FlopsPerTest
			if !ev.elemBounds[e].Intersects(box) {
				continue
			}
			visit(e, center)
		}
	})
	return nil
}

// assemblePerElement walks elements under the overlapped tiling: each
// patch accumulates (point, element) weight blocks into its own
// scratch-pad keyed by the tiling's slots, then a two-stage reduction
// merges the per-patch partials into CSR rows over the owned-point
// partition — tiles stay the unit of concurrency, dispatched on the
// work-stealing deques like the per-element evaluation scheme.
func (ev *Evaluator) assemblePerElement(blocks int, perm []int32, workers, basisN, cols int) (*operator.Builder, metrics.Counters, error) {
	if blocks < 1 {
		blocks = max(workers, 1)
	}
	t := ev.NewTiling(blocks)
	n := len(ev.Points)
	bld := operator.NewBuilder(n, cols, basisN)

	// Per-patch scratch-pads: one (elems, weights) pair per slot. Disjoint
	// write sets per patch, exactly like the partial-solution buffers.
	patchElems := make([][][]int32, t.K)
	patchW := make([][][]float64, t.K)
	for p := 0; p < t.K; p++ {
		patchElems[p] = make([][]int32, len(t.Slots[p]))
		patchW[p] = make([][]float64, len(t.Slots[p]))
	}

	dispatch := min(workers, t.K)
	wks := ev.getWorkers(max(dispatch, 1))
	var ec errCollector
	runStealing(strideSeed(t.K, dispatch), func(w, p int) bool {
		wk := wks[w]
		elems, wts := patchElems[p], patchW[p]
		for _, e := range t.PatchElems[p] {
			err := ev.assembleElement(e, wk, func(pt int32) {
				sl := t.Slot(p, pt)
				i := int32(-1)
				for j, fe := range elems[sl] {
					if fe == e {
						i = int32(j)
						break
					}
				}
				if i < 0 {
					i = int32(len(elems[sl]))
					elems[sl] = append(elems[sl], e)
					wts[sl] = append(wts[sl], make([]float64, basisN)...)
				}
				blk := wts[sl][int(i)*basisN : (int(i)+1)*basisN]
				for m := range blk {
					blk[m] += wk.wacc[m]
				}
			})
			if err != nil {
				ec.set(err)
				return false
			}
		}
		return true
	})
	var total metrics.Counters
	for _, wk := range wks {
		total.Add(&wk.counters)
	}
	ev.putWorkers(wks)
	if ec.err != nil {
		return nil, total, ec.err
	}

	// Storage-row index per point (inverse of perm).
	rowOf := make([]int32, n)
	if perm == nil {
		for i := range rowOf {
			rowOf[i] = int32(i)
		}
	} else {
		for r, pt := range perm {
			rowOf[pt] = int32(r)
		}
	}

	// Stage-two reduction over the owned-point partition: each patch's
	// reducer freezes exactly its owned rows, merging contributions from
	// every patch in ascending patch order — contention-free and
	// deterministic for any worker count, like tile.ReduceParallel.
	type redScratch struct {
		acc  *rowAccum
		cols []int32
		vals []float64
	}
	scr := make([]redScratch, max(dispatch, 1))
	for i := range scr {
		scr[i].acc = newRowAccum(basisN)
	}
	runDynamic(dispatch, t.K, func(w, p int) bool {
		s := &scr[w]
		for _, pt := range t.OwnedPoints(p) {
			s.acc.reset()
			for q := 0; q < t.K; q++ {
				sl := t.Slot(q, pt)
				if sl < 0 {
					continue
				}
				for j, e := range patchElems[q][sl] {
					s.acc.add(e, patchW[q][sl][j*basisN:(j+1)*basisN])
				}
			}
			s.cols, s.vals = s.acc.flattenBlocks(s.cols, s.vals)
			bld.SetRowBlocks(int(rowOf[pt]), s.cols, s.vals)
		}
		return true
	})
	return bld, total, nil
}

// assembleElement is processElement's weight-accumulating twin: it visits
// every candidate grid point of element e and, for each pair with a
// non-empty geometric intersection, leaves the pair's weight block in
// wk.wacc and hands the point to add.
func (ev *Evaluator) assembleElement(e int32, wk *worker, add func(pt int32)) error {
	bb := ev.elemBounds[e]
	box := bb.Pad(ev.influencePad())
	wk.counters.ScatteredLoads++
	var firstErr error
	ev.forEachShift(box, func(dx, dy int) {
		if firstErr != nil {
			return
		}
		s := geom.Pt(float64(-dx), float64(-dy))
		qbox := box.Translate(s)
		wk.cand = ev.pointGrid.AppendInBox(wk.cand[:0], qbox, 0)
		for _, pt := range wk.cand {
			wk.counters.IntersectionTests++
			wk.counters.Flops += metrics.FlopsPerTest
			pos := ev.Points[pt].Pos
			kx, ky, err := ev.kernelsFor(pos)
			if err != nil {
				firstErr = err
				return
			}
			wk.kx, wk.ky = kx, ky
			center := pos.Sub(s)
			xlo, xhi := kx.Support()
			ylo, yhi := ky.Support()
			supp := geom.Box(
				center.X+ev.H*xlo, center.Y+ev.H*ylo,
				center.X+ev.H*xhi, center.Y+ev.H*yhi,
			)
			if !supp.Intersects(bb) {
				continue
			}
			if ev.integrateWeights(center, e, wk) {
				wk.counters.TruePositives++
				add(pt)
			}
		}
	})
	return firstErr
}

// integrateWeights is integrate with the coefficient contraction removed:
// it accumulates, into wk.wacc, the per-basis-function weights
//
//	wacc[m] = (1/h²) Σ_{cells} Σ_{τ_n} Σ_q w_q · jac · K_x · K_y · φ_m(r_q, s_q)
//
// for element e against a stencil centred at center, using the same
// clipping, fan triangulation and fused per-sub-region affine maps as the
// direct path. It reports whether any sub-region was integrated (false
// leaves wk.wacc unspecified). Contracting the result with the element's
// modal coefficients reproduces integrate's value up to summation-order
// rounding.
//
// Unlike the direct path, every geometric quantity here is computed in
// stencil-local coordinates (the element translated by -center, kernel
// cells at exact offsets h·(blo+i) from the origin). The weights are
// translation-invariant in exact arithmetic, and working in local
// coordinates makes them translation-invariant in floating point too
// whenever the inputs are exact translates: two stencils whose element
// geometry differs by an exactly-representable shift see bitwise-identical
// local vertices and therefore produce bitwise-identical weight rows. That
// is what the operator package's row-congruence template dedup keys on —
// interior points of a (near-)structured mesh collapse to a handful of
// shared stencil templates.
func (ev *Evaluator) integrateWeights(center geom.Point, e int32, wk *worker) bool {
	bb := ev.elemBounds[e]
	tri := ev.Mesh.Triangle(int(e)).Translate(geom.Pt(-center.X, -center.Y))
	h := ev.H
	kx, ky := wk.kx, wk.ky
	bxlo, _ := kx.Support()
	bylo, _ := ky.Support()
	np := kx.NumPieces()

	basisN := ev.Field.Basis.N
	if cap(wk.wacc) < basisN {
		wk.wacc = make([]float64, basisN)
	}
	wk.wacc = wk.wacc[:basisN]
	clear(wk.wacc)

	i0 := int(math.Floor((bb.Min.X-center.X)/h - bxlo))
	i1 := int(math.Floor((bb.Max.X-center.X)/h - bxlo))
	j0 := int(math.Floor((bb.Min.Y-center.Y)/h - bylo))
	j1 := int(math.Floor((bb.Max.Y-center.Y)/h - bylo))
	if i1 < 0 || j1 < 0 || i0 >= np || j0 >= ky.NumPieces() {
		return false
	}
	i0 = max(i0, 0)
	j0 = max(j0, 0)
	i1 = min(i1, np-1)
	j1 = min(j1, ky.NumPieces()-1)

	invH := 1 / h
	inv := tri.AffineInverse()
	minArea := 1e-14 * tri.Area()
	quadFlops := metrics.FlopsPerQuadEval(ev.Opt.P, ev.Opt.P)

	qpts := ev.rule.Points
	qwts := ev.rule.Weights
	nq := uint64(len(qpts))

	integrated := false
	for j := j0; j <= j1; j++ {
		cy0 := h * (bylo + float64(j))
		py := ky.Piece(j)
		for i := i0; i <= i1; i++ {
			cx0 := h * (bxlo + float64(i))
			px := kx.Piece(i)
			cell := geom.Box(cx0, cy0, cx0+h, cy0+h)
			poly := wk.clip.ClipTriangleBox(tri, cell)
			wk.counters.Flops += uint64((len(poly) + 3) * metrics.FlopsPerClipVertex)
			if len(poly) < 3 {
				continue
			}
			wk.tris = geom.SplitFan(geom.Polygon(poly), wk.tris[:0], minArea)
			for _, tau := range wk.tris {
				integrated = true
				wk.counters.Regions++
				wk.counters.Flops += metrics.FlopsPerRegion
				jac := 2 * tau.Area()
				bxu, bxv := tau.B.X-tau.A.X, tau.C.X-tau.A.X
				byu, byv := tau.B.Y-tau.A.Y, tau.C.Y-tau.A.Y
				dax, day := tau.A.X-inv.X0, tau.A.Y-inv.Y0
				r0 := (dax*inv.Ys - day*inv.Xs) * inv.InvDet
				ru := (bxu*inv.Ys - byu*inv.Xs) * inv.InvDet
				rv := (bxv*inv.Ys - byv*inv.Xs) * inv.InvDet
				s0 := (day*inv.Xr - dax*inv.Yr) * inv.InvDet
				su := (byu*inv.Xr - bxu*inv.Yr) * inv.InvDet
				sv := (byv*inv.Xr - bxv*inv.Yr) * inv.InvDet
				tx0, txu, txv := (tau.A.X-cx0)*invH, bxu*invH, bxv*invH
				ty0, tyu, tyv := (tau.A.Y-cy0)*invH, byu*invH, byv*invH
				for q, rp := range qpts {
					r := r0 + ru*rp.X + rv*rp.Y
					s := s0 + su*rp.X + sv*rp.Y
					tx := tx0 + txu*rp.X + txv*rp.Y
					ty := ty0 + tyu*rp.X + tyv*rp.Y
					kvx := px[len(px)-1]
					for d := len(px) - 2; d >= 0; d-- {
						kvx = kvx*tx + px[d]
					}
					kvy := py[len(py)-1]
					for d := len(py) - 2; d >= 0; d-- {
						kvy = kvy*ty + py[d]
					}
					scale := qwts[q] * jac * kvx * kvy * invH * invH
					ev.Field.Basis.EvalAll(r, s, wk.basis)
					for m := 0; m < basisN; m++ {
						wk.wacc[m] += scale * wk.basis[m]
					}
				}
				wk.counters.QuadEvals += nq
				wk.counters.Flops += quadFlops * nq
			}
		}
	}
	return integrated
}
