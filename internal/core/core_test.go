package core

import (
	"math"
	"testing"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// buildEvaluator is a test helper: project fn at order p over m and
// construct an evaluator.
func buildEvaluator(t *testing.T, m *mesh.Mesh, p int, fn func(geom.Point) float64, opt Options) *Evaluator {
	t.Helper()
	f := dg.Project(m, p, fn, 4)
	opt.P = p
	ev, err := NewEvaluator(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestOptionsValidation(t *testing.T) {
	m := mesh.Structured(4)
	f := dg.Project(m, 1, func(p geom.Point) float64 { return p.X }, 0)
	if _, err := NewEvaluator(f, Options{P: 0}); err == nil {
		t.Error("P=0 should fail")
	}
	if _, err := NewEvaluator(f, Options{P: 2}); err == nil {
		t.Error("mismatched field degree should fail")
	}
	if _, err := NewEvaluator(f, Options{P: 1, CellFactorPoint: 0.5}); err == nil {
		t.Error("cell factor < 1 should fail (enclosure)")
	}
	if _, err := NewEvaluator(f, Options{P: 1, H: -1}); err == nil {
		t.Error("negative h should fail")
	}
	if _, err := NewEvaluator(f, Options{P: 1, CellFactorElem: -0.5}); err == nil {
		t.Error("negative elem cell factor should fail")
	}
	ev, err := NewEvaluator(f, Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Opt.GridDegree != 2 || ev.Opt.Workers < 1 {
		t.Errorf("defaults not applied: %+v", ev.Opt)
	}
	if ev.W <= 0 || math.Abs(ev.W-4*ev.H) > 1e-15 {
		t.Errorf("stencil width W = %v, want 4h = %v", ev.W, 4*ev.H)
	}
}

func TestSchemeString(t *testing.T) {
	if PerPoint.String() != "per-point" || PerElement.String() != "per-element" {
		t.Error("Scheme.String wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestGridPointsLayout(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, func(p geom.Point) float64 { return 1 }, Options{})
	if ev.NumPoints() != m.NumTris()*ev.PerElem {
		t.Fatalf("NumPoints = %d", ev.NumPoints())
	}
	for i, gp := range ev.Points {
		if int(gp.Elem) != i/ev.PerElem {
			t.Fatalf("point %d owned by %d, want %d", i, gp.Elem, i/ev.PerElem)
		}
		if !m.Triangle(int(gp.Elem)).CCW().Contains(gp.Pos) {
			t.Fatalf("point %d not inside its element", i)
		}
	}
}

// The fundamental invariant: per-point, per-element and brute-force
// reference all compute the same sums.
func TestSchemesAgreeWithReference(t *testing.T) {
	m := mesh.Structured(4)
	fn := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
	}
	ev := buildEvaluator(t, m, 1, fn, Options{})
	ref, err := ev.Reference()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ev.RunPerElement(ev.NewTiling(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(ref, pp.Solution); d > 1e-11 {
		t.Errorf("per-point vs reference: max diff %v", d)
	}
	if d := maxAbsDiff(ref, pe.Solution); d > 1e-11 {
		t.Errorf("per-element vs reference: max diff %v", d)
	}
}

func TestSchemesAgreeUnstructured(t *testing.T) {
	lv, err := mesh.LowVariance(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) + math.Cos(4*math.Pi*p.Y)
	}
	ev := buildEvaluator(t, lv, 1, fn, Options{})
	pp, err := ev.RunPerPoint(8)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ev.RunPerElement(ev.NewTiling(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(pp.Solution, pe.Solution); d > 1e-10 {
		t.Errorf("schemes disagree by %v on unstructured mesh", d)
	}
}

// Post-processing the projection of a constant must return the constant
// everywhere: the wrapped 2D kernel integrates to exactly 1.
func TestConstantReproducedEverywhere(t *testing.T) {
	lv, err := mesh.LowVariance(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := buildEvaluator(t, lv, 1, func(geom.Point) float64 { return 2.5 }, Options{})
	res, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Solution {
		if math.Abs(v-2.5) > 1e-10 {
			t.Fatalf("point %d: got %v, want 2.5 (pos %v)", i, v, ev.Points[i].Pos)
		}
	}
}

// Polynomial reproduction: at grid points whose stencil support lies fully
// inside the domain, post-processing the projection of a polynomial of
// degree <= P reproduces it to quadrature precision. (Degree <= P makes the
// projection exact, so the field handed to the kernel is the polynomial
// itself; the kernel then reproduces it because its moments vanish up to
// degree 2k >= P. Degrees in (P, 2k] are only reproduced up to the
// projection error — the superconvergence test below covers that regime.)
func TestPolynomialReproductionInterior(t *testing.T) {
	m := mesh.Structured(12)
	fn := func(p geom.Point) float64 {
		return 1 + 2*p.X - 3*p.Y
	}
	ev := buildEvaluator(t, m, 1, fn, Options{})
	res, err := ev.RunPerElement(nil)
	if err != nil {
		t.Fatal(err)
	}
	half := ev.W / 2
	checked := 0
	for i, gp := range ev.Points {
		if gp.Pos.X < half || gp.Pos.X > 1-half || gp.Pos.Y < half || gp.Pos.Y > 1-half {
			continue
		}
		checked++
		want := fn(gp.Pos)
		if math.Abs(res.Solution[i]-want) > 1e-9 {
			t.Fatalf("point %d at %v: got %v, want %v", i, gp.Pos, res.Solution[i], want)
		}
	}
	if checked == 0 {
		t.Fatal("no interior points checked; enlarge the mesh")
	}
	t.Logf("verified polynomial reproduction at %d interior points", checked)
}

// Same property at P=2 with a degree-2 input.
func TestPolynomialReproductionP2(t *testing.T) {
	m := mesh.Structured(16)
	fn := func(p geom.Point) float64 {
		x, y := p.X, p.Y
		return x*x - 2*x*y + 3*y*y + x - 3
	}
	ev := buildEvaluator(t, m, 2, fn, Options{})
	res, err := ev.RunPerElement(nil)
	if err != nil {
		t.Fatal(err)
	}
	half := ev.W / 2
	checked := 0
	for i, gp := range ev.Points {
		if gp.Pos.X < half || gp.Pos.X > 1-half || gp.Pos.Y < half || gp.Pos.Y > 1-half {
			continue
		}
		checked++
		want := fn(gp.Pos)
		if math.Abs(res.Solution[i]-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("point %d at %v: got %v, want %v", i, gp.Pos, res.Solution[i], want)
		}
	}
	if checked == 0 {
		t.Fatal("no interior points checked")
	}
}

// SIAC post-processing of a smooth periodic field must not blow up the
// error: the post-processed solution should be at least as accurate (in
// max norm over grid points) as the dG projection, up to a small factor.
func TestAccuracyConservedSmoothField(t *testing.T) {
	m := mesh.Structured(16)
	fn := func(p geom.Point) float64 {
		return math.Sin(2 * math.Pi * (p.X + p.Y))
	}
	ev := buildEvaluator(t, m, 1, fn, Options{})
	res, err := ev.RunPerElement(nil)
	if err != nil {
		t.Fatal(err)
	}
	var errBefore, errAfter float64
	for i, gp := range ev.Points {
		e := int(gp.Elem)
		d0 := math.Abs(ev.Field.EvalIn(e, gp.Pos) - fn(gp.Pos))
		d1 := math.Abs(res.Solution[i] - fn(gp.Pos))
		if d0 > errBefore {
			errBefore = d0
		}
		if d1 > errAfter {
			errAfter = d1
		}
	}
	t.Logf("max error before %v, after %v", errBefore, errAfter)
	if errAfter > 2*errBefore {
		t.Errorf("post-processing degraded accuracy: %v -> %v", errBefore, errAfter)
	}
}

// Periodicity: for a periodic input field on a periodic (structured) mesh,
// translating the evaluation by the lattice must give identical values.
// Points near the boundary exercise the wrapped stencil path.
func TestPeriodicWrapConsistency(t *testing.T) {
	m := mesh.Structured(8)
	fn := func(p geom.Point) float64 {
		return math.Cos(2 * math.Pi * p.X)
	}
	ev := buildEvaluator(t, m, 1, fn, Options{})
	res, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	// The structured mesh and field are symmetric under y-translation by
	// 1/8, and under x-translation the field is periodic with the mesh; so
	// two grid points in corresponding positions of the bottom and top rows
	// of elements must match.
	// Elements 2i / 2i+1 tile row-major: element index = (j*8+i)*2 + t.
	perElem := ev.PerElem
	for i := 0; i < 8; i++ {
		for tt := 0; tt < 2; tt++ {
			lo := (0*8+i)*2 + tt
			hi := (7*8+i)*2 + tt
			for q := 0; q < perElem; q++ {
				a := res.Solution[lo*perElem+q]
				b := res.Solution[hi*perElem+q]
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("translated points differ: %v vs %v (elem %d vs %d)",
						a, b, lo, hi)
				}
			}
		}
	}
}

func TestCountersPopulated(t *testing.T) {
	lv, err := mesh.LowVariance(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geom.Point) float64 { return p.X }
	ev := buildEvaluator(t, lv, 1, fn, Options{})
	pp, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ev.RunPerElement(ev.NewTiling(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{pp, pe} {
		if r.Total.IntersectionTests == 0 || r.Total.QuadEvals == 0 ||
			r.Total.Flops == 0 || r.Total.Regions == 0 || r.Total.BytesRead == 0 {
			t.Errorf("%v: counters not populated: %v", r.Scheme, r.Total.String())
		}
	}
	// The paper's headline count: per-element performs fewer intersection
	// tests than per-point (Table 1 shows roughly 2x fewer).
	if pe.Total.IntersectionTests >= pp.Total.IntersectionTests {
		t.Errorf("per-element tests (%d) should be fewer than per-point (%d)",
			pe.Total.IntersectionTests, pp.Total.IntersectionTests)
	}
	// Both schemes integrate the same true-positive regions.
	if pe.Total.QuadEvals != pp.Total.QuadEvals {
		t.Errorf("quad evals differ: %d vs %d", pe.Total.QuadEvals, pp.Total.QuadEvals)
	}
	// Data-reuse: per-element reads far fewer bytes.
	if pe.Total.BytesRead >= pp.Total.BytesRead {
		t.Errorf("per-element bytes (%d) should be fewer than per-point (%d)",
			pe.Total.BytesRead, pp.Total.BytesRead)
	}
}

func TestBlocksPartitionWork(t *testing.T) {
	m := mesh.Structured(6)
	ev := buildEvaluator(t, m, 1, func(p geom.Point) float64 { return p.Y }, Options{})
	res, err := ev.RunPerPoint(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 5 {
		t.Fatalf("got %d blocks", len(res.Blocks))
	}
	var sum uint64
	for _, b := range res.Blocks {
		sum += b.IntersectionTests
	}
	if sum != res.Total.IntersectionTests {
		t.Errorf("block counters (%d) do not sum to total (%d)",
			sum, res.Total.IntersectionTests)
	}
}

func TestRunDispatch(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, func(p geom.Point) float64 { return 1 }, Options{})
	r1, err := ev.Run(PerPoint, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Run(PerElement, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Scheme != PerPoint || r2.Scheme != PerElement {
		t.Error("schemes not recorded")
	}
	if _, err := ev.Run(Scheme(42), 2); err == nil {
		t.Error("unknown scheme should error")
	}
}

// Superconvergence: SIAC post-processing lifts the O(h^{P+1}) accuracy of
// the dG projection to O(h^{2P+1}) at interior points — the reason the
// post-processor exists. Verified as a convergence *rate* between two
// structured meshes.
func TestSuperconvergenceRate(t *testing.T) {
	fn := func(p geom.Point) float64 {
		return math.Sin(2 * math.Pi * (p.X + p.Y))
	}
	interiorMaxErr := func(n int) (before, after float64) {
		m := mesh.Structured(n)
		ev := buildEvaluator(t, m, 1, fn, Options{})
		res, err := ev.RunPerElement(nil)
		if err != nil {
			t.Fatal(err)
		}
		half := ev.W / 2
		for i, gp := range ev.Points {
			if gp.Pos.X < half || gp.Pos.X > 1-half || gp.Pos.Y < half || gp.Pos.Y > 1-half {
				continue
			}
			want := fn(gp.Pos)
			if d := math.Abs(ev.Field.EvalIn(int(gp.Elem), gp.Pos) - want); d > before {
				before = d
			}
			if d := math.Abs(res.Solution[i] - want); d > after {
				after = d
			}
		}
		return
	}
	b8, a8 := interiorMaxErr(8)
	b16, a16 := interiorMaxErr(16)
	ratePre := math.Log2(b8 / b16)
	ratePost := math.Log2(a8 / a16)
	t.Logf("projection errors %g -> %g (rate %.2f); post-processed %g -> %g (rate %.2f)",
		b8, b16, ratePre, a8, a16, ratePost)
	if ratePost < 2.5 {
		t.Errorf("post-processed convergence rate %.2f, want ≈ 2P+1 = 3", ratePost)
	}
	if a16 >= b16 {
		t.Errorf("post-processing did not reduce the error: %g vs %g", a16, b16)
	}
}

// The fast counting path must report exactly what a full run counts.
func TestCountMatchesRunCounters(t *testing.T) {
	lv, err := mesh.LowVariance(8, 21)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geom.Point) float64 { return p.X * p.Y }
	ev := buildEvaluator(t, lv, 1, fn, Options{})
	pp, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ev.RunPerElement(ev.NewTiling(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.CountIntersectionTests(PerPoint); got != pp.Total.IntersectionTests {
		t.Errorf("per-point count %d != run %d", got, pp.Total.IntersectionTests)
	}
	if got := ev.CountIntersectionTests(PerElement); got != pe.Total.IntersectionTests {
		t.Errorf("per-element count %d != run %d", got, pe.Total.IntersectionTests)
	}
	if ev.CountIntersectionTests(Scheme(7)) != 0 {
		t.Error("unknown scheme should count 0")
	}
}

// The pipelined (coloured, in-place) executor must produce the same sums as
// the overlapped-tiling executor, with no memory overhead.
func TestPipelinedMatchesOverlapped(t *testing.T) {
	lv, err := mesh.LowVariance(7, 31)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geom.Point) float64 { return math.Cos(2 * math.Pi * p.Y) }
	ev := buildEvaluator(t, lv, 1, fn, Options{})
	tl := ev.NewTiling(6)
	over, err := ev.RunPerElement(tl)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := ev.RunPerElementPipelined(tl)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(over.Solution, pipe.Solution); d > 1e-11 {
		t.Errorf("pipelined differs from overlapped by %v", d)
	}
	if pipe.MemoryOverhead != 1 {
		t.Errorf("pipelined overhead = %v, want 1", pipe.MemoryOverhead)
	}
	if pipe.Total.IntersectionTests != over.Total.IntersectionTests {
		t.Errorf("pipelined did different work: %d vs %d tests",
			pipe.Total.IntersectionTests, over.Total.IntersectionTests)
	}
}

// EvalAt must agree with the grid-point solutions and work at off-grid
// positions.
func TestEvalAtMatchesGrid(t *testing.T) {
	m := mesh.Structured(6)
	fn := func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) }
	ev := buildEvaluator(t, m, 1, fn, Options{})
	res, err := ev.RunPerPoint(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, 100, len(ev.Points) - 1} {
		got, err := ev.EvalAt(ev.Points[i].Pos)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-res.Solution[i]) > 1e-12 {
			t.Fatalf("EvalAt(point %d) = %v, grid solution %v", i, got, res.Solution[i])
		}
	}
	// Off-grid position: close to the projected field's value for a smooth
	// input.
	pos := geom.Pt(0.512, 0.487)
	got, err := ev.EvalAt(pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-fn(pos)) > 0.05 {
		t.Errorf("EvalAt(%v) = %v, expected ≈ %v", pos, got, fn(pos))
	}
}
