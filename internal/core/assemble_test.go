package core

import (
	"math"
	"testing"

	"unstencil/internal/dg"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// assembleTestField is smooth and non-separable so every mode of every
// element carries weight.
func assembleTestField(p geom.Point) float64 {
	return math.Sin(2*math.Pi*p.X)*math.Cos(2*math.Pi*p.Y) + 0.25*p.X*p.Y
}

func assembleTestMeshes(t *testing.T) map[string]*mesh.Mesh {
	t.Helper()
	um, err := mesh.SizedLowVariance(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*mesh.Mesh{
		"structured":   mesh.Structured(4),
		"unstructured": um,
	}
}

// The tentpole property: the assembled operator applied to the field
// reproduces direct per-point evaluation within 1e-12, on symmetric and
// one-sided boundary configurations, for P1–P3, on fixed-seed meshes.
func TestOperatorMatchesDirect(t *testing.T) {
	for mname, m := range assembleTestMeshes(t) {
		for _, boundary := range []Boundary{Periodic, OneSided} {
			for p := 1; p <= 3; p++ {
				if mname == "unstructured" && p == 2 && testing.Short() {
					continue
				}
				ev := buildEvaluator(t, m, p, assembleTestField, Options{Boundary: boundary, Workers: 4})
				direct, err := ev.RunPerPoint(0)
				if err != nil {
					t.Fatal(err)
				}
				for _, scheme := range []Scheme{PerPoint, PerElement} {
					op, err := ev.AssembleOperator(AssembleOpts{Scheme: scheme})
					if err != nil {
						t.Fatalf("%s/%v/P%d/%v: assemble: %v", mname, boundary, p, scheme, err)
					}
					got, err := op.Apply(ev.Field)
					if err != nil {
						t.Fatal(err)
					}
					if d := maxAbsDiff(got, direct.Solution); d > 1e-12 {
						t.Errorf("%s/%v/P%d/%v: apply vs direct max diff %.3e", mname, boundary, p, scheme, d)
					}
				}
			}
		}
	}
}

// The operator depends only on (mesh, grid, kernel, h): assembled once, it
// post-processes any same-degree field on the mesh.
func TestOperatorFieldIndependence(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 4})
	op, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	other := func(p geom.Point) float64 { return math.Exp(-4*p.X) * math.Sin(3*math.Pi*p.Y) }
	ev2 := buildEvaluator(t, m, 2, other, Options{Workers: 4})
	direct, err := ev2.RunPerPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := op.Apply(ev2.Field)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, direct.Solution); d > 1e-12 {
		t.Errorf("second field through first field's operator: max diff %.3e", d)
	}
}

// Custom row positions (a query batch) assemble with the per-point scheme
// and agree with EvalBatch.
func TestOperatorCustomPoints(t *testing.T) {
	m := mesh.Structured(4)
	for _, boundary := range []Boundary{Periodic, OneSided} {
		ev := buildEvaluator(t, m, 2, assembleTestField, Options{Boundary: boundary, Workers: 4})
		pts := make([]geom.Point, 0, 64)
		for i := 0; i < 64; i++ {
			pts = append(pts, geom.Pt(
				math.Mod(0.13+0.61803398875*float64(i), 1),
				math.Mod(0.29+0.7548776662*float64(i), 1),
			))
		}
		want, _, err := ev.EvalBatch(pts, 4)
		if err != nil {
			t.Fatal(err)
		}
		op, err := ev.AssembleOperator(AssembleOpts{Points: pts})
		if err != nil {
			t.Fatal(err)
		}
		if op.Rows != len(pts) {
			t.Fatalf("rows = %d, want %d", op.Rows, len(pts))
		}
		got, err := op.Apply(ev.Field)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("%v: custom-point operator vs EvalBatch: max diff %.3e", boundary, d)
		}
	}
}

// Morton row order is a pure storage permutation: the applied values are
// bit-identical to natural order.
func TestOperatorRowOrderPureStorage(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 4})
	morton, err := ev.AssembleOperator(AssembleOpts{RowOrder: RowMorton})
	if err != nil {
		t.Fatal(err)
	}
	natural, err := ev.AssembleOperator(AssembleOpts{RowOrder: RowNatural})
	if err != nil {
		t.Fatal(err)
	}
	if morton.Perm == nil {
		t.Fatal("Morton assembly produced no permutation")
	}
	if natural.Perm != nil {
		t.Fatal("natural assembly produced a permutation")
	}
	if morton.NNZ() != natural.NNZ() {
		t.Fatalf("nnz differs: morton %d, natural %d", morton.NNZ(), natural.NNZ())
	}
	a, err := morton.Apply(ev.Field)
	if err != nil {
		t.Fatal(err)
	}
	b, err := natural.Apply(ev.Field)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: morton %v != natural %v", i, a[i], b[i])
		}
	}
	// The permutation must be a bijection onto the point set.
	seen := make([]bool, morton.Rows)
	for _, pt := range morton.Perm {
		if seen[pt] {
			t.Fatalf("point %d appears twice in Perm", pt)
		}
		seen[pt] = true
	}
}

// Assembly is deterministic: any worker count yields bit-identical CSR.
func TestOperatorAssemblyDeterministic(t *testing.T) {
	m, err := mesh.SizedLowVariance(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{PerPoint, PerElement} {
		ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 4})
		base, err := ev.AssembleOperator(AssembleOpts{Scheme: scheme, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		base = base.ToCSR()
		for _, w := range []int{2, 7} {
			op, err := ev.AssembleOperator(AssembleOpts{Scheme: scheme, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			op = op.ToCSR()
			if len(op.Val) != len(base.Val) {
				t.Fatalf("%v: workers=%d nnz %d != %d", scheme, w, len(op.Val), len(base.Val))
			}
			for i := range op.Val {
				if op.Val[i] != base.Val[i] || op.ColInd[i] != base.ColInd[i] {
					t.Fatalf("%v: workers=%d entry %d differs", scheme, w, i)
				}
			}
			for i := range op.RowPtr {
				if op.RowPtr[i] != base.RowPtr[i] {
					t.Fatalf("%v: workers=%d rowptr %d differs", scheme, w, i)
				}
			}
		}
	}
}

func TestOperatorErrors(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 2})
	if _, err := ev.AssembleOperator(AssembleOpts{Scheme: PerElement, Points: []geom.Point{geom.Pt(0.5, 0.5)}}); err == nil {
		t.Error("per-element assembly with custom points should fail")
	}
	if _, err := ev.AssembleOperator(AssembleOpts{Scheme: Assembled}); err == nil {
		t.Error("assembling with the Assembled scheme should fail")
	}
	op, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wrongP := dg.Project(m, 3, assembleTestField, 4)
	if _, err := op.Apply(wrongP); err == nil {
		t.Error("applying a mismatched-degree field should fail")
	}
	if err := op.ApplyVec(make([]float64, 3), make([]float64, op.Rows), 1); err == nil {
		t.Error("short coefficient vector should fail")
	}
	if err := op.ApplyVec(wrongP.Coeffs[:op.Cols], make([]float64, 3), 1); err == nil {
		t.Error("short output vector should fail")
	}
}

// The apply itself is bit-identical across worker counts (each row is
// summed in CSR order by exactly one goroutine).
func TestOperatorApplyParallelBitIdentical(t *testing.T) {
	m, err := mesh.SizedLowVariance(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 4})
	op, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]float64, op.Rows)
	if err := op.ApplyVec(ev.Field.Coeffs, serial, 1); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5, 16} {
		out := make([]float64, op.Rows)
		if err := op.ApplyVec(ev.Field.Coeffs, out, w); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs from serial", w, i)
			}
		}
	}
}

// Assembly records the geometry work it performed and the operator's shape
// summary is consistent.
func TestOperatorStatsAndCounters(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 2, assembleTestField, Options{Workers: 2})
	op, err := ev.AssembleOperator(AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if op.AssemblyCounters.Regions == 0 || op.AssemblyCounters.QuadEvals == 0 {
		t.Errorf("assembly counters empty: %+v", op.AssemblyCounters)
	}
	if op.AssemblyScheme != "per-point" {
		t.Errorf("scheme = %q", op.AssemblyScheme)
	}
	st := op.Stats()
	if st.NNZ != op.NNZ() || st.Rows != len(ev.Points) || st.NNZPerRow <= 0 {
		t.Errorf("bad stats: %+v", st)
	}
	if op.Cols != m.NumTris()*ev.Field.Basis.N {
		t.Errorf("cols = %d", op.Cols)
	}
	ac := op.ApplyCounters()
	if ac.Flops != 2*uint64(op.NNZ()) {
		t.Errorf("apply flops = %d, want %d", ac.Flops, 2*op.NNZ())
	}
}
