package core

import (
	"context"
	"math"
	"testing"

	"unstencil/internal/dg"
	"unstencil/internal/fault"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func patchesSetup(t *testing.T, p int) *Evaluator {
	t.Helper()
	m := mesh.Structured(6)
	f := dg.Project(m, p, func(pt geom.Point) float64 {
		return math.Sin(2*math.Pi*pt.X) * math.Cos(2*math.Pi*pt.Y)
	}, 4)
	ev, err := NewEvaluator(f, Options{P: p, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestEvalPatchesBitIdentical is the distributed-merge invariant at its
// source: evaluating the tiling's patches in arbitrary disjoint subsets
// and merging the partial buffers in ascending patch order must reproduce
// a full RunPerElement bit for bit — no tolerance.
func TestEvalPatchesBitIdentical(t *testing.T) {
	ev := patchesSetup(t, 1)
	const k = 7
	tl := ev.NewTiling(k)
	ref, err := ev.RunPerElement(tl)
	if err != nil {
		t.Fatal(err)
	}

	// Two "shards": an uneven split, evaluated independently.
	splits := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
	merged := make([]float64, tl.NumPoints)
	var partials []PatchPartial
	for _, patches := range splits {
		out, failed, err := ev.EvalPatchesResilientCtx(context.Background(), tl, patches, nil)
		if err != nil {
			t.Fatal(err)
		}
		if failed != nil {
			t.Fatalf("unexpected failed patches %v", failed)
		}
		partials = append(partials, out...)
	}
	// Merge in ascending patch order (the coordinator's contract).
	for p := 0; p < k; p++ {
		for _, pp := range partials {
			if pp.Patch != p {
				continue
			}
			for i, pt := range tl.Slots[p] {
				merged[pt] += pp.Values[i]
			}
		}
	}
	for i := range merged {
		if merged[i] != ref.Solution[i] {
			t.Fatalf("point %d: merged %v != reference %v (must be bit-identical)",
				i, merged[i], ref.Solution[i])
		}
	}
}

// TestEvalPatchesValidation: out-of-range and duplicate patch ids are
// rejected before any work runs.
func TestEvalPatchesValidation(t *testing.T) {
	ev := patchesSetup(t, 1)
	tl := ev.NewTiling(4)
	ctx := context.Background()
	if _, _, err := ev.EvalPatchesResilientCtx(ctx, tl, []int{4}, nil); err == nil {
		t.Error("out-of-range patch accepted")
	}
	if _, _, err := ev.EvalPatchesResilientCtx(ctx, tl, []int{1, 1}, nil); err == nil {
		t.Error("duplicate patch accepted")
	}
	out, failed, err := ev.EvalPatchesResilientCtx(ctx, tl, nil, nil)
	if out != nil || failed != nil || err != nil {
		t.Errorf("empty patch list: got (%v, %v, %v), want all nil", out, failed, err)
	}
}

// TestEvalPatchesPartialFailure: with AllowPartial, injected transient
// faults drop exactly the failed patches and report them sorted; the
// surviving partials are intact. Without AllowPartial the call fails.
func TestEvalPatchesPartialFailure(t *testing.T) {
	ev := patchesSetup(t, 1)
	tl := ev.NewTiling(6)
	ctx := context.Background()
	all := []int{0, 1, 2, 3, 4, 5}

	if err := fault.Enable(fault.Config{
		Seed:      7,
		Mode:      fault.ModeError,
		Sites:     map[string]float64{SiteTile: 1},
		MaxFaults: 2,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)

	rs := &Resilience{MaxAttempts: 1, AllowPartial: true}
	out, failed, err := ev.EvalPatchesResilientCtx(ctx, tl, all, rs)
	if err != nil {
		t.Fatalf("AllowPartial run failed outright: %v", err)
	}
	if len(failed) != 2 {
		t.Fatalf("failed = %v, want exactly 2 patches (MaxFaults)", failed)
	}
	if len(out)+len(failed) != len(all) {
		t.Fatalf("%d partials + %d failed != %d requested", len(out), len(failed), len(all))
	}
	for i := 1; i < len(failed); i++ {
		if failed[i-1] >= failed[i] {
			t.Fatalf("failed list not sorted: %v", failed)
		}
	}
	for _, pp := range out {
		if len(pp.Values) != len(tl.Slots[pp.Patch]) {
			t.Fatalf("patch %d: %d values, want %d", pp.Patch, len(pp.Values), len(tl.Slots[pp.Patch]))
		}
	}

	fault.Disable()
	if err := fault.Enable(fault.Config{
		Seed:      7,
		Mode:      fault.ModeError,
		Sites:     map[string]float64{SiteTile: 1},
		MaxFaults: 1,
	}); err != nil {
		t.Fatal(err)
	}
	rs = &Resilience{MaxAttempts: 1}
	if _, _, err := ev.EvalPatchesResilientCtx(ctx, tl, all, rs); err == nil {
		t.Fatal("non-partial run with an exhausted patch should fail")
	}
}
