package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"unstencil/internal/fault"
	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
)

func sinField(p geom.Point) float64 {
	return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
}

// noSleep makes retries instantaneous in tests.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// withFaults installs a campaign for the duration of the test.
func withFaults(t *testing.T, cfg fault.Config) {
	t.Helper()
	if err := fault.Enable(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

// TestResilientMatchesFaultFree: with faults injected into both schemes'
// workers and enough retry budget, results must match the fault-free run
// exactly (retried units recompute identical sums), and the recovery
// counters must show the machinery actually fired.
func TestResilientMatchesFaultFree(t *testing.T) {
	m := mesh.Structured(6)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 4})

	ppRef, err := ev.RunPerPoint(8)
	if err != nil {
		t.Fatal(err)
	}
	tiling := ev.NewTiling(8)
	peRef, err := ev.RunPerElementCtx(context.Background(), tiling)
	if err != nil {
		t.Fatal(err)
	}

	withFaults(t, fault.Config{
		Seed: 42, Mode: fault.ModeMixed,
		Sites: map[string]float64{
			SitePointBlock: 0.4,
			SiteTile:       0.4,
			SiteReduce:     0.3,
		},
	})
	var fc metrics.FaultCounters
	rs := &Resilience{MaxAttempts: 30, Sleep: noSleep, Faults: &fc, Seed: 1}

	pp, err := ev.RunPerPointResilientCtx(context.Background(), 8, rs)
	if err != nil {
		t.Fatalf("per-point resilient: %v", err)
	}
	if d := maxAbsDiff(pp.Solution, ppRef.Solution); d > 1e-12 {
		t.Errorf("per-point resilient differs from fault-free by %g", d)
	}
	if pp.Coverage != nil {
		t.Errorf("per-point run degraded unexpectedly: %+v", pp.Coverage)
	}
	if pp.Total != ppRef.Total {
		t.Errorf("per-point counters differ: %+v vs %+v", pp.Total, ppRef.Total)
	}

	pe, err := ev.RunPerElementResilientCtx(context.Background(), tiling, rs)
	if err != nil {
		t.Fatalf("per-element resilient: %v", err)
	}
	if d := maxAbsDiff(pe.Solution, peRef.Solution); d > 1e-12 {
		t.Errorf("per-element resilient differs from fault-free by %g", d)
	}
	if pe.Coverage != nil {
		t.Errorf("per-element run degraded unexpectedly: %+v", pe.Coverage)
	}

	if fc.TileRetries.Load() == 0 {
		t.Error("no retries recorded despite injected faults")
	}
	if fc.PanicsRecovered.Load() == 0 {
		t.Error("no recovered panics recorded despite mixed-mode faults")
	}
	if fc.TilesFailed.Load() != 0 {
		t.Errorf("tiles failed with a 30-attempt budget: %d", fc.TilesFailed.Load())
	}
}

// TestPanicBecomesTypedError: without any resilience policy, a panic in a
// tile worker surfaces as *PanicError instead of crashing the process.
func TestPanicBecomesTypedError(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 2})

	withFaults(t, fault.Config{
		Seed: 7, Mode: fault.ModePanic,
		Sites: map[string]float64{SiteTile: 1},
	})
	_, err := ev.RunPerElementCtx(context.Background(), ev.NewTiling(4))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Scheme != PerElement || pe.Unit < 0 {
		t.Errorf("panic error %+v", pe)
	}
	if _, ok := pe.Value.(*fault.Panic); !ok {
		t.Errorf("recovered value %T, want *fault.Panic", pe.Value)
	}
}

// TestDegradedCompletion: when tiles exhaust their retries under
// AllowPartial, the run completes with coverage metadata, failed tiles
// contribute nothing, and untouched tiles' points keep exact values.
func TestDegradedCompletion(t *testing.T) {
	// Fine enough that two tiles' influence regions (element boxes padded
	// by half the kernel support) do not blanket the whole grid.
	m := mesh.Structured(12)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 2})
	tiling := ev.NewTiling(8)

	ref, err := ev.RunPerElementCtx(context.Background(), tiling)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly 2 faults total, probability 1: the first two tile attempts
	// fail; with MaxAttempts 1 those two tiles are dropped.
	withFaults(t, fault.Config{
		Seed: 3, Mode: fault.ModeError,
		Sites:     map[string]float64{SiteTile: 1},
		MaxFaults: 2,
	})
	var fc metrics.FaultCounters
	rs := &Resilience{MaxAttempts: 1, AllowPartial: true, Sleep: noSleep, Faults: &fc}
	res, err := ev.RunPerElementResilientCtx(context.Background(), tiling, rs)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	cov := res.Coverage
	if cov == nil {
		t.Fatal("no coverage metadata on degraded run")
	}
	if len(cov.FailedUnits) != 2 || cov.TotalUnits != tiling.K {
		t.Fatalf("coverage %+v, want 2 failed units of %d", cov, tiling.K)
	}
	if cov.CoveredPoints+tiling.UncoveredPoints(cov.FailedUnits) != cov.TotalPoints {
		t.Errorf("coverage arithmetic inconsistent: %+v", cov)
	}
	if cov.Fraction() <= 0 || cov.Fraction() >= 1 {
		t.Errorf("fraction %v outside (0, 1)", cov.Fraction())
	}
	if fc.TilesFailed.Load() != 2 || fc.DegradedJobs.Load() != 0 {
		t.Errorf("fault counters %+v", fc.Snapshot())
	}

	// Points outside the failed tiles' influence regions are untouched.
	uncovered := make(map[int32]bool)
	for _, p := range cov.FailedUnits {
		for _, pt := range tiling.Slots[p] {
			uncovered[pt] = true
		}
	}
	for pt := range ref.Solution {
		if uncovered[int32(pt)] {
			continue
		}
		if d := math.Abs(res.Solution[pt] - ref.Solution[pt]); d > 1e-12 {
			t.Fatalf("covered point %d differs by %g", pt, d)
		}
	}
}

// TestDegradedPerPoint: failed per-point blocks zero their strided points
// and report coverage.
func TestDegradedPerPoint(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 2})

	withFaults(t, fault.Config{
		Seed: 5, Mode: fault.ModePanic,
		Sites:     map[string]float64{SitePointBlock: 1},
		MaxFaults: 1,
	})
	rs := &Resilience{MaxAttempts: 1, AllowPartial: true, Sleep: noSleep}
	const nBlocks = 4
	res, err := ev.RunPerPointResilientCtx(context.Background(), nBlocks, rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage == nil || len(res.Coverage.FailedUnits) != 1 {
		t.Fatalf("coverage %+v, want exactly 1 failed block", res.Coverage)
	}
	b := res.Coverage.FailedUnits[0]
	for p := b; p < len(res.Solution); p += nBlocks {
		if res.Solution[p] != 0 {
			t.Fatalf("failed block %d left nonzero value at point %d", b, p)
		}
	}
	want := len(ev.Points) - strideCount(len(ev.Points), b, nBlocks)
	if res.Coverage.CoveredPoints != want {
		t.Errorf("covered %d, want %d", res.Coverage.CoveredPoints, want)
	}
}

// TestExhaustedRetriesFailWithoutAllowPartial: the same fault pattern that
// degrades an AllowPartial run must fail a strict run with the injected
// error.
func TestExhaustedRetriesFailWithoutAllowPartial(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 2})
	withFaults(t, fault.Config{
		Seed: 3, Mode: fault.ModeError,
		Sites: map[string]float64{SiteTile: 1},
	})
	rs := &Resilience{MaxAttempts: 2, Sleep: noSleep}
	_, err := ev.RunPerElementResilientCtx(context.Background(), ev.NewTiling(4), rs)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// TestCancellationIsPermanent: context errors must not be retried.
func TestCancellationIsPermanent(t *testing.T) {
	m := mesh.Structured(4)
	ev := buildEvaluator(t, m, 1, sinField, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var fc metrics.FaultCounters
	rs := &Resilience{MaxAttempts: 10, Sleep: noSleep, Faults: &fc}
	if _, err := ev.RunPerPointResilientCtx(ctx, 4, rs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if fc.TileRetries.Load() != 0 {
		t.Errorf("cancelled run retried %d times", fc.TileRetries.Load())
	}
	if !Transient(errors.New("x")) || Transient(context.Canceled) ||
		Transient(context.DeadlineExceeded) || Transient(nil) {
		t.Error("Transient classification wrong")
	}
}

// TestBackoffDeterministicAndCapped: the jittered exponential schedule is a
// pure function of (seed, unit, retry) and never exceeds MaxDelay.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	rs := (&Resilience{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Seed:        11,
	}).withDefaults()
	prev := time.Duration(0)
	for retry := 1; retry <= 12; retry++ {
		d1 := rs.backoff(3, retry)
		d2 := rs.backoff(3, retry)
		if d1 != d2 {
			t.Fatalf("retry %d: %v != %v (non-deterministic)", retry, d1, d2)
		}
		if d1 > rs.MaxDelay {
			t.Fatalf("retry %d: delay %v over cap %v", retry, d1, rs.MaxDelay)
		}
		if retry == 1 && (d1 < rs.BaseDelay/2 || d1 > rs.BaseDelay) {
			t.Fatalf("first retry delay %v outside [base/2, base)", d1)
		}
		_ = prev
		prev = d1
	}
	if d := rs.backoff(3, 1); d == rs.backoff(4, 1) && d == rs.backoff(5, 1) {
		t.Error("jitter identical across units — seed not mixing unit id")
	}
	if (&Resilience{}).withDefaults().backoff(0, 1) != 0 {
		t.Error("zero BaseDelay must not sleep")
	}
}

// TestRetrySleepObservesBackoff: the retry loop calls Sleep once per retry
// with the scheduled delay.
func TestRetrySleepObservesBackoff(t *testing.T) {
	var slept []time.Duration
	rs := (&Resilience{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    8 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}).withDefaults()
	calls := 0
	err := rs.runUnit(context.Background(), PerElement, 0, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d <= 0 {
			t.Errorf("sleep %d: non-positive delay %v", i, d)
		}
	}
}
