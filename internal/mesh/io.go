package mesh

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"unstencil/internal/geom"
)

// fileFormat is the on-disk JSON schema. Vertices are flattened to
// [x0, y0, x1, y1, ...] and triangles to [a0, b0, c0, a1, ...] to keep
// files compact without a binary format.
type fileFormat struct {
	Format string    `json:"format"`
	Verts  []float64 `json:"verts"`
	Tris   []int32   `json:"tris"`
}

const formatName = "unstencil-mesh-v1"

// Encode writes the mesh as JSON to w.
func Encode(w io.Writer, m *Mesh) error {
	f := fileFormat{
		Format: formatName,
		Verts:  make([]float64, 0, 2*len(m.Verts)),
		Tris:   make([]int32, 0, 3*len(m.Tris)),
	}
	for _, v := range m.Verts {
		f.Verts = append(f.Verts, v.X, v.Y)
	}
	for _, t := range m.Tris {
		f.Tris = append(f.Tris, t[0], t[1], t[2])
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&f); err != nil {
		return fmt.Errorf("mesh: encode: %w", err)
	}
	return bw.Flush()
}

// Decode reads a mesh previously written by Encode and validates it.
func Decode(r io.Reader) (*Mesh, error) {
	var f fileFormat
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&f); err != nil {
		return nil, fmt.Errorf("mesh: decode: %w", err)
	}
	if f.Format != formatName {
		return nil, fmt.Errorf("mesh: unknown format %q", f.Format)
	}
	if len(f.Verts)%2 != 0 {
		return nil, fmt.Errorf("mesh: odd vertex array length %d", len(f.Verts))
	}
	if len(f.Tris)%3 != 0 {
		return nil, fmt.Errorf("mesh: triangle array length %d not divisible by 3", len(f.Tris))
	}
	m := &Mesh{
		Verts: make([]geom.Point, len(f.Verts)/2),
		Tris:  make([][3]int32, len(f.Tris)/3),
	}
	for i := range m.Verts {
		m.Verts[i] = geom.Pt(f.Verts[2*i], f.Verts[2*i+1])
	}
	for i := range m.Tris {
		m.Tris[i] = [3]int32{f.Tris[3*i], f.Tris[3*i+1], f.Tris[3*i+2]}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ContentHash returns a hex SHA-256 digest of the mesh's geometry and
// connectivity (IEEE-754 bit patterns of every vertex, then every triangle
// index, little-endian). Two meshes hash equal iff their Verts and Tris are
// identical, which makes the digest a stable cache key for derived artifacts
// (decoded meshes, projected fields, evaluators, tilings) in long-running
// services.
func (m *Mesh) ContentHash() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(m.Verts)))
	h.Write(buf[:])
	for _, v := range m.Verts {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.X))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Y))
		h.Write(buf[:])
	}
	for _, t := range m.Tris {
		for _, idx := range t {
			binary.LittleEndian.PutUint32(buf[:4], uint32(idx))
			h.Write(buf[:4])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
