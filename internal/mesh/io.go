package mesh

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"unstencil/internal/geom"
)

// fileFormat is the on-disk JSON schema. Vertices are flattened to
// [x0, y0, x1, y1, ...] and triangles to [a0, b0, c0, a1, ...] to keep
// files compact without a binary format.
type fileFormat struct {
	Format string    `json:"format"`
	Verts  []float64 `json:"verts"`
	Tris   []int32   `json:"tris"`
}

const formatName = "unstencil-mesh-v1"

// Encode writes the mesh as JSON to w.
func Encode(w io.Writer, m *Mesh) error {
	f := fileFormat{
		Format: formatName,
		Verts:  make([]float64, 0, 2*len(m.Verts)),
		Tris:   make([]int32, 0, 3*len(m.Tris)),
	}
	for _, v := range m.Verts {
		f.Verts = append(f.Verts, v.X, v.Y)
	}
	for _, t := range m.Tris {
		f.Tris = append(f.Tris, t[0], t[1], t[2])
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&f); err != nil {
		return fmt.Errorf("mesh: encode: %w", err)
	}
	return bw.Flush()
}

// Decode reads a mesh previously written by Encode and validates it.
func Decode(r io.Reader) (*Mesh, error) {
	var f fileFormat
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&f); err != nil {
		return nil, fmt.Errorf("mesh: decode: %w", err)
	}
	if f.Format != formatName {
		return nil, fmt.Errorf("mesh: unknown format %q", f.Format)
	}
	if len(f.Verts)%2 != 0 {
		return nil, fmt.Errorf("mesh: odd vertex array length %d", len(f.Verts))
	}
	if len(f.Tris)%3 != 0 {
		return nil, fmt.Errorf("mesh: triangle array length %d not divisible by 3", len(f.Tris))
	}
	m := &Mesh{
		Verts: make([]geom.Point, len(f.Verts)/2),
		Tris:  make([][3]int32, len(f.Tris)/3),
	}
	for i := range m.Verts {
		m.Verts[i] = geom.Pt(f.Verts[2*i], f.Verts[2*i+1])
	}
	for i := range m.Tris {
		m.Tris[i] = [3]int32{f.Tris[3*i], f.Tris[3*i+1], f.Tris[3*i+2]}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
