package mesh

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"unstencil/internal/geom"
)

func TestStructuredBasics(t *testing.T) {
	m := Structured(4)
	if m.NumTris() != 32 {
		t.Fatalf("NumTris = %d, want 32", m.NumTris())
	}
	if m.NumVerts() != 25 {
		t.Fatalf("NumVerts = %d, want 25", m.NumVerts())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Errorf("TotalArea = %v, want 1", m.TotalArea())
	}
	b := m.Bounds()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(1, 1) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestStructuredStats(t *testing.T) {
	m := Structured(10)
	s := m.Stats()
	if math.Abs(s.MaxEdge-math.Sqrt2*0.1) > 1e-12 {
		t.Errorf("MaxEdge = %v", s.MaxEdge)
	}
	if math.Abs(s.MinEdge-0.1) > 1e-12 {
		t.Errorf("MinEdge = %v", s.MinEdge)
	}
	if s.NumTris != 200 {
		t.Errorf("NumTris = %d", s.NumTris)
	}
	if math.Abs(s.MinAngleDeg-45) > 1e-9 {
		t.Errorf("MinAngleDeg = %v, want 45", s.MinAngleDeg)
	}
	// Stats are cached: a second call returns the same values.
	s2 := m.Stats()
	if s != s2 {
		t.Error("cached stats differ")
	}
}

func TestValidateCatchesBadMeshes(t *testing.T) {
	m := &Mesh{Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, Tris: [][3]int32{{0, 1, 5}}}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("want out-of-range error, got %v", err)
	}
	m = &Mesh{Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, Tris: [][3]int32{{0, 1, 1}}}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "repeated") {
		t.Errorf("want repeated-vertex error, got %v", err)
	}
	// CW triangle: non-positive area.
	m = &Mesh{Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, Tris: [][3]int32{{0, 2, 1}}}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "area") {
		t.Errorf("want area error, got %v", err)
	}
	m = &Mesh{}
	if err := m.Validate(); err == nil {
		t.Error("empty mesh should not validate")
	}
}

func TestJitteredStructured(t *testing.T) {
	m := JitteredStructured(16, 0.3, 7)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumTris() != 512 {
		t.Fatalf("NumTris = %d", m.NumTris())
	}
	if math.Abs(m.TotalArea()-1) > 1e-10 {
		t.Errorf("TotalArea = %v, want 1 (mesh must cover the unit square)", m.TotalArea())
	}
	// Boundary vertices must stay on the boundary.
	b := m.Bounds()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(1, 1) {
		t.Errorf("Bounds = %v, want unit square", b)
	}
	// Reproducible for equal seeds, different for different seeds.
	m2 := JitteredStructured(16, 0.3, 7)
	if m.Verts[40] != m2.Verts[40] {
		t.Error("same seed should reproduce the mesh")
	}
	m3 := JitteredStructured(16, 0.3, 8)
	same := 0
	for i := range m.Verts {
		if m.Verts[i] == m3.Verts[i] {
			same++
		}
	}
	if same == len(m.Verts) {
		t.Error("different seeds should differ")
	}
}

func TestJitteredStructuredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for jitter >= 0.5")
		}
	}()
	JitteredStructured(4, 0.6, 1)
}

func TestLowVarianceMesh(t *testing.T) {
	m, err := LowVariance(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Errorf("TotalArea = %v, want 1", m.TotalArea())
	}
	s := m.Stats()
	if s.CV > 0.45 {
		t.Errorf("low-variance mesh has CV %v, expected < 0.45", s.CV)
	}
	// Triangle count close to 2n².
	if m.NumTris() < 250 || m.NumTris() > 300 {
		t.Errorf("NumTris = %d, want ~288", m.NumTris())
	}
}

func TestHighVarianceMesh(t *testing.T) {
	lv, err := LowVariance(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	hv, err := HighVariance(12, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv.TotalArea()-1) > 1e-9 {
		t.Errorf("TotalArea = %v, want 1", hv.TotalArea())
	}
	if hv.Stats().CV <= lv.Stats().CV {
		t.Errorf("high-variance CV %v should exceed low-variance CV %v",
			hv.Stats().CV, lv.Stats().CV)
	}
	if hv.Stats().AreaRatio < 8 {
		t.Errorf("high-variance area ratio %v too small", hv.Stats().AreaRatio)
	}
}

func TestSizedGenerators(t *testing.T) {
	m, err := SizedLowVariance(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTris() < 3400 || m.NumTris() > 4600 {
		t.Errorf("SizedLowVariance(4000) gave %d triangles", m.NumTris())
	}
	hv, err := SizedHighVariance(1000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hv.NumTris() < 800 || hv.NumTris() > 1200 {
		t.Errorf("SizedHighVariance(1000) gave %d triangles", hv.NumTris())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := LowVariance(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTris() != m.NumTris() || got.NumVerts() != m.NumVerts() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			got.NumTris(), got.NumVerts(), m.NumTris(), m.NumVerts())
	}
	for i := range m.Verts {
		if m.Verts[i] != got.Verts[i] {
			t.Fatalf("vertex %d changed", i)
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != got.Tris[i] {
			t.Fatalf("triangle %d changed", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should error")
	}
	if _, err := Decode(strings.NewReader(`{"format":"bogus"}`)); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := Decode(strings.NewReader(`{"format":"unstencil-mesh-v1","verts":[1],"tris":[]}`)); err == nil {
		t.Error("odd verts should error")
	}
	if _, err := Decode(strings.NewReader(`{"format":"unstencil-mesh-v1","verts":[0,0,1,0,0,1],"tris":[0,1]}`)); err == nil {
		t.Error("bad tri count should error")
	}
}

func TestPartitionBasics(t *testing.T) {
	m := Structured(8) // 128 triangles
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		ids := Partition(m, k)
		if len(ids) != m.NumTris() {
			t.Fatalf("k=%d: len(ids) = %d", k, len(ids))
		}
		sizes := PatchSizes(ids, k)
		minSz, maxSz := m.NumTris(), 0
		for _, s := range sizes {
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		if minSz == 0 {
			t.Errorf("k=%d: empty patch", k)
		}
		if maxSz-minSz > m.NumTris()/k {
			t.Errorf("k=%d: imbalanced patches %v", k, sizes)
		}
	}
}

func TestPartitionSpatialLocality(t *testing.T) {
	m := Structured(16)
	k := 4
	ids := Partition(m, k)
	bs := PatchBounds(m, ids, k)
	// Each patch bounding box should be much smaller than the domain: for
	// 4 patches of a unit square, area about 1/4 each (allow slack).
	for i, b := range bs {
		if b.Area() > 0.5 {
			t.Errorf("patch %d bounding box area %v too large (poor locality)", i, b.Area())
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k < 1")
		}
	}()
	Partition(Structured(2), 0)
}

func BenchmarkStructured64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Structured(64)
	}
}

func BenchmarkPartition(b *testing.B) {
	m := Structured(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(m, 16)
	}
}

func TestPartitionWeighted(t *testing.T) {
	m := Structured(8)
	// Give the left half of the domain 10x the weight; the weighted
	// bisection must put fewer elements into left-side patches.
	weights := make([]float64, m.NumTris())
	for e := range weights {
		if m.Centroid(e).X < 0.5 {
			weights[e] = 10
		} else {
			weights[e] = 1
		}
	}
	ids := PartitionWeighted(m, 4, weights)
	perPatch := make([]float64, 4)
	for e, id := range ids {
		perPatch[id] += weights[e]
	}
	total := 0.0
	for _, w := range perPatch {
		total += w
	}
	for p, w := range perPatch {
		if w < total/4*0.5 || w > total/4*1.7 {
			t.Errorf("patch %d weight %v far from balanced share %v", p, w, total/4)
		}
	}
	// Every patch still non-empty.
	for _, sz := range PatchSizes(ids, 4) {
		if sz == 0 {
			t.Error("empty patch")
		}
	}
}

func TestPartitionWeightedPanics(t *testing.T) {
	m := Structured(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong weight count")
		}
	}()
	PartitionWeighted(m, 2, []float64{1})
}

// Opposite boundaries of generated meshes must have matching vertex
// positions so the dG solver can identify them periodically.
func TestGeneratedBoundariesMatchPeriodically(t *testing.T) {
	m, err := LowVariance(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	var left, right, bottom, top []float64
	for _, v := range m.Verts {
		switch {
		case v.X == 0:
			left = append(left, v.Y)
		case v.X == 1:
			right = append(right, v.Y)
		}
		switch {
		case v.Y == 0:
			bottom = append(bottom, v.X)
		case v.Y == 1:
			top = append(top, v.X)
		}
	}
	sort.Float64s(left)
	sort.Float64s(right)
	sort.Float64s(bottom)
	sort.Float64s(top)
	if len(left) != len(right) || len(bottom) != len(top) {
		t.Fatalf("boundary vertex counts differ: %d/%d, %d/%d",
			len(left), len(right), len(bottom), len(top))
	}
	for i := range left {
		if math.Abs(left[i]-right[i]) > 1e-12 {
			t.Fatalf("left/right boundary mismatch at %d: %v vs %v", i, left[i], right[i])
		}
	}
	for i := range bottom {
		if math.Abs(bottom[i]-top[i]) > 1e-12 {
			t.Fatalf("bottom/top boundary mismatch at %d: %v vs %v", i, bottom[i], top[i])
		}
	}
}

func TestHighVarianceGradingMonotone(t *testing.T) {
	// Stronger grading produces a higher area ratio.
	mild, err := HighVariance(14, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	steep, err := HighVariance(14, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	if steep.Stats().AreaRatio <= mild.Stats().AreaRatio {
		t.Errorf("grading 32 area ratio %v should exceed grading 4's %v",
			steep.Stats().AreaRatio, mild.Stats().AreaRatio)
	}
	// Grading 1 degenerates to the unwarped lattice (still valid).
	flat, err := HighVariance(10, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
}
