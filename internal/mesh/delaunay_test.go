package mesh

import (
	"math"
	"math/rand"
	"testing"

	"unstencil/internal/geom"
)

func TestDelaunaySquare(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	m, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTris() != 2 {
		t.Fatalf("NumTris = %d, want 2", m.NumTris())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Errorf("TotalArea = %v", m.TotalArea())
	}
}

func TestDelaunayErrors(t *testing.T) {
	if _, err := Delaunay([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Error("2 points should error")
	}
	if _, err := Delaunay([]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0, 0)}); err == nil {
		t.Error("coincident points should error")
	}
	if _, err := Delaunay([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(math.NaN(), 1)}); err == nil {
		t.Error("NaN point should error")
	}
}

func TestDelaunayDuplicatesSkipped(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(0, 0)}
	m, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Errorf("TotalArea = %v", m.TotalArea())
	}
}

// The defining Delaunay property: no vertex lies strictly inside any
// triangle's circumcircle.
func TestDelaunayEmptyCircumcircle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	for i := 0; i < 120; i++ {
		pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
	}
	m, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumTris(); i++ {
		tri := m.Triangle(i)
		c, r2, ok := tri.Circumcircle()
		if !ok {
			t.Fatalf("degenerate triangle %d", i)
		}
		for vi, v := range m.Verts {
			d2 := v.Sub(c).Dot(v.Sub(c))
			if d2 < r2*(1-1e-9) {
				t.Fatalf("vertex %d %v strictly inside circumcircle of triangle %d",
					vi, v, i)
			}
		}
	}
}

// A triangulation of points whose hull is the unit square must cover it:
// total area 1 and every probe point inside some triangle.
func TestDelaunayCoversSquare(t *testing.T) {
	m, err := LowVariance(10, 13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Fatalf("TotalArea = %v", m.TotalArea())
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		found := false
		for i := 0; i < m.NumTris(); i++ {
			if m.Triangle(i).Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("probe %v not covered", p)
		}
	}
}

// Every interior edge must be shared by exactly two triangles, boundary
// edges by one (manifold property). Euler's formula V - E + F = 1 holds for
// a triangulated disc (counting only the interior faces).
func TestDelaunayTopology(t *testing.T) {
	m, err := LowVariance(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	type edge struct{ a, b int32 }
	canon := func(a, b int32) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	count := map[edge]int{}
	for _, tr := range m.Tris {
		count[canon(tr[0], tr[1])]++
		count[canon(tr[1], tr[2])]++
		count[canon(tr[2], tr[0])]++
	}
	boundary := 0
	for e, c := range count {
		switch c {
		case 1:
			boundary++
		case 2:
		default:
			t.Fatalf("edge %v shared by %d triangles", e, c)
		}
	}
	v := m.NumVerts()
	e := len(count)
	f := m.NumTris()
	if v-e+f != 1 {
		t.Errorf("Euler characteristic V-E+F = %d, want 1 (V=%d E=%d F=%d)",
			v-e+f, v, e, f)
	}
	if boundary < 4 {
		t.Errorf("only %d boundary edges", boundary)
	}
}

func TestDelaunayCollinearBoundaryPoints(t *testing.T) {
	// Regular boundary subdivision: many exactly-collinear points, the
	// degenerate case the insertion order is designed to handle.
	var pts []geom.Point
	n := 8
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		pts = append(pts, geom.Pt(f, 0), geom.Pt(f, 1), geom.Pt(0, f), geom.Pt(1, f))
	}
	pts = append(pts, geom.Pt(0.5, 0.5))
	m, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Errorf("TotalArea = %v", m.TotalArea())
	}
}

func TestDelaunayGridWithCocircularPoints(t *testing.T) {
	// A perfect lattice has massively cocircular quadruples; the result
	// must still be a valid covering triangulation (ties broken
	// arbitrarily).
	var pts []geom.Point
	n := 6
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			pts = append(pts, geom.Pt(float64(i)/float64(n), float64(j)/float64(n)))
		}
	}
	m, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Errorf("TotalArea = %v, want 1", m.TotalArea())
	}
	if m.NumTris() != 2*n*n {
		t.Errorf("NumTris = %d, want %d", m.NumTris(), 2*n*n)
	}
}

func TestDelaunayLargeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := LowVariance(40, 77) // ~3200 triangles
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Errorf("TotalArea = %v", m.TotalArea())
	}
}

func BenchmarkDelaunay1k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Delaunay(pts); err != nil {
			b.Fatal(err)
		}
	}
}
