package mesh

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"unstencil/internal/geom"
)

// Non-finite vertex coordinates must never survive decoding or validation:
// they would poison every downstream geometric predicate (bounding boxes,
// hash-grid cell indices, clipping) with NaN-propagation rather than a clean
// error.
func TestValidateRejectsNonFiniteVerts(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		m := Structured(2)
		m.Verts[1] = geom.Pt(v, 0.5)
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted vertex coordinate %v", v)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("coordinate %v: error %q does not mention non-finite", v, err)
		}
	}
}

func TestDecodeRejectsNonFiniteVerts(t *testing.T) {
	// Standard JSON cannot spell NaN/Inf literals, but out-of-range numbers
	// like 1e999 are the closest a malicious or corrupted payload gets; they
	// must be rejected, not silently clamped.
	in := `{"format":"unstencil-mesh-v1","verts":[0,0,1e999,0,0,1],"tris":[0,1,2]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("Decode accepted an overflowing vertex coordinate")
	}
}

func TestContentHashStable(t *testing.T) {
	m := Structured(4)
	h1 := m.ContentHash()
	h2 := m.ContentHash()
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h1))
	}

	// Round-tripping through Encode/Decode must preserve the hash — the
	// property the service's upload-once cache keying relies on.
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash() != h1 {
		t.Error("Encode/Decode round trip changed the content hash")
	}
}

func TestContentHashDistinguishes(t *testing.T) {
	a := Structured(4)
	b := Structured(4)
	b.Verts[0] = geom.Pt(b.Verts[0].X+1e-12, b.Verts[0].Y)
	if a.ContentHash() == b.ContentHash() {
		t.Error("hash collision on perturbed vertex")
	}
	c := Structured(4)
	c.Tris[0][0], c.Tris[0][1], c.Tris[0][2] = c.Tris[0][1], c.Tris[0][2], c.Tris[0][0]
	if a.ContentHash() == c.ContentHash() {
		t.Error("hash collision on rotated connectivity")
	}
	d := Structured(5)
	if a.ContentHash() == d.ContentHash() {
		t.Error("hash collision on different mesh size")
	}
}

// Regression: PartitionWeighted used to panic (negative slice bound) when k
// exceeds the element count and the recursive bisection's per-side quotas
// outran the elements available. It must instead leave surplus patches
// empty while covering every element exactly once.
func TestPartitionMorePatchesThanElements(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		m := Structured(n) // 2n² triangles
		for _, k := range []int{m.NumTris() + 1, m.NumTris() + 7, 3 * m.NumTris()} {
			for _, weighted := range []bool{false, true} {
				var ids []int
				if weighted {
					w := make([]float64, m.NumTris())
					for i := range w {
						w[i] = float64(i%5 + 1)
					}
					ids = PartitionWeighted(m, k, w)
				} else {
					ids = Partition(m, k)
				}
				if len(ids) != m.NumTris() {
					t.Fatalf("n=%d k=%d: %d ids", n, k, len(ids))
				}
				for e, id := range ids {
					if id < 0 || id >= k {
						t.Fatalf("n=%d k=%d: element %d in out-of-range patch %d", n, k, e, id)
					}
				}
			}
		}
	}
}
