package mesh

import (
	"fmt"
	"sort"

	"unstencil/internal/geom"
)

// Partition assigns each triangle to one of k patches by recursive bisection
// of element centroids (paper §4: "Patch construction follows from simple
// recursive bisection of the mesh elements until there are k patches of
// roughly equal size"). Splits alternate with the longer axis of each
// region's bounding box, which keeps patch perimeters short — the quantity
// that controls the overlapped-tiling memory overhead.
//
// The returned slice maps triangle index to patch id in [0, k).
func Partition(m *Mesh, k int) []int {
	return PartitionWeighted(m, k, nil)
}

// PartitionWeighted is Partition with per-element workload weights: splits
// place (approximately) equal total weight on each side, so patches have
// roughly equal *work* rather than equal element counts — the distinction
// matters on high-variance meshes where per-element cost varies by orders
// of magnitude. nil weights mean uniform (plain Partition).
func PartitionWeighted(m *Mesh, k int, weights []float64) []int {
	if k < 1 {
		panic(fmt.Sprintf("mesh: Partition needs k >= 1, got %d", k))
	}
	if weights != nil && len(weights) != m.NumTris() {
		panic(fmt.Sprintf("mesh: %d weights for %d triangles", len(weights), m.NumTris()))
	}
	ids := make([]int, m.NumTris())
	order := make([]int32, m.NumTris())
	for i := range order {
		order[i] = int32(i)
	}
	cents := make([]geom.Point, m.NumTris())
	for i := range cents {
		cents[i] = m.Centroid(i)
	}
	wt := func(e int32) float64 {
		if weights == nil {
			return 1
		}
		return weights[e]
	}
	next := 0
	var bisect func(elems []int32, parts int)
	bisect = func(elems []int32, parts int) {
		// More parts than elements: shrink to one part per element; the
		// surplus patches stay empty (callers tolerate patch ids that
		// receive no elements). Without this clamp the quota arithmetic
		// below can demand more elements than the split has.
		if parts > len(elems) {
			parts = len(elems)
		}
		if parts <= 1 || len(elems) <= 1 {
			id := next
			next++
			for _, e := range elems {
				ids[e] = id
			}
			return
		}
		// Split proportionally so non-power-of-two part counts stay
		// balanced.
		leftParts := parts / 2
		rightParts := parts - leftParts

		b := geom.EmptyAABB()
		for _, e := range elems {
			b = b.Extend(cents[e])
		}
		if b.Width() >= b.Height() {
			sort.Slice(elems, func(i, j int) bool {
				return cents[elems[i]].X < cents[elems[j]].X
			})
		} else {
			sort.Slice(elems, func(i, j int) bool {
				return cents[elems[i]].Y < cents[elems[j]].Y
			})
		}
		// Cut at the weighted split point. Every part must receive at
		// least one element.
		total := 0.0
		for _, e := range elems {
			total += wt(e)
		}
		target := total * float64(leftParts) / float64(parts)
		cut := 0
		acc := 0.0
		for cut < len(elems)-1 && acc+wt(elems[cut]) <= target {
			acc += wt(elems[cut])
			cut++
		}
		if cut < leftParts {
			cut = leftParts
		}
		if len(elems)-cut < rightParts {
			cut = len(elems) - rightParts
		}
		bisect(elems[:cut], leftParts)
		bisect(elems[cut:], rightParts)
	}
	bisect(order, k)
	return ids
}

// PatchSizes returns the element count of each patch given a Partition
// result.
func PatchSizes(ids []int, k int) []int {
	sizes := make([]int, k)
	for _, id := range ids {
		sizes[id]++
	}
	return sizes
}

// PatchBounds returns the bounding box of each patch's triangles.
func PatchBounds(m *Mesh, ids []int, k int) []geom.AABB {
	bs := make([]geom.AABB, k)
	for i := range bs {
		bs[i] = geom.EmptyAABB()
	}
	for t, id := range ids {
		tri := m.Triangle(t)
		bs[id] = bs[id].Extend(tri.A).Extend(tri.B).Extend(tri.C)
	}
	return bs
}
