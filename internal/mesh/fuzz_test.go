package mesh

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte strings to Decode, seeded with valid
// Encode output, asserting Decode never panics and that anything it accepts
// passes Validate and round-trips Encode→Decode with an identical content
// hash. Go's fuzzer mutates the seeds, exercising truncation, digit noise in
// coordinates, and index corruption.
func FuzzDecode(f *testing.F) {
	seed := func(m *Mesh) {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(Structured(2))
	seed(Structured(4))
	if m, err := LowVariance(6, 3); err == nil {
		seed(m)
	}
	f.Add([]byte(`{"format":"unstencil-mesh-v1","verts":[],"tris":[]}`))
	f.Add([]byte(`{"format":"unstencil-mesh-v1","verts":[0,0,1,0,0,1],"tris":[0,1,2]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Decode accepted a mesh that fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("Encode failed on decoded mesh: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-Decode of Encode output failed: %v", err)
		}
		if again.ContentHash() != m.ContentHash() {
			t.Fatal("Encode→Decode round trip changed the content hash")
		}
	})
}
