package mesh

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"unstencil/internal/geom"
)

// Delaunay computes the Delaunay triangulation of the given point set using
// the Bowyer–Watson incremental algorithm with walking point location.
// Points are inserted boundary-first in sorted order along each hull line
// and interior points in Morton (Z-curve) order, which keeps walks short and
// avoids the exactly-on-edge degeneracies that collinear boundary points
// would otherwise trigger. Exact duplicate points are skipped.
//
// The result references the input slice's indexing: output triangles index
// into a copy of pts.
func Delaunay(pts []geom.Point) (*Mesh, error) {
	if len(pts) < 3 {
		return nil, errors.New("mesh: Delaunay needs at least 3 points")
	}
	d, err := newTriangulator(pts)
	if err != nil {
		return nil, err
	}
	for _, idx := range d.order {
		if err := d.insert(idx); err != nil {
			return nil, fmt.Errorf("mesh: inserting point %d %v: %w", idx, pts[idx], err)
		}
	}
	return d.extract(), nil
}

// bwTri is a triangle in the working triangulation. Edge e is the directed
// edge (v[e], v[(e+1)%3]); n[e] is the index of the neighbouring triangle
// across that edge, or -1 on the hull.
type bwTri struct {
	v     [3]int32
	n     [3]int32
	alive bool
}

type triangulator struct {
	verts []geom.Point // input points followed by 3 super-triangle vertices
	nIn   int          // number of input points
	tris  []bwTri
	free  []int32
	last  int32 // walk start hint
	order []int32
}

func newTriangulator(pts []geom.Point) (*triangulator, error) {
	b := geom.EmptyAABB()
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, errors.New("mesh: non-finite input point")
		}
		b = b.Extend(p)
	}
	span := math.Max(b.Width(), b.Height())
	if span == 0 {
		return nil, errors.New("mesh: all points coincide")
	}
	c := b.Center()
	m := 20 * span
	d := &triangulator{
		verts: append(append([]geom.Point{}, pts...),
			geom.Pt(c.X-m, c.Y-m),
			geom.Pt(c.X+m, c.Y-m),
			geom.Pt(c.X, c.Y+m),
		),
		nIn: len(pts),
	}
	s0, s1, s2 := int32(len(pts)), int32(len(pts)+1), int32(len(pts)+2)
	d.tris = append(d.tris, bwTri{v: [3]int32{s0, s1, s2}, n: [3]int32{-1, -1, -1}, alive: true})
	d.order = insertionOrder(pts, b)
	return d, nil
}

// insertionOrder sorts hull-line points first (each boundary line in
// coordinate order) and the remaining points along a Morton curve.
func insertionOrder(pts []geom.Point, b geom.AABB) []int32 {
	var boundary, interior []int32
	onLine := func(v, limit float64) bool { return v == limit }
	for i, p := range pts {
		if onLine(p.X, b.Min.X) || onLine(p.X, b.Max.X) ||
			onLine(p.Y, b.Min.Y) || onLine(p.Y, b.Max.Y) {
			boundary = append(boundary, int32(i))
		} else {
			interior = append(interior, int32(i))
		}
	}
	sort.Slice(boundary, func(a, c int) bool {
		pa, pc := pts[boundary[a]], pts[boundary[c]]
		if pa.X != pc.X {
			return pa.X < pc.X
		}
		return pa.Y < pc.Y
	})
	sx := b.Width()
	sy := b.Height()
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	key := func(i int32) uint64 {
		p := pts[i]
		x := uint32((p.X - b.Min.X) / sx * 65535)
		y := uint32((p.Y - b.Min.Y) / sy * 65535)
		return morton(x, y)
	}
	sort.Slice(interior, func(a, c int) bool { return key(interior[a]) < key(interior[c]) })
	return append(boundary, interior...)
}

func morton(x, y uint32) uint64 {
	spread := func(v uint32) uint64 {
		z := uint64(v)
		z = (z | z<<16) & 0x0000ffff0000ffff
		z = (z | z<<8) & 0x00ff00ff00ff00ff
		z = (z | z<<4) & 0x0f0f0f0f0f0f0f0f
		z = (z | z<<2) & 0x3333333333333333
		z = (z | z<<1) & 0x5555555555555555
		return z
	}
	return spread(x) | spread(y)<<1
}

// locate walks from the hint triangle to a triangle containing p.
func (d *triangulator) locate(p geom.Point) (int32, error) {
	t := d.last
	if t < 0 || int(t) >= len(d.tris) || !d.tris[t].alive {
		t = d.anyAlive()
	}
	maxSteps := 4*len(d.tris) + 64
	for step := 0; step < maxSteps; step++ {
		tr := &d.tris[t]
		moved := false
		for e := 0; e < 3; e++ {
			a := d.verts[tr.v[e]]
			b := d.verts[tr.v[(e+1)%3]]
			if geom.Orient(a, b, p) < 0 {
				nb := tr.n[e]
				if nb < 0 {
					return -1, errors.New("walked off the triangulation hull")
				}
				t = nb
				moved = true
				break
			}
		}
		if !moved {
			return t, nil
		}
	}
	// Fallback: exhaustive scan (degenerate walk cycles are possible with
	// floating-point orientation ties).
	for i := range d.tris {
		if !d.tris[i].alive {
			continue
		}
		tr := d.tris[i]
		tri := geom.Triangle{A: d.verts[tr.v[0]], B: d.verts[tr.v[1]], C: d.verts[tr.v[2]]}
		if tri.Contains(p) {
			return int32(i), nil
		}
	}
	return -1, errors.New("point not located in any triangle")
}

func (d *triangulator) anyAlive() int32 {
	for i := range d.tris {
		if d.tris[i].alive {
			return int32(i)
		}
	}
	return -1
}

func (d *triangulator) insert(pi int32) error {
	p := d.verts[pi]
	t0, err := d.locate(p)
	if err != nil {
		return err
	}
	// Skip exact duplicates of the containing triangle's vertices.
	for _, v := range d.tris[t0].v {
		if d.verts[v] == p {
			return nil
		}
	}

	// Grow the cavity: all triangles whose circumcircle strictly contains p,
	// found by BFS from the containing triangle. Neighbours across edges the
	// point lies (numerically) on are seeded too, which handles on-edge
	// insertions.
	cavity := map[int32]bool{t0: true}
	queue := []int32{t0}
	tr0 := d.tris[t0]
	for e := 0; e < 3; e++ {
		a := d.verts[tr0.v[e]]
		b := d.verts[tr0.v[(e+1)%3]]
		if nb := tr0.n[e]; nb >= 0 && math.Abs(geom.Orient(a, b, p)) < 1e-14 {
			if !cavity[nb] {
				cavity[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tr := d.tris[t]
		for e := 0; e < 3; e++ {
			nb := tr.n[e]
			if nb < 0 || cavity[nb] {
				continue
			}
			ntr := d.tris[nb]
			tri := geom.Triangle{A: d.verts[ntr.v[0]], B: d.verts[ntr.v[1]], C: d.verts[ntr.v[2]]}
			if tri.InCircumcircle(p) {
				cavity[nb] = true
				queue = append(queue, nb)
			}
		}
	}

	// Collect directed boundary edges (a, b) of the cavity with the outside
	// neighbour across each.
	type bedge struct {
		a, b    int32
		outside int32
	}
	var boundary []bedge
	for t := range cavity {
		tr := d.tris[t]
		for e := 0; e < 3; e++ {
			nb := tr.n[e]
			if nb >= 0 && cavity[nb] {
				continue
			}
			boundary = append(boundary, bedge{tr.v[e], tr.v[(e+1)%3], nb})
		}
	}
	if len(boundary) < 3 {
		return errors.New("cavity boundary degenerate")
	}

	// Retire cavity triangles.
	for t := range cavity {
		d.tris[t].alive = false
		d.free = append(d.free, t)
	}

	// Create one new triangle (a, b, p) per boundary edge and wire
	// adjacency. startAt[a] is the new triangle whose boundary edge starts
	// at vertex a; endAt[b] the one whose boundary edge ends at b.
	startAt := make(map[int32]int32, len(boundary))
	endAt := make(map[int32]int32, len(boundary))
	newTris := make([]int32, len(boundary))
	for i, be := range boundary {
		t := d.alloc()
		d.tris[t] = bwTri{
			v:     [3]int32{be.a, be.b, pi},
			n:     [3]int32{be.outside, -1, -1},
			alive: true,
		}
		if be.outside >= 0 {
			d.setNeighbor(be.outside, be.b, be.a, t)
		}
		startAt[be.a] = t
		endAt[be.b] = t
		newTris[i] = t
	}
	for i, be := range boundary {
		t := newTris[i]
		// Edge 1 is (b, p): adjacent to the new triangle whose boundary
		// edge starts at b. Edge 2 is (p, a): adjacent to the one whose
		// boundary edge ends at a.
		n1, ok1 := startAt[be.b]
		n2, ok2 := endAt[be.a]
		if !ok1 || !ok2 {
			return errors.New("cavity boundary is not a closed loop")
		}
		d.tris[t].n[1] = n1
		d.tris[t].n[2] = n2
	}
	d.last = newTris[0]
	return nil
}

// alloc returns a triangle slot, reusing freed ones.
func (d *triangulator) alloc() int32 {
	if n := len(d.free); n > 0 {
		t := d.free[n-1]
		d.free = d.free[:n-1]
		return t
	}
	d.tris = append(d.tris, bwTri{})
	return int32(len(d.tris) - 1)
}

// setNeighbor finds the edge (a, b) in triangle t and points it at nb.
func (d *triangulator) setNeighbor(t, a, b, nb int32) {
	tr := &d.tris[t]
	for e := 0; e < 3; e++ {
		if tr.v[e] == a && tr.v[(e+1)%3] == b {
			tr.n[e] = nb
			return
		}
	}
}

// extract drops the super-triangle and returns the final mesh.
func (d *triangulator) extract() *Mesh {
	m := &Mesh{Verts: d.verts[:d.nIn]}
	for _, tr := range d.tris {
		if !tr.alive {
			continue
		}
		if int(tr.v[0]) >= d.nIn || int(tr.v[1]) >= d.nIn || int(tr.v[2]) >= d.nIn {
			continue
		}
		m.Tris = append(m.Tris, tr.v)
	}
	return m
}
