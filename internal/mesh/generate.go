package mesh

import (
	"fmt"
	"math"
	"math/rand"

	"unstencil/internal/geom"
)

// Structured returns a structured triangular mesh of the unit square: an
// n×n grid of cells, each split into two right triangles (2n² triangles).
func Structured(n int) *Mesh {
	if n < 1 {
		panic(fmt.Sprintf("mesh: Structured needs n >= 1, got %d", n))
	}
	m := &Mesh{}
	h := 1 / float64(n)
	idx := func(i, j int) int32 { return int32(j*(n+1) + i) }
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			m.Verts = append(m.Verts, geom.Pt(float64(i)*h, float64(j)*h))
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a, b := idx(i, j), idx(i+1, j)
			c, d := idx(i+1, j+1), idx(i, j+1)
			m.Tris = append(m.Tris, [3]int32{a, b, c}, [3]int32{a, c, d})
		}
	}
	return m
}

// pointLattice builds the vertex set for the unstructured generators: an
// (n+1)×(n+1) lattice on [0,1]² whose interior points are jittered by
// jitter·h and whose coordinates are optionally warped by a monotone map
// [0,1]→[0,1] (identity when warp is nil). Boundary points stay on the
// boundary (jittered only tangentially) so the mesh covers the square
// exactly, and opposite boundaries receive *matching* tangential jitter so
// boundary vertices pair up under the periodic identification — which is
// what lets the dG solver wrap fluxes across the domain.
func pointLattice(n int, jitter float64, warp func(float64) float64, rng *rand.Rand) []geom.Point {
	if warp == nil {
		warp = func(x float64) float64 { return x }
	}
	h := 1 / float64(n)
	// Warped lattice coordinates and the local (warped) spacing at each
	// index; jitter scales with the local spacing so graded regions do not
	// produce inverted or sliver triangles.
	ws := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		ws[i] = warp(float64(i) * h)
	}
	spacing := func(i int) float64 {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		return (ws[hi] - ws[lo]) / float64(hi-lo)
	}
	jx := make([]float64, (n+1)*(n+1))
	jy := make([]float64, (n+1)*(n+1))
	at := func(i, j int) int { return j*(n+1) + i }
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			jx[at(i, j)] = (rng.Float64()*2 - 1) * jitter * spacing(i)
			jy[at(i, j)] = (rng.Float64()*2 - 1) * jitter * spacing(j)
		}
	}
	for k := 0; k <= n; k++ {
		// Left/right columns: no normal jitter, matching tangential jitter.
		jx[at(0, k)], jx[at(n, k)] = 0, 0
		jy[at(n, k)] = jy[at(0, k)]
		// Bottom/top rows likewise.
		jy[at(k, 0)], jy[at(k, n)] = 0, 0
		jx[at(k, n)] = jx[at(k, 0)]
	}
	// Corners stay put entirely.
	for _, c := range [][2]int{{0, 0}, {n, 0}, {0, n}, {n, n}} {
		jx[at(c[0], c[1])] = 0
		jy[at(c[0], c[1])] = 0
	}
	pts := make([]geom.Point, 0, (n+1)*(n+1))
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			k := at(i, j)
			pts = append(pts, geom.Pt(clamp01(ws[i]+jx[k]), clamp01(ws[j]+jy[k])))
		}
	}
	return pts
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// LowVariance generates an unstructured mesh with roughly uniform element
// sizes (paper Fig. 9): a jittered lattice triangulated by Delaunay. The
// resulting triangle count is 2n². seed makes generation reproducible.
func LowVariance(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	pts := pointLattice(n, 0.35, nil, rng)
	return Delaunay(pts)
}

// HighVariance generates an unstructured mesh with strongly graded element
// sizes (paper Fig. 10): lattice coordinates are warped so elements near the
// (0,0) corner are much smaller than near (1,1), then jittered and
// Delaunay-triangulated. grading >= 1 controls the size ratio (edge lengths
// vary by roughly a factor of grading across the domain).
func HighVariance(n int, grading float64, seed int64) (*Mesh, error) {
	if grading < 1 {
		grading = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Exponential warp with bounded derivative ratio: warp'(1)/warp'(0) =
	// e^a = grading, so edge lengths vary by roughly the requested factor
	// across the domain without a singularity at the origin (a power warp
	// would make the smallest cells unboundedly small, which distorts the
	// stencil width h = max edge far beyond the paper's Fig. 10 meshes).
	var warp func(float64) float64
	if grading > 1 {
		a := math.Log(grading)
		warp = func(t float64) float64 { return (math.Exp(a*t) - 1) / (math.Exp(a) - 1) }
	}
	pts := pointLattice(n, 0.3, warp, rng)
	return Delaunay(pts)
}

// SizedLowVariance returns a low-variance mesh with approximately the given
// triangle count (the paper's 4k/16k/64k/256k/1024k series).
func SizedLowVariance(tris int, seed int64) (*Mesh, error) {
	n := latticeSideFor(tris)
	return LowVariance(n, seed)
}

// SizedHighVariance returns a high-variance mesh with approximately the
// given triangle count.
func SizedHighVariance(tris int, grading float64, seed int64) (*Mesh, error) {
	n := latticeSideFor(tris)
	return HighVariance(n, grading, seed)
}

// latticeSideFor returns n such that 2n² ≈ tris.
func latticeSideFor(tris int) int {
	n := int(math.Round(math.Sqrt(float64(tris) / 2)))
	if n < 2 {
		n = 2
	}
	return n
}

// JitteredStructured generates an unstructured-topology mesh directly from a
// jittered lattice using the structured connectivity (no Delaunay pass).
// With jitter < 0.5 the triangulation remains valid. It is the fast
// generator for very large meshes where the Delaunay pass is not the object
// of study.
func JitteredStructured(n int, jitter float64, seed int64) *Mesh {
	if jitter < 0 || jitter >= 0.5 {
		panic(fmt.Sprintf("mesh: jitter must be in [0, 0.5), got %g", jitter))
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Mesh{Verts: pointLattice(n, jitter, nil, rng)}
	idx := func(i, j int) int32 { return int32(j*(n+1) + i) }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a, b := idx(i, j), idx(i+1, j)
			c, d := idx(i+1, j+1), idx(i, j+1)
			// Alternate the diagonal pseudo-randomly for a less regular
			// connectivity pattern.
			if (i*31+j*17+int(seed))%2 == 0 {
				m.Tris = append(m.Tris, [3]int32{a, b, c}, [3]int32{a, c, d})
			} else {
				m.Tris = append(m.Tris, [3]int32{a, b, d}, [3]int32{b, c, d})
			}
		}
	}
	for i := range m.Tris {
		if m.Triangle(i).SignedArea() < 0 {
			t := m.Tris[i]
			m.Tris[i] = [3]int32{t[0], t[2], t[1]}
		}
	}
	return m
}
