// Package grid implements the uniform spatial hash grid of paper §3.2. The
// grid stores point-like items (element centroids for the per-point scheme,
// evaluation grid points for the per-element scheme) in uniform cells over
// the unit square and answers "all items in this box" queries, optionally
// extended by a halo ring of cells.
//
// The per-point configuration uses cell size cp >= s (the longest triangle
// edge), which guarantees enclosure — no triangle spans more than two cells
// in any dimension — so a one-cell halo around the stencil bounds suffices
// to find every intersecting element. The per-element configuration stores
// single points, allowing the smaller cell size ce = s/2 and no halo.
package grid

import (
	"fmt"
	"math"

	"unstencil/internal/geom"
)

// HashGrid is a uniform hash grid over the unit square [0,1]². Item ids are
// the indices of the location slice passed to New. Storage is CSR-style
// (one flat id array plus per-cell offsets), so construction performs two
// passes and no per-cell allocations.
type HashGrid struct {
	CellSize float64
	Nx, Ny   int
	start    []int32 // len Nx*Ny+1; cell c owns ids[start[c]:start[c+1]]
	ids      []int32
}

// New builds a hash grid over the unit square containing one item per
// location. Locations outside [0,1]² are clamped into the edge cells.
func New(locations []geom.Point, cellSize float64) *HashGrid {
	if cellSize <= 0 {
		panic(fmt.Sprintf("grid: cell size must be positive, got %g", cellSize))
	}
	if cellSize > 1 {
		cellSize = 1
	}
	n := int(math.Ceil(1 / cellSize))
	g := &HashGrid{CellSize: cellSize, Nx: n, Ny: n}
	nc := n * n
	g.start = make([]int32, nc+1)
	cellOf := make([]int32, len(locations))
	for i, p := range locations {
		c := int32(g.cellIndex(p))
		cellOf[i] = c
		g.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		g.start[c+1] += g.start[c]
	}
	g.ids = make([]int32, len(locations))
	cursor := make([]int32, nc)
	copy(cursor, g.start[:nc])
	for i := range locations {
		c := cellOf[i]
		g.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// clampCell maps a continuous coordinate to a cell index in [0, n).
func clampCell(v float64, cell float64, n int) int {
	i := int(math.Floor(v / cell))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func (g *HashGrid) cellIndex(p geom.Point) int {
	i := clampCell(p.X, g.CellSize, g.Nx)
	j := clampCell(p.Y, g.CellSize, g.Ny)
	return j*g.Nx + i
}

// NumItems returns the number of stored items.
func (g *HashGrid) NumItems() int { return len(g.ids) }

// NumCells returns the total cell count.
func (g *HashGrid) NumCells() int { return g.Nx * g.Ny }

// Cell returns the ids stored in cell (i, j). The slice aliases internal
// storage and must not be modified.
func (g *HashGrid) Cell(i, j int) []int32 {
	c := j*g.Nx + i
	return g.ids[g.start[c]:g.start[c+1]]
}

// CellRange returns the inclusive cell-index bounds covering box b extended
// by halo rings of cells, clamped to the grid (paper Eq. (3): the halo term
// is the ±1 in the per-point bounds).
func (g *HashGrid) CellRange(b geom.AABB, halo int) (i0, i1, j0, j1 int) {
	i0 = clampCell(b.Min.X, g.CellSize, g.Nx) - halo
	i1 = clampCell(b.Max.X, g.CellSize, g.Nx) + halo
	j0 = clampCell(b.Min.Y, g.CellSize, g.Ny) - halo
	j1 = clampCell(b.Max.Y, g.CellSize, g.Ny) + halo
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= g.Nx {
		i1 = g.Nx - 1
	}
	if j1 >= g.Ny {
		j1 = g.Ny - 1
	}
	return
}

// ForEachInBox calls fn for every item stored in a cell overlapping box b
// extended by halo cells. Items are candidates, not guaranteed hits: the
// caller performs the precise intersection test, exactly as in the paper's
// two-phase (grid walk, then clip) structure.
func (g *HashGrid) ForEachInBox(b geom.AABB, halo int, fn func(id int32)) {
	i0, i1, j0, j1 := g.CellRange(b, halo)
	for j := j0; j <= j1; j++ {
		row := j * g.Nx
		for i := i0; i <= i1; i++ {
			c := row + i
			for _, id := range g.ids[g.start[c]:g.start[c+1]] {
				fn(id)
			}
		}
	}
}

// CountInBox returns the number of candidate items ForEachInBox would
// visit; this is exactly the paper's "number of intersection tests" metric
// (Table 1).
func (g *HashGrid) CountInBox(b geom.AABB, halo int) int {
	i0, i1, j0, j1 := g.CellRange(b, halo)
	n := 0
	for j := j0; j <= j1; j++ {
		row := j * g.Nx
		for i := i0; i <= i1; i++ {
			c := row + i
			n += int(g.start[c+1] - g.start[c])
		}
	}
	return n
}

// AppendInBox appends candidate ids to dst and returns the extended slice;
// a zero-allocation alternative to ForEachInBox for hot loops that need the
// candidates materialised.
func (g *HashGrid) AppendInBox(dst []int32, b geom.AABB, halo int) []int32 {
	i0, i1, j0, j1 := g.CellRange(b, halo)
	for j := j0; j <= j1; j++ {
		row := j * g.Nx
		for i := i0; i <= i1; i++ {
			c := row + i
			dst = append(dst, g.ids[g.start[c]:g.start[c+1]]...)
		}
	}
	return dst
}
