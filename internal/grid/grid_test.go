package grid

import (
	"math/rand"
	"sort"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func randPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestNewBasics(t *testing.T) {
	pts := randPoints(100, 1)
	g := New(pts, 0.25)
	if g.Nx != 4 || g.Ny != 4 {
		t.Fatalf("grid dims %dx%d, want 4x4", g.Nx, g.Ny)
	}
	if g.NumItems() != 100 {
		t.Fatalf("NumItems = %d", g.NumItems())
	}
	if g.NumCells() != 16 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	// Every item appears exactly once across all cells.
	seen := map[int32]int{}
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			for _, id := range g.Cell(i, j) {
				seen[id]++
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("saw %d distinct items", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("item %d appears %d times", id, c)
		}
	}
}

func TestItemsLandInCorrectCell(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), geom.Pt(0.1, 0.9), geom.Pt(0.49, 0.51)}
	g := New(pts, 0.5)
	if ids := g.Cell(0, 0); len(ids) != 1 || ids[0] != 0 {
		t.Errorf("cell(0,0) = %v", ids)
	}
	if ids := g.Cell(1, 1); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("cell(1,1) = %v", ids)
	}
	if ids := g.Cell(0, 1); len(ids) != 2 {
		t.Errorf("cell(0,1) = %v, want items 2 and 3", ids)
	}
}

func TestOutOfDomainClamped(t *testing.T) {
	pts := []geom.Point{geom.Pt(-0.5, 0.5), geom.Pt(1.5, 0.5), geom.Pt(0.5, -3), geom.Pt(0.5, 2)}
	g := New(pts, 0.5)
	total := 0
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			total += len(g.Cell(i, j))
		}
	}
	if total != 4 {
		t.Fatalf("clamped items lost: %d stored", total)
	}
}

func TestCellSizeAboveOneClamped(t *testing.T) {
	g := New(randPoints(10, 2), 5)
	if g.Nx != 1 || g.Ny != 1 {
		t.Fatalf("grid dims %dx%d, want 1x1", g.Nx, g.Ny)
	}
	if got := g.CountInBox(geom.Box(0.4, 0.4, 0.6, 0.6), 0); got != 10 {
		t.Fatalf("single-cell grid should return all items, got %d", got)
	}
}

func TestNewPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(nil, 0)
}

// Property: a box query with halo 0 returns a superset of the brute-force
// in-box items, and every returned candidate lies in a cell overlapping the
// box.
func TestPropQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(500, 3)
	g := New(pts, 0.1)
	for trial := 0; trial < 200; trial++ {
		x0, y0 := rng.Float64(), rng.Float64()
		b := geom.Box(x0, y0, x0+rng.Float64()*0.5, y0+rng.Float64()*0.5)
		got := map[int32]bool{}
		g.ForEachInBox(b, 0, func(id int32) { got[id] = true })
		// Superset check: every point actually in the box must be found.
		for i, p := range pts {
			if b.Contains(p) && !got[int32(i)] {
				t.Fatalf("point %d %v in box %v but not returned", i, p, b)
			}
		}
		// Tightness check: candidates are within one cell of the box.
		pad := b.Pad(g.CellSize * 1.0001)
		for id := range got {
			if !pad.Contains(pts[id]) {
				t.Fatalf("candidate %d %v too far from box %v", id, pts[id], b)
			}
		}
	}
}

func TestHaloExpandsQuery(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.05, 0.05), geom.Pt(0.35, 0.05), geom.Pt(0.65, 0.05)}
	g := New(pts, 0.1)
	b := geom.Box(0.3, 0.0, 0.4, 0.1)
	if got := g.CountInBox(b, 0); got != 1 {
		t.Fatalf("halo 0 count = %d, want 1", got)
	}
	// Halo 3 reaches the cells at x≈0.05 and x≈0.65.
	if got := g.CountInBox(b, 3); got != 3 {
		t.Fatalf("halo 3 count = %d, want 3", got)
	}
}

func TestCountMatchesForEach(t *testing.T) {
	pts := randPoints(300, 4)
	g := New(pts, 0.07)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		x0, y0 := rng.Float64()-0.2, rng.Float64()-0.2
		b := geom.Box(x0, y0, x0+rng.Float64(), y0+rng.Float64())
		halo := rng.Intn(3)
		n := 0
		g.ForEachInBox(b, halo, func(int32) { n++ })
		if c := g.CountInBox(b, halo); c != n {
			t.Fatalf("CountInBox %d != ForEach count %d", c, n)
		}
		ids := g.AppendInBox(nil, b, halo)
		if len(ids) != n {
			t.Fatalf("AppendInBox len %d != %d", len(ids), n)
		}
	}
}

func TestAppendInBoxReusesDst(t *testing.T) {
	pts := randPoints(50, 5)
	g := New(pts, 0.2)
	buf := make([]int32, 0, 64)
	a := g.AppendInBox(buf, geom.Box(0, 0, 1, 1), 0)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	if len(a) != 50 {
		t.Fatalf("full-domain query returned %d items", len(a))
	}
	for i, id := range a {
		if id != int32(i) {
			t.Fatalf("missing id %d", i)
		}
	}
}

// Enclosure property from the paper: with cell size >= the longest triangle
// edge, no triangle's bounding box spans more than two cells per dimension,
// so a halo of one cell around any query box that touches the triangle's
// centroid cell is guaranteed to find it.
func TestPropEnclosureGuarantee(t *testing.T) {
	m, err := mesh.LowVariance(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := m.LongestEdge()
	cents := make([]geom.Point, m.NumTris())
	for i := range cents {
		cents[i] = m.Centroid(i)
	}
	g := New(cents, s)
	for i := 0; i < m.NumTris(); i++ {
		tri := m.Triangle(i)
		b := tri.Bounds()
		i0, i1, j0, j1 := g.CellRange(b, 0)
		if i1-i0 > 1 || j1-j0 > 1 {
			t.Fatalf("triangle %d spans %dx%d cells; enclosure violated",
				i, i1-i0+1, j1-j0+1)
		}
		// The centroid must be found by querying the triangle bounds with
		// halo 1.
		found := false
		g.ForEachInBox(b, 1, func(id int32) {
			if id == int32(i) {
				found = true
			}
		})
		if !found {
			t.Fatalf("triangle %d centroid missed by halo-1 query", i)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	pts := randPoints(10000, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts, 0.02)
	}
}

func BenchmarkQuery(b *testing.B) {
	pts := randPoints(10000, 6)
	g := New(pts, 0.02)
	box := geom.Box(0.4, 0.4, 0.5, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += g.CountInBox(box, 1)
	}
	_ = n
}
