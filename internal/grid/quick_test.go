package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"unstencil/internal/geom"
)

// Property (testing/quick): for arbitrary query boxes, every stored point
// inside the box is returned by a halo-0 query — the superset guarantee the
// evaluator's correctness rests on.
func TestQuickQuerySuperset(t *testing.T) {
	pts := randPoints(200, 99)
	g := New(pts, 0.13)
	f := func(x0, y0, w, h float64) bool {
		if math.IsNaN(x0) || math.IsNaN(y0) || math.IsNaN(w) || math.IsNaN(h) {
			return true
		}
		clamp := func(v float64) float64 { return math.Abs(math.Mod(v, 1)) }
		b := geom.Box(clamp(x0), clamp(y0), clamp(x0)+clamp(w), clamp(y0)+clamp(h))
		found := map[int32]bool{}
		g.ForEachInBox(b, 0, func(id int32) { found[id] = true })
		for i, p := range pts {
			if b.Contains(p) && !found[int32(i)] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): halo monotonicity — growing the halo never
// loses candidates.
func TestQuickHaloMonotone(t *testing.T) {
	pts := randPoints(150, 5)
	g := New(pts, 0.09)
	f := func(x0, y0 float64, halo uint8) bool {
		if math.IsNaN(x0) || math.IsNaN(y0) {
			return true
		}
		clamp := func(v float64) float64 { return math.Abs(math.Mod(v, 1)) }
		b := geom.Box(clamp(x0), clamp(y0), clamp(x0)+0.1, clamp(y0)+0.1)
		h := int(halo % 4)
		return g.CountInBox(b, h) <= g.CountInBox(b, h+1)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
