// Package device simulates the streaming many-core accelerators the paper
// evaluates on (NVIDIA Tesla M2090 GPUs). A Sim has NGPU devices, each with
// NSM streaming multiprocessors; logical blocks are assigned to devices and
// SMs with the paper's strided schedule (§4: "the blocks then iterate over
// the points in a strided fashion", "we divide the mesh into NGPU·NSM
// patches and evenly distribute them between the GPUs").
//
// The simulator is deterministic: each block carries a modeled cost derived
// from the exact per-block counters the evaluator collects, an SM's time is
// the sum of its blocks, a device's time is the max over its SMs, and the
// cluster time is the max over devices plus the two-stage reduction. This
// reproduces the paper's scaling behaviour (Fig. 14) from first principles
// on a host with any number of physical cores. An Exec helper also runs
// blocks on real goroutines-as-SMs for wall-clock measurements.
//
// This package remains the *model* of the paper's multi-device machine;
// internal/cluster is the real distributed deployment of the same
// decomposition — a coordinator partitioning the deterministic tiling
// across unstencild shard processes and merging their partials
// bit-identically.
package device

import (
	"fmt"
	"sort"
	"sync"

	"unstencil/internal/metrics"
)

// Modeled machine constants. The absolute values set the reported GFLOP/s
// scale and are calibrated loosely to the paper's Tesla M2090 (16 SMs,
// ~665 GFLOP/s double-precision peak); all experimental *shapes* come from
// the exact counters, not from these constants.
const (
	// DefaultSMs is the number of streaming multiprocessors per device.
	DefaultSMs = 16
	// SMFlopsPerSecond is the modeled throughput of one SM in
	// cost-units/second, calibrated so a 16-SM device peaks near the
	// paper's measured 345 GFLOP/s for the per-element linear case.
	SMFlopsPerSecond = 22e9
	// CoalescedWordCost is the modeled cost (flop-equivalents) of reading
	// one coalesced 8-byte word.
	CoalescedWordCost = 2
	// UncoalescedWordCost is the modeled cost of reading one scattered
	// 8-byte word; the 8x ratio over coalesced reflects the serialization
	// of scattered transactions on streaming architectures.
	UncoalescedWordCost = 16
	// ScatteredLoadCost is the modeled latency of one dependent scattered
	// load transaction in flop-equivalents (Fermi-class global-memory
	// latency is several hundred cycles, and such loads cannot be hidden
	// when every SIMD lane fetches a different location).
	ScatteredLoadCost = 900
)

// Occupancy models the register-pressure throughput loss at higher
// polynomial orders: the integration kernel stores O((P+1)²) intermediate
// values (paper §5.1), which collapses the number of resident warps and
// with it the achievable throughput. Calibrated so the modeled GFLOP/s
// ratios across P ∈ {1,2,3} track the paper's Figs. 11–12 (roughly
// 1 : 0.25 : 0.1). Both schemes run the same integration kernel, so
// occupancy cancels in scheme-to-scheme speedups.
func Occupancy(p int) float64 {
	modes := float64((p + 1) * (p + 2) / 2)
	r := 3 / modes
	return r * r
}

// Cost converts a block's exact counters into modeled execution cost units
// (flop-equivalents).
func Cost(c *metrics.Counters) float64 {
	coalesced := float64(c.BytesRead-c.BytesUncoalesced) / 8
	scattered := float64(c.BytesUncoalesced) / 8
	return float64(c.Flops) +
		CoalescedWordCost*coalesced +
		UncoalescedWordCost*scattered +
		ScatteredLoadCost*float64(c.ScatteredLoads)
}

// Seconds converts cost units to modeled seconds on one SM.
func Seconds(units float64) float64 { return units / SMFlopsPerSecond }

// GFlops reports the modeled achieved GFLOP/s: algorithmic flops divided by
// modeled wall time.
func GFlops(flops uint64, modeledSeconds float64) float64 {
	if modeledSeconds <= 0 {
		return 0
	}
	return float64(flops) / modeledSeconds / 1e9
}

// Sim is a cluster of identical streaming devices.
type Sim struct {
	Devices int // number of devices (GPUs)
	SMs     int // streaming multiprocessors per device
}

// NewSim returns a Sim with the given device count and DefaultSMs per
// device.
func NewSim(devices int) Sim { return Sim{Devices: devices, SMs: DefaultSMs} }

// Timing is the modeled execution breakdown of one launch.
type Timing struct {
	// DeviceCompute is the modeled compute time (units) of each device: the
	// max over its SMs of the summed block costs.
	DeviceCompute []float64
	// Compute is the cluster compute time: max over devices.
	Compute float64
	// Reduction is the modeled two-stage reduction time.
	Reduction float64
	// Total = Compute + Reduction.
	Total float64
}

// Run schedules blockCosts onto the cluster. Blocks are distributed to
// devices round-robin (even distribution, as in the paper's multi-GPU
// decomposition) and to SMs within a device round-robin (the strided block
// schedule). reductionUnits is the total cost of summing the partial
// solutions; stage one runs in parallel across devices and SMs, stage two
// merges one value per device.
func (s Sim) Run(blockCosts []float64, reductionUnits float64) Timing {
	if s.Devices < 1 || s.SMs < 1 {
		panic(fmt.Sprintf("device: invalid sim %+v", s))
	}
	t := Timing{DeviceCompute: make([]float64, s.Devices)}
	smTime := make([][]float64, s.Devices)
	for d := range smTime {
		smTime[d] = make([]float64, s.SMs)
	}
	for b, c := range blockCosts {
		d := b % s.Devices
		sm := (b / s.Devices) % s.SMs
		smTime[d][sm] += c
	}
	for d := range smTime {
		for _, v := range smTime[d] {
			if v > t.DeviceCompute[d] {
				t.DeviceCompute[d] = v
			}
		}
		if t.DeviceCompute[d] > t.Compute {
			t.Compute = t.DeviceCompute[d]
		}
	}
	// Two-stage reduction: stage one is spread across all SMs of all
	// devices; stage two is a serial merge of the per-device results.
	stage1 := reductionUnits / float64(s.Devices*s.SMs)
	stage2 := float64(s.Devices) * CoalescedWordCost
	t.Reduction = stage1 + stage2
	t.Total = t.Compute + t.Reduction
	return t
}

// RunCounters is a convenience wrapper converting per-block counters to
// costs before scheduling.
func (s Sim) RunCounters(blocks []metrics.Counters, reductionUnits float64) Timing {
	costs := make([]float64, len(blocks))
	for i := range blocks {
		costs[i] = Cost(&blocks[i])
	}
	return s.Run(costs, reductionUnits)
}

// Exec executes nBlocks logical blocks on real goroutines: Devices×SMs
// workers, each running its strided share of blocks, mirroring the modeled
// schedule. body receives (block, device, sm). Exec blocks until all work
// completes.
func (s Sim) Exec(nBlocks int, body func(block, dev, sm int)) {
	var wg sync.WaitGroup
	for d := 0; d < s.Devices; d++ {
		for sm := 0; sm < s.SMs; sm++ {
			wg.Add(1)
			go func(d, sm int) {
				defer wg.Done()
				// Block b belongs to this worker when b % Devices == d and
				// (b / Devices) % SMs == sm — the same mapping Run uses.
				for b := d + sm*s.Devices; b < nBlocks; b += s.Devices * s.SMs {
					body(b, d, sm)
				}
			}(d, sm)
		}
	}
	wg.Wait()
}

// Pool models a host CPU worker pool executing blocks under the dynamic
// schedulers in internal/core (atomic-counter dispatch and work stealing)
// rather than the GPU's strided hardware schedule that Sim models. Both
// dynamic dispatchers are greedy — an idle worker always takes more work —
// so their makespan is captured by the classic longest-processing-time
// bound: LPT is the offline analogue of a work-conserving online scheduler,
// and with per-patch costs known exactly (they come from deterministic
// counters) it gives a tight, reproducible model of the pool's compute time
// on any host, independent of how many physical cores this machine has.
type Pool struct {
	Workers int
}

// LPTMakespan returns the makespan of greedy longest-processing-time
// scheduling: costs sorted descending, each assigned to the least-loaded
// worker. workers <= 1 returns the serial sum.
func LPTMakespan(costs []float64, workers int) float64 {
	total := 0.0
	for _, c := range costs {
		total += c
	}
	if workers <= 1 || len(costs) <= 1 {
		return total
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	sorted := make([]float64, len(costs))
	copy(sorted, costs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := make([]float64, workers)
	for _, c := range sorted {
		least := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[least] {
				least = w
			}
		}
		load[least] += c
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// Run schedules blockCosts onto the pool's workers dynamically and appends
// the two-stage reduction: stage one (summing owned-point partials) is
// spread across the workers, stage two merges one cache line per worker of
// bookkeeping — the host analogue of Sim.Run's per-device merge.
func (p Pool) Run(blockCosts []float64, reductionUnits float64) Timing {
	if p.Workers < 1 {
		panic(fmt.Sprintf("device: invalid pool %+v", p))
	}
	t := Timing{DeviceCompute: []float64{LPTMakespan(blockCosts, p.Workers)}}
	t.Compute = t.DeviceCompute[0]
	if reductionUnits > 0 {
		t.Reduction = reductionUnits/float64(p.Workers) +
			float64(p.Workers)*CoalescedWordCost
	}
	t.Total = t.Compute + t.Reduction
	return t
}

// RunCounters is Run with per-block counters converted to modeled costs.
func (p Pool) RunCounters(blocks []metrics.Counters, reductionUnits float64) Timing {
	costs := make([]float64, len(blocks))
	for i := range blocks {
		costs[i] = Cost(&blocks[i])
	}
	return p.Run(costs, reductionUnits)
}

// Speedup returns t1/tN given two timings, the conventional strong-scaling
// metric.
func Speedup(t1, tn Timing) float64 {
	if tn.Total <= 0 {
		return 0
	}
	return t1.Total / tn.Total
}
