package device

import (
	"math"
	"sync"
	"testing"

	"unstencil/internal/metrics"
)

func TestCostModel(t *testing.T) {
	c := metrics.Counters{Flops: 100}
	if Cost(&c) != 100 {
		t.Errorf("pure flops cost = %v", Cost(&c))
	}
	c = metrics.Counters{BytesRead: 80} // 10 coalesced words
	if Cost(&c) != 10*CoalescedWordCost {
		t.Errorf("coalesced cost = %v", Cost(&c))
	}
	c = metrics.Counters{BytesRead: 80, BytesUncoalesced: 80}
	if Cost(&c) != 10*UncoalescedWordCost {
		t.Errorf("uncoalesced cost = %v", Cost(&c))
	}
	if UncoalescedWordCost <= CoalescedWordCost {
		t.Error("uncoalesced reads must cost more than coalesced")
	}
}

func TestSecondsAndGFlops(t *testing.T) {
	if got := Seconds(SMFlopsPerSecond); got != 1 {
		t.Errorf("Seconds = %v", got)
	}
	if got := GFlops(2e9, 1); got != 2 {
		t.Errorf("GFlops = %v", got)
	}
	if GFlops(1, 0) != 0 {
		t.Error("GFlops with zero time should be 0")
	}
}

func TestRunSingleDeviceBalanced(t *testing.T) {
	s := Sim{Devices: 1, SMs: 4}
	// 4 equal blocks, one per SM: compute time = one block.
	costs := []float64{10, 10, 10, 10}
	tm := s.Run(costs, 0)
	if tm.Compute != 10 {
		t.Errorf("Compute = %v, want 10", tm.Compute)
	}
	// 8 equal blocks: two per SM.
	costs = append(costs, 10, 10, 10, 10)
	tm = s.Run(costs, 0)
	if tm.Compute != 20 {
		t.Errorf("Compute = %v, want 20", tm.Compute)
	}
}

func TestRunImbalancedBlocks(t *testing.T) {
	s := Sim{Devices: 1, SMs: 2}
	// SM0 gets blocks 0, 2 (cost 5+5), SM1 gets blocks 1, 3 (cost 1+1).
	tm := s.Run([]float64{5, 1, 5, 1}, 0)
	if tm.Compute != 10 {
		t.Errorf("Compute = %v, want max SM time 10", tm.Compute)
	}
}

func TestRunMultiDeviceScaling(t *testing.T) {
	// 32 equal-cost patches on 1, 2, 4 devices with 16 SMs: near-linear
	// strong scaling.
	costs := make([]float64, 32)
	for i := range costs {
		costs[i] = 7e6
	}
	t1 := NewSim(1).Run(costs, 0)
	t2 := NewSim(2).Run(costs, 0)
	t4 := NewSim(4).Run(costs, 0)
	if t1.Compute != 14e6 || t2.Compute != 7e6 {
		t.Errorf("compute times: 1 dev %v (want 14e6), 2 dev %v (want 7e6)",
			t1.Compute, t2.Compute)
	}
	// 32 blocks on 4 devices × 16 SMs: 8 blocks per device, one per SM.
	if t4.Compute != 7e6 {
		t.Errorf("4-device compute %v, want 7e6", t4.Compute)
	}
	if sp := Speedup(t1, t2); math.Abs(sp-2) > 0.1 {
		t.Errorf("2-device speedup %v, want ≈2", sp)
	}
}

func TestRunReductionAccounting(t *testing.T) {
	s := Sim{Devices: 2, SMs: 2}
	tm := s.Run([]float64{1, 1}, 400)
	wantStage1 := 400.0 / 4
	wantStage2 := 2.0 * CoalescedWordCost
	if math.Abs(tm.Reduction-(wantStage1+wantStage2)) > 1e-12 {
		t.Errorf("Reduction = %v, want %v", tm.Reduction, wantStage1+wantStage2)
	}
	if tm.Total != tm.Compute+tm.Reduction {
		t.Error("Total != Compute + Reduction")
	}
}

func TestRunPanicsOnBadSim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Sim{Devices: 0, SMs: 1}.Run([]float64{1}, 0)
}

func TestRunCountersMatchesRun(t *testing.T) {
	blocks := []metrics.Counters{
		{Flops: 100}, {Flops: 200, BytesRead: 80},
	}
	s := Sim{Devices: 1, SMs: 2}
	a := s.RunCounters(blocks, 5)
	b := s.Run([]float64{Cost(&blocks[0]), Cost(&blocks[1])}, 5)
	if a.Total != b.Total {
		t.Errorf("RunCounters %v != Run %v", a.Total, b.Total)
	}
}

func TestExecCoversAllBlocksOnce(t *testing.T) {
	s := Sim{Devices: 2, SMs: 3}
	const n = 100
	var mu sync.Mutex
	seen := make([]int, n)
	devOf := make([]int, n)
	smOf := make([]int, n)
	s.Exec(n, func(b, d, sm int) {
		mu.Lock()
		seen[b]++
		devOf[b] = d
		smOf[b] = sm
		mu.Unlock()
	})
	for b := 0; b < n; b++ {
		if seen[b] != 1 {
			t.Fatalf("block %d executed %d times", b, seen[b])
		}
		// The goroutine mapping must match the modeled schedule.
		if devOf[b] != b%s.Devices || smOf[b] != (b/s.Devices)%s.SMs {
			t.Fatalf("block %d ran on (%d, %d), want (%d, %d)",
				b, devOf[b], smOf[b], b%s.Devices, (b/s.Devices)%s.SMs)
		}
	}
}

func TestExecZeroBlocks(t *testing.T) {
	ran := false
	NewSim(1).Exec(0, func(int, int, int) { ran = true })
	if ran {
		t.Error("no blocks should run")
	}
}

// Property: modeled time is monotone — adding a block never decreases the
// compute time, and more devices never increase it.
func TestPropMonotonicity(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	prev := 0.0
	for i := 1; i <= len(costs); i++ {
		tm := NewSim(1).Run(costs[:i], 0)
		if tm.Compute < prev {
			t.Fatalf("adding block %d decreased compute %v -> %v", i, prev, tm.Compute)
		}
		prev = tm.Compute
	}
	full1 := NewSim(1).Run(costs, 0)
	full2 := NewSim(2).Run(costs, 0)
	full4 := NewSim(4).Run(costs, 0)
	if full2.Compute > full1.Compute || full4.Compute > full2.Compute {
		t.Errorf("scaling not monotone: %v %v %v",
			full1.Compute, full2.Compute, full4.Compute)
	}
}

func TestOccupancyShape(t *testing.T) {
	if Occupancy(1) != 1 {
		t.Errorf("Occupancy(1) = %v, want 1", Occupancy(1))
	}
	// Must decline with order, mirroring the paper's GFLOP/s decline.
	prev := Occupancy(1)
	for p := 2; p <= 4; p++ {
		o := Occupancy(p)
		if o >= prev || o <= 0 {
			t.Errorf("Occupancy(%d) = %v not strictly decreasing", p, o)
		}
		prev = o
	}
	// Calibration target: P=1:P=2:P=3 ≈ 1 : 0.25 : 0.09 tracks the paper's
	// 345 : 85 : 31 measured ratios.
	if r := Occupancy(2); math.Abs(r-0.25) > 0.01 {
		t.Errorf("Occupancy(2) = %v, want 0.25", r)
	}
}
