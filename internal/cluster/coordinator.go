package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"unstencil/internal/mesh"
	"unstencil/internal/metrics"
	"unstencil/internal/server"
)

// Config sizes the coordinator; zero fields take the documented defaults.
type Config struct {
	// Shards are the unstencild base URLs (e.g. http://host:9090) forming
	// the cluster. Required, distinct.
	Shards []string
	// VNodes is the virtual-node count per shard on the consistent-hash
	// ring (default DefaultVNodes).
	VNodes int
	// RequestTimeout caps each individual shard HTTP request (default 30s).
	RequestTimeout time.Duration
	// HedgeDelay, when > 0, arms hedged reads on /v1/query: if the primary
	// shard has not answered within the delay, a duplicate is sent to the
	// next replica and the first success wins. 0 disables hedging.
	HedgeDelay time.Duration
	// Retry shapes per-shard request retry (capped exponential backoff with
	// deterministic jitter; zero value: no retry).
	Retry server.RetryPolicy
	// FailoverAttempts is how many ring successors a failed patch range or
	// routed job may move to after its shard exhausts the retry budget.
	// 0 means the default (1); negative disables failover, forcing the
	// degraded path — which is exactly what a chaos drill wants.
	FailoverAttempts int
	// HealthInterval is the /readyz polling period (default 1s).
	HealthInterval time.Duration
	// HealthThreshold is how many consecutive transport failures mark a
	// shard Down (default 3).
	HealthThreshold int
	// DefaultBlocks is the patch/block count for jobs that omit it
	// (default 16).
	DefaultBlocks int
	// JobTimeout caps a distributed job's end-to-end execution (default 5m).
	JobTimeout time.Duration
	// JobConcurrency bounds concurrently executing distributed jobs
	// (default 4).
	JobConcurrency int
	// MaxBodyBytes bounds request bodies, mesh uploads included
	// (default 32 MiB).
	MaxBodyBytes int64
	// MaxJobs bounds retained cluster job records (default 4096).
	MaxJobs int
	// Log receives structured logs; nil disables logging.
	Log *slog.Logger
}

func (c *Config) defaults() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultBlocks <= 0 {
		c.DefaultBlocks = 16
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobConcurrency <= 0 {
		c.JobConcurrency = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
}

// meshEntry retains an uploaded mesh's raw encoded bytes so the
// coordinator can re-seed a shard that answers "mesh not resident" — a
// restarted shard without durable state heals transparently on first use.
type meshEntry struct {
	raw      []byte
	numTris  int
	numVerts int
}

// Coordinator is the cluster front-end: it owns the consistent-hash ring,
// the shard health table, the retained mesh bytes and the cluster job
// registry, and serves the same public API surface as a single unstencild
// so clients need not know they are talking to a cluster.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	health   *HealthChecker
	client   *Client
	counters metrics.ClusterCounters
	jobs     *registry
	log      *slog.Logger
	start    time.Time
	handler  http.Handler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	jobSem     chan struct{}

	meshMu sync.Mutex
	meshes map[string]*meshEntry
}

// New assembles the coordinator and runs one synchronous health pass so
// the routing table is populated before the first request. Call Start to
// begin periodic health polling and Close to release resources.
func New(cfg Config) (*Coordinator, error) {
	cfg.defaults()
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hc := &http.Client{Timeout: cfg.RequestTimeout}
	co := &Coordinator{
		cfg:    cfg,
		ring:   ring,
		health: NewHealthChecker(cfg.Shards, hc, cfg.HealthInterval, cfg.HealthThreshold, cfg.Log),
		jobs:   newRegistry(cfg.MaxJobs),
		log:    cfg.Log,
		start:  time.Now(),
		jobSem: make(chan struct{}, cfg.JobConcurrency),
		meshes: make(map[string]*meshEntry),
	}
	co.client = NewClient(hc, cfg.RequestTimeout, cfg.Retry, &co.counters, cfg.Log)
	co.baseCtx, co.baseCancel = context.WithCancel(context.Background())
	co.health.CheckNow()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/meshes", co.handleMeshUpload)
	mux.HandleFunc("GET /v1/meshes/{id}", co.handleMeshGet)
	mux.HandleFunc("POST /v1/query", co.handleQuery)
	mux.HandleFunc("POST /v1/jobs", co.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", co.handleJobResult)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("GET /readyz", co.handleReadyz)
	mux.HandleFunc("GET /debug/metrics", co.handleMetrics)
	co.handler = mux
	return co, nil
}

// Start begins periodic shard health polling.
func (co *Coordinator) Start() { co.health.Start() }

// Close stops health polling and cancels in-flight distributed jobs.
func (co *Coordinator) Close() {
	co.health.Stop()
	co.baseCancel()
}

// Counters exposes the cluster counters (tests, embedding).
func (co *Coordinator) Counters() *metrics.ClusterCounters { return &co.counters }

// Health exposes the health checker (tests drive CheckNow directly).
func (co *Coordinator) Health() *HealthChecker { return co.health }

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	co.handler.ServeHTTP(w, r)
}

// failoverAttempts resolves the config knob: 0 → 1, negative → 0.
func (co *Coordinator) failoverAttempts() int {
	switch {
	case co.cfg.FailoverAttempts < 0:
		return 0
	case co.cfg.FailoverAttempts == 0:
		return 1
	default:
		return co.cfg.FailoverAttempts
	}
}

// routable returns the ring succession for key filtered to shards the
// health table marks Ready. Routing only to Ready shards keeps saturated
// (NotReady) shards out of new work while they drain — their keyspace
// returns to them the moment they recover, because the ring itself never
// changes.
func (co *Coordinator) routable(key string) []string {
	order := co.ring.Order(key)
	out := order[:0]
	for _, s := range order {
		if co.health.State(s) == StateReady {
			out = append(out, s)
		}
	}
	return out
}

// reseedMesh re-uploads a retained mesh to one shard (the 404 protocol).
// Mesh ids are content hashes, so re-seeding is idempotent and the shard's
// response id must round-trip.
func (co *Coordinator) reseedMesh(ctx context.Context, shard string) error {
	// The 404 does not say which mesh; re-seed everything retained. In
	// practice a coordinator holds few meshes and uploads are idempotent.
	co.meshMu.Lock()
	entries := make(map[string]*meshEntry, len(co.meshes))
	for id, e := range co.meshes {
		entries[id] = e
	}
	co.meshMu.Unlock()
	if len(entries) == 0 {
		return errors.New("no retained mesh to re-seed")
	}
	for id, e := range entries {
		var out struct {
			MeshID string `json:"mesh_id"`
		}
		if err := co.client.PostRaw(ctx, shard, "/v1/meshes", e.raw, &out); err != nil {
			return err
		}
		if out.MeshID != id {
			return fmt.Errorf("re-seeded mesh id mismatch: sent %s, shard stored %s", id, out.MeshID)
		}
		co.counters.MeshReseeds.Add(1)
		if co.log != nil {
			co.log.Info("re-seeded mesh to shard", "mesh", id, "shard", shard)
		}
	}
	return nil
}

// handleMeshUpload fans the encoded mesh out to every shard and retains
// the raw bytes for later re-seeding. The upload succeeds if at least one
// shard accepted it — shards that were down heal via the 404 protocol.
func (co *Coordinator) handleMeshUpload(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"mesh exceeds the %d-byte upload limit", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading mesh: %v", err)
		return
	}
	m, err := mesh.Decode(bytes.NewReader(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	co.counters.MeshFanouts.Add(1)

	type seedResult struct {
		shard string
		id    string
		err   error
	}
	shards := co.ring.Shards()
	results := make([]seedResult, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			var out struct {
				MeshID string `json:"mesh_id"`
			}
			err := co.client.PostRaw(r.Context(), shard, "/v1/meshes", raw, &out)
			results[i] = seedResult{shard: shard, id: out.MeshID, err: err}
		}(i, shard)
	}
	wg.Wait()

	var id string
	var seeded, failed []string
	for _, res := range results {
		if res.err != nil {
			failed = append(failed, res.shard)
			continue
		}
		seeded = append(seeded, res.shard)
		if id == "" {
			id = res.id
		} else if id != res.id {
			writeError(w, http.StatusBadGateway,
				"shards disagree on mesh id (%s vs %s); refusing to route", id, res.id)
			return
		}
	}
	if id == "" {
		writeError(w, http.StatusBadGateway, "no shard accepted the mesh (%d down)", len(failed))
		return
	}
	co.meshMu.Lock()
	co.meshes[id] = &meshEntry{raw: raw, numTris: m.NumTris(), numVerts: m.NumVerts()}
	co.meshMu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"mesh_id":       id,
		"num_tris":      m.NumTris(),
		"num_verts":     m.NumVerts(),
		"shards_seeded": seeded,
		"shards_failed": failed,
	})
}

// handleMeshGet proxies mesh stats from the mesh's home shard, failing
// over along the succession.
func (co *Coordinator) handleMeshGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	order := co.routable(id)
	if len(order) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no ready shard")
		return
	}
	var lastErr error
	for _, shard := range order {
		var out map[string]any
		if err := co.client.GetJSON(r.Context(), shard, "/v1/meshes/"+id, &out); err != nil {
			lastErr = err
			continue
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeProxyError(w, lastErr)
}

// handleQuery routes a batch query to the mesh's home shard, optionally
// hedging with the next replica, and failing over along the succession.
// The body is forwarded verbatim so the shard stays the schema authority.
func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading query: %v", err)
		return
	}
	var peek struct {
		MeshID string `json:"mesh_id"`
	}
	if err := json.Unmarshal(raw, &peek); err != nil || peek.MeshID == "" {
		writeError(w, http.StatusBadRequest, "bad query: mesh_id is required")
		return
	}
	order := co.routable(peek.MeshID)
	if len(order) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no ready shard for mesh %s", peek.MeshID)
		return
	}
	co.counters.QueriesRouted.Add(1)
	out, shard, err := co.queryShards(r.Context(), order, raw)
	if err != nil {
		writeProxyError(w, err)
		return
	}
	out["shard"] = shard
	writeJSON(w, http.StatusOK, out)
}

// queryShards races the query across the succession: primary immediately,
// the next replica after HedgeDelay (hedged read), further replicas only
// as failover when an attempt fails. First success wins; losers are
// cancelled.
func (co *Coordinator) queryShards(ctx context.Context, order []string, raw []byte) (map[string]any, string, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		out   map[string]any
		shard string
		err   error
		hedge bool
	}
	resCh := make(chan result, len(order)+1)
	launch := func(shard string, hedge bool) {
		go func() {
			var out map[string]any
			err := co.shardPost(ctx, shard, "/v1/query", json.RawMessage(raw), &out)
			resCh <- result{out: out, shard: shard, err: err, hedge: hedge}
		}()
	}

	next := 0
	launch(order[next], false)
	next++
	inflight := 1
	var hedgeTimer <-chan time.Time
	if co.cfg.HedgeDelay > 0 && next < len(order) {
		hedgeTimer = time.After(co.cfg.HedgeDelay)
	}
	var lastErr error
	for inflight > 0 {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(order) {
				co.counters.Hedges.Add(1)
				launch(order[next], true)
				next++
				inflight++
			}
		case res := <-resCh:
			inflight--
			if res.err == nil {
				if res.hedge {
					co.counters.HedgeWins.Add(1)
				}
				return res.out, res.shard, nil
			}
			lastErr = res.err
			if !retryableAcrossShards(res.err) {
				return nil, "", res.err
			}
			if next < len(order) {
				co.counters.Failovers.Add(1)
				launch(order[next], false)
				next++
				inflight++
			}
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	return nil, "", lastErr
}

// retryableAcrossShards reports whether a failed shard attempt justifies
// trying another shard: shard exhaustion yes, a 4xx (the request itself is
// wrong everywhere) or context expiry no.
func retryableAcrossShards(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if st := RemoteStatus(err); st != 0 && st/100 == 4 {
		return false
	}
	return true
}

// handleJobSubmit accepts a JobSpec. Per-element jobs are distributed:
// the deterministic k-patch tiling is split into contiguous ranges across
// the ready shards and merged here. Per-point and operator jobs run whole
// on the mesh's home shard (their artifacts — block schedules, assembled
// operators — live shard-side) with status proxied.
func (co *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Validate(co.cfg.DefaultBlocks); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	co.meshMu.Lock()
	_, known := co.meshes[spec.MeshID]
	co.meshMu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound,
			"mesh %q not known to the coordinator (upload it via POST /v1/meshes)", spec.MeshID)
		return
	}
	if spec.Scheme == "per-element" {
		co.counters.JobsDistributed.Add(1)
		job := co.jobs.add(KindDistributed, spec)
		go func() {
			co.jobSem <- struct{}{}
			defer func() { <-co.jobSem }()
			timeout := co.cfg.JobTimeout
			if spec.TimeoutMS > 0 {
				timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
			}
			ctx, cancel := context.WithTimeout(co.baseCtx, timeout)
			defer cancel()
			co.runDistributed(ctx, job)
		}()
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	co.submitRouted(w, r, spec)
}

// submitRouted forwards a whole job to the mesh's home shard, failing the
// submission over along the succession within the failover budget.
func (co *Coordinator) submitRouted(w http.ResponseWriter, r *http.Request, spec server.JobSpec) {
	order := co.routable(spec.MeshID)
	if len(order) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no ready shard for mesh %s", spec.MeshID)
		return
	}
	tries := min(1+co.failoverAttempts(), len(order))
	var lastErr error
	for i := 0; i < tries; i++ {
		shard := order[i]
		if i > 0 {
			co.counters.Failovers.Add(1)
		}
		var out map[string]any
		err := co.shardPost(r.Context(), shard, "/v1/jobs", &spec, &out)
		if err == nil {
			remoteID, _ := out["id"].(string)
			if remoteID == "" {
				writeError(w, http.StatusBadGateway, "shard %s accepted the job without an id", shard)
				return
			}
			co.counters.JobsRouted.Add(1)
			job := co.jobs.add(KindRouted, spec)
			job.Shard = shard
			job.RemoteID = remoteID
			out["id"] = job.ID
			out["kind"] = string(KindRouted)
			out["shard"] = shard
			writeJSON(w, http.StatusAccepted, out)
			return
		}
		lastErr = err
		if !retryableAcrossShards(err) {
			break
		}
	}
	writeProxyError(w, lastErr)
}

func (co *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := co.jobs.list()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (co *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := co.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	if job.Kind == KindDistributed {
		writeJSON(w, http.StatusOK, job.View())
		return
	}
	co.proxyRouted(w, r, job, "/v1/jobs/"+job.RemoteID)
}

func (co *Coordinator) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := co.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	if job.Kind == KindRouted {
		co.proxyRouted(w, r, job, "/v1/jobs/"+job.RemoteID+"/result")
		return
	}
	v := job.View()
	switch v.State {
	case server.StateDone:
		sol, _ := job.Solution()
		body := map[string]any{
			"job_id":          job.ID,
			"scheme":          job.Spec.Scheme,
			"num_points":      len(sol),
			"memory_overhead": v.MemOverhd,
			"solution":        sol,
			"shards":          v.Shards,
		}
		if v.Degraded {
			body["degraded"] = true
			body["coverage"] = v.Coverage
			body["uncovered_ids"] = v.UncoveredIDs
			body["uncovered_truncated"] = v.UncoveredTruncated
		}
		writeJSON(w, http.StatusOK, body)
	case server.StateFailed:
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":      fmt.Sprintf("job %s failed: %s", job.ID, v.Error),
			"error_kind": v.ErrorKind,
		})
	default:
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", job.ID, v.State)
	}
}

// proxyRouted fetches path from the routed job's owning shard and rewrites
// the shard-local job id to the cluster id.
func (co *Coordinator) proxyRouted(w http.ResponseWriter, r *http.Request, job *Job, path string) {
	var out map[string]any
	if err := co.client.GetJSON(r.Context(), job.Shard, path, &out); err != nil {
		writeProxyError(w, err)
		return
	}
	if _, ok := out["id"]; ok {
		out["id"] = job.ID
	}
	if _, ok := out["job_id"]; ok {
		out["job_id"] = job.ID
	}
	out["kind"] = string(KindRouted)
	out["shard"] = job.Shard
	writeJSON(w, http.StatusOK, out)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(co.start)) / float64(time.Millisecond),
		"shards":    len(co.cfg.Shards),
	})
}

// handleReadyz reports readiness: the coordinator can do useful work while
// at least one shard is Ready (possibly degraded — honest partial coverage
// beats refusing all traffic).
func (co *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, down := co.health.Counts()
	body := map[string]any{
		"ready":        ready > 0,
		"shards_ready": ready,
		"shards_down":  down,
		"shards_total": len(co.cfg.Shards),
	}
	status := http.StatusOK
	if ready == 0 {
		status = http.StatusServiceUnavailable
		body["reason"] = "no shard is ready"
	}
	writeJSON(w, status, body)
}

// handleMetrics reports the cluster counters, every shard's health record,
// and the per-shard routing table (which retained meshes each shard is the
// current primary for, given the live health filter).
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	co.meshMu.Lock()
	meshIDs := make([]string, 0, len(co.meshes))
	for id := range co.meshes {
		meshIDs = append(meshIDs, id)
	}
	co.meshMu.Unlock()

	type shardRoute struct {
		State  string   `json:"state"`
		VNodes int      `json:"vnodes"`
		Meshes []string `json:"meshes,omitempty"`
	}
	routing := make(map[string]*shardRoute, len(co.cfg.Shards))
	for _, s := range co.ring.Shards() {
		routing[s] = &shardRoute{State: co.health.State(s).String(), VNodes: co.ring.VNodes()}
	}
	for _, id := range meshIDs {
		order := co.routable(id)
		if len(order) == 0 {
			continue
		}
		routing[order[0]].Meshes = append(routing[order[0]].Meshes, id)
	}

	states := map[server.JobState]int{}
	for _, j := range co.jobs.list() {
		states[j.View().State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms": float64(time.Since(co.start)) / float64(time.Millisecond),
		"cluster":   co.counters.Snapshot(),
		"shards":    co.health.Snapshot(),
		"routing":   routing,
		"jobs":      states,
		"meshes":    len(meshIDs),
	})
}

// writeProxyError maps a failed shard interaction to a client-facing
// status: shard exhaustion becomes 502 tagged ErrorKindShardFailure, a
// relayed 4xx keeps its status, anything else is 502.
func writeProxyError(w http.ResponseWriter, err error) {
	var se *ShardError
	if errors.As(err, &se) {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":      se.Error(),
			"error_kind": ErrorKindShardFailure,
		})
		return
	}
	if st := RemoteStatus(err); st != 0 && st/100 == 4 {
		writeError(w, st, "%v", err)
		return
	}
	if err == nil {
		err = errNoShards
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
