// Package cluster implements the unstencil coordinator: a front-end that
// partitions work across a set of unstencild shard processes and merges
// their partial results bit-deterministically.
//
// The paper's scaling argument (§4) divides the mesh into patches and
// distributes them across devices; internal/device models that machine,
// and this package is the real deployment of the same decomposition across
// processes. Three properties make the distribution exact rather than
// approximate:
//
//  1. The k-patch tiling is deterministic given (mesh, parameters, k), so
//     every shard derives the identical decomposition independently — the
//     coordinator ships patch *ids*, never patch *data*.
//  2. A patch's scratch-pad buffer is accumulated element-by-element in
//     PatchElems order regardless of which process runs it.
//  3. Merging patch buffers in ascending patch order reproduces
//     tile.Reduce, and therefore a single-process per-element run, bit for
//     bit.
//
// Robustness: per-shard health checking (liveness + readiness), capped
// exponential retry with deterministic jitter, hedged reads, failover to
// ring successors, and — when a shard stays down past its budget — graceful
// degradation to allow_partial results with honest coverage accounting
// (any live shard can compute the uncovered-point set of a dead shard's
// patches, by property 1).
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"unstencil/internal/fault"
)

// DefaultVNodes is the virtual-node count per shard. More vnodes smooth
// the load split and shrink the keyspace slice that moves when a shard
// joins or leaves.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is a consistent-hash ring over the configured shard set. It is
// immutable after construction; liveness is layered on top by the router,
// which walks Order and skips unhealthy shards. Keeping the ring static
// means a shard bouncing in and out of readiness never reshuffles the
// assignment of healthy keys — traffic returns to its home shard the
// moment the shard does.
type Ring struct {
	shards []string
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing builds the ring. Shards must be non-empty and distinct; vnodes
// <= 0 takes DefaultVNodes.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: at least one shard is required")
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, errors.New("cluster: empty shard address")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", s, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring is
		// identical however the sort ran.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// hash64 is FNV-1a pushed through the SplitMix64 finalizer. Raw FNV-1a has
// weak avalanche on short, similar keys (shard addresses differing in one
// digit, vnode labels differing only in their suffix), which clusters the
// ring badly enough to starve shards; the mixer restores a uniform spread.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return fault.Mix64(h.Sum64())
}

// Shards returns the configured shard set in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// VNodes returns the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// successor returns the index in r.points of the first virtual node at or
// after the key's hash, wrapping at the top of the circle.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Pick returns the shard owning key: the one whose virtual node is the
// key's successor on the circle.
func (r *Ring) Pick(key string) string {
	return r.shards[r.points[r.successor(key)].shard]
}

// Order returns every shard exactly once, in ring-succession order from
// the key's position: Order(key)[0] is Pick(key), Order(key)[1] is the
// first distinct shard after it, and so on. This is the failover
// succession — when the owner is down, work moves to the next entry — and
// the replica map for hedged reads.
func (r *Ring) Order(key string) []string {
	out := make([]string, 0, len(r.shards))
	taken := make([]bool, len(r.shards))
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.shard] {
			taken[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}
