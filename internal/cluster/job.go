package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/metrics"
	"unstencil/internal/server"
)

// JobKind distinguishes how the coordinator executes a job.
type JobKind string

const (
	// KindDistributed jobs (per-element scheme) fan out as patch sets across
	// shards and are merged by the coordinator.
	KindDistributed JobKind = "distributed"
	// KindRouted jobs (per-point, operator) run whole on one shard chosen by
	// consistent hash; status and result requests are proxied to it.
	KindRouted JobKind = "routed"
)

// Job is one cluster-level job record.
type Job struct {
	ID   string
	Kind JobKind
	Spec server.JobSpec

	// Routed jobs: the owning shard and its local job id.
	Shard    string
	RemoteID string

	mu         sync.Mutex
	state      server.JobState
	err        error
	errKind    string
	shards     []string // shards that contributed partials (distributed)
	solution   []float64
	counters   metrics.Counters
	coverage   *core.Coverage
	uncovered  []int32
	uncovTrunc bool
	memOverhd  float64
	created    time.Time
	started    time.Time
	finished   time.Time
	done       chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
// Routed jobs' channel never closes — their lifecycle lives on the shard.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON status of a cluster job. It mirrors the shard's
// JobStatus shape so clients can treat coordinator and shard uniformly,
// plus the cluster-only fields (kind, contributing shards, error kind,
// uncovered-point ids).
type JobView struct {
	ID     string          `json:"id"`
	State  server.JobState `json:"state"`
	Spec   server.JobSpec  `json:"spec"`
	Kind   JobKind         `json:"kind"`
	Shards []string        `json:"shards,omitempty"`
	Error  string          `json:"error,omitempty"`
	// ErrorKind is ErrorKindShardFailure when the job failed because a shard
	// stayed down past the retry and failover budget (as opposed to the
	// request itself being invalid).
	ErrorKind string            `json:"error_kind,omitempty"`
	NumPoints int               `json:"num_points,omitempty"`
	WallMS    float64           `json:"wall_ms,omitempty"`
	MemOverhd float64           `json:"memory_overhead,omitempty"`
	Counters  *metrics.Counters `json:"counters,omitempty"`
	Degraded  bool              `json:"degraded,omitempty"`
	Coverage  *core.Coverage    `json:"coverage,omitempty"`
	// UncoveredIDs lists the grid points the merged solution does not cover
	// (union of the failed patches' slots), capped at server.MaxUncoveredIDs.
	UncoveredIDs       []int32    `json:"uncovered_ids,omitempty"`
	UncoveredTruncated bool       `json:"uncovered_truncated,omitempty"`
	CreatedAt          time.Time  `json:"created_at"`
	StartedAt          *time.Time `json:"started_at,omitempty"`
	FinishedAt         *time.Time `json:"finished_at,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Kind:      j.Kind,
		Shards:    append([]string(nil), j.shards...),
		CreatedAt: j.created,
	}
	if j.err != nil {
		v.Error = j.err.Error()
		v.ErrorKind = j.errKind
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		v.WallMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.state == server.StateDone {
		v.NumPoints = len(j.solution)
		v.MemOverhd = j.memOverhd
		c := j.counters
		v.Counters = &c
		if j.coverage != nil {
			v.Degraded = true
			v.Coverage = j.coverage
			v.UncoveredIDs = j.uncovered
			v.UncoveredTruncated = j.uncovTrunc
		}
	}
	return v
}

// Solution returns the merged solution once the job is done.
func (j *Job) Solution() ([]float64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != server.StateDone {
		return nil, false
	}
	return j.solution, true
}

// registry owns cluster job records, with bounded retention like the
// shard-side Manager.
type registry struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID uint64
	max    int
}

func newRegistry(max int) *registry {
	if max <= 0 {
		max = 4096
	}
	return &registry{jobs: make(map[string]*Job), max: max}
}

func (r *registry) add(kind JobKind, spec server.JobSpec) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	j := &Job{
		ID:      fmt.Sprintf("cjob-%08d", r.nextID),
		Kind:    kind,
		Spec:    spec,
		state:   server.StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	for len(r.order) > r.max {
		id := r.order[0]
		if old := r.jobs[id]; old != nil {
			old.mu.Lock()
			terminal := old.state == server.StateDone || old.state == server.StateFailed ||
				old.Kind == KindRouted // routed lifecycle lives on the shard
			old.mu.Unlock()
			if !terminal {
				break
			}
			delete(r.jobs, id)
		}
		r.order = r.order[1:]
	}
	return j
}

func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *registry) list() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		if j, ok := r.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// distOutcome is the merged result of a distributed per-element job.
type distOutcome struct {
	solution   []float64
	counters   metrics.Counters
	memOverhd  float64
	shards     []string
	coverage   *core.Coverage
	uncovered  []int32
	uncovTrunc bool
}

// assignment is one shard's share of a distributed job: a contiguous patch
// range of the deterministic k-patch tiling. Contiguous ranges correspond
// to coarser cuts of the recursive bisection (patch ids are assigned
// depth-first), so each shard's share is a spatially compact region.
type assignment struct {
	succession []string // [0] is the assignee; the rest is failover order
	patches    []int
}

// splitPatches assigns the k patches of the tiling to n shards as
// contiguous, near-equal ranges. order is the ring succession for the mesh
// key; assignment i goes to order[i] with the remaining shards (in
// succession order) as its failover chain.
func splitPatches(order []string, k int) []assignment {
	n := min(len(order), k)
	out := make([]assignment, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*k/n, (i+1)*k/n
		patches := make([]int, 0, hi-lo)
		for p := lo; p < hi; p++ {
			patches = append(patches, p)
		}
		succ := make([]string, 0, len(order))
		succ = append(succ, order[i])
		for j := 1; j < len(order); j++ {
			succ = append(succ, order[(i+j)%len(order)])
		}
		out = append(out, assignment{succession: succ, patches: patches})
	}
	return out
}

// runDistributed executes one distributed per-element job: fan the patch
// ranges across shards, fail ranges over to ring successors when a shard
// exhausts its retry budget, merge the surviving partials in ascending
// patch order (bit-identical to a single-process run at full coverage),
// and account honestly for anything lost.
func (co *Coordinator) runDistributed(ctx context.Context, job *Job) {
	job.mu.Lock()
	job.state = server.StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	out, err := co.evalDistributed(ctx, job.Spec)

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.state = server.StateFailed
		job.err = err
		if isShardFailure(err) {
			job.errKind = ErrorKindShardFailure
		}
	} else {
		job.state = server.StateDone
		job.solution = out.solution
		job.counters = out.counters
		job.memOverhd = out.memOverhd
		job.shards = out.shards
		job.coverage = out.coverage
		job.uncovered = out.uncovered
		job.uncovTrunc = out.uncovTrunc
	}
	job.mu.Unlock()
	close(job.done)
	if co.log != nil {
		co.log.Info("distributed job finished",
			"job", job.ID, "state", string(job.state), "err", err)
	}
}

// isShardFailure reports whether err is rooted in shard loss (retry budget
// exhausted or no shard available) rather than in the request itself.
func isShardFailure(err error) bool {
	var se *ShardError
	return errors.As(err, &se) || errors.Is(err, errNoShards)
}

var errNoShards = errors.New("no shard available")

func (co *Coordinator) evalDistributed(ctx context.Context, spec server.JobSpec) (*distOutcome, error) {
	order := co.routable(spec.MeshID)
	if len(order) == 0 {
		return nil, fmt.Errorf("cluster: no ready shard for mesh %s: %w", spec.MeshID, errNoShards)
	}
	k := spec.Blocks
	asn := splitPatches(order, k)

	type rangeResult struct {
		resp  *server.ShardEvalResponse
		shard string
		a     assignment
		err   error
	}
	results := make([]rangeResult, len(asn))
	var wg sync.WaitGroup
	for i, a := range asn {
		wg.Add(1)
		go func(i int, a assignment) {
			defer wg.Done()
			resp, shard, err := co.evalRange(ctx, a, spec)
			results[i] = rangeResult{resp: resp, shard: shard, a: a, err: err}
		}(i, a)
	}
	wg.Wait()

	var (
		partials      []server.ShardPatchPartial
		failedPatches []int
		shards        []string
		counters      metrics.Counters
		memOverhd     float64
		numPoints     int
		firstErr      error
	)
	shardSet := map[string]bool{}
	for _, r := range results {
		if r.err != nil {
			failedPatches = append(failedPatches, r.a.patches...)
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		partials = append(partials, r.resp.Patches...)
		failedPatches = append(failedPatches, r.resp.Failed...)
		counters.Add(&r.resp.Counters)
		memOverhd = r.resp.MemoryOverhead
		numPoints = r.resp.NumPoints
		if !shardSet[r.shard] {
			shardSet[r.shard] = true
			shards = append(shards, r.shard)
		}
	}
	if len(shards) == 0 {
		// Complete outage is not degradation: there is nothing to merge and
		// no live shard to account coverage against.
		return nil, fmt.Errorf("cluster: every shard range failed: %w", firstErr)
	}
	sort.Ints(failedPatches)
	if len(failedPatches) > 0 && !spec.AllowPartial {
		if firstErr == nil {
			// All shard requests succeeded but units failed inside a shard
			// despite AllowPartial being off: the shard contract forbids this,
			// so treat it as a shard failure.
			firstErr = fmt.Errorf("shard reported failed patches %v without allow_partial", failedPatches)
		}
		return nil, fmt.Errorf("cluster: %d of %d patches lost and job does not allow partial results: %w",
			len(failedPatches), k, firstErr)
	}

	// Merge in ascending patch order: zero-filled full-grid output, each
	// patch buffer added element-slot by element-slot. This is tile.Reduce
	// over the wire — at 100% coverage the result is bit-identical to a
	// single-process per-element run.
	sort.Slice(partials, func(a, b int) bool { return partials[a].Patch < partials[b].Patch })
	solution := make([]float64, numPoints)
	for _, pp := range partials {
		if len(pp.Points) != len(pp.Values) {
			return nil, fmt.Errorf("cluster: malformed partial for patch %d: %d points, %d values",
				pp.Patch, len(pp.Points), len(pp.Values))
		}
		for i, pt := range pp.Points {
			if int(pt) < 0 || int(pt) >= numPoints {
				return nil, fmt.Errorf("cluster: partial for patch %d references point %d outside [0, %d)",
					pp.Patch, pt, numPoints)
			}
			solution[pt] += pp.Values[i]
		}
	}

	out := &distOutcome{
		solution:  solution,
		counters:  counters,
		memOverhd: memOverhd,
		shards:    shards,
	}
	if len(failedPatches) > 0 {
		cov, ids, trunc, err := co.probeCoverage(ctx, shards, spec, k, failedPatches)
		if err != nil {
			return nil, fmt.Errorf("cluster: coverage probe for degraded job failed: %w", err)
		}
		// Zero the uncovered points: their merged sums are incomplete (at
		// least one contributing patch is missing), and a deterministic zero
		// matches the single-process degraded contract — failed units
		// contribute nothing, coverage metadata says exactly which points to
		// distrust.
		for _, pt := range ids {
			solution[pt] = 0
		}
		out.coverage = cov
		out.uncovered = ids
		out.uncovTrunc = trunc
		co.counters.DegradedJobs.Add(1)
	}
	return out, nil
}

// evalRange runs one patch range against its succession: the assignee
// first, then — if the shard exhausts the client's retry budget — up to
// FailoverAttempts ring successors. A 404 re-seeds the mesh from the
// coordinator's retained bytes and retries the same shard once.
func (co *Coordinator) evalRange(ctx context.Context, a assignment, spec server.JobSpec) (*server.ShardEvalResponse, string, error) {
	req := server.ShardEvalRequest{
		MeshID:       spec.MeshID,
		P:            spec.P,
		GridDegree:   spec.GridDegree,
		Boundary:     spec.Boundary,
		Field:        spec.Field,
		K:            spec.Blocks,
		Patches:      a.patches,
		AllowPartial: spec.AllowPartial,
		TimeoutMS:    spec.TimeoutMS,
	}
	tries := 1 + co.failoverAttempts()
	var lastErr error
	for i, shard := range a.succession {
		if i >= tries {
			break
		}
		if i > 0 {
			co.counters.Failovers.Add(1)
		}
		var resp server.ShardEvalResponse
		err := co.shardPost(ctx, shard, "/v1/shard/eval", &req, &resp)
		if err == nil {
			return &resp, shard, nil
		}
		lastErr = err
		var se *ShardError
		if !errors.As(err, &se) {
			// Permanent (4xx, context expiry): failing over cannot help — the
			// request would be equally wrong everywhere.
			return nil, "", err
		}
		if se.Status == 0 {
			// Transport-level exhaustion is strong evidence the process is
			// gone; update the routing table before the next probe tick.
			co.health.MarkDown(shard, se.Err)
		}
	}
	return nil, "", lastErr
}

// shardPost is PostJSON plus the mesh re-seed protocol: a 404 means the
// shard (typically restarted without durable state) does not hold the
// mesh; the coordinator re-uploads its retained bytes and retries once.
func (co *Coordinator) shardPost(ctx context.Context, shard, path string, body, out any) error {
	err := co.client.PostJSON(ctx, shard, path, body, out)
	if err == nil || !IsNotFound(err) {
		return err
	}
	if rerr := co.reseedMesh(ctx, shard); rerr != nil {
		return fmt.Errorf("%w (re-seed failed: %v)", err, rerr)
	}
	return co.client.PostJSON(ctx, shard, path, body, out)
}

// probeCoverage asks a live shard for the uncovered-point set of the
// failed patches. The tiling is deterministic, so any shard — including
// ones that never touched those patches — computes the identical answer;
// preferred candidates are the shards that just served this job (their
// artifacts are warm), falling back to the full routable set.
func (co *Coordinator) probeCoverage(ctx context.Context, preferred []string, spec server.JobSpec, k int, failed []int) (*core.Coverage, []int32, bool, error) {
	req := server.ShardCoverageRequest{
		MeshID:     spec.MeshID,
		P:          spec.P,
		GridDegree: spec.GridDegree,
		Boundary:   spec.Boundary,
		Field:      spec.Field,
		K:          k,
		Failed:     failed,
	}
	candidates := append([]string(nil), preferred...)
	seen := map[string]bool{}
	for _, s := range candidates {
		seen[s] = true
	}
	for _, s := range co.routable(spec.MeshID) {
		if !seen[s] {
			candidates = append(candidates, s)
		}
	}
	var lastErr error
	for _, shard := range candidates {
		co.counters.CoverageProbes.Add(1)
		var resp server.ShardCoverageResponse
		if err := co.shardPost(ctx, shard, "/v1/shard/coverage", &req, &resp); err != nil {
			lastErr = err
			continue
		}
		cov := &core.Coverage{
			FailedUnits:   failed,
			TotalUnits:    k,
			CoveredPoints: resp.CoveredPoints,
			TotalPoints:   resp.TotalPoints,
		}
		return cov, resp.UncoveredIDs, resp.UncoveredTruncated, nil
	}
	return nil, nil, false, lastErr
}
