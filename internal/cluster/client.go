package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"unstencil/internal/fault"
	"unstencil/internal/metrics"
	"unstencil/internal/server"
)

// SiteRoute fires at the top of every shard request attempt, so a
// -fault-spec campaign on the coordinator deterministically exercises the
// retry, failover and degradation paths without touching the shards.
const SiteRoute = "cluster.route"

// MaxRetryAfter caps how long the client honors a shard's Retry-After
// header. The shard derives the value from its observed service time, so
// it is normally small; the cap bounds the damage of a pathological
// advertisement.
const MaxRetryAfter = 5 * time.Second

// ErrorKindShardFailure tags job errors caused by a shard staying down
// past its retry and failover budget, so clients can distinguish "your
// request was wrong" from "the cluster lost capacity".
const ErrorKindShardFailure = "shard-failure"

// ShardError means one shard exhausted the client's retry budget. It is
// the unit the router reacts to: fail over to a ring successor, or — past
// the failover budget — degrade or fail the job with ErrorKindShardFailure.
type ShardError struct {
	Shard    string
	Status   int // last HTTP status; 0 for a transport-level failure
	Attempts int
	Err      error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %s failed after %d attempt(s) (last status %d): %v",
		e.Shard, e.Attempts, e.Status, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// remoteError is a non-2xx response that should not be retried against the
// same shard (4xx: the request itself is wrong, or the resource is absent).
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("shard returned %d: %s", e.status, e.msg)
}

// IsNotFound reports whether err is a shard 404 — for mesh-scoped requests
// that is "mesh not resident", the coordinator's cue to re-seed the shard
// from its retained mesh bytes and retry.
func IsNotFound(err error) bool {
	var re *remoteError
	return errors.As(err, &re) && re.status == http.StatusNotFound
}

// RemoteStatus returns the HTTP status a remoteError carries (0 otherwise).
func RemoteStatus(err error) int {
	var re *remoteError
	if errors.As(err, &re) {
		return re.status
	}
	return 0
}

// Client is the coordinator's HTTP client for one shard request with
// retries: transport errors and 5xx responses retry with capped
// exponential backoff and deterministic jitter; a 503 carrying Retry-After
// honors the shard's own estimate instead of the blind backoff; 4xx
// responses are permanent. The retry budget is per shard — cross-shard
// failover is the router's job, not the client's.
type Client struct {
	hc       *http.Client
	retry    server.RetryPolicy
	counters *metrics.ClusterCounters
	log      *slog.Logger
}

// NewClient builds a client. hc nil gets a default with the given request
// timeout; retry is defaulted per server.RetryPolicy (Attempts floor 1).
func NewClient(hc *http.Client, timeout time.Duration, retry server.RetryPolicy, counters *metrics.ClusterCounters, log *slog.Logger) *Client {
	if hc == nil {
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		hc = &http.Client{Timeout: timeout}
	}
	if retry.Attempts < 1 {
		retry.Attempts = 1
	}
	if retry.Base <= 0 {
		retry.Base = 10 * time.Millisecond
	}
	if retry.Max <= 0 {
		retry.Max = 500 * time.Millisecond
	}
	if counters == nil {
		counters = &metrics.ClusterCounters{}
	}
	return &Client{hc: hc, retry: retry, counters: counters, log: log}
}

// PostJSON marshals body, POSTs it to shard+path and decodes the JSON
// response into out (which may be nil). GetJSON is the bodyless variant.
func (c *Client) PostJSON(ctx context.Context, shard, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, shard, path, raw, out)
}

// PostRaw POSTs a pre-encoded payload (mesh bytes) to shard+path.
func (c *Client) PostRaw(ctx context.Context, shard, path string, body []byte, out any) error {
	return c.do(ctx, http.MethodPost, shard, path, body, out)
}

// GetJSON GETs shard+path and decodes the JSON response into out.
func (c *Client) GetJSON(ctx context.Context, shard, path string, out any) error {
	return c.do(ctx, http.MethodGet, shard, path, nil, out)
}

// do is one logical shard request under the retry policy.
func (c *Client) do(ctx context.Context, method, shard, path string, body []byte, out any) error {
	var (
		lastErr    error
		lastStatus int
	)
	for attempt := 1; attempt <= c.retry.Attempts; attempt++ {
		if attempt > 1 {
			c.counters.Retries.Add(1)
			if err := sleepCtx(ctx, c.backoff(shard, path, attempt-1, lastErr)); err != nil {
				break
			}
		}
		status, err := c.once(ctx, method, shard, path, body, out)
		if err == nil {
			return nil
		}
		lastErr, lastStatus = err, status
		if !retryable(err, status) {
			return err
		}
		if c.log != nil {
			c.log.Warn("shard request failed",
				"shard", shard, "path", path, "attempt", attempt, "status", status, "err", err)
		}
	}
	se := &ShardError{Shard: shard, Status: lastStatus, Attempts: c.retry.Attempts, Err: lastErr}
	c.counters.ShardFailures.Add(1)
	return se
}

// once performs a single HTTP attempt. The returned status is 0 for
// transport-level failures.
func (c *Client) once(ctx context.Context, method, shard, path string, body []byte, out any) (int, error) {
	if err := fault.Inject(SiteRoute); err != nil {
		return 0, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, shard+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.counters.ShardRequests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg := readErrorBody(resp.Body)
		err := error(&remoteError{status: resp.StatusCode, msg: msg})
		if resp.StatusCode/100 == 5 {
			// 5xx is transient from the router's perspective; wrap it so
			// retryable() treats it as such while keeping the status visible.
			err = &transientRemote{remoteError{status: resp.StatusCode, msg: msg}, retryAfter(resp)}
		}
		return resp.StatusCode, err
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding shard response: %w", err)
	}
	return resp.StatusCode, nil
}

// transientRemote is a retryable non-2xx response (5xx), optionally
// carrying the shard's Retry-After estimate.
type transientRemote struct {
	remoteError
	retryAfter time.Duration // 0 when the header was absent
}

// Unwrap exposes the remoteError to errors.As (RemoteStatus, IsNotFound).
func (e *transientRemote) Unwrap() error { return &e.remoteError }

// retryAfter parses a delay-seconds Retry-After header, capped at
// MaxRetryAfter; 0 when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return min(time.Duration(secs)*time.Second, MaxRetryAfter)
}

// retryable reports whether the failed attempt may be retried against the
// same shard: transport errors and 5xx yes, context expiry and 4xx no.
func retryable(err error, status int) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *remoteError
	if errors.As(err, &re) {
		return status/100 == 5
	}
	return true // transport-level failure
}

// backoff is the pre-retry delay for retry r (1-based) against shard+path.
// A Retry-After estimate from the previous attempt wins outright — the
// shard knows its own queue better than our exponential guess. Otherwise
// Base·2^(r-1) capped at Max, scaled by a deterministic jitter in [0.5, 1)
// derived from (shard, path, r) so concurrent retries against one shard
// de-synchronize identically on every run.
func (c *Client) backoff(shard, path string, r int, lastErr error) time.Duration {
	var tr *transientRemote
	if errors.As(lastErr, &tr) && tr.retryAfter > 0 {
		c.counters.RetryAfterWaits.Add(1)
		return tr.retryAfter
	}
	d := c.retry.Base << uint(min(r-1, 16))
	if d > c.retry.Max || d <= 0 {
		d = c.retry.Max
	}
	seed := hash64(shard+path) ^ uint64(r)
	f := 0.5 + 0.5*float64(fault.Mix64(seed)>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

// readErrorBody extracts the server's JSON error envelope ({"error": ...})
// or falls back to the raw body, truncated.
func readErrorBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return ""
	}
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return body.Error
	}
	return string(raw)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
