package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unstencil/internal/core"
	"unstencil/internal/dg"
	"unstencil/internal/mesh"
	"unstencil/internal/server"
	"unstencil/internal/tile"
)

// flakyShard wraps a shard handler with a kill switch and a latency knob:
// down aborts the connection (the coordinator sees a transport error, as
// with a dead process), slowMS delays every response (for hedging tests).
// The inner handler is swappable so a "restarted" shard — a fresh stateless
// server.New behind the same URL — can take over the address.
type flakyShard struct {
	mu      sync.Mutex
	handler http.Handler
	down    atomic.Bool
	slowMS  atomic.Int64
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		panic(http.ErrAbortHandler)
	}
	if d := f.slowMS.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	f.mu.Lock()
	h := f.handler
	f.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (f *flakyShard) swap(h http.Handler) {
	f.mu.Lock()
	f.handler = h
	f.mu.Unlock()
}

func newShard(t *testing.T) (*flakyShard, *httptest.Server) {
	t.Helper()
	srv := newShardServer(t)
	fs := &flakyShard{handler: srv}
	ts := httptest.NewServer(fs)
	t.Cleanup(ts.Close)
	return fs, ts
}

func newShardServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{Workers: 1, EvalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// newCluster builds a coordinator over the given shard URLs. Health is
// probed synchronously in New and afterwards only via CheckNow — tests
// never depend on poll timing.
func newCluster(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = server.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	ts := httptest.NewServer(co)
	t.Cleanup(ts.Close)
	return co, ts
}

func encodeMesh(t *testing.T, m *mesh.Mesh) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mesh.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, req any, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		raw, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(raw, out); err != nil && resp.StatusCode < 300 {
			t.Fatalf("decode %s: %v (%s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		raw, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(raw, out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decode %s: %v (%s)", url, err, raw)
		}
	}
	return resp.StatusCode
}

func uploadMesh(t *testing.T, coURL string, m *mesh.Mesh) string {
	t.Helper()
	resp, err := http.Post(coURL+"/v1/meshes", "application/octet-stream",
		bytes.NewReader(encodeMesh(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mesh upload: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		MeshID       string   `json:"mesh_id"`
		ShardsSeeded []string `json:"shards_seeded"`
		ShardsFailed []string `json:"shards_failed"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.ShardsFailed) != 0 {
		t.Fatalf("mesh fan-out failed on %v", out.ShardsFailed)
	}
	return out.MeshID
}

func waitClusterJob(t *testing.T, coURL, id string, deadline time.Duration) JobView {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		var v JobView
		if code := getJSON(t, coURL+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("job %s status code %d", id, code)
		}
		if v.State == server.StateDone || v.State == server.StateFailed {
			return v
		}
		if time.Now().After(end) {
			t.Fatalf("job %s still %s after %v", id, v.State, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// localRef reproduces exactly the artifact recipe the shards use, giving
// the single-process reference a distributed run must match bit for bit.
func localRef(t *testing.T, m *mesh.Mesh, p int, b core.Boundary, k int) (*tile.Tiling, []float64) {
	t.Helper()
	f := dg.Project(m, p, server.FieldFuncs["sincos"], 4)
	ev, err := core.NewEvaluator(f, core.Options{P: p, Boundary: b, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tl := ev.NewTiling(k)
	res, err := ev.RunPerElement(tl)
	if err != nil {
		t.Fatal(err)
	}
	return tl, res.Solution
}

type resultBody struct {
	JobID              string         `json:"job_id"`
	NumPoints          int            `json:"num_points"`
	Solution           []float64      `json:"solution"`
	Shards             []string       `json:"shards"`
	Degraded           bool           `json:"degraded"`
	Coverage           *core.Coverage `json:"coverage"`
	UncoveredIDs       []int32        `json:"uncovered_ids"`
	UncoveredTruncated bool           `json:"uncovered_truncated"`
	ErrorKind          string         `json:"error_kind"`
}

// TestClusterBitIdentical: a two-shard distributed per-element run merges
// to exactly — max_diff zero, not small — the single-process solution, for
// P1 and P2 under both boundary treatments.
func TestClusterBitIdentical(t *testing.T) {
	_, tsA := newShard(t)
	_, tsB := newShard(t)
	co, cts := newCluster(t, Config{Shards: []string{tsA.URL, tsB.URL}})
	m := mesh.Structured(12)
	meshID := uploadMesh(t, cts.URL, m)
	const k = 7

	for _, tc := range []struct {
		p        int
		boundary string
		b        core.Boundary
	}{
		{1, "periodic", core.Periodic},
		{2, "periodic", core.Periodic},
		{1, "one-sided", core.OneSided},
		{2, "one-sided", core.OneSided},
	} {
		spec := server.JobSpec{
			MeshID: meshID, Scheme: "per-element", P: tc.p, Blocks: k, Boundary: tc.boundary,
		}
		var v JobView
		if code := postJSON(t, cts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
			t.Fatalf("P%d %s: submit status %d", tc.p, tc.boundary, code)
		}
		if v.Kind != KindDistributed {
			t.Fatalf("per-element job kind %q, want distributed", v.Kind)
		}
		v = waitClusterJob(t, cts.URL, v.ID, 120*time.Second)
		if v.State != server.StateDone {
			t.Fatalf("P%d %s: state %s err %q", tc.p, tc.boundary, v.State, v.Error)
		}
		if v.Degraded {
			t.Fatalf("P%d %s: degraded with both shards up", tc.p, tc.boundary)
		}
		if len(v.Shards) != 2 {
			t.Errorf("P%d %s: %v contributed, want both shards", tc.p, tc.boundary, v.Shards)
		}
		var res resultBody
		if code := getJSON(t, cts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
			t.Fatalf("result status %d", code)
		}
		_, ref := localRef(t, m, tc.p, tc.b, k)
		if len(res.Solution) != len(ref) {
			t.Fatalf("P%d %s: %d points, want %d", tc.p, tc.boundary, len(res.Solution), len(ref))
		}
		for i := range ref {
			if res.Solution[i] != ref[i] {
				t.Fatalf("P%d %s: point %d: cluster %v != local %v (must be bit-identical)",
					tc.p, tc.boundary, i, res.Solution[i], ref[i])
			}
		}
	}
	snap := co.Counters().Snapshot()
	if snap.JobsDistributed != 4 {
		t.Errorf("jobs_distributed = %d, want 4", snap.JobsDistributed)
	}
	if snap.MeshFanouts != 1 {
		t.Errorf("mesh_fanouts = %d, want 1", snap.MeshFanouts)
	}
}

// TestClusterFailoverHealsShardLoss: with failover enabled (the default),
// killing a shard mid-cluster does not degrade results — its patch range
// moves to the ring successor and the merge stays bit-identical and at
// full coverage. The dead shard is marked Down, and a recovered shard is
// routable again after the next health pass.
func TestClusterFailoverHealsShardLoss(t *testing.T) {
	fsA, tsA := newShard(t)
	fsB, tsB := newShard(t)
	shards := []string{tsA.URL, tsB.URL}
	co, cts := newCluster(t, Config{Shards: shards})
	m := mesh.Structured(12)
	meshID := uploadMesh(t, cts.URL, m)
	const k = 8

	ring, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	victimURL := ring.Order(meshID)[1]
	victim := fsB
	if victimURL == tsA.URL {
		victim = fsA
	}
	victim.down.Store(true)

	spec := server.JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: k}
	var v JobView
	if code := postJSON(t, cts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v = waitClusterJob(t, cts.URL, v.ID, 120*time.Second)
	if v.State != server.StateDone {
		t.Fatalf("job with failover: state %s err %q", v.State, v.Error)
	}
	if v.Degraded {
		t.Fatal("failover available but job degraded")
	}
	var res resultBody
	if code := getJSON(t, cts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	_, ref := localRef(t, m, 1, core.Periodic, k)
	for i := range ref {
		if res.Solution[i] != ref[i] {
			t.Fatalf("point %d: failed-over %v != local %v", i, res.Solution[i], ref[i])
		}
	}
	snap := co.Counters().Snapshot()
	if snap.Failovers == 0 {
		t.Error("no failover counted though a shard was dead")
	}
	if snap.ShardFailures == 0 {
		t.Error("no shard failure counted though a shard was dead")
	}
	if st := co.Health().State(victimURL); st != StateDown {
		t.Errorf("dead shard state %s, want down", st)
	}

	// Recovery: the shard comes back, the next health pass restores it, and
	// — the static-ring property — it owns its old keyspace again.
	victim.down.Store(false)
	co.Health().CheckNow()
	if st := co.Health().State(victimURL); st != StateReady {
		t.Errorf("recovered shard state %s, want ready", st)
	}
	if order := co.routable(meshID); len(order) != 2 || order[1] != victimURL {
		t.Errorf("recovered shard did not reclaim its succession slot: %v", order)
	}
}

// TestClusterDegradedShardLoss is the degradation drill: failover disabled
// (FailoverAttempts < 0), one shard killed. An allow_partial job completes
// with coverage < 1 and exactly the uncovered points the deterministic
// tiling predicts for the lost patch range; a job without allow_partial
// fails with the typed shard-failure error; and after the shard restarts
// — stateless, healing through the mesh re-seed protocol — the same job
// recovers bit-identical full coverage.
func TestClusterDegradedShardLoss(t *testing.T) {
	fsA, tsA := newShard(t)
	fsB, tsB := newShard(t)
	shards := []string{tsA.URL, tsB.URL}
	co, cts := newCluster(t, Config{
		Shards:           shards,
		FailoverAttempts: -1,
		HealthThreshold:  1,
	})
	m := mesh.Structured(12)
	meshID := uploadMesh(t, cts.URL, m)
	const k = 8

	ring, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := ring.Order(meshID)
	victimURL := order[1]
	victim := fsB
	if victimURL == tsA.URL {
		victim = fsA
	}
	lostPatches := splitPatches(order, k)[1].patches
	tl, ref := localRef(t, m, 1, core.Periodic, k)
	wantUncov := tl.UncoveredIDs(lostPatches)

	// Phase 1: shard dead, allow_partial — degraded completion with honest
	// coverage accounting.
	victim.down.Store(true)
	spec := server.JobSpec{MeshID: meshID, Scheme: "per-element", P: 1, Blocks: k, AllowPartial: true}
	var v JobView
	if code := postJSON(t, cts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v = waitClusterJob(t, cts.URL, v.ID, 120*time.Second)
	if v.State != server.StateDone {
		t.Fatalf("allow_partial under shard loss: state %s err %q", v.State, v.Error)
	}
	if !v.Degraded || v.Coverage == nil {
		t.Fatalf("shard dead but job not degraded: %+v", v)
	}
	cov := v.Coverage
	if len(cov.FailedUnits) != len(lostPatches) {
		t.Fatalf("failed units %v, want the lost range %v", cov.FailedUnits, lostPatches)
	}
	for i, p := range cov.FailedUnits {
		if p != lostPatches[i] {
			t.Fatalf("failed units %v, want %v", cov.FailedUnits, lostPatches)
		}
	}
	if cov.CoveredPoints >= cov.TotalPoints {
		t.Fatalf("coverage %d/%d not < 1 with a dead shard", cov.CoveredPoints, cov.TotalPoints)
	}
	if cov.TotalPoints != tl.NumPoints || cov.CoveredPoints != tl.NumPoints-len(wantUncov) {
		t.Fatalf("coverage %d/%d, tiling says %d/%d",
			cov.CoveredPoints, cov.TotalPoints, tl.NumPoints-len(wantUncov), tl.NumPoints)
	}
	var res resultBody
	if code := getJSON(t, cts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if len(res.UncoveredIDs) != len(wantUncov) {
		t.Fatalf("%d uncovered ids, tiling says %d", len(res.UncoveredIDs), len(wantUncov))
	}
	uncov := map[int32]bool{}
	for i, pt := range res.UncoveredIDs {
		if pt != wantUncov[i] {
			t.Fatalf("uncovered id %d: %d != %d", i, pt, wantUncov[i])
		}
		uncov[pt] = true
	}
	// Covered points carry full sums (bit-identical); uncovered points are
	// deterministically zeroed, never half-summed.
	for i := range ref {
		if uncov[int32(i)] {
			if res.Solution[i] != 0 {
				t.Fatalf("uncovered point %d carries partial sum %v, want 0", i, res.Solution[i])
			}
		} else if res.Solution[i] != ref[i] {
			t.Fatalf("covered point %d: degraded %v != local %v", i, res.Solution[i], ref[i])
		}
	}
	snap := co.Counters().Snapshot()
	if snap.DegradedJobs == 0 || snap.CoverageProbes == 0 {
		t.Errorf("degraded path not counted: %+v", snap)
	}

	// Phase 2: same outage, allow_partial off — typed failure, no result.
	victim.down.Store(false)
	co.Health().CheckNow() // shard briefly back: Ready again
	victim.down.Store(true)
	spec.AllowPartial = false
	if code := postJSON(t, cts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v = waitClusterJob(t, cts.URL, v.ID, 120*time.Second)
	if v.State != server.StateFailed {
		t.Fatalf("non-partial job under shard loss: state %s, want failed", v.State)
	}
	if v.ErrorKind != ErrorKindShardFailure {
		t.Fatalf("error kind %q, want %q", v.ErrorKind, ErrorKindShardFailure)
	}
	var fres resultBody
	if code := getJSON(t, cts.URL+"/v1/jobs/"+v.ID+"/result", &fres); code != http.StatusConflict {
		t.Fatalf("failed job result status %d, want 409", code)
	}
	if fres.ErrorKind != ErrorKindShardFailure {
		t.Fatalf("result error kind %q, want %q", fres.ErrorKind, ErrorKindShardFailure)
	}

	// Phase 3: the victim restarts as a fresh stateless process on the same
	// address — no mesh resident. The re-seed protocol heals it on first
	// use and the job recovers bit-identical full coverage.
	victim.swap(newShardServer(t))
	victim.down.Store(false)
	co.Health().CheckNow()
	if st := co.Health().State(victimURL); st != StateReady {
		t.Fatalf("restarted shard state %s, want ready", st)
	}
	if code := postJSON(t, cts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v = waitClusterJob(t, cts.URL, v.ID, 120*time.Second)
	if v.State != server.StateDone || v.Degraded {
		t.Fatalf("post-restart job: state %s degraded %v err %q", v.State, v.Degraded, v.Error)
	}
	res = resultBody{}
	if code := getJSON(t, cts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	for i := range ref {
		if res.Solution[i] != ref[i] {
			t.Fatalf("post-restart point %d: %v != local %v (must be bit-identical)",
				i, res.Solution[i], ref[i])
		}
	}
	snap = co.Counters().Snapshot()
	if snap.MeshReseeds == 0 {
		t.Error("restarted stateless shard served without a mesh re-seed")
	}
	if snap.ShardFailures == 0 {
		t.Error("no shard failures counted across the drill")
	}
}

// TestClusterQueryRoutingAndHedging: /v1/query routes to the mesh's home
// shard; a slow primary loses the race to a hedged replica; a dead primary
// fails over. All paths return identical values.
func TestClusterQueryRoutingAndHedging(t *testing.T) {
	fsA, tsA := newShard(t)
	fsB, tsB := newShard(t)
	shards := []string{tsA.URL, tsB.URL}
	co, cts := newCluster(t, Config{Shards: shards, HedgeDelay: 2 * time.Millisecond})
	m := mesh.Structured(8)
	meshID := uploadMesh(t, cts.URL, m)

	query := map[string]any{
		"mesh_id": meshID,
		"p":       1,
		"points":  [][2]float64{{0.2, 0.3}, {0.5, 0.5}, {0.8, 0.1}},
	}
	type queryResp struct {
		Values []float64 `json:"values"`
		Shard  string    `json:"shard"`
	}
	var first queryResp
	if code := postJSON(t, cts.URL+"/v1/query", query, &first); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(first.Values) != 3 {
		t.Fatalf("%d values, want 3", len(first.Values))
	}
	owner := first.Shard

	// Slow primary: the hedge fires and the replica's answer wins.
	slow := fsA
	if owner == tsB.URL {
		slow = fsB
	}
	slow.slowMS.Store(500)
	var hedged queryResp
	if code := postJSON(t, cts.URL+"/v1/query", query, &hedged); code != http.StatusOK {
		t.Fatalf("hedged query status %d", code)
	}
	if hedged.Shard == owner {
		t.Errorf("hedged query answered by the slow primary %s", hedged.Shard)
	}
	for i := range first.Values {
		if hedged.Values[i] != first.Values[i] {
			t.Fatalf("value %d: hedged %v != primary %v", i, hedged.Values[i], first.Values[i])
		}
	}
	snap := co.Counters().Snapshot()
	if snap.Hedges == 0 || snap.HedgeWins == 0 {
		t.Errorf("hedge not exercised: hedges=%d wins=%d", snap.Hedges, snap.HedgeWins)
	}

	// Dead primary: transport failure, retry budget burns, failover wins.
	slow.slowMS.Store(0)
	slow.down.Store(true)
	var failedOver queryResp
	if code := postJSON(t, cts.URL+"/v1/query", query, &failedOver); code != http.StatusOK {
		t.Fatalf("failover query status %d", code)
	}
	if failedOver.Shard == owner {
		t.Errorf("failover query answered by the dead primary")
	}
	for i := range first.Values {
		if failedOver.Values[i] != first.Values[i] {
			t.Fatalf("value %d: failover %v != primary %v", i, failedOver.Values[i], first.Values[i])
		}
	}
	if snap = co.Counters().Snapshot(); snap.Retries == 0 {
		t.Error("dead-shard query burned no retries")
	}
}

// TestClusterRoutedJob: non-per-element jobs run whole on the mesh's home
// shard, with the coordinator rewriting shard-local ids to cluster ids on
// every proxied view.
func TestClusterRoutedJob(t *testing.T) {
	_, tsA := newShard(t)
	_, tsB := newShard(t)
	co, cts := newCluster(t, Config{Shards: []string{tsA.URL, tsB.URL}})
	m := mesh.Structured(8)
	meshID := uploadMesh(t, cts.URL, m)

	spec := server.JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Blocks: 4}
	var sub struct {
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		Shard string `json:"shard"`
	}
	if code := postJSON(t, cts.URL+"/v1/jobs", spec, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if sub.Kind != string(KindRouted) || sub.Shard == "" {
		t.Fatalf("routed submission %+v", sub)
	}
	if sub.ID == "" {
		t.Fatal("no cluster job id")
	}
	v := waitClusterJob(t, cts.URL, sub.ID, 120*time.Second)
	if v.State != server.StateDone {
		t.Fatalf("routed job: state %s err %q", v.State, v.Error)
	}
	if v.ID != sub.ID {
		t.Fatalf("status id %q, want the cluster id %q (shard-local id leaked)", v.ID, sub.ID)
	}
	var res struct {
		JobID    string    `json:"job_id"`
		Solution []float64 `json:"solution"`
	}
	if code := getJSON(t, cts.URL+"/v1/jobs/"+sub.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if res.JobID != sub.ID {
		t.Fatalf("result job id %q, want %q", res.JobID, sub.ID)
	}
	if len(res.Solution) == 0 {
		t.Fatal("routed result carries no solution")
	}
	if snap := co.Counters().Snapshot(); snap.JobsRouted != 1 {
		t.Errorf("jobs_routed = %d, want 1", snap.JobsRouted)
	}
}

// TestCoordinatorReadyzAndMetrics: the coordinator is ready while any
// shard is, and /debug/metrics exposes the routing table with per-shard
// state and primary mesh assignments.
func TestCoordinatorReadyzAndMetrics(t *testing.T) {
	fsA, tsA := newShard(t)
	fsB, tsB := newShard(t)
	co, cts := newCluster(t, Config{
		Shards:          []string{tsA.URL, tsB.URL},
		HealthThreshold: 1,
	})
	m := mesh.Structured(8)
	meshID := uploadMesh(t, cts.URL, m)

	var rz struct {
		Ready       bool `json:"ready"`
		ShardsReady int  `json:"shards_ready"`
		ShardsTotal int  `json:"shards_total"`
	}
	if code := getJSON(t, cts.URL+"/readyz", &rz); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if !rz.Ready || rz.ShardsReady != 2 || rz.ShardsTotal != 2 {
		t.Fatalf("readyz %+v", rz)
	}

	// One shard down: still ready (degraded beats refusing traffic).
	fsA.down.Store(true)
	co.Health().CheckNow()
	if code := getJSON(t, cts.URL+"/readyz", &rz); code != http.StatusOK || !rz.Ready {
		t.Fatalf("one shard down: readyz %d ready=%v, want 200/true", code, rz.Ready)
	}

	// Both down: not ready.
	fsB.down.Store(true)
	co.Health().CheckNow()
	if code := getJSON(t, cts.URL+"/readyz", &rz); code != http.StatusServiceUnavailable || rz.Ready {
		t.Fatalf("all shards down: readyz %d ready=%v, want 503/false", code, rz.Ready)
	}

	fsA.down.Store(false)
	fsB.down.Store(false)
	co.Health().CheckNow()
	var mt struct {
		Cluster map[string]any `json:"cluster"`
		Routing map[string]struct {
			State  string   `json:"state"`
			VNodes int      `json:"vnodes"`
			Meshes []string `json:"meshes"`
		} `json:"routing"`
		Meshes int `json:"meshes"`
	}
	if code := getJSON(t, cts.URL+"/debug/metrics", &mt); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if len(mt.Routing) != 2 || mt.Meshes != 1 {
		t.Fatalf("metrics routing %+v meshes %d", mt.Routing, mt.Meshes)
	}
	primaries := 0
	for url, r := range mt.Routing {
		if r.State != "ready" {
			t.Errorf("shard %s state %q after recovery", url, r.State)
		}
		for _, id := range r.Meshes {
			if id != meshID {
				t.Errorf("shard %s routes unknown mesh %s", url, id)
			}
			primaries++
		}
	}
	if primaries != 1 {
		t.Errorf("%d primary assignments for 1 mesh", primaries)
	}
	if _, ok := mt.Cluster["mesh_fanouts"]; !ok {
		t.Error("cluster counters missing from metrics")
	}
}

// TestClusterMultiFieldOperatorJob: a multi-field operator job is
// forwarded whole to the mesh's home shard — the coordinator validates the
// batched field list at its front door and proxies the per-field solutions
// back bit-identically to the equivalent single-field submissions.
func TestClusterMultiFieldOperatorJob(t *testing.T) {
	_, tsA := newShard(t)
	_, tsB := newShard(t)
	_, cts := newCluster(t, Config{Shards: []string{tsA.URL, tsB.URL}})
	m := mesh.Structured(8)
	meshID := uploadMesh(t, cts.URL, m)
	names := []string{"sincos", "gauss"}

	run := func(spec server.JobSpec) (JobView, map[string]json.RawMessage) {
		var sub struct {
			ID string `json:"id"`
		}
		if code := postJSON(t, cts.URL+"/v1/jobs", spec, &sub); code != http.StatusAccepted {
			t.Fatalf("submit %+v: status %d", spec, code)
		}
		v := waitClusterJob(t, cts.URL, sub.ID, 120*time.Second)
		if v.State != server.StateDone {
			t.Fatalf("job %s: state %s err %q", sub.ID, v.State, v.Error)
		}
		var res map[string]json.RawMessage
		if code := getJSON(t, cts.URL+"/v1/jobs/"+sub.ID+"/result", &res); code != http.StatusOK {
			t.Fatalf("result status %d", code)
		}
		return v, res
	}

	single := make(map[string][]float64)
	for _, f := range names {
		_, res := run(server.JobSpec{MeshID: meshID, Scheme: "operator", P: 1, Field: f})
		var sol []float64
		if err := json.Unmarshal(res["solution"], &sol); err != nil {
			t.Fatal(err)
		}
		single[f] = sol
	}

	_, res := run(server.JobSpec{MeshID: meshID, Scheme: "operator", P: 1, Fields: names})
	var sols [][]float64
	if res["solutions"] == nil {
		t.Fatalf("routed multi-field result carries no solutions: keys %v", res)
	}
	if err := json.Unmarshal(res["solutions"], &sols); err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(names) {
		t.Fatalf("%d solutions, want %d", len(sols), len(names))
	}
	for i, f := range names {
		if len(sols[i]) != len(single[f]) {
			t.Fatalf("field %s: %d points, want %d", f, len(sols[i]), len(single[f]))
		}
		for j := range sols[i] {
			if sols[i][j] != single[f][j] {
				t.Fatalf("field %s point %d: routed batch %v != single %v", f, j, sols[i][j], single[f][j])
			}
		}
	}

	// Bad batched field lists die at the coordinator's front door.
	if code := postJSON(t, cts.URL+"/v1/jobs",
		server.JobSpec{MeshID: meshID, Scheme: "per-point", P: 1, Fields: names}, nil); code != http.StatusBadRequest {
		t.Errorf("fields on per-point accepted by the coordinator with status %d", code)
	}
}
