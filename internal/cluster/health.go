package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// ShardState is the health checker's verdict on one shard.
type ShardState int32

const (
	// StateUnknown means no probe has completed yet.
	StateUnknown ShardState = iota
	// StateReady means the shard answered /readyz with 200: startup work is
	// done and its job queue has room. Route traffic here.
	StateReady
	// StateNotReady means the shard answered /readyz with a non-200 status:
	// the process is alive (liveness holds) but asked not to receive new
	// work — still replaying its journal, or its queue is saturated. Honest
	// back-pressure, not a failure: do not route, do not count as down.
	StateNotReady
	// StateDown means probes have failed at the transport level (connection
	// refused, timeout) for at least the failure threshold in a row.
	StateDown
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateNotReady:
		return "not-ready"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// ShardHealth is the JSON view of one shard's health record.
type ShardHealth struct {
	Shard            string `json:"shard"`
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Probes           uint64 `json:"probes"`
	LastError        string `json:"last_error,omitempty"`
}

// shardStatus is the mutable health record behind ShardHealth.
type shardStatus struct {
	state   ShardState
	fails   int // consecutive transport failures
	probes  uint64
	lastErr string
}

// HealthChecker polls every shard's GET /readyz on a fixed interval and
// classifies each as Ready, NotReady or Down. A single transport failure
// does not mark a shard down — only Threshold consecutive failures do, so
// one dropped packet cannot trigger a failover stampede. Distinguishing
// NotReady from Down matters for routing: a saturated shard recovers by
// itself and keeps its keyspace; a down shard's keys fail over.
type HealthChecker struct {
	shards    []string
	hc        *http.Client
	interval  time.Duration
	threshold int
	log       *slog.Logger

	mu sync.Mutex
	st map[string]*shardStatus

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHealthChecker builds a checker over the shard set. interval <= 0
// defaults to 1s, threshold <= 0 to 3.
func NewHealthChecker(shards []string, hc *http.Client, interval time.Duration, threshold int, log *slog.Logger) *HealthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	if threshold <= 0 {
		threshold = 3
	}
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	h := &HealthChecker{
		shards:    append([]string(nil), shards...),
		hc:        hc,
		interval:  interval,
		threshold: threshold,
		log:       log,
		st:        make(map[string]*shardStatus, len(shards)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, s := range h.shards {
		h.st[s] = &shardStatus{state: StateUnknown}
	}
	return h
}

// Start launches the polling loop. Safe to call once; Stop ends it.
func (h *HealthChecker) Start() {
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					h.CheckNow()
				}
			}
		}()
	})
}

// Stop ends the polling loop and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (h *HealthChecker) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	select {
	case <-h.done:
	default:
		h.startOnce.Do(func() { close(h.done) }) // never started; unblock the wait
		<-h.done
	}
}

// CheckNow runs one synchronous probe pass over all shards. The polling
// loop calls it on its ticker; tests call it directly for deterministic
// state transitions without sleeping.
func (h *HealthChecker) CheckNow() {
	var wg sync.WaitGroup
	for _, shard := range h.shards {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			h.probe(shard)
		}(shard)
	}
	wg.Wait()
}

func (h *HealthChecker) probe(shard string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/readyz", nil)
	if err != nil {
		h.record(shard, StateDown, err)
		return
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		h.record(shard, StateDown, err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		h.record(shard, StateReady, nil)
	} else {
		h.record(shard, StateNotReady, fmt.Errorf("readyz: %s", resp.Status))
	}
}

// record folds one probe outcome into the shard's record. verdict is the
// immediate classification; Down is applied only after threshold
// consecutive transport failures (the shard keeps its previous state in
// the interim, so a momentary blip does not reroute traffic).
func (h *HealthChecker) record(shard string, verdict ShardState, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.st[shard]
	if st == nil {
		return
	}
	st.probes++
	prev := st.state
	switch verdict {
	case StateDown:
		st.fails++
		st.lastErr = err.Error()
		if st.fails >= h.threshold || prev == StateUnknown {
			st.state = StateDown
		}
	case StateNotReady:
		st.fails = 0
		st.lastErr = err.Error()
		st.state = StateNotReady
	default:
		st.fails = 0
		st.lastErr = ""
		st.state = StateReady
	}
	if st.state != prev && h.log != nil {
		h.log.Info("shard health transition",
			"shard", shard, "from", prev.String(), "to", st.state.String(),
			"consecutive_fails", st.fails, "err", st.lastErr)
	}
}

// State returns the shard's current classification (StateUnknown for a
// shard the checker does not track).
func (h *HealthChecker) State(shard string) ShardState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.st[shard]; ok {
		return st.state
	}
	return StateUnknown
}

// MarkDown forces a shard's record to Down immediately, bypassing the
// threshold. The router calls it when a request to the shard fails at the
// transport level after exhausting retries — stronger evidence than a
// missed probe, and it keeps the routing table honest between probe ticks.
func (h *HealthChecker) MarkDown(shard string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.st[shard]
	if st == nil {
		return
	}
	prev := st.state
	st.state = StateDown
	st.fails = max(st.fails, h.threshold)
	if err != nil {
		st.lastErr = err.Error()
	}
	if prev != StateDown && h.log != nil {
		h.log.Info("shard marked down by router", "shard", shard, "err", st.lastErr)
	}
}

// Counts returns how many shards are currently Ready and how many Down.
func (h *HealthChecker) Counts() (ready, down int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.st {
		switch st.state {
		case StateReady:
			ready++
		case StateDown:
			down++
		}
	}
	return ready, down
}

// Snapshot returns every shard's health record, in shard order.
func (h *HealthChecker) Snapshot() []ShardHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ShardHealth, 0, len(h.shards))
	for _, shard := range h.shards {
		st := h.st[shard]
		out = append(out, ShardHealth{
			Shard:            shard,
			State:            st.state.String(),
			ConsecutiveFails: st.fails,
			Probes:           st.probes,
			LastError:        st.lastErr,
		})
	}
	return out
}
